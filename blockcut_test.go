package bicc

import "testing"

func TestBlockCutTreePublic(t *testing.T) {
	// Two triangles joined at vertex 2 plus a pendant chain 4-7-8.
	g := mustGraph(t, 9, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 2},
		{U: 4, V: 7}, {U: 7, V: 8},
	})
	res, err := BiconnectedComponents(g, &Options{Algorithm: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	bct := res.BlockCutTree()
	if bct.NumBlocks() != 4 {
		t.Fatalf("blocks=%d, want 4 (two triangles, two bridges)", bct.NumBlocks())
	}
	cuts := bct.CutVertices()
	if len(cuts) != 3 {
		t.Fatalf("cuts=%v, want [2 4 7]", cuts)
	}
	for i, want := range []int32{2, 4, 7} {
		if cuts[i] != want {
			t.Errorf("cuts[%d]=%d, want %d", i, cuts[i], want)
		}
	}
	if got := bct.BlocksOfVertex(2); len(got) != 2 {
		t.Errorf("vertex 2 in %d blocks, want 2", len(got))
	}
	if got := bct.BlocksOfVertex(4); len(got) != 2 {
		t.Errorf("vertex 4 in %d blocks, want 2", len(got))
	}
	if got := bct.BlocksOfVertex(0); len(got) != 1 {
		t.Errorf("vertex 0 in %d blocks, want 1", len(got))
	}
	if got := bct.BlocksOfVertex(5); len(got) != 0 {
		t.Errorf("isolated vertex 5 in %d blocks, want 0", len(got))
	}
	// Connected edge-bearing subgraph: tree identity over its nodes.
	if bct.NumNodes()-bct.NumTreeEdges() != 1 {
		t.Errorf("nodes=%d edges=%d: not a tree", bct.NumNodes(), bct.NumTreeEdges())
	}
	// Leaves: triangle {0,1,2} (only cut 2) and bridge (7,8) (only cut 7);
	// triangle {2,3,4} and bridge (4,7) are interior.
	leaves := bct.LeafBlocks()
	if len(leaves) != 2 {
		t.Errorf("leaves=%v, want 2", leaves)
	}
}

func TestCountBlocksPublic(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}})
	got, err := CountBlocks(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("CountBlocks=%d, want 2", got)
	}
	if _, err := CountBlocks(nil, nil); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestComponentSubgraph(t *testing.T) {
	g := mustGraph(t, 6, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, // triangle block
		{U: 2, V: 3},                             // bridge
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3}, // second triangle
	})
	res, err := BiconnectedComponents(g, &Options{Algorithm: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	foundTriangles, foundBridge := 0, 0
	for k := int32(0); k < int32(res.NumComponents); k++ {
		sub, vmap, emap := res.ComponentSubgraph(k)
		switch sub.NumEdges() {
		case 3:
			foundTriangles++
			if sub.NumVertices() != 3 {
				t.Errorf("block %d: triangle with %d vertices", k, sub.NumVertices())
			}
			subRes, err := BiconnectedComponents(sub, &Options{Algorithm: Sequential})
			if err != nil {
				t.Fatal(err)
			}
			if !subRes.IsBiconnected() {
				t.Errorf("block %d subgraph not biconnected", k)
			}
		case 1:
			foundBridge++
		default:
			t.Errorf("block %d has %d edges", k, sub.NumEdges())
		}
		// Mappings must be consistent with the original graph.
		for j, e := range sub.Edges() {
			orig := g.Edges()[emap[j]]
			u, v := vmap[e.U], vmap[e.V]
			if !((u == orig.U && v == orig.V) || (u == orig.V && v == orig.U)) {
				t.Errorf("block %d edge %d maps to %v, original %v", k, j, [2]int32{u, v}, orig)
			}
		}
	}
	if foundTriangles != 2 || foundBridge != 1 {
		t.Errorf("found %d triangles and %d bridges, want 2 and 1", foundTriangles, foundBridge)
	}
}
