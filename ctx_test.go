package bicc

import (
	"context"
	"errors"
	"testing"
	"time"
)

// ctxTestGraph builds a moderately large random connected graph once; it is
// big enough that a full run takes many cancellation-poll intervals on every
// algorithm, so mid-run cancellation is actually exercised.
var ctxTestGraph = func() *Graph {
	g, err := RandomConnectedGraph(60_000, 240_000, 42)
	if err != nil {
		panic(err)
	}
	return g
}()

var ctxAlgos = []Algorithm{Sequential, TVSMP, TVOpt, TVFilter}

func TestCtxNilContextStillComputes(t *testing.T) {
	res, err := BiconnectedComponentsCtx(nil, ctxTestGraph, &Options{Algorithm: TVOpt})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumComponents < 1 {
		t.Fatalf("NumComponents = %d", res.NumComponents)
	}
}

func TestCtxPreCanceledReturnsImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range ctxAlgos {
		start := time.Now()
		res, err := BiconnectedComponentsCtx(ctx, ctxTestGraph, &Options{Algorithm: algo})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", algo, err)
		}
		if res != nil {
			t.Errorf("%v: got non-nil result on canceled context", algo)
		}
		if d := time.Since(start); d > time.Second {
			t.Errorf("%v: pre-canceled run took %v", algo, d)
		}
	}
}

func TestCtxCancelMidRun(t *testing.T) {
	for _, algo := range ctxAlgos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				time.Sleep(2 * time.Millisecond)
				cancel()
			}()
			res, err := BiconnectedComponentsCtx(ctx, ctxTestGraph, &Options{Algorithm: algo})
			if err == nil {
				// The run may legitimately win the race and finish first;
				// then the result must be complete and correct.
				if res == nil || res.NumComponents < 1 {
					t.Fatalf("finished run returned bad result %+v", res)
				}
				return
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res != nil {
				t.Fatal("canceled run returned a non-nil result")
			}
		})
	}
}

func TestCtxDeadlineExceeded(t *testing.T) {
	for _, algo := range ctxAlgos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			defer cancel()
			start := time.Now()
			res, err := BiconnectedComponentsCtx(ctx, ctxTestGraph, &Options{Algorithm: algo})
			if err == nil {
				if res == nil || res.NumComponents < 1 {
					t.Fatalf("finished run returned bad result %+v", res)
				}
				return
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			// "Promptly": well under the full-run time for an uncancelable
			// implementation; generous bound to avoid CI flakes.
			if d := time.Since(start); d > 10*time.Second {
				t.Fatalf("deadline-exceeded run took %v", d)
			}
		})
	}
}

func TestCtxViaOptionsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BiconnectedComponents(ctxTestGraph, &Options{Algorithm: TVOpt, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled via Options.Context", err)
	}
}

func TestNewGraphNormalizedDoesNotMutateInput(t *testing.T) {
	edges := []Edge{{U: 3, V: 3}, {U: 0, V: 1}, {U: 1, V: 0}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 0, V: 1}}
	orig := append([]Edge(nil), edges...)
	g, loops, dups, err := NewGraphNormalized(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	if loops != 1 || dups != 2 {
		t.Fatalf("loops=%d dups=%d, want 1 and 2", loops, dups)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	for i := range edges {
		if edges[i] != orig[i] {
			t.Fatalf("caller's slice mutated at %d: %v != %v", i, edges[i], orig[i])
		}
	}
	// The graph must not alias the caller's slice either: scribbling over the
	// input after construction must not corrupt the graph.
	for i := range edges {
		edges[i] = Edge{U: 0, V: 0}
	}
	if got := g.Edges()[0]; got != orig[1] {
		t.Fatalf("graph aliases caller slice: edge 0 became %v", got)
	}
}
