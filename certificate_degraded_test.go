package bicc

// The scrubber's content sampling (internal/service) trusts Verify,
// ReconstructResult, and SparseCertificate as its oracle for spilled
// results — including results that were produced by the degraded fallback
// path, since those are persisted-adjacent too (the daemon never spills
// them, but the oracle must not care how a labeling was produced). These
// tests pin that trust: for every engine, degraded or not, a correct
// labeling passes the oracle and a tampered one fails it.

import (
	"context"
	"testing"

	"bicc/internal/faults"
)

var allEngines = []Algorithm{Sequential, TVSMP, TVOpt, TVFilter, FastBCC}

// panicSite is a fault site the given parallel engine is guaranteed to
// cross: the TV family shares the core pipeline, fast-bcc has its own
// skeleton phase.
func panicSite(algo Algorithm) string {
	if algo == FastBCC {
		return "fastbcc.skeleton"
	}
	return "core.pipeline"
}

// oracleCheck runs the full scrubber oracle over a labeling: reconstruct,
// verify, and cross-check the aggregates against a decomposition of the
// sparse certificate.
func oracleCheck(t *testing.T, g *Graph, algo Algorithm, edgeComp []int32, wantComponents int) {
	t.Helper()
	res, err := ReconstructResult(g, algo, edgeComp)
	if err != nil {
		t.Fatalf("%v: reconstruct: %v", algo, err)
	}
	if err := Verify(g, res); err != nil {
		t.Fatalf("%v: verify rejected a correct labeling: %v", algo, err)
	}
	if res.NumComponents != wantComponents {
		t.Fatalf("%v: reconstructed %d components, want %d", algo, res.NumComponents, wantComponents)
	}
	cert, _, err := SparseCertificate(g, nil)
	if err != nil {
		t.Fatalf("%v: certificate: %v", algo, err)
	}
	cres, err := BiconnectedComponents(cert, &Options{Algorithm: Sequential})
	if err != nil {
		t.Fatalf("%v: certificate decomposition: %v", algo, err)
	}
	if cres.NumComponents != res.NumComponents {
		t.Fatalf("%v: certificate says %d components, labeling says %d",
			algo, cres.NumComponents, res.NumComponents)
	}
	if ca, ra := cres.ArticulationPoints(), res.ArticulationPoints(); len(ca) != len(ra) {
		t.Fatalf("%v: certificate says %d articulation points, labeling says %d",
			algo, len(ca), len(ra))
	}
}

// TestOracleAcceptsEveryEngine runs each of the five engines over a mix of
// graphs and feeds its labeling through the oracle.
func TestOracleAcceptsEveryEngine(t *testing.T) {
	graphs := []*Graph{triangleBridge(t)}
	for seed := int64(1); seed <= 3; seed++ {
		g, err := RandomConnectedGraph(60, 150, seed)
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	for _, g := range graphs {
		want, err := BiconnectedComponents(g, &Options{Algorithm: Sequential})
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range allEngines {
			res, err := BiconnectedComponents(g, &Options{Algorithm: algo, Procs: 4})
			if err != nil {
				t.Fatalf("%v: %v", algo, err)
			}
			if res.Degraded {
				t.Fatalf("%v degraded with no fault injected: %v", algo, res.DegradedCause)
			}
			oracleCheck(t, g, algo, res.EdgeComponent, want.NumComponents)
		}
	}
}

// TestOracleAcceptsDegradedResults forces every parallel engine through the
// sequential fallback and proves the degraded labeling still satisfies the
// oracle — Verify must care about the labeling, not its provenance.
func TestOracleAcceptsDegradedResults(t *testing.T) {
	defer faults.Deactivate()
	g, err := RandomConnectedGraph(50, 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BiconnectedComponents(g, &Options{Algorithm: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{TVSMP, TVOpt, TVFilter, FastBCC} {
		faults.Activate(&faults.Plan{Seed: 1,
			Rules: []*faults.Rule{faults.NewRule(faults.KindPanic, panicSite(algo))}})
		res, err := BiconnectedComponentsCtx(context.Background(), g,
			&Options{Algorithm: algo, Procs: 4, Fallback: FallbackSequential})
		faults.Deactivate()
		if err != nil {
			t.Fatalf("%v: fallback did not absorb the fault: %v", algo, err)
		}
		if !res.Degraded || res.DegradedCause == nil {
			t.Fatalf("%v: result not marked degraded (%v)", algo, res.DegradedCause)
		}
		if err := Verify(g, res); err != nil {
			t.Fatalf("%v: verify rejected a degraded result: %v", algo, err)
		}
		// The scrubber reconstructs from the persisted labeling under the
		// originally-requested algorithm: the degraded labeling must hold up.
		oracleCheck(t, g, algo, res.EdgeComponent, want.NumComponents)
	}
}

// TestOracleRejectsTamperedLabelings flips one label in each engine's
// output — including a degraded one — and proves Verify catches it. A
// verifier that accepts rot would turn the scrubber's repair ladder into a
// corruption amplifier.
func TestOracleRejectsTamperedLabelings(t *testing.T) {
	defer faults.Deactivate()
	g := triangleBridge(t) // edges 0..2 form the triangle block, edge 3 is the bridge
	for _, algo := range allEngines {
		res, err := BiconnectedComponents(g, &Options{Algorithm: algo, Procs: 2})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		tampered := *res
		tampered.EdgeComponent = append([]int32(nil), res.EdgeComponent...)
		tampered.EdgeComponent[3] = tampered.EdgeComponent[0] // merge bridge into the triangle
		if err := Verify(g, &tampered); err == nil {
			t.Fatalf("%v: verify accepted a tampered labeling", algo)
		}
	}

	// Degraded flavor: tamper a fallback-produced result.
	faults.Activate(&faults.Plan{Seed: 1,
		Rules: []*faults.Rule{faults.NewRule(faults.KindPanic, panicSite(FastBCC))}})
	res, err := BiconnectedComponentsCtx(context.Background(), g,
		&Options{Algorithm: FastBCC, Procs: 2, Fallback: FallbackSequential})
	faults.Deactivate()
	if err != nil || !res.Degraded {
		t.Fatalf("degraded run: err=%v degraded=%v", err, res != nil && res.Degraded)
	}
	res.EdgeComponent[3] = res.EdgeComponent[0]
	if err := Verify(g, res); err == nil {
		t.Fatal("verify accepted a tampered degraded labeling")
	}
}

// TestReconstructRejectsMalformedLabelings pins the reconstruct half of the
// oracle: a labeling whose length or ids cannot belong to the graph must
// error, not fabricate a Result.
func TestReconstructRejectsMalformedLabelings(t *testing.T) {
	g := triangleBridge(t)
	res, err := BiconnectedComponents(g, &Options{Algorithm: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReconstructResult(g, Sequential, res.EdgeComponent[:2]); err == nil {
		t.Error("short labeling accepted")
	}
	bad := append([]int32(nil), res.EdgeComponent...)
	bad[0] = -1
	if _, err := ReconstructResult(g, Sequential, bad); err == nil {
		t.Error("negative block id accepted")
	}
}
