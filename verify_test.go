package bicc

import (
	"testing"
	"testing/quick"
)

func TestVerifyAcceptsCorrectResults(t *testing.T) {
	g, err := RandomGraph(80, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Algorithm{Sequential, TVSMP, TVOpt, TVFilter, FastBCC} {
		res, err := BiconnectedComponents(g, &Options{Algorithm: a, Procs: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, res); err != nil {
			t.Errorf("%v: correct result rejected: %v", a, err)
		}
	}
}

func TestVerifyRejectsTamperedResults(t *testing.T) {
	g := mustGraph(t, 5, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, // triangle
		{U: 2, V: 3}, {U: 3, V: 4}, // chain
	})
	res, err := BiconnectedComponents(g, &Options{Algorithm: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res); err != nil {
		t.Fatalf("baseline rejected: %v", err)
	}

	// Merge two blocks that share a cut vertex: a cut inside the block.
	tampered := *res
	tampered.EdgeComponent = append([]int32(nil), res.EdgeComponent...)
	bridge := res.EdgeComponent[3]
	tri := res.EdgeComponent[0]
	for i, c := range tampered.EdgeComponent {
		if c == bridge {
			tampered.EdgeComponent[i] = tri
		}
	}
	tampered.NumComponents-- // keep ids dense by renumbering the rest
	for i, c := range tampered.EdgeComponent {
		if c > bridge {
			tampered.EdgeComponent[i] = c - 1
		}
	}
	if err := Verify(g, &tampered); err == nil {
		t.Error("merged blocks accepted")
	}

	// Split the triangle: leaves a part whose shared vertex cuts it (or a
	// disconnected edge pair).
	split := *res
	split.EdgeComponent = append([]int32(nil), res.EdgeComponent...)
	split.EdgeComponent[0] = int32(res.NumComponents) // peel one triangle edge off
	split.NumComponents++
	if err := Verify(g, &split); err == nil {
		t.Error("split block accepted")
	}

	// Sparse ids.
	sparse := *res
	sparse.EdgeComponent = append([]int32(nil), res.EdgeComponent...)
	sparse.NumComponents++
	if err := Verify(g, &sparse); err == nil {
		t.Error("unused block id accepted")
	}

	// Out-of-range label.
	bad := *res
	bad.EdgeComponent = append([]int32(nil), res.EdgeComponent...)
	bad.EdgeComponent[0] = 99
	if err := Verify(g, &bad); err == nil {
		t.Error("out-of-range label accepted")
	}

	// Length mismatch and nils.
	short := *res
	short.EdgeComponent = res.EdgeComponent[:2]
	if err := Verify(g, &short); err == nil {
		t.Error("short label array accepted")
	}
	if err := Verify(nil, res); err == nil {
		t.Error("nil graph accepted")
	}
	if err := Verify(g, nil); err == nil {
		t.Error("nil result accepted")
	}
}

// Property: Verify certifies every algorithm's output on random graphs.
func TestQuickVerifyAll(t *testing.T) {
	f := func(seed int64, nn, mm uint8) bool {
		n := int(nn%30) + 2
		maxM := n * (n - 1) / 2
		m := int(mm) % (maxM + 1)
		g, err := RandomGraph(n, m, seed)
		if err != nil {
			return false
		}
		for _, a := range []Algorithm{Sequential, TVOpt, TVFilter, FastBCC} {
			res, err := BiconnectedComponents(g, &Options{Algorithm: a, Procs: 2})
			if err != nil {
				return false
			}
			if err := Verify(g, res); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
