module bicc

go 1.22
