package bicc_test

import (
	"fmt"

	"bicc"
)

// A triangle with a pendant edge: one 2-connected block plus one bridge.
func ExampleBiconnectedComponents() {
	g, err := bicc.NewGraph(4, []bicc.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3},
	})
	if err != nil {
		panic(err)
	}
	res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: bicc.Sequential})
	if err != nil {
		panic(err)
	}
	fmt.Println("components:", res.NumComponents)
	fmt.Println("articulation points:", res.ArticulationPoints())
	fmt.Println("bridges:", res.Bridges())
	// Output:
	// components: 2
	// articulation points: [2]
	// bridges: [3]
}

// Forcing the paper's TV-filter algorithm and reading its phase names.
func ExampleOptions() {
	g, err := bicc.RandomConnectedGraph(1000, 5000, 42)
	if err != nil {
		panic(err)
	}
	res, err := bicc.BiconnectedComponents(g, &bicc.Options{
		Algorithm: bicc.TVFilter,
		Procs:     2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("algorithm:", res.Algorithm)
	fmt.Println("phases recorded:", len(res.Phases) > 0)
	// Output:
	// algorithm: tv-filter
	// phases recorded: true
}

// The block-cut tree of two triangles joined at a cut vertex.
func ExampleResult_BlockCutTree() {
	g, err := bicc.NewGraph(5, []bicc.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 2},
	})
	if err != nil {
		panic(err)
	}
	res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: bicc.Sequential})
	if err != nil {
		panic(err)
	}
	t := res.BlockCutTree()
	fmt.Println("blocks:", t.NumBlocks())
	fmt.Println("cut vertices:", t.CutVertices())
	fmt.Println("vertex 2 belongs to", len(t.BlocksOfVertex(2)), "blocks")
	// Output:
	// blocks: 2
	// cut vertices: [2]
	// vertex 2 belongs to 2 blocks
}

// Certifying a result independently of the algorithm that produced it.
func ExampleVerify() {
	g, err := bicc.RandomConnectedGraph(200, 600, 7)
	if err != nil {
		panic(err)
	}
	res, err := bicc.BiconnectedComponents(g, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("verified:", bicc.Verify(g, res) == nil)
	// Output:
	// verified: true
}

// Counting blocks without materializing per-edge labels.
func ExampleCountBlocks() {
	g := bicc.ChainGraph(6) // every edge is its own block
	n, err := bicc.CountBlocks(g, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(n)
	// Output:
	// 5
}
