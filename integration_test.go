package bicc

import (
	"fmt"
	"testing"

	"bicc/internal/conncomp"
)

// TestIntegrationFamilies runs every algorithm over every instance family
// the repository can generate, cross-checks the partitions against the
// sequential baseline, and certifies one result per family with the
// independent verifier. This is the whole-pipeline smoke grid.
func TestIntegrationFamilies(t *testing.T) {
	mk := func(g *Graph, err error) *Graph {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	families := map[string]*Graph{
		"random-sparse":  mk(RandomGraph(400, 800, 1)),
		"random-dense":   mk(RandomGraph(120, 4000, 2)),
		"random-conn":    mk(RandomConnectedGraph(500, 2000, 3)),
		"mesh":           MeshGraph(15, 20),
		"torus":          TorusGraph(10, 12),
		"chain":          ChainGraph(600),
		"dense-woosahni": DenseGraph(60, 0.7, 4),
		"pref-attach":    PreferentialAttachmentGraph(400, 3, 5),
		"geometric":      GeometricGraph(300, 0.1, 6),
	}
	algos := []Algorithm{TVSMP, TVOpt, TVFilter, FastBCC, Auto}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			want, err := BiconnectedComponents(g, &Options{Algorithm: Sequential})
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(g, want); err != nil {
				t.Fatalf("sequential fails verification: %v", err)
			}
			for _, a := range algos {
				for _, p := range []int{1, 3} {
					res, err := BiconnectedComponents(g, &Options{Algorithm: a, Procs: p})
					if err != nil {
						t.Fatalf("%v p=%d: %v", a, p, err)
					}
					if res.NumComponents != want.NumComponents {
						t.Errorf("%v p=%d: %d components, want %d", a, p, res.NumComponents, want.NumComponents)
						continue
					}
					if g.NumEdges() > 0 && !conncomp.SamePartition(res.EdgeComponent, want.EdgeComponent) {
						t.Errorf("%v p=%d: partition differs", a, p)
					}
				}
			}
			// Derived views agree across algorithms by construction of the
			// partition check; sanity-check the counts once.
			cnt, err := CountBlocks(g, &Options{Procs: 2})
			if err != nil {
				t.Fatal(err)
			}
			if cnt != want.NumComponents {
				t.Errorf("CountBlocks=%d, want %d", cnt, want.NumComponents)
			}
		})
	}
}

// TestIntegrationLargeSingle exercises one paper-sized-but-scaled instance
// end to end with verification of derived structures.
func TestIntegrationLargeSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g, err := RandomConnectedGraph(20_000, 80_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BiconnectedComponents(g, &Options{Algorithm: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Algorithm{TVSMP, TVOpt, TVFilter, FastBCC} {
		res, err := BiconnectedComponents(g, &Options{Algorithm: a, Procs: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumComponents != want.NumComponents {
			t.Fatalf("%v: %d components, want %d", a, res.NumComponents, want.NumComponents)
		}
		if len(res.ArticulationPoints()) != len(want.ArticulationPoints()) {
			t.Fatalf("%v: articulation point count differs", a)
		}
		if len(res.Bridges()) != len(want.Bridges()) {
			t.Fatalf("%v: bridge count differs", a)
		}
		bct := res.BlockCutTree()
		if bct.NumBlocks() != res.NumComponents {
			t.Fatalf("%v: block-cut tree has %d blocks, want %d", a, bct.NumBlocks(), res.NumComponents)
		}
	}
}

// TestIntegrationDerivedConsistency checks the internal consistency of a
// Result's derived views on assorted graphs.
func TestIntegrationDerivedConsistency(t *testing.T) {
	for i := 0; i < 10; i++ {
		g, err := RandomGraph(100, 50*i, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		res, err := BiconnectedComponents(g, &Options{Algorithm: TVFilter, Procs: 2})
		if err != nil {
			t.Fatal(err)
		}
		comps := res.Components()
		if len(comps) != res.NumComponents {
			t.Fatalf("Components() returned %d groups, want %d", len(comps), res.NumComponents)
		}
		total := 0
		for k, edges := range comps {
			if len(edges) == 0 {
				t.Fatalf("block %d is empty", k)
			}
			total += len(edges)
			for _, e := range edges {
				if res.EdgeComponent[e] != int32(k) {
					t.Fatalf("edge %d grouped under %d but labeled %d", e, k, res.EdgeComponent[e])
				}
			}
		}
		if total != g.NumEdges() {
			t.Fatalf("groups cover %d edges, want %d", total, g.NumEdges())
		}
		// Bridges are exactly the singleton groups.
		bridgeCount := 0
		for _, edges := range comps {
			if len(edges) == 1 {
				bridgeCount++
			}
		}
		if got := len(res.Bridges()); got != bridgeCount {
			t.Fatalf("Bridges()=%d, singleton groups=%d", got, bridgeCount)
		}
		_ = fmt.Sprintf("%v", res.Algorithm) // String coverage
	}
}
