package bicc

import (
	"bicc/internal/graph"
	"bicc/internal/par"
	"bicc/internal/prefix"
	"bicc/internal/spantree"
)

// SparseCertificate returns a subgraph with the same vertex set, at most
// 2(n−1) edges, and exactly the same biconnectivity structure as g: same
// blocks (up to the removed edges, each of which lies inside an existing
// block), same articulation points, and the same connected components.
//
// It is the T ∪ F construction at the heart of the paper's §4 filtering
// algorithm — a BFS spanning tree T plus a spanning forest F of G−T —
// promoted to a standalone primitive: Theorem 2 guarantees each discarded
// edge closes a cycle within one block. Certificates compose with any
// downstream biconnectivity computation, shrinking dense inputs to linear
// size first.
//
// edgeMap[j] gives the index in g of the certificate's edge j.
func SparseCertificate(g *Graph, opt *Options) (cert *Graph, edgeMap []int32, err error) {
	if g == nil {
		return nil, nil, ErrNilGraph
	}
	procs := 0
	if opt != nil {
		procs = opt.Procs
	}
	p := par.Procs(procs)
	m := g.NumEdges()
	c := graph.ToCSR(p, g.el)
	t := spantree.BFS(p, c)
	inT := t.TreeEdgeMark(p, m)
	nontreeIDs := prefix.Compact(p, m, func(i int) bool { return !inT[i] })
	nontreeEdges := make([]Edge, len(nontreeIDs))
	par.For(p, len(nontreeIDs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			nontreeEdges[i] = g.el.Edges[nontreeIDs[i]]
		}
	})
	ff := spantree.SV(p, g.el.N, nontreeEdges)
	keep := make([]bool, m)
	par.For(p, m, func(lo, hi int) {
		copy(keep[lo:hi], inT[lo:hi])
	})
	par.For(p, len(ff.TreeEdges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keep[nontreeIDs[ff.TreeEdges[i]]] = true
		}
	})
	edgeMap = prefix.Compact(p, m, func(i int) bool { return keep[i] })
	edges := make([]Edge, len(edgeMap))
	par.For(p, len(edgeMap), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			edges[i] = g.el.Edges[edgeMap[i]]
		}
	})
	return &Graph{el: &graph.EdgeList{N: g.el.N, Edges: edges}}, edgeMap, nil
}
