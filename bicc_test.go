package bicc

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// triangleBridge is a triangle {0,1,2} with a pendant edge {2,3}.
func triangleBridge(t *testing.T) *Graph {
	return mustGraph(t, 4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}})
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(-1, nil); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := NewGraph(2, []Edge{{U: 0, V: 2}}); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := NewGraph(2, []Edge{{U: 1, V: 1}}); err == nil {
		t.Error("self loop accepted")
	}
	if _, err := NewGraph(3, []Edge{{U: 0, V: 1}, {U: 1, V: 0}}); err == nil {
		t.Error("duplicate edge accepted")
	}
	g := mustGraph(t, 3, []Edge{{U: 0, V: 1}})
	if g.NumVertices() != 3 || g.NumEdges() != 1 {
		t.Errorf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestNewGraphNormalized(t *testing.T) {
	g, loops, dups, err := NewGraphNormalized(3, []Edge{
		{U: 0, V: 1}, {U: 1, V: 0}, {U: 2, V: 2}, {U: 1, V: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if loops != 1 || dups != 1 {
		t.Errorf("loops=%d dups=%d, want 1,1", loops, dups)
	}
	if g.NumEdges() != 2 {
		t.Errorf("m=%d, want 2", g.NumEdges())
	}
	if _, _, _, err := NewGraphNormalized(2, []Edge{{U: 0, V: 5}}); err == nil {
		t.Error("out-of-range endpoint accepted by normalization")
	}
}

func TestBiconnectedComponentsDefault(t *testing.T) {
	res, err := BiconnectedComponents(triangleBridge(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumComponents != 2 {
		t.Fatalf("NumComponents=%d, want 2", res.NumComponents)
	}
	// Triangle edges share a block; bridge is alone.
	ec := res.EdgeComponent
	if ec[0] != ec[1] || ec[1] != ec[2] {
		t.Errorf("triangle edges split: %v", ec)
	}
	if ec[3] == ec[0] {
		t.Errorf("bridge merged with triangle: %v", ec)
	}
	if cuts := res.ArticulationPoints(); len(cuts) != 1 || cuts[0] != 2 {
		t.Errorf("articulation points = %v, want [2]", cuts)
	}
	if br := res.Bridges(); len(br) != 1 || br[0] != 3 {
		t.Errorf("bridges = %v, want [3]", br)
	}
	if res.IsBiconnected() {
		t.Error("graph with a bridge reported biconnected")
	}
}

// TestParseAlgorithmRoundTrip pins the public name set: every preset's
// String() parses back to the same value, and unknown names are rejected
// with an error that lists the valid presets.
func TestParseAlgorithmRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		algo Algorithm
	}{
		{"auto", Auto},
		{"sequential", Sequential},
		{"tv-smp", TVSMP},
		{"tv-opt", TVOpt},
		{"tv-filter", TVFilter},
		{"fast-bcc", FastBCC},
	}
	for _, tc := range cases {
		if got := tc.algo.String(); got != tc.name {
			t.Errorf("%v.String() = %q, want %q", tc.algo, got, tc.name)
		}
		got, err := ParseAlgorithm(tc.name)
		if err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", tc.name, err)
		} else if got != tc.algo {
			t.Errorf("ParseAlgorithm(%q) = %v, want %v", tc.name, got, tc.algo)
		}
	}
	for _, bad := range []string{"", "quantum", "TV-OPT", "fastbcc", "tv_opt"} {
		_, err := ParseAlgorithm(bad)
		if err == nil {
			t.Errorf("ParseAlgorithm(%q) accepted", bad)
			continue
		}
		for _, tc := range cases {
			if !strings.Contains(err.Error(), tc.name) {
				t.Errorf("ParseAlgorithm(%q) error %q does not list preset %q", bad, err, tc.name)
			}
		}
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	g, err := RandomConnectedGraph(300, 900, 7)
	if err != nil {
		t.Fatal(err)
	}
	var base *Result
	for _, a := range []Algorithm{Sequential, TVSMP, TVOpt, TVFilter, FastBCC, Auto} {
		res, err := BiconnectedComponents(g, &Options{Algorithm: a, Procs: 2})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.NumComponents != base.NumComponents {
			t.Errorf("%v: NumComponents=%d, want %d", a, res.NumComponents, base.NumComponents)
		}
	}
}

func TestAutoSelection(t *testing.T) {
	sparse, _ := RandomConnectedGraph(100, 150, 1) // m < 4n
	dense, _ := RandomConnectedGraph(100, 450, 2)  // m >= 4n
	r1, err := BiconnectedComponents(sparse, &Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Algorithm != TVOpt {
		t.Errorf("sparse auto picked %v, want tv-opt", r1.Algorithm)
	}
	r2, err := BiconnectedComponents(dense, &Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Algorithm != TVFilter {
		t.Errorf("dense auto picked %v, want tv-filter", r2.Algorithm)
	}
	r3, err := BiconnectedComponents(dense, &Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Algorithm != Sequential {
		t.Errorf("p=1 auto picked %v, want sequential", r3.Algorithm)
	}
}

func TestComponentsGrouping(t *testing.T) {
	res, err := BiconnectedComponents(triangleBridge(t), &Options{Algorithm: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	comps := res.Components()
	if len(comps) != 2 {
		t.Fatalf("%d groups, want 2", len(comps))
	}
	var sizes []int
	for _, c := range comps {
		sizes = append(sizes, len(c))
	}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 3 {
		t.Errorf("component sizes %v, want [1 3]", sizes)
	}
}

func TestIsBiconnected(t *testing.T) {
	cyc := MeshGraph(4, 4)
	res, err := BiconnectedComponents(cyc, &Options{Algorithm: TVOpt, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsBiconnected() {
		t.Error("mesh reported not biconnected")
	}
	// Isolated vertex breaks whole-graph biconnectivity.
	g := mustGraph(t, 4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	res2, err := BiconnectedComponents(g, &Options{Algorithm: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if res2.IsBiconnected() {
		t.Error("triangle plus isolated vertex reported biconnected")
	}
}

func TestNilAndEmpty(t *testing.T) {
	if _, err := BiconnectedComponents(nil, nil); err == nil {
		t.Error("nil graph accepted")
	}
	empty := mustGraph(t, 0, nil)
	res, err := BiconnectedComponents(empty, &Options{Algorithm: TVFilter, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumComponents != 0 {
		t.Errorf("empty graph NumComponents=%d", res.NumComponents)
	}
}

func TestGeneratorsErrors(t *testing.T) {
	if _, err := RandomGraph(3, 10, 1); err == nil {
		t.Error("overfull RandomGraph accepted")
	}
	if _, err := RandomConnectedGraph(5, 2, 1); err == nil {
		t.Error("under-tree RandomConnectedGraph accepted")
	}
	if g, err := RandomGraph(10, 20, 1); err != nil || g.NumEdges() != 20 {
		t.Errorf("RandomGraph: %v, m=%d", err, g.NumEdges())
	}
}

func TestGraphIO(t *testing.T) {
	g := ChainGraph(5)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != 5 || back.NumEdges() != 4 {
		t.Errorf("round trip: n=%d m=%d", back.NumVertices(), back.NumEdges())
	}
}

// Property: on random graphs, every algorithm agrees with Sequential on the
// number of blocks, and articulation/bridge counts match.
func TestQuickAlgorithmsEquivalent(t *testing.T) {
	f := func(seed int64, nn, mm uint8) bool {
		n := int(nn%40) + 2
		maxM := n * (n - 1) / 2
		m := int(mm) % (maxM + 1)
		g, err := RandomGraph(n, m, seed)
		if err != nil {
			return false
		}
		want, err := BiconnectedComponents(g, &Options{Algorithm: Sequential})
		if err != nil {
			return false
		}
		for _, a := range []Algorithm{TVSMP, TVOpt, TVFilter, FastBCC} {
			got, err := BiconnectedComponents(g, &Options{Algorithm: a, Procs: 2})
			if err != nil {
				return false
			}
			if got.NumComponents != want.NumComponents {
				return false
			}
			if len(got.ArticulationPoints()) != len(want.ArticulationPoints()) {
				return false
			}
			if len(got.Bridges()) != len(want.Bridges()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAnalyze(t *testing.T) {
	g := mustGraph(t, 5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	st := Analyze(g, 2)
	if st.Vertices != 5 || st.Edges != 3 {
		t.Errorf("sizes: %+v", st)
	}
	if st.Connected {
		t.Error("graph with isolated vertex reported connected")
	}
	if st.Isolated != 1 {
		t.Errorf("isolated=%d, want 1", st.Isolated)
	}
	if st.MaxDegree != 2 || st.MinDegree != 0 {
		t.Errorf("degrees: %+v", st)
	}
	if st.DiameterLB != 3 {
		t.Errorf("two-sweep diameter=%d, want 3 (path of 4)", st.DiameterLB)
	}
	if d := Diameter(ChainGraph(20), 1); d != 19 {
		t.Errorf("Diameter=%d, want 19", d)
	}
}

// Palmer [15] via the public API: dense random graphs have tiny diameter,
// the reason the paper dismisses the d term in TV-filter's O(d + log n).
func TestAnalyzeDenseRandomDiameter(t *testing.T) {
	g, err := RandomConnectedGraph(500, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diameter(g, 2); d > 3 {
		t.Errorf("dense random diameter=%d, want <=3", d)
	}
}
