package bicc

import (
	"fmt"
)

// Verify checks a Result against the definition of biconnected components,
// independently of the algorithms that produce results: every edge carries
// a dense block id, each block's edge-induced subgraph is connected, and
// each multi-edge block stays connected after removing any single vertex.
// Those conditions uniquely determine the block decomposition (splitting a
// true block yields a part whose union point would be a cut vertex;
// merging blocks yields a part with a cut vertex — both rejected by the
// biconnectivity check), so a nil return certifies the result.
//
// Cost is O(sum over blocks of v_b * m_b) — verifier-grade, not
// production-grade; use it in tests and audits.
func Verify(g *Graph, r *Result) error {
	if g == nil || r == nil {
		return fmt.Errorf("bicc: Verify: nil input")
	}
	m := g.NumEdges()
	if len(r.EdgeComponent) != m {
		return fmt.Errorf("bicc: Verify: %d edge labels for %d edges", len(r.EdgeComponent), m)
	}
	seen := make([]bool, r.NumComponents)
	for i, c := range r.EdgeComponent {
		if c < 0 || int(c) >= r.NumComponents {
			return fmt.Errorf("bicc: Verify: edge %d has block id %d outside [0,%d)", i, c, r.NumComponents)
		}
		seen[c] = true
	}
	for c, s := range seen {
		if !s {
			return fmt.Errorf("bicc: Verify: block id %d is unused (ids must be dense)", c)
		}
	}
	// Group edges by block.
	blocks := make([][]int32, r.NumComponents)
	for i, c := range r.EdgeComponent {
		blocks[c] = append(blocks[c], int32(i))
	}
	edges := g.Edges()
	for b, blockEdges := range blocks {
		if err := verifyBlock(edges, blockEdges); err != nil {
			return fmt.Errorf("bicc: Verify: block %d: %w", b, err)
		}
	}
	return nil
}

// verifyBlock checks that the edge set is connected and 2-connected (or a
// single edge).
func verifyBlock(edges []Edge, ids []int32) error {
	if len(ids) == 1 {
		return nil // a bridge block is trivially valid
	}
	// Compact the vertex ids.
	local := map[int32]int32{}
	var verts []int32
	for _, id := range ids {
		for _, v := range [2]int32{edges[id].U, edges[id].V} {
			if _, ok := local[v]; !ok {
				local[v] = int32(len(verts))
				verts = append(verts, v)
			}
		}
	}
	nv := len(verts)
	adj := make([][]int32, nv)
	for _, id := range ids {
		u, v := local[edges[id].U], local[edges[id].V]
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	// Connectivity with every single vertex removed (index nv means
	// "remove nothing" — plain connectivity).
	reach := make([]bool, nv)
	queue := make([]int32, 0, nv)
	for skip := 0; skip <= nv; skip++ {
		removed := int32(skip)
		if skip == nv {
			removed = -1
		}
		for i := range reach {
			reach[i] = false
		}
		start := int32(0)
		if removed == 0 {
			start = 1
		}
		reach[start] = true
		queue = append(queue[:0], start)
		count := 1
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range adj[v] {
				if w == removed || reach[w] {
					continue
				}
				reach[w] = true
				count++
				queue = append(queue, w)
			}
		}
		want := nv
		if removed >= 0 {
			want = nv - 1
		}
		if count != want {
			if removed < 0 {
				return fmt.Errorf("edge set is not connected (%d of %d vertices reachable)", count, nv)
			}
			return fmt.Errorf("vertex %d is a cut vertex inside the block", verts[removed])
		}
	}
	return nil
}
