package bicc

import "fmt"

// ReconstructResult rebuilds a Result from a persisted decomposition: the
// graph it was computed on, the algorithm that produced it, and the
// per-edge block labels. It exists for durability layers that store
// decompositions and need a Result back after a restart — in particular so
// a recovered result can be re-checked with Verify before it is served
// again. Labels are validated for range and density; Verify performs the
// full structural check.
func ReconstructResult(g *Graph, algo Algorithm, edgeComponent []int32) (*Result, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if len(edgeComponent) != g.NumEdges() {
		return nil, fmt.Errorf("bicc: ReconstructResult: %d edge labels for %d edges",
			len(edgeComponent), g.NumEdges())
	}
	numComponents := 0
	for i, c := range edgeComponent {
		if c < 0 {
			return nil, fmt.Errorf("bicc: ReconstructResult: edge %d has negative block id %d", i, c)
		}
		if int(c)+1 > numComponents {
			numComponents = int(c) + 1
		}
	}
	return &Result{
		NumComponents: numComponents,
		EdgeComponent: append([]int32(nil), edgeComponent...),
		Algorithm:     algo,
		g:             g.el,
	}, nil
}
