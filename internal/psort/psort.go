// Package psort implements the parallel sorts used as substrates by the
// TV-SMP Euler-tour construction: the Helman–JáJá parallel sample sort
// (§3.1: "We use the efficient parallel sample sorting routine designed by
// Helman and JáJá") and a parallel LSD radix sort as an ablation
// alternative for the integer arc keys.
//
// Both sorts operate on uint64 keys, optionally paired with an int32
// payload; the biconnectivity code packs arcs as min(u,v)<<32 | max(u,v) and
// carries the arc index as payload.
package psort

import (
	"math/bits"
	"math/rand"
	"sort"

	"bicc/internal/faults"
	"bicc/internal/par"
)

// Fault-injection points: per worker in the sample-sort histogram pass and
// per (digit, worker) in the radix passes. Sorting has no cancellation
// token, so cancel-kind rules are inert here.
var (
	siteSample = faults.RegisterSite("psort.sample", false)
	siteRadix  = faults.RegisterSite("psort.radix", false)
)

// Pair is a sortable (key, payload) record.
type Pair struct {
	Key uint64
	Val int32
}

// oversample is the number of sample candidates drawn per splitter; larger
// values give better-balanced buckets at negligible cost.
const oversample = 32

// SampleSort sorts keys ascending with p workers using sample sort:
// random splitters partition the input into p buckets, each bucket is
// scattered contiguously and sorted by one worker.
func SampleSort(p int, keys []uint64) {
	sampleSort(p, keys, func(k uint64) uint64 { return k }, quickSortKeys)
}

// SampleSortPairs sorts items ascending by Key with p workers. The sort is
// not stable; callers that need a deterministic order must use distinct keys
// (the arc encoding guarantees this).
func SampleSortPairs(p int, items []Pair) {
	sampleSort(p, items, func(it Pair) uint64 { return it.Key }, quickSortPairs)
}

func sampleSort[T any](p int, xs []T, key func(T) uint64, sortFn func([]T)) {
	n := len(xs)
	p = par.Procs(p)
	if p == 1 || n < 4096 {
		sortFn(xs)
		return
	}
	if p > n/64 {
		p = n / 64
	}
	// Draw p*oversample random samples, sort them, and pick p-1 splitters.
	rng := rand.New(rand.NewSource(int64(n)*2654435761 + 1))
	samples := make([]uint64, p*oversample)
	for i := range samples {
		samples[i] = key(xs[rng.Intn(n)])
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	splitters := make([]uint64, p-1)
	for i := range splitters {
		splitters[i] = samples[(i+1)*oversample]
	}
	// bucketOf locates the bucket for a key by binary search over splitters:
	// bucket b holds keys in (splitters[b-1], splitters[b]].
	bucketOf := func(k uint64) int {
		lo, hi := 0, len(splitters)
		for lo < hi {
			mid := (lo + hi) / 2
			if k > splitters[mid] {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	// Pass 1: per-worker bucket histograms.
	counts := make([][]int32, p)
	par.ForWorker(p, n, func(w, lo, hi int) {
		faults.Inject(nil, siteSample, w, 0)
		c := make([]int32, p)
		for i := lo; i < hi; i++ {
			c[bucketOf(key(xs[i]))]++
		}
		counts[w] = c
	})
	// Bucket base offsets, then per-worker cursors within each bucket.
	bucketStart := make([]int, p+1)
	for b := 0; b < p; b++ {
		total := 0
		for w := 0; w < p; w++ {
			if counts[w] == nil {
				continue
			}
			c := int(counts[w][b])
			counts[w][b] = int32(total)
			total += c
		}
		bucketStart[b+1] = bucketStart[b] + total
	}
	// Pass 2: scatter into a contiguous bucket layout.
	tmp := make([]T, n)
	par.ForWorker(p, n, func(w, lo, hi int) {
		c := counts[w]
		for i := lo; i < hi; i++ {
			b := bucketOf(key(xs[i]))
			pos := bucketStart[b] + int(c[b])
			c[b]++
			tmp[pos] = xs[i]
		}
	})
	// Pass 3: sort each bucket independently and copy back.
	par.Run(p, func(w int) {
		faults.Inject(nil, siteSample, w, 1)
		seg := tmp[bucketStart[w]:bucketStart[w+1]]
		sortFn(seg)
		copy(xs[bucketStart[w]:bucketStart[w+1]], seg)
	})
}

// RadixSortPairs sorts items ascending by Key with p workers using a stable
// LSD radix sort over 8-bit digits. Only the digits needed to cover maxKey
// are processed.
func RadixSortPairs(p int, items []Pair) {
	n := len(items)
	if n < 2 {
		return
	}
	p = par.Procs(p)
	var maxKey uint64
	for _, it := range items {
		if it.Key > maxKey {
			maxKey = it.Key
		}
	}
	digits := (bits.Len64(maxKey) + 7) / 8
	if digits == 0 {
		digits = 1
	}
	const radix = 256
	buf := make([]Pair, n)
	src, dst := items, buf
	for d := 0; d < digits; d++ {
		shift := uint(8 * d)
		// Per-worker histograms.
		counts := make([][]int32, p)
		par.ForWorker(p, n, func(w, lo, hi int) {
			faults.Inject(nil, siteRadix, w, d)
			c := make([]int32, radix)
			for i := lo; i < hi; i++ {
				c[(src[i].Key>>shift)&0xFF]++
			}
			counts[w] = c
		})
		// Exclusive offsets per (digit, worker) preserving stability:
		// all of digit b from worker 0, then worker 1, ...
		total := 0
		for b := 0; b < radix; b++ {
			for w := 0; w < p; w++ {
				if counts[w] == nil {
					continue
				}
				c := int(counts[w][b])
				counts[w][b] = int32(total)
				total += c
			}
		}
		par.ForWorker(p, n, func(w, lo, hi int) {
			c := counts[w]
			for i := lo; i < hi; i++ {
				b := (src[i].Key >> shift) & 0xFF
				dst[c[b]] = src[i]
				c[b]++
			}
		})
		src, dst = dst, src
	}
	if &src[0] != &items[0] {
		copy(items, src)
	}
}

// IsSortedPairs reports whether items are ascending by Key.
func IsSortedPairs(items []Pair) bool {
	for i := 1; i < len(items); i++ {
		if items[i-1].Key > items[i].Key {
			return false
		}
	}
	return true
}
