package psort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randKeys(rng *rand.Rand, n int, space uint64) []uint64 {
	xs := make([]uint64, n)
	for i := range xs {
		if space == 0 {
			xs[i] = rng.Uint64()
		} else {
			xs[i] = rng.Uint64() % space
		}
	}
	return xs
}

func TestSampleSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 100, 4095, 4096, 50000} {
		for _, p := range []int{1, 2, 4, 8} {
			xs := randKeys(rng, n, 0)
			want := append([]uint64(nil), xs...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			SampleSort(p, xs)
			for i := range want {
				if xs[i] != want[i] {
					t.Fatalf("n=%d p=%d: xs[%d]=%d, want %d", n, p, i, xs[i], want[i])
				}
			}
		}
	}
}

func TestSampleSortDuplicateHeavy(t *testing.T) {
	// Many duplicates stress splitter selection (empty buckets, ties).
	rng := rand.New(rand.NewSource(2))
	xs := randKeys(rng, 30000, 8)
	want := append([]uint64(nil), xs...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	SampleSort(4, xs)
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("xs[%d]=%d, want %d", i, xs[i], want[i])
		}
	}
}

func TestSampleSortAllEqual(t *testing.T) {
	xs := make([]uint64, 20000)
	for i := range xs {
		xs[i] = 7
	}
	SampleSort(4, xs)
	for i, x := range xs {
		if x != 7 {
			t.Fatalf("xs[%d]=%d, want 7", i, x)
		}
	}
}

func TestSampleSortPairsKeepsPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 20000
	items := make([]Pair, n)
	for i := range items {
		// Distinct keys so payload mapping is uniquely determined.
		items[i] = Pair{Key: uint64(i)<<20 | uint64(rng.Intn(1<<20)), Val: int32(i)}
	}
	rng.Shuffle(n, func(i, j int) { items[i], items[j] = items[j], items[i] })
	orig := map[uint64]int32{}
	for _, it := range items {
		orig[it.Key] = it.Val
	}
	SampleSortPairs(4, items)
	if !IsSortedPairs(items) {
		t.Fatal("not sorted")
	}
	for _, it := range items {
		if orig[it.Key] != it.Val {
			t.Fatalf("payload detached: key %d has val %d, want %d", it.Key, it.Val, orig[it.Key])
		}
	}
}

func TestRadixSortPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 2, 3, 1000, 65536} {
		for _, p := range []int{1, 3, 8} {
			items := make([]Pair, n)
			for i := range items {
				items[i] = Pair{Key: rng.Uint64() % (1 << 40), Val: int32(i)}
			}
			want := append([]Pair(nil), items...)
			sort.SliceStable(want, func(i, j int) bool { return want[i].Key < want[j].Key })
			RadixSortPairs(p, items)
			for i := range want {
				if items[i] != want[i] {
					t.Fatalf("n=%d p=%d: items[%d]=%+v, want %+v (stability)", n, p, i, items[i], want[i])
				}
			}
		}
	}
}

func TestRadixSortFullWidthKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := make([]Pair, 10000)
	for i := range items {
		items[i] = Pair{Key: rng.Uint64(), Val: int32(i)}
	}
	RadixSortPairs(4, items)
	if !IsSortedPairs(items) {
		t.Fatal("64-bit keys not sorted")
	}
}

func TestRadixSortAllZeroKeys(t *testing.T) {
	items := []Pair{{0, 3}, {0, 1}, {0, 2}}
	RadixSortPairs(2, items)
	// Stability: payload order must be preserved.
	for i, want := range []int32{3, 1, 2} {
		if items[i].Val != want {
			t.Fatalf("stability broken: items[%d].Val=%d, want %d", i, items[i].Val, want)
		}
	}
}

func TestQuickSampleSortIsPermutationSorted(t *testing.T) {
	f := func(xs []uint64, p uint8) bool {
		pp := int(p%8) + 1
		counts := map[uint64]int{}
		for _, x := range xs {
			counts[x]++
		}
		ys := append([]uint64(nil), xs...)
		SampleSort(pp, ys)
		for i := 1; i < len(ys); i++ {
			if ys[i-1] > ys[i] {
				return false
			}
		}
		for _, y := range ys {
			counts[y]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickRadixMatchesSampleSort(t *testing.T) {
	f := func(keys []uint64, p uint8) bool {
		pp := int(p%8) + 1
		a := make([]Pair, len(keys))
		b := make([]Pair, len(keys))
		for i, k := range keys {
			a[i] = Pair{Key: k, Val: int32(i)}
			b[i] = Pair{Key: k, Val: int32(i)}
		}
		RadixSortPairs(pp, a)
		SampleSortPairs(pp, b)
		for i := range a {
			if a[i].Key != b[i].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIsSortedPairs(t *testing.T) {
	if !IsSortedPairs(nil) {
		t.Error("nil should be sorted")
	}
	if !IsSortedPairs([]Pair{{1, 0}, {1, 1}, {2, 0}}) {
		t.Error("sorted slice reported unsorted")
	}
	if IsSortedPairs([]Pair{{2, 0}, {1, 0}}) {
		t.Error("unsorted slice reported sorted")
	}
}

func TestQuickSortDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{0, 1, 2, insertionCutoff, insertionCutoff + 1, 1000, 10000} {
		xs := randKeys(rng, n, 0)
		want := append([]uint64(nil), xs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		quickSortKeys(xs)
		for i := range want {
			if xs[i] != want[i] {
				t.Fatalf("n=%d: xs[%d]=%d, want %d", n, i, xs[i], want[i])
			}
		}
	}
	// Adversarial shapes: sorted, reversed, all-equal, two-valued.
	shapes := map[string][]uint64{}
	asc := make([]uint64, 5000)
	desc := make([]uint64, 5000)
	eq := make([]uint64, 5000)
	two := make([]uint64, 5000)
	for i := range asc {
		asc[i] = uint64(i)
		desc[i] = uint64(len(desc) - i)
		eq[i] = 42
		two[i] = uint64(i % 2)
	}
	shapes["ascending"] = asc
	shapes["descending"] = desc
	shapes["equal"] = eq
	shapes["two-valued"] = two
	for name, xs := range shapes {
		cp := append([]uint64(nil), xs...)
		sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
		quickSortKeys(xs)
		for i := range cp {
			if xs[i] != cp[i] {
				t.Fatalf("%s: mismatch at %d", name, i)
			}
		}
	}
}

func TestQuickSortPairsDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for _, n := range []int{0, 5, 100, 20000} {
		items := make([]Pair, n)
		for i := range items {
			items[i] = Pair{Key: rng.Uint64() % 64, Val: int32(i)} // heavy duplicates
		}
		want := append([]Pair(nil), items...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].Key < want[j].Key })
		quickSortPairs(items)
		for i := range items {
			if items[i].Key != want[i].Key {
				t.Fatalf("n=%d: key order broken at %d", n, i)
			}
		}
	}
}
