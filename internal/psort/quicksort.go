package psort

// Specialized sequential sorts for the two element shapes the sample sort
// handles. Direct uint64 comparisons avoid the interface-call overhead of
// sort.Slice, which the Euler-tour ablation showed dominating the TV-SMP
// sort step. Partitioning is three-way (Dutch national flag), so
// duplicate-heavy inputs — common after splitter ties — stay linear.

const insertionCutoff = 24

// quickSortKeys sorts ascending: median-of-three pivot, three-way
// partition, insertion sort below the cutoff, iteration on the larger side.
func quickSortKeys(xs []uint64) {
	for len(xs) > insertionCutoff {
		lt, gt := partition3Keys(xs)
		if lt < len(xs)-gt {
			quickSortKeys(xs[:lt])
			xs = xs[gt:]
		} else {
			quickSortKeys(xs[gt:])
			xs = xs[:lt]
		}
	}
	insertionKeys(xs)
}

func insertionKeys(xs []uint64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

func median3Keys(xs []uint64) uint64 {
	a, b, c := xs[0], xs[len(xs)/2], xs[len(xs)-1]
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
		if a > b {
			b = a
		}
	}
	return b
}

// partition3Keys rearranges xs into [<pivot | ==pivot | >pivot] and returns
// the boundaries [lt, gt) of the equal run.
func partition3Keys(xs []uint64) (lt, gt int) {
	pivot := median3Keys(xs)
	lo, i, hi := 0, 0, len(xs)
	for i < hi {
		switch {
		case xs[i] < pivot:
			xs[lo], xs[i] = xs[i], xs[lo]
			lo++
			i++
		case xs[i] > pivot:
			hi--
			xs[i], xs[hi] = xs[hi], xs[i]
		default:
			i++
		}
	}
	return lo, hi
}

// quickSortPairs is quickSortKeys for (key, payload) records.
func quickSortPairs(xs []Pair) {
	for len(xs) > insertionCutoff {
		lt, gt := partition3Pairs(xs)
		if lt < len(xs)-gt {
			quickSortPairs(xs[:lt])
			xs = xs[gt:]
		} else {
			quickSortPairs(xs[gt:])
			xs = xs[:lt]
		}
	}
	insertionPairs(xs)
}

func insertionPairs(xs []Pair) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j].Key > v.Key {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

func median3Pairs(xs []Pair) uint64 {
	a, b, c := xs[0].Key, xs[len(xs)/2].Key, xs[len(xs)-1].Key
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
		if a > b {
			b = a
		}
	}
	return b
}

func partition3Pairs(xs []Pair) (lt, gt int) {
	pivot := median3Pairs(xs)
	lo, i, hi := 0, 0, len(xs)
	for i < hi {
		switch {
		case xs[i].Key < pivot:
			xs[lo], xs[i] = xs[i], xs[lo]
			lo++
			i++
		case xs[i].Key > pivot:
			hi--
			xs[i], xs[hi] = xs[hi], xs[i]
		default:
			i++
		}
	}
	return lo, hi
}
