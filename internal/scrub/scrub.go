// Package scrub is the self-healing loop over bccd's durable tiers. A
// Scrubber walks every registered Tier — WAL segments and snapshots, result
// spill files, shard blobs, the replication retention ring — re-verifying
// each artifact's checksums (and, where the tier chooses, its content
// against a recomputation), then escalating anything damaged through the
// tier's own repair ladder before quarantining what nothing can heal.
//
// Cycles are budgeted in verified bytes and resumable: each tier keeps a
// rotating cursor, so a budget too small for one full sweep still covers
// every artifact across consecutive cycles. Detection is proactive — the
// point is to find silent bit-rot before a query, a recovery, or a failover
// trips over it.
package scrub

import (
	"os"
	"sync"
	"sync/atomic"
	"time"

	"bicc/internal/faults"
)

// SiteRead is the generic bit-rot injection site on the scrubber's file
// reads: a KindCorrupt rule here flips one deterministic bit in the image
// just read, regardless of tier. iter = the artifact's index in the pass.
var SiteRead = faults.RegisterSite("scrub.read", false)

// ReadFile reads one artifact image and offers it to the scrub.read
// injection site before any verification sees it.
func ReadFile(path string, iter int) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	faults.InjectCorrupt(SiteRead, 0, iter, b)
	return b, nil
}

// Tier is one durable artifact class the scrubber walks. Implementations
// live next to the subsystems that own the artifacts (internal/service
// wires them up); the scrubber only sequences, budgets, and counts.
type Tier interface {
	// Name labels the tier in reports and metrics ("wal", "spill", ...).
	Name() string
	// List enumerates the tier's artifact names for one pass.
	List() []string
	// Check re-verifies one artifact and returns how many bytes it
	// examined. An artifact that legitimately vanished between List and
	// Check (rotation, eviction) returns (0, nil) — absence is not damage.
	Check(name string, iter int) (bytes int64, err error)
	// Repair heals a corrupt artifact from the cheapest healthy source
	// available, returning a label for the source used ("cache",
	// "recompute", "compact", "resync", ...).
	Repair(name string, cause error) (source string, err error)
	// Quarantine moves an unrepairable artifact aside so it cannot be
	// served, and records why.
	Quarantine(name string, cause error) error
}

// Config tunes a Scrubber.
type Config struct {
	// Interval is the background cycle cadence; <= 0 disables the
	// background loop (cycles run only via RunCycle).
	Interval time.Duration
	// Budget caps the bytes verified per cycle; <= 0 means unlimited. A
	// cycle that exhausts its budget stops early and the next one resumes
	// from each tier's cursor.
	Budget int64
	// Logf receives detection/repair/quarantine lines; nil disables them.
	Logf func(format string, args ...any)
}

// TierReport is one tier's share of a cycle Report.
type TierReport struct {
	Tier        string   `json:"tier"`
	Listed      int      `json:"listed"`
	Checked     int      `json:"checked"`
	Corrupt     int      `json:"corrupt"`
	Repaired    int      `json:"repaired"`
	Quarantined int      `json:"quarantined"`
	Bytes       int64    `json:"bytes"`
	Errors      []string `json:"errors,omitempty"`
}

// Report summarizes one scrub cycle.
type Report struct {
	Start       time.Time    `json:"start"`
	DurationNs  int64        `json:"duration_ns"`
	Budget      int64        `json:"budget,omitempty"`
	Truncated   bool         `json:"truncated,omitempty"` // budget ran out before full coverage
	Checked     int          `json:"checked"`
	Corrupt     int          `json:"corrupt"`
	Repaired    int          `json:"repaired"`
	Quarantined int          `json:"quarantined"`
	Bytes       int64        `json:"bytes"`
	Tiers       []TierReport `json:"tiers"`
}

// Scrubber sequences scrub cycles over its tiers.
type Scrubber struct {
	cfg   Config
	tiers []Tier

	runMu sync.Mutex // serializes cycles (manual sweeps vs the loop)

	mu      sync.Mutex
	cursors map[string]int

	cycles      atomic.Int64
	checked     atomic.Int64
	corrupt     atomic.Int64
	repaired    atomic.Int64
	quarantined atomic.Int64
	bytes       atomic.Int64

	last atomic.Pointer[Report]

	stop     chan struct{}
	done     chan struct{}
	started  atomic.Bool
	stopOnce sync.Once
}

// New builds a Scrubber over tiers. Call Start to run the background loop;
// RunCycle works either way.
func New(cfg Config, tiers ...Tier) *Scrubber {
	return &Scrubber{
		cfg:     cfg,
		tiers:   tiers,
		cursors: map[string]int{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

func (s *Scrubber) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// RunCycle runs one budgeted pass over every tier and returns its report.
// Cycles are serialized: a manual sweep overlapping the background loop
// waits rather than double-walking a tier.
func (s *Scrubber) RunCycle() *Report {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	start := time.Now()
	rep := &Report{Start: start, Budget: s.cfg.Budget}
	var spent int64
	for _, t := range s.tiers {
		tr := TierReport{Tier: t.Name()}
		names := t.List()
		tr.Listed = len(names)
		if len(names) > 0 {
			s.mu.Lock()
			cur := s.cursors[t.Name()] % len(names)
			s.mu.Unlock()
			for i := 0; i < len(names); i++ {
				if s.cfg.Budget > 0 && spent >= s.cfg.Budget {
					rep.Truncated = true
					break
				}
				idx := (cur + i) % len(names)
				name := names[idx]
				n, err := t.Check(name, idx)
				tr.Checked++
				tr.Bytes += n
				spent += n
				s.mu.Lock()
				s.cursors[t.Name()] = (idx + 1) % len(names)
				s.mu.Unlock()
				if err == nil {
					continue
				}
				tr.Corrupt++
				if len(tr.Errors) < 8 {
					tr.Errors = append(tr.Errors, name+": "+err.Error())
				}
				if src, rerr := t.Repair(name, err); rerr == nil {
					tr.Repaired++
					s.logf("scrub: %s %s: corrupt (%v); repaired from %s", t.Name(), name, err, src)
					continue
				} else {
					s.logf("scrub: %s %s: corrupt (%v); repair failed: %v", t.Name(), name, err, rerr)
				}
				if qerr := t.Quarantine(name, err); qerr != nil {
					s.logf("scrub: %s %s: quarantine failed: %v", t.Name(), name, qerr)
					if len(tr.Errors) < 8 {
						tr.Errors = append(tr.Errors, name+": quarantine: "+qerr.Error())
					}
				} else {
					tr.Quarantined++
					s.logf("scrub: %s %s: quarantined", t.Name(), name)
				}
			}
		}
		rep.Tiers = append(rep.Tiers, tr)
		rep.Checked += tr.Checked
		rep.Corrupt += tr.Corrupt
		rep.Repaired += tr.Repaired
		rep.Quarantined += tr.Quarantined
		rep.Bytes += tr.Bytes
	}
	rep.DurationNs = time.Since(start).Nanoseconds()
	s.cycles.Add(1)
	s.checked.Add(int64(rep.Checked))
	s.corrupt.Add(int64(rep.Corrupt))
	s.repaired.Add(int64(rep.Repaired))
	s.quarantined.Add(int64(rep.Quarantined))
	s.bytes.Add(rep.Bytes)
	s.last.Store(rep)
	return rep
}

// Start launches the background loop at cfg.Interval; a no-op when the
// interval is unset (manual cycles only).
func (s *Scrubber) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	if s.cfg.Interval <= 0 {
		close(s.done)
		return
	}
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.RunCycle()
			}
		}
	}()
}

// Stop halts the background loop and waits for an in-flight cycle to
// finish. Safe to call more than once, and required before tearing down the
// subsystems the tiers reach into.
func (s *Scrubber) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	if !s.started.Load() {
		return
	}
	<-s.done
	// A cycle the loop had already entered holds runMu; taking it here
	// means it has fully drained before Stop returns.
	s.runMu.Lock()
	s.runMu.Unlock() //nolint:staticcheck // empty critical section is the drain
}

// LastReport returns the most recent cycle's report, nil before any cycle.
func (s *Scrubber) LastReport() *Report { return s.last.Load() }

// Cycles, Checked, Corrupt, Repaired, Quarantined, and Bytes expose the
// scrubber's lifetime counters for metrics.
func (s *Scrubber) Cycles() int64        { return s.cycles.Load() }
func (s *Scrubber) Checked() int64       { return s.checked.Load() }
func (s *Scrubber) Corrupt() int64       { return s.corrupt.Load() }
func (s *Scrubber) Repaired() int64      { return s.repaired.Load() }
func (s *Scrubber) Quarantined() int64   { return s.quarantined.Load() }
func (s *Scrubber) BytesScrubbed() int64 { return s.bytes.Load() }
