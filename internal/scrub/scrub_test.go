package scrub

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bicc/internal/faults"
)

// fakeTier is a scriptable Tier: each artifact has a size, an optional check
// error, and an optional repair outcome.
type fakeTier struct {
	name string

	mu          sync.Mutex
	artifacts   []string
	size        map[string]int64
	checkErr    map[string]error
	repairable  map[string]bool
	checked     []string // Check calls in order, across cycles
	repaired    []string
	quarantined []string
}

func newFakeTier(name string, names ...string) *fakeTier {
	t := &fakeTier{name: name, artifacts: names,
		size: map[string]int64{}, checkErr: map[string]error{}, repairable: map[string]bool{}}
	for _, n := range names {
		t.size[n] = 100
	}
	return t
}

func (t *fakeTier) Name() string { return t.name }

func (t *fakeTier) List() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.artifacts...)
}

func (t *fakeTier) Check(name string, iter int) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.checked = append(t.checked, name)
	return t.size[name], t.checkErr[name]
}

func (t *fakeTier) Repair(name string, cause error) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.repairable[name] {
		return "", errors.New("no healthy source")
	}
	t.repaired = append(t.repaired, name)
	delete(t.checkErr, name) // healed: next check passes
	return "fake-source", nil
}

func (t *fakeTier) Quarantine(name string, cause error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.quarantined = append(t.quarantined, name)
	// Quarantined artifacts leave the listing, like a file moved aside.
	kept := t.artifacts[:0]
	for _, a := range t.artifacts {
		if a != name {
			kept = append(kept, a)
		}
	}
	t.artifacts = kept
	return nil
}

func (t *fakeTier) checkedNames() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.checked...)
}

// TestRunCycleClassifies proves one cycle sorts artifacts into clean,
// repaired, and quarantined, and that the report and lifetime counters
// agree.
func TestRunCycleClassifies(t *testing.T) {
	tier := newFakeTier("fake", "clean", "healable", "doomed")
	tier.checkErr["healable"] = errors.New("bit rot")
	tier.checkErr["doomed"] = errors.New("bit rot")
	tier.repairable["healable"] = true

	s := New(Config{}, tier)
	rep := s.RunCycle()
	if rep.Checked != 3 || rep.Corrupt != 2 || rep.Repaired != 1 || rep.Quarantined != 1 {
		t.Fatalf("report = %+v, want 3 checked / 2 corrupt / 1 repaired / 1 quarantined", rep)
	}
	if rep.Bytes != 300 {
		t.Fatalf("bytes = %d, want 300", rep.Bytes)
	}
	if len(rep.Tiers) != 1 || rep.Tiers[0].Tier != "fake" || rep.Tiers[0].Listed != 3 {
		t.Fatalf("tier report = %+v", rep.Tiers)
	}
	if len(rep.Tiers[0].Errors) != 2 {
		t.Fatalf("tier errors = %v, want the two corrupt artifacts", rep.Tiers[0].Errors)
	}
	if got := tier.quarantined; len(got) != 1 || got[0] != "doomed" {
		t.Fatalf("quarantined %v, want [doomed]", got)
	}
	if s.Cycles() != 1 || s.Checked() != 3 || s.Corrupt() != 2 ||
		s.Repaired() != 1 || s.Quarantined() != 1 || s.BytesScrubbed() != 300 {
		t.Fatalf("lifetime counters disagree with the report")
	}
	if s.LastReport() != rep {
		t.Fatalf("LastReport did not return the cycle's report")
	}

	// The healed artifact stays healed; the doomed one is gone from the
	// listing: the next cycle is entirely clean.
	rep = s.RunCycle()
	if rep.Corrupt != 0 || rep.Checked != 2 {
		t.Fatalf("second cycle = %+v, want 2 checked and clean", rep)
	}
}

// TestBudgetTruncatesAndCursorResumes proves a byte budget stops a cycle
// early (marked Truncated) and the rotating cursor makes consecutive cycles
// cover the full artifact set anyway.
func TestBudgetTruncatesAndCursorResumes(t *testing.T) {
	tier := newFakeTier("fake", "a", "b", "c", "d")
	// Budget of 200 = two 100-byte artifacts per cycle.
	s := New(Config{Budget: 200}, tier)

	rep := s.RunCycle()
	if !rep.Truncated {
		t.Fatalf("cycle under budget not marked truncated: %+v", rep)
	}
	if rep.Checked != 2 {
		t.Fatalf("first cycle checked %d, want 2", rep.Checked)
	}
	rep = s.RunCycle()
	if rep.Checked != 2 {
		t.Fatalf("second cycle checked %d, want 2", rep.Checked)
	}
	got := tier.checkedNames()
	want := []string{"a", "b", "c", "d"}
	if len(got) != 4 {
		t.Fatalf("checks across two cycles = %v, want each artifact once", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cursor did not resume in order: %v", got)
		}
	}
	// Third cycle wraps back to the front.
	s.RunCycle()
	if got := tier.checkedNames(); got[4] != "a" || got[5] != "b" {
		t.Fatalf("cursor did not wrap: %v", got)
	}
}

// TestBudgetSpansTiers proves the budget is per cycle, not per tier: a
// first tier that exhausts it starves later tiers only until the cursors
// bring them around.
func TestBudgetSpansTiers(t *testing.T) {
	one := newFakeTier("one", "a", "b")
	two := newFakeTier("two", "x")
	s := New(Config{Budget: 100}, one, two)
	rep := s.RunCycle()
	if !rep.Truncated || rep.Checked != 1 {
		t.Fatalf("first cycle = %+v, want 1 checked, truncated", rep)
	}
	if len(rep.Tiers) != 2 || rep.Tiers[1].Checked != 0 {
		t.Fatalf("tier two was checked despite an exhausted budget: %+v", rep.Tiers)
	}
}

// TestStartStopLifecycle proves the background loop runs cycles on its
// cadence and Stop drains: no cycle is in flight once it returns.
func TestStartStopLifecycle(t *testing.T) {
	tier := newFakeTier("fake", "a")
	s := New(Config{Interval: 2 * time.Millisecond}, tier)
	s.Start()
	deadline := time.Now().Add(5 * time.Second)
	for s.Cycles() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Cycles() < 3 {
		t.Fatalf("background loop ran %d cycles, want >= 3", s.Cycles())
	}
	s.Stop()
	n := s.Cycles()
	time.Sleep(10 * time.Millisecond)
	if s.Cycles() != n {
		t.Fatalf("cycles advanced after Stop")
	}
	s.Stop() // idempotent
}

// TestStopBeforeStart proves Stop on a never-started scrubber returns
// immediately instead of blocking on the loop's done channel.
func TestStopBeforeStart(t *testing.T) {
	s := New(Config{Interval: time.Hour}, newFakeTier("fake", "a"))
	done := make(chan struct{})
	go func() { s.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("Stop blocked on a never-started scrubber")
	}
}

// TestStartWithoutInterval proves a manual-only scrubber (Interval <= 0)
// starts and stops cleanly with no background loop.
func TestStartWithoutInterval(t *testing.T) {
	s := New(Config{}, newFakeTier("fake", "a"))
	s.Start()
	s.Stop()
	if s.Cycles() != 0 {
		t.Fatalf("manual-only scrubber ran %d background cycles", s.Cycles())
	}
}

// TestReadFileInjection proves ReadFile is a faithful read normally and the
// scrub.read site's deterministic bit-flip changes the image under an
// active corrupt plan.
func TestReadFileInjection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact")
	want := []byte("sixteen bytes!!!")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("clean read altered the image")
	}

	r := faults.NewRule(faults.KindCorrupt, "scrub.read")
	r.Count = 1
	faults.Activate(&faults.Plan{Seed: 5, Rules: []*faults.Rule{r}})
	defer faults.Deactivate()
	got, err = ReadFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != want[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("injected read differs in %d bytes, want exactly 1", diff)
	}

	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing"), 0); err == nil {
		t.Fatalf("ReadFile of a missing artifact returned no error")
	}
}

// TestRunCycleSerialized proves overlapping RunCycle calls do not interleave
// within a tier: each cycle's checks are a contiguous block.
func TestRunCycleSerialized(t *testing.T) {
	tier := newFakeTier("fake", "a", "b", "c")
	s := New(Config{}, tier)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.RunCycle()
		}()
	}
	wg.Wait()
	got := tier.checkedNames()
	if len(got) != 12 {
		t.Fatalf("4 cycles checked %d artifacts, want 12", len(got))
	}
	// With a rotating cursor each serialized cycle is a rotation of a/b/c;
	// any interleaving would repeat a name within a window of 3.
	for i := 0; i+3 <= len(got); i += 3 {
		window := map[string]bool{}
		for _, n := range got[i : i+3] {
			window[n] = true
		}
		if len(window) != 3 {
			t.Fatalf("cycle window %v repeats an artifact: cycles interleaved (%v)",
				got[i:i+3], got)
		}
	}
	if s.Cycles() != 4 {
		t.Fatalf("Cycles() = %d, want 4", s.Cycles())
	}
}

// TestListedVsCheckedAccounting pins the Listed/Checked split: vanished
// artifacts ((0, nil) from Check) still count as checked but contribute no
// bytes.
func TestListedVsCheckedAccounting(t *testing.T) {
	tier := newFakeTier("fake", "here", "gone")
	tier.size["gone"] = 0 // vanished between List and Check
	s := New(Config{}, tier)
	rep := s.RunCycle()
	if rep.Tiers[0].Listed != 2 || rep.Checked != 2 || rep.Bytes != 100 {
		t.Fatalf("report = %+v, want listed 2, checked 2, bytes 100", rep)
	}
	if rep.Corrupt != 0 {
		t.Fatalf("a vanished artifact was classified corrupt: %+v", rep)
	}
}
