package conncomp

import (
	"sync/atomic"

	"bicc/internal/graph"
	"bicc/internal/par"
)

// HCS computes connected-component labels with the Hirschberg–Chandra–
// Sarwate algorithm (CACM 1979), the other graft-and-shortcut scheme the
// paper names in §3.2. Where Shiloach–Vishkin races edges against root
// slots directly, HCS proceeds in synchronized rounds over the *adjacency*
// structure: every vertex proposes the smallest neighboring component
// label, proposals are reduced per component, winning roots hook, and a
// full shortcut restores stars. The CSR input (vs SV's edge list) is the
// representation contrast the benchmarks measure.
func HCS(p int, c *graph.CSR) []int32 {
	n := int(c.N)
	d := make([]int32, n)
	candidate := make([]int32, n) // per-root best incoming proposal
	par.For(p, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			d[v] = int32(v)
		}
	})
	if len(c.Adj) == 0 {
		return d
	}
	const none = int32(1<<31 - 1)
	var changed atomic.Bool
	for {
		// Round part 1: every vertex proposes the minimum label among its
		// neighbors' components; the proposal is folded into its own
		// component's root slot.
		par.For(p, n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				candidate[v] = none
			}
		})
		par.ForDynamic(p, n, 0, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				dv := atomic.LoadInt32(&d[v])
				best := none
				for _, w := range c.Neighbors(int32(v)) {
					dw := atomic.LoadInt32(&d[w])
					if dw != dv && dw < best {
						best = dw
					}
				}
				if best < dv {
					atomicMinInt32(&candidate[dv], best)
				}
			}
		})
		// Round part 2: hook winning roots.
		changed.Store(false)
		par.For(p, n, func(lo, hi int) {
			localChanged := false
			for r := lo; r < hi; r++ {
				if best := candidate[r]; best != none && d[r] == int32(r) && best < int32(r) {
					d[r] = best
					localChanged = true
				}
			}
			if localChanged {
				changed.Store(true)
			}
		})
		if !changed.Load() {
			break
		}
		// Round part 3: full shortcut back to stars.
		shortcut(p, d)
	}
	return d
}

func atomicMinInt32(addr *int32, v int32) {
	for {
		cur := atomic.LoadInt32(addr)
		if v >= cur || atomic.CompareAndSwapInt32(addr, cur, v) {
			return
		}
	}
}
