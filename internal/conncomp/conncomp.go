// Package conncomp implements connected components: the Shiloach–Vishkin
// graft-and-shortcut algorithm (step 6 of Tarjan–Vishkin, run on the
// auxiliary graph) adapted to SMPs with atomics standing in for arbitrary
// CRCW writes, plus sequential union-find and BFS baselines used as test
// oracles and for the sequential comparison runs.
package conncomp

import (
	"sync/atomic"

	"bicc/internal/faults"
	"bicc/internal/graph"
	"bicc/internal/par"
)

// Fault-injection point: once per graft/shortcut round, with the
// computation's canceler, so injected cancellations propagate for real.
var siteSV = faults.RegisterSite("conncomp.sv", true)

// ShiloachVishkin computes connected-component labels for a graph with n
// vertices and the given edges using p workers. The returned slice maps each
// vertex to the smallest vertex id reachable from it along graft chains —
// a canonical component representative (the root of its star).
//
// Each round grafts the root of the higher-labeled endpoint's tree onto the
// lower label and then fully shortcuts every vertex to its root. Labels are
// monotonically non-increasing per slot, so racing writers (any-writer-wins,
// the paper's arbitrary CRCW PRAM model) cannot livelock; atomics make the
// races well-defined under the Go memory model.
func ShiloachVishkin(p int, n int32, edges []graph.Edge) []int32 {
	return ShiloachVishkinC(nil, p, n, edges)
}

// ShiloachVishkinC is ShiloachVishkin with cooperative cancellation, polled
// between graft/shortcut rounds and inside the edge scan. When c trips the
// returned labels are incomplete — callers must check c.Err() and discard
// them.
func ShiloachVishkinC(c *par.Canceler, p int, n int32, edges []graph.Edge) []int32 {
	d := make([]int32, n)
	par.For(p, int(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] = int32(i)
		}
	})
	if len(edges) == 0 {
		return d
	}
	var changed atomic.Bool
	for round := 0; ; round++ {
		if c.Err() != nil {
			return d
		}
		faults.Inject(c, siteSV, 0, round)
		changed.Store(false)
		// Graft phase: hook the root of the larger label onto the smaller.
		par.ForDynamicC(c, p, len(edges), 0, func(lo, hi int) {
			localChanged := false
			for i := lo; i < hi; i++ {
				e := edges[i]
				du := atomic.LoadInt32(&d[e.U])
				dv := atomic.LoadInt32(&d[e.V])
				if du < dv {
					if atomic.CompareAndSwapInt32(&d[dv], dv, du) {
						localChanged = true
					}
				} else if dv < du {
					if atomic.CompareAndSwapInt32(&d[du], du, dv) {
						localChanged = true
					}
				}
			}
			if localChanged {
				changed.Store(true)
			}
		})
		if !changed.Load() {
			break
		}
		shortcut(p, d)
	}
	return d
}

// shortcut performs full pointer jumping: after it returns, d[v] == d[d[v]]
// for every v.
func shortcut(p int, d []int32) {
	par.For(p, len(d), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			dv := atomic.LoadInt32(&d[v])
			for {
				ddv := atomic.LoadInt32(&d[dv])
				if ddv == dv {
					break
				}
				dv = ddv
			}
			atomic.StoreInt32(&d[v], dv)
		}
	})
}

// UnionFind computes component labels sequentially with weighted union and
// path compression; the label of a component is its smallest vertex id,
// matching ShiloachVishkin's canonical form.
func UnionFind(n int32, edges []graph.Edge) []int32 {
	parent := make([]int32, n)
	size := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
		size[i] = 1
	}
	var find func(v int32) int32
	find = func(v int32) int32 {
		root := v
		for parent[root] != root {
			root = parent[root]
		}
		for parent[v] != root {
			parent[v], v = root, parent[v]
		}
		return root
	}
	for _, e := range edges {
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			continue
		}
		if size[ru] < size[rv] {
			ru, rv = rv, ru
		}
		parent[rv] = ru
		size[ru] += size[rv]
	}
	// Canonicalize: label every vertex with the minimum id in its component.
	minID := make([]int32, n)
	for i := range minID {
		minID[i] = int32(n)
	}
	for v := int32(0); v < n; v++ {
		r := find(v)
		if v < minID[r] {
			minID[r] = v
		}
	}
	labels := make([]int32, n)
	for v := int32(0); v < n; v++ {
		labels[v] = minID[find(v)]
	}
	return labels
}

// BFS computes component labels with a sequential breadth-first search over
// a CSR; each component is labeled by its smallest vertex id.
func BFS(c *graph.CSR) []int32 {
	labels := make([]int32, c.N)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int32, 0, c.N)
	for s := int32(0); s < c.N; s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = s
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range c.Neighbors(v) {
				if labels[w] == -1 {
					labels[w] = s
					queue = append(queue, w)
				}
			}
		}
	}
	return labels
}

// Count returns the number of distinct labels.
func Count(labels []int32) int {
	seen := make(map[int32]struct{}, 16)
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// Normalize renumbers labels in place to the dense range [0, k) in order of
// first appearance and returns k. Useful for comparing partitions produced
// by different algorithms.
func Normalize(labels []int32) int {
	remap := make(map[int32]int32, 16)
	for i, l := range labels {
		nl, ok := remap[l]
		if !ok {
			nl = int32(len(remap))
			remap[l] = nl
		}
		labels[i] = nl
	}
	return len(remap)
}

// SamePartition reports whether two labelings induce the same partition of
// [0, n).
func SamePartition(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int32]int32{}
	bwd := map[int32]int32{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if y, ok := bwd[b[i]]; ok && y != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}
