package conncomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bicc/internal/gen"
	"bicc/internal/graph"
)

func TestShiloachVishkinSmall(t *testing.T) {
	// Two triangles and an isolated vertex.
	g := &graph.EdgeList{N: 7, Edges: []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
	}}
	labels := ShiloachVishkin(2, g.N, g.Edges)
	if Count(labels) != 3 {
		t.Fatalf("components=%d, want 3 (labels=%v)", Count(labels), labels)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("first triangle split: %v", labels[:3])
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Errorf("second triangle split: %v", labels[3:6])
	}
	if labels[6] != 6 {
		t.Errorf("isolated vertex label=%d, want 6", labels[6])
	}
}

func TestShiloachVishkinMinLabel(t *testing.T) {
	// The canonical label must be the component's minimum vertex id.
	g := gen.RandomConnected(200, 400, 3)
	labels := ShiloachVishkin(4, g.N, g.Edges)
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("connected graph: label[%d]=%d, want 0", v, l)
		}
	}
}

func TestShiloachVishkinMatchesUnionFind(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(300)
		maxM := n * (n - 1) / 2
		m := rng.Intn(maxM + 1)
		g := gen.Random(n, m, int64(trial))
		for _, p := range []int{1, 4} {
			sv := ShiloachVishkin(p, g.N, g.Edges)
			uf := UnionFind(g.N, g.Edges)
			for v := range sv {
				if sv[v] != uf[v] {
					t.Fatalf("trial %d p=%d: vertex %d SV=%d UF=%d", trial, p, v, sv[v], uf[v])
				}
			}
		}
	}
}

func TestBFSMatchesUnionFind(t *testing.T) {
	g := gen.Disconnected(gen.Cycle(10), gen.Chain(5), gen.Star(7))
	bfs := BFS(graph.ToCSR(1, g))
	uf := UnionFind(g.N, g.Edges)
	if !SamePartition(bfs, uf) {
		t.Errorf("BFS and union-find disagree:\n%v\n%v", bfs, uf)
	}
}

func TestEmptyAndEdgeless(t *testing.T) {
	if got := ShiloachVishkin(2, 0, nil); len(got) != 0 {
		t.Errorf("n=0: %v", got)
	}
	got := ShiloachVishkin(2, 5, nil)
	for v, l := range got {
		if l != int32(v) {
			t.Errorf("edgeless: label[%d]=%d", v, l)
		}
	}
	if Count(got) != 5 {
		t.Errorf("edgeless count=%d, want 5", Count(got))
	}
}

func TestNormalize(t *testing.T) {
	labels := []int32{7, 7, 3, 7, 3, 9}
	k := Normalize(labels)
	if k != 3 {
		t.Errorf("k=%d, want 3", k)
	}
	want := []int32{0, 0, 1, 0, 1, 2}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("labels[%d]=%d, want %d", i, labels[i], want[i])
		}
	}
}

func TestSamePartition(t *testing.T) {
	if !SamePartition([]int32{1, 1, 2}, []int32{5, 5, 9}) {
		t.Error("equivalent partitions reported different")
	}
	if SamePartition([]int32{1, 1, 2}, []int32{5, 9, 9}) {
		t.Error("different partitions reported same")
	}
	if SamePartition([]int32{1}, []int32{1, 1}) {
		t.Error("length mismatch reported same")
	}
	// Refinement in one direction only must be rejected (needs bijection).
	if SamePartition([]int32{1, 1, 2, 2}, []int32{1, 1, 1, 1}) {
		t.Error("refinement reported same")
	}
}

func TestQuickSVEqualsUF(t *testing.T) {
	f := func(seed int64, nn uint8, density uint8, p uint8) bool {
		n := int(nn%60) + 1
		maxM := n * (n - 1) / 2
		m := int(density) % (maxM + 1)
		g := gen.Random(n, m, seed)
		sv := ShiloachVishkin(int(p%4)+1, g.N, g.Edges)
		uf := UnionFind(g.N, g.Edges)
		return SamePartition(sv, uf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLargeRandomGraph(t *testing.T) {
	g := gen.Random(5000, 6000, 99)
	sv := ShiloachVishkin(4, g.N, g.Edges)
	uf := UnionFind(g.N, g.Edges)
	if !SamePartition(sv, uf) {
		t.Error("SV and UF disagree on large sparse graph")
	}
}

func TestChainWorstCase(t *testing.T) {
	// A long path maximizes graft-and-shortcut rounds.
	g := gen.Chain(3000)
	sv := ShiloachVishkin(4, g.N, g.Edges)
	if Count(sv) != 1 {
		t.Errorf("chain components=%d, want 1", Count(sv))
	}
}

func TestHCSMatchesUnionFind(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(300)
		maxM := n * (n - 1) / 2
		m := rng.Intn(maxM + 1)
		g := gen.Random(n, m, int64(trial+900))
		c := graph.ToCSR(1, g)
		for _, p := range []int{1, 4} {
			hcs := HCS(p, c)
			uf := UnionFind(g.N, g.Edges)
			if !SamePartition(hcs, uf) {
				t.Fatalf("trial %d p=%d: HCS and union-find disagree", trial, p)
			}
		}
	}
}

func TestHCSMinLabelAndEdgeless(t *testing.T) {
	g := gen.RandomConnected(150, 350, 31)
	labels := HCS(2, graph.ToCSR(1, g))
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("connected graph: HCS label[%d]=%d, want 0", v, l)
		}
	}
	empty := HCS(2, graph.ToCSR(1, &graph.EdgeList{N: 4}))
	for v, l := range empty {
		if l != int32(v) {
			t.Errorf("edgeless: label[%d]=%d", v, l)
		}
	}
}

func TestHCSChainWorstCase(t *testing.T) {
	g := gen.Chain(2000)
	labels := HCS(4, graph.ToCSR(1, g))
	if Count(labels) != 1 {
		t.Errorf("chain components=%d, want 1", Count(labels))
	}
}
