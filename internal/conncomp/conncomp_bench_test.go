package conncomp

import (
	"runtime"
	"testing"

	"bicc/internal/gen"
	"bicc/internal/graph"
)

func BenchmarkConnectedComponents(b *testing.B) {
	g := gen.RandomConnected(100_000, 400_000, 1)
	c := graph.ToCSR(1, g)
	p := runtime.GOMAXPROCS(0)
	b.Run("shiloach-vishkin/p=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ShiloachVishkin(1, g.N, g.Edges)
		}
	})
	b.Run("shiloach-vishkin/p=max", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ShiloachVishkin(p, g.N, g.Edges)
		}
	})
	b.Run("union-find", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			UnionFind(g.N, g.Edges)
		}
	})
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BFS(c)
		}
	})
}

// Chains maximize SV's graft-and-shortcut round count.
func BenchmarkShiloachVishkinChain(b *testing.B) {
	g := gen.Chain(100_000)
	p := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		ShiloachVishkin(p, g.N, g.Edges)
	}
}

func BenchmarkHCS(b *testing.B) {
	g := gen.RandomConnected(100_000, 400_000, 1)
	c := graph.ToCSR(1, g)
	p := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		HCS(p, c)
	}
}
