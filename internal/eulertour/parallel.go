package eulertour

import (
	"bicc/internal/graph"
	"bicc/internal/par"
	"bicc/internal/spantree"
)

// DFSOrderParallel produces the same ArcSeq as DFSOrder — the Euler tour's
// arcs laid out in traversal order — without walking the tree
// sequentially. It is the construction of Cong & Bader's cited Euler-tour
// paper [6]: with a rooted spanning tree in hand, every arc's tour position
// is a closed-form function of subtree sizes, so the tour can be *computed*
// instead of traversed:
//
//   - subtree sizes come from a bottom-up level sweep (O(height) rounds,
//     all level-parallel);
//   - each child's subtree occupies a contiguous arc interval inside its
//     parent's, offset by the arc counts (2·size) of earlier siblings, so
//     one top-down pass over the children lists assigns every vertex its
//     interval start;
//   - with intervals known, every vertex writes its own advance and
//     retreat arcs independently, in parallel.
//
// Children are ordered exactly as DFSOrder orders them (children-CSR
// layout), so the two constructions emit identical sequences — asserted by
// tests.
func DFSOrderParallel(p int, edges []graph.Edge, f *spantree.RootedForest) *ArcSeq {
	n := int(f.N)
	p = par.Procs(p)
	// Children CSR (same layout as DFSOrder, so arc order matches).
	childOff := make([]int32, n+1)
	for v := 0; v < n; v++ {
		if !f.IsRoot(int32(v)) {
			childOff[f.Parent[v]+1]++
		}
	}
	for v := 0; v < n; v++ {
		childOff[v+1] += childOff[v]
	}
	child := make([]int32, childOff[n])
	cur := make([]int32, n)
	for v := 0; v < n; v++ {
		if !f.IsRoot(int32(v)) {
			pv := f.Parent[v]
			child[childOff[pv]+cur[pv]] = int32(v)
			cur[pv]++
		}
	}
	// Depth per vertex and level buckets for the two sweeps.
	depth := make([]int32, n)
	maxDepth := int32(0)
	order := bfsOrder(f, childOff, child) // parents before children
	for _, v := range order {
		if f.IsRoot(v) {
			depth[v] = 0
			continue
		}
		depth[v] = depth[f.Parent[v]] + 1
		if depth[v] > maxDepth {
			maxDepth = depth[v]
		}
	}
	levelOff := make([]int32, maxDepth+2)
	for v := 0; v < n; v++ {
		levelOff[depth[v]+1]++
	}
	for d := int32(0); d <= maxDepth; d++ {
		levelOff[d+1] += levelOff[d]
	}
	byLevel := make([]int32, n)
	lcur := make([]int32, maxDepth+1)
	for _, v := range order {
		d := depth[v]
		byLevel[levelOff[d]+lcur[d]] = v
		lcur[d]++
	}
	// Bottom-up: subtree sizes, one parallel round per level.
	size := make([]int32, n)
	par.For(p, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			size[v] = 1
		}
	})
	// Pull-based per round: the vertices at level d-1 sum their children at
	// level d. All of a vertex's children share its level+1, and levels run
	// deepest-first, so every pulled size is already final; leaves keep
	// their initial size of 1 whichever round names them as parents.
	for d := maxDepth; d >= 1; d-- {
		parents := byLevel[levelOff[d-1]:levelOff[d]]
		par.ForDynamic(p, len(parents), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := parents[i]
				acc := int32(1)
				for _, c := range child[childOff[v]:childOff[v+1]] {
					acc += size[c]
				}
				size[v] = acc
			}
		})
	}
	// Arc interval starts, top-down: arcStart(root) = component base;
	// child c_i starts right after its advance arc, which sits after the
	// arc blocks of earlier siblings.
	var multiRoots, singles []int32
	for _, r := range f.Roots {
		if childOff[r] == childOff[r+1] {
			singles = append(singles, r)
			continue
		}
		multiRoots = append(multiRoots, r)
	}
	arcStart := make([]int32, n)
	base := int32(0)
	compFirst := make([]int32, len(multiRoots))
	for k, r := range multiRoots {
		compFirst[k] = base
		arcStart[r] = base
		base += 2 * (size[r] - 1)
	}
	totalArcs := int(base)
	for d := int32(0); d < maxDepth; d++ {
		parents := byLevel[levelOff[d]:levelOff[d+1]]
		par.ForDynamic(p, len(parents), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := parents[i]
				pos := arcStart[v]
				for _, c := range child[childOff[v]:childOff[v+1]] {
					arcStart[c] = pos + 1
					pos += 2 * size[c]
				}
			}
		})
	}
	// Emit arcs: vertex v's advance arc (parent→v) at arcStart[v]-1, and
	// its retreat arc (v→parent) at arcStart[v] + 2(size[v]-1).
	seq := &ArcSeq{
		N:         f.N,
		Src:       make([]int32, totalArcs),
		Dst:       make([]int32, totalArcs),
		EdgeID:    make([]int32, totalArcs),
		Advance:   make([]bool, totalArcs),
		CompFirst: compFirst,
		Roots:     append(multiRoots, singles...),
	}
	par.For(p, n, func(lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := int32(vi)
			if f.IsRoot(v) {
				continue
			}
			pv := f.Parent[v]
			adv := arcStart[v] - 1
			ret := arcStart[v] + 2*(size[v]-1)
			seq.Src[adv], seq.Dst[adv] = pv, v
			seq.EdgeID[adv] = f.ParentEdge[v]
			seq.Advance[adv] = true
			seq.Src[ret], seq.Dst[ret] = v, pv
			seq.EdgeID[ret] = f.ParentEdge[v]
			seq.Advance[ret] = false
		}
	})
	return seq
}

// bfsOrder returns the forest's vertices with every parent before its
// children (roots first, then level by level).
func bfsOrder(f *spantree.RootedForest, childOff, child []int32) []int32 {
	n := int(f.N)
	order := make([]int32, 0, n)
	for v := int32(0); v < f.N; v++ {
		if f.IsRoot(v) {
			order = append(order, v)
		}
	}
	for head := 0; head < len(order); head++ {
		v := order[head]
		order = append(order, child[childOff[v]:childOff[v+1]]...)
	}
	if len(order) != n {
		// Defensive: a malformed forest would loop forever downstream;
		// surface it here instead.
		panic("eulertour: forest does not cover all vertices")
	}
	return order
}
