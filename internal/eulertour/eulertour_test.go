package eulertour

import (
	"math/rand"
	"testing"

	"bicc/internal/gen"
	"bicc/internal/graph"
	"bicc/internal/spantree"
)

// checkSeq verifies Euler tour invariants on an ArcSeq: every tree edge
// appears exactly once per direction, consecutive arcs are chained
// (Dst[i] == Src[i+1]) within each component, each component's tour starts
// and ends at its root, and advance flags mark exactly the first traversal.
func checkSeq(t *testing.T, g *graph.EdgeList, seq *ArcSeq) {
	t.Helper()
	na := seq.NumArcs()
	// Component boundaries.
	bounds := append(append([]int32(nil), seq.CompFirst...), int32(na))
	for k := 0; k+1 < len(bounds); k++ {
		lo, hi := bounds[k], bounds[k+1]
		if lo >= hi {
			t.Fatalf("component %d empty tour [%d,%d)", k, lo, hi)
		}
		root := seq.Roots[k]
		if seq.Src[lo] != root {
			t.Fatalf("component %d tour starts at %d, want root %d", k, seq.Src[lo], root)
		}
		if seq.Dst[hi-1] != root {
			t.Fatalf("component %d tour ends at %d, want root %d", k, seq.Dst[hi-1], root)
		}
		for i := lo; i+1 < hi; i++ {
			if seq.Dst[i] != seq.Src[i+1] {
				t.Fatalf("arcs %d->%d not chained: (%d,%d) then (%d,%d)",
					i, i+1, seq.Src[i], seq.Dst[i], seq.Src[i+1], seq.Dst[i+1])
			}
		}
	}
	// Direction coverage per edge id.
	fwd := map[int32]int{}
	seen := map[int32]bool{}
	for i := 0; i < na; i++ {
		id := seq.EdgeID[i]
		e := g.Edges[id]
		if seq.Src[i] == e.U && seq.Dst[i] == e.V {
			fwd[id]++
		} else if seq.Src[i] == e.V && seq.Dst[i] == e.U {
			fwd[id]--
		} else {
			t.Fatalf("arc %d (%d,%d) does not match edge %d = %v", i, seq.Src[i], seq.Dst[i], id, e)
		}
		// Advance must be the first traversal of the edge.
		if seen[id] == seq.Advance[i] {
			t.Fatalf("arc %d advance=%v but edge %d already seen=%v", i, seq.Advance[i], id, seen[id])
		}
		seen[id] = true
	}
	for id, bal := range fwd {
		if bal != 0 {
			t.Fatalf("edge %d traversed unevenly (balance %d)", id, bal)
		}
	}
}

func svRoots(n int32, edges []graph.Edge) (treeEdges, roots []int32) {
	f := spantree.SV(2, n, edges)
	// Roots = one representative per component: a vertex not covered as a
	// child by the forest is found via union-find over tree edges.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(v int32) int32
	find = func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	for _, id := range f.TreeEdges {
		e := edges[id]
		parent[find(e.U)] = find(e.V)
	}
	seen := map[int32]bool{}
	for v := int32(0); v < n; v++ {
		r := find(v)
		if !seen[r] {
			seen[r] = true
			roots = append(roots, v)
		}
	}
	return f.TreeEdges, roots
}

func buildLinked(t *testing.T, p int, g *graph.EdgeList) *Tour {
	t.Helper()
	treeEdges, roots := svRoots(g.N, g.Edges)
	tour, err := FromForest(p, g.N, g.Edges, treeEdges, roots)
	if err != nil {
		t.Fatal(err)
	}
	return tour
}

func testGraphs() map[string]*graph.EdgeList {
	return map[string]*graph.EdgeList{
		"edge":         gen.Chain(2),
		"triangle":     gen.Cycle(3),
		"chain":        gen.Chain(30),
		"star":         gen.Star(12),
		"mesh":         gen.Mesh(5, 6),
		"random":       gen.RandomConnected(200, 500, 1),
		"binarytree":   gen.BinaryTree(31),
		"disconnected": gen.Disconnected(gen.Cycle(4), gen.Chain(6), gen.Star(5), &graph.EdgeList{N: 3}),
		"isolated":     {N: 4},
	}
}

func TestFromForestSequence(t *testing.T) {
	for name, g := range testGraphs() {
		for _, p := range []int{1, 4} {
			tour := buildLinked(t, p, g)
			for _, useHJ := range []bool{false, true} {
				seq, err := Sequence(p, tour, useHJ)
				if err != nil {
					t.Fatalf("%s p=%d HJ=%v: %v", name, p, useHJ, err)
				}
				checkSeq(t, g, seq)
			}
		}
	}
}

func TestDFSOrder(t *testing.T) {
	for name, g := range testGraphs() {
		for _, p := range []int{1, 3} {
			c := graph.ToCSR(p, g)
			for _, f := range []*spantree.RootedForest{
				spantree.WorkStealing(p, c),
				spantree.BFS(p, c),
			} {
				seq := DFSOrder(p, g.Edges, f)
				checkSeq(t, g, seq)
				_ = name
			}
		}
	}
}

func TestSequenceArcCount(t *testing.T) {
	g := gen.RandomConnected(100, 250, 9)
	tour := buildLinked(t, 2, g)
	seq, err := Sequence(2, tour, true)
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumArcs() != 2*99 {
		t.Errorf("arcs=%d, want %d", seq.NumArcs(), 2*99)
	}
	if len(seq.Roots) != 1 || len(seq.CompFirst) != 1 {
		t.Errorf("roots=%v compFirst=%v, want single component", seq.Roots, seq.CompFirst)
	}
}

func TestFromForestRejectsNonForest(t *testing.T) {
	// A triangle passed off as a "forest" is not a tree; the circuit check
	// or the downstream ranking must fail. FromForest detects the broken
	// circuit at the root in most arc orders.
	g := gen.Cycle(3)
	tour, err := FromForest(1, g.N, g.Edges, []int32{0, 1, 2}, []int32{0})
	if err != nil {
		return // detected at construction: good
	}
	if _, err := Sequence(1, tour, true); err == nil {
		t.Error("cycle accepted as spanning forest by both construction and ranking")
	}
}

func TestDFSOrderDeterministicPerForest(t *testing.T) {
	g := gen.RandomConnected(80, 200, 3)
	c := graph.ToCSR(1, g)
	f := spantree.BFS(1, c)
	a := DFSOrder(1, g.Edges, f)
	b := DFSOrder(2, g.Edges, f)
	if a.NumArcs() != b.NumArcs() {
		t.Fatal("arc count differs between p=1 and p=2")
	}
	for i := 0; i < a.NumArcs(); i++ {
		if a.Src[i] != b.Src[i] || a.Dst[i] != b.Dst[i] || a.Advance[i] != b.Advance[i] {
			t.Fatalf("arc %d differs between p=1 and p=2", i)
		}
	}
}

func TestRandomizedToursAllConstructions(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(120)
		maxM := n * (n - 1) / 2
		m := rng.Intn(maxM + 1)
		g := gen.Random(n, m, int64(trial*7+1))
		tour := buildLinked(t, 2, g)
		seq, err := Sequence(2, tour, trial%2 == 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkSeq(t, g, seq)
		c := graph.ToCSR(1, g)
		checkSeq(t, g, DFSOrder(2, g.Edges, spantree.WorkStealing(2, c)))
	}
}

// DFSOrderParallel must emit bit-identical sequences to DFSOrder for the
// same rooted forest.
func TestDFSOrderParallelMatchesSequential(t *testing.T) {
	for name, g := range testGraphs() {
		for _, p := range []int{1, 4} {
			c := graph.ToCSR(p, g)
			for _, f := range []*spantree.RootedForest{
				spantree.WorkStealing(p, c),
				spantree.BFS(p, c),
			} {
				want := DFSOrder(1, g.Edges, f)
				got := DFSOrderParallel(p, g.Edges, f)
				if got.NumArcs() != want.NumArcs() {
					t.Fatalf("%s p=%d: %d arcs, want %d", name, p, got.NumArcs(), want.NumArcs())
				}
				for i := 0; i < want.NumArcs(); i++ {
					if got.Src[i] != want.Src[i] || got.Dst[i] != want.Dst[i] ||
						got.EdgeID[i] != want.EdgeID[i] || got.Advance[i] != want.Advance[i] {
						t.Fatalf("%s p=%d: arc %d differs: (%d,%d,%d,%v) vs (%d,%d,%d,%v)",
							name, p, i,
							got.Src[i], got.Dst[i], got.EdgeID[i], got.Advance[i],
							want.Src[i], want.Dst[i], want.EdgeID[i], want.Advance[i])
					}
				}
				if len(got.CompFirst) != len(want.CompFirst) || len(got.Roots) != len(want.Roots) {
					t.Fatalf("%s p=%d: component metadata differs", name, p)
				}
				for k := range want.CompFirst {
					if got.CompFirst[k] != want.CompFirst[k] || got.Roots[k] != want.Roots[k] {
						t.Fatalf("%s p=%d: component %d differs", name, p, k)
					}
				}
				checkSeq(t, g, got)
			}
		}
	}
}

func TestDFSOrderParallelRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(300)
		maxM := n * (n - 1) / 2
		m := rng.Intn(maxM + 1)
		g := gen.Random(n, m, int64(trial*3+2))
		c := graph.ToCSR(1, g)
		f := spantree.BFS(1, c)
		want := DFSOrder(1, g.Edges, f)
		got := DFSOrderParallel(3, g.Edges, f)
		for i := 0; i < want.NumArcs(); i++ {
			if got.Src[i] != want.Src[i] || got.Dst[i] != want.Dst[i] {
				t.Fatalf("trial %d: arc %d differs", trial, i)
			}
		}
	}
}
