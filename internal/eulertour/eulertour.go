// Package eulertour constructs Euler tours of spanning forests, the step 2
// substrate of Tarjan–Vishkin. Two constructions are provided, matching the
// paper's two implementations:
//
//   - FromForest (TV-SMP, §3.1): the PRAM-faithful construction. Both arcs
//     of every tree edge are sorted with the Helman–JáJá sample sort so that
//     each vertex's arcs are grouped (the circular adjacency list) and
//     anti-parallel mates can be linked; the tour successor of arc (u,v) is
//     the arc after (v,u) in v's circular list. The result is a *linked*
//     tour (successor array) that must be list-ranked before tree
//     computations — the conversion + ranking cost the paper measures.
//   - DFSOrder (TV-opt, §3.2): the cache-friendly construction. A traversal
//     of the rooted tree emits the tour arcs already in tour order, so tree
//     computations reduce to prefix sums over arrays.
//
// Both produce an ArcSeq — arcs in tour position order — as the common
// currency consumed by package treecomp. Multi-vertex components are
// concatenated; singleton (isolated) components carry no arcs and appear
// only in Roots.
package eulertour

import (
	"fmt"

	"bicc/internal/graph"
	"bicc/internal/listrank"
	"bicc/internal/par"
	"bicc/internal/psort"
	"bicc/internal/spantree"
)

// ArcSeq is an Euler tour of a spanning forest with arcs laid out in tour
// order. Position i holds the i-th arc of the concatenated tours of all
// multi-vertex components; CompFirst[k] is the position where component k's
// tour begins and Roots[k] its root. Roots of singleton components are
// appended to Roots after all multi-vertex roots (they own no arcs).
type ArcSeq struct {
	N         int32   // number of vertices in the graph
	Src, Dst  []int32 // arc endpoints, indexed by tour position
	EdgeID    []int32 // originating graph edge id per arc
	Advance   []bool  // true when the arc's first traversal (discovers Dst)
	CompFirst []int32 // tour start position per multi-vertex component
	Roots     []int32 // multi-vertex roots (aligned with CompFirst), then singleton roots
}

// NumArcs returns the total arc count (2 per tree edge).
func (s *ArcSeq) NumArcs() int { return len(s.Src) }

// Tour is the linked (unranked) Euler tour produced by FromForest: Next[a]
// is the successor arc of a, with component tours chained head-to-tail into
// one global list and -1 terminating the last. Arc 2k is edges[treeID[k]]
// traversed U→V and arc 2k+1 is its reversal, so twin(a) = a^1.
type Tour struct {
	N      int32
	Src    []int32
	Dst    []int32
	EdgeID []int32
	Next   []int32
	Heads  []int32 // head arc per multi-vertex component, in chain order
	Roots  []int32 // multi-vertex roots in chain order, then singleton roots
}

// FromForest builds the linked Euler tour of the spanning forest given by
// treeEdges (indices into edges) rooted at the given roots, one root per
// component (including singleton components). It uses sample sort with p
// workers to build the circular adjacency list.
func FromForest(p int, n int32, edges []graph.Edge, treeEdges []int32, roots []int32) (*Tour, error) {
	na := 2 * len(treeEdges)
	t := &Tour{
		N:      n,
		Src:    make([]int32, na),
		Dst:    make([]int32, na),
		EdgeID: make([]int32, na),
		Next:   make([]int32, na),
	}
	// Materialize both arcs per tree edge; twin(a) = a^1 by construction.
	items := make([]psort.Pair, na)
	par.For(p, len(treeEdges), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			e := edges[treeEdges[k]]
			a0, a1 := 2*k, 2*k+1
			t.Src[a0], t.Dst[a0] = e.U, e.V
			t.Src[a1], t.Dst[a1] = e.V, e.U
			t.EdgeID[a0], t.EdgeID[a1] = treeEdges[k], treeEdges[k]
			items[a0] = psort.Pair{Key: uint64(uint32(e.U))<<32 | uint64(uint32(e.V)), Val: int32(a0)}
			items[a1] = psort.Pair{Key: uint64(uint32(e.V))<<32 | uint64(uint32(e.U)), Val: int32(a1)}
		}
	})
	// Sort arcs by (src, dst): groups each vertex's arcs contiguously — the
	// circular adjacency list.
	psort.SampleSortPairs(p, items)
	pos := make([]int32, na) // sorted position per arc id
	par.For(p, na, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pos[items[i].Val] = int32(i)
		}
	})
	firstIdx := make([]int32, n)
	lastIdx := make([]int32, n)
	par.For(p, int(n), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			firstIdx[v] = -1
			lastIdx[v] = -1
		}
	})
	par.For(p, na, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			src := int32(items[i].Key >> 32)
			if i == 0 || int32(items[i-1].Key>>32) != src {
				firstIdx[src] = int32(i)
			}
			if i == na-1 || int32(items[i+1].Key>>32) != src {
				lastIdx[src] = int32(i)
			}
		}
	})
	// Tour successor: succ(a) = nextAround(twin(a)), where nextAround wraps
	// within the source vertex's group.
	par.For(p, na, func(lo, hi int) {
		for a := lo; a < hi; a++ {
			twinPos := pos[a^1]
			src := t.Src[a^1] // == Dst[a]
			var nxt int32
			if int(twinPos) < na-1 && int32(items[twinPos+1].Key>>32) == src {
				nxt = items[twinPos+1].Val
			} else {
				nxt = items[firstIdx[src]].Val
			}
			t.Next[a] = nxt
		}
	})
	// Break each component's circuit at its root and chain the tours.
	var singles []int32
	var prevTail int32 = -1
	for _, r := range roots {
		if firstIdx[r] == -1 {
			// Singleton component: no arcs; kept only for numbering.
			singles = append(singles, r)
			continue
		}
		head := items[firstIdx[r]].Val
		tail := items[lastIdx[r]].Val ^ 1 // succ(tail) wraps to head
		if t.Next[tail] != head {
			return nil, fmt.Errorf("eulertour: root %d tour is not a circuit (bad forest input)", r)
		}
		t.Heads = append(t.Heads, head)
		t.Roots = append(t.Roots, r)
		if prevTail != -1 {
			t.Next[prevTail] = head
		}
		t.Next[tail] = -1
		prevTail = tail
	}
	t.Roots = append(t.Roots, singles...)
	return t, nil
}

// Sequence list-ranks a linked tour and permutes its arcs into tour order,
// producing the ArcSeq consumed by tree computations. useHJ selects the
// Helman–JáJá ranker; otherwise Wyllie pointer jumping is used (the TV-SMP
// emulation cost). It fails if the tour is malformed.
func Sequence(p int, t *Tour, useHJ bool) (*ArcSeq, error) {
	na := len(t.Next)
	seq := &ArcSeq{
		N:         t.N,
		Src:       make([]int32, na),
		Dst:       make([]int32, na),
		EdgeID:    make([]int32, na),
		Advance:   make([]bool, na),
		CompFirst: make([]int32, len(t.Heads)),
		Roots:     append([]int32(nil), t.Roots...),
	}
	if na == 0 {
		return seq, nil
	}
	var rank []int32
	if useHJ {
		r, err := listrank.RanksHJ(p, t.Next, t.Heads[0])
		if err != nil {
			return nil, err
		}
		rank = r
	} else {
		rank = listrank.Ranks(p, t.Next, t.Heads[0])
	}
	par.For(p, na, func(lo, hi int) {
		for a := lo; a < hi; a++ {
			i := rank[a]
			seq.Src[i] = t.Src[a]
			seq.Dst[i] = t.Dst[a]
			seq.EdgeID[i] = t.EdgeID[a]
			seq.Advance[i] = rank[a] < rank[a^1]
		}
	})
	for k, h := range t.Heads {
		seq.CompFirst[k] = rank[h]
	}
	return seq, nil
}

// DFSOrder builds the ArcSeq directly in tour order from a rooted spanning
// forest, the TV-opt cache-friendly construction: one traversal per
// component emits advance arcs on descent and retreat arcs on ascent, so
// consecutive tour arcs are adjacent in memory. Components are processed in
// Roots order and emitted back-to-back.
func DFSOrder(p int, edges []graph.Edge, f *spantree.RootedForest) *ArcSeq {
	n := f.N
	// Children lists as a CSR over the tree (m_tree = n - #roots edges).
	childCount := make([]int32, n+1)
	for v := int32(0); v < n; v++ {
		if !f.IsRoot(v) {
			childCount[f.Parent[v]+1]++
		}
	}
	for v := int32(0); v < n; v++ {
		childCount[v+1] += childCount[v]
	}
	childOff := childCount
	child := make([]int32, childOff[n])
	cur := make([]int32, n)
	for v := int32(0); v < n; v++ {
		if !f.IsRoot(v) {
			pv := f.Parent[v]
			child[childOff[pv]+cur[pv]] = v
			cur[pv]++
		}
	}
	treeEdges := int(childOff[n])
	seq := &ArcSeq{
		N:       n,
		Src:     make([]int32, 2*treeEdges),
		Dst:     make([]int32, 2*treeEdges),
		EdgeID:  make([]int32, 2*treeEdges),
		Advance: make([]bool, 2*treeEdges),
	}
	var multiRoots, singles []int32
	for _, r := range f.Roots {
		if childOff[r] == childOff[r+1] {
			// A root with no children is an isolated vertex.
			singles = append(singles, r)
			continue
		}
		multiRoots = append(multiRoots, r)
	}
	// Emit each component's tour. Components are independent, so they can
	// be processed in parallel once their output offsets are known; offsets
	// require subtree sizes, so we emit sequentially per component but the
	// loop over components is parallel when there are many (disconnected
	// inputs). For the common single-component case this is one sequential
	// cache-friendly pass, which is exactly the paper's TV-opt trade.
	compArcStart := make([]int32, len(multiRoots)+1)
	compSize := make([]int32, len(multiRoots))
	// Subtree arc counts per component = 2*(size-1); compute sizes by a
	// quick iterative count per root.
	par.For(p, len(multiRoots), func(lo, hi int) {
		stack := make([]int32, 0, 64)
		for k := lo; k < hi; k++ {
			cnt := int32(0)
			stack = append(stack[:0], multiRoots[k])
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				cnt++
				stack = append(stack, child[childOff[v]:childOff[v+1]]...)
			}
			compSize[k] = cnt
		}
	})
	for k := range multiRoots {
		compArcStart[k+1] = compArcStart[k] + 2*(compSize[k]-1)
	}
	par.For(p, len(multiRoots), func(lo, hi int) {
		type frame struct {
			v, ci int32
		}
		stack := make([]frame, 0, 64)
		for k := lo; k < hi; k++ {
			out := compArcStart[k]
			stack = append(stack[:0], frame{multiRoots[k], 0})
			for len(stack) > 0 {
				fr := &stack[len(stack)-1]
				if fr.ci < childOff[fr.v+1]-childOff[fr.v] {
					c := child[childOff[fr.v]+fr.ci]
					fr.ci++
					seq.Src[out], seq.Dst[out] = fr.v, c
					seq.EdgeID[out] = f.ParentEdge[c]
					seq.Advance[out] = true
					out++
					stack = append(stack, frame{c, 0})
					continue
				}
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					parent := stack[len(stack)-1].v
					seq.Src[out], seq.Dst[out] = fr.v, parent
					seq.EdgeID[out] = f.ParentEdge[fr.v]
					seq.Advance[out] = false
					out++
				}
			}
		}
	})
	seq.CompFirst = compArcStart[:len(multiRoots)]
	seq.Roots = append(multiRoots, singles...)
	return seq
}
