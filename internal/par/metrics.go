package par

import "bicc/internal/obs"

// Worker-pool metrics on the process-wide registry. Every instrumentation
// site is guarded by obs.Enabled(), so with observability off (the default,
// and the benchmark configuration) the runtime pays a single atomic load
// per site and never touches the counters.
var (
	mTasks = obs.Default().Counter("bicc_par_tasks_total",
		"Worker tasks launched by the parallel runtime (one per worker per fork-join loop).")
	mChunks = obs.Default().Counter("bicc_par_chunks_total",
		"Work chunks claimed by dynamically scheduled loops.")
	mSteals = obs.Default().Counter("bicc_par_steals_total",
		"Successful steals from work-stealing deques (each takes half the victim's items).")
	mBarrierWaits = obs.Default().Counter("bicc_par_barrier_waits_total",
		"Arrivals at software barriers.")
	mPanics = obs.Default().Counter("bicc_par_panics_total",
		"Worker panics contained by the parallel runtime and surfaced as typed errors.")
)
