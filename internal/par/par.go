// Package par provides the shared-memory parallel runtime used by all
// algorithms in this repository. It plays the role of the POSIX-threads +
// software-barrier layer in Cong & Bader's SMP implementation: fork-join
// parallel loops over index ranges, static block partitioning, dynamic
// (guided) chunk scheduling, parallel reductions, and reusable barriers.
//
// All primitives honor a caller-supplied processor count p; p <= 1 executes
// sequentially with no goroutine overhead, which keeps single-processor
// baselines honest when measuring speedup.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"bicc/internal/obs"
)

// Procs returns the effective processor count for a requested value.
// A request of 0 or below means "use GOMAXPROCS".
func Procs(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Block computes the half-open index range [lo, hi) assigned to worker i of
// p when n items are split into p nearly-equal contiguous blocks. Workers
// with index < n%p receive one extra item, so block sizes differ by at most
// one.
func Block(n, p, i int) (lo, hi int) {
	if p <= 0 {
		p = 1
	}
	q, r := n/p, n%p
	if i < r {
		lo = i * (q + 1)
		hi = lo + q + 1
		return lo, hi
	}
	lo = r*(q+1) + (i-r)*q
	hi = lo + q
	return lo, hi
}

// For runs body(lo, hi) over a static block partition of [0, n) using p
// workers. Each worker receives exactly one contiguous block, which is the
// scheduling regime of the paper's SMP codes (one thread per processor,
// block-distributed loops). body must be safe to run concurrently on
// disjoint ranges.
//
// A panic in body never escapes a worker goroutine (which would kill the
// process): all workers are joined and the first panic is re-raised on the
// calling goroutine as a *PanicError, recoverable like any ordinary panic.
func For(p, n int, body func(lo, hi int)) {
	p = Procs(p)
	if n <= 0 {
		return
	}
	if p == 1 || n == 1 {
		if obs.Enabled() {
			mTasks.Inc()
		}
		body(0, n)
		return
	}
	if p > n {
		p = n
	}
	if obs.Enabled() {
		mTasks.Add(int64(p))
	}
	var pb panicBox
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		lo, hi := Block(n, p, i)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer pb.capture(w)
			body(lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	pb.rethrow()
}

// ForWorker is For with the worker index passed to the body, for algorithms
// that keep per-worker scratch state (e.g. sample sort buckets).
func ForWorker(p, n int, body func(worker, lo, hi int)) {
	p = Procs(p)
	if n <= 0 {
		return
	}
	if p == 1 || n == 1 {
		if obs.Enabled() {
			mTasks.Inc()
		}
		body(0, 0, n)
		return
	}
	if p > n {
		p = n
	}
	if obs.Enabled() {
		mTasks.Add(int64(p))
	}
	var pb panicBox
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		lo, hi := Block(n, p, i)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer pb.capture(w)
			body(w, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	pb.rethrow()
}

// ForDynamic runs body over [0, n) in chunks of the given grain, handed out
// by an atomic counter. It load-balances irregular per-item work (e.g. the
// grafting loops of Shiloach–Vishkin on skewed degree distributions) at the
// cost of one atomic add per chunk. grain <= 0 picks a grain that yields
// roughly 8 chunks per worker.
func ForDynamic(p, n, grain int, body func(lo, hi int)) {
	p = Procs(p)
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = n/(8*p) + 1
	}
	if p == 1 || n <= grain {
		if obs.Enabled() {
			mTasks.Inc()
			mChunks.Inc()
		}
		body(0, n)
		return
	}
	if obs.Enabled() {
		mTasks.Add(int64(p))
	}
	var pb panicBox
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(w int) {
			defer wg.Done()
			defer pb.capture(w)
			for {
				if pb.first.Load() != nil {
					return // a sibling panicked; stop claiming chunks
				}
				lo := int(next.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				if obs.Enabled() {
					mChunks.Inc()
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}(i)
	}
	wg.Wait()
	pb.rethrow()
}

// Run launches fn on p workers (worker ids 0..p-1) and waits for all of
// them; the SPMD building block used by the multi-phase algorithms that need
// barriers between phases. Like For, a worker panic is joined and re-raised
// on the caller as a *PanicError. SPMD bodies that synchronize with each
// other (barriers, spin loops on shared counters) should prefer RunC, whose
// canceler lets siblings observe the failure and drain instead of waiting
// for a worker that will never arrive.
func Run(p int, fn func(worker int)) {
	p = Procs(p)
	if obs.Enabled() {
		mTasks.Add(int64(p))
	}
	if p == 1 {
		fn(0)
		return
	}
	var pb panicBox
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(w int) {
			defer wg.Done()
			defer pb.capture(w)
			fn(w)
		}(i)
	}
	wg.Wait()
	pb.rethrow()
}

// Barrier is a reusable software barrier for p participants, the analogue of
// the paper's software-based barriers. It is a classic two-phase sense-
// reversing barrier built on a condition variable.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	count   int
	phase   uint64
}

// NewBarrier returns a barrier for the given number of participants.
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		parties = 1
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all parties have called Wait, then releases them all.
// The barrier is immediately reusable for the next phase.
func (b *Barrier) Wait() {
	if obs.Enabled() {
		mBarrierWaits.Inc()
	}
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// ReduceInt64 computes the reduction of f over [0, n) combined with op,
// where op must be associative and id its identity. Each worker folds its
// block sequentially; the p partial results are folded on the caller.
func ReduceInt64(p, n int, id int64, f func(i int) int64, op func(a, b int64) int64) int64 {
	p = Procs(p)
	if n <= 0 {
		return id
	}
	if p > n {
		p = n
	}
	partial := make([]int64, p)
	For(p, n, func(lo, hi int) {
		// Identify our worker slot by block; recompute the block index from lo.
		// Blocks are contiguous and ordered, so find the worker via Block math.
		w := workerOf(n, p, lo)
		acc := id
		for i := lo; i < hi; i++ {
			acc = op(acc, f(i))
		}
		partial[w] = acc
	})
	acc := id
	for _, v := range partial {
		acc = op(acc, v)
	}
	return acc
}

// workerOf inverts Block: which worker owns index lo as the start of its
// block when n items are split across p workers.
func workerOf(n, p, lo int) int {
	q, r := n/p, n%p
	if q == 0 {
		return lo
	}
	if lo < r*(q+1) {
		return lo / (q + 1)
	}
	return r + (lo-r*(q+1))/q
}

// MaxInt32 returns the maximum of f over [0, n), or def on an empty range.
func MaxInt32(p, n int, def int32, f func(i int) int32) int32 {
	v := ReduceInt64(p, n, int64(def), func(i int) int64 { return int64(f(i)) },
		func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
	return int32(v)
}

// CountTrue counts indices in [0, n) where pred holds, in parallel.
func CountTrue(p, n int, pred func(i int) bool) int {
	v := ReduceInt64(p, n, 0, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	}, func(a, b int64) int64 { return a + b })
	return int(v)
}
