package par

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// recoverPanicError runs fn and returns the *PanicError it panics with, or
// nil if fn returns normally. A panic with any other value fails the test.
func recoverPanicError(t *testing.T, fn func()) (pe *PanicError) {
	t.Helper()
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		var ok bool
		pe, ok = v.(*PanicError)
		if !ok {
			t.Fatalf("panic value is %T (%v), want *PanicError", v, v)
		}
	}()
	fn()
	return nil
}

func TestForRethrowsWorkerPanicAsPanicError(t *testing.T) {
	sentinel := errors.New("boom")
	pe := recoverPanicError(t, func() {
		For(4, 1000, func(lo, hi int) {
			if lo <= 500 && 500 < hi {
				panic(sentinel)
			}
		})
	})
	if pe == nil {
		t.Fatal("For did not re-raise the worker panic")
	}
	if !errors.Is(pe, sentinel) {
		t.Errorf("PanicError does not unwrap to the panic value: %v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack trace")
	}
	if !bytes.Contains(pe.Stack, []byte("panic_test")) {
		t.Errorf("stack trace does not mention the panicking frame:\n%s", pe.Stack)
	}
}

func TestForAllWorkersJoinBeforeRethrow(t *testing.T) {
	// Every worker increments done on exit; if For re-raised before joining,
	// the count observed after recover could be short.
	var done atomic.Int64
	p := 8
	recoverPanicError(t, func() {
		ForWorker(p, p, func(worker, lo, hi int) {
			defer done.Add(1)
			if worker == 3 {
				panic("one worker dies")
			}
		})
	})
	if got := done.Load(); got != int64(p) {
		t.Errorf("joined %d workers before rethrow, want %d", got, p)
	}
}

func TestForDynamicPanicStopsClaimingAndRethrows(t *testing.T) {
	var iters atomic.Int64
	pe := recoverPanicError(t, func() {
		ForDynamic(4, 1<<20, 64, func(lo, hi int) {
			iters.Add(int64(hi - lo))
			if lo == 0 {
				panic("first chunk dies")
			}
		})
	})
	if pe == nil {
		t.Fatal("ForDynamic did not re-raise the worker panic")
	}
	// Siblings stop claiming once the panic is recorded, so the loop must
	// finish well short of the full range.
	if got := iters.Load(); got >= 1<<20 {
		t.Errorf("loop ran to completion (%d iterations) despite the panic", got)
	}
}

func TestRunRethrowsFirstPanicOnly(t *testing.T) {
	pe := recoverPanicError(t, func() {
		Run(4, func(worker int) { panic(fmt.Sprintf("worker %d", worker)) })
	})
	if pe == nil {
		t.Fatal("Run did not re-raise")
	}
	if pe.Worker < 0 || pe.Worker > 3 {
		t.Errorf("PanicError.Worker = %d, want a real worker index", pe.Worker)
	}
	if want := fmt.Sprintf("worker %d", pe.Worker); pe.Value != want {
		t.Errorf("PanicError.Value = %v, want %q (value and worker id must agree)", pe.Value, want)
	}
}

func TestNestedPanicErrorNotDoubleWrapped(t *testing.T) {
	// A panic crossing two fork-join layers must surface as the original
	// PanicError, not a PanicError wrapping a PanicError.
	sentinel := errors.New("inner")
	pe := recoverPanicError(t, func() {
		Run(2, func(outer int) {
			For(2, 10, func(lo, hi int) { panic(sentinel) })
		})
	})
	if pe == nil {
		t.Fatal("nested panic did not surface")
	}
	if _, nested := pe.Value.(*PanicError); nested {
		t.Errorf("PanicError was double-wrapped: %v", pe)
	}
	if !errors.Is(pe, sentinel) {
		t.Errorf("nested panic lost its value: %v", pe)
	}
}

func TestForCRecordsPanicInCanceler(t *testing.T) {
	c := &Canceler{}
	ForC(c, 4, 1000, func(lo, hi int) {
		if lo == 0 {
			panic("chunk dies")
		}
	})
	err := c.Err()
	if err == nil {
		t.Fatal("ForC did not cancel on worker panic")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("cancellation cause is %T (%v), want *PanicError", err, err)
	}
	if pe.Value != "chunk dies" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
}

func TestForDynamicCRecordsPanicAndStops(t *testing.T) {
	c := &Canceler{}
	var iters atomic.Int64
	ForDynamicC(c, 4, 1<<20, 64, func(lo, hi int) {
		iters.Add(int64(hi - lo))
		if lo == 0 {
			panic("chunk dies")
		}
	})
	var pe *PanicError
	if !errors.As(c.Err(), &pe) {
		t.Fatalf("cancellation cause is %v, want *PanicError", c.Err())
	}
	if got := iters.Load(); got >= 1<<20 {
		t.Errorf("loop ran to completion (%d iterations) despite the panic", got)
	}
}

func TestRunCReturnsPanicAndCancels(t *testing.T) {
	c := &Canceler{}
	pe := RunC(c, 4, func(worker int) {
		if worker == 2 {
			panic("worker 2 dies")
		}
		// Siblings spin until cancellation, as a work-stealing loop would.
		for c.Err() == nil {
		}
	})
	if pe == nil {
		t.Fatal("RunC returned nil for a panicking worker")
	}
	if pe.Worker != 2 || pe.Value != "worker 2 dies" {
		t.Errorf("RunC returned %+v", pe)
	}
	var cause *PanicError
	if !errors.As(c.Err(), &cause) || cause != pe {
		t.Errorf("canceler cause %v is not the returned PanicError", c.Err())
	}
}

func TestRunCNoPanic(t *testing.T) {
	c := &Canceler{}
	if pe := RunC(c, 4, func(worker int) {}); pe != nil {
		t.Errorf("RunC returned %v for a clean run", pe)
	}
	if c.Err() != nil {
		t.Errorf("clean RunC canceled: %v", c.Err())
	}
}

func TestAsPanicErrorPassthrough(t *testing.T) {
	orig := &PanicError{Value: "x", Worker: 7, Stack: []byte("s")}
	if got := AsPanicError(-1, orig); got != orig {
		t.Error("AsPanicError rewrapped an existing PanicError")
	}
	if got := AsPanicError(3, "y"); got.Worker != 3 || got.Value != "y" {
		t.Errorf("AsPanicError(3, y) = %+v", got)
	}
}

func TestPanicErrorUnwrapNonError(t *testing.T) {
	pe := &PanicError{Value: 42}
	if pe.Unwrap() != nil {
		t.Error("Unwrap of a non-error panic value should be nil")
	}
	if pe.Error() == "" {
		t.Error("empty Error()")
	}
}
