package par

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestProcs(t *testing.T) {
	if got := Procs(3); got != 3 {
		t.Errorf("Procs(3) = %d, want 3", got)
	}
	if got := Procs(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Procs(0) = %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := Procs(-5); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Procs(-5) = %d, want GOMAXPROCS", got)
	}
}

func TestBlockCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 101} {
		for _, p := range []int{1, 2, 3, 7, 16} {
			prev := 0
			for i := 0; i < p; i++ {
				lo, hi := Block(n, p, i)
				if lo != prev {
					t.Fatalf("n=%d p=%d i=%d: lo=%d, want %d (contiguity)", n, p, i, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d p=%d i=%d: hi=%d < lo=%d", n, p, i, hi, lo)
				}
				if hi-lo > n/p+1 {
					t.Fatalf("n=%d p=%d i=%d: block size %d exceeds n/p+1", n, p, i, hi-lo)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d p=%d: blocks cover [0,%d), want [0,%d)", n, p, prev, n)
			}
		}
	}
}

func TestBlockBalanced(t *testing.T) {
	// Block sizes must differ by at most one.
	n, p := 103, 7
	minSz, maxSz := n, 0
	for i := 0; i < p; i++ {
		lo, hi := Block(n, p, i)
		sz := hi - lo
		if sz < minSz {
			minSz = sz
		}
		if sz > maxSz {
			maxSz = sz
		}
	}
	if maxSz-minSz > 1 {
		t.Errorf("block sizes range [%d,%d]; want difference <= 1", minSz, maxSz)
	}
}

func TestForVisitsEachIndexOnce(t *testing.T) {
	for _, p := range []int{1, 2, 4, 9} {
		n := 1000
		visits := make([]int32, n)
		For(p, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("p=%d: index %d visited %d times", p, i, v)
			}
		}
	}
}

func TestForEmptyAndSmall(t *testing.T) {
	called := false
	For(4, 0, func(lo, hi int) { called = true })
	if called {
		t.Error("For with n=0 should not invoke body")
	}
	count := 0
	For(8, 1, func(lo, hi int) { count += hi - lo })
	if count != 1 {
		t.Errorf("For with n=1 covered %d items, want 1", count)
	}
}

func TestForWorkerIDsDistinct(t *testing.T) {
	p, n := 4, 100
	seen := make([]int32, p)
	ForWorker(p, n, func(w, lo, hi int) {
		atomic.AddInt32(&seen[w], 1)
	})
	total := int32(0)
	for _, s := range seen {
		if s > 1 {
			t.Errorf("worker invoked %d times, want at most 1", s)
		}
		total += s
	}
	if total == 0 {
		t.Error("no worker invoked")
	}
}

func TestForDynamicCoversAll(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		for _, grain := range []int{0, 1, 17, 5000} {
			n := 2345
			visits := make([]int32, n)
			ForDynamic(p, n, grain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("p=%d grain=%d: index %d visited %d times", p, grain, i, v)
				}
			}
		}
	}
}

func TestRun(t *testing.T) {
	p := 5
	seen := make([]int32, p)
	Run(p, func(w int) { atomic.AddInt32(&seen[w], 1) })
	for w, s := range seen {
		if s != 1 {
			t.Errorf("worker %d ran %d times, want 1", w, s)
		}
	}
}

func TestBarrierPhases(t *testing.T) {
	const parties = 4
	const rounds = 50
	b := NewBarrier(parties)
	var counter atomic.Int64
	Run(parties, func(w int) {
		for r := 0; r < rounds; r++ {
			counter.Add(1)
			b.Wait()
			// After the barrier every party must observe all increments of
			// this round.
			if got := counter.Load(); got < int64((r+1)*parties) {
				t.Errorf("round %d: counter=%d, want >= %d", r, got, (r+1)*parties)
			}
			b.Wait()
		}
	})
	if got := counter.Load(); got != int64(rounds*parties) {
		t.Errorf("counter=%d, want %d", got, rounds*parties)
	}
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 10; i++ {
		b.Wait() // must never block
	}
}

func TestReduceInt64Sum(t *testing.T) {
	n := 10000
	want := int64(n) * int64(n-1) / 2
	for _, p := range []int{1, 2, 4, 7} {
		got := ReduceInt64(p, n, 0, func(i int) int64 { return int64(i) },
			func(a, b int64) int64 { return a + b })
		if got != want {
			t.Errorf("p=%d: sum=%d, want %d", p, got, want)
		}
	}
}

func TestReduceInt64Empty(t *testing.T) {
	got := ReduceInt64(4, 0, -99, func(i int) int64 { return 0 },
		func(a, b int64) int64 { return a + b })
	if got != -99 {
		t.Errorf("empty reduce = %d, want identity -99", got)
	}
}

func TestMaxInt32(t *testing.T) {
	xs := []int32{3, -7, 42, 0, 41}
	got := MaxInt32(3, len(xs), -1<<31, func(i int) int32 { return xs[i] })
	if got != 42 {
		t.Errorf("MaxInt32 = %d, want 42", got)
	}
}

func TestCountTrue(t *testing.T) {
	n := 1000
	got := CountTrue(4, n, func(i int) bool { return i%3 == 0 })
	want := (n + 2) / 3
	if got != want {
		t.Errorf("CountTrue = %d, want %d", got, want)
	}
}

func TestWorkerOfInvertsBlock(t *testing.T) {
	check := func(n, p uint8) bool {
		nn, pp := int(n%200)+1, int(p%16)+1
		if pp > nn {
			pp = nn
		}
		for i := 0; i < pp; i++ {
			lo, _ := Block(nn, pp, i)
			if workerOf(nn, pp, lo) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestDequeLIFOOwner(t *testing.T) {
	d := NewDeque(4)
	for i := int32(0); i < 10; i++ {
		d.Push(i)
	}
	for i := int32(9); i >= 0; i-- {
		v, ok := d.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Error("Pop on empty deque returned ok")
	}
}

func TestDequeStealHalf(t *testing.T) {
	d := NewDeque(0)
	d.PushAll([]int32{1, 2, 3, 4, 5})
	got := d.StealHalf(nil)
	if len(got) != 3 {
		t.Fatalf("stole %d items, want 3", len(got))
	}
	for i, v := range []int32{1, 2, 3} {
		if got[i] != v {
			t.Errorf("stolen[%d] = %d, want %d (steal from top/oldest)", i, got[i], v)
		}
	}
	if d.Len() != 2 {
		t.Errorf("victim has %d items left, want 2", d.Len())
	}
	// Remaining items must be the newest, still poppable in LIFO order.
	if v, _ := d.Pop(); v != 5 {
		t.Errorf("Pop after steal = %d, want 5", v)
	}
}

func TestDequeStealEmpty(t *testing.T) {
	d := NewDeque(0)
	if got := d.StealHalf(nil); got != nil {
		t.Errorf("StealHalf on empty = %v, want nil", got)
	}
}

func TestDequeConcurrentTotal(t *testing.T) {
	// One owner producing, several thieves stealing: total items consumed
	// must equal total produced.
	const total = 20000
	d := NewDeque(64)
	var consumed atomic.Int64
	done := make(chan struct{})
	for i := 0; i < 3; i++ {
		go func() {
			buf := make([]int32, 0, 64)
			for {
				select {
				case <-done:
					// Drain what remains after producer finished.
					for {
						got := d.StealHalf(buf)
						if got == nil {
							return
						}
						consumed.Add(int64(len(got)))
					}
				default:
					got := d.StealHalf(buf)
					consumed.Add(int64(len(got)))
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		d.Push(int32(i))
		if i%64 == 0 {
			if _, ok := d.Pop(); ok {
				consumed.Add(1)
			}
		}
	}
	close(done)
	// Wait until everything is accounted for.
	for {
		if consumed.Load()+int64(d.Len()) >= total {
			break
		}
		runtime.Gosched()
	}
	rest := int64(0)
	for {
		if _, ok := d.Pop(); !ok {
			break
		}
		rest++
	}
	if got := consumed.Load() + rest; got != total {
		t.Errorf("consumed %d items, want %d", got, total)
	}
}

func TestForDynamicRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(5000)
		p := 1 + rng.Intn(8)
		grain := rng.Intn(100)
		var sum atomic.Int64
		ForDynamic(p, n, grain, func(lo, hi int) {
			local := int64(0)
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
		want := int64(n) * int64(n-1) / 2
		if sum.Load() != want {
			t.Fatalf("trial %d (n=%d p=%d grain=%d): sum=%d want %d", trial, n, p, grain, sum.Load(), want)
		}
	}
}

func TestForWorkerEdgeCases(t *testing.T) {
	called := false
	ForWorker(4, 0, func(w, lo, hi int) { called = true })
	if called {
		t.Error("n=0 should not invoke body")
	}
	count := 0
	ForWorker(4, 1, func(w, lo, hi int) { count += hi - lo })
	if count != 1 {
		t.Errorf("n=1 covered %d items", count)
	}
	// p > n clamps.
	var covered atomic.Int64
	ForWorker(16, 3, func(w, lo, hi int) { covered.Add(int64(hi - lo)) })
	if covered.Load() != 3 {
		t.Errorf("p>n covered %d items, want 3", covered.Load())
	}
}

func TestRunSingleWorker(t *testing.T) {
	ran := false
	Run(1, func(w int) {
		if w != 0 {
			t.Errorf("worker id %d, want 0", w)
		}
		ran = true
	})
	if !ran {
		t.Error("worker did not run")
	}
}

func TestNewBarrierClampsParties(t *testing.T) {
	b := NewBarrier(0) // clamps to 1: Wait must not block
	b.Wait()
	b.Wait()
}

func TestDequePushAllEmpty(t *testing.T) {
	d := NewDeque(0)
	d.PushAll(nil) // no-op
	if d.Len() != 0 {
		t.Errorf("len=%d", d.Len())
	}
}
