package par

import (
	"context"
	"sync/atomic"
)

// Canceler is a cooperative cancellation token shared by the parallel loops
// of one computation. The long-running engines poll it at chunk boundaries
// and between convergence rounds; tripping it makes them drain quickly
// instead of finishing their work. A nil *Canceler is valid everywhere and
// means "never canceled", so hot paths pay a single nil check when no
// deadline is attached.
//
// The token records the first error passed to Cancel (typically a
// context.Context error) so callers can report why the run stopped.
type Canceler struct {
	err atomic.Pointer[error]
}

// Cancel trips the token with the given cause. The first cause wins;
// subsequent calls are no-ops. A nil err is ignored.
func (c *Canceler) Cancel(err error) {
	if c == nil || err == nil {
		return
	}
	c.err.CompareAndSwap(nil, &err)
}

// Err returns the cancellation cause, or nil if the token has not been
// tripped. It is safe on a nil receiver.
func (c *Canceler) Err() error {
	if c == nil {
		return nil
	}
	if p := c.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Watch trips the token when ctx is done. It returns a stop function that
// must be called (typically deferred) to release the watcher goroutine once
// the computation finishes. Contexts that can never be canceled install no
// watcher and cost nothing.
func (c *Canceler) Watch(ctx context.Context) (stop func()) {
	if c == nil || ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	// Cheap fast path: already expired contexts trip synchronously.
	if err := ctx.Err(); err != nil {
		c.Cancel(err)
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			c.Cancel(ctx.Err())
		case <-done:
		}
	}()
	return func() { close(done) }
}

// cancelGrain is the number of iterations processed between cancellation
// polls in the chunked loop variants: large enough that the poll is free
// next to real per-item work, small enough that cancellation latency stays
// in the microsecond range on bandwidth-bound bodies.
const cancelGrain = 8192

// ForC is For with cooperative cancellation: each worker walks its block in
// chunks of cancelGrain iterations, polling c between chunks and abandoning
// the remainder once c trips. Bodies must therefore tolerate being invoked
// on sub-ranges of a worker's block (every body written for ForDynamic
// already does). With a nil canceler it is exactly For.
//
// A panic in body does not propagate: it is recovered into c as a
// *PanicError, which cancels the sibling workers' polls, and ForC returns
// normally. Callers observe the failure through c.Err().
func ForC(c *Canceler, p, n int, body func(lo, hi int)) {
	if c == nil {
		For(p, n, body)
		return
	}
	For(p, n, func(lo, hi int) {
		for lo < hi {
			if c.Err() != nil {
				return
			}
			end := lo + cancelGrain
			if end > hi {
				end = hi
			}
			if !guardInto(c, -1, func() { body(lo, end) }) {
				return
			}
			lo = end
		}
	})
}

// ForDynamicC is ForDynamic with cooperative cancellation: workers poll c
// before claiming each chunk, so a tripped token stops the loop after at
// most one chunk per worker. With a nil canceler it is exactly ForDynamic.
// Panics in body are recovered into c like ForC.
func ForDynamicC(c *Canceler, p, n, grain int, body func(lo, hi int)) {
	if c == nil {
		ForDynamic(p, n, grain, body)
		return
	}
	ForDynamic(p, n, grain, func(lo, hi int) {
		if c.Err() != nil {
			return
		}
		guardInto(c, -1, func() { body(lo, hi) })
	})
}

// RunC is Run with panic containment through the canceler: a worker panic is
// recovered into c as a *PanicError, tripping the polls of sibling workers
// so SPMD bodies that wait on each other (work-stealing loops, shared
// counters) drain instead of deadlocking on a worker that died. RunC returns
// the recovered *PanicError (nil when every worker finished or c tripped for
// another reason). c must not be nil: without a shared token the siblings
// could never learn about the failure.
func RunC(c *Canceler, p int, fn func(worker int)) *PanicError {
	if c == nil {
		panic("par: RunC requires a non-nil Canceler")
	}
	var pb panicBox
	Run(p, func(w int) {
		defer func() {
			if v := recover(); v != nil {
				pe := AsPanicError(w, v)
				pb.first.CompareAndSwap(nil, pe)
				c.Cancel(pe)
			}
		}()
		fn(w)
	})
	return pb.first.Load()
}
