package par

import (
	"sync"

	"bicc/internal/obs"
)

// Deque is a work-stealing deque of int32 work items (vertex ids in the
// Bader–Cong spanning-tree traversal). The owner pushes and pops at the
// bottom; thieves steal from the top. This implementation uses a mutex per
// deque rather than the Chase–Lev lock-free protocol: steals are rare in the
// traversal workload (a thief takes half the victim's work at once), so the
// lock is uncontended in the common path and the code stays obviously
// correct under the Go memory model.
type Deque struct {
	mu    sync.Mutex
	items []int32
}

// NewDeque returns a deque with the given initial capacity.
func NewDeque(capacity int) *Deque {
	return &Deque{items: make([]int32, 0, capacity)}
}

// Push adds an item at the bottom (owner side).
func (d *Deque) Push(v int32) {
	d.mu.Lock()
	d.items = append(d.items, v)
	d.mu.Unlock()
}

// PushAll adds a batch of items at the bottom.
func (d *Deque) PushAll(vs []int32) {
	if len(vs) == 0 {
		return
	}
	d.mu.Lock()
	d.items = append(d.items, vs...)
	d.mu.Unlock()
}

// Pop removes and returns the bottom item. ok is false when empty.
func (d *Deque) Pop() (v int32, ok bool) {
	d.mu.Lock()
	n := len(d.items)
	if n == 0 {
		d.mu.Unlock()
		return 0, false
	}
	v = d.items[n-1]
	d.items = d.items[:n-1]
	d.mu.Unlock()
	return v, true
}

// StealHalf removes up to half of the victim's items from the top and
// returns them. It returns nil when there is nothing to steal. Taking half
// rather than one item amortizes steal overhead, the strategy used by the
// Bader–Cong work-stealing graph traversal.
func (d *Deque) StealHalf(buf []int32) []int32 {
	d.mu.Lock()
	n := len(d.items)
	if n == 0 {
		d.mu.Unlock()
		return nil
	}
	k := (n + 1) / 2
	buf = append(buf[:0], d.items[:k]...)
	copy(d.items, d.items[k:])
	d.items = d.items[:n-k]
	d.mu.Unlock()
	if obs.Enabled() {
		mSteals.Inc()
	}
	return buf
}

// Len reports the current number of items (racy snapshot, for heuristics).
func (d *Deque) Len() int {
	d.mu.Lock()
	n := len(d.items)
	d.mu.Unlock()
	return n
}
