package par

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"bicc/internal/obs"
)

// PanicError wraps a panic recovered from a parallel worker goroutine. The
// runtime converts every worker panic into one of these so that a bug in a
// loop body can never crash the process from an unjoined goroutine: the
// canceler-aware primitives (ForC, ForDynamicC, RunC) record it as the
// cancellation cause, and the plain primitives re-raise it on the calling
// goroutine where an ordinary recover applies.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Worker is the index of the worker that panicked, or -1 when the
	// primitive does not expose worker identities.
	Worker int
	// Stack is the panicking goroutine's stack trace, captured at the
	// recovery point.
	Stack []byte
}

// Error formats the panic with its origin; the stack is available separately
// so logs can choose their verbosity.
func (e *PanicError) Error() string {
	if e.Worker >= 0 {
		return fmt.Sprintf("par: panic in worker %d: %v", e.Worker, e.Value)
	}
	return fmt.Sprintf("par: panic: %v", e.Value)
}

// Unwrap exposes the panic value when it is itself an error, so callers can
// match injected or sentinel errors through errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// AsPanicError wraps an arbitrary recovered value, passing existing
// *PanicError values through unchanged (a re-raised worker panic keeps its
// original stack and worker id).
func AsPanicError(worker int, v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe // a re-raised panic keeps its identity and is not recounted
	}
	if obs.Enabled() {
		mPanics.Inc()
	}
	return &PanicError{Value: v, Worker: worker, Stack: debug.Stack()}
}

// panicBox collects the first panic recovered across a fork-join's workers.
type panicBox struct {
	first atomic.Pointer[PanicError]
}

// capture is deferred inside every spawned worker; it recovers a panic and
// records the first one.
func (b *panicBox) capture(worker int) {
	if v := recover(); v != nil {
		b.first.CompareAndSwap(nil, AsPanicError(worker, v))
	}
}

// rethrow re-raises the first captured panic on the calling goroutine after
// all workers have joined. The panic value is always a *PanicError carrying
// the original worker's stack.
func (b *panicBox) rethrow() {
	if pe := b.first.Load(); pe != nil {
		panic(pe)
	}
}

// guardInto invokes fn and recovers a panic into the canceler as a
// *PanicError, tripping sibling workers' cancellation polls. It reports
// whether fn completed without panicking.
func guardInto(c *Canceler, worker int, fn func()) (ok bool) {
	defer func() {
		if v := recover(); v != nil {
			c.Cancel(AsPanicError(worker, v))
			ok = false
		}
	}()
	fn()
	return true
}
