package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestCancelerNilSafe(t *testing.T) {
	var c *Canceler
	if err := c.Err(); err != nil {
		t.Fatalf("nil canceler Err = %v, want nil", err)
	}
	c.Cancel(errors.New("ignored")) // must not panic
	stop := c.Watch(context.Background())
	stop()
}

func TestCancelerFirstCauseWins(t *testing.T) {
	c := &Canceler{}
	if c.Err() != nil {
		t.Fatal("fresh canceler already tripped")
	}
	e1 := errors.New("first")
	e2 := errors.New("second")
	c.Cancel(nil) // ignored
	if c.Err() != nil {
		t.Fatal("Cancel(nil) tripped the token")
	}
	c.Cancel(e1)
	c.Cancel(e2)
	if got := c.Err(); got != e1 {
		t.Fatalf("Err = %v, want first cause %v", got, e1)
	}
}

func TestCancelerWatchContext(t *testing.T) {
	c := &Canceler{}
	ctx, cancel := context.WithCancel(context.Background())
	stop := c.Watch(ctx)
	defer stop()
	if c.Err() != nil {
		t.Fatal("tripped before context canceled")
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for c.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := c.Err(); !errors.Is(got, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", got)
	}
}

func TestCancelerWatchExpiredContext(t *testing.T) {
	c := &Canceler{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stop := c.Watch(ctx)
	defer stop()
	if got := c.Err(); !errors.Is(got, context.Canceled) {
		t.Fatalf("expired context did not trip synchronously: %v", got)
	}
}

func TestForCCoversRangeWhenNotCanceled(t *testing.T) {
	for _, p := range []int{1, 2, 7} {
		for _, n := range []int{0, 1, 100, 3 * cancelGrain} {
			c := &Canceler{}
			var sum atomic.Int64
			ForC(c, p, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					sum.Add(int64(i))
				}
			})
			want := int64(n) * int64(n-1) / 2
			if n == 0 {
				want = 0
			}
			if sum.Load() != want {
				t.Fatalf("p=%d n=%d: sum = %d, want %d", p, n, sum.Load(), want)
			}
		}
	}
}

func TestForCStopsAfterCancel(t *testing.T) {
	c := &Canceler{}
	cause := errors.New("stop")
	n := 64 * cancelGrain
	var visited atomic.Int64
	ForC(c, 4, n, func(lo, hi int) {
		visited.Add(int64(hi - lo))
		c.Cancel(cause)
	})
	// Each worker processes at most one chunk after the trip; with 4 workers
	// that bounds the visited count well below n.
	if v := visited.Load(); v >= int64(n) {
		t.Fatalf("visited %d of %d items despite cancellation", v, n)
	}
	if c.Err() != cause {
		t.Fatalf("Err = %v, want %v", c.Err(), cause)
	}
}

func TestForDynamicCStopsAfterCancel(t *testing.T) {
	c := &Canceler{}
	cause := errors.New("stop")
	n := 1 << 20
	var visited atomic.Int64
	ForDynamicC(c, 4, n, 1024, func(lo, hi int) {
		visited.Add(int64(hi - lo))
		c.Cancel(cause)
	})
	if v := visited.Load(); v >= int64(n) {
		t.Fatalf("visited %d of %d items despite cancellation", v, n)
	}
}

func TestForDynamicCNilIsForDynamic(t *testing.T) {
	var sum atomic.Int64
	ForDynamicC(nil, 3, 1000, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	})
	if want := int64(1000 * 999 / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}
