package repl

// Fuzzers for the replication frame decoders. The wire is the trust
// boundary between nodes: a standby feeds readMsg whatever the network
// delivers, and the parse* helpers run on attacker-shaped payloads before
// any state is touched. The contract under fuzz is uniform — arbitrary
// bytes produce (value, nil) or (zero, error), never a panic, and never an
// allocation that runs far ahead of the bytes actually received.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// frame renders one valid wire frame for typ/payload.
func frame(t testing.TB, typ byte, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeMsg(bw, typ, payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadMsg(f *testing.F) {
	f.Add(frame(f, msgHello, helloPayload(1, 2, 3)))
	f.Add(frame(f, msgSnapBegin, snapBeginPayload(4, 5, 6, 7)))
	f.Add(frame(f, msgSnapRecord, []byte{1, 'g', 'r', 'a', 'p', 'h'}))
	f.Add(frame(f, msgSnapEnd, u32Payload(2)))
	f.Add(frame(f, msgRecord, recordPayload(9, 1, []byte("payload"))))
	f.Add(frame(f, msgAck, u64Payload(42)))
	f.Add(frame(f, msgPing, u64Payload(7)))
	f.Add([]byte{})
	f.Add([]byte{msgRecord, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // length way past the cap
	f.Add([]byte{msgAck, 8, 0, 0, 0, 0, 0, 0, 0, 1, 2})          // truncated payload
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readMsg(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		// Success implies the frame was self-consistent: the payload is
		// bounded by the input and by the protocol cap.
		if len(payload) > maxMsgLen {
			t.Fatalf("accepted payload of %d bytes, cap is %d", len(payload), maxMsgLen)
		}
		if len(payload) > len(data) {
			t.Fatalf("payload %d bytes from a %d-byte input", len(payload), len(data))
		}
		// And the accepted message must round-trip: re-encoding yields a
		// frame readMsg decodes identically.
		typ2, payload2, err2 := readMsg(bufio.NewReader(bytes.NewReader(frame(t, typ, payload))))
		if err2 != nil || typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatalf("round-trip mismatch: typ %d->%d err %v", typ, typ2, err2)
		}
	})
}

// FuzzReadMsgAllocationBound proves a length prefix claiming a near-cap
// payload on a short stream fails without a matching allocation: readN
// grows chunk by chunk, so the error surfaces after at most one chunk.
func FuzzReadMsgAllocationBound(f *testing.F) {
	f.Add(uint32(maxMsgLen), []byte("short"))
	f.Add(uint32(readChunk+1), []byte{})
	f.Fuzz(func(t *testing.T, claim uint32, tail []byte) {
		if len(tail) > 1<<16 {
			tail = tail[:1<<16]
		}
		hdr := make([]byte, 9)
		hdr[0] = msgRecord
		binary.LittleEndian.PutUint32(hdr[1:5], claim)
		data := append(hdr, tail...)
		alloc := testing.AllocsPerRun(1, func() {
			_, _, _ = readMsg(bufio.NewReader(bytes.NewReader(data)))
		})
		_ = alloc // the real assertion is completing without OOM/panic
		if claim > uint32(len(tail)) && claim <= maxMsgLen {
			if _, _, err := readMsg(bufio.NewReader(bytes.NewReader(data))); err == nil {
				t.Fatalf("readMsg succeeded with %d claimed bytes but %d available", claim, len(tail))
			}
		}
	})
}

func FuzzParseHello(f *testing.F) {
	f.Add(helloPayload(1, 2, 3))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xee}, 23))
	f.Fuzz(func(t *testing.T, b []byte) {
		reign, epoch, lastSeq, err := parseHello(b)
		if (err == nil) != (len(b) == 24) {
			t.Fatalf("parseHello(%d bytes) err=%v; must succeed iff exactly 24", len(b), err)
		}
		if err == nil && !bytes.Equal(helloPayload(reign, epoch, lastSeq), b) {
			t.Fatalf("hello round-trip mismatch")
		}
	})
}

func FuzzParseSnapBegin(f *testing.F) {
	f.Add(snapBeginPayload(1, 2, 3, 4))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x11}, 29))
	f.Fuzz(func(t *testing.T, b []byte) {
		reign, epoch, seq, count, err := parseSnapBegin(b)
		if (err == nil) != (len(b) == 28) {
			t.Fatalf("parseSnapBegin(%d bytes) err=%v; must succeed iff exactly 28", len(b), err)
		}
		if err == nil && !bytes.Equal(snapBeginPayload(reign, epoch, seq, count), b) {
			t.Fatalf("snap-begin round-trip mismatch")
		}
	})
}

func FuzzParseRecord(f *testing.F) {
	f.Add(recordPayload(7, 1, []byte("payload")))
	f.Add(recordPayload(0, 0, nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x42}, 8))
	f.Fuzz(func(t *testing.T, b []byte) {
		seq, kind, payload, err := parseRecord(b)
		if (err == nil) != (len(b) >= 9) {
			t.Fatalf("parseRecord(%d bytes) err=%v; must succeed iff >= 9", len(b), err)
		}
		if err == nil && !bytes.Equal(recordPayload(seq, kind, payload), b) {
			t.Fatalf("record round-trip mismatch")
		}
	})
}

func FuzzParseU64(f *testing.F) {
	f.Add(u64Payload(42))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 9))
	f.Fuzz(func(t *testing.T, b []byte) {
		v, err := parseU64(b, "fuzz")
		if (err == nil) != (len(b) == 8) {
			t.Fatalf("parseU64(%d bytes) err=%v; must succeed iff exactly 8", len(b), err)
		}
		if err == nil && !bytes.Equal(u64Payload(v), b) {
			t.Fatalf("u64 round-trip mismatch")
		}
	})
}

func FuzzParseU32(f *testing.F) {
	f.Add(u32Payload(7))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 5))
	f.Fuzz(func(t *testing.T, b []byte) {
		v, err := parseU32(b, "fuzz")
		if (err == nil) != (len(b) == 4) {
			t.Fatalf("parseU32(%d bytes) err=%v; must succeed iff exactly 4", len(b), err)
		}
		if err == nil && !bytes.Equal(u32Payload(v), b) {
			t.Fatalf("u32 round-trip mismatch")
		}
	})
}
