package repl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bicc/internal/httpretry"
)

// fakeNode is a stub bccd backend: healthz, statsz with a replication
// cursor, promote/follow endpoints that record calls, and caller-supplied
// handlers for everything else.
type fakeNode struct {
	srv        *httptest.Server
	appliedSeq uint64
	replAddr   string // repl_addr in the promote response, when non-empty
	promotes   atomic.Int64
	follows    atomic.Int64
	followAddr atomic.Value // string: last addr received on /v1/admin/follow
	failFollow atomic.Bool  // make /v1/admin/follow answer 409
}

func (n *fakeNode) followedAddr() string {
	if v, ok := n.followAddr.Load().(string); ok {
		return v
	}
	return ""
}

func newFakeNode(t *testing.T, appliedSeq uint64, extra func(mux *http.ServeMux, n *fakeNode)) *fakeNode {
	t.Helper()
	n := &fakeNode{appliedSeq: appliedSeq}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"repl":{"applied_seq":%d}}`, n.appliedSeq)
	})
	mux.HandleFunc("POST /v1/admin/promote", func(w http.ResponseWriter, r *http.Request) {
		n.promotes.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"role":"primary","repl_addr":%q}`+"\n", n.replAddr)
	})
	mux.HandleFunc("POST /v1/admin/follow", func(w http.ResponseWriter, r *http.Request) {
		if n.failFollow.Load() {
			w.WriteHeader(http.StatusConflict)
			return
		}
		var req struct {
			Addr string `json:"addr"`
		}
		_ = json.NewDecoder(r.Body).Decode(&req)
		n.followAddr.Store(req.Addr)
		n.follows.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"role":"standby"}`)
	})
	if extra != nil {
		extra(mux, n)
	}
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

func newTestRouter(t *testing.T, cfg RouterConfig) *Router {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Hour // health driven by forwards, not probes
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestRouterHedgesSlowRead makes the primary answer /v1/bcc slowly and the
// standby instantly; past the hedge threshold the standby's answer must win
// and be attributed via X-Bicc-Backend.
func TestRouterHedgesSlowRead(t *testing.T) {
	slow := newFakeNode(t, 0, func(mux *http.ServeMux, n *fakeNode) {
		mux.HandleFunc("POST /v1/bcc", func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(400 * time.Millisecond)
			fmt.Fprintln(w, `{"from":"primary"}`)
		})
	})
	fast := newFakeNode(t, 0, func(mux *http.ServeMux, n *fakeNode) {
		mux.HandleFunc("POST /v1/bcc", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, `{"from":"standby"}`)
		})
	})
	rt := newTestRouter(t, RouterConfig{
		Primary:    slow.srv.URL,
		Standbys:   []string{fast.srv.URL},
		HedgeDelay: 10 * time.Millisecond,
	})

	req := httptest.NewRequest(http.MethodPost, "/v1/bcc",
		bytes.NewReader([]byte(`{"graph":"abc","algorithm":"tv-opt"}`)))
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Bicc-Backend"); got != fast.srv.URL {
		t.Fatalf("answered by %q, want the fast standby %q", got, fast.srv.URL)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["from"] != "standby" {
		t.Fatalf("body %q (err %v), want the standby's answer", rec.Body.String(), err)
	}
	if rt.Hedged() != 1 || rt.HedgedWins() != 1 {
		t.Fatalf("hedged %d wins %d, want 1 and 1", rt.Hedged(), rt.HedgedWins())
	}
}

// TestRouterFailoverPicksMostCaughtUp kills the primary and checks that a
// retryable write promotes the standby with the highest applied sequence,
// retries against it transparently, and installs it as the new primary.
func TestRouterFailoverPicksMostCaughtUp(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	uploadOK := func(mux *http.ServeMux, n *fakeNode) {
		mux.HandleFunc("POST /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"fingerprint":"abc"}`)
		})
	}
	behind := newFakeNode(t, 5, uploadOK)
	ahead := newFakeNode(t, 9, uploadOK)

	rt := newTestRouter(t, RouterConfig{
		Primary:  deadURL,
		Standbys: []string{behind.srv.URL, ahead.srv.URL},
	})

	req := httptest.NewRequest(http.MethodPost, "/v1/graphs?name=g",
		bytes.NewReader([]byte("graph bytes")))
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Bicc-Backend"); got != ahead.srv.URL {
		t.Fatalf("retried against %q, want the most-caught-up standby %q", got, ahead.srv.URL)
	}
	if ahead.promotes.Load() != 1 || behind.promotes.Load() != 0 {
		t.Fatalf("promotes ahead=%d behind=%d, want 1 and 0",
			ahead.promotes.Load(), behind.promotes.Load())
	}
	if rt.Failovers() != 1 {
		t.Fatalf("failovers %d, want 1", rt.Failovers())
	}
	if rt.Primary() != ahead.srv.URL {
		t.Fatalf("primary %q after failover, want %q", rt.Primary(), ahead.srv.URL)
	}
}

// TestRouterRefusesMutationAfterPrimaryDeath: a non-idempotent write whose
// primary died still triggers promotion but is answered 503 + Retry-After,
// never silently re-sent.
func TestRouterRefusesMutationAfterPrimaryDeath(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	standby := newFakeNode(t, 3, nil)

	rt := newTestRouter(t, RouterConfig{
		Primary:  deadURL,
		Standbys: []string{standby.srv.URL},
	})

	req := httptest.NewRequest(http.MethodPost, "/v1/graphs/abc/edges",
		bytes.NewReader([]byte(`{"deltas":[{"op":"insert","u":1,"v":2}]}`)))
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)

	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if rec.Header().Get(httpretry.HeaderMaybeApplied) == "" {
		t.Fatal("ambiguous 503 without the maybe-applied marker: a retry layer would replay the mutation")
	}
	if rt.Refused() != 1 {
		t.Fatalf("refused %d, want 1", rt.Refused())
	}
	if standby.promotes.Load() != 1 {
		t.Fatalf("promotes %d, want 1: the refusal must still promote so the client's retry lands", standby.promotes.Load())
	}
	if rt.Primary() != standby.srv.URL {
		t.Fatalf("primary %q, want the promoted standby", rt.Primary())
	}
}

// TestRouterReadsSurvivePrimaryDeath: a read against a dead primary is
// served by a standby without any promotion.
func TestRouterReadsSurvivePrimaryDeath(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	standby := newFakeNode(t, 1, func(mux *http.ServeMux, n *fakeNode) {
		mux.HandleFunc("GET /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"graphs":{}}`)
		})
	})

	rt := newTestRouter(t, RouterConfig{
		Primary:  deadURL,
		Standbys: []string{standby.srv.URL},
	})

	// Two reads: the first discovers the primary is dead (its hedge saves
	// it), the second goes straight to the standby.
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/graphs", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("read %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("X-Bicc-Backend"); got != standby.srv.URL {
			t.Fatalf("read %d answered by %q, want standby", i, got)
		}
	}
	if rt.Failovers() != 0 {
		t.Fatalf("failovers %d, want 0: reads must not promote", rt.Failovers())
	}
	if standby.promotes.Load() != 0 {
		t.Fatal("a read triggered promotion")
	}
}

// TestRouterRetargetsStandbysAfterFailover: after promoting the
// most-caught-up standby, the router re-points every survivor at the
// promoted node's replication listener via /v1/admin/follow; a survivor
// whose follow call fails is dropped from the hedge pool instead of serving
// ever-staler reads while chasing its dead predecessor.
func TestRouterRetargetsStandbysAfterFailover(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	winner := newFakeNode(t, 9, func(mux *http.ServeMux, n *fakeNode) {
		n.replAddr = "127.0.0.1:7777"
		mux.HandleFunc("POST /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"fingerprint":"abc"}`)
		})
	})
	survivor := newFakeNode(t, 2, nil)
	stuck := newFakeNode(t, 1, nil)
	stuck.failFollow.Store(true)

	rt := newTestRouter(t, RouterConfig{
		Primary:  deadURL,
		Standbys: []string{survivor.srv.URL, stuck.srv.URL, winner.srv.URL},
	})

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/graphs?name=g",
		bytes.NewReader([]byte("graph bytes"))))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if rt.Primary() != winner.srv.URL {
		t.Fatalf("primary %q, want the promoted %q", rt.Primary(), winner.srv.URL)
	}

	inPool := func(url string) bool {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		for _, b := range rt.standbys {
			if b.url == url {
				return true
			}
		}
		return false
	}
	waitUntil(t, "survivor retargeted", func() bool {
		return survivor.follows.Load() == 1 && survivor.followedAddr() == "127.0.0.1:7777"
	})
	waitUntil(t, "unretargetable standby dropped", func() bool { return !inPool(stuck.srv.URL) })
	if !inPool(survivor.srv.URL) {
		t.Fatal("survivor dropped from the hedge pool despite a successful retarget")
	}
	if winner.follows.Load() != 0 {
		t.Fatal("the promoted primary was asked to follow itself")
	}
}

// TestRouterForwardsNeverSentMutation: a mutation that arrives while the
// primary is already known dead was never handed to any backend, so its
// effect cannot be ambiguous — the router promotes and forwards it once
// instead of refusing.
func TestRouterForwardsNeverSentMutation(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	standby := newFakeNode(t, 3, func(mux *http.ServeMux, n *fakeNode) {
		mux.HandleFunc("GET /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"graphs":{}}`)
		})
		mux.HandleFunc("POST /v1/graphs/{fp}/edges", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"applied":1}`)
		})
	})

	rt := newTestRouter(t, RouterConfig{
		Primary:  deadURL,
		Standbys: []string{standby.srv.URL},
	})

	// A read first: its failed forward marks the primary unhealthy.
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/graphs", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("priming read: status %d: %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/graphs/abc/edges",
		bytes.NewReader([]byte(`{"deltas":[{"op":"insert","u":1,"v":2}]}`))))
	if rec.Code != http.StatusOK {
		t.Fatalf("never-sent mutation: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Bicc-Backend"); got != standby.srv.URL {
		t.Fatalf("answered by %q, want the promoted standby", got)
	}
	if rt.Refused() != 0 {
		t.Fatalf("refused %d, want 0: nothing was ambiguous", rt.Refused())
	}
}

// TestRouterNoReplicaServiceable: with the primary dead and no standbys,
// every request gets 503 + Retry-After.
func TestRouterNoReplicaServiceable(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	rt := newTestRouter(t, RouterConfig{Primary: deadURL})
	for _, req := range []*http.Request{
		httptest.NewRequest(http.MethodGet, "/v1/graphs", nil),
		httptest.NewRequest(http.MethodPost, "/v1/graphs", bytes.NewReader([]byte("g"))),
	} {
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s: status %d, want 503", req.Method, req.URL.Path, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("%s %s: 503 without Retry-After", req.Method, req.URL.Path)
		}
	}
}
