package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bicc/internal/httpretry"
)

// Router is the thin HTTP front over one primary and N standbys. It
// forwards /v1/* to the primary, hedges idempotent reads to a
// fingerprint-chosen standby once the primary has been slower than a
// latency percentile threshold, and on primary death promotes the
// most-caught-up standby and fails writes over to it. 503 + Retry-After
// comes back only when no replica is serviceable.
//
// Safety argument for failover: uploads are content-addressed (re-sending
// is idempotent) and deletes are naturally idempotent, so those are retried
// once against the promoted standby. Mutations are NOT idempotent; a
// mutation that was already handed to a primary that then died mid-flight
// may have committed (durable and replicated) before the death, so it gets
// 503 + Retry-After stamped with httpretry.HeaderMaybeApplied and no
// forwarded retry — the client decides, knowing the outcome is ambiguous.
// A mutation that was never sent anywhere (the primary was already known
// dead) carries no such ambiguity and is forwarded once to the promoted
// standby like any first send.
type RouterConfig struct {
	// Primary and Standbys are base URLs (http://host:port).
	Primary  string
	Standbys []string
	// HedgeDelay, when > 0, is a fixed hedging threshold; 0 means adaptive
	// (p95 of recent primary read latencies, floored at 1ms).
	HedgeDelay time.Duration
	// ProbeInterval is the health-check cadence; <= 0 means 250ms.
	ProbeInterval time.Duration
	// RetryAfter is the hint on 503 responses; <= 0 means 1s.
	RetryAfter time.Duration
	// MaxBufferBytes bounds request-body buffering (needed for hedging and
	// failover retries); larger bodies are streamed to the primary without
	// either. <= 0 means 64 MiB.
	MaxBufferBytes int64
	// Client issues the proxied requests; nil builds one with no overall
	// timeout (query deadlines belong to the backend).
	Client *http.Client
	// Logf receives failover and health transitions; nil disables them.
	Logf func(format string, args ...any)
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBufferBytes <= 0 {
		c.MaxBufferBytes = 64 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// backend is one bccd node as the router sees it.
type backend struct {
	url     string
	healthy atomic.Bool
}

// Router implements http.Handler.
type Router struct {
	cfg RouterConfig

	mu       sync.Mutex
	primary  *backend
	standbys []*backend
	failing  bool // a failover is in progress; writers wait their turn

	lat latWindow

	stop chan struct{}
	wg   sync.WaitGroup

	reads      atomic.Int64
	writes     atomic.Int64
	hedged     atomic.Int64
	hedgedWins atomic.Int64
	failovers  atomic.Int64
	refused    atomic.Int64
}

// NewRouter builds a Router and starts its health prober.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if cfg.Primary == "" {
		return nil, fmt.Errorf("repl: RouterConfig.Primary is required")
	}
	rt := &Router{cfg: cfg, stop: make(chan struct{})}
	rt.primary = &backend{url: strings.TrimRight(cfg.Primary, "/")}
	rt.primary.healthy.Store(true)
	for _, u := range cfg.Standbys {
		b := &backend{url: strings.TrimRight(u, "/")}
		b.healthy.Store(true)
		rt.standbys = append(rt.standbys, b)
	}
	rt.wg.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Close stops the health prober.
func (rt *Router) Close() {
	close(rt.stop)
	rt.wg.Wait()
}

// Failovers, Hedged, HedgedWins, Refused expose the router's counters.
func (rt *Router) Failovers() int64  { return rt.failovers.Load() }
func (rt *Router) Hedged() int64     { return rt.hedged.Load() }
func (rt *Router) HedgedWins() int64 { return rt.hedgedWins.Load() }
func (rt *Router) Refused() int64    { return rt.refused.Load() }

// Primary returns the current primary's base URL.
func (rt *Router) Primary() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.primary.url
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

// --- health ----------------------------------------------------------------

func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
		}
		rt.mu.Lock()
		targets := append([]*backend{rt.primary}, rt.standbys...)
		rt.mu.Unlock()
		for _, b := range targets {
			rt.probe(b)
		}
	}
}

func (rt *Router) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := rt.cfg.Client.Do(req)
	up := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if b.healthy.Swap(up) != up {
		rt.logf("router: backend %s now %s", b.url, map[bool]string{true: "healthy", false: "down"}[up])
	}
}

// --- latency window ---------------------------------------------------------

// latWindow keeps the last N primary read latencies for the adaptive hedge
// threshold.
type latWindow struct {
	mu      sync.Mutex
	samples [64]time.Duration
	n       int
	next    int
}

func (lw *latWindow) observe(d time.Duration) {
	lw.mu.Lock()
	lw.samples[lw.next] = d
	lw.next = (lw.next + 1) % len(lw.samples)
	if lw.n < len(lw.samples) {
		lw.n++
	}
	lw.mu.Unlock()
}

// p95 returns the 95th percentile of the window, or def with too few
// samples.
func (lw *latWindow) p95(def time.Duration) time.Duration {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.n < 8 {
		return def
	}
	s := make([]time.Duration, lw.n)
	copy(s, lw.samples[:lw.n])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	d := s[(len(s)*95)/100]
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// --- request classification -------------------------------------------------

// isIdempotentRead reports whether the request can be served by any replica
// and safely sent twice. POST /v1/bcc is a pure computation over registered
// state — a read in everything but method.
func isIdempotentRead(r *http.Request) bool {
	if r.Method == http.MethodGet {
		return true
	}
	return r.Method == http.MethodPost && r.URL.Path == "/v1/bcc"
}

// isRetryableWrite reports whether the write may be re-sent to a promoted
// standby after a primary death: content-addressed uploads and deletes are
// idempotent; mutations are not.
func isRetryableWrite(r *http.Request) bool {
	switch {
	case r.Method == http.MethodPost && (r.URL.Path == "/v1/graphs" || r.URL.Path == "/v1/graphs/open"):
		return true
	case r.Method == http.MethodDelete:
		return true
	}
	return false
}

// hashKey derives the hedging shard key: the graph fingerprint when the
// path carries one, otherwise the path plus body bytes (covers /v1/bcc,
// whose fingerprint is in the JSON body).
func hashKey(r *http.Request, body []byte) uint64 {
	h := fnv.New64a()
	if fp := pathFingerprint(r.URL.Path); fp != "" {
		io.WriteString(h, fp)
	} else {
		io.WriteString(h, r.URL.Path)
		h.Write(body)
	}
	return h.Sum64()
}

// pathFingerprint extracts {fp} from /v1/graphs/{fp}[/...] paths.
func pathFingerprint(p string) string {
	for _, prefix := range []string{"/v1/graphs/", "/v1/graph/"} {
		if rest, ok := strings.CutPrefix(p, prefix); ok {
			if i := strings.IndexByte(rest, '/'); i >= 0 {
				rest = rest[:i]
			}
			return rest
		}
	}
	return ""
}

// --- serving ----------------------------------------------------------------

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, buffered, err := rt.bufferBody(r)
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	if !buffered {
		// Too big to hedge or retry: one streamed shot at the primary.
		rt.forwardStream(w, r)
		return
	}
	if isIdempotentRead(r) {
		rt.reads.Add(1)
		rt.serveRead(w, r, body)
		return
	}
	rt.writes.Add(1)
	rt.serveWrite(w, r, body)
}

// bufferBody reads up to MaxBufferBytes of the request body, reporting
// whether the whole body fit.
func (rt *Router) bufferBody(r *http.Request) ([]byte, bool, error) {
	if r.Body == nil {
		return nil, true, nil
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxBufferBytes+1))
	if err != nil {
		return nil, false, err
	}
	if int64(len(body)) > rt.cfg.MaxBufferBytes {
		r.Body = io.NopCloser(io.MultiReader(bytes.NewReader(body), r.Body))
		return nil, false, nil
	}
	return body, true, nil
}

// forward sends one copy of the request to target and returns the response.
func (rt *Router) forward(ctx context.Context, target string, r *http.Request, body []byte) (*http.Response, error) {
	u := target + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	return rt.cfg.Client.Do(req)
}

// copyResponse relays resp to w, stamping the serving backend.
func copyResponse(w http.ResponseWriter, resp *http.Response, backendURL string) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Bicc-Backend", backendURL)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// forwardStream relays an unbuffered request to the primary, no retries.
func (rt *Router) forwardStream(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	primary := rt.primary
	rt.mu.Unlock()
	u := primary.url + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, r.Body)
	if err != nil {
		writeRouterError(w, http.StatusBadGateway, "%v", err)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		primary.healthy.Store(false)
		if !isIdempotentRead(r) && !isRetryableWrite(r) {
			// The streamed write was already in flight; its effect is
			// ambiguous, exactly as on the buffered path.
			w.Header().Set(httpretry.HeaderMaybeApplied, "1")
		}
		rt.unavailable(w, "primary unreachable: %v", err)
		return
	}
	copyResponse(w, resp, primary.url)
}

// pickStandby chooses a healthy standby by shard key (stable per
// fingerprint, so one graph's hedged reads hit one standby's caches).
func (rt *Router) pickStandby(key uint64) *backend {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var healthy []*backend
	for _, b := range rt.standbys {
		if b.healthy.Load() {
			healthy = append(healthy, b)
		}
	}
	if len(healthy) == 0 {
		return nil
	}
	return healthy[key%uint64(len(healthy))]
}

// serveRead answers an idempotent read: primary first, hedged to a standby
// once the hedge threshold passes, first usable response wins.
func (rt *Router) serveRead(w http.ResponseWriter, r *http.Request, body []byte) {
	rt.mu.Lock()
	primary := rt.primary
	rt.mu.Unlock()
	standby := rt.pickStandby(hashKey(r, body))

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	type reply struct {
		resp    *http.Response
		backend string
		err     error
		hedge   bool
	}
	ch := make(chan reply, 2)
	inflight := 0
	launch := func(b *backend, hedge bool) {
		inflight++
		go func() {
			start := time.Now()
			resp, err := rt.forward(ctx, b.url, r, body)
			if err == nil && !hedge {
				rt.lat.observe(time.Since(start))
			}
			if err != nil && ctx.Err() == nil {
				b.healthy.Store(false)
			}
			ch <- reply{resp, b.url, err, hedge}
		}()
	}

	primaryUp := primary.healthy.Load()
	if primaryUp {
		launch(primary, false)
	} else if standby != nil {
		// Primary known dead: go straight to the standby. Reads need no
		// promotion — a warm standby answers them read-only.
		launch(standby, true)
		standby = nil
	} else {
		rt.unavailable(w, "no serviceable replica")
		return
	}

	hedgeDelay := rt.cfg.HedgeDelay
	if hedgeDelay <= 0 {
		hedgeDelay = rt.lat.p95(25 * time.Millisecond)
	}
	hedgeTimer := time.NewTimer(hedgeDelay)
	defer hedgeTimer.Stop()

	var firstErr reply
	for inflight > 0 {
		select {
		case <-hedgeTimer.C:
			if standby != nil {
				rt.hedged.Add(1)
				launch(standby, true)
				standby = nil
			}
		case rep := <-ch:
			inflight--
			if rep.err == nil {
				if rep.hedge {
					rt.hedgedWins.Add(1)
				}
				if inflight > 0 {
					// The losing request may still complete (successfully,
					// if it beats the context cancellation): reap its reply
					// and close the body, or a connection leaks per hedged
					// race.
					go func(n int) {
						for i := 0; i < n; i++ {
							if loser := <-ch; loser.resp != nil {
								io.Copy(io.Discard, io.LimitReader(loser.resp.Body, 1<<20))
								loser.resp.Body.Close()
							}
						}
					}(inflight)
				}
				copyResponse(w, rep.resp, rep.backend)
				return
			}
			if firstErr.err == nil {
				firstErr = rep
			}
			// The launched copy failed; fire the hedge immediately if it
			// has not gone out yet.
			if standby != nil {
				rt.hedged.Add(1)
				launch(standby, true)
				standby = nil
			}
		}
	}
	rt.unavailable(w, "all replicas failed: %v", firstErr.err)
}

// serveWrite forwards a write to the primary; a dead primary triggers
// failover, after which idempotent writes — and non-idempotent ones that
// were provably never handed to any backend — are retried once against the
// promoted standby. A non-idempotent write that was already in flight when
// the primary died is refused with Retry-After plus HeaderMaybeApplied, so
// no retry layer (ours or the client's) can legally replay it.
func (rt *Router) serveWrite(w http.ResponseWriter, r *http.Request, body []byte) {
	rt.mu.Lock()
	primary := rt.primary
	rt.mu.Unlock()

	// attempted records whether this request was actually handed to a
	// backend: only then can its effect be ambiguous.
	attempted := false
	if primary.healthy.Load() {
		attempted = true
		resp, err := rt.forward(r.Context(), primary.url, r, body)
		if err == nil {
			copyResponse(w, resp, primary.url)
			return
		}
		if r.Context().Err() != nil {
			writeRouterError(w, http.StatusBadGateway, "%v", err)
			return
		}
		primary.healthy.Store(false)
		rt.logf("router: write to %s failed (%v), starting failover", primary.url, err)
	}
	ambiguous := attempted && !isRetryableWrite(r)

	promoted, err := rt.failover(primary)
	if err != nil {
		if ambiguous {
			w.Header().Set(httpretry.HeaderMaybeApplied, "1")
		}
		rt.unavailable(w, "primary dead, failover failed: %v", err)
		return
	}
	if ambiguous {
		// The dead primary may or may not have committed this mutation
		// before it died; the router cannot re-send a non-idempotent write.
		// HeaderMaybeApplied tells retry layers this 503 is NOT a
		// refused-before-effect rejection — the client decides.
		rt.refused.Add(1)
		w.Header().Set(httpretry.HeaderMaybeApplied, "1")
		rt.unavailable(w, "primary died mid-write and the request may have been applied; verify before retrying against the promoted replica")
		return
	}
	resp, err := rt.forward(r.Context(), promoted, r, body)
	if err != nil {
		rt.unavailable(w, "promoted replica unreachable: %v", err)
		return
	}
	copyResponse(w, resp, promoted)
}

// failover promotes the most-caught-up healthy standby and installs it as
// the primary. Concurrent callers coalesce: one runs the promotion, the
// rest wait and reuse its outcome.
func (rt *Router) failover(dead *backend) (string, error) {
	rt.mu.Lock()
	for rt.failing {
		// Another request is already promoting; spin-wait on the lock. The
		// window is one promote round-trip, and writers are rare.
		rt.mu.Unlock()
		time.Sleep(10 * time.Millisecond)
		rt.mu.Lock()
	}
	if rt.primary != dead {
		// A concurrent failover already installed a new primary.
		url := rt.primary.url
		rt.mu.Unlock()
		return url, nil
	}
	rt.failing = true
	candidates := append([]*backend(nil), rt.standbys...)
	rt.mu.Unlock()
	defer func() {
		rt.mu.Lock()
		rt.failing = false
		rt.mu.Unlock()
	}()

	// Pick the standby with the highest applied sequence: promoting anyone
	// else would lose acked records a better candidate still holds.
	type cand struct {
		b   *backend
		seq uint64
	}
	var best *cand
	for _, b := range candidates {
		seq, err := rt.appliedSeq(b)
		if err != nil {
			b.healthy.Store(false)
			continue
		}
		if best == nil || seq > best.seq {
			best = &cand{b, seq}
		}
	}
	if best == nil {
		return "", fmt.Errorf("no reachable standby")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, best.b.url+"/v1/admin/promote", nil)
	if err != nil {
		return "", err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return "", fmt.Errorf("promoting %s: %w", best.b.url, err)
	}
	pb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("promoting %s: %s: %s", best.b.url, resp.Status, strings.TrimSpace(string(pb)))
	}
	var report struct {
		ReplAddr string `json:"repl_addr"`
	}
	_ = json.Unmarshal(pb, &report)

	rt.mu.Lock()
	rt.primary = best.b
	var rest []*backend
	for _, b := range rt.standbys {
		if b != best.b {
			rest = append(rest, b)
		}
	}
	rt.standbys = rest
	rt.mu.Unlock()
	rt.failovers.Add(1)
	rt.logf("router: promoted %s to primary (applied seq %d)", best.b.url, best.seq)
	rt.retargetStandbys(rest, report.ReplAddr)
	return best.b.url, nil
}

// retargetStandbys re-points the surviving standbys at the promoted
// primary's replication listener via POST /v1/admin/follow. Without this a
// survivor keeps chasing its dead predecessor forever: its /healthz stays
// 200 while its data grows stale without bound and replication durability
// silently drops to one node. A standby that cannot be retargeted — every
// standby, when the promoted node exposes no replication listener — is
// dropped from the hedge pool instead of serving unboundedly stale reads.
// Runs asynchronously: the write that triggered the failover must not wait
// on N admin round-trips.
func (rt *Router) retargetStandbys(standbys []*backend, replAddr string) {
	if len(standbys) == 0 {
		return
	}
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		for _, b := range standbys {
			err := fmt.Errorf("promoted primary exposes no replication listener")
			if replAddr != "" {
				err = rt.postFollow(b, replAddr)
			}
			if err != nil {
				rt.logf("router: dropping standby %s from the hedge pool: %v", b.url, err)
				rt.dropStandby(b)
				continue
			}
			rt.logf("router: standby %s now follows %s", b.url, replAddr)
		}
	}()
}

// postFollow asks one standby to follow replAddr.
func (rt *Router) postFollow(b *backend, replAddr string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	body, _ := json.Marshal(map[string]string{"addr": replAddr})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/admin/follow", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	rb, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("follow: %s: %s", resp.Status, strings.TrimSpace(string(rb)))
	}
	return nil
}

// dropStandby removes b from the hedge pool.
func (rt *Router) dropStandby(b *backend) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var rest []*backend
	for _, s := range rt.standbys {
		if s != b {
			rest = append(rest, s)
		}
	}
	rt.standbys = rest
}

// appliedSeq reads a standby's replication cursor from its /statsz.
func (rt *Router) appliedSeq(b *backend) (uint64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/statsz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var stats struct {
		Repl struct {
			AppliedSeq uint64 `json:"applied_seq"`
		} `json:"repl"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return 0, err
	}
	return stats.Repl.AppliedSeq, nil
}

// unavailable answers 503 with the Retry-After hint — the router's only
// refusal, reserved for "no replica can serve this right now".
func (rt *Router) unavailable(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(int((rt.cfg.RetryAfter+time.Second-1)/time.Second)))
	writeRouterError(w, http.StatusServiceUnavailable, format, args...)
}

func writeRouterError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
