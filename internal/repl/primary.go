package repl

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bicc/internal/faults"
)

// Crash-injection sites on the replication path. A KindKill rule at one of
// these proves what failover does when the primary dies with the stream in
// that exact state.
var (
	// siteShip fires immediately before a record is written to a follower's
	// connection: the record is durable on the primary but has not left the
	// box. worker = follower id, iter = record sequence number.
	siteShip = faults.RegisterSite("repl.ship", false)
	// siteAck fires when a follower's ack has been read but not yet
	// recorded: the standby holds the record durably, the primary dies
	// before the client is acknowledged — the at-least-once analog of
	// durable.wal.sync. worker = follower id, iter = acked sequence.
	siteAck = faults.RegisterSite("repl.ack", false)
	// siteRingVerify is the bit-rot injection site on the retention ring's
	// scrub path: a KindCorrupt rule there flips one bit in a buffered
	// record's payload before its checksum is re-verified. iter = record
	// sequence number.
	siteRingVerify = faults.RegisterSite("repl.ring", false)
)

// ErrNoFollowers reports a quorum wait with zero connected standbys: the
// write proceeds un-replicated (a single-node deployment is not an error).
var ErrNoFollowers = errors.New("repl: no followers connected")

// ErrQuorumTimeout reports that the quorum wait expired before enough
// standbys acked. The write has already been fsync'd locally and MUST still
// be acknowledged to the client; the caller only counts the degrade.
var ErrQuorumTimeout = errors.New("repl: quorum ack timeout")

// record is one ring-buffered WAL record awaiting shipment. sum is a
// CRC-32C over (kind ++ payload) taken at publish time, so the scrubber can
// detect a record whose buffered bytes rotted after they were sequenced.
type record struct {
	seq     uint64
	kind    byte
	payload []byte
	sum     uint32
}

// ringSum computes a ring record's publish-time checksum.
func ringSum(kind byte, payload []byte) uint32 {
	return crc32.Update(crc32.Checksum([]byte{kind}, msgCRCTable), msgCRCTable, payload)
}

// PrimaryConfig tunes a Primary. Zero values pick defaults.
type PrimaryConfig struct {
	// Epoch identifies this primary's reign; a promoted standby starts a new
	// primary at its predecessor's epoch + 1, which forces every follower of
	// the old reign through a snapshot resync. 0 means 1.
	Epoch uint64
	// RingSize is how many recent records are retained for follower
	// catch-up; a follower further behind gets a full snapshot resync
	// instead. <= 0 means 8192.
	RingSize int
	// Quorum is how many follower acks a WaitQuorum call requires;
	// <= 0 means 1.
	Quorum int
	// AckTimeout bounds WaitQuorum; <= 0 means 2s.
	AckTimeout time.Duration
	// Snapshot captures the full durable state and the replication sequence
	// number it is consistent with, for resync streams. Required.
	Snapshot func() (state []StateRecord, seq uint64)
	// PingInterval is the keepalive cadence on idle follower connections;
	// <= 0 means 500ms.
	PingInterval time.Duration
	// Logf receives connection lifecycle lines; nil disables them.
	Logf func(format string, args ...any)
}

func (c PrimaryConfig) withDefaults() PrimaryConfig {
	if c.Epoch == 0 {
		c.Epoch = 1
	}
	if c.RingSize <= 0 {
		c.RingSize = 8192
	}
	if c.Quorum <= 0 {
		c.Quorum = 1
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 2 * time.Second
	}
	if c.PingInterval <= 0 {
		c.PingInterval = 500 * time.Millisecond
	}
	return c
}

// follower is one connected standby.
type follower struct {
	id     int
	conn   net.Conn
	addr   string
	notify chan struct{} // capacity 1; poked on publish
	acked  uint64        // guarded by Primary.mu
}

// Primary owns the replication listener and the retention ring. Publish is
// called from the durable store's append observer (under the store mutex),
// so records arrive here in exactly WAL order.
type Primary struct {
	cfg PrimaryConfig
	ln  net.Listener

	// reign is a random run ID, fresh for every Primary instance. Sequence
	// numbers are meaningless across instances — a restarted primary begins
	// again at seq 1 over a possibly different history — so a follower whose
	// hello carries any other reign is snapshot-resynced, never
	// stream-continued. The epoch alone cannot enforce this: it is
	// configuration, and a restarted primary comes back with the same value.
	reign uint64

	mu        sync.Mutex
	ring      []record
	seq       uint64 // last assigned sequence
	followers map[int]*follower
	nextID    int
	closed    bool
	ackWake   chan struct{} // closed and replaced on every ack

	wg sync.WaitGroup

	shipped        atomic.Int64
	acks           atomic.Int64
	resyncs        atomic.Int64
	quorumWaits    atomic.Int64
	quorumTimeouts atomic.Int64
	quorumAlone    atomic.Int64
}

// NewPrimary starts a Primary listening on addr (":0" picks a free port).
func NewPrimary(addr string, cfg PrimaryConfig) (*Primary, error) {
	cfg = cfg.withDefaults()
	if cfg.Snapshot == nil {
		return nil, fmt.Errorf("repl: PrimaryConfig.Snapshot is required")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("repl: listen %s: %w", addr, err)
	}
	reign := rand.Uint64()
	for reign == 0 { // 0 is the follower-side "no reign yet" sentinel
		reign = rand.Uint64()
	}
	p := &Primary{
		cfg:       cfg,
		ln:        ln,
		reign:     reign,
		followers: map[int]*follower{},
		ackWake:   make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the listener's address.
func (p *Primary) Addr() string { return p.ln.Addr().String() }

// Epoch returns this primary's reign number.
func (p *Primary) Epoch() uint64 { return p.cfg.Epoch }

// Reign returns this instance's random run ID.
func (p *Primary) Reign() uint64 { return p.reign }

// Publish assigns the next sequence number to a WAL record and queues it
// for every follower. Called under the durable store's mutex; it must not
// block. It returns the assigned sequence.
func (p *Primary) Publish(kind byte, payload []byte) uint64 {
	cp := append([]byte(nil), payload...)
	p.mu.Lock()
	p.seq++
	seq := p.seq
	p.ring = append(p.ring, record{seq: seq, kind: kind, payload: cp, sum: ringSum(kind, cp)})
	// Amortized trim: compacting on every publish would copy RingSize
	// records per call (under the durable store's mutex, transitively), so
	// let the slice grow to twice the retention floor and shed the older
	// half in one O(RingSize) move every RingSize publishes.
	if len(p.ring) >= 2*p.cfg.RingSize {
		p.ring = append(make([]record, 0, 2*p.cfg.RingSize), p.ring[len(p.ring)-p.cfg.RingSize:]...)
	}
	for _, f := range p.followers {
		select {
		case f.notify <- struct{}{}:
		default:
		}
	}
	p.mu.Unlock()
	return seq
}

// Seq returns the last assigned sequence number.
func (p *Primary) Seq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq
}

// SetSeq positions the sequence counter (promotion: the new primary resumes
// numbering from what it had applied, so its followers' cursors stay
// meaningful within the new epoch).
func (p *Primary) SetSeq(seq uint64) {
	p.mu.Lock()
	if seq > p.seq {
		p.seq = seq
	}
	p.mu.Unlock()
}

// Followers returns how many standbys are connected.
func (p *Primary) Followers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.followers)
}

// FollowerInfo describes one connected standby for /statsz.
type FollowerInfo struct {
	Addr  string `json:"addr"`
	Acked uint64 `json:"acked_seq"`
	Lag   uint64 `json:"lag"`
}

// FollowerInfos returns a snapshot of every connected standby's progress.
func (p *Primary) FollowerInfos() []FollowerInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]FollowerInfo, 0, len(p.followers))
	for _, f := range p.followers {
		out = append(out, FollowerInfo{Addr: f.addr, Acked: f.acked, Lag: p.seq - min(f.acked, p.seq)})
	}
	return out
}

// Lag returns the worst follower's distance from the tip, in records; 0
// with no followers.
func (p *Primary) Lag() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var worst uint64
	for _, f := range p.followers {
		if l := p.seq - min(f.acked, p.seq); l > worst {
			worst = l
		}
	}
	return worst
}

// Shipped, Acks, Resyncs, QuorumTimeouts, QuorumAlone expose the primary's
// counters for metrics.
func (p *Primary) Shipped() int64        { return p.shipped.Load() }
func (p *Primary) Acks() int64           { return p.acks.Load() }
func (p *Primary) Resyncs() int64        { return p.resyncs.Load() }
func (p *Primary) QuorumTimeouts() int64 { return p.quorumTimeouts.Load() }
func (p *Primary) QuorumAlone() int64    { return p.quorumAlone.Load() }

// WaitQuorum blocks until cfg.Quorum followers have acked seq, the
// configured AckTimeout passes, or there are no followers at all. A non-nil
// error (ErrNoFollowers, ErrQuorumTimeout) means the record is NOT known
// replicated — the caller degrades to async and still acknowledges the
// client, because the record is already durable locally.
func (p *Primary) WaitQuorum(seq uint64) error {
	p.quorumWaits.Add(1)
	deadline := time.NewTimer(p.cfg.AckTimeout)
	defer deadline.Stop()
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return ErrNoFollowers
		}
		if len(p.followers) == 0 {
			p.mu.Unlock()
			p.quorumAlone.Add(1)
			return ErrNoFollowers
		}
		n := 0
		for _, f := range p.followers {
			if f.acked >= seq {
				n++
			}
		}
		wake := p.ackWake
		p.mu.Unlock()
		if n >= p.cfg.Quorum {
			return nil
		}
		select {
		case <-wake:
		case <-deadline.C:
			p.quorumTimeouts.Add(1)
			return ErrQuorumTimeout
		}
	}
}

// Close stops the listener and disconnects every follower.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for _, f := range p.followers {
		_ = f.conn.Close()
	}
	close(p.ackWake)
	p.ackWake = make(chan struct{})
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Primary) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

func (p *Primary) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return
		}
		f := &follower{
			id:     p.nextID,
			conn:   conn,
			addr:   conn.RemoteAddr().String(),
			notify: make(chan struct{}, 1),
		}
		p.nextID++
		p.followers[f.id] = f
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serveFollower(f)
	}
}

// dropFollower removes f from the table and closes its connection.
func (p *Primary) dropFollower(f *follower) {
	p.mu.Lock()
	delete(p.followers, f.id)
	p.mu.Unlock()
	_ = f.conn.Close()
}

// serveFollower runs one standby connection: handshake, optional snapshot
// resync, then the record stream. A separate goroutine drains acks.
func (p *Primary) serveFollower(f *follower) {
	defer p.wg.Done()
	defer p.dropFollower(f)

	br := bufio.NewReader(f.conn)
	bw := bufio.NewWriter(f.conn)

	typ, payload, err := readMsg(br)
	if err != nil || typ != msgHello {
		p.logf("repl: follower %s: bad handshake: %v", f.addr, err)
		return
	}
	reign, epoch, lastSeq, err := parseHello(payload)
	if err != nil {
		p.logf("repl: follower %s: %v", f.addr, err)
		return
	}

	// Ack reader: runs until the connection dies.
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		for {
			typ, payload, err := readMsg(br)
			if err != nil {
				return
			}
			if typ != msgAck {
				continue
			}
			seq, err := parseU64(payload, "ack")
			if err != nil {
				return
			}
			faults.Inject(nil, siteAck, f.id, int(seq))
			p.acks.Add(1)
			p.mu.Lock()
			if seq > f.acked {
				f.acked = seq
			}
			close(p.ackWake)
			p.ackWake = make(chan struct{})
			p.mu.Unlock()
		}
	}()

	// Decide the starting cursor: continue the stream only when the
	// follower's cursor came from THIS primary instance (reign match — an
	// epoch match is not enough, since a restarted primary re-announces its
	// configured epoch over a fresh, unrelated sequence space) and is still
	// inside the retention ring; anything else gets the full state.
	p.mu.Lock()
	cursor := lastSeq
	needSnap := reign != p.reign || epoch != p.cfg.Epoch || lastSeq > p.seq || !p.ringCoversLocked(lastSeq)
	p.mu.Unlock()

	if needSnap {
		snapSeq, ok := p.sendSnapshot(bw)
		if !ok {
			return
		}
		cursor = snapSeq
	}
	p.logf("repl: follower %s connected (epoch %d, cursor %d, resync %v)", f.addr, epoch, cursor, needSnap)

	ping := time.NewTicker(p.cfg.PingInterval)
	defer ping.Stop()
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		var batch []record
		if cursor < p.seq {
			if !p.ringCoversLocked(cursor) {
				// Fell out of the ring while streaming (slow follower):
				// restart from a fresh snapshot on the same connection.
				p.mu.Unlock()
				snapSeq, ok := p.sendSnapshot(bw)
				if !ok {
					return
				}
				cursor = snapSeq
				continue
			}
			base := p.ring[0].seq
			batch = append(batch, p.ring[cursor+1-base:]...)
		}
		p.mu.Unlock()

		for _, rec := range batch {
			faults.Inject(nil, siteShip, f.id, int(rec.seq))
			if err := writeMsg(bw, msgRecord, recordPayload(rec.seq, rec.kind, rec.payload)); err != nil {
				return
			}
			p.shipped.Add(1)
			cursor = rec.seq
		}
		if err := bw.Flush(); err != nil {
			return
		}

		select {
		case <-f.notify:
		case <-ping.C:
			p.mu.Lock()
			tip := p.seq
			p.mu.Unlock()
			if writeMsg(bw, msgPing, u64Payload(tip)) != nil || bw.Flush() != nil {
				return
			}
		case <-ackDone:
			return
		}
	}
}

// RingScrubReport summarizes one retention-ring scrub pass.
type RingScrubReport struct {
	Checked int   // records whose checksums were re-verified
	Corrupt int   // records whose buffered bytes no longer match their sum
	Dropped int   // records discarded to restore ring integrity
	Bytes   int64 // payload bytes verified
}

// ScrubRing re-verifies every retained record's publish-time checksum. The
// ring must stay a contiguous suffix of history — serveFollower slices it by
// sequence — so a corrupt record cannot be excised alone: the ring is
// truncated through the newest damaged record, and any follower whose cursor
// falls behind the new floor is repaired by the existing snapshot-resync
// path on its next batch. That resync IS the repair: the authoritative bytes
// live in the durable store, not the ring.
func (p *Primary) ScrubRing() RingScrubReport {
	var rep RingScrubReport
	p.mu.Lock()
	defer p.mu.Unlock()
	last := -1
	for i := range p.ring {
		rec := &p.ring[i]
		rep.Checked++
		rep.Bytes += int64(len(rec.payload))
		faults.InjectCorrupt(siteRingVerify, 0, int(rec.seq), rec.payload)
		if ringSum(rec.kind, rec.payload) != rec.sum {
			rep.Corrupt++
			last = i
		}
	}
	if last >= 0 {
		rep.Dropped = last + 1
		p.ring = append([]record(nil), p.ring[last+1:]...)
	}
	return rep
}

// ringCoversLocked reports whether the retention ring can serve records
// (cursor, seq]: either nothing is missing or the ring's oldest record is
// cursor+1 or earlier.
func (p *Primary) ringCoversLocked(cursor uint64) bool {
	if cursor >= p.seq {
		return true
	}
	if len(p.ring) == 0 {
		return false
	}
	return p.ring[0].seq <= cursor+1
}

// sendSnapshot streams the full durable state, returning the sequence the
// snapshot is consistent with.
func (p *Primary) sendSnapshot(bw *bufio.Writer) (uint64, bool) {
	p.resyncs.Add(1)
	state, seq := p.cfg.Snapshot()
	if err := writeMsg(bw, msgSnapBegin, snapBeginPayload(p.reign, p.cfg.Epoch, seq, len(state))); err != nil {
		return 0, false
	}
	for _, rec := range state {
		body := make([]byte, 1+len(rec.Payload))
		body[0] = rec.Kind
		copy(body[1:], rec.Payload)
		if err := writeMsg(bw, msgSnapRecord, body); err != nil {
			return 0, false
		}
	}
	if err := writeMsg(bw, msgSnapEnd, u32Payload(uint32(len(state)))); err != nil {
		return 0, false
	}
	return seq, bw.Flush() == nil
}
