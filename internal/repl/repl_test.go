package repl

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// memApplier is an in-memory Applier recording everything it replays.
type memApplier struct {
	mu     sync.Mutex
	recs   []StateRecord // records applied via Apply, in order
	resets [][]StateRecord
	fail   error // next Apply returns this once
}

func (a *memApplier) Apply(kind byte, payload []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.fail != nil {
		err := a.fail
		a.fail = nil
		return err
	}
	a.recs = append(a.recs, StateRecord{Kind: kind, Payload: append([]byte(nil), payload...)})
	return nil
}

func (a *memApplier) Reset(state []StateRecord) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	cp := make([]StateRecord, len(state))
	copy(cp, state)
	a.resets = append(a.resets, cp)
	a.recs = nil
	return nil
}

func (a *memApplier) applied() []StateRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]StateRecord(nil), a.recs...)
}

func (a *memApplier) resetCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.resets)
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func newTestPrimary(t *testing.T, cfg PrimaryConfig) *Primary {
	t.Helper()
	if cfg.Snapshot == nil {
		cfg.Snapshot = func() ([]StateRecord, uint64) { return nil, 0 }
	}
	p, err := NewPrimary("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

func newTestStandby(t *testing.T, addr string, a Applier) *Standby {
	t.Helper()
	s, err := NewStandby(StandbyConfig{PrimaryAddr: addr, Applier: a, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

// TestStreamDeliversInOrder publishes records before and after the standby
// connects and asserts they all arrive byte-identical, in order, and that a
// quorum wait completes once the standby acks.
func TestStreamDeliversInOrder(t *testing.T) {
	p := newTestPrimary(t, PrimaryConfig{})
	var want []StateRecord
	pub := func(i int) {
		payload := []byte(fmt.Sprintf("record-%d", i))
		p.Publish(byte(i%3+1), payload)
		want = append(want, StateRecord{Kind: byte(i%3 + 1), Payload: payload})
	}
	for i := 0; i < 3; i++ {
		pub(i) // published before the standby exists: served from the ring
	}
	a := &memApplier{}
	s := newTestStandby(t, p.Addr(), a)
	waitUntil(t, "standby catch-up", func() bool { return s.AppliedSeq() == 3 })
	for i := 3; i < 8; i++ {
		pub(i)
	}
	if err := p.WaitQuorum(p.Seq()); err != nil {
		t.Fatalf("WaitQuorum: %v", err)
	}
	if s.AppliedSeq() != 8 {
		t.Fatalf("applied %d after quorum, want 8", s.AppliedSeq())
	}
	got := a.applied()
	if len(got) != len(want) {
		t.Fatalf("applied %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d: got kind %d %q, want kind %d %q",
				i, got[i].Kind, got[i].Payload, want[i].Kind, want[i].Payload)
		}
	}
	if p.Followers() != 1 || p.Lag() != 0 {
		t.Fatalf("followers %d lag %d, want 1 and 0", p.Followers(), p.Lag())
	}
}

// TestRingOverflowForcesSnapshot publishes far past a tiny retention ring so
// a fresh standby cannot be served incrementally: it must get the snapshot,
// positioned at the snapshot's sequence.
func TestRingOverflowForcesSnapshot(t *testing.T) {
	state := []StateRecord{
		{Kind: 1, Payload: []byte("alpha")},
		{Kind: 1, Payload: []byte("beta")},
	}
	var snapSeq uint64
	var mu sync.Mutex
	p := newTestPrimary(t, PrimaryConfig{
		RingSize: 4,
		Snapshot: func() ([]StateRecord, uint64) {
			mu.Lock()
			defer mu.Unlock()
			return state, snapSeq
		},
	})
	for i := 0; i < 20; i++ {
		p.Publish(1, []byte(fmt.Sprintf("r%d", i)))
	}
	mu.Lock()
	snapSeq = p.Seq()
	mu.Unlock()

	a := &memApplier{}
	s := newTestStandby(t, p.Addr(), a)
	waitUntil(t, "snapshot resync", func() bool { return s.AppliedSeq() == 20 })
	if s.Resyncs() != 1 {
		t.Fatalf("standby resyncs %d, want 1", s.Resyncs())
	}
	if a.resetCount() != 1 {
		t.Fatalf("applier resets %d, want 1", a.resetCount())
	}
	a.mu.Lock()
	got := a.resets[0]
	a.mu.Unlock()
	if len(got) != 2 || !bytes.Equal(got[0].Payload, []byte("alpha")) || !bytes.Equal(got[1].Payload, []byte("beta")) {
		t.Fatalf("snapshot state %v", got)
	}
	// The stream continues seamlessly past the snapshot.
	p.Publish(2, []byte("after"))
	waitUntil(t, "post-snapshot record", func() bool { return s.AppliedSeq() == 21 })
	if got := a.applied(); len(got) != 1 || !bytes.Equal(got[0].Payload, []byte("after")) {
		t.Fatalf("post-snapshot records %v", got)
	}
}

// TestGapForcesResync runs a deliberately broken primary that skips a
// sequence number; the standby must refuse to apply past the hole, count
// the gap, and come back asking for a snapshot.
func TestGapForcesResync(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	hellos := make(chan uint64, 4) // lastSeq of each handshake
	go func() {
		for conn, err := ln.Accept(); err == nil; conn, err = ln.Accept() {
			go func(c net.Conn) {
				defer c.Close()
				br, bw := bufio.NewReader(c), bufio.NewWriter(c)
				typ, payload, err := readMsg(br)
				if err != nil || typ != msgHello {
					return
				}
				_, _, lastSeq, _ := parseHello(payload)
				hellos <- lastSeq
				// Empty snapshot at seq 5, then a record at seq 7: a hole.
				_ = writeMsg(bw, msgSnapBegin, snapBeginPayload(9, 1, 5, 0))
				_ = writeMsg(bw, msgSnapEnd, u32Payload(0))
				_ = writeMsg(bw, msgRecord, recordPayload(7, 1, []byte("x")))
				_ = bw.Flush()
				// Drain acks until the standby hangs up in disgust.
				for {
					if _, _, err := readMsg(br); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	a := &memApplier{}
	s := newTestStandby(t, ln.Addr().String(), a)
	waitUntil(t, "gap detection", func() bool { return s.Gaps() >= 1 })
	// The reconnect handshake must start from zero: cursor discarded.
	<-hellos // first connection
	select {
	case lastSeq := <-hellos:
		if lastSeq != 0 {
			t.Fatalf("post-gap handshake lastSeq %d, want 0", lastSeq)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("standby never reconnected after the gap")
	}
	if got := a.applied(); len(got) != 0 {
		t.Fatalf("records applied across a gap: %v", got)
	}
}

// TestWaitQuorumDegrades covers the two degrade paths: no followers at all,
// and a follower that never acks within the timeout.
func TestWaitQuorumDegrades(t *testing.T) {
	p := newTestPrimary(t, PrimaryConfig{AckTimeout: 50 * time.Millisecond})
	p.Publish(1, []byte("solo"))
	if err := p.WaitQuorum(p.Seq()); !errors.Is(err, ErrNoFollowers) {
		t.Fatalf("WaitQuorum alone: %v, want ErrNoFollowers", err)
	}

	// A follower that handshakes but never acks.
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := writeMsg(bw, msgHello, helloPayload(0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "mute follower registered", func() bool { return p.Followers() == 1 })
	p.Publish(1, []byte("stuck"))
	if err := p.WaitQuorum(p.Seq()); !errors.Is(err, ErrQuorumTimeout) {
		t.Fatalf("WaitQuorum with mute follower: %v, want ErrQuorumTimeout", err)
	}
	if p.QuorumTimeouts() < 1 {
		t.Fatalf("quorum timeouts %d, want >= 1", p.QuorumTimeouts())
	}
}

// TestStandbyRecoversAfterPrimaryRestart kills the primary's listener and
// starts a new one (a new epoch) on a fresh address; a standby retargeted
// through reconnection is out of scope — instead this asserts that a
// standby following an address that dies keeps retrying and resumes when a
// primary returns at the same address with a NEW epoch, which must force a
// full resync rather than a silent continuation.
func TestStandbyRecoversAfterPrimaryRestart(t *testing.T) {
	p1, err := NewPrimary("127.0.0.1:0", PrimaryConfig{
		Epoch:    1,
		Snapshot: func() ([]StateRecord, uint64) { return nil, 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := p1.Addr()
	p1.Publish(1, []byte("one"))
	a := &memApplier{}
	s := newTestStandby(t, addr, a)
	waitUntil(t, "first catch-up", func() bool { return s.AppliedSeq() == 1 })
	_ = p1.Close()

	// Same address, epoch 2, state says two records exist.
	state := []StateRecord{{Kind: 1, Payload: []byte("one")}, {Kind: 1, Payload: []byte("two")}}
	p2, err := NewPrimary(addr, PrimaryConfig{
		Epoch:    2,
		Snapshot: func() ([]StateRecord, uint64) { return state, 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	waitUntil(t, "epoch-change resync", func() bool { return s.Epoch() == 2 && s.AppliedSeq() == 2 })
	if a.resetCount() < 1 {
		t.Fatal("epoch change did not force a snapshot resync")
	}
}

// TestPrimaryRestartSameEpochForcesResync is the cross-history divergence
// case: the primary restarts with the SAME configured epoch and re-publishes
// at least as many records as the standby had applied, so the standby's
// cursor lands inside the new instance's retention ring. Epoch comparison
// alone would stream-continue across two unrelated histories — keeping the
// old reign's records and silently missing the new reign's first N. The
// per-instance reign ID in the handshake must force a full snapshot resync
// instead.
func TestPrimaryRestartSameEpochForcesResync(t *testing.T) {
	p1, err := NewPrimary("127.0.0.1:0", PrimaryConfig{
		Epoch:    1,
		Snapshot: func() ([]StateRecord, uint64) { return nil, 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := p1.Addr()
	p1.Publish(1, []byte("old-1"))
	p1.Publish(1, []byte("old-2"))
	a := &memApplier{}
	s := newTestStandby(t, addr, a)
	waitUntil(t, "old-reign catch-up", func() bool { return s.AppliedSeq() == 2 })
	_ = p1.Close()

	// Same address, same epoch, different history: three records the standby
	// has never seen. The snapshot stays consistent with the publish cursor
	// under the mutex, mirroring how the service pairs the two.
	var mu sync.Mutex
	var state []StateRecord
	p2, err := NewPrimary(addr, PrimaryConfig{
		Epoch: 1,
		Snapshot: func() ([]StateRecord, uint64) {
			mu.Lock()
			defer mu.Unlock()
			return append([]StateRecord(nil), state...), uint64(len(state))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for i := 1; i <= 3; i++ {
		payload := []byte(fmt.Sprintf("new-%d", i))
		mu.Lock()
		state = append(state, StateRecord{Kind: 1, Payload: payload})
		mu.Unlock()
		p2.Publish(1, payload)
	}

	waitUntil(t, "new-reign resync", func() bool { return s.AppliedSeq() == 3 })
	if a.resetCount() < 1 {
		t.Fatal("primary restart with the same epoch did not force a snapshot resync")
	}
	// Whatever mix of snapshot and streamed records arrived, the standby's
	// final contents must be exactly the new reign's history.
	a.mu.Lock()
	got := append([]StateRecord(nil), a.resets[len(a.resets)-1]...)
	got = append(got, a.recs...)
	a.mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("standby holds %d records after resync, want 3", len(got))
	}
	for i, rec := range got {
		want := fmt.Sprintf("new-%d", i+1)
		if string(rec.Payload) != want {
			t.Fatalf("record %d: %q, want %q — stream continued across histories", i, rec.Payload, want)
		}
	}
}
