// Package repl is bccd's primary/standby replication subsystem. A primary
// taps its durable store's WAL at the append observer (records arrive here
// in exactly WAL order, post-fsync) and streams them over a length-prefixed
// TCP protocol to N warm standbys, which replay each record into their own
// registries and WALs before acking its sequence number. A standby that
// reconnects with a stale cursor — or one the primary's retention ring can
// no longer serve — is resynced with a full state snapshot. The package
// also provides the Router: a thin HTTP front that forwards /v1/* to the
// primary, hedges idempotent reads to standbys past a latency threshold,
// and promotes the most-caught-up standby when the primary dies.
//
// The wire format deliberately reuses the WAL's record payloads: what ships
// is the exact bytes the primary fsync'd, so a standby's disk state is
// always a valid PR 4 recovery image and promotion is recovery plus a role
// flip.
package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Message types. Frame: [type:1][len:u32 LE][crc:u32 LE over type++payload].
const (
	msgHello      = 1 // standby→primary: [reign:u64][epoch:u64][lastSeq:u64]
	msgSnapBegin  = 2 // primary→standby: [reign:u64][epoch:u64][seq:u64][count:u32]
	msgSnapRecord = 3 // primary→standby: [walKind:1][record payload]
	msgSnapEnd    = 4 // primary→standby: [count:u32]
	msgRecord     = 5 // primary→standby: [seq:u64][walKind:1][record payload]
	msgAck        = 6 // standby→primary: [appliedSeq:u64]
	msgPing       = 7 // primary→standby: [tipSeq:u64]
)

// maxMsgLen caps one message payload; a corrupt length field must not drive
// a huge allocation. Graph records are bounded by the service's body cap
// well below this.
const maxMsgLen = 1 << 30

var msgCRCTable = crc32.MakeTable(crc32.Castagnoli)

// writeMsg frames and writes one message. The caller flushes.
func writeMsg(w *bufio.Writer, typ byte, payload []byte) error {
	var hdr [9]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum(hdr[:1], msgCRCTable), msgCRCTable, payload)
	binary.LittleEndian.PutUint32(hdr[5:9], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readChunk bounds how much readMsg allocates ahead of the bytes actually
// arriving: a corrupt length prefix claiming a near-cap payload on a short
// stream must fail after one chunk, not after a 1 GiB make.
const readChunk = 64 << 10

// readMsg reads one framed message, validating length and CRC.
func readMsg(r *bufio.Reader) (typ byte, payload []byte, err error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ = hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if n > maxMsgLen {
		return 0, nil, fmt.Errorf("repl: message length %d exceeds cap", n)
	}
	if payload, err = readN(r, int(n)); err != nil {
		return 0, nil, err
	}
	crc := crc32.Update(crc32.Checksum(hdr[:1], msgCRCTable), msgCRCTable, payload)
	if crc != binary.LittleEndian.Uint32(hdr[5:9]) {
		return 0, nil, fmt.Errorf("repl: message CRC mismatch")
	}
	return typ, payload, nil
}

// readN reads exactly n bytes, growing the buffer chunk by chunk so the
// allocation never runs more than readChunk ahead of the stream.
func readN(r *bufio.Reader, n int) ([]byte, error) {
	if n <= readChunk {
		b := make([]byte, n)
		_, err := io.ReadFull(r, b)
		return b, err
	}
	b := make([]byte, 0, readChunk)
	for len(b) < n {
		chunk := min(n-len(b), readChunk)
		off := len(b)
		b = append(b, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, b[off:]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// helloPayload renders a standby's handshake. reign is the random run ID of
// the primary instance whose stream the standby's cursor came from (0 when
// the cursor is empty); a primary seeing any reign but its own serves a
// snapshot, never a stream continuation — sequence numbers are only
// comparable within one primary instance's lifetime.
func helloPayload(reign, epoch, lastSeq uint64) []byte {
	b := make([]byte, 24)
	binary.LittleEndian.PutUint64(b[0:8], reign)
	binary.LittleEndian.PutUint64(b[8:16], epoch)
	binary.LittleEndian.PutUint64(b[16:24], lastSeq)
	return b
}

func parseHello(b []byte) (reign, epoch, lastSeq uint64, err error) {
	if len(b) != 24 {
		return 0, 0, 0, fmt.Errorf("repl: hello payload %d bytes, want 24", len(b))
	}
	return binary.LittleEndian.Uint64(b[0:8]), binary.LittleEndian.Uint64(b[8:16]),
		binary.LittleEndian.Uint64(b[16:24]), nil
}

func snapBeginPayload(reign, epoch, seq uint64, count int) []byte {
	b := make([]byte, 28)
	binary.LittleEndian.PutUint64(b[0:8], reign)
	binary.LittleEndian.PutUint64(b[8:16], epoch)
	binary.LittleEndian.PutUint64(b[16:24], seq)
	binary.LittleEndian.PutUint32(b[24:28], uint32(count))
	return b
}

func parseSnapBegin(b []byte) (reign, epoch, seq uint64, count int, err error) {
	if len(b) != 28 {
		return 0, 0, 0, 0, fmt.Errorf("repl: snap-begin payload %d bytes, want 28", len(b))
	}
	return binary.LittleEndian.Uint64(b[0:8]), binary.LittleEndian.Uint64(b[8:16]),
		binary.LittleEndian.Uint64(b[16:24]), int(binary.LittleEndian.Uint32(b[24:28])), nil
}

func recordPayload(seq uint64, kind byte, payload []byte) []byte {
	b := make([]byte, 9+len(payload))
	binary.LittleEndian.PutUint64(b[0:8], seq)
	b[8] = kind
	copy(b[9:], payload)
	return b
}

func parseRecord(b []byte) (seq uint64, kind byte, payload []byte, err error) {
	if len(b) < 9 {
		return 0, 0, nil, fmt.Errorf("repl: record payload %d bytes, want >= 9", len(b))
	}
	return binary.LittleEndian.Uint64(b[0:8]), b[8], b[9:], nil
}

func u64Payload(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func parseU64(b []byte, what string) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("repl: %s payload %d bytes, want 8", what, len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

func u32Payload(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}

func parseU32(b []byte, what string) (uint32, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("repl: %s payload %d bytes, want 4", what, len(b))
	}
	return binary.LittleEndian.Uint32(b), nil
}

// StateRecord is one record of a full-state snapshot stream: a WAL record
// kind plus its payload, exactly as the primary's durable state encodes it.
type StateRecord struct {
	Kind    byte
	Payload []byte
}
