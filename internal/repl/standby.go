package repl

import (
	"bufio"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Applier is the standby side's replay surface. Apply must make the record
// durable before returning — the ack the standby sends afterwards is the
// primary's proof that the record survives the standby's own crash. Reset
// replaces the entire state with a snapshot baseline.
type Applier interface {
	Apply(kind byte, payload []byte) error
	Reset(state []StateRecord) error
}

// StandbyConfig tunes a Standby. Zero values pick defaults.
type StandbyConfig struct {
	// PrimaryAddr is the primary's replication listener (host:port).
	// Required.
	PrimaryAddr string
	// Applier replays shipped records; required.
	Applier Applier
	// DialTimeout bounds one connection attempt; <= 0 means 2s.
	DialTimeout time.Duration
	// RetryMin/RetryMax bound the reconnect backoff; <= 0 means 100ms / 2s.
	RetryMin, RetryMax time.Duration
	// Logf receives lifecycle lines; nil disables them.
	Logf func(format string, args ...any)
}

func (c StandbyConfig) withDefaults() StandbyConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RetryMin <= 0 {
		c.RetryMin = 100 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	return c
}

// Standby maintains a connection to the primary, replays the record stream
// through its Applier, and acks every applied sequence. It reconnects with
// jittered backoff forever until stopped; a fresh process (applied == 0,
// reign == 0), an epoch change, or any other primary instance than the one
// the cursor came from (reign mismatch — e.g. a restarted primary) forces a
// full snapshot resync.
type Standby struct {
	cfg StandbyConfig

	mu        sync.Mutex
	applied   uint64
	epoch     uint64
	reign     uint64 // run ID of the primary instance `applied` counts against
	connected bool
	conn      net.Conn
	stopped   bool

	appliedRecords atomic.Int64
	resyncs        atomic.Int64
	gaps           atomic.Int64
	applyErrors    atomic.Int64

	stop chan struct{}
	done chan struct{}
}

// NewStandby starts the follow loop against cfg.PrimaryAddr.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	cfg = cfg.withDefaults()
	if cfg.PrimaryAddr == "" {
		return nil, fmt.Errorf("repl: StandbyConfig.PrimaryAddr is required")
	}
	if cfg.Applier == nil {
		return nil, fmt.Errorf("repl: StandbyConfig.Applier is required")
	}
	s := &Standby{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	go s.run()
	return s, nil
}

// AppliedSeq returns the last sequence durably applied.
func (s *Standby) AppliedSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Epoch returns the primary reign the standby is following (0 before the
// first snapshot).
func (s *Standby) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Connected reports whether the stream is currently up.
func (s *Standby) Connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.connected
}

// AppliedRecords, Resyncs, Gaps, ApplyErrors expose counters for metrics.
func (s *Standby) AppliedRecords() int64 { return s.appliedRecords.Load() }
func (s *Standby) Resyncs() int64        { return s.resyncs.Load() }
func (s *Standby) Gaps() int64           { return s.gaps.Load() }
func (s *Standby) ApplyErrors() int64    { return s.applyErrors.Load() }

// Stop ends the follow loop and closes any live connection. Idempotent;
// returns once the loop has exited. Used at shutdown and at promotion — a
// promoted standby must stop chasing its dead predecessor.
func (s *Standby) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.stopped = true
	close(s.stop)
	if s.conn != nil {
		_ = s.conn.Close()
	}
	s.mu.Unlock()
	<-s.done
}

func (s *Standby) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Standby) run() {
	defer close(s.done)
	backoff := s.cfg.RetryMin
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		err := s.follow()
		select {
		case <-s.stop:
			return
		default:
		}
		if err != nil {
			s.logf("repl: standby: %v (reconnecting in %v)", err, backoff)
		}
		// Jittered exponential backoff so a herd of standbys does not
		// reconnect in lockstep after a primary restart.
		sleep := backoff/2 + time.Duration(rand.Int64N(int64(backoff)+1))
		select {
		case <-s.stop:
			return
		case <-time.After(sleep):
		}
		backoff *= 2
		if backoff > s.cfg.RetryMax {
			backoff = s.cfg.RetryMax
		}
	}
}

// forceResync zeroes the cursor so the next handshake gets a snapshot.
func (s *Standby) forceResync() {
	s.mu.Lock()
	s.applied, s.epoch, s.reign = 0, 0, 0
	s.mu.Unlock()
}

// ForceResync is the repair entry point for a standby whose local state can
// no longer be trusted (the scrubber found damage it could not heal from
// local sources): it zeroes the replication cursor AND kills the live
// connection, so the follow loop reconnects immediately and the primary —
// seeing reign 0 — streams a full snapshot. Applying that snapshot rebuilds
// the registry and re-logs every graph through the standby's own WAL.
func (s *Standby) ForceResync() {
	s.mu.Lock()
	s.applied, s.epoch, s.reign = 0, 0, 0
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// follow runs one connection: handshake, then replay until the stream dies.
func (s *Standby) follow() error {
	conn, err := net.DialTimeout("tcp", s.cfg.PrimaryAddr, s.cfg.DialTimeout)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		_ = conn.Close()
		return nil
	}
	s.conn = conn
	s.connected = true
	reign, epoch, applied := s.reign, s.epoch, s.applied
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.connected = false
		s.conn = nil
		s.mu.Unlock()
		_ = conn.Close()
	}()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	if err := writeMsg(bw, msgHello, helloPayload(reign, epoch, applied)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	ack := func(seq uint64) error {
		if err := writeMsg(bw, msgAck, u64Payload(seq)); err != nil {
			return err
		}
		return bw.Flush()
	}

	for {
		typ, payload, err := readMsg(br)
		if err != nil {
			return err
		}
		switch typ {
		case msgSnapBegin:
			snapReign, snapEpoch, snapSeq, count, err := parseSnapBegin(payload)
			if err != nil {
				return err
			}
			state := make([]StateRecord, 0, count)
			for {
				t2, p2, err := readMsg(br)
				if err != nil {
					return err
				}
				if t2 == msgSnapEnd {
					want, err := parseU32(p2, "snap-end")
					if err != nil {
						return err
					}
					if int(want) != len(state) {
						return fmt.Errorf("repl: snapshot record count %d, trailer says %d", len(state), want)
					}
					break
				}
				if t2 != msgSnapRecord {
					return fmt.Errorf("repl: message type %d inside snapshot stream", t2)
				}
				if len(p2) < 1 {
					return fmt.Errorf("repl: empty snapshot record")
				}
				state = append(state, StateRecord{Kind: p2[0], Payload: append([]byte(nil), p2[1:]...)})
			}
			s.resyncs.Add(1)
			if err := s.cfg.Applier.Reset(state); err != nil {
				s.applyErrors.Add(1)
				s.forceResync()
				return fmt.Errorf("repl: applying snapshot: %w", err)
			}
			s.mu.Lock()
			s.applied, s.epoch, s.reign = snapSeq, snapEpoch, snapReign
			s.mu.Unlock()
			s.logf("repl: standby resynced: %d records, seq %d, epoch %d, reign %x", len(state), snapSeq, snapEpoch, snapReign)
			if err := ack(snapSeq); err != nil {
				return err
			}

		case msgRecord:
			seq, kind, body, err := parseRecord(payload)
			if err != nil {
				return err
			}
			s.mu.Lock()
			applied := s.applied
			s.mu.Unlock()
			if seq <= applied {
				// Duplicate from a reconnect race; re-ack our position.
				if err := ack(applied); err != nil {
					return err
				}
				continue
			}
			if seq != applied+1 {
				// A hole in the stream means our cursor is meaningless:
				// start over from a snapshot.
				s.gaps.Add(1)
				s.forceResync()
				return fmt.Errorf("repl: sequence gap: applied %d, got %d", applied, seq)
			}
			if err := s.cfg.Applier.Apply(kind, body); err != nil {
				s.applyErrors.Add(1)
				s.forceResync()
				return fmt.Errorf("repl: applying record %d: %w", seq, err)
			}
			s.appliedRecords.Add(1)
			s.mu.Lock()
			s.applied = seq
			s.mu.Unlock()
			if err := ack(seq); err != nil {
				return err
			}

		case msgPing:
			s.mu.Lock()
			applied := s.applied
			s.mu.Unlock()
			if err := ack(applied); err != nil {
				return err
			}

		default:
			return fmt.Errorf("repl: unexpected message type %d", typ)
		}
	}
}
