package repl

import (
	"fmt"
	"sync/atomic"
	"testing"

	"bicc/internal/faults"
)

// TestScrubRingCleanPass proves an undamaged retention ring scrubs clean:
// every record checked, nothing corrupt, nothing dropped.
func TestScrubRingCleanPass(t *testing.T) {
	p := newTestPrimary(t, PrimaryConfig{})
	for i := 1; i <= 10; i++ {
		p.Publish(1, []byte(fmt.Sprintf("ring-record-%02d", i)))
	}
	rep := p.ScrubRing()
	if rep.Checked != 10 || rep.Corrupt != 0 || rep.Dropped != 0 {
		t.Fatalf("clean ring scrub = %+v, want 10 checked, 0 corrupt, 0 dropped", rep)
	}
	if rep.Bytes == 0 {
		t.Fatalf("clean ring scrub verified 0 bytes")
	}
}

// TestScrubRingTruncatesThroughDamage corrupts one buffered record and
// proves the scrub truncates the ring through it — the ring must stay a
// contiguous suffix of history, so everything at or before the damaged
// sequence is dropped — and that the next pass is clean again.
func TestScrubRingTruncatesThroughDamage(t *testing.T) {
	p := newTestPrimary(t, PrimaryConfig{})
	for i := 1; i <= 10; i++ {
		p.Publish(2, []byte(fmt.Sprintf("ring-record-%02d", i)))
	}
	// The repl.ring site fires with iter = the record's sequence number, so
	// iter=4 damages exactly the fourth published record.
	r := faults.NewRule(faults.KindCorrupt, "repl.ring")
	r.Iter = 4
	r.Count = 1
	faults.Activate(&faults.Plan{Seed: 11, Rules: []*faults.Rule{r}})
	defer faults.Deactivate()

	rep := p.ScrubRing()
	if rep.Checked != 10 || rep.Corrupt != 1 {
		t.Fatalf("scrub of damaged ring = %+v, want 10 checked, 1 corrupt", rep)
	}
	if rep.Dropped != 4 {
		t.Fatalf("dropped %d records, want 4 (sequences 1..4, through the damage)", rep.Dropped)
	}

	faults.Deactivate()
	rep = p.ScrubRing()
	if rep.Checked != 6 || rep.Corrupt != 0 || rep.Dropped != 0 {
		t.Fatalf("post-truncation scrub = %+v, want 6 checked and clean", rep)
	}
}

// TestScrubRingResyncIsTheRepair proves the documented repair path: after a
// scrub truncates the ring, a follower whose cursor falls behind the new
// floor is served a full snapshot resync and still converges on the tip.
func TestScrubRingResyncIsTheRepair(t *testing.T) {
	state := []StateRecord{{Kind: 1, Payload: []byte("snapshot-state")}}
	var snapSeq atomic.Uint64
	p := newTestPrimary(t, PrimaryConfig{
		Snapshot: func() ([]StateRecord, uint64) { return state, snapSeq.Load() },
	})
	for i := 1; i <= 8; i++ {
		p.Publish(1, []byte(fmt.Sprintf("ring-record-%02d", i)))
	}
	snapSeq.Store(p.Seq())

	r := faults.NewRule(faults.KindCorrupt, "repl.ring")
	r.Iter = 6
	r.Count = 1
	faults.Activate(&faults.Plan{Seed: 17, Rules: []*faults.Rule{r}})
	defer faults.Deactivate()
	rep := p.ScrubRing()
	faults.Deactivate()
	if rep.Corrupt != 1 || rep.Dropped != 6 {
		t.Fatalf("scrub = %+v, want 1 corrupt, 6 dropped", rep)
	}

	// A fresh standby's cursor (0) is now behind the ring floor (7): the
	// primary must serve the snapshot, not a stream continuation.
	a := &memApplier{}
	s := newTestStandby(t, p.Addr(), a)
	waitUntil(t, "standby resync catch-up", func() bool { return s.AppliedSeq() == p.Seq() })
	if p.Resyncs() == 0 {
		t.Fatalf("standby caught up without a snapshot resync; ring should not cover cursor 0")
	}
	if a.resetCount() == 0 {
		t.Fatalf("applier never saw the snapshot Reset")
	}
}
