// Package httpretry is the retry layer shared by the bcc command-line
// clients. A replicated deployment answers 429 (admission queue full) and
// 503 (draining, read-only standby, failover in progress) as a matter of
// course; the tools retry those with jittered exponential backoff, honoring
// the server's Retry-After hint when one is present, instead of dying on
// the first transient.
//
// Only status-coded rejections are retried by default: a 429 or 503
// normally proves the request was refused before it took effect, so
// resending is safe even for non-idempotent calls like edge mutations. The
// one 503 that does NOT carry that proof — the router's "primary died
// mid-write, the mutation may have committed" refusal — is stamped with
// HeaderMaybeApplied and is never auto-retried: it is returned to the
// caller, who alone knows whether re-sending is acceptable. Transport
// errors (the connection died mid-request) likewise carry no proof and are
// retried only when the caller opts in via RetryTransportErrors —
// appropriate for idempotent requests, wrong for mutations.
package httpretry

import (
	"bytes"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"
)

// HeaderMaybeApplied marks a 503 whose request MAY already have taken
// effect on the server (the router's primary died mid-write after the
// request was handed to it). Such a response must never be auto-retried:
// re-sending a non-idempotent call that actually committed double-applies
// it. Servers set it to "1"; its presence, not its value, is what matters.
const HeaderMaybeApplied = "X-Bicc-Maybe-Applied"

// Policy tunes the retry loop. Zero values pick defaults.
type Policy struct {
	// MaxAttempts bounds total tries, first included; <= 0 means 5.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff; <= 0 means 200ms.
	BaseDelay time.Duration
	// MaxDelay caps one sleep, including server Retry-After hints;
	// <= 0 means 5s.
	MaxDelay time.Duration
	// RetryTransportErrors also retries requests that failed before any
	// HTTP status arrived. Leave false for non-idempotent requests: a dead
	// connection does not prove the server never processed them.
	RetryTransportErrors bool
	// Logf announces each retry; nil disables the lines.
	Logf func(format string, args ...any)
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 200 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// Client wraps an http.Client with the retry policy. Bodies are passed as
// byte slices so every attempt can resend them.
type Client struct {
	HTTP   *http.Client
	Policy Policy
}

// Get issues a GET with retries.
func (c *Client) Get(url string) (*http.Response, error) {
	return c.do(http.MethodGet, url, "", nil)
}

// Post issues a POST with retries; body is resent on each attempt.
func (c *Client) Post(url, contentType string, body []byte) (*http.Response, error) {
	return c.do(http.MethodPost, url, contentType, body)
}

// Do issues an arbitrary bodyless method (DELETE, say) with retries.
func (c *Client) Do(method, url string) (*http.Response, error) {
	return c.do(method, url, "", nil)
}

func (c *Client) do(method, url, contentType string, body []byte) (*http.Response, error) {
	pol := c.Policy.withDefaults()
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	backoff := pol.BaseDelay
	var resp *http.Response
	var err error
	for attempt := 1; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, rerr := http.NewRequest(method, url, rd)
		if rerr != nil {
			return nil, rerr
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err = httpc.Do(req)
		if err != nil {
			if !pol.RetryTransportErrors || attempt >= pol.MaxAttempts {
				return nil, err
			}
		} else if !retryableResponse(resp) || attempt >= pol.MaxAttempts {
			return resp, nil
		}

		delay := backoff/2 + rand.N(backoff/2+1) // jitter in [b/2, b]
		if resp != nil {
			if ra, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
				// The server knows its own recovery horizon better than our
				// backoff does; add jitter so a herd of clients still spreads.
				delay = ra + rand.N(ra/4+time.Millisecond)
			}
			// Drain so the connection is reusable, then drop the response.
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			_ = resp.Body.Close()
		}
		if delay > pol.MaxDelay {
			delay = pol.MaxDelay
		}
		if pol.Logf != nil {
			what := "transport error"
			if resp != nil {
				what = resp.Status
			}
			pol.Logf("retrying %s %s in %v (attempt %d/%d: %s)",
				method, url, delay.Round(time.Millisecond), attempt, pol.MaxAttempts, what)
		}
		time.Sleep(delay)
		backoff *= 2
		if backoff > pol.MaxDelay {
			backoff = pol.MaxDelay
		}
	}
}

// retryableResponse reports whether resp proves the request was refused
// without effect and may be resent. A 503 carrying HeaderMaybeApplied is
// explicitly NOT such proof — the server is saying the request may have
// committed before the refusal — so it is handed back to the caller intact.
func retryableResponse(resp *http.Response) bool {
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		return true
	case http.StatusServiceUnavailable:
		return resp.Header.Get(HeaderMaybeApplied) == ""
	}
	return false
}

// parseRetryAfter reads a Retry-After header: delay-seconds or an HTTP
// date.
func parseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}
