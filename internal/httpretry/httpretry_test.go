package httpretry

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func fastPolicy() Policy {
	return Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// TestRetriesPlain503 is the baseline: an unmarked 503 proves the request
// was refused before effect, so the client resends until it succeeds.
func TestRetriesPlain503(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c := &Client{Policy: fastPolicy()}
	resp, err := c.Post(srv.URL, "application/json", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
}

// TestMaybeApplied503IsNotRetried: a 503 stamped with HeaderMaybeApplied
// says the request may already have taken effect (the router's primary died
// mid-write), so auto-resending a non-idempotent call could double-apply
// it. The response must come back to the caller after exactly one attempt.
func TestMaybeApplied503IsNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set(HeaderMaybeApplied, "1")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := &Client{Policy: fastPolicy()}
	resp, err := c.Post(srv.URL, "application/json", []byte(`{"deltas":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want the 503 handed back", resp.StatusCode)
	}
	if resp.Header.Get(HeaderMaybeApplied) == "" {
		t.Fatal("maybe-applied marker lost on the way back to the caller")
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1: an ambiguous refusal must never be auto-retried", calls.Load())
	}
}

// TestRetriesHonor429 covers the other retryable status.
func TestRetries429(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 2 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c := &Client{Policy: fastPolicy()}
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || calls.Load() != 2 {
		t.Fatalf("status %d after %d calls, want 200 after 2", resp.StatusCode, calls.Load())
	}
}
