// Package spantree implements the three spanning-tree algorithms the paper
// uses or compares against:
//
//   - SV: the Shiloach–Vishkin-derived spanning tree used by the original
//     Tarjan–Vishkin algorithm (step 1 of TV): record the edge responsible
//     for every successful graft. The result is an *unrooted* spanning
//     forest; TV-SMP roots it afterwards with the Euler-tour technique.
//   - WorkStealing: the Bader–Cong work-stealing graph-traversal spanning
//     tree [3,6] that computes a *rooted* spanning tree directly (parent per
//     vertex), merging the paper's Spanning-tree and Root-tree steps —
//     the key TV-opt optimization (§3.2).
//   - BFS: level-synchronous parallel breadth-first search producing a BFS
//     tree with levels, required by the TV-filter algorithm (§4) whose
//     correctness lemmas need T to be a BFS tree.
package spantree

import (
	"runtime"
	"sync/atomic"

	"bicc/internal/faults"
	"bicc/internal/graph"
	"bicc/internal/par"
)

// Fault-injection points, all with the computation's canceler: per
// graft/shortcut round in SV, per expansion batch in the work-stealing
// traversal, and per level in BFS.
var (
	siteSV    = faults.RegisterSite("spantree.sv", true)
	siteSteal = faults.RegisterSite("spantree.steal", true)
	siteBFS   = faults.RegisterSite("spantree.bfs.level", true)
)

// Forest is an unrooted spanning forest given as a set of edge indices into
// the originating edge list.
type Forest struct {
	N         int32
	TreeEdges []int32 // indices into the edge list; len = N - #components
	Labels    []int32 // connected-component label per vertex (the SV d array;
	// the label is the minimum vertex id of the component, so
	// Labels[v] == v identifies component representatives)
}

// RootedForest is a rooted spanning forest: Parent[v] is v's parent, or v
// itself when v is a root; ParentEdge[v] is the edge index connecting v to
// its parent, or -1 for roots. Level is the BFS depth when produced by BFS,
// nil otherwise.
type RootedForest struct {
	N          int32
	Parent     []int32
	ParentEdge []int32
	Roots      []int32
	Level      []int32
}

// IsRoot reports whether v is a root of the forest.
func (f *RootedForest) IsRoot(v int32) bool { return f.Parent[v] == v }

// SV computes an unrooted spanning forest with the graft-and-shortcut
// method: every successful graft merges two distinct trees, and the edge
// that caused it is a forest edge. Exactly n - #components grafts succeed
// over the whole run.
func SV(p int, n int32, edges []graph.Edge) *Forest {
	return SVC(nil, p, n, edges)
}

// SVC is SV with cooperative cancellation: the graft/shortcut convergence
// loop polls c between rounds and inside the edge scan. When c trips the
// returned forest is incomplete — callers must check c.Err() and discard it.
func SVC(c *par.Canceler, p int, n int32, edges []graph.Edge) *Forest {
	d := make([]int32, n)
	hook := make([]int32, n) // hook[r] = edge id whose graft removed root r
	par.For(p, int(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] = int32(i)
			hook[i] = -1
		}
	})
	var changed atomic.Bool
	for round := 0; ; round++ {
		if c.Err() != nil {
			return &Forest{N: n, Labels: d}
		}
		faults.Inject(c, siteSV, 0, round)
		changed.Store(false)
		par.ForDynamicC(c, p, len(edges), 0, func(lo, hi int) {
			localChanged := false
			for i := lo; i < hi; i++ {
				e := edges[i]
				du := atomic.LoadInt32(&d[e.U])
				dv := atomic.LoadInt32(&d[e.V])
				if du < dv {
					if atomic.CompareAndSwapInt32(&d[dv], dv, du) {
						atomic.StoreInt32(&hook[dv], int32(i))
						localChanged = true
					}
				} else if dv < du {
					if atomic.CompareAndSwapInt32(&d[du], du, dv) {
						atomic.StoreInt32(&hook[du], int32(i))
						localChanged = true
					}
				}
			}
			if localChanged {
				changed.Store(true)
			}
		})
		if !changed.Load() {
			break
		}
		par.ForC(c, p, int(n), func(lo, hi int) {
			for v := lo; v < hi; v++ {
				dv := atomic.LoadInt32(&d[v])
				for {
					ddv := atomic.LoadInt32(&d[dv])
					if ddv == dv {
						break
					}
					dv = ddv
				}
				atomic.StoreInt32(&d[v], dv)
			}
		})
	}
	tree := make([]int32, 0, n)
	for v := int32(0); v < n; v++ {
		if hook[v] != -1 {
			tree = append(tree, hook[v])
		}
	}
	return &Forest{N: n, TreeEdges: tree, Labels: d}
}

// WorkStealing computes a rooted spanning forest by parallel graph
// traversal: workers expand vertices from private deques, claiming children
// with a CAS on the parent array, and steal half a victim's deque when their
// own runs dry. Discovery order is nondeterministic, but any claimed parent
// relation is a valid spanning-forest edge.
func WorkStealing(p int, c *graph.CSR) *RootedForest {
	return WorkStealingC(nil, p, c)
}

// WorkStealingC is WorkStealing with cooperative cancellation: traversal
// workers poll cn between expansions. When cn trips the returned forest is
// incomplete — callers must check cn.Err() and discard it.
func WorkStealingC(cn *par.Canceler, p int, c *graph.CSR) *RootedForest {
	n := c.N
	p = par.Procs(p)
	parent := make([]int32, n)
	parentEdge := make([]int32, n)
	par.For(p, int(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			parent[i] = -1
			parentEdge[i] = -1
		}
	})
	var roots []int32
	for s := int32(0); s < n; s++ {
		if cn.Err() != nil {
			break
		}
		if atomic.LoadInt32(&parent[s]) != -1 {
			continue
		}
		parent[s] = s
		roots = append(roots, s)
		traverse(cn, p, c, parent, parentEdge, s)
	}
	return &RootedForest{N: n, Parent: parent, ParentEdge: parentEdge, Roots: roots}
}

// traverse runs the work-stealing expansion of one component from root s.
func traverse(cn *par.Canceler, p int, c *graph.CSR, parent, parentEdge []int32, s int32) {
	// Idle workers spin on the shared work counter waiting for stragglers, so
	// a panicking worker must trip a cancellation token or its siblings would
	// wait forever for work that will never be retired. Without a caller
	// token, use a private one and re-raise the contained panic afterwards.
	localToken := cn == nil
	if localToken {
		cn = &par.Canceler{}
	}
	deques := make([]*par.Deque, p)
	for i := range deques {
		deques[i] = par.NewDeque(256)
	}
	deques[0].Push(s)
	// work counts vertices discovered (pushed) but not yet fully expanded;
	// the traversal is complete when it reaches zero.
	var work atomic.Int64
	work.Store(1)
	pe := par.RunC(cn, p, func(w int) {
		my := deques[w]
		stealBuf := make([]int32, 0, 256)
		for iter := 0; ; iter++ {
			if cn.Err() != nil {
				return
			}
			faults.Inject(cn, siteSteal, w, iter)
			v, ok := my.Pop()
			if !ok {
				if work.Load() == 0 {
					return
				}
				// Try to steal from any victim.
				stole := false
				for off := 1; off < p; off++ {
					victim := deques[(w+off)%p]
					if got := victim.StealHalf(stealBuf); len(got) > 0 {
						// Last stolen item is processed immediately; the
						// rest go to our deque.
						v = got[len(got)-1]
						my.PushAll(got[:len(got)-1])
						stole = true
						break
					}
				}
				if !stole {
					runtime.Gosched()
					continue
				}
			}
			off, end := c.Off[v], c.Off[v+1]
			for i := off; i < end; i++ {
				u := c.Adj[i]
				if atomic.LoadInt32(&parent[u]) == -1 &&
					atomic.CompareAndSwapInt32(&parent[u], -1, v) {
					parentEdge[u] = c.EdgeID[i]
					work.Add(1)
					my.Push(u)
				}
			}
			work.Add(-1)
		}
	})
	if localToken && pe != nil {
		panic(pe)
	}
}

// BFS computes a rooted spanning forest by level-synchronous parallel
// breadth-first search over all components, with Level recording BFS depth.
// The tree rooted at each root is a genuine BFS tree: Level[child] =
// Level[parent] + 1, which is the property the TV-filter lemmas require.
func BFS(p int, c *graph.CSR) *RootedForest {
	return BFSC(nil, p, c)
}

// BFSC is BFS with cooperative cancellation, polled once per BFS level.
// When cn trips the returned forest is incomplete — callers must check
// cn.Err() and discard it.
func BFSC(cn *par.Canceler, p int, c *graph.CSR) *RootedForest {
	n := c.N
	p = par.Procs(p)
	parent := make([]int32, n)
	parentEdge := make([]int32, n)
	level := make([]int32, n)
	par.For(p, int(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			parent[i] = -1
			parentEdge[i] = -1
			level[i] = -1
		}
	})
	var roots []int32
	frontier := make([]int32, 0, n)
	nextBufs := make([][]int32, p)
	for s := int32(0); s < n; s++ {
		if parent[s] != -1 {
			continue
		}
		parent[s] = s
		level[s] = 0
		roots = append(roots, s)
		frontier = append(frontier[:0], s)
		depth := int32(0)
		for len(frontier) > 0 {
			if cn.Err() != nil {
				return &RootedForest{N: n, Parent: parent, ParentEdge: parentEdge, Roots: roots, Level: level}
			}
			faults.Inject(cn, siteBFS, 0, int(depth))
			depth++
			par.ForWorker(p, len(frontier), func(w, lo, hi int) {
				buf := nextBufs[w][:0]
				for i := lo; i < hi; i++ {
					v := frontier[i]
					off, end := c.Off[v], c.Off[v+1]
					for j := off; j < end; j++ {
						u := c.Adj[j]
						if atomic.LoadInt32(&parent[u]) == -1 &&
							atomic.CompareAndSwapInt32(&parent[u], -1, v) {
							parentEdge[u] = c.EdgeID[j]
							level[u] = depth
							buf = append(buf, u)
						}
					}
				}
				nextBufs[w] = buf
			})
			frontier = frontier[:0]
			for w := range nextBufs {
				frontier = append(frontier, nextBufs[w]...)
				nextBufs[w] = nextBufs[w][:0]
			}
		}
	}
	return &RootedForest{N: n, Parent: parent, ParentEdge: parentEdge, Roots: roots, Level: level}
}

// TreeEdgeMark returns a boolean mask over the m edges of the originating
// edge list marking the forest's tree edges.
func (f *RootedForest) TreeEdgeMark(p, m int) []bool {
	mark := make([]bool, m)
	par.For(p, int(f.N), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if e := f.ParentEdge[v]; e != -1 {
				mark[e] = true
			}
		}
	})
	return mark
}

// Mark returns a boolean mask over m edges marking this unrooted forest's
// tree edges.
func (f *Forest) Mark(p, m int) []bool {
	mark := make([]bool, m)
	par.For(p, len(f.TreeEdges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mark[f.TreeEdges[i]] = true
		}
	})
	return mark
}
