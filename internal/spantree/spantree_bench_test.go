package spantree

import (
	"runtime"
	"testing"

	"bicc/internal/gen"
	"bicc/internal/graph"
)

func BenchmarkSpanningTree(b *testing.B) {
	g := gen.RandomConnected(100_000, 400_000, 1)
	c := graph.ToCSR(1, g)
	p := runtime.GOMAXPROCS(0)
	b.Run("sv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SV(p, g.N, g.Edges)
		}
	})
	b.Run("work-stealing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			WorkStealing(p, c)
		}
	})
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BFS(p, c)
		}
	})
}

// High-diameter input: the regime where BFS pays d synchronization rounds
// (the paper's §4 pathological case).
func BenchmarkSpanningTreeHighDiameter(b *testing.B) {
	g := gen.Mesh(1000, 100)
	c := graph.ToCSR(1, g)
	p := runtime.GOMAXPROCS(0)
	b.Run("work-stealing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			WorkStealing(p, c)
		}
	})
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BFS(p, c)
		}
	})
}
