package spantree

import (
	"math/rand"
	"testing"

	"bicc/internal/conncomp"
	"bicc/internal/gen"
	"bicc/internal/graph"
)

// checkForestEdges verifies that the edge set is acyclic and has exactly
// n - #components edges (hence spans every component).
func checkForestEdges(t *testing.T, g *graph.EdgeList, treeEdges []int32) {
	t.Helper()
	comps := conncomp.Count(conncomp.UnionFind(g.N, g.Edges))
	if len(treeEdges) != int(g.N)-comps {
		t.Fatalf("forest has %d edges, want n-#comp = %d", len(treeEdges), int(g.N)-comps)
	}
	// Acyclic: union-find over just the tree edges never joins joined sets.
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(v int32) int32
	find = func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	for _, id := range treeEdges {
		e := g.Edges[id]
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			t.Fatalf("tree edge %d (%d,%d) creates a cycle", id, e.U, e.V)
		}
		parent[ru] = rv
	}
}

// checkRooted verifies parent-pointer consistency: every non-root reaches a
// root, ParentEdge matches Parent, and tree edges form a spanning forest.
func checkRooted(t *testing.T, g *graph.EdgeList, f *RootedForest) {
	t.Helper()
	var tree []int32
	for v := int32(0); v < f.N; v++ {
		if f.IsRoot(v) {
			if f.ParentEdge[v] != -1 {
				t.Fatalf("root %d has parent edge %d", v, f.ParentEdge[v])
			}
			continue
		}
		id := f.ParentEdge[v]
		if id < 0 || int(id) >= len(g.Edges) {
			t.Fatalf("vertex %d parent edge %d out of range", v, id)
		}
		e := g.Edges[id]
		p := f.Parent[v]
		if !((e.U == v && e.V == p) || (e.V == v && e.U == p)) {
			t.Fatalf("vertex %d: parent %d but edge %d = %v", v, p, id, e)
		}
		tree = append(tree, id)
	}
	checkForestEdges(t, g, tree)
	// Every vertex must reach its root in at most n steps.
	for v := int32(0); v < f.N; v++ {
		x := v
		for i := int32(0); i <= f.N; i++ {
			if f.Parent[x] == x {
				break
			}
			x = f.Parent[x]
			if i == f.N {
				t.Fatalf("vertex %d: parent chain does not terminate", v)
			}
		}
	}
}

func testGraphs() map[string]*graph.EdgeList {
	return map[string]*graph.EdgeList{
		"triangle":     gen.Cycle(3),
		"chain":        gen.Chain(50),
		"star":         gen.Star(20),
		"mesh":         gen.Mesh(8, 9),
		"random":       gen.RandomConnected(300, 900, 1),
		"dense":        gen.Dense(40, 0.7, 2),
		"disconnected": gen.Disconnected(gen.Cycle(5), gen.Chain(7), gen.Star(4)),
		"single":       {N: 1},
		"empty":        {N: 0},
		"isolated":     {N: 6},
		"blockchain":   gen.BlockChain(4, 4),
	}
}

func TestSVSpanningForest(t *testing.T) {
	for name, g := range testGraphs() {
		for _, p := range []int{1, 4} {
			f := SV(p, g.N, g.Edges)
			checkForestEdges(t, g, f.TreeEdges)
			_ = name
		}
	}
}

func TestWorkStealingRootedForest(t *testing.T) {
	for name, g := range testGraphs() {
		for _, p := range []int{1, 2, 4} {
			c := graph.ToCSR(p, g)
			f := WorkStealing(p, c)
			checkRooted(t, g, f)
			comps := conncomp.Count(conncomp.UnionFind(g.N, g.Edges))
			if len(f.Roots) != comps {
				t.Errorf("%s p=%d: %d roots, want %d", name, p, len(f.Roots), comps)
			}
		}
	}
}

func TestBFSRootedForest(t *testing.T) {
	for name, g := range testGraphs() {
		for _, p := range []int{1, 3} {
			c := graph.ToCSR(p, g)
			f := BFS(p, c)
			checkRooted(t, g, f)
			// BFS property: levels differ by exactly 1 along tree edges and
			// by at most 1 along every graph edge.
			for v := int32(0); v < f.N; v++ {
				if f.IsRoot(v) {
					if f.Level[v] != 0 {
						t.Fatalf("%s: root %d level=%d", name, v, f.Level[v])
					}
					continue
				}
				if f.Level[v] != f.Level[f.Parent[v]]+1 {
					t.Fatalf("%s: vertex %d level=%d parent level=%d", name, v, f.Level[v], f.Level[f.Parent[v]])
				}
			}
			for _, e := range g.Edges {
				d := f.Level[e.U] - f.Level[e.V]
				if d < -1 || d > 1 {
					t.Fatalf("%s p=%d: edge (%d,%d) spans levels %d..%d — not a BFS tree",
						name, p, e.U, e.V, f.Level[e.U], f.Level[e.V])
				}
			}
		}
	}
}

func TestBFSChainDepth(t *testing.T) {
	g := gen.Chain(100)
	f := BFS(2, graph.ToCSR(1, g))
	if f.Level[99] != 99 {
		t.Errorf("chain end level=%d, want 99", f.Level[99])
	}
}

func TestTreeEdgeMarks(t *testing.T) {
	g := gen.RandomConnected(100, 250, 5)
	c := graph.ToCSR(1, g)
	f := BFS(2, c)
	mark := f.TreeEdgeMark(2, len(g.Edges))
	count := 0
	for _, m := range mark {
		if m {
			count++
		}
	}
	if count != 99 {
		t.Errorf("marked %d tree edges, want 99", count)
	}
	uf := SV(2, g.N, g.Edges)
	umark := uf.Mark(2, len(g.Edges))
	ucount := 0
	for _, m := range umark {
		if m {
			ucount++
		}
	}
	if ucount != 99 {
		t.Errorf("SV marked %d tree edges, want 99", ucount)
	}
}

func TestRandomizedAllAlgorithmsSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(150)
		maxM := n * (n - 1) / 2
		m := rng.Intn(maxM + 1)
		g := gen.Random(n, m, int64(trial*31))
		c := graph.ToCSR(1, g)
		sv := SV(2, g.N, g.Edges)
		checkForestEdges(t, g, sv.TreeEdges)
		checkRooted(t, g, WorkStealing(3, c))
		checkRooted(t, g, BFS(3, c))
	}
}
