package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bicc"
	"bicc/internal/faults"
)

// --- circuit breaker -------------------------------------------------------

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, 10*time.Second)
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Record(true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after 2/3 faults", b.State())
	}
	b.Allow()
	b.Record(false) // a success resets the consecutive count
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(true)
	}
	if b.State() != BreakerOpen || b.Opens() != 1 {
		t.Fatalf("state %v, opens %d after 3 consecutive faults", b.State(), b.Opens())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}

	now = now.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not admit the half-open probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second request admitted while the probe is in flight")
	}
	b.Record(true) // probe faults: re-open
	if b.State() != BreakerOpen || b.Opens() != 2 {
		t.Fatalf("state %v, opens %d after failed probe", b.State(), b.Opens())
	}

	now = now.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("no second probe after another cooldown")
	}
	b.Record(false) // healthy probe closes
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after healthy probe", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused traffic")
	}
}

// --- middleware ------------------------------------------------------------

func TestPanicRecoveryMiddleware(t *testing.T) {
	panics := 0
	h := PanicRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			panic("handler bug")
		}
		w.WriteHeader(http.StatusOK)
	}), func() { panics++ })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", rec.Code)
	}
	rid := rec.Header().Get("X-Request-Id")
	if rid == "" {
		t.Error("no X-Request-Id on panicking request")
	}
	if !strings.Contains(rec.Body.String(), rid) {
		t.Errorf("500 body %q does not echo the request id %q", rec.Body.String(), rid)
	}
	if panics != 1 {
		t.Errorf("onPanic called %d times, want 1", panics)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))
	if rec.Code != http.StatusOK || panics != 1 {
		t.Errorf("clean request: status %d, panics %d", rec.Code, panics)
	}
}

func TestPanicRecoveryHonorsAbortHandler(t *testing.T) {
	h := PanicRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}), nil)
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Error("ErrAbortHandler was swallowed instead of re-raised")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}

func TestHandlerPanicCountedOnStatsz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// No production route panics on demand, so drive one panic through a
	// handler mounted behind the same PanicRecovery counter the server's
	// Handler installs.
	ph := PanicRecovery(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("bug")
	}), func() { s.stats.HandlerPanics.Add(1) })
	ph.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.HandlerPanics != 1 {
		t.Errorf("HandlerPanics = %d, want 1", snap.HandlerPanics)
	}
}

func TestDrainGate(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	up := uploadGraph(t, ts, testGraph(t), "")

	s.BeginDrain()
	resp, body := postBCC(t, ts, bccRequest{Graph: up.Fingerprint})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 has no Retry-After")
	}
	for _, path := range []string{"/healthz", "/statsz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s answered %d while draining, want 200", path, r.StatusCode)
		}
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "draining" {
		t.Errorf("healthz status %q while draining", health.Status)
	}
}

func TestRetryAfterJitterBounds(t *testing.T) {
	s := New(Config{RetryAfter: 4 * time.Second})
	for i := 0; i < 200; i++ {
		v := s.retryAfterSeconds()
		n := 0
		fmt.Sscanf(v, "%d", &n)
		// Uniform in [base/2, 3*base/2] rounded up: 2..6 seconds.
		if n < 2 || n > 6 {
			t.Fatalf("Retry-After %q outside jitter bounds [2,6]", v)
		}
	}
}

// --- fault isolation end to end --------------------------------------------

func TestDegradedResultsNeverCached(t *testing.T) {
	var calls atomic.Int64
	s, ts := newTestServer(t, Config{
		Compute: func(ctx context.Context, g *bicc.Graph, opt *bicc.Options) (*bicc.Result, error) {
			calls.Add(1)
			res, err := bicc.BiconnectedComponentsCtx(ctx, g, &bicc.Options{Algorithm: bicc.Sequential})
			if err != nil {
				return nil, err
			}
			res.Degraded = true
			res.DegradedCause = errors.New("synthetic fault")
			return res, nil
		},
	})
	up := uploadGraph(t, ts, testGraph(t), "")
	for i := 1; i <= 2; i++ {
		resp, body := postBCC(t, ts, bccRequest{Graph: up.Fingerprint})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, resp.StatusCode, body)
		}
		var out bccResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if !out.Degraded || out.DegradedCause == "" {
			t.Fatalf("query %d: response not marked degraded: %s", i, body)
		}
		if out.Cached {
			t.Fatalf("query %d: degraded result served from cache", i)
		}
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("compute ran %d times, want 2 (degraded results must not be cached)", got)
	}
	if s.cache.Len() != 0 {
		t.Errorf("cache holds %d entries after degraded-only traffic", s.cache.Len())
	}
	if got := s.stats.Fallbacks.Load(); got != 2 {
		t.Errorf("Fallbacks = %d, want 2", got)
	}
}

func TestEnginePanicFallsBackAndCounts(t *testing.T) {
	defer faults.Deactivate()
	s, ts := newTestServer(t, Config{})
	up := uploadGraph(t, ts, testGraph(t), "")

	faults.Activate(&faults.Plan{Seed: 1,
		Rules: []*faults.Rule{faults.NewRule(faults.KindPanic, "core.pipeline")}})
	resp, body := postBCC(t, ts, bccRequest{Graph: up.Fingerprint, Algorithm: "tv-opt", Procs: 4})
	faults.Deactivate()

	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out bccResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatalf("response not degraded despite persistent engine panic: %s", body)
	}
	if out.Algorithm != "sequential" {
		t.Errorf("degraded response reports algorithm %q", out.Algorithm)
	}
	if out.NumComponents != 3 {
		t.Errorf("NumComponents = %d, want 3", out.NumComponents)
	}
	if got := s.stats.Fallbacks.Load(); got != 1 {
		t.Errorf("Fallbacks = %d, want 1", got)
	}
	if got := s.stats.EnginePanics.Load(); got < 1 {
		t.Errorf("EnginePanics = %d, want >= 1", got)
	}
}

func TestBreakerOpensRoutesAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	s, ts := newTestServer(t, Config{
		BreakerThreshold: 2,
		NoFallback:       true,
		Compute: func(ctx context.Context, g *bicc.Graph, opt *bicc.Options) (*bicc.Result, error) {
			if opt.Algorithm != bicc.Sequential && !healthy.Load() {
				return nil, errors.New("parallel engine keeps dying")
			}
			return bicc.BiconnectedComponentsCtx(ctx, g, &bicc.Options{Algorithm: bicc.Sequential})
		},
	})
	now := time.Unix(0, 0)
	br := s.breakers[bicc.TVOpt.String()]
	br.now = func() time.Time { return now }
	up := uploadGraph(t, ts, testGraph(t), "")
	q := bccRequest{Graph: up.Fingerprint, Algorithm: "tv-opt"}

	// Two faults open the breaker.
	for i := 0; i < 2; i++ {
		resp, body := postBCC(t, ts, q)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("faulting query %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if br.State() != BreakerOpen {
		t.Fatalf("breaker %v after %d faults", br.State(), 2)
	}

	// While open, queries are routed to sequential and answered degraded.
	resp, body := postBCC(t, ts, q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed query: status %d: %s", resp.StatusCode, body)
	}
	var out bccResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || !strings.Contains(out.DegradedCause, "circuit breaker open") {
		t.Fatalf("routed response not marked degraded by the breaker: %s", body)
	}
	if got := s.stats.BreakerRouted.Load(); got != 1 {
		t.Errorf("BreakerRouted = %d, want 1", got)
	}

	// healthz reports degraded while the breaker is open.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string            `json:"status"`
		Breakers map[string]string `json:"breakers"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if health.Status != "degraded" || health.Breakers["tv-opt"] != "open" {
		t.Errorf("healthz = %+v while breaker open", health)
	}

	// After the cooldown a healthy probe closes the breaker again.
	healthy.Store(true)
	now = now.Add(16 * time.Second)
	resp, body = postBCC(t, ts, q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe query: status %d: %s", resp.StatusCode, body)
	}
	out = bccResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Degraded {
		t.Errorf("probe response degraded: %s", body)
	}
	if br.State() != BreakerClosed {
		t.Errorf("breaker %v after healthy probe", br.State())
	}
	snap := s.Snapshot()
	if snap.Breakers["tv-opt"].Opens != 1 {
		t.Errorf("snapshot opens = %d, want 1", snap.Breakers["tv-opt"].Opens)
	}
}

// TestFaultHammer drives concurrent queries at a race-enabled server while
// an intermittent panic plan is active: the daemon must never crash, every
// response must be well-formed, no degraded result may be served from the
// cache, and after the plan is lifted clean queries must come back healthy.
func TestFaultHammer(t *testing.T) {
	defer faults.Deactivate()
	_, ts := newTestServer(t, Config{Workers: 4, AttemptTimeout: 2 * time.Second})
	up := uploadGraph(t, ts, testGraph(t), "")

	rule := faults.NewRule(faults.KindPanic, "core.pipeline")
	rule.Every = 3 // deterministic 1-in-3 of pipeline checkpoints
	faults.Activate(&faults.Plan{Seed: 99, Rules: []*faults.Rule{rule}})

	algos := []string{"tv-smp", "tv-opt", "tv-filter", "fast-bcc", "auto"}
	var wg sync.WaitGroup
	errs := make(chan string, 256)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				req := bccRequest{
					Graph:     up.Fingerprint,
					Algorithm: algos[(w+i)%len(algos)],
					Procs:     1 + (w+i)%4,
				}
				resp, body := postBCC(t, ts, req)
				switch resp.StatusCode {
				case http.StatusOK:
					var out bccResponse
					if err := json.Unmarshal(body, &out); err != nil {
						errs <- fmt.Sprintf("bad body: %v", err)
						continue
					}
					if out.NumComponents != 3 {
						errs <- fmt.Sprintf("wrong answer under faults: %s", body)
					}
					if out.Cached && out.Degraded {
						errs <- fmt.Sprintf("degraded result served from cache: %s", body)
					}
				case http.StatusInternalServerError, http.StatusServiceUnavailable, http.StatusTooManyRequests:
					// Contained failure: acceptable under injected faults.
				default:
					errs <- fmt.Sprintf("unexpected status %d: %s", resp.StatusCode, body)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	faults.Deactivate()
	resp, body := postBCC(t, ts, bccRequest{Graph: up.Fingerprint, Algorithm: "sequential"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault query: status %d: %s", resp.StatusCode, body)
	}
	var out bccResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Degraded || out.NumComponents != 3 {
		t.Errorf("post-fault query unhealthy: %s", body)
	}
}
