package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"bicc"
	"bicc/internal/gen"
	"bicc/internal/graph"
	"bicc/internal/incr"
)

// postMutate sends one delta batch to ts and returns the decoded response
// plus the raw status code.
func postMutate(t *testing.T, ts *httptest.Server, fp string, deltas []mutationDelta) (mutateResponse, int, []byte) {
	t.Helper()
	body, err := json.Marshal(mutateRequest{Deltas: deltas})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/graphs/"+fp+"/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out mutateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("decoding mutate response: %v: %s", err, data)
		}
	}
	return out, resp.StatusCode, data
}

// mustMutate is postMutate that requires 200.
func mustMutate(t *testing.T, ts *httptest.Server, fp string, deltas []mutationDelta) mutateResponse {
	t.Helper()
	out, code, data := postMutate(t, ts, fp, deltas)
	if code != http.StatusOK {
		t.Fatalf("mutate: status %d: %s", code, data)
	}
	return out
}

// normalizeBCC strips the per-request fields (timings, identity, serving
// path) from a /v1/bcc response so answers from a mutated graph and from a
// from-scratch upload of the same final edge list can be compared
// byte-for-byte. json.Marshal of a map emits sorted keys, so equal maps
// render equal bytes.
func normalizeBCC(t *testing.T, data []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("normalize: %v: %s", err, data)
	}
	for _, k := range []string{"elapsed_ns", "phases", "cached", "incr", "graph", "trace"} {
		delete(m, k)
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// queryAll asks ts for the full view set of fp under algo, requiring 200.
func queryAll(t *testing.T, ts *httptest.Server, fp, algo string) []byte {
	t.Helper()
	resp, data := postBCC(t, ts, bccRequest{
		Graph:     fp,
		Algorithm: algo,
		Include:   []string{"components", "articulation", "bridges", "blockcut"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bcc(%s, %s): status %d: %s", fp, algo, resp.StatusCode, data)
	}
	return data
}

// shadowState mirrors the server-side mutations client-side so the test can
// generate structurally interesting batches (absorbable vs structural) and
// knows the exact final edge list to upload from scratch.
func shadowState(t *testing.T, el *graph.EdgeList) *incr.State {
	t.Helper()
	g, err := bicc.NewGraph(int(el.N), el.Edges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: bicc.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	st, err := incr.NewState(g, res)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// sharedBlockOf reports whether u and v currently share a block, via the
// exported routing index.
func sharedBlockOf(st *incr.State, u, v int32) bool {
	a, b := st.BlocksOfVertex(u), st.BlocksOfVertex(v)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// randomMutationBatch mirrors the incr package's differential mix over the
// HTTP wire shape: absorbable inserts, arbitrary (possibly vertex-growing)
// inserts, and deletes of surviving edges.
func randomMutationBatch(rng *rand.Rand, st *incr.State, nd int) []mutationDelta {
	present := make(map[uint64]bool, st.NumEdges())
	for _, e := range st.Edges() {
		present[graph.CanonKey(e.U, e.V)] = true
	}
	edges := append([]graph.Edge(nil), st.Edges()...)
	var out []mutationDelta
	for len(out) < nd {
		switch rng.Intn(4) {
		case 0: // absorbable: same-block pair without an edge
			if len(edges) == 0 {
				continue
			}
			e := edges[rng.Intn(len(edges))]
			f := edges[rng.Intn(len(edges))]
			for _, u := range [2]int32{e.U, e.V} {
				for _, v := range [2]int32{f.U, f.V} {
					if u != v && sharedBlockOf(st, u, v) && !present[graph.CanonKey(u, v)] {
						present[graph.CanonKey(u, v)] = true
						out = append(out, mutationDelta{Op: "insert", U: u, V: v})
						goto next
					}
				}
			}
		case 1: // arbitrary insert, sometimes to a brand-new vertex
			u := int32(rng.Intn(st.N()))
			v := int32(rng.Intn(st.N() + 3))
			if u == v || present[graph.CanonKey(u, v)] {
				continue
			}
			present[graph.CanonKey(u, v)] = true
			out = append(out, mutationDelta{Op: "insert", U: u, V: v})
		default: // delete a surviving edge
			if len(edges) == 0 {
				continue
			}
			i := rng.Intn(len(edges))
			e := edges[i]
			if !present[graph.CanonKey(e.U, e.V)] {
				continue
			}
			present[graph.CanonKey(e.U, e.V)] = false
			edges[i] = edges[len(edges)-1]
			edges = edges[:len(edges)-1]
			out = append(out, mutationDelta{Op: "delete", U: e.U, V: e.V})
		}
	next:
	}
	return out
}

// applyShadow advances the client-side mirror with the exact batch the
// server acknowledged.
func applyShadow(t *testing.T, st *incr.State, batch []mutationDelta) {
	t.Helper()
	deltas := make([]incr.Delta, len(batch))
	for i, d := range batch {
		op, err := incr.ParseOp(d.Op)
		if err != nil {
			t.Fatal(err)
		}
		deltas[i] = incr.Delta{Op: op, U: d.U, V: d.V}
	}
	run := func(ctx context.Context, g *bicc.Graph) (*bicc.Result, error) {
		return bicc.BiconnectedComponentsCtx(ctx, g, &bicc.Options{Algorithm: bicc.Sequential})
	}
	if _, err := st.Apply(context.Background(), deltas, incr.Config{}, run); err != nil {
		t.Fatalf("shadow apply: %v", err)
	}
}

// TestMutationEndpointDifferential is the service-level acceptance harness:
// for three graph families, a randomized mutation sequence streamed through
// POST /v1/graphs/{fp}/edges must leave the mutated graph answering every
// query — across all four engines — byte-identically to a second server
// that uploaded the final edge list from scratch.
func TestMutationEndpointDifferential(t *testing.T) {
	families := []struct {
		name string
		el   *graph.EdgeList
	}{
		{"random", gen.RandomConnected(120, 340, 42)},
		{"torus", gen.Torus(8, 10)},
		{"star-chain", gen.Caterpillar(24, 4)},
	}
	algos := []string{"sequential", "tv-smp", "tv-opt", "tv-filter", "fast-bcc"}

	sm, tsm := newTestServer(t, Config{}) // mutated server
	_, tss := newTestServer(t, Config{})  // scratch server

	for fi, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(fi)*101 + 7))
			st := shadowState(t, fam.el)
			g0, err := bicc.NewGraph(st.N(), st.Edges())
			if err != nil {
				t.Fatal(err)
			}
			up := uploadGraph(t, tsm, g0, "name="+fam.name)
			gen0 := up.Generation
			if gen0 != 0 {
				t.Fatalf("fresh upload at generation %d", gen0)
			}
			for round := 0; round < 6; round++ {
				batch := randomMutationBatch(rng, st, 1+rng.Intn(5))
				out := mustMutate(t, tsm, up.Fingerprint, batch)
				if out.Generation != uint64(round+1) {
					t.Fatalf("round %d: generation %d", round, out.Generation)
				}
				applyShadow(t, st, batch)
				final, err := bicc.NewGraph(st.N(), st.Edges())
				if err != nil {
					t.Fatal(err)
				}
				if want := Fingerprint(final); out.ContentFP != want {
					t.Fatalf("round %d: content fp %s, shadow %s", round, out.ContentFP, want)
				}
				if out.Vertices != final.NumVertices() || out.Edges != final.NumEdges() {
					t.Fatalf("round %d: size %d/%d, shadow %d/%d",
						round, out.Vertices, out.Edges, final.NumVertices(), final.NumEdges())
				}
				ups := uploadGraph(t, tss, final, "")
				for _, algo := range algos {
					got := normalizeBCC(t, queryAll(t, tsm, up.Fingerprint, algo))
					want := normalizeBCC(t, queryAll(t, tss, ups.Fingerprint, algo))
					if got != want {
						t.Fatalf("round %d algo %s:\nmutated: %s\nscratch: %s", round, algo, got, want)
					}
				}
			}
		})
	}

	// The acceptance bar: the randomized mix must have exercised both the
	// absorb and the rebuild paths, and the maintained state must have
	// served queries.
	snap := sm.Snapshot()
	if snap.Incr == nil {
		t.Fatal("no incr section in /statsz after mutations")
	}
	if snap.Incr.Absorbs == 0 || snap.Incr.Rebuilds == 0 {
		t.Fatalf("mutation mix did not exercise both absorb and rebuild: %+v", snap.Incr)
	}
	if snap.Incr.Served == 0 {
		t.Fatalf("no queries served from maintained state: %+v", snap.Incr)
	}
	if snap.Incr.Deltas == 0 || snap.Incr.Batches == 0 || snap.Incr.Invalidated == 0 {
		t.Fatalf("incr counters incomplete: %+v", snap.Incr)
	}
}

// TestMutationValidationAndIdentity covers the client-error surface: bad
// ops, empty batches, duplicate inserts, deletes of absent edges, and
// mutations against unknown graphs — none of which may advance the
// generation.
func TestMutationValidationAndIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadGraph(t, ts, testGraph(t), "")

	if _, code, _ := postMutate(t, ts, "nope", []mutationDelta{{Op: "insert", U: 0, V: 2}}); code != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d", code)
	}
	cases := []struct {
		name  string
		batch []mutationDelta
	}{
		{"empty", nil},
		{"bad op", []mutationDelta{{Op: "upsert", U: 0, V: 2}}},
		{"self loop", []mutationDelta{{Op: "insert", U: 1, V: 1}}},
		{"present insert", []mutationDelta{{Op: "insert", U: 0, V: 1}}},
		{"absent delete", []mutationDelta{{Op: "delete", U: 0, V: 6}}},
		{"insert then delete", []mutationDelta{{Op: "insert", U: 0, V: 4}, {Op: "delete", U: 0, V: 4}}},
	}
	for _, tc := range cases {
		if _, code, data := postMutate(t, ts, up.Fingerprint, tc.batch); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", tc.name, code, data)
		}
	}
	info, ok := getGraphInfo(t, ts, up.Fingerprint)
	if !ok || info.Generation != 0 {
		t.Fatalf("rejected batches advanced the graph: %+v ok=%v", info, ok)
	}

	// The singular route alias accepts the same request.
	body, _ := json.Marshal(mutateRequest{Deltas: []mutationDelta{{Op: "insert", U: 0, V: 4}}})
	resp, err := http.Post(ts.URL+"/v1/graph/"+up.Fingerprint+"/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("singular alias: status %d", resp.StatusCode)
	}
}

func getGraphInfo(t *testing.T, ts *httptest.Server, fp string) (GraphInfo, bool) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/graphs/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return GraphInfo{}, false
	}
	var info GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info, true
}

// TestMutationInvalidatesCachesAcrossGenerations proves generation-aware
// invalidation end to end: a cached pre-mutation answer must never be
// served for the post-mutation graph, and re-querying the same generation
// still hits the cache.
func TestMutationInvalidatesCachesAcrossGenerations(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadGraph(t, ts, testGraph(t), "")

	before := queryAll(t, ts, up.Fingerprint, "sequential")
	var b0 bccResponse
	if err := json.Unmarshal(before, &b0); err != nil {
		t.Fatal(err)
	}
	// Deleting the bridge 2-3 splits the graph: component count drops to 2.
	out := mustMutate(t, ts, up.Fingerprint, []mutationDelta{{Op: "delete", U: 2, V: 3}})
	if out.NumComponents != 2 {
		t.Fatalf("after bridge delete: %d components, want 2", out.NumComponents)
	}
	after := queryAll(t, ts, up.Fingerprint, "sequential")
	var a0 bccResponse
	if err := json.Unmarshal(after, &a0); err != nil {
		t.Fatal(err)
	}
	if a0.Cached {
		t.Fatal("post-mutation query served from pre-mutation cache")
	}
	if a0.NumComponents != 2 || b0.NumComponents != 3 {
		t.Fatalf("components before/after = %d/%d, want 3/2", b0.NumComponents, a0.NumComponents)
	}
	if !a0.Incr {
		t.Fatal("post-mutation query not served from maintained state")
	}
	// Same generation again: cache hit.
	var a1 bccResponse
	if err := json.Unmarshal(queryAll(t, ts, up.Fingerprint, "sequential"), &a1); err != nil {
		t.Fatal(err)
	}
	if !a1.Cached {
		t.Fatal("second post-mutation query missed the cache")
	}
}

// TestDeleteThenReuploadStartsClean is the stale-generation-leak test: a
// graph mutated to generation N, deleted, and re-uploaded under the same
// stable id must restart at generation 0 with no state, cached answer, or
// shard set from the previous incarnation leaking through — even when the
// new incarnation reaches the same generation numbers again.
func TestDeleteThenReuploadStartsClean(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	g := testGraph(t)
	up := uploadGraph(t, ts, g, "")

	// First incarnation: mutate to gen 1 (delete the bridge), cache a query.
	mustMutate(t, ts, up.Fingerprint, []mutationDelta{{Op: "delete", U: 2, V: 3}})
	var inc1 bccResponse
	if err := json.Unmarshal(queryAll(t, ts, up.Fingerprint, "sequential"), &inc1); err != nil {
		t.Fatal(err)
	}
	if inc1.NumComponents != 2 {
		t.Fatalf("first incarnation gen 1: %d components, want 2", inc1.NumComponents)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/"+up.Fingerprint, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %v %v", resp, err)
	}
	resp.Body.Close()

	// Second incarnation: same content, so the same stable id.
	up2 := uploadGraph(t, ts, g, "")
	if up2.Fingerprint != up.Fingerprint {
		t.Fatalf("re-upload changed the id: %s vs %s", up2.Fingerprint, up.Fingerprint)
	}
	info, ok := getGraphInfo(t, ts, up.Fingerprint)
	if !ok || info.Generation != 0 || info.ContentFP != "" {
		t.Fatalf("re-uploaded graph not at a clean generation 0: %+v", info)
	}
	var fresh bccResponse
	if err := json.Unmarshal(queryAll(t, ts, up.Fingerprint, "sequential"), &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.NumComponents != 3 || fresh.Cached || fresh.Incr {
		t.Fatalf("re-uploaded graph served stale state: %+v", fresh)
	}

	// Reach generation 1 again with a DIFFERENT mutation: the answer must
	// reflect this incarnation's content, not the first one's cached gen-1
	// result.
	out := mustMutate(t, ts, up.Fingerprint, []mutationDelta{{Op: "insert", U: 0, V: 3}})
	if out.Generation != 1 {
		t.Fatalf("second incarnation at generation %d, want 1", out.Generation)
	}
	var inc2 bccResponse
	if err := json.Unmarshal(queryAll(t, ts, up.Fingerprint, "sequential"), &inc2); err != nil {
		t.Fatal(err)
	}
	// Inserting 0-3 closes the cycle 0-2-3: the triangle, the bridge, and
	// the new edge merge into block {0,1,2,3}, leaving 3 as the only cut
	// vertex. The first incarnation's gen 1 (bridge deleted) had none — so
	// a leaked first-incarnation answer is detectable here.
	if inc1.NumArticulation != 0 {
		t.Fatalf("first incarnation gen 1: %d articulation points, want 0", inc1.NumArticulation)
	}
	if inc2.NumArticulation != 1 || inc2.NumComponents != 2 {
		t.Fatalf("second incarnation gen 1 served stale state: %+v", inc2)
	}
}

// TestMutationThresholdDegradesToFull pins the -incr-threshold wiring: with
// a microscopic threshold every structural batch reports mode "full" and
// answers still match a scratch upload.
func TestMutationThresholdDegradesToFull(t *testing.T) {
	_, tsm := newTestServer(t, Config{IncrThreshold: 1e-9})
	_, tss := newTestServer(t, Config{})
	st := shadowState(t, gen.RandomConnected(60, 150, 5))
	g0, err := bicc.NewGraph(st.N(), st.Edges())
	if err != nil {
		t.Fatal(err)
	}
	up := uploadGraph(t, tsm, g0, "")
	batch := []mutationDelta{{Op: "delete", U: st.Edges()[0].U, V: st.Edges()[0].V}}
	out := mustMutate(t, tsm, up.Fingerprint, batch)
	if out.Mode != "full" {
		t.Fatalf("threshold 1e-9 applied in mode %q, want full", out.Mode)
	}
	applyShadow(t, st, batch)
	final, err := bicc.NewGraph(st.N(), st.Edges())
	if err != nil {
		t.Fatal(err)
	}
	ups := uploadGraph(t, tss, final, "")
	for _, algo := range []string{"sequential", "tv-filter"} {
		got := normalizeBCC(t, queryAll(t, tsm, up.Fingerprint, algo))
		want := normalizeBCC(t, queryAll(t, tss, ups.Fingerprint, algo))
		if got != want {
			t.Fatalf("full-mode answers diverge for %s:\n%s\n%s", algo, got, want)
		}
	}
}

// TestMutationsSurviveRestart closes the durability loop: delta records
// appended to the WAL must replay at boot into the mutated graph — correct
// generation, content fingerprint, and query answers.
func TestMutationsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, Config{}, DurabilityConfig{Dir: dir})
	ts := newHTTPServer(t, s)
	up := uploadGraph(t, ts, testGraph(t), "name=mut")
	mustMutate(t, ts, up.Fingerprint, []mutationDelta{{Op: "delete", U: 2, V: 3}})
	out := mustMutate(t, ts, up.Fingerprint, []mutationDelta{{Op: "insert", U: 0, V: 3}, {Op: "insert", U: 2, V: 7}})
	if out.Generation != 2 {
		t.Fatalf("generation %d, want 2", out.Generation)
	}
	want := normalizeBCC(t, queryAll(t, ts, up.Fingerprint, "sequential"))
	if err := s.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	s2, rep := durableServer(t, Config{}, DurabilityConfig{Dir: dir})
	if rep.Graphs != 1 || rep.DroppedGraphs != 0 || rep.DroppedRecords != 0 {
		t.Fatalf("recovery: %+v", rep)
	}
	ts2 := newHTTPServer(t, s2)
	info, ok := getGraphInfo(t, ts2, up.Fingerprint)
	if !ok || info.Generation != 2 || info.ContentFP != out.ContentFP {
		t.Fatalf("recovered graph info: %+v (want gen 2, cfp %s)", info, out.ContentFP)
	}
	got := normalizeBCC(t, queryAll(t, ts2, up.Fingerprint, "sequential"))
	if got != want {
		t.Fatalf("recovered answers diverge:\nbefore: %s\nafter:  %s", want, got)
	}

	// Mutating the recovered graph keeps working and keeps counting.
	out3 := mustMutate(t, ts2, up.Fingerprint, []mutationDelta{{Op: "insert", U: 1, V: 4}})
	if out3.Generation != 3 {
		t.Fatalf("post-recovery mutation at generation %d, want 3", out3.Generation)
	}
}

// TestMutatedGraphShardQueries checks the shard layer under mutation: sets
// are keyed by generation, a mutation invalidates them, and rebuilt sets
// answer from the maintained labels.
func TestMutatedGraphShardQueries(t *testing.T) {
	s := New(Config{})
	if err := s.EnableSharding(ShardingConfig{}); err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)
	up := uploadGraph(t, ts, testGraph(t), "")

	getBlocks := func(v int) vertexBlocksResponse {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/v1/vertex/%d/blocks?graph=%s", ts.URL, v, up.Fingerprint))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("blocks: status %d: %s", resp.StatusCode, body)
		}
		var out vertexBlocksResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if b := getBlocks(2); !b.IsCut {
		t.Fatalf("vertex 2 should be a cut vertex before mutation: %+v", b)
	}
	// Inserting 0-3 merges the triangle and the bridge into block {0,1,2,3},
	// leaving 3 as the only cut vertex — 2 stops being one.
	mustMutate(t, ts, up.Fingerprint, []mutationDelta{{Op: "insert", U: 0, V: 3}})
	if b := getBlocks(2); b.IsCut {
		t.Fatalf("vertex 2 still reported as cut after the merge: %+v", b)
	}
	if snap := s.Snapshot(); snap.Incr == nil || snap.Incr.Served == 0 {
		t.Fatalf("shard rebuild did not use maintained labels: %+v", snap.Incr)
	}
}
