package service

import (
	"fmt"
	"time"

	"bicc"
	"bicc/internal/par"
	"bicc/internal/plan"
)

// Plan modes accepted by Config.PlanMode and the bccd -plan flag.
const (
	// PlanOff keeps the static §4 rule for Auto queries (the default, and
	// the pre-planner behavior byte for byte).
	PlanOff = "off"
	// PlanAdaptive plans engine and parallelism per request from graph
	// features, blending the calibrated prior with observed latencies, and
	// explores the runner-up candidate on a deterministic cadence.
	PlanAdaptive = "adaptive"
	// PlanFrozen plans from the prior alone — deterministic decisions for
	// differential harnesses and golden tests.
	PlanFrozen = "frozen"
)

// ParsePlanMode validates a -plan flag value, normalizing "" to off.
func ParsePlanMode(s string) (string, error) {
	switch s {
	case "", PlanOff:
		return PlanOff, nil
	case PlanAdaptive, PlanFrozen:
		return s, nil
	}
	return "", fmt.Errorf("unknown plan mode %q (valid: %s, %s, %s)", s, PlanOff, PlanAdaptive, PlanFrozen)
}

// planState is the server's adaptive-planner subsystem, nil when PlanMode is
// off — the same zero-cost-off discipline as durability and sharding.
type planState struct {
	planner *plan.Planner
	mode    string
}

// newPlanState builds the per-server planner: candidates are filtered by the
// PR 2 circuit breakers (an open breaker removes its engine from the slate —
// the non-mutating State check, so planning never consumes half-open probe
// slots), and cold feature buckets are seeded from the per-algorithm request
// histograms the server already records.
func (s *Server) newPlanState(mode string) *planState {
	cfg := plan.Config{
		Frozen:   mode == PlanFrozen,
		Registry: s.metrics,
		Allow: func(engine string) bool {
			b := s.breakers[engine]
			return b == nil || b.State() != BreakerOpen
		},
		History: func(engine string) (time.Duration, int64) {
			h := s.stats.perAlgorithm[engine]
			if h == nil {
				return 0, 0
			}
			hs := h.Snapshot()
			return time.Duration(hs.MeanN), hs.Count
		},
	}
	return &planState{planner: plan.New(cfg), mode: mode}
}

// planExplain is the ?explain=1 response section: the planner's inputs and
// the decision, echoed so callers can audit why their query ran where it
// did. Engine and Procs always carry what was dispatched, whatever the mode.
type planExplain struct {
	Mode     string         `json:"mode"`
	Engine   string         `json:"engine"`
	Procs    int            `json:"procs"`
	Features *plan.Features `json:"features,omitempty"`
	Decision *plan.Decision `json:"decision,omitempty"`
}

// planDecide resolves an Auto request through the planner: procs > 0 pins
// the parallelism degree, 0 lets the planner choose it. explain asks for the
// scored candidate slate.
func (ps *planState) planDecide(g *bicc.Graph, procs int, explain bool) (bicc.Algorithm, int, plan.Features, plan.Decision) {
	f := bicc.FeaturesFor(ps.planner, g)
	d := ps.planner.Decide(f, procs, explain)
	a, err := bicc.ParseAlgorithm(d.Engine)
	if err != nil || a == bicc.Auto {
		// Unreachable with the current engine set; degrade to the static
		// rule rather than dispatch something unparseable.
		return bicc.ResolveAlgorithm(g, bicc.Auto, procs), par.Procs(procs), f, d
	}
	return a, d.Procs, f, d
}

// planResolve is planDecide for internal callers that need no explanation:
// the incremental degrade-to-full path and shard builds, which pass Auto
// down to runEngine.
func (ps *planState) planResolve(g *bicc.Graph, procs int) (bicc.Algorithm, int) {
	a, p, _, _ := ps.planDecide(g, procs, false)
	return a, p
}

// planObserve feeds one clean engine run into the online model. Callers must
// filter out degraded and breaker-routed runs first.
func (ps *planState) planObserve(g *bicc.Graph, engine string, procs int, elapsed time.Duration) {
	ps.planner.Observe(bicc.FeaturesFor(ps.planner, g), engine, par.Procs(procs), elapsed)
}
