package service

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull is returned by Admission.Acquire when the waiting queue is at
// capacity; HTTP handlers translate it into 429 + Retry-After.
var ErrQueueFull = errors.New("service: admission queue full")

// Admission is the service's engine-protection valve: at most `workers`
// computations run concurrently, at most `queue` more may wait for a slot,
// and everything beyond that is rejected immediately. The engine itself
// parallelizes internally, so workers is typically a small number sized off
// GOMAXPROCS — admitting more computations than cores just makes all of
// them slower and risks memory exhaustion on paper-scale graphs.
type Admission struct {
	slots    chan struct{} // capacity = workers
	waiting  atomic.Int64
	inflight atomic.Int64
	queueCap int64
}

// NewAdmission returns a valve with the given concurrency and queue bounds.
// workers is forced to at least 1; queue may be 0, which rejects whenever
// every worker is busy.
func NewAdmission(workers, queue int) *Admission {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Admission{
		slots:    make(chan struct{}, workers),
		queueCap: int64(queue),
	}
}

// Acquire claims a computation slot, waiting in the bounded queue if all
// slots are busy. It returns ErrQueueFull when the queue is at capacity and
// ctx.Err() when the caller gives up first. The returned release function
// must be called exactly once when the computation finishes.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot means no queueing at all.
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return a.releaseFn(), nil
	default:
	}
	// Slow path: enter the bounded queue.
	if a.waiting.Add(1) > a.queueCap {
		a.waiting.Add(-1)
		return nil, ErrQueueFull
	}
	defer a.waiting.Add(-1)
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return a.releaseFn(), nil
	case <-done:
		return nil, ctx.Err()
	}
}

func (a *Admission) releaseFn() func() {
	var released atomic.Bool
	return func() {
		if released.CompareAndSwap(false, true) {
			a.inflight.Add(-1)
			<-a.slots
		}
	}
}

// QueueDepth returns the number of computations waiting for a slot.
func (a *Admission) QueueDepth() int { return int(a.waiting.Load()) }

// Inflight returns the number of computations currently running.
func (a *Admission) Inflight() int { return int(a.inflight.Load()) }

// Workers returns the concurrency bound.
func (a *Admission) Workers() int { return cap(a.slots) }
