package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"bicc"
	"bicc/internal/durable"
)

// durableServer builds a server wired to dir, failing the test on error.
func durableServer(t *testing.T, cfg Config, dcfg DurabilityConfig) (*Server, *RecoveryReport) {
	t.Helper()
	s := New(cfg)
	rep, err := s.EnableDurability(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.CloseDurability() })
	return s, rep
}

func TestDurableUploadSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, rep := durableServer(t, Config{}, DurabilityConfig{Dir: dir})
	if rep.Graphs != 0 || rep.Truncations != 0 {
		t.Fatalf("fresh dir recovery: %+v", rep)
	}
	ts := newHTTPServer(t, s)
	up := uploadGraph(t, ts, testGraph(t), "name=demo")
	g2, _ := bicc.RandomConnectedGraph(30, 60, 3)
	up2 := uploadGraph(t, ts, g2, "name=other")

	// Delete the second graph; the delete must be durable too.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/"+up2.Fingerprint, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	if err := s.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	// A new server over the same dir recovers exactly the surviving graph.
	s2, rep2 := durableServer(t, Config{}, DurabilityConfig{Dir: dir})
	if rep2.Graphs != 1 || rep2.Truncations != 0 || rep2.DroppedGraphs != 0 {
		t.Fatalf("recovery after clean close: %+v", rep2)
	}
	if _, ok := s2.registry.Get(up.Fingerprint); !ok {
		t.Fatal("uploaded graph not recovered")
	}
	if _, ok := s2.registry.Get(up2.Fingerprint); ok {
		t.Fatal("deleted graph resurrected")
	}
	snap := s2.Snapshot()
	if snap.Durability == nil || snap.Durability.RecoveredGraphs != 1 {
		t.Fatalf("statsz durability section: %+v", snap.Durability)
	}
	if snap.Durability.RecoverySeconds <= 0 {
		t.Fatal("recovery_seconds not reported")
	}
}

// newHTTPServer is newTestServer for a server constructed by the caller.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestDurabilityOffIsInvisible(t *testing.T) {
	// Without EnableDurability, /statsz must not contain a durability key:
	// the feature off is byte-compatible with builds that predate it.
	s, _ := newTestServer(t, Config{})
	b, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "durability") {
		t.Fatalf("statsz leaks durability when disabled: %s", b)
	}
}

func TestDurableCacheSpillsAndPromotes(t *testing.T) {
	dir := t.TempDir()
	// One-entry cache: the second distinct query demotes the first result
	// to disk; re-querying the first must come back from the spill tier
	// without a new computation.
	s, _ := durableServer(t, Config{CacheEntries: 1}, DurabilityConfig{Dir: dir})
	ts := newHTTPServer(t, s)
	up := uploadGraph(t, ts, testGraph(t), "")
	g2, _ := bicc.RandomConnectedGraph(40, 80, 9)
	up2 := uploadGraph(t, ts, g2, "")

	postOK := func(fp, algo string) bccResponse {
		t.Helper()
		resp, data := postBCC(t, ts, bccRequest{Graph: fp, Algorithm: algo})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var out bccResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := postOK(up.Fingerprint, "tv-opt")
	postOK(up2.Fingerprint, "tv-opt") // evicts → demotes the first result
	d := s.dur.Load()
	if d.spill.Writes() == 0 {
		t.Fatal("eviction did not demote to the spill tier")
	}
	again := postOK(up.Fingerprint, "tv-opt")
	if d.spill.Hits() == 0 {
		t.Fatal("re-query did not promote from the spill tier")
	}
	if !again.Cached {
		t.Fatal("promoted result not reported as cached")
	}
	if again.NumComponents != first.NumComponents || again.NumArticulation != first.NumArticulation {
		t.Fatalf("promoted result differs: %+v vs %+v", again, first)
	}
	if comps := s.Snapshot().Computations; comps != 2 {
		t.Fatalf("computations = %d, want 2 (promotion must not recompute)", comps)
	}

	// Spilled results survive restart and are re-verified at boot.
	if err := s.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	s2, rep := durableServer(t, Config{CacheEntries: 1}, DurabilityConfig{Dir: dir})
	if rep.SpilledResults == 0 {
		t.Fatalf("no spilled results recovered: %+v", rep)
	}
	if rep.VerifiedResults == 0 || rep.VerifyFailures != 0 {
		t.Fatalf("boot verification: %+v", rep)
	}
	_ = s2
}

func TestDurableBootDropsCorruptSpill(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, Config{CacheEntries: 1}, DurabilityConfig{Dir: dir})
	ts := newHTTPServer(t, s)
	up := uploadGraph(t, ts, testGraph(t), "")
	g2, _ := bicc.RandomConnectedGraph(40, 80, 9)
	up2 := uploadGraph(t, ts, g2, "")
	for _, fp := range []string{up.Fingerprint, up2.Fingerprint} {
		if resp, data := postBCC(t, ts, bccRequest{Graph: fp, Algorithm: "tv-opt"}); resp.StatusCode != 200 {
			t.Fatalf("%s", data)
		}
	}
	if err := s.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	if n := corruptSpillDir(t, filepath.Join(dir, "spill")); n == 0 {
		t.Fatal("no spilled record with multiple components to corrupt")
	}

	_, rep := durableServer(t, Config{}, DurabilityConfig{Dir: dir, VerifySample: 10})
	if rep.VerifyFailures == 0 {
		t.Fatalf("boot verification missed corrupted labels: %+v", rep)
	}
}

// corruptSpillDir swaps two differing labels inside every spilled record
// that has them, rewriting through the codec so the CRC is computed over
// the damaged bytes too — only semantic re-verification can catch it.
// Returns how many records were corrupted.
func corruptSpillDir(t *testing.T, dir string) int {
	t.Helper()
	sp, keys, err := durable.OpenSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, key := range keys {
		rec, ok := sp.Get(key)
		if !ok {
			continue
		}
		swapped := false
		for i := 1; i < len(rec.EdgeComponent); i++ {
			if rec.EdgeComponent[i] != rec.EdgeComponent[0] {
				rec.EdgeComponent[0], rec.EdgeComponent[i] = rec.EdgeComponent[i], rec.EdgeComponent[0]
				swapped = true
				break
			}
		}
		if !swapped {
			continue
		}
		if err := sp.Put(rec); err != nil {
			t.Fatal(err)
		}
		n++
	}
	return n
}

func TestDurableRegistryEvictionIsLogged(t *testing.T) {
	dir := t.TempDir()
	g1, _ := bicc.RandomConnectedGraph(100, 300, 1)
	g2, _ := bicc.RandomConnectedGraph(100, 300, 2)
	// Budget for roughly one graph: adding the second evicts the first,
	// and the eviction must reach the WAL so recovery matches the
	// registry.
	s, _ := durableServer(t, Config{MaxGraphBytes: graphBytes(g1) + 100},
		DurabilityConfig{Dir: dir})
	fp1, _, err := s.AddGraph("one", g1)
	if err != nil {
		t.Fatal(err)
	}
	fp2, _, err := s.AddGraph("two", g2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.registry.Get(fp1); ok {
		t.Fatal("first graph not evicted")
	}
	if err := s.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	s2, rep := durableServer(t, Config{}, DurabilityConfig{Dir: dir})
	if rep.Graphs != 1 {
		t.Fatalf("recovered %d graphs, want 1", rep.Graphs)
	}
	if _, ok := s2.registry.Get(fp1); ok {
		t.Fatal("evicted graph resurrected at recovery")
	}
	if _, ok := s2.registry.Get(fp2); !ok {
		t.Fatal("surviving graph missing after recovery")
	}
}

func TestMaxBodyBytes413(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	_ = s
	// Oversize upload: well-formed so the parser runs into the byte cap
	// rather than a syntax error.
	big := "p 7 300\n" + strings.Repeat("0 1\n", 300)
	resp, err := http.Post(ts.URL+"/v1/graphs", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("upload over cap: status %d, want 413", resp.StatusCode)
	}
	// A cap landing mid-line truncates a record: the parser sees a syntax
	// error, but the response must still be 413, not 400.
	_, ts2 := newTestServer(t, Config{MaxBodyBytes: 125})
	resp, err = http.Post(ts2.URL+"/v1/graphs", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("mid-line truncation: status %d, want 413", resp.StatusCode)
	}
	// Oversize query body.
	body := `{"graph": "` + strings.Repeat("f", 300) + `"}`
	resp, err = http.Post(ts.URL+"/v1/bcc", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("query over cap: status %d, want 413", resp.StatusCode)
	}
}
