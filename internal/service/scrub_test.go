package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bicc"
	"bicc/internal/gen"
	"bicc/internal/scrub"
)

// scrubLog is a concurrency-safe Logf sink for asserting repair sources.
type scrubLog struct {
	mu    sync.Mutex
	lines []string
}

func (l *scrubLog) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *scrubLog) contains(sub string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ln := range l.lines {
		if strings.Contains(ln, sub) {
			return true
		}
	}
	return false
}

// flipByte damages one on-disk artifact in place, past the codec's 6-byte
// file header so the frame CRC (not the magic check) is what must catch it.
func flipByte(t *testing.T, path string, off int) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off >= len(b) {
		t.Fatalf("flip offset %d past end of %d-byte %s", off, len(b), path)
	}
	b[off] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestParseDurableKey(t *testing.T) {
	for _, k := range []resultKey{
		{fp: "aabbccdd", algo: bicc.TVSMP, procs: 4},
		{fp: "aabbccdd", gen: 3, algo: bicc.TVOpt, procs: 16},
		{fp: "ff00", gen: 12, algo: bicc.FastBCC, procs: 1},
		{fp: "ee", algo: bicc.Sequential, procs: 0},
	} {
		got, ok := parseDurableKey(k.durableKey())
		if !ok || got != k {
			t.Errorf("parseDurableKey(%q) = %+v, %v; want %+v", k.durableKey(), got, ok, k)
		}
	}
	for _, bad := range []string{"", "nodash", "stray-key", "fp-", "-tv-smp-4",
		"fp-bogus-4", "fp-tv-smp-x", "fp@x-tv-smp-4", "fp-tv-smp--1"} {
		if k, ok := parseDurableKey(bad); ok {
			t.Errorf("parseDurableKey(%q) accepted as %+v", bad, k)
		}
	}
}

func TestShardSetKey(t *testing.T) {
	for in, want := range map[string]string{
		"aabb-tv-smp-4-idx":  "aabb-tv-smp-4",
		"aabb-tv-smp-4-s0":   "aabb-tv-smp-4",
		"aabb-tv-smp-4-s12":  "aabb-tv-smp-4",
		"ff@2-fast-bcc-8-s3": "ff@2-fast-bcc-8",
	} {
		got, ok := shardSetKey(in)
		if !ok || got != want {
			t.Errorf("shardSetKey(%q) = %q, %v; want %q", in, got, ok, want)
		}
	}
	for _, bad := range []string{"", "aabb-tv-smp-4", "x-s", "12345", "aabb-idx-more"} {
		if got, ok := shardSetKey(bad); ok {
			t.Errorf("shardSetKey(%q) accepted as %q", bad, got)
		}
	}
}

func TestScrubRequiresDurability(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if err := s.EnableScrub(ScrubConfig{}); err == nil {
		t.Fatal("EnableScrub without durability must fail")
	}
	if _, err := s.RunScrub(); err == nil {
		t.Fatal("RunScrub without EnableScrub must fail")
	}
	resp, err := http.Post(ts.URL+"/v1/admin/scrub", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("admin scrub without the subsystem: status %d, want 409", resp.StatusCode)
	}

	dir := t.TempDir()
	s2, _ := durableServer(t, Config{}, DurabilityConfig{Dir: dir})
	if err := s2.EnableScrub(ScrubConfig{}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.CloseScrub)
	if err := s2.EnableScrub(ScrubConfig{}); err == nil {
		t.Fatal("second EnableScrub must fail")
	}
}

// TestScrubSpillRepairLadder damages two spilled results — one whose entry
// is still resident in the memory cache, one that only lives on disk — and
// proves the scrubber heals the first from the cache and the second by
// recomputing through the engine trunk, leaving both queryable with the
// original answers.
func TestScrubSpillRepairLadder(t *testing.T) {
	dir := t.TempDir()
	lg := &scrubLog{}
	s, _ := durableServer(t, Config{CacheEntries: 1}, DurabilityConfig{Dir: dir})
	if err := s.EnableScrub(ScrubConfig{Logf: lg.logf}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.CloseScrub)
	ts := newHTTPServer(t, s)

	up1 := uploadGraph(t, ts, testGraph(t), "")
	g2, _ := bicc.RandomConnectedGraph(40, 80, 9)
	up2 := uploadGraph(t, ts, g2, "")
	postOK := func(fp string) bccResponse {
		t.Helper()
		resp, data := postBCC(t, ts, bccRequest{Graph: fp, Algorithm: "tv-opt"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var out bccResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want1 := postOK(up1.Fingerprint) // resident
	want2 := postOK(up2.Fingerprint) // demotes 1 to disk
	postOK(up1.Fingerprint)          // promotes 1 back; demotes 2 to disk
	// Now: both spilled on disk; graph 1 also resident in the memory cache.

	d := s.dur.Load()
	keys := d.spill.Keys()
	if len(keys) != 2 {
		t.Fatalf("spill keys = %v, want 2", keys)
	}
	for _, k := range keys {
		flipByte(t, d.spill.Path(k), 20)
	}

	rep, err := s.RunScrub()
	if err != nil {
		t.Fatal(err)
	}
	tr := scrubTier(t, rep, "spill")
	if tr.Corrupt != 2 || tr.Repaired != 2 || tr.Quarantined != 0 {
		t.Fatalf("spill tier after damage = %+v, want 2 corrupt, 2 repaired", tr)
	}
	if !lg.contains("repaired from cache") {
		t.Fatalf("resident record not healed from the cache rung; log: %v", lg.lines)
	}
	if !lg.contains("repaired from recompute") {
		t.Fatalf("disk-only record not healed by recompute; log: %v", lg.lines)
	}

	// The healed files verify clean on the next cycle...
	rep, _ = s.RunScrub()
	if rep.Corrupt != 0 {
		t.Fatalf("second cycle still corrupt: %+v", rep)
	}
	// ...and both results serve the original answers.
	got1, got2 := postOK(up1.Fingerprint), postOK(up2.Fingerprint)
	if got1.NumComponents != want1.NumComponents || got1.NumArticulation != want1.NumArticulation {
		t.Fatalf("graph 1 answer changed: %+v vs %+v", got1, want1)
	}
	if got2.NumComponents != want2.NumComponents || got2.NumArticulation != want2.NumArticulation {
		t.Fatalf("graph 2 answer changed: %+v vs %+v", got2, want2)
	}
}

// TestIncludeViewsDerivedOnCacheHit pins that the include views a query
// asks for never depend on which query populated the cache: the result
// cache is keyed without the include set, so a hit created by an
// include-free query (or by a scrub recompute, which asks for nothing) must
// still serve articulation/bridges/blockcut lists, derived on the fly from
// the persisted labeling.
func TestIncludeViewsDerivedOnCacheHit(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, Config{CacheEntries: 1}, DurabilityConfig{Dir: dir})
	if err := s.EnableScrub(ScrubConfig{}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.CloseScrub)
	ts := newHTTPServer(t, s)

	up := uploadGraph(t, ts, testGraph(t), "")
	full := bccRequest{Graph: up.Fingerprint, Algorithm: "tv-opt",
		Include: []string{"articulation", "bridges", "components", "blockcut"}}
	ask := func(req bccRequest) bccResponse {
		t.Helper()
		resp, data := postBCC(t, ts, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var out bccResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	want := ask(full) // miss: views computed alongside the engine run
	if want.Cached || len(want.ArticulationPoints) == 0 || want.BlockCut == nil {
		t.Fatalf("baseline response unusable: %+v", want)
	}
	assertViews := func(got bccResponse, when string) {
		t.Helper()
		if fmt.Sprint(got.ArticulationPoints) != fmt.Sprint(want.ArticulationPoints) ||
			fmt.Sprint(got.Bridges) != fmt.Sprint(want.Bridges) ||
			len(got.Components) != len(want.Components) ||
			got.BlockCut == nil || got.BlockCut.NumBlocks != want.BlockCut.NumBlocks {
			t.Fatalf("%s: derived views differ from computed ones: %+v vs %+v", when, got, want)
		}
	}

	// Hit on the entry the include-ful miss created.
	assertViews(ask(full), "plain cache hit")

	// Replace the entry with one created by a scrub recompute: corrupt the
	// spilled record, evict the resident entry by querying another graph,
	// and let the repair ladder rebuild it include-free.
	g2, _ := bicc.RandomConnectedGraph(40, 80, 9)
	up2 := uploadGraph(t, ts, g2, "")
	ask(bccRequest{Graph: up2.Fingerprint, Algorithm: "tv-opt"}) // demotes graph 1
	d := s.dur.Load()
	for _, k := range d.spill.Keys() {
		if strings.HasPrefix(k, up.Fingerprint) {
			flipByte(t, d.spill.Path(k), 20)
		}
	}
	rep, err := s.RunScrub()
	if err != nil {
		t.Fatal(err)
	}
	if tr := scrubTier(t, rep, "spill"); tr.Repaired != 1 {
		t.Fatalf("spill tier = %+v, want 1 repaired", tr)
	}
	assertViews(ask(full), "after scrub recompute")
}

// scrubTier plucks one tier's report out of a cycle report.
func scrubTier(t *testing.T, rep *scrub.Report, name string) scrub.TierReport {
	t.Helper()
	for _, tr := range rep.Tiers {
		if tr.Tier == name {
			return tr
		}
	}
	t.Fatalf("tier %q missing from report %+v", name, rep)
	return scrub.TierReport{}
}

// TestScrubWALRepairByCompaction flips a byte inside the active WAL and
// proves the scrubber heals it by compacting the authoritative in-memory
// state into a fresh generation — after which a cold restart recovers every
// graph.
func TestScrubWALRepairByCompaction(t *testing.T) {
	dir := t.TempDir()
	lg := &scrubLog{}
	s, _ := durableServer(t, Config{}, DurabilityConfig{Dir: dir})
	if err := s.EnableScrub(ScrubConfig{Logf: lg.logf}); err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)
	uploadGraph(t, ts, testGraph(t), "")
	g2, _ := bicc.RandomConnectedGraph(30, 60, 3)
	uploadGraph(t, ts, g2, "")

	d := s.dur.Load()
	var walPath string
	for _, f := range d.store.ScrubFiles() {
		if !f.Snapshot {
			walPath = f.Path
		}
	}
	flipByte(t, walPath, 10)

	rep, err := s.RunScrub()
	if err != nil {
		t.Fatal(err)
	}
	tr := scrubTier(t, rep, "wal")
	if tr.Corrupt != 1 || tr.Repaired != 1 {
		t.Fatalf("wal tier = %+v, want 1 corrupt, 1 repaired", tr)
	}
	if !lg.contains("repaired from compact") {
		t.Fatalf("WAL not healed by compaction; log: %v", lg.lines)
	}
	if _, err := os.Stat(walPath); !os.IsNotExist(err) {
		t.Fatalf("damaged WAL segment still on disk after repair")
	}
	rep, _ = s.RunScrub()
	if rep.Corrupt != 0 {
		t.Fatalf("post-repair cycle still corrupt: %+v", rep)
	}

	s.CloseScrub()
	if err := s.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	_, rec := durableServer(t, Config{}, DurabilityConfig{Dir: dir})
	if rec.Graphs != 2 || rec.Truncations != 0 {
		t.Fatalf("recovery after WAL repair: %+v, want both graphs, no truncations", rec)
	}
}

// TestScrubQuarantineAndHealthz drops an unparseable garbage artifact into
// the spill directory: nothing can repair it, so the scrubber must move it
// to quarantine, flip /healthz to 503, surface it on /statsz, and keep
// reporting it after a restart.
func TestScrubQuarantineAndHealthz(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, Config{}, DurabilityConfig{Dir: dir})
	if err := s.EnableScrub(ScrubConfig{}); err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)
	uploadGraph(t, ts, testGraph(t), "")

	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz before damage: %d", code)
	}

	d := s.dur.Load()
	stray := d.spill.Path("stray-key")
	if err := os.WriteFile(stray, []byte("not a result frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunScrub()
	if err != nil {
		t.Fatal(err)
	}
	tr := scrubTier(t, rep, "spill")
	if tr.Corrupt != 1 || tr.Repaired != 0 || tr.Quarantined != 1 {
		t.Fatalf("spill tier = %+v, want 1 corrupt quarantined", tr)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("quarantined artifact still in the spill directory")
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", filepath.Base(stray))); err != nil {
		t.Fatalf("artifact not in the quarantine directory: %v", err)
	}

	var hz struct {
		Status      string   `json:"status"`
		Quarantined []string `json:"quarantined"`
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || hz.Status != "unhealthy" {
		t.Fatalf("healthz after quarantine: %d %q, want 503 unhealthy", resp.StatusCode, hz.Status)
	}
	if len(hz.Quarantined) != 1 {
		t.Fatalf("healthz quarantined = %v", hz.Quarantined)
	}
	snap := s.Snapshot()
	if snap.Scrub == nil || snap.Scrub.Quarantined != 1 || len(snap.Scrub.QuarantineFiles) != 1 {
		t.Fatalf("statsz scrub section: %+v", snap.Scrub)
	}

	// Quarantine is sticky across restarts: a fresh server over the same dir
	// reports it until an operator clears the directory.
	s.CloseScrub()
	if err := s.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	s2, _ := durableServer(t, Config{}, DurabilityConfig{Dir: dir})
	if err := s2.EnableScrub(ScrubConfig{}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.CloseScrub)
	ts2 := newHTTPServer(t, s2)
	if code := getJSON(t, ts2.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after restart: %d, want 503 (quarantine persisted)", code)
	}
}

// TestScrubShardBlobRebuild demotes shard state to disk under a tiny memory
// budget, damages one spilled blob, and proves the scrubber drops and
// rebuilds the whole set from a fresh decomposition — every block query
// still answers correctly afterward.
func TestScrubShardBlobRebuild(t *testing.T) {
	dir := t.TempDir()
	lg := &scrubLog{}
	s, _ := durableServer(t, Config{}, DurabilityConfig{Dir: dir})
	if err := s.EnableSharding(ShardingConfig{MemBudget: 2_000, SpillDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableScrub(ScrubConfig{Logf: lg.logf}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.CloseScrub)
	ts := newHTTPServer(t, s)

	el := gen.Caterpillar(16, 3)
	g, err := bicc.NewGraph(int(el.N), el.Edges)
	if err != nil {
		t.Fatal(err)
	}
	up := uploadGraph(t, ts, g, "")
	res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: bicc.Auto})
	if err != nil {
		t.Fatal(err)
	}
	tree := res.BlockCutTree()
	queryBlocks := func() {
		t.Helper()
		for b := 0; b < res.NumComponents; b++ {
			var br blockResponse
			if code := getJSON(t, ts.URL+fmt.Sprintf("/v1/block/%d?graph=%s", b, up.Fingerprint), &br); code != 200 {
				t.Fatalf("block %d: status %d", b, code)
			}
			if fmt.Sprint(br.Vertices) != fmt.Sprint(tree.VerticesOfBlock(int32(b))) {
				t.Fatalf("block %d wrong: %+v", b, br)
			}
		}
	}
	queryBlocks() // demotes shards to the spill tier under the tiny budget

	st := s.shards.Load()
	keys := st.spill.Keys()
	if len(keys) == 0 {
		t.Fatal("no shard blobs spilled; cannot exercise the tier")
	}
	flipByte(t, st.spill.Path(keys[0]), 10)

	rep, err := s.RunScrub()
	if err != nil {
		t.Fatal(err)
	}
	tr := scrubTier(t, rep, "shard")
	if tr.Corrupt != 1 || tr.Repaired != 1 {
		t.Fatalf("shard tier = %+v, want 1 corrupt, 1 repaired", tr)
	}
	if !lg.contains("repaired from rebuild") {
		t.Fatalf("blob not healed by a set rebuild; log: %v", lg.lines)
	}
	rep, _ = s.RunScrub()
	if rep.Corrupt != 0 {
		t.Fatalf("post-rebuild cycle still corrupt: %+v", rep)
	}
	queryBlocks()
}

// TestHealthzVerifyFailures pins the boot-verification readiness contract:
// any spilled result dropped by re-verification at recovery flips /healthz
// until the operator (or a scrub repair) resolves it.
func TestHealthzVerifyFailures(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, Config{}, DurabilityConfig{Dir: dir})
	ts := newHTTPServer(t, s)
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz clean: %d", code)
	}
	s.dur.Load().verifyFailures.Store(2)
	var hz struct {
		Status         string `json:"status"`
		VerifyFailures int64  `json:"verify_failures"`
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || hz.VerifyFailures != 2 {
		t.Fatalf("healthz with verify failures: %d %+v, want 503 with the count", resp.StatusCode, hz)
	}
}

// TestAdminScrubEndpoint runs a cycle through POST /v1/admin/scrub and
// checks the report shape on the wire.
func TestAdminScrubEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, Config{}, DurabilityConfig{Dir: dir})
	if err := s.EnableScrub(ScrubConfig{}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.CloseScrub)
	ts := newHTTPServer(t, s)
	uploadGraph(t, ts, testGraph(t), "")

	resp, err := http.Post(ts.URL+"/v1/admin/scrub", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin scrub: status %d", resp.StatusCode)
	}
	var rep struct {
		Checked int `json:"checked"`
		Tiers   []struct {
			Tier string `json:"tier"`
		} `json:"tiers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Checked == 0 || len(rep.Tiers) != 4 {
		t.Fatalf("wire report = %+v, want 4 tiers with at least the WAL checked", rep)
	}
}
