package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"bicc"
	"bicc/internal/durable"
	"bicc/internal/obs"
	"bicc/internal/shard"
)

// ShardingConfig wires a Server to the shard-by-component query layer:
// decompose once, then route per-block queries (articulation membership,
// block lookups by vertex, block subgraphs) to per-shard state instead of
// re-serving the monolithic result.
type ShardingConfig struct {
	// MemBudget bounds the resident bytes of shard state; past it,
	// least-recently-used shards demote to the spill tier (or, diskless,
	// whole sets drop and rebuild on demand). <= 0 means unlimited.
	MemBudget int64
	// SpillDir is the disk tier for demoted shards; "" keeps sharding
	// memory-only.
	SpillDir string
	// SpillBudget bounds the disk bytes of spilled shard state; <= 0 means
	// unlimited.
	SpillBudget int64
}

// shardState is a Server's live sharding machinery, held through an atomic
// pointer so the disabled path costs one nil check and the /statsz and
// /metrics output of a non-sharded server is byte-identical to older
// builds.
type shardState struct {
	mgr   *shard.Manager
	spill *durable.BlobSpill

	queries   *obs.Counter   // per-block queries received
	fallbacks *obs.Counter   // answered via the monolithic fallback path
	latency   *obs.Histogram // end-to-end shard-query latency
}

// EnableSharding builds the shard manager (and, with a SpillDir, its disk
// tier), registers the shard metrics, and switches the per-block endpoints
// from 404 to live routing. Call before serving requests; a second call is
// an error.
func (s *Server) EnableSharding(cfg ShardingConfig) error {
	if s.shards.Load() != nil {
		return fmt.Errorf("service: sharding already enabled")
	}
	st := &shardState{mgr: shard.NewManager(cfg.MemBudget)}
	if cfg.SpillDir != "" {
		sp, _, err := durable.OpenBlobSpill(cfg.SpillDir, cfg.SpillBudget)
		if err != nil {
			return err
		}
		st.spill = sp
		st.mgr.SetSpill(blobShardTier{sp})
	}
	st.register(s.metrics)
	s.shards.Store(st)
	return nil
}

// register exposes the shard layer on the server's metrics registry. These
// series exist only when sharding is enabled.
func (st *shardState) register(reg *obs.Registry) {
	st.queries = reg.Counter("bicc_shard_queries_total",
		"Per-block queries received by the shard endpoints.")
	st.fallbacks = reg.Counter("bicc_shard_fallbacks_total",
		"Shard queries answered by the monolithic fallback path.")
	st.latency = reg.Histogram("bicc_shard_request_seconds",
		"End-to-end latency of shard-routed per-block queries.")
	m := st.mgr
	reg.CounterVec("bicc_shard_builds_total",
		"Shard sets built from a completed decomposition.").Func(m.Builds)
	reg.CounterVec("bicc_shard_build_failures_total",
		"Shard-set builds that failed (fault, cancellation, or panic).").Func(m.BuildFailures)
	reg.CounterVec("bicc_shard_recovered_total",
		"Shard sets recovered from a spilled routing index.").Func(m.Recovered)
	reg.CounterVec("bicc_shard_demotions_total",
		"Shards demoted to the spill tier for memory budget.").Func(m.Demotions)
	reg.CounterVec("bicc_shard_promotions_total",
		"Shards promoted back from the spill tier.").Func(m.Promotions)
	reg.CounterVec("bicc_shard_promote_failures_total",
		"Shard promotions rejected (missing, torn, or stale spilled state).").Func(m.PromoteFailures)
	reg.CounterVec("bicc_shard_invalidations_total",
		"Shard sets dropped wholesale (untrusted spill state or deletion).").Func(m.Invalidations)
	reg.GaugeFunc("bicc_shard_sets",
		"Shard sets resident in the manager.",
		func() float64 { return float64(m.Sets()) })
	reg.GaugeFunc("bicc_shard_resident_shards",
		"Individual shards currently held in memory.",
		func() float64 { return float64(m.ResidentShards()) })
	reg.GaugeFunc("bicc_shard_bytes",
		"Estimated resident bytes of shard state (indexes + shards).",
		func() float64 { return float64(m.Bytes()) })
	if sp := st.spill; sp != nil {
		reg.GaugeFunc("bicc_shard_spill_entries",
			"Shard payloads resident in the shard spill tier.",
			func() float64 { return float64(sp.Len()) })
		reg.GaugeFunc("bicc_shard_spill_bytes",
			"Disk bytes held by spilled shard state.",
			func() float64 { return float64(sp.Bytes()) })
		reg.CounterVec("bicc_shard_spill_writes_total",
			"Shard payloads written to the spill tier.").Func(sp.Writes)
		reg.CounterVec("bicc_shard_spill_hits_total",
			"Shard payloads read back from the spill tier.").Func(sp.Hits)
		reg.CounterVec("bicc_shard_spill_corrupt_total",
			"Spilled shard payloads dropped on CRC or decode failure.").Func(sp.Corrupt)
	}
}

// blobShardTier adapts the durable blob spill to the shard manager's
// SpillTier interface. Keys compose the decomposition key with a suffix so
// the routing index and each block's payload land in distinct files.
type blobShardTier struct{ sp *durable.BlobSpill }

func shardBlockKey(fp string, block int32) string {
	return fp + "-s" + strconv.Itoa(int(block))
}

func (t blobShardTier) PutIndex(fp string, payload []byte) error { return t.sp.Put(fp+"-idx", payload) }
func (t blobShardTier) GetIndex(fp string) ([]byte, bool)        { return t.sp.Get(fp + "-idx") }
func (t blobShardTier) RemoveIndex(fp string)                    { t.sp.Remove(fp + "-idx") }
func (t blobShardTier) PutShard(fp string, block int32, payload []byte) error {
	return t.sp.Put(shardBlockKey(fp, block), payload)
}
func (t blobShardTier) GetShard(fp string, block int32) ([]byte, bool) {
	return t.sp.Get(shardBlockKey(fp, block))
}
func (t blobShardTier) RemoveShard(fp string, block int32) {
	t.sp.Remove(shardBlockKey(fp, block))
}

// degradedResultError carries a correct-but-degraded decomposition out of a
// shard build: degraded results are never installed as shard state (the
// same rule the result cache applies), but the answer they hold is still
// served — through the monolithic path, marked degraded.
type degradedResultError struct {
	res   *bicc.Result
	cause string
}

func (e *degradedResultError) Error() string {
	return "shard build skipped for degraded result: " + e.cause
}

// --- request plumbing ------------------------------------------------------

// shardQuery is one resolved per-block request: either a shard set to route
// into (set != nil) or a monolithic decomposition to fall back on (res !=
// nil, with the tree built lazily). Exactly one of the two is populated.
type shardQuery struct {
	st    *shardState
	fp    string
	key   string // fp[@gen]-algorithm-procs, the manager and spill key
	gen   uint64
	algo  bicc.Algorithm
	procs int
	g     *bicc.Graph

	set           *shard.Set
	res           *bicc.Result
	tree          *bicc.BlockCutTree
	degradedCause string
}

// algorithm names the engine whose block numbering the answer uses.
func (q *shardQuery) algorithm() string {
	if q.set != nil {
		return q.set.Algorithm
	}
	return q.res.Algorithm.String()
}

// blockTree lazily assembles the monolithic block-cut tree on the fallback
// path.
func (q *shardQuery) blockTree() *bicc.BlockCutTree {
	if q.tree == nil {
		q.tree = q.res.BlockCutTree()
	}
	return q.tree
}

func (q *shardQuery) numBlocks() int {
	if q.set != nil {
		return q.set.NumBlocks
	}
	return q.res.NumComponents
}

// meta is the response envelope shared by all shard endpoints.
func (q *shardQuery) meta() shardMeta {
	return shardMeta{
		Graph:         q.fp,
		Algorithm:     q.algorithm(),
		Sharded:       q.set != nil,
		Degraded:      q.degradedCause != "",
		DegradedCause: q.degradedCause,
	}
}

type shardMeta struct {
	Graph     string `json:"graph"`
	Algorithm string `json:"algorithm"`
	// Sharded reports which path answered: true means per-shard state,
	// false means the monolithic fallback.
	Sharded       bool   `json:"sharded"`
	Degraded      bool   `json:"degraded,omitempty"`
	DegradedCause string `json:"degraded_cause,omitempty"`
}

// resolveShard parses the common query parameters (graph, algorithm, procs,
// timeout_ms), acquires the graph, and obtains the shard set — building it
// at most once across concurrent callers — or the monolithic fallback when
// the build cannot produce trustworthy shard state. It reports ok=false
// after writing the error response itself. done must be called exactly once
// when ok.
func (s *Server) resolveShard(w http.ResponseWriter, r *http.Request) (q *shardQuery, ctx context.Context, done func(), ok bool) {
	st := s.shards.Load()
	if st == nil {
		writeError(w, http.StatusNotFound, "sharding is disabled (start bccd with -shard)")
		return nil, nil, nil, false
	}
	st.queries.Add(1)
	params := r.URL.Query()
	fp := params.Get("graph")
	if fp == "" {
		writeError(w, http.StatusBadRequest, "missing graph parameter (a fingerprint from /v1/graphs)")
		return nil, nil, nil, false
	}
	algo, err := parseAlgorithm(params.Get("algorithm"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, nil, nil, false
	}
	procs := 0
	if ps := params.Get("procs"); ps != "" {
		procs, err = strconv.Atoi(ps)
		if err != nil || procs < 0 {
			writeError(w, http.StatusBadRequest, "bad procs %q", ps)
			return nil, nil, nil, false
		}
	}
	g, info, okG := s.registry.AcquireInfo(fp)
	if !okG {
		writeError(w, http.StatusNotFound, "no graph %q (upload it via POST /v1/graphs first)", fp)
		return nil, nil, nil, false
	}
	timeout := s.cfg.DefaultTimeout
	if ts := params.Get("timeout_ms"); ts != "" {
		if ms, err := strconv.ParseInt(ts, 10, 64); err == nil && ms > 0 {
			timeout = time.Duration(ms) * time.Millisecond
		}
	}
	cctx, cancel := context.WithTimeout(r.Context(), timeout)
	release := func() { cancel(); s.registry.Release(fp) }

	q = &shardQuery{
		st: st, fp: fp, gen: info.Generation, algo: algo, procs: procs, g: g,
		key: resultKey{fp: fp, gen: info.Generation, algo: algo, procs: procs}.durableKey(),
	}
	if !s.routeShard(w, cctx, q) {
		release()
		return nil, nil, nil, false
	}
	return q, cctx, release, true
}

// routeShard fills q with either the shard set or the monolithic fallback,
// writing the error response itself when neither is possible.
func (s *Server) routeShard(w http.ResponseWriter, ctx context.Context, q *shardQuery) bool {
	set, err := q.st.mgr.Do(ctx, q.key, func(bctx context.Context) (*shard.Set, error) {
		// A mutated graph's maintained labels build the shard set directly —
		// no engine run, no degradation risk.
		if res, ok := s.incrReconstruct(q.fp, q.g, q.algo, q.procs); ok {
			return shard.BuildSet(bctx, q.key, q.g, res)
		}
		res, _, routedCause, err := s.runEngine(bctx, q.g, q.algo, q.procs)
		if err != nil {
			return nil, err
		}
		if res.Degraded || routedCause != "" {
			cause := routedCause
			if res.Degraded && res.DegradedCause != nil {
				cause = res.DegradedCause.Error()
			}
			return nil, &degradedResultError{res: res, cause: cause}
		}
		return shard.BuildSet(bctx, q.key, q.g, res)
	})
	if err == nil {
		q.set = set
		return true
	}

	// The build did not yield shard state. A degraded decomposition still
	// answers the query (through the monolithic view, marked degraded); a
	// caller-side cancellation or a full queue maps to the same statuses as
	// /v1/bcc; anything else — an injected fault at shard.build, a contained
	// panic — falls back to the monolithic cached path so the query is
	// degraded, never dead.
	var de *degradedResultError
	if errors.As(err, &de) {
		q.st.fallbacks.Add(1)
		q.res = de.res
		q.degradedCause = de.cause
		return true
	}
	switch {
	case errors.Is(err, ErrQueueFull):
		s.stats.Rejected.Add(1)
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusTooManyRequests, "admission queue full, retry later")
		return false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.stats.Canceled.Add(1)
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusServiceUnavailable, "query did not finish in time: %v", err)
		return false
	}
	q.st.fallbacks.Add(1)
	if !s.monolithicFallback(w, ctx, q) {
		return false
	}
	q.degradedCause = err.Error()
	return true
}

// monolithicFallback serves q from the monolithic result-cache path — the
// exact machinery /v1/bcc uses — reconstructing a Result from the cached
// labels. Degraded engine output stays uncached there too, so a faulting
// shard build can never poison either cache.
func (s *Server) monolithicFallback(w http.ResponseWriter, ctx context.Context, q *shardQuery) bool {
	key := resultKey{fp: q.fp, gen: q.gen, algo: q.algo, procs: q.procs}
	qres, err, _ := s.cache.Do(ctx, key, func(cctx context.Context) (*queryResult, error) {
		if qr, ok := s.incrServe(q.fp, q.g, q.algo, q.procs, nil); ok {
			return qr, nil
		}
		return s.compute(cctx, q.g, q.algo, q.procs, nil)
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeError(w, http.StatusTooManyRequests, "admission queue full, retry later")
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeError(w, http.StatusServiceUnavailable, "query did not finish in time: %v", err)
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return false
	}
	algo, aerr := parseAlgorithm(qres.Algorithm)
	if aerr != nil {
		writeError(w, http.StatusInternalServerError, "fallback result: %v", aerr)
		return false
	}
	res, rerr := bicc.ReconstructResult(q.g, algo, qres.edgeComp)
	if rerr != nil {
		writeError(w, http.StatusInternalServerError, "fallback result: %v", rerr)
		return false
	}
	q.res = res
	return true
}

// --- endpoints -------------------------------------------------------------

type vertexBlocksResponse struct {
	shardMeta
	Vertex int32   `json:"vertex"`
	Blocks []int32 `json:"blocks"`
	IsCut  bool    `json:"is_cut"`
}

// handleVertexBlocks serves GET /v1/vertex/{v}/blocks?graph=fp: the ids of
// the biconnected components containing v, answered from the routing index
// without touching any per-block payload.
func (s *Server) handleVertexBlocks(w http.ResponseWriter, r *http.Request) {
	q, _, done, ok := s.resolveShard(w, r)
	if !ok {
		return
	}
	defer done()
	defer q.observeLatency(time.Now())
	v, ok := parseVertex(w, r, q.g)
	if !ok {
		return
	}
	var blocks []int32
	if q.set != nil {
		blocks = q.set.BlocksOfVertex(v)
	} else {
		blocks = q.blockTree().BlocksOfVertex(v)
	}
	writeJSON(w, http.StatusOK, vertexBlocksResponse{
		shardMeta: q.meta(),
		Vertex:    v,
		Blocks:    blocks,
		IsCut:     len(blocks) >= 2,
	})
}

type articulationResponse struct {
	shardMeta
	Vertex       int32 `json:"vertex"`
	Articulation bool  `json:"articulation"`
	// NumBlocksContaining is the number of blocks containing the vertex
	// (>= 2 exactly for articulation points, 0 for isolated vertices).
	NumBlocksContaining int `json:"num_blocks_containing"`
}

// handleVertexArticulation serves GET /v1/vertex/{v}/articulation?graph=fp:
// articulation membership read straight off the routing index.
func (s *Server) handleVertexArticulation(w http.ResponseWriter, r *http.Request) {
	q, _, done, ok := s.resolveShard(w, r)
	if !ok {
		return
	}
	defer done()
	defer q.observeLatency(time.Now())
	v, ok := parseVertex(w, r, q.g)
	if !ok {
		return
	}
	var nb int
	if q.set != nil {
		nb = len(q.set.BlocksOfVertex(v))
	} else {
		nb = len(q.blockTree().BlocksOfVertex(v))
	}
	writeJSON(w, http.StatusOK, articulationResponse{
		shardMeta:           q.meta(),
		Vertex:              v,
		Articulation:        nb >= 2,
		NumBlocksContaining: nb,
	})
}

type subgraphJSON struct {
	N         int32      `json:"n"`
	Edges     [][2]int32 `json:"edges"`
	VertexMap []int32    `json:"vertex_map"`
	EdgeMap   []int32    `json:"edge_map"`
}

type blockResponse struct {
	shardMeta
	Block       int32         `json:"block"`
	NumBlocks   int           `json:"num_blocks"`
	NumVertices int           `json:"num_vertices"`
	NumEdges    int           `json:"num_edges"`
	Vertices    []int32       `json:"vertices"`
	CutVertices []int32       `json:"cut_vertices"`
	Subgraph    *subgraphJSON `json:"subgraph,omitempty"`
}

// handleBlock serves GET /v1/block/{id}?graph=fp[&include=subgraph]: one
// block's vertex set, boundary cut vertices, and (on request) its remapped
// standalone subgraph — exactly one shard's payload, promoted from the
// spill tier if demoted.
func (s *Server) handleBlock(w http.ResponseWriter, r *http.Request) {
	q, ctx, done, ok := s.resolveShard(w, r)
	if !ok {
		return
	}
	defer done()
	defer q.observeLatency(time.Now())
	id64, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil || id64 < 0 {
		writeError(w, http.StatusBadRequest, "bad block id %q", r.PathValue("id"))
		return
	}
	id := int32(id64)
	if int(id) >= q.numBlocks() {
		writeError(w, http.StatusNotFound, "no block %d (graph has %d)", id, q.numBlocks())
		return
	}
	wantSub := r.URL.Query().Get("include") == "subgraph"
	resp := blockResponse{Block: id, NumBlocks: q.numBlocks()}

	if q.set != nil {
		sh, okSh := q.st.mgr.Shard(q.key, id)
		if !okSh {
			// The set was invalidated under us (untrusted spilled state, a
			// concurrent delete). One rebuild attempt serves the query from
			// fresh state; a second failure degrades to the monolith.
			if !s.routeShard(w, ctx, q) {
				return
			}
			if q.set != nil {
				sh, okSh = q.st.mgr.Shard(q.key, id)
			}
			if q.set != nil && !okSh {
				q.st.fallbacks.Add(1)
				if !s.monolithicFallback(w, ctx, q) {
					return
				}
				q.set = nil
				q.degradedCause = "shard state invalidated during query"
			}
		}
		if q.set != nil {
			resp.shardMeta = q.meta()
			resp.NumVertices = len(sh.Vertices)
			resp.NumEdges = len(sh.EdgeMap)
			resp.Vertices = sh.Vertices
			resp.CutVertices = sh.Cuts
			if wantSub {
				sub := &subgraphJSON{N: sh.Sub.N, VertexMap: sh.VertexMap, EdgeMap: sh.EdgeMap}
				sub.Edges = make([][2]int32, len(sh.Sub.Edges))
				for i, e := range sh.Sub.Edges {
					sub.Edges[i] = [2]int32{e.U, e.V}
				}
				resp.Subgraph = sub
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}

	// Monolithic fallback: same answers derived from the block-cut tree and
	// ComponentSubgraph.
	t := q.blockTree()
	sub, vm, em := q.res.ComponentSubgraph(id)
	resp.shardMeta = q.meta()
	resp.NumVertices = len(t.VerticesOfBlock(id))
	resp.NumEdges = len(em)
	resp.Vertices = t.VerticesOfBlock(id)
	resp.CutVertices = t.CutsOfBlock(id)
	if wantSub {
		sj := &subgraphJSON{N: int32(sub.NumVertices()), VertexMap: vm, EdgeMap: em}
		sj.Edges = make([][2]int32, sub.NumEdges())
		for i, e := range sub.Edges() {
			sj.Edges[i] = [2]int32{e.U, e.V}
		}
		resp.Subgraph = sj
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseVertex reads the {v} path value and bounds-checks it against the
// graph, writing the error response itself on failure.
func parseVertex(w http.ResponseWriter, r *http.Request, g *bicc.Graph) (int32, bool) {
	v64, err := strconv.ParseInt(r.PathValue("v"), 10, 32)
	if err != nil || v64 < 0 {
		writeError(w, http.StatusBadRequest, "bad vertex %q", r.PathValue("v"))
		return 0, false
	}
	if v64 >= int64(g.NumVertices()) {
		writeError(w, http.StatusNotFound, "no vertex %d (graph has %d)", v64, g.NumVertices())
		return 0, false
	}
	return int32(v64), true
}

func (q *shardQuery) observeLatency(start time.Time) {
	q.st.latency.Observe(time.Since(start))
}

// --- stats -----------------------------------------------------------------

// ShardingSnapshot is the /statsz sharding section, present only when
// EnableSharding has been called so a non-sharded server's /statsz is
// byte-identical to older builds.
type ShardingSnapshot struct {
	Queries         int64 `json:"queries"`
	Fallbacks       int64 `json:"fallbacks"`
	Sets            int   `json:"sets"`
	ResidentShards  int   `json:"resident_shards"`
	Bytes           int64 `json:"bytes"`
	Builds          int64 `json:"builds"`
	BuildFailures   int64 `json:"build_failures"`
	Recovered       int64 `json:"recovered"`
	Demotions       int64 `json:"demotions"`
	Promotions      int64 `json:"promotions"`
	PromoteFailures int64 `json:"promote_failures"`
	Invalidations   int64 `json:"invalidations"`
	SpillEntries    int   `json:"spill_entries"`
	SpillBytes      int64 `json:"spill_bytes"`
}

func (st *shardState) snapshot() *ShardingSnapshot {
	snap := &ShardingSnapshot{
		Queries:         st.queries.Load(),
		Fallbacks:       st.fallbacks.Load(),
		Sets:            st.mgr.Sets(),
		ResidentShards:  st.mgr.ResidentShards(),
		Bytes:           st.mgr.Bytes(),
		Builds:          st.mgr.Builds(),
		BuildFailures:   st.mgr.BuildFailures(),
		Recovered:       st.mgr.Recovered(),
		Demotions:       st.mgr.Demotions(),
		Promotions:      st.mgr.Promotions(),
		PromoteFailures: st.mgr.PromoteFailures(),
		Invalidations:   st.mgr.Invalidations(),
	}
	if st.spill != nil {
		snap.SpillEntries = st.spill.Len()
		snap.SpillBytes = st.spill.Bytes()
	}
	return snap
}
