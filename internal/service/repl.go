package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bicc/internal/durable"
	"bicc/internal/faults"
	"bicc/internal/repl"
)

// sitePromote fires once per registry entry during a standby's promotion
// fingerprint re-check. A KindKill rule here proves that a node dying
// mid-promotion leaves a state the NEXT promotion (or restart) recovers
// byte-identically — promotion is just PR 4 recovery plus a role flip, so
// it inherits recovery's idempotence. iter = entry index.
var sitePromote = faults.RegisterSite("repl.promote", false)

const (
	roleNone int32 = iota
	rolePrimary
	roleStandby
)

// ReplConfig wires a Server into a replication topology. Durability must be
// enabled first: replication ships the WAL, so there must be one.
type ReplConfig struct {
	// ListenAddr is the replication listener (host:port, ":0" picks a
	// port). A primary serves standbys here; a standby keeps it to start
	// its own listener at promotion. Empty on a standby means the promoted
	// node serves clients but accepts no followers.
	ListenAddr string
	// FollowAddr, when non-empty, starts the server as a warm standby
	// following the primary's replication listener at this address.
	FollowAddr string
	// Quorum is how many standby acks a write waits for before the client
	// is acknowledged, when followers are connected; <= 0 means 1. The
	// wait degrades (never fails) on timeout or when no follower is up —
	// the record is already durable locally.
	Quorum int
	// AckTimeout bounds the per-write quorum wait; <= 0 means 2s.
	AckTimeout time.Duration
	// RingSize is the primary's record retention for follower catch-up;
	// <= 0 means 8192.
	RingSize int
	// Logf receives replication lifecycle lines; nil disables them.
	Logf func(format string, args ...any)
}

// replState is a Server's live replication state, held through an atomic
// pointer like durability and sharding.
type replState struct {
	cfg ReplConfig
	d   *durability

	role  atomic.Int32
	epoch atomic.Uint64
	pri   atomic.Pointer[repl.Primary]
	stb   atomic.Pointer[repl.Standby]

	// mu serializes promotion and shutdown.
	mu sync.Mutex

	promotions     atomic.Int64
	quorumDegrades atomic.Int64
	promoteDropped atomic.Int64
	refollows      atomic.Int64
}

// EnableReplication starts the server in the role cfg implies: standby when
// FollowAddr is set, otherwise primary. Requires EnableDurability first; a
// second call is an error.
func (s *Server) EnableReplication(cfg ReplConfig) error {
	d := s.dur.Load()
	if d == nil {
		return fmt.Errorf("service: replication requires durability (call EnableDurability first)")
	}
	if s.repls.Load() != nil {
		return fmt.Errorf("service: replication already enabled")
	}
	rs := &replState{cfg: cfg, d: d}

	// The observer is installed for both roles: on a standby it publishes
	// nothing until promotion installs a Primary. It runs under the store
	// mutex, so published records are in exact WAL order.
	d.store.SetAppendObserver(func(kind byte, payload []byte) {
		if p := rs.pri.Load(); p != nil {
			p.Publish(kind, payload)
		}
	})

	if cfg.FollowAddr != "" {
		stb, err := repl.NewStandby(repl.StandbyConfig{
			PrimaryAddr: cfg.FollowAddr,
			Applier:     &replApplier{s: s, d: d},
			Logf:        cfg.Logf,
		})
		if err != nil {
			d.store.SetAppendObserver(nil)
			return err
		}
		rs.stb.Store(stb)
		rs.role.Store(roleStandby)
	} else {
		p, err := rs.newPrimary(s, 1)
		if err != nil {
			d.store.SetAppendObserver(nil)
			return err
		}
		rs.pri.Store(p)
		rs.epoch.Store(p.Epoch())
		rs.role.Store(rolePrimary)
	}
	rs.register(s)
	s.repls.Store(rs)
	return nil
}

// newPrimary builds the Primary for rs at the given epoch, with a snapshot
// callback that pairs the durable state with the replication cursor under
// the store mutex (appends publish under the same mutex, so the pairing is
// exact).
func (rs *replState) newPrimary(s *Server, epoch uint64) (*repl.Primary, error) {
	snapshot := func() ([]repl.StateRecord, uint64) {
		var recs []repl.StateRecord
		var seq uint64
		rs.d.store.View(func(state []durable.GraphRecord) {
			if p := rs.pri.Load(); p != nil {
				seq = p.Seq()
			}
			for _, gr := range state {
				recs = append(recs, repl.StateRecord{
					Kind: durable.RecGraphAdd, Payload: durable.EncodeGraphRecord(gr),
				})
			}
		})
		return recs, seq
	}
	return repl.NewPrimary(rs.cfg.ListenAddr, repl.PrimaryConfig{
		Epoch:      epoch,
		RingSize:   rs.cfg.RingSize,
		Quorum:     rs.cfg.Quorum,
		AckTimeout: rs.cfg.AckTimeout,
		Snapshot:   snapshot,
		Logf:       rs.cfg.Logf,
	})
}

// CloseReplication stops the replication machinery (both roles). Call after
// the HTTP server has stopped.
func (s *Server) CloseReplication() {
	rs := s.repls.Swap(nil)
	if rs == nil {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if stb := rs.stb.Swap(nil); stb != nil {
		stb.Stop()
	}
	if p := rs.pri.Swap(nil); p != nil {
		_ = p.Close()
	}
	rs.d.store.SetAppendObserver(nil)
}

// ReplAddr returns the replication listener's address ("" when not serving
// one) — the daemon logs it, tests dial it.
func (s *Server) ReplAddr() string {
	rs := s.repls.Load()
	if rs == nil {
		return ""
	}
	if p := rs.pri.Load(); p != nil {
		return p.Addr()
	}
	return ""
}

// replRole returns the current role constant.
func (s *Server) replRole() int32 {
	rs := s.repls.Load()
	if rs == nil {
		return roleNone
	}
	return rs.role.Load()
}

// rejectStandby answers writes on a read-only standby with 503 +
// Retry-After (the router retries against the primary), reporting whether
// it handled the request.
func (s *Server) rejectStandby(w http.ResponseWriter) bool {
	if s.replRole() != roleStandby {
		return false
	}
	w.Header().Set("Retry-After", s.retryAfterSeconds())
	writeError(w, http.StatusServiceUnavailable, "read-only standby: send writes to the primary")
	return true
}

// replWaitQuorum blocks an acknowledged write until the configured number
// of standbys have acked it (bounded by AckTimeout). It never fails the
// write: the record is durable locally, so a missing quorum only degrades
// to async replication and is counted.
func (s *Server) replWaitQuorum() {
	rs := s.repls.Load()
	if rs == nil {
		return
	}
	p := rs.pri.Load()
	if p == nil {
		return
	}
	if err := p.WaitQuorum(p.Seq()); err != nil {
		if err == repl.ErrQuorumTimeout {
			rs.quorumDegrades.Add(1)
		}
	}
}

// --- standby apply path ------------------------------------------------------

// replApplier replays shipped WAL records into the standby's own store and
// registry. Apply appends to the local WAL FIRST (fsync-before-ack, the
// same discipline as the primary's write path): when the ack goes out, the
// record survives the standby's own crash too.
type replApplier struct {
	s *Server
	d *durability
}

func (a *replApplier) Apply(kind byte, payload []byte) error {
	s := a.s
	switch kind {
	case durable.RecGraphAdd:
		gr, err := durable.DecodeGraphRecord(payload)
		if err != nil {
			return err
		}
		if err := a.d.store.AppendState(gr); err != nil {
			return err
		}
		s.installReplicated(gr)
	case durable.RecGraphRemove:
		fp := string(payload)
		if err := a.d.store.AppendRemove(fp); err != nil {
			return err
		}
		s.registry.Remove(fp)
		s.purgeDerived(fp)
	case durable.RecGraphDelta:
		rec, err := durable.DecodeDelta(payload)
		if err != nil {
			return err
		}
		g, _, ok := s.registry.AcquireInfo(rec.ID)
		if !ok {
			return fmt.Errorf("service: replicated delta for unknown graph %s", rec.ID)
		}
		ng, err := durable.ApplyDelta(g, rec)
		s.registry.Release(rec.ID)
		if err != nil {
			return err
		}
		if Fingerprint(ng) != rec.PostFP {
			return fmt.Errorf("service: replicated delta for %s gen %d: post-fingerprint mismatch", rec.ID, rec.Gen)
		}
		if err := a.d.store.AppendDelta(rec, ng); err != nil {
			return err
		}
		s.registry.Replace(rec.ID, ng, rec.Gen, rec.PostFP)
		s.purgeDerived(rec.ID)
	default:
		return fmt.Errorf("service: replicated record kind %d unknown", kind)
	}
	return nil
}

// Reset installs a snapshot baseline: registry entries not in the snapshot
// are removed, stale or missing ones (re)installed. Everything also lands
// in the local WAL so a restart recovers the same state.
func (a *replApplier) Reset(state []repl.StateRecord) error {
	s := a.s
	keep := map[string]bool{}
	decoded := make([]durable.GraphRecord, 0, len(state))
	for _, sr := range state {
		if sr.Kind != durable.RecGraphAdd {
			return fmt.Errorf("service: snapshot record kind %d unknown", sr.Kind)
		}
		gr, err := durable.DecodeGraphRecord(sr.Payload)
		if err != nil {
			return err
		}
		decoded = append(decoded, gr)
		keep[gr.FP] = true
	}
	for _, info := range s.registry.List() {
		if keep[info.Fingerprint] {
			continue
		}
		if err := a.d.store.AppendRemove(info.Fingerprint); err != nil {
			return err
		}
		s.registry.Remove(info.Fingerprint)
		s.purgeDerived(info.Fingerprint)
	}
	for _, gr := range decoded {
		if cur, ok := s.registry.Get(gr.FP); ok && cur.Generation == gr.Gen && currentCFP(cur) == gr.CFP {
			continue // already byte-identical; don't churn the WAL
		}
		if err := a.d.store.AppendState(gr); err != nil {
			return err
		}
		s.installReplicated(gr)
	}
	return nil
}

// currentCFP is the content fingerprint a registry entry implies.
func currentCFP(info GraphInfo) string {
	if info.Generation > 0 {
		return info.ContentFP
	}
	return info.Fingerprint
}

// installReplicated swaps a replicated graph record into the registry,
// purging anything derived from a previous incarnation of the id.
func (s *Server) installReplicated(gr durable.GraphRecord) {
	if cur, ok := s.registry.Get(gr.FP); ok {
		if cur.Generation == gr.Gen && currentCFP(cur) == gr.CFP {
			return
		}
		s.registry.Remove(gr.FP)
		s.purgeDerived(gr.FP)
	}
	if gr.Gen > 0 {
		s.registry.AddAt(gr.FP, gr.Name, gr.Graph, gr.Gen, gr.CFP)
	} else {
		s.registry.Add(gr.Name, gr.Graph)
	}
}

// purgeDerived drops every structure derived from fp's graph: maintained
// incremental state, cached results (memory + spill, all generations), and
// shard sets. Replication and deletes both route invalidation through here
// so the two paths can never diverge.
func (s *Server) purgeDerived(fp string) {
	s.incr.drop(fp)
	s.cache.DropGraph(fp)
	if sh := s.shards.Load(); sh != nil {
		sh.mgr.RemovePrefix(fp)
	}
}

// --- promotion ---------------------------------------------------------------

// PromoteReport summarizes a promotion for the admin response.
type PromoteReport struct {
	Role     string `json:"role"`
	Epoch    uint64 `json:"epoch"`
	Verified int    `json:"verified_graphs"`
	Dropped  int    `json:"dropped_graphs"`
	ReplAddr string `json:"repl_addr,omitempty"`
}

// Promote flips a standby into a primary: stop following, re-check every
// graph's content fingerprint (the PR 4 recovery discipline — replay-to-tip
// already happened because the apply path is synchronous), then start a
// replication listener under a new epoch so old-reign followers resync.
// Idempotent: promoting a primary reports its current state.
func (s *Server) Promote() (*PromoteReport, error) {
	rs := s.repls.Load()
	if rs == nil {
		return nil, fmt.Errorf("service: replication not enabled")
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.role.Load() == rolePrimary {
		rep := &PromoteReport{Role: "primary", Epoch: rs.epoch.Load()}
		if p := rs.pri.Load(); p != nil {
			rep.ReplAddr = p.Addr()
		}
		return rep, nil
	}

	var appliedSeq, oldEpoch uint64
	if stb := rs.stb.Swap(nil); stb != nil {
		stb.Stop()
		appliedSeq, oldEpoch = stb.AppliedSeq(), stb.Epoch()
	}

	// Fingerprint re-check of everything the WAL claims is live. A
	// mismatch means a diverged replay — serving it would be worse than
	// dropping it, exactly as at boot recovery.
	var state []durable.GraphRecord
	rs.d.store.View(func(st []durable.GraphRecord) {
		state = append(state, st...)
	})
	rep := &PromoteReport{Role: "primary"}
	for i, gr := range state {
		faults.Inject(nil, sitePromote, 0, i)
		want := gr.FP
		if gr.Gen > 0 {
			want = gr.CFP
		}
		if Fingerprint(gr.Graph) != want {
			_ = rs.d.store.AppendRemove(gr.FP)
			s.registry.Remove(gr.FP)
			s.purgeDerived(gr.FP)
			rep.Dropped++
			rs.promoteDropped.Add(1)
			continue
		}
		rep.Verified++
	}

	epoch := oldEpoch + 1
	if epoch < 2 {
		epoch = 2 // a promoted node is never reign 1
	}
	if rs.cfg.ListenAddr != "" {
		p, err := rs.newPrimary(s, epoch)
		if err != nil {
			// The listener failing (port taken, say) must not block
			// promotion: serving writes matters more than accepting
			// followers. The operator sees the log line.
			if rs.cfg.Logf != nil {
				rs.cfg.Logf("service: promotion: replication listener failed: %v", err)
			}
		} else {
			p.SetSeq(appliedSeq)
			rs.pri.Store(p)
			rep.ReplAddr = p.Addr()
		}
	}
	rs.epoch.Store(epoch)
	rs.role.Store(rolePrimary)
	rs.promotions.Add(1)
	rep.Epoch = epoch
	return rep, nil
}

// handlePromote serves POST /v1/admin/promote.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	rep, err := s.Promote()
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// --- retarget ----------------------------------------------------------------

// Refollow re-points a standby at a new primary's replication listener. The
// router calls this after promoting a peer so the surviving standbys do not
// chase their dead predecessor forever — reconnect backoff alone never
// fixes that, because StandbyConfig.PrimaryAddr is where the backoff keeps
// dialing. The old follow loop is stopped before the new one starts (never
// two appliers at once), and the new loop begins with an empty cursor, so
// its first connection performs a full snapshot resync against the new
// primary — mandatory anyway, since that primary's reign is new.
func (s *Server) Refollow(addr string) error {
	rs := s.repls.Load()
	if rs == nil {
		return fmt.Errorf("service: replication not enabled")
	}
	if addr == "" {
		return fmt.Errorf("service: follow address required")
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.role.Load() != roleStandby {
		return fmt.Errorf("service: not a standby (a primary does not follow; promote elsewhere instead)")
	}
	if old := rs.stb.Swap(nil); old != nil {
		old.Stop()
	}
	stb, err := repl.NewStandby(repl.StandbyConfig{
		PrimaryAddr: addr,
		Applier:     &replApplier{s: s, d: rs.d},
		Logf:        rs.cfg.Logf,
	})
	if err != nil {
		return err
	}
	rs.stb.Store(stb)
	rs.refollows.Add(1)
	if rs.cfg.Logf != nil {
		rs.cfg.Logf("service: standby now follows %s", addr)
	}
	return nil
}

// handleFollow serves POST /v1/admin/follow: {"addr": "host:port"}
// re-points a standby at a new primary's replication listener.
func (s *Server) handleFollow(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Addr string `json:"addr"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding follow request: %v", err)
		return
	}
	if err := s.Refollow(req.Addr); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"role": "standby", "following": req.Addr})
}

// --- metrics & statsz --------------------------------------------------------

// register exposes the replication series. They exist only when
// replication is enabled, so a standalone bccd's /metrics is unchanged.
func (rs *replState) register(s *Server) {
	reg := s.metrics
	reg.GaugeFunc("bicc_repl_role",
		"Replication role: 1 primary, 2 standby.",
		func() float64 { return float64(rs.role.Load()) })
	reg.GaugeFunc("bicc_repl_epoch",
		"Primary reign number the node is serving or following.",
		func() float64 { return float64(rs.epoch.Load()) })
	reg.GaugeFunc("bicc_repl_seq",
		"Last replication sequence assigned (primary).",
		func() float64 {
			if p := rs.pri.Load(); p != nil {
				return float64(p.Seq())
			}
			return 0
		})
	reg.GaugeFunc("bicc_repl_applied_seq",
		"Last replication sequence durably applied (standby).",
		func() float64 {
			if st := rs.stb.Load(); st != nil {
				return float64(st.AppliedSeq())
			}
			return 0
		})
	reg.GaugeFunc("bicc_repl_lag_records",
		"Worst connected follower's distance from the primary's tip, in records.",
		func() float64 {
			if p := rs.pri.Load(); p != nil {
				return float64(p.Lag())
			}
			return 0
		})
	reg.GaugeFunc("bicc_repl_followers",
		"Standbys connected to this primary.",
		func() float64 {
			if p := rs.pri.Load(); p != nil {
				return float64(p.Followers())
			}
			return 0
		})
	reg.CounterVec("bicc_repl_shipped_total",
		"WAL records shipped to followers.").Func(func() int64 {
		if p := rs.pri.Load(); p != nil {
			return p.Shipped()
		}
		return 0
	})
	reg.CounterVec("bicc_repl_acks_total",
		"Follower acks received.").Func(func() int64 {
		if p := rs.pri.Load(); p != nil {
			return p.Acks()
		}
		return 0
	})
	reg.CounterVec("bicc_repl_resyncs_total",
		"Full snapshot resyncs served or performed.").Func(func() int64 {
		n := int64(0)
		if p := rs.pri.Load(); p != nil {
			n += p.Resyncs()
		}
		if st := rs.stb.Load(); st != nil {
			n += st.Resyncs()
		}
		return n
	})
	reg.CounterVec("bicc_repl_applied_total",
		"Replicated records durably applied (standby).").Func(func() int64 {
		if st := rs.stb.Load(); st != nil {
			return st.AppliedRecords()
		}
		return 0
	})
	reg.CounterVec("bicc_repl_quorum_timeouts_total",
		"Writes whose standby-ack wait timed out and degraded to async.").Func(rs.quorumDegrades.Load)
	reg.CounterVec("bicc_repl_promotions_total",
		"Standby-to-primary promotions performed.").Func(rs.promotions.Load)
	reg.CounterVec("bicc_repl_refollows_total",
		"Times this standby was re-pointed at a new primary.").Func(rs.refollows.Load)
}

// ReplSnapshot is the /statsz replication section, present only when
// replication is enabled. applied_seq is what the router's failover logic
// compares across standbys.
type ReplSnapshot struct {
	Role           string              `json:"role"`
	Epoch          uint64              `json:"epoch"`
	Seq            uint64              `json:"seq"`
	AppliedSeq     uint64              `json:"applied_seq"`
	Lag            uint64              `json:"lag_records"`
	Connected      bool                `json:"connected"`
	Followers      []repl.FollowerInfo `json:"followers,omitempty"`
	Shipped        int64               `json:"shipped_records"`
	Acks           int64               `json:"acks"`
	Resyncs        int64               `json:"resyncs"`
	Gaps           int64               `json:"gaps"`
	AppliedRecords int64               `json:"applied_records"`
	ApplyErrors    int64               `json:"apply_errors"`
	QuorumTimeouts int64               `json:"quorum_timeouts"`
	Promotions     int64               `json:"promotions"`
	PromoteDropped int64               `json:"promote_dropped_graphs"`
	Refollows      int64               `json:"refollows"`
	ReplAddr       string              `json:"repl_addr,omitempty"`
}

func (rs *replState) snapshot() *ReplSnapshot {
	snap := &ReplSnapshot{
		Epoch:          rs.epoch.Load(),
		QuorumTimeouts: rs.quorumDegrades.Load(),
		Promotions:     rs.promotions.Load(),
		PromoteDropped: rs.promoteDropped.Load(),
		Refollows:      rs.refollows.Load(),
	}
	switch rs.role.Load() {
	case rolePrimary:
		snap.Role = "primary"
	case roleStandby:
		snap.Role = "standby"
	}
	if p := rs.pri.Load(); p != nil {
		snap.Seq = p.Seq()
		snap.Lag = p.Lag()
		snap.Followers = p.FollowerInfos()
		snap.Shipped = p.Shipped()
		snap.Acks = p.Acks()
		snap.Resyncs += p.Resyncs()
		snap.ReplAddr = p.Addr()
		// A primary's own tip is by definition applied locally; publishing
		// it as applied_seq lets the router compare nodes uniformly.
		snap.AppliedSeq = p.Seq()
	}
	if st := rs.stb.Load(); st != nil {
		snap.AppliedSeq = st.AppliedSeq()
		snap.Connected = st.Connected()
		snap.Gaps = st.Gaps()
		snap.AppliedRecords = st.AppliedRecords()
		snap.ApplyErrors = st.ApplyErrors()
		snap.Resyncs += st.Resyncs()
		if snap.Epoch == 0 {
			snap.Epoch = st.Epoch()
		}
	}
	return snap
}
