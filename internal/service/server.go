// Package service implements bccd, the biconnected-components query
// service: a long-lived HTTP/JSON front end over the bicc engines that
// amortizes graph loading and computation across many callers.
//
// Three mechanisms protect and accelerate the engine:
//
//   - a content-addressed graph Registry (upload once, query many times,
//     reference-counted LRU eviction under a byte budget);
//   - a single-flight ResultCache keyed by (graph fingerprint, algorithm,
//     procs), so a thundering herd of identical queries runs the engine
//     exactly once;
//   - bounded Admission (worker pool + queue) with per-request context
//     deadlines threaded down into the engines' parallel loops, and 429 +
//     Retry-After once the queue is full.
//
// The service is fault-isolated from the engines: engine panics are
// contained by the parallel runtime and arrive here as typed errors, a
// per-algorithm circuit breaker routes queries away from a parallel engine
// that keeps faulting (open after N consecutive faults, half-open probes
// after a cooldown), degraded results are never cached, and a
// panic-recovery middleware turns handler bugs into 500s instead of killed
// connections. /healthz reports "degraded" while any breaker is open and
// "draining" during graceful shutdown.
//
// Endpoints: POST/GET/DELETE /v1/graphs, POST /v1/graphs/{fp}/edges
// (batched edge mutations), POST /v1/bcc, GET /healthz, GET /statsz.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"path"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"bicc"
	"bicc/internal/graph"
	"bicc/internal/obs"
	"bicc/internal/par"
)

// Config tunes a Server. The zero value picks sane defaults for every
// field.
type Config struct {
	// Workers bounds concurrent engine computations; <= 0 means
	// max(GOMAXPROCS/2, 1) so one computation's internal parallelism still
	// has cores to run on.
	Workers int
	// Queue bounds computations waiting for a worker; < 0 means 4*Workers.
	Queue int
	// CacheEntries bounds retained query results; <= 0 means 256.
	CacheEntries int
	// MaxGraphBytes bounds the registry's resident size; <= 0 means 1 GiB.
	MaxGraphBytes int64
	// MaxBodyBytes bounds the request body of a graph upload and of a BCC
	// query; oversize requests get 413. <= 0 means 256 MiB.
	MaxBodyBytes int64
	// DefaultTimeout applies to queries that set no timeout_ms; <= 0 means
	// 60 s.
	DefaultTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses; <= 0 means 1 s.
	RetryAfter time.Duration
	// AllowLocalFiles enables POST /v1/graphs/open, which reads graph files
	// from the server's filesystem. Off by default: a network-facing daemon
	// must not be a file-disclosure oracle.
	AllowLocalFiles bool
	// BreakerThreshold is the number of consecutive engine faults that opens
	// an algorithm's circuit breaker; <= 0 means 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting a
	// half-open probe through; <= 0 means 15 s.
	BreakerCooldown time.Duration
	// AttemptTimeout bounds each parallel engine attempt under the fallback
	// policy; <= 0 means half the query deadline is left to the engine's own
	// context (no separate per-attempt bound).
	AttemptTimeout time.Duration
	// NoFallback disables the sequential fallback policy: engine faults are
	// returned to clients as errors instead of degraded results. Breakers
	// still track faults.
	NoFallback bool
	// IncrThreshold is the dirty-region size ratio above which an edge
	// mutation degrades to a full recompute instead of a block-scoped
	// rebuild; <= 0 means incr.DefaultThreshold, >= 1 never degrades on
	// size.
	IncrThreshold float64
	// PlanMode selects how Auto queries resolve: PlanOff ("" or "off", the
	// default) keeps the static §4 rule, PlanAdaptive plans engine and
	// parallelism per request from graph features and observed latencies,
	// PlanFrozen plans from the prior alone (deterministic). See
	// ParsePlanMode.
	PlanMode string
	// Compute runs one BCC query. Nil means bicc.BiconnectedComponentsCtx;
	// tests substitute instrumented engines.
	Compute func(ctx context.Context, g *bicc.Graph, opt *bicc.Options) (*bicc.Result, error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0) / 2
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.Queue < 0 {
		c.Queue = 4 * c.Workers
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.MaxGraphBytes <= 0 {
		c.MaxGraphBytes = 1 << 30
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 15 * time.Second
	}
	if c.Compute == nil {
		c.Compute = func(ctx context.Context, g *bicc.Graph, opt *bicc.Options) (*bicc.Result, error) {
			return bicc.BiconnectedComponentsCtx(ctx, g, opt)
		}
	}
	return c
}

// Server is the bccd request handler.
type Server struct {
	cfg       Config
	registry  *Registry
	cache     *ResultCache
	admission *Admission
	// metrics is the server's private obs registry; server-scoped counters
	// live here (not on obs.Default) so concurrently-constructed servers —
	// one per test, say — never share instruments. /metrics merges it with
	// the process-wide registry.
	metrics *obs.Registry
	stats   Stats
	// breakers guard the parallel algorithms (and auto, which resolves to
	// one of them); the sequential engine has none — it is the path of last
	// resort.
	breakers map[string]*Breaker
	draining atomic.Bool
	// dur is the durable state when EnableDurability has been called, nil
	// otherwise; the disabled path costs one atomic load per touch point.
	dur atomic.Pointer[durability]
	// shards is the shard-by-component query state when EnableSharding has
	// been called, nil otherwise — the same zero-cost-off discipline as dur.
	shards atomic.Pointer[shardState]
	// repls is the replication state when EnableReplication has been
	// called, nil otherwise.
	repls atomic.Pointer[replState]
	// scrubs is the self-healing scrubber when EnableScrub has been called,
	// nil otherwise.
	scrubs atomic.Pointer[scrubState]
	// incr is the incremental-mutation subsystem: per-graph maintained
	// decompositions fed by POST /v1/graphs/{fp}/edges. Always on — an
	// unmutated server pays one nil-map lookup per query.
	incr *incrState
	// plans is the adaptive query planner when Config.PlanMode enables it,
	// nil otherwise; the off path costs one atomic load per Auto query.
	plans atomic.Pointer[planState]
}

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		registry:  NewRegistry(cfg.MaxGraphBytes),
		cache:     NewResultCache(cfg.CacheEntries),
		admission: NewAdmission(cfg.Workers, cfg.Queue),
		metrics:   obs.NewRegistry(),
		breakers:  map[string]*Breaker{},
	}
	s.stats = newStats(s.metrics)
	s.incr = newIncrState(s.metrics, cfg.IncrThreshold)
	for _, a := range []bicc.Algorithm{bicc.Auto, bicc.TVSMP, bicc.TVOpt, bicc.TVFilter, bicc.FastBCC} {
		s.breakers[a.String()] = NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	if mode, err := ParsePlanMode(cfg.PlanMode); err == nil && mode != PlanOff {
		// Planner construction comes after breakers and stats: its candidate
		// filter and history seed close over both.
		s.plans.Store(s.newPlanState(mode))
	}
	s.registerLiveMetrics()
	return s
}

// registerLiveMetrics exposes state other components already maintain —
// registry occupancy, admission load, breaker status — as callback-backed
// series sampled at scrape time, so /metrics and /statsz can never drift
// apart.
func (s *Server) registerLiveMetrics() {
	reg := s.metrics
	reg.CounterVec("bicc_graphs_evicted_total",
		"Graphs evicted from the registry to meet the byte budget.").Func(s.registry.Evicted)
	reg.GaugeFunc("bicc_queue_depth",
		"Computations waiting for an admission worker.",
		func() float64 { return float64(s.admission.QueueDepth()) })
	reg.GaugeFunc("bicc_inflight",
		"Computations currently holding an admission worker.",
		func() float64 { return float64(s.admission.Inflight()) })
	reg.GaugeFunc("bicc_cached_results",
		"Completed query results retained by the cache.",
		func() float64 { return float64(s.cache.Len()) })
	reg.GaugeFunc("bicc_graphs",
		"Graphs resident in the registry.",
		func() float64 { return float64(s.registry.Len()) })
	reg.GaugeFunc("bicc_graph_bytes",
		"Bytes of graph data resident in the registry.",
		func() float64 { return float64(s.registry.Bytes()) })
	opens := reg.CounterVec("bicc_breaker_opens_total",
		"Times an algorithm's circuit breaker has opened.", "algorithm")
	state := reg.GaugeVec("bicc_breaker_state",
		"Circuit breaker state by algorithm: 0 closed, 1 open, 2 half-open.", "algorithm")
	for name, b := range s.breakers {
		opens.Func(b.Opens, name)
		state.Func(func() float64 { return float64(b.State()) }, name)
	}
}

// Metrics returns the server's private obs registry, for embedders that
// compose their own exposition handler.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// MetricsHandler serves the Prometheus text exposition of the process-wide
// registry (engine, parallel runtime, and fault-injection metrics) merged
// with this server's request metrics.
func (s *Server) MetricsHandler() http.Handler {
	return obs.Handler(obs.Default(), s.metrics)
}

// Registry exposes the graph registry (the daemon preloads graphs through
// it).
func (s *Server) Registry() *Registry { return s.registry }

// Handler returns the HTTP routing for all bccd endpoints, wrapped in the
// drain gate and the panic-recovery middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.Handle("GET /metrics", s.MetricsHandler())
	mux.HandleFunc("POST /v1/graphs", s.handleUpload)
	mux.HandleFunc("POST /v1/graphs/open", s.handleOpen)
	mux.HandleFunc("GET /v1/graphs", s.handleList)
	mux.HandleFunc("GET /v1/graphs/{fp}", s.handleGetGraph)
	mux.HandleFunc("DELETE /v1/graphs/{fp}", s.handleDeleteGraph)
	mux.HandleFunc("POST /v1/graphs/{fp}/edges", s.handleMutate)
	mux.HandleFunc("POST /v1/graph/{fp}/edges", s.handleMutate) // singular alias
	mux.HandleFunc("POST /v1/bcc", s.handleBCC)
	mux.HandleFunc("GET /v1/block/{id}", s.handleBlock)
	mux.HandleFunc("GET /v1/vertex/{v}/blocks", s.handleVertexBlocks)
	mux.HandleFunc("GET /v1/vertex/{v}/articulation", s.handleVertexArticulation)
	mux.HandleFunc("POST /v1/admin/promote", s.handlePromote)
	mux.HandleFunc("POST /v1/admin/follow", s.handleFollow)
	mux.HandleFunc("POST /v1/admin/scrub", s.handleScrub)
	return PanicRecovery(s.drainGate(mux), func() { s.stats.HandlerPanics.Add(1) })
}

// retryAfterSeconds renders the Retry-After hint with uniform jitter in
// [base/2, 3*base/2]: a burst of rejected clients that all honor the header
// literally must not come back as one synchronized wave.
func (s *Server) retryAfterSeconds() string {
	base := s.cfg.RetryAfter
	j := base/2 + time.Duration(rand.Int64N(int64(base)+1))
	secs := int((j + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// --- helpers ---------------------------------------------------------------

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func parseAlgorithm(s string) (bicc.Algorithm, error) {
	if s == "" {
		return bicc.Auto, nil
	}
	// The library's parser owns the name set (and the error that lists the
	// valid presets), so the service can never drift from new engines.
	return bicc.ParseAlgorithm(s)
}

// readGraph parses a graph from r. With normalize set, self loops and
// duplicate edges are dropped (and counted) instead of rejected.
func readGraph(r io.Reader, format string, normalize bool) (g *bicc.Graph, loops, dups int, err error) {
	if !normalize {
		switch format {
		case "", "text":
			g, err = bicc.ReadGraph(r)
		case "dimacs":
			g, err = bicc.ReadGraphDIMACS(r)
		case "binary":
			g, err = bicc.ReadGraphBinary(r)
		default:
			err = fmt.Errorf("unknown format %q", format)
		}
		return g, 0, 0, err
	}
	var el *graph.EdgeList
	switch format {
	case "", "text":
		el, err = graph.ReadLenient(r)
	case "dimacs":
		el, err = graph.ReadDIMACS(r)
	case "binary":
		el, err = graph.ReadBinaryLenient(r)
	default:
		err = fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return nil, 0, 0, err
	}
	return bicc.NewGraphNormalized(int(el.N), el.Edges)
}

// --- graph endpoints -------------------------------------------------------

type graphUploadResponse struct {
	GraphInfo
	Existed bool `json:"existed"`
	Loops   int  `json:"loops_removed,omitempty"`
	Dups    int  `json:"duplicates_removed,omitempty"`
}

// handleUpload ingests a graph from the request body.
// Query parameters: format=text|dimacs|binary (default text),
// normalize=1 to drop self loops / duplicate edges instead of rejecting
// them, name=<label>.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if s.rejectStandby(w) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	q := r.URL.Query().Get("normalize")
	g, loops, dups, err := readGraph(body, r.URL.Query().Get("format"), q == "1" || q == "true")
	if err != nil {
		// A body truncated at the cap mid-record surfaces as a parse error
		// before the reader reports the cap; probing the remaining body
		// distinguishes "over the limit" from a genuinely malformed graph.
		var mbe *http.MaxBytesError
		if _, perr := body.Read(make([]byte, 1)); perr != nil && errors.As(perr, &mbe) {
			err = perr
		}
		if writeTooLarge(w, err, s.cfg.MaxBodyBytes) {
			return
		}
		writeError(w, http.StatusBadRequest, "parsing graph: %v", err)
		return
	}
	s.registerGraph(w, g, r.URL.Query().Get("name"), loops, dups)
}

// writeTooLarge answers 413 if err came from the MaxBytesReader body cap,
// reporting whether it handled the error.
func writeTooLarge(w http.ResponseWriter, err error, limit int64) bool {
	var mbe *http.MaxBytesError
	if !errors.As(err, &mbe) {
		return false
	}
	writeError(w, http.StatusRequestEntityTooLarge,
		"request body exceeds %d bytes (raise -max-body-bytes)", limit)
	return true
}

type openRequest struct {
	Path      string `json:"path"`
	Format    string `json:"format"`
	Normalize bool   `json:"normalize"`
	Name      string `json:"name"`
}

// handleOpen loads a graph from a file on the server's filesystem (gated by
// Config.AllowLocalFiles). The format defaults by extension: .bin/.bicc →
// binary, .col/.dimacs → dimacs, anything else text.
func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	if s.rejectStandby(w) {
		return
	}
	if !s.cfg.AllowLocalFiles {
		writeError(w, http.StatusForbidden, "local file loading is disabled (start bccd with -allow-local-files)")
		return
	}
	var req openRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	format := req.Format
	if format == "" {
		switch strings.ToLower(path.Ext(req.Path)) {
		case ".bin", ".bicc":
			format = "binary"
		case ".col", ".dimacs":
			format = "dimacs"
		default:
			format = "text"
		}
	}
	f, err := os.Open(req.Path)
	if err != nil {
		writeError(w, http.StatusBadRequest, "opening file: %v", err)
		return
	}
	defer f.Close()
	g, loops, dups, err := readGraph(f, format, req.Normalize)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing %s: %v", req.Path, err)
		return
	}
	name := req.Name
	if name == "" {
		name = path.Base(req.Path)
	}
	s.registerGraph(w, g, name, loops, dups)
}

// registerGraph registers g and answers with the entry's info.
func (s *Server) registerGraph(w http.ResponseWriter, g *bicc.Graph, name string, loops, dups int) {
	fp, existed, err := s.AddGraph(name, g)
	if err != nil {
		// Not persisted means not acknowledged: the client must not
		// believe in a graph that a restart would forget.
		writeError(w, http.StatusServiceUnavailable, "persisting graph: %v", err)
		return
	}
	s.stats.GraphUploads.Add(1)
	info, _ := s.registry.Get(fp)
	writeJSON(w, http.StatusOK, graphUploadResponse{GraphInfo: info, Existed: existed, Loops: loops, Dups: dups})
}

// AddGraph registers g in the registry, first appending it to the WAL when
// durability is enabled: a graph is acknowledged only once it is on disk.
// A crash between append and registry insert replays the record at the
// next boot — at-least-once, never lost-after-ack. Used by the upload
// handlers and by the daemon's -load preloading.
func (s *Server) AddGraph(name string, g *bicc.Graph) (fp string, existed bool, err error) {
	fp = Fingerprint(g)
	if d := s.dur.Load(); d != nil {
		if _, ok := s.registry.Get(fp); !ok {
			if err := d.store.AppendAdd(fp, name, g); err != nil {
				return "", false, err
			}
			// Replication quorum: wait (bounded) for a standby to have the
			// record before acking the client. Degrades, never fails — the
			// record is already durable here.
			s.replWaitQuorum()
		}
	}
	fp, existed = s.registry.Add(name, g)
	return fp, existed, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.registry.List()})
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	info, ok := s.registry.Get(fp)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", fp)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	if s.rejectStandby(w) {
		return
	}
	fp := r.PathValue("fp")
	if _, ok := s.registry.Get(fp); !ok {
		writeError(w, http.StatusNotFound, "no graph %q", fp)
		return
	}
	// Delete follows the same discipline as add: durable first, then the
	// resident state, so an acknowledged delete survives a crash. A WAL
	// remove for a fingerprint that raced away is a harmless no-op at
	// replay.
	if d := s.dur.Load(); d != nil {
		if err := d.store.AppendRemove(fp); err != nil {
			writeError(w, http.StatusServiceUnavailable, "persisting removal: %v", err)
			return
		}
		s.replWaitQuorum()
	}
	if !s.registry.Remove(fp) {
		writeError(w, http.StatusNotFound, "no graph %q", fp)
		return
	}
	// Incremental state, cached results, and shard sets all die with the
	// graph: generations restart at 0 if the same content is re-uploaded,
	// so anything keyed under a non-zero generation of this id must not
	// survive to be confused with the next incarnation's generations.
	s.purgeDerived(fp)
	w.WriteHeader(http.StatusNoContent)
}

// --- query endpoint --------------------------------------------------------

type bccRequest struct {
	Graph     string   `json:"graph"` // fingerprint from /v1/graphs
	Algorithm string   `json:"algorithm,omitempty"`
	Procs     int      `json:"procs,omitempty"`
	TimeoutMs int64    `json:"timeout_ms,omitempty"`
	Include   []string `json:"include,omitempty"` // components, articulation, bridges, blockcut
}

// queryResult is the cacheable part of a BCC response: everything derived
// from the decomposition, computed once and shared by all coalesced and
// cached callers.
type queryResult struct {
	Algorithm          string           `json:"algorithm"`
	NumComponents      int              `json:"num_components"`
	NumArticulation    int              `json:"num_articulation_points"`
	NumBridges         int              `json:"num_bridges"`
	ElapsedNs          int64            `json:"elapsed_ns"`
	Phases             []map[string]any `json:"phases,omitempty"`
	ArticulationPoints []int32          `json:"articulation_points,omitempty"`
	Bridges            []int32          `json:"bridges,omitempty"`
	Components         [][]int32        `json:"components,omitempty"`
	BlockCut           *blockCutJSON    `json:"blockcut,omitempty"`
	// Degraded marks a result produced by the sequential fallback (engine
	// fault or open circuit breaker) instead of the requested parallel
	// engine. Degraded results are correct but are never cached.
	Degraded      bool   `json:"degraded,omitempty"`
	DegradedCause string `json:"degraded_cause,omitempty"`
	// Incr marks a result derived from the maintained incremental labels of
	// a mutated graph instead of an engine run. Identical bytes either way;
	// the flag is for observability.
	Incr bool `json:"incr,omitempty"`
	// Trace is the span breakdown of the computation that produced this
	// result (admission wait, engine attempts, pipeline phases). It rides
	// the cache entry but is only serialized for requests asking ?trace=1.
	Trace *obs.TraceExport `json:"trace,omitempty"`
	// edgeComp is the raw per-edge component labeling the views above were
	// derived from. Unexported so it never serializes in responses; the
	// durability layer persists it alongside the JSON view so recovered
	// results can be re-checked with bicc.Verify.
	edgeComp []int32
}

type blockCutJSON struct {
	NumBlocks   int     `json:"num_blocks"`
	NumNodes    int     `json:"num_nodes"`
	NumEdges    int     `json:"num_tree_edges"`
	CutVertices []int32 `json:"cut_vertices"`
	LeafBlocks  []int32 `json:"leaf_blocks"`
}

// bccResponse embeds queryResult by value: encoding/json cannot populate an
// embedded pointer to an unexported type when tests decode responses.
type bccResponse struct {
	queryResult
	Graph  string `json:"graph"`
	Cached bool   `json:"cached"`
	// Plan echoes the planner's decision for ?explain=1 requests.
	Plan *planExplain `json:"plan,omitempty"`
}

func (s *Server) handleBCC(w http.ResponseWriter, r *http.Request) {
	s.stats.Requests.Add(1)
	var req bccRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		if writeTooLarge(w, err, s.cfg.MaxBodyBytes) {
			return
		}
		writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	algo, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	include := map[string]bool{}
	for _, inc := range req.Include {
		switch inc {
		case "components", "articulation", "bridges", "blockcut":
			include[inc] = true
		default:
			writeError(w, http.StatusBadRequest, "unknown include %q", inc)
			return
		}
	}
	procs := req.Procs
	if procs < 0 {
		procs = 0
	}
	// Graph pointer and generation come from one registry transaction: a
	// concurrent mutation must never pair the old edge list with the new
	// generation in a cache key.
	g, info, ok := s.registry.AcquireInfo(req.Graph)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q (upload it via POST /v1/graphs first)", req.Graph)
		return
	}
	defer s.registry.Release(req.Graph)

	// Auto queries resolve to a concrete (engine, procs) pair before the
	// cache lookup: the planner (when enabled) decides here, exactly once
	// per request, so the cache key, the dispatched engine, and the explain
	// echo can never disagree — and planned queries share cache entries
	// with explicit requests for the same engine.
	eq := r.URL.Query().Get("explain")
	explain := eq == "1" || eq == "true"
	runAlgo, runProcs := algo, procs
	var planEcho *planExplain
	if ps := s.plans.Load(); ps != nil && algo == bicc.Auto {
		a, p, f, d := ps.planDecide(g, procs, explain)
		runAlgo, runProcs = a, p
		if explain {
			planEcho = &planExplain{Mode: ps.mode, Engine: a.String(), Procs: p, Features: &f, Decision: &d}
		}
	} else if explain {
		resolved := bicc.ResolveAlgorithm(g, algo, procs)
		planEcho = &planExplain{Mode: PlanOff, Engine: resolved.String(), Procs: par.Procs(procs)}
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	key := resultKey{fp: req.Graph, gen: info.Generation, algo: runAlgo, procs: runProcs}
	res, err, outcome := s.cache.Do(ctx, key, func(cctx context.Context) (*queryResult, error) {
		// Mutated graphs carry maintained labels: derive the answer from
		// them instead of running an engine when they describe exactly the
		// acquired graph pointer.
		if qr, ok := s.incrServe(req.Graph, g, runAlgo, runProcs, include); ok {
			return qr, nil
		}
		return s.compute(cctx, g, runAlgo, runProcs, include)
	})
	switch outcome {
	case OutcomeHit:
		s.stats.CacheHits.Add(1)
	case OutcomeMiss:
		s.stats.CacheMisses.Add(1)
	case OutcomeCoalesced:
		s.stats.Coalesced.Add(1)
	}
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.stats.Rejected.Add(1)
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeError(w, http.StatusTooManyRequests, "admission queue full, retry later")
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			s.stats.Canceled.Add(1)
			// 503 with Retry-After: the deadline expired before the engine
			// finished, typically because the box is saturated.
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeError(w, http.StatusServiceUnavailable, "query did not finish in time: %v", err)
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	resp := bccResponse{queryResult: *res, Graph: req.Graph, Cached: outcome == OutcomeHit, Plan: planEcho}
	if err := s.fillIncludes(&resp.queryResult, g, include); err != nil {
		writeError(w, http.StatusInternalServerError, "deriving include views: %v", err)
		return
	}
	if q := r.URL.Query().Get("trace"); q != "1" && q != "true" {
		// The copy above leaves the cached entry's trace intact.
		resp.Trace = nil
	}
	writeJSON(w, http.StatusOK, resp)
}

// fillIncludes completes a response copy with any include view the cached
// entry does not carry. The result cache is keyed by (graph, generation,
// algorithm, procs) — not by the include set — so a hit may have been
// created by a query that asked for fewer views, or by a scrub repair,
// which asks for none. Deriving the missing views from the persisted
// labeling keeps answers independent of which query populated the cache.
// Only the copy is written; the shared entry stays untouched.
func (s *Server) fillIncludes(qr *queryResult, g *bicc.Graph, include map[string]bool) error {
	missing := (include["articulation"] && qr.ArticulationPoints == nil) ||
		(include["bridges"] && qr.Bridges == nil) ||
		(include["components"] && qr.Components == nil) ||
		(include["blockcut"] && qr.BlockCut == nil)
	if !missing {
		return nil
	}
	if qr.edgeComp == nil {
		return fmt.Errorf("result carries no edge labeling")
	}
	algo, err := bicc.ParseAlgorithm(qr.Algorithm)
	if err != nil {
		return err
	}
	res, err := bicc.ReconstructResult(g, algo, qr.edgeComp)
	if err != nil {
		return err
	}
	if include["articulation"] && qr.ArticulationPoints == nil {
		qr.ArticulationPoints = res.ArticulationPoints()
	}
	if include["bridges"] && qr.Bridges == nil {
		qr.Bridges = res.Bridges()
	}
	if include["components"] && qr.Components == nil {
		qr.Components = res.Components()
	}
	if include["blockcut"] && qr.BlockCut == nil {
		t := res.BlockCutTree()
		qr.BlockCut = &blockCutJSON{
			NumBlocks:   t.NumBlocks(),
			NumNodes:    t.NumNodes(),
			NumEdges:    t.NumTreeEdges(),
			CutVertices: t.CutVertices(),
			LeafBlocks:  t.LeafBlocks(),
		}
	}
	return nil
}

// runEngine admits and runs one engine computation under the circuit
// breaker and the sequential-fallback policy, recording the fault-isolation
// stats. It is the shared trunk of the monolithic /v1/bcc path and the
// shard-build path: both must see identical breaker, fallback, and
// accounting behaviour. routedCause is non-empty when an open breaker
// redirected the request to the sequential engine.
func (s *Server) runEngine(ctx context.Context, g *bicc.Graph, algo bicc.Algorithm, procs int) (res *bicc.Result, elapsed time.Duration, routedCause string, err error) {
	// Auto still arriving here came from an internal caller — the
	// incremental degrade-to-full path, shard builds — not /v1/bcc, which
	// resolves before its cache lookup. Plan it the same way.
	if algo == bicc.Auto {
		if ps := s.plans.Load(); ps != nil {
			algo, procs = ps.planResolve(g, procs)
		}
	}
	_, adm := obs.StartSpan(ctx, "admission")
	release, err := s.admission.Acquire(ctx)
	adm.End()
	if err != nil {
		return nil, 0, "", err
	}
	defer release()
	if err := ctx.Err(); err != nil {
		return nil, 0, "", err
	}
	s.stats.Computations.Add(1)

	runAlgo := algo
	br := s.breakers[algo.String()]
	if br != nil && !br.Allow() {
		// The breaker is open: don't burn workers on a path that keeps
		// faulting, answer from the sequential engine instead.
		s.stats.BreakerRouted.Add(1)
		runAlgo = bicc.Sequential
		routedCause = fmt.Sprintf("circuit breaker open for %s", algo)
		br = nil // a routed-around request carries no signal for the breaker
	}
	opt := &bicc.Options{Algorithm: runAlgo, Procs: procs}
	if !s.cfg.NoFallback {
		opt.Fallback = bicc.FallbackSequential
		opt.AttemptTimeout = s.cfg.AttemptTimeout
	}

	start := time.Now()
	res, err = s.safeCompute(ctx, g, opt)
	elapsed = time.Since(start)

	// Breaker accounting: caller-side cancellation says nothing about engine
	// health and is not recorded; everything else (clean, error, panic,
	// degraded fallback) is.
	if br != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		br.Record(err != nil || (res != nil && res.Degraded))
	}
	var pe *par.PanicError
	if errors.As(err, &pe) {
		s.stats.EnginePanics.Add(1)
	}
	if err != nil {
		return nil, elapsed, routedCause, err
	}
	if res.Degraded {
		s.stats.Fallbacks.Add(1)
		if errors.As(res.DegradedCause, &pe) {
			s.stats.EnginePanics.Add(1)
		}
	}
	if h := s.stats.perAlgorithm[res.Algorithm.String()]; h != nil {
		h.Observe(elapsed)
	}
	// Clean, representative runs feed the planner's online model. Degraded
	// and breaker-routed runs are excluded: their latency reflects the
	// failure path, not the engine the planner would be scoring.
	if ps := s.plans.Load(); ps != nil && routedCause == "" && !res.Degraded {
		ps.planObserve(g, res.Algorithm.String(), procs, elapsed)
	}
	return res, elapsed, routedCause, nil
}

// compute admits and runs one engine computation, then derives every
// cacheable view the include set asks for. It is the fault-isolation
// boundary of the service: the circuit breaker decides whether the parallel
// path may be used at all, the engine runs under the sequential-fallback
// policy, and outcomes feed the breaker and the fault counters.
func (s *Server) compute(ctx context.Context, g *bicc.Graph, algo bicc.Algorithm, procs int, include map[string]bool) (*queryResult, error) {
	// Every computation is traced: admission wait, each engine attempt, and
	// the pipeline phases inside it. The trace rides the cached result and
	// is serialized only for ?trace=1 requests.
	tr := obs.NewTrace()
	ctx, root := obs.StartSpan(obs.ContextWithTrace(ctx, tr), "bcc")
	defer root.End()

	res, elapsed, routedCause, err := s.runEngine(ctx, g, algo, procs)
	if err != nil {
		return nil, err
	}
	cuts := res.ArticulationPoints()
	bridges := res.Bridges()
	out := &queryResult{
		Algorithm:       res.Algorithm.String(),
		NumComponents:   res.NumComponents,
		NumArticulation: len(cuts),
		NumBridges:      len(bridges),
		ElapsedNs:       int64(elapsed),
		edgeComp:        res.EdgeComponent,
	}
	for _, ph := range res.Phases {
		out.Phases = append(out.Phases, map[string]any{"name": ph.Name, "ns": int64(ph.Duration)})
	}
	if include["articulation"] {
		out.ArticulationPoints = cuts
	}
	if include["bridges"] {
		out.Bridges = bridges
	}
	if include["components"] {
		out.Components = res.Components()
	}
	if include["blockcut"] {
		t := res.BlockCutTree()
		out.BlockCut = &blockCutJSON{
			NumBlocks:   t.NumBlocks(),
			NumNodes:    t.NumNodes(),
			NumEdges:    t.NumTreeEdges(),
			CutVertices: t.CutVertices(),
			LeafBlocks:  t.LeafBlocks(),
		}
	}
	if res.Degraded {
		out.Degraded = true
		if res.DegradedCause != nil {
			out.DegradedCause = res.DegradedCause.Error()
		}
	}
	if routedCause != "" {
		out.Degraded = true
		if out.DegradedCause == "" {
			out.DegradedCause = routedCause
		}
	}
	root.SetLabel("algorithm", res.Algorithm.String())
	if out.Degraded {
		root.SetLabel("degraded", "true")
	}
	root.End()
	out.Trace = tr.Export()
	return out, nil
}

// safeCompute invokes the configured engine with a recover of last resort:
// compute runs on a cache goroutine, where an escaped panic would kill the
// whole daemon. The parallel runtime already contains engine panics; this
// guards Compute implementations substituted by tests or future embedders.
func (s *Server) safeCompute(ctx context.Context, g *bicc.Graph, opt *bicc.Options) (res *bicc.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, par.AsPanicError(-1, v)
		}
	}()
	return s.cfg.Compute(ctx, g, opt)
}

// --- health & stats --------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	breakers := map[string]string{}
	for name, b := range s.breakers {
		st := b.State()
		breakers[name] = st.String()
		if st != BreakerClosed {
			// An open (or probing) breaker means some parallel engine keeps
			// faulting and its queries are served sequentially: alive, but
			// slower than advertised.
			status = "degraded"
		}
	}
	if s.draining.Load() {
		status = "draining"
	}
	body := map[string]any{
		"status":   status,
		"workers":  s.admission.Workers(),
		"breakers": breakers,
	}
	// Integrity failures are the one thing that flips readiness to 503:
	// results that failed boot-time re-verification, or artifacts the
	// scrubber had to quarantine, mean local durable state cannot be fully
	// trusted and an operator (or the router) should look at this node.
	code := http.StatusOK
	if d := s.dur.Load(); d != nil {
		if n := d.verifyFailures.Load(); n > 0 {
			status, code = "unhealthy", http.StatusServiceUnavailable
			body["verify_failures"] = n
		}
	}
	if sc := s.scrubs.Load(); sc != nil {
		if q := sc.quarantineList(); len(q) > 0 {
			status, code = "unhealthy", http.StatusServiceUnavailable
			body["quarantined"] = q
		}
	}
	body["status"] = status
	switch s.replRole() {
	case rolePrimary:
		body["role"] = "primary"
	case roleStandby:
		body["role"] = "standby"
	}
	writeJSON(w, code, body)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// Snapshot assembles the current /statsz payload.
func (s *Server) Snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		Requests:      s.stats.Requests.Load(),
		CacheHits:     s.stats.CacheHits.Load(),
		CacheMisses:   s.stats.CacheMisses.Load(),
		Coalesced:     s.stats.Coalesced.Load(),
		Rejected:      s.stats.Rejected.Load(),
		Canceled:      s.stats.Canceled.Load(),
		Computations:  s.stats.Computations.Load(),
		GraphUploads:  s.stats.GraphUploads.Load(),
		GraphEvicted:  s.registry.Evicted(),
		QueueDepth:    s.admission.QueueDepth(),
		Inflight:      s.admission.Inflight(),
		CachedResults: s.cache.Len(),
		Graphs:        s.registry.Len(),
		GraphBytes:    s.registry.Bytes(),
		EnginePanics:  s.stats.EnginePanics.Load(),
		Fallbacks:     s.stats.Fallbacks.Load(),
		BreakerRouted: s.stats.BreakerRouted.Load(),
		HandlerPanics: s.stats.HandlerPanics.Load(),
		Breakers:      map[string]BreakerSnapshot{},
		Latency:       map[string]HistogramSnapshot{},
	}
	for name, b := range s.breakers {
		snap.Breakers[name] = BreakerSnapshot{State: b.State().String(), Opens: b.Opens()}
	}
	if served := snap.CacheHits + snap.CacheMisses + snap.Coalesced; served > 0 {
		snap.CacheHitRate = float64(snap.CacheHits+snap.Coalesced) / float64(served)
	}
	for name, h := range s.stats.perAlgorithm {
		if hs := h.Snapshot(); hs.Count > 0 {
			snap.Latency[name] = hs
		}
	}
	if d := s.dur.Load(); d != nil {
		snap.Durability = d.snapshot(s.cache)
	}
	if st := s.shards.Load(); st != nil {
		snap.Sharding = st.snapshot()
	}
	if s.incr.batches.Load() > 0 {
		snap.Incr = s.incr.snapshot()
	}
	if rs := s.repls.Load(); rs != nil {
		snap.Repl = rs.snapshot()
	}
	if sc := s.scrubs.Load(); sc != nil {
		snap.Scrub = sc.snapshot()
	}
	if ps := s.plans.Load(); ps != nil {
		psnap := ps.planner.Snapshot()
		snap.Plan = &psnap
	}
	return snap
}
