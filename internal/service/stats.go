package service

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets: bucket k counts
// observations in [2^k, 2^(k+1)) microseconds, with the last bucket open
// above. 32 buckets span 1 µs to over an hour.
const histBuckets = 32

// Histogram is a lock-free latency histogram with power-of-two microsecond
// buckets, cheap enough to sit on every request path.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	k := bits.Len64(uint64(us)) // 0µs→0, 1µs→1, [2,4)→2, ...
	if k >= histBuckets {
		k = histBuckets - 1
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	h.buckets[k].Add(1)
}

// HistogramSnapshot is a point-in-time copy of a Histogram, JSON-ready.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	MeanN int64 `json:"mean_ns"`
	P50Ns int64 `json:"p50_ns"`
	P90Ns int64 `json:"p90_ns"`
	P99Ns int64 `json:"p99_ns"`
	// BucketsUs[k] counts samples with latency in [2^(k-1), 2^k) µs
	// (k=0: sub-microsecond). Trailing zero buckets are trimmed.
	BucketsUs []int64 `json:"buckets_us,omitempty"`
}

// Snapshot returns a consistent-enough copy for reporting; concurrent
// Observe calls may skew individual buckets by a few samples.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	if s.Count > 0 {
		s.MeanN = h.sumNs.Load() / s.Count
	}
	var b [histBuckets]int64
	total := int64(0)
	last := -1
	for k := range b {
		b[k] = h.buckets[k].Load()
		total += b[k]
		if b[k] > 0 {
			last = k
		}
	}
	if last >= 0 {
		s.BucketsUs = append([]int64(nil), b[:last+1]...)
	}
	s.P50Ns = quantile(b[:], total, 0.50)
	s.P90Ns = quantile(b[:], total, 0.90)
	s.P99Ns = quantile(b[:], total, 0.99)
	return s
}

// quantile returns the upper edge (in ns) of the bucket containing the q-th
// quantile — a conservative estimate good to a factor of two, which is all a
// power-of-two histogram can promise.
func quantile(b []int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	seen := int64(0)
	for k, c := range b {
		seen += c
		if seen >= target {
			return int64(1) << uint(k) * 1000 // upper edge: 2^k µs in ns
		}
	}
	return int64(1) << uint(len(b)) * 1000
}

// Stats aggregates the service counters exposed on /statsz.
type Stats struct {
	Requests     atomic.Int64 // BCC queries received
	CacheHits    atomic.Int64 // served from a completed cache entry
	CacheMisses  atomic.Int64 // required a new computation
	Coalesced    atomic.Int64 // joined an in-flight identical computation
	Rejected     atomic.Int64 // 429s from a full admission queue
	Canceled     atomic.Int64 // requests that died on context before/while computing
	Computations atomic.Int64 // engine runs actually started
	GraphUploads atomic.Int64
	// Fault-isolation counters.
	EnginePanics  atomic.Int64 // contained engine panics (par.PanicError seen)
	Fallbacks     atomic.Int64 // results produced by the sequential fallback
	BreakerRouted atomic.Int64 // queries routed to sequential by an open breaker
	HandlerPanics atomic.Int64 // HTTP handler panics recovered by middleware
	perAlgorithm  map[string]*Histogram
}

// StatsSnapshot is the JSON shape of /statsz.
type StatsSnapshot struct {
	Requests     int64 `json:"requests"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	Coalesced    int64 `json:"coalesced"`
	Rejected     int64 `json:"rejected"`
	Canceled     int64 `json:"canceled"`
	Computations int64 `json:"computations"`
	GraphUploads int64 `json:"graph_uploads"`
	GraphEvicted int64 `json:"graphs_evicted"`
	// CacheHitRate is hits / (hits + misses + coalesced), the fraction of
	// queries that did not start their own computation beyond the first.
	CacheHitRate  float64 `json:"cache_hit_rate"`
	QueueDepth    int     `json:"queue_depth"`
	Inflight      int     `json:"inflight"`
	CachedResults int     `json:"cached_results"`
	Graphs        int     `json:"graphs"`
	GraphBytes    int64   `json:"graph_bytes"`
	// Fault-isolation telemetry.
	EnginePanics  int64                        `json:"engine_panics"`
	Fallbacks     int64                        `json:"fallbacks"`
	BreakerRouted int64                        `json:"breaker_routed"`
	HandlerPanics int64                        `json:"handler_panics"`
	Breakers      map[string]BreakerSnapshot   `json:"breakers,omitempty"`
	Latency       map[string]HistogramSnapshot `json:"latency_ns_by_algorithm"`
}

// BreakerSnapshot is one algorithm's circuit-breaker state on /statsz.
type BreakerSnapshot struct {
	State string `json:"state"`
	Opens int64  `json:"opens"`
}
