package service

import (
	"bicc"
	"bicc/internal/obs"
	"bicc/internal/plan"
)

// Histogram is the service's request-latency histogram, now provided by the
// observability package so /statsz and /metrics report from the same
// instrument. The JSON shape of snapshots is unchanged.
type Histogram = obs.Histogram

// HistogramSnapshot is a point-in-time copy of a Histogram, JSON-ready.
type HistogramSnapshot = obs.HistogramSnapshot

// Stats aggregates the service counters exposed on /statsz. The counters
// live on the server's private obs registry, so the same instruments back
// the Prometheus exposition on /metrics; field accessors (Add/Load) are
// unchanged from the pre-registry atomic.Int64 shape.
type Stats struct {
	Requests     *obs.Counter // BCC queries received
	CacheHits    *obs.Counter // served from a completed cache entry
	CacheMisses  *obs.Counter // required a new computation
	Coalesced    *obs.Counter // joined an in-flight identical computation
	Rejected     *obs.Counter // 429s from a full admission queue
	Canceled     *obs.Counter // requests that died on context before/while computing
	Computations *obs.Counter // engine runs actually started
	GraphUploads *obs.Counter
	// Fault-isolation counters.
	EnginePanics  *obs.Counter // contained engine panics (par.PanicError seen)
	Fallbacks     *obs.Counter // results produced by the sequential fallback
	BreakerRouted *obs.Counter // queries routed to sequential by an open breaker
	HandlerPanics *obs.Counter // HTTP handler panics recovered by middleware
	perAlgorithm  map[string]*Histogram
}

// newStats registers the request counters and per-algorithm latency
// histograms on reg.
func newStats(reg *obs.Registry) Stats {
	st := Stats{
		Requests:      reg.Counter("bicc_requests_total", "BCC queries received."),
		CacheHits:     reg.Counter("bicc_cache_hits_total", "Queries served from a completed cache entry."),
		CacheMisses:   reg.Counter("bicc_cache_misses_total", "Queries that required a new computation."),
		Coalesced:     reg.Counter("bicc_coalesced_total", "Queries that joined an in-flight identical computation."),
		Rejected:      reg.Counter("bicc_rejected_total", "Queries rejected with 429 by a full admission queue."),
		Canceled:      reg.Counter("bicc_canceled_total", "Queries whose context ended before or while computing."),
		Computations:  reg.Counter("bicc_computations_total", "Engine runs actually started."),
		GraphUploads:  reg.Counter("bicc_graph_uploads_total", "Graphs ingested via upload or open."),
		EnginePanics:  reg.Counter("bicc_engine_panics_total", "Engine panics contained by the parallel runtime."),
		Fallbacks:     reg.Counter("bicc_fallbacks_total", "Results produced by the sequential fallback."),
		BreakerRouted: reg.Counter("bicc_breaker_routed_total", "Queries routed to sequential by an open circuit breaker."),
		HandlerPanics: reg.Counter("bicc_handler_panics_total", "HTTP handler panics recovered by middleware."),
		perAlgorithm:  map[string]*Histogram{},
	}
	lat := reg.HistogramVec("bicc_request_seconds",
		"End-to-end engine computation latency by executing algorithm.", "algorithm")
	for _, a := range []bicc.Algorithm{bicc.Sequential, bicc.TVSMP, bicc.TVOpt, bicc.TVFilter, bicc.FastBCC} {
		st.perAlgorithm[a.String()] = lat.With(a.String())
	}
	return st
}

// StatsSnapshot is the JSON shape of /statsz.
type StatsSnapshot struct {
	Requests     int64 `json:"requests"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	Coalesced    int64 `json:"coalesced"`
	Rejected     int64 `json:"rejected"`
	Canceled     int64 `json:"canceled"`
	Computations int64 `json:"computations"`
	GraphUploads int64 `json:"graph_uploads"`
	GraphEvicted int64 `json:"graphs_evicted"`
	// CacheHitRate is hits / (hits + misses + coalesced), the fraction of
	// queries that did not start their own computation beyond the first.
	CacheHitRate  float64 `json:"cache_hit_rate"`
	QueueDepth    int     `json:"queue_depth"`
	Inflight      int     `json:"inflight"`
	CachedResults int     `json:"cached_results"`
	Graphs        int     `json:"graphs"`
	GraphBytes    int64   `json:"graph_bytes"`
	// Fault-isolation telemetry.
	EnginePanics  int64                        `json:"engine_panics"`
	Fallbacks     int64                        `json:"fallbacks"`
	BreakerRouted int64                        `json:"breaker_routed"`
	HandlerPanics int64                        `json:"handler_panics"`
	Breakers      map[string]BreakerSnapshot   `json:"breakers,omitempty"`
	Latency       map[string]HistogramSnapshot `json:"latency_ns_by_algorithm"`
	// Durability is present only when the daemon runs with a data
	// directory; a diskless bccd's /statsz is unchanged.
	Durability *DurabilitySnapshot `json:"durability,omitempty"`
	// Sharding is present only when EnableSharding has been called; a
	// non-sharded bccd's /statsz is unchanged.
	Sharding *ShardingSnapshot `json:"sharding,omitempty"`
	// Incr is present once the first edge mutation has been acknowledged; an
	// unmutated bccd's /statsz is unchanged.
	Incr *IncrSnapshot `json:"incr,omitempty"`
	// Repl is present only when EnableReplication has been called; a
	// standalone bccd's /statsz is unchanged.
	Repl *ReplSnapshot `json:"repl,omitempty"`
	// Scrub is present only when EnableScrub has been called.
	Scrub *ScrubSnapshot `json:"scrub,omitempty"`
	// Plan is present only when Config.PlanMode enables the adaptive
	// planner; a statically-routed bccd's /statsz is unchanged.
	Plan *plan.Snapshot `json:"plan,omitempty"`
}

// BreakerSnapshot is one algorithm's circuit-breaker state on /statsz.
type BreakerSnapshot struct {
	State string `json:"state"`
	Opens int64  `json:"opens"`
}
