package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bicc"
	"bicc/internal/durable"
	"bicc/internal/scrub"
	"bicc/internal/shard"
)

// ScrubConfig wires a Server to the background scrubber. Durability must be
// enabled first: the scrubber walks the durable tiers, so there must be
// some.
type ScrubConfig struct {
	// Interval is the background cycle cadence; <= 0 disables the loop and
	// leaves only manual sweeps (POST /v1/admin/scrub).
	Interval time.Duration
	// Budget caps the bytes re-verified per cycle; <= 0 means unlimited.
	// Tiers keep rotating cursors, so a budget smaller than the data set
	// still covers everything across consecutive cycles.
	Budget int64
	// CertSample picks every Nth spilled result for full content
	// re-verification (ReconstructResult + Verify + a sparse-certificate
	// cross-check) on top of the frame checks; <= 0 means 8.
	CertSample int
	// Logf receives detection/repair/quarantine lines; nil disables them.
	Logf func(format string, args ...any)
}

// scrubRepairTimeout bounds one recompute-from-graph repair so a wedged
// engine cannot stall the scrub loop forever.
const scrubRepairTimeout = time.Minute

// scrubState is a Server's live scrubbing machinery, held through an atomic
// pointer like the other optional subsystems.
type scrubState struct {
	scr  *scrub.Scrubber
	qdir string

	mu          sync.Mutex
	quarantined []string // base names resident in the quarantine directory
}

// moveToQuarantine renames an unrepairable artifact into the quarantine
// directory so nothing can serve it, and records it for /healthz.
func (sc *scrubState) moveToQuarantine(path string) error {
	if err := os.MkdirAll(sc.qdir, 0o755); err != nil {
		return err
	}
	name := filepath.Base(path)
	if err := os.Rename(path, filepath.Join(sc.qdir, name)); err != nil {
		return err
	}
	sc.note(name)
	return nil
}

func (sc *scrubState) note(name string) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for _, q := range sc.quarantined {
		if q == name {
			return
		}
	}
	sc.quarantined = append(sc.quarantined, name)
	sort.Strings(sc.quarantined)
}

// quarantineList returns the quarantined artifact names (nil when clean).
func (sc *scrubState) quarantineList() []string {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if len(sc.quarantined) == 0 {
		return nil
	}
	return append([]string(nil), sc.quarantined...)
}

// EnableScrub builds the tier adapters over whatever subsystems are enabled
// (tiers for disabled subsystems list nothing), registers the scrub
// metrics, and starts the background loop when cfg.Interval is set.
// Requires EnableDurability first; call after the other Enable* calls so
// every tier is visible. A second call is an error.
func (s *Server) EnableScrub(cfg ScrubConfig) error {
	d := s.dur.Load()
	if d == nil {
		return fmt.Errorf("service: scrubbing requires durability (call EnableDurability first)")
	}
	if s.scrubs.Load() != nil {
		return fmt.Errorf("service: scrubbing already enabled")
	}
	sc := &scrubState{qdir: filepath.Join(d.dir, "quarantine")}
	// Quarantined artifacts persist across restarts; they stay on /healthz
	// until an operator inspects and clears the directory.
	if entries, err := os.ReadDir(sc.qdir); err == nil {
		for _, e := range entries {
			if !e.IsDir() {
				sc.note(e.Name())
			}
		}
	}
	sample := cfg.CertSample
	if sample <= 0 {
		sample = 8
	}
	sc.scr = scrub.New(scrub.Config{Interval: cfg.Interval, Budget: cfg.Budget, Logf: cfg.Logf},
		&walTier{s: s, d: d, sc: sc},
		&spillTier{s: s, d: d, sc: sc, sample: sample},
		&shardTier{s: s, sc: sc},
		&ringTier{s: s},
	)
	sc.register(s)
	s.scrubs.Store(sc)
	sc.scr.Start()
	return nil
}

// CloseScrub stops the background loop and waits for an in-flight cycle.
// Call it before CloseReplication/CloseDurability — the tiers reach into
// both.
func (s *Server) CloseScrub() {
	if sc := s.scrubs.Swap(nil); sc != nil {
		sc.scr.Stop()
	}
}

// RunScrub runs one scrub cycle synchronously and returns its report.
func (s *Server) RunScrub() (*scrub.Report, error) {
	sc := s.scrubs.Load()
	if sc == nil {
		return nil, fmt.Errorf("service: scrubbing not enabled (start bccd with -scrub-interval)")
	}
	return sc.scr.RunCycle(), nil
}

// handleScrub serves POST /v1/admin/scrub: one synchronous cycle, report in
// the response.
func (s *Server) handleScrub(w http.ResponseWriter, r *http.Request) {
	rep, err := s.RunScrub()
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// --- wal tier ---------------------------------------------------------------

// walTier scrubs the store's WAL segments and snapshot images. Repair does
// not patch files: the in-memory registry is the authoritative state, so a
// compaction rewrites it into a fresh generation and retires the damaged
// file; a standby that cannot compact discards its cursor and resyncs from
// the primary instead.
type walTier struct {
	s     *Server
	d     *durability
	sc    *scrubState
	files map[string]durable.ScrubFile // rebuilt by List, read by Check
}

func (t *walTier) Name() string { return "wal" }

func (t *walTier) List() []string {
	fs := t.d.store.ScrubFiles()
	t.files = make(map[string]durable.ScrubFile, len(fs))
	names := make([]string, 0, len(fs))
	for _, f := range fs {
		t.files[f.Path] = f
		names = append(names, f.Path)
	}
	return names
}

func (t *walTier) Check(name string, iter int) (int64, error) {
	f, ok := t.files[name]
	if !ok {
		return 0, nil
	}
	b, err := scrub.ReadFile(name, iter)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil // rotated or compacted away after List
		}
		return 0, err
	}
	if f.Limit > 0 && int64(len(b)) > f.Limit {
		// The active segment grew under us; only the completed-append
		// prefix captured at List time is promised well-formed.
		b = b[:f.Limit]
	}
	if f.Snapshot {
		return int64(len(b)), durable.CheckSnapshotImage(b, iter)
	}
	return int64(len(b)), durable.CheckWALImage(b, iter)
}

func (t *walTier) Repair(name string, cause error) (string, error) {
	if err := t.d.store.Compact(); err == nil {
		// Compaction rotated to a fresh generation and retired everything
		// older — including the damaged file. Sweep any leftover.
		if _, serr := os.Stat(name); serr == nil {
			_ = os.Remove(name)
		}
		return "compact", nil
	} else if rs := t.s.repls.Load(); rs != nil {
		if stb := rs.stb.Load(); stb != nil {
			// A standby with an unwritable or unrecoverable local store
			// still has the primary: drop the cursor, take a snapshot.
			stb.ForceResync()
			return "resync", nil
		}
		return "", fmt.Errorf("compact failed: %w", err)
	} else {
		return "", fmt.Errorf("compact failed: %w", err)
	}
}

func (t *walTier) Quarantine(name string, cause error) error {
	return t.sc.moveToQuarantine(name)
}

// --- result-spill tier ------------------------------------------------------

// spillTier scrubs the result spill. Beyond the frame checks, every
// sample-th record gets the full certificate treatment: rebuild the Result
// from the persisted labels, run the independent checker, and cross-check
// the aggregate counts against a decomposition of the graph's sparse
// certificate. Repair re-derives the record from the cheapest healthy
// source: the resident cache entry if one exists, else a recompute through
// the normal engine trunk (admission, breaker, fallback).
type spillTier struct {
	s      *Server
	d      *durability
	sc     *scrubState
	sample int
}

func (t *spillTier) Name() string { return "spill" }

func (t *spillTier) List() []string { return t.d.spill.Keys() }

func (t *spillTier) Check(key string, iter int) (int64, error) {
	b, err := scrub.ReadFile(t.d.spill.Path(key), iter)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil // evicted after List
		}
		return 0, err
	}
	rec, err := durable.CheckSpillImage(b, key, iter)
	if err != nil {
		return int64(len(b)), err
	}
	if t.sample > 0 && iter%t.sample == 0 {
		if err := t.s.verifySpilledContent(rec); err != nil {
			return int64(len(b)), err
		}
	}
	return int64(len(b)), nil
}

// verifySpilledContent re-verifies a frame-clean spill record end to end
// against the live graph: frames can be pristine around labels that are
// simply wrong. Records for non-resident graphs or superseded generations
// have nothing to be checked against and pass.
func (s *Server) verifySpilledContent(rec durable.ResultRecord) error {
	key, ok := parseDurableKey(rec.Key())
	if !ok {
		return fmt.Errorf("unparseable spill record key %q", rec.Key())
	}
	g, info, okG := s.registry.AcquireInfo(key.fp)
	if !okG {
		return nil
	}
	defer s.registry.Release(key.fp)
	if info.Generation != key.gen {
		return nil
	}
	res, err := bicc.ReconstructResult(g, key.algo, rec.EdgeComponent)
	if err != nil {
		return fmt.Errorf("content: reconstruct: %w", err)
	}
	if err := bicc.Verify(g, res); err != nil {
		return fmt.Errorf("content: %w", err)
	}
	// Biconnectivity is preserved by the sparse certificate, so a
	// decomposition of the (much smaller) certificate must agree on every
	// aggregate the record claims.
	cert, _, err := bicc.SparseCertificate(g, nil)
	if err != nil {
		return nil // certificate construction unavailable says nothing about the record
	}
	cres, err := bicc.BiconnectedComponents(cert, &bicc.Options{Algorithm: bicc.Sequential})
	if err != nil {
		return nil
	}
	if cres.NumComponents != res.NumComponents ||
		len(cres.ArticulationPoints()) != len(res.ArticulationPoints()) {
		return fmt.Errorf("content: certificate decomposition disagrees: %d/%d components, %d/%d cuts",
			cres.NumComponents, res.NumComponents,
			len(cres.ArticulationPoints()), len(res.ArticulationPoints()))
	}
	return nil
}

func (t *spillTier) Repair(key string, cause error) (string, error) {
	k, ok := parseDurableKey(key)
	if !ok {
		return "", fmt.Errorf("unparseable spill key %q", key)
	}
	// Cheapest source: the same result still resident in the memory tier
	// (promotion leaves the disk record in place, so both can coexist).
	if t.s.cache.Respill(k) {
		return "cache", nil
	}
	g, info, okG := t.s.registry.AcquireInfo(k.fp)
	if !okG {
		return "", fmt.Errorf("graph %s not resident", k.fp)
	}
	defer t.s.registry.Release(k.fp)
	if info.Generation != k.gen {
		return "", fmt.Errorf("graph %s is at generation %d, record wants %d", k.fp, info.Generation, k.gen)
	}
	ctx, cancel := context.WithTimeout(context.Background(), scrubRepairTimeout)
	defer cancel()
	qr, err := t.s.compute(ctx, g, k.algo, k.procs, nil)
	if err != nil {
		return "", err
	}
	if qr.Degraded {
		// The same no-degraded-results-persisted rule the cache applies.
		return "", fmt.Errorf("recompute degraded: %s", qr.DegradedCause)
	}
	view, err := json.Marshal(qr)
	if err != nil {
		return "", err
	}
	if err := t.d.spill.Put(durable.ResultRecord{
		FP: k.spillFP(), Algorithm: k.algo.String(), Procs: k.procs,
		EdgeComponent: qr.edgeComp, View: view,
	}); err != nil {
		return "", err
	}
	return "recompute", nil
}

func (t *spillTier) Quarantine(key string, cause error) error {
	if err := t.sc.moveToQuarantine(t.d.spill.Path(key)); err != nil {
		return err
	}
	t.d.spill.Remove(key) // drop the index entry; the file is already gone
	return nil
}

// parseDurableKey inverts resultKey.durableKey() ("fp[@gen]-algo-procs"):
// fingerprints are fixed-width hex with no dashes, so the first dash ends
// the fp[@gen] part and the last one starts procs.
func parseDurableKey(key string) (resultKey, bool) {
	i := strings.IndexByte(key, '-')
	j := strings.LastIndexByte(key, '-')
	if i <= 0 || j <= i || j+1 >= len(key) {
		return resultKey{}, false
	}
	procs, err := strconv.Atoi(key[j+1:])
	if err != nil || procs < 0 {
		return resultKey{}, false
	}
	fp := key[:i]
	var gen uint64
	if at := strings.IndexByte(fp, '@'); at >= 0 {
		gen, err = strconv.ParseUint(fp[at+1:], 10, 64)
		if err != nil {
			return resultKey{}, false
		}
		fp = fp[:at]
	}
	algo, err := parseAlgorithm(key[i+1 : j])
	if err != nil {
		return resultKey{}, false
	}
	return resultKey{fp: fp, gen: gen, algo: algo, procs: procs}, true
}

// --- shard-blob tier --------------------------------------------------------

// shardTier scrubs the spilled shard blobs. A blob is a pure derivation of
// a decomposition, so repair never patches it: drop the whole shard set and
// rebuild it from the monolithic result through the manager's single-flight
// build path.
type shardTier struct {
	s  *Server
	sc *scrubState
}

func (t *shardTier) Name() string { return "shard" }

func (t *shardTier) List() []string {
	st := t.s.shards.Load()
	if st == nil || st.spill == nil {
		return nil
	}
	return st.spill.Keys()
}

func (t *shardTier) Check(key string, iter int) (int64, error) {
	st := t.s.shards.Load()
	if st == nil || st.spill == nil {
		return 0, nil
	}
	b, err := scrub.ReadFile(st.spill.Path(key), iter)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil // evicted after List
		}
		return 0, err
	}
	return int64(len(b)), durable.CheckBlobImage(b, key, iter)
}

func (t *shardTier) Repair(key string, cause error) (string, error) {
	st := t.s.shards.Load()
	if st == nil || st.spill == nil {
		return "", fmt.Errorf("sharding disabled")
	}
	setKey, ok := shardSetKey(key)
	if !ok {
		return "", fmt.Errorf("unparseable shard key %q", key)
	}
	k, ok := parseDurableKey(setKey)
	if !ok {
		return "", fmt.Errorf("unparseable shard set key %q", setKey)
	}
	// Drop the set wholesale — resident state and every spilled blob,
	// including the damaged one — then rebuild from a fresh decomposition.
	st.spill.Remove(key)
	st.mgr.RemovePrefix(setKey)
	g, info, okG := t.s.registry.AcquireInfo(k.fp)
	if !okG {
		return "", fmt.Errorf("graph %s not resident", k.fp)
	}
	defer t.s.registry.Release(k.fp)
	if info.Generation != k.gen {
		return "", fmt.Errorf("graph %s is at generation %d, blob wants %d", k.fp, info.Generation, k.gen)
	}
	ctx, cancel := context.WithTimeout(context.Background(), scrubRepairTimeout)
	defer cancel()
	_, err := st.mgr.Do(ctx, setKey, func(bctx context.Context) (*shard.Set, error) {
		res, _, routedCause, err := t.s.runEngine(bctx, g, k.algo, k.procs)
		if err != nil {
			return nil, err
		}
		if res.Degraded || routedCause != "" {
			return nil, fmt.Errorf("degraded decomposition is not shard-trustworthy")
		}
		return shard.BuildSet(bctx, setKey, g, res)
	})
	if err != nil {
		return "", err
	}
	return "rebuild", nil
}

func (t *shardTier) Quarantine(key string, cause error) error {
	st := t.s.shards.Load()
	if st == nil || st.spill == nil {
		return fmt.Errorf("sharding disabled")
	}
	if err := t.sc.moveToQuarantine(st.spill.Path(key)); err != nil {
		return err
	}
	st.spill.Remove(key)
	return nil
}

// shardSetKey strips a blob key's "-idx" or "-s<block>" suffix back to the
// manager's set key. Block suffixes are matched from the end so algorithm
// names containing "-s" cannot confuse the parse.
func shardSetKey(blobKey string) (string, bool) {
	if k, ok := strings.CutSuffix(blobKey, "-idx"); ok {
		return k, true
	}
	j := len(blobKey)
	for j > 0 && blobKey[j-1] >= '0' && blobKey[j-1] <= '9' {
		j--
	}
	if j < len(blobKey) && j >= 2 && blobKey[j-2:j] == "-s" {
		return blobKey[:j-2], true
	}
	return "", false
}

// --- replication-ring tier --------------------------------------------------

// ringTier scrubs the primary's in-memory retention ring. The ring is a
// catch-up buffer, not the durable copy (that is the WAL), so "repair" is
// retention truncation: ScrubRing drops everything through the newest
// damaged record, and a follower that needed the dropped range is served a
// full snapshot resync on its next connection — the same path as falling
// off the ring's tail.
type ringTier struct {
	s *Server
}

func (t *ringTier) Name() string { return "ring" }

func (t *ringTier) List() []string {
	if rs := t.s.repls.Load(); rs != nil && rs.pri.Load() != nil {
		return []string{"retention-ring"}
	}
	return nil
}

func (t *ringTier) Check(name string, iter int) (int64, error) {
	rs := t.s.repls.Load()
	if rs == nil {
		return 0, nil
	}
	p := rs.pri.Load()
	if p == nil {
		return 0, nil
	}
	rep := p.ScrubRing()
	if rep.Corrupt > 0 {
		return rep.Bytes, fmt.Errorf("%d of %d retained records failed checksum (%d dropped from retention)",
			rep.Corrupt, rep.Checked, rep.Dropped)
	}
	return rep.Bytes, nil
}

func (t *ringTier) Repair(name string, cause error) (string, error) {
	// ScrubRing already truncated the damaged range out of retention; the
	// WAL copy is intact and followers resync past the gap.
	return "retention-truncate", nil
}

func (t *ringTier) Quarantine(name string, cause error) error {
	return fmt.Errorf("ring damage is always repaired by truncation")
}

// --- metrics & statsz -------------------------------------------------------

// register exposes the scrub series. They exist only when scrubbing is
// enabled, so an unscrubbed bccd's /metrics output is unchanged.
func (sc *scrubState) register(s *Server) {
	reg := s.metrics
	scr := sc.scr
	reg.CounterVec("bicc_scrub_cycles_total",
		"Scrub cycles completed.").Func(scr.Cycles)
	reg.CounterVec("bicc_scrub_checked_total",
		"Durable artifacts re-verified by the scrubber.").Func(scr.Checked)
	reg.CounterVec("bicc_scrub_corrupt_total",
		"Artifacts the scrubber found damaged.").Func(scr.Corrupt)
	reg.CounterVec("bicc_scrub_repaired_total",
		"Damaged artifacts healed from a healthy source.").Func(scr.Repaired)
	reg.CounterVec("bicc_scrub_quarantined_total",
		"Unrepairable artifacts moved to the quarantine directory.").Func(scr.Quarantined)
	reg.CounterVec("bicc_scrub_bytes_total",
		"Bytes re-verified by the scrubber.").Func(scr.BytesScrubbed)
	reg.GaugeFunc("bicc_scrub_quarantine_files",
		"Artifacts resident in the quarantine directory.",
		func() float64 { return float64(len(sc.quarantineList())) })
}

// ScrubSnapshot is the /statsz scrub section, present only when EnableScrub
// has been called so an unscrubbed server's /statsz is byte-identical to
// older builds.
type ScrubSnapshot struct {
	Cycles          int64         `json:"cycles"`
	Checked         int64         `json:"checked"`
	Corrupt         int64         `json:"corrupt"`
	Repaired        int64         `json:"repaired"`
	Quarantined     int64         `json:"quarantined"`
	Bytes           int64         `json:"bytes"`
	QuarantineFiles []string      `json:"quarantine_files,omitempty"`
	Last            *scrub.Report `json:"last_cycle,omitempty"`
}

func (sc *scrubState) snapshot() *ScrubSnapshot {
	return &ScrubSnapshot{
		Cycles:          sc.scr.Cycles(),
		Checked:         sc.scr.Checked(),
		Corrupt:         sc.scr.Corrupt(),
		Repaired:        sc.scr.Repaired(),
		Quarantined:     sc.scr.Quarantined(),
		Bytes:           sc.scr.BytesScrubbed(),
		QuarantineFiles: sc.quarantineList(),
		Last:            sc.scr.LastReport(),
	}
}
