package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"time"

	"bicc"
	"bicc/internal/durable"
	"bicc/internal/incr"
	"bicc/internal/obs"
)

// This file is the service face of the incremental-BCC subsystem: the
// mutation endpoint (POST /v1/graphs/{fp}/edges), the per-graph maintained
// decomposition it feeds, and the serve-from-state fast path that answers
// /v1/bcc and shard builds from maintained labels without an engine run.
//
// Identity model: a graph's fingerprint is its STABLE id — the content
// fingerprint at upload time. Mutations keep the id, advance a generation
// counter, and track the current content fingerprint separately. Every
// result cache key carries the generation, so answers computed against
// different edge lists under one id can never be confused.
//
// Mutation flow (fsync-before-ack, degrade-never-fail after the ack):
//
//  1. validate the batch against the maintained state — client errors are
//     rejected here, before anything is written;
//  2. append the delta record to the WAL and fsync (when durability is on):
//     from this point the mutation is acknowledged and MUST take effect;
//  3. apply through the incr planner (absorb / block-scoped rebuild / full
//     by size threshold); any runtime failure — injected fault, engine
//     error, cancellation — degrades to a full recompute of the final
//     graph, and if even that fails the maintained labels are dropped so
//     queries recompute on demand. The registry swap and cache/shard
//     invalidation happen regardless.
type incrState struct {
	threshold float64

	mu     sync.Mutex
	graphs map[string]*incrGraph

	batches     *obs.Counter
	deltas      *obs.Counter
	inserts     *obs.Counter
	deletes     *obs.Counter
	absorbed    *obs.Counter
	dirtied     *obs.Counter
	served      *obs.Counter
	invalidated *obs.Counter
	stateDrops  *obs.Counter
	modes       map[string]*obs.Counter
	latency     map[string]*obs.Histogram
}

// incrGraph is one graph id's incremental machinery. mu serializes
// mutations (held across engine runs); pub guards the published label
// snapshot read by the query fast path, held only for pointer swaps so
// queries never wait on a mutation in progress.
type incrGraph struct {
	mu sync.Mutex
	// st is the maintained decomposition, touched only under mu. It is
	// never shared with readers — the fast path reads the published copy.
	// stG is the exact graph pointer st describes: if the registry holds a
	// different pointer under this id (evicted and re-added, say), the
	// state is stale and must be reseeded.
	st  *incr.State
	stG *bicc.Graph

	pub     sync.Mutex
	g       *bicc.Graph // the exact graph pointer labels describe
	labels  []int32     // canonical per-edge block labels; immutable once published
	numComp int
}

func newIncrState(reg *obs.Registry, threshold float64) *incrState {
	st := &incrState{
		threshold: threshold,
		graphs:    map[string]*incrGraph{},
		batches: reg.Counter("bicc_incr_batches_total",
			"Mutation batches acknowledged."),
		deltas: reg.Counter("bicc_incr_deltas_total",
			"Edge deltas applied across all batches."),
		inserts: reg.Counter("bicc_incr_inserts_total",
			"Edge insertions applied."),
		deletes: reg.Counter("bicc_incr_deletes_total",
			"Edge deletions applied."),
		absorbed: reg.Counter("bicc_incr_absorbed_total",
			"Inserts absorbed into their block without an engine run."),
		dirtied: reg.Counter("bicc_incr_blocks_dirtied_total",
			"Blocks invalidated by structural deltas."),
		served: reg.Counter("bicc_incr_served_total",
			"Queries and shard builds answered from maintained incremental state."),
		invalidated: reg.Counter("bicc_incr_invalidated_results_total",
			"Cached results dropped by mutations."),
		stateDrops: reg.Counter("bicc_incr_state_drops_total",
			"Maintained states dropped after a failed degraded recompute."),
		modes:   map[string]*obs.Counter{},
		latency: map[string]*obs.Histogram{},
	}
	applies := reg.CounterVec("bicc_incr_applies_total",
		"Mutation batches by apply path.", "mode")
	lat := reg.HistogramVec("bicc_incr_apply_seconds",
		"End-to-end mutation apply latency by path (incremental vs full).", "mode")
	for _, m := range []incr.Mode{incr.ModeAbsorb, incr.ModeRebuild, incr.ModeFull} {
		st.modes[m.String()] = applies.With(m.String())
		st.latency[m.String()] = lat.With(m.String())
	}
	return st
}

// graph returns (creating if needed) the per-graph machinery for fp.
func (st *incrState) graph(fp string) *incrGraph {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.graphs[fp]
	if !ok {
		e = &incrGraph{}
		st.graphs[fp] = e
	}
	return e
}

// peek returns the per-graph machinery without creating it.
func (st *incrState) peek(fp string) *incrGraph {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.graphs[fp]
}

// drop clears all incremental state for fp — the graph-delete path. A
// deleted-then-reuploaded id starts clean at generation 0 with no label
// snapshot left behind.
func (st *incrState) drop(fp string) {
	st.mu.Lock()
	delete(st.graphs, fp)
	st.mu.Unlock()
}

// mutatedGraphs counts ids with a published label snapshot.
func (st *incrState) mutatedGraphs() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, e := range st.graphs {
		e.pub.Lock()
		if e.labels != nil {
			n++
		}
		e.pub.Unlock()
	}
	return n
}

// publishedLabels returns the label snapshot for fp if it describes exactly
// the graph pointer g. Pointer identity is the correctness argument: labels
// and graph are published together under pub, so a match proves the labels
// were computed for this exact edge list.
func (st *incrState) publishedLabels(fp string, g *bicc.Graph) ([]int32, bool) {
	e := st.peek(fp)
	if e == nil {
		return nil, false
	}
	e.pub.Lock()
	defer e.pub.Unlock()
	if e.g != g || e.labels == nil {
		return nil, false
	}
	return e.labels, true
}

// incrReconstruct builds a full Result from maintained labels for the exact
// acquired graph pointer, with the algorithm name a scratch run would
// report. ok=false (state absent, stale, or reconstruction failure) means
// the caller must run an engine.
func (s *Server) incrReconstruct(fp string, g *bicc.Graph, algo bicc.Algorithm, procs int) (*bicc.Result, bool) {
	labels, ok := s.incr.publishedLabels(fp, g)
	if !ok {
		return nil, false
	}
	run := bicc.ResolveAlgorithm(g, algo, procs)
	res, err := bicc.ReconstructResult(g, run, labels)
	if err != nil {
		return nil, false
	}
	s.incr.served.Inc()
	return res, true
}

// incrServe is the /v1/bcc fast path: derive the cacheable query result
// from maintained labels instead of running an engine.
func (s *Server) incrServe(fp string, g *bicc.Graph, algo bicc.Algorithm, procs int, include map[string]bool) (*queryResult, bool) {
	start := time.Now()
	res, ok := s.incrReconstruct(fp, g, algo, procs)
	if !ok {
		return nil, false
	}
	cuts := res.ArticulationPoints()
	bridges := res.Bridges()
	out := &queryResult{
		Algorithm:       res.Algorithm.String(),
		NumComponents:   res.NumComponents,
		NumArticulation: len(cuts),
		NumBridges:      len(bridges),
		Incr:            true,
		edgeComp:        res.EdgeComponent,
	}
	if include["articulation"] {
		out.ArticulationPoints = cuts
	}
	if include["bridges"] {
		out.Bridges = bridges
	}
	if include["components"] {
		out.Components = res.Components()
	}
	if include["blockcut"] {
		t := res.BlockCutTree()
		out.BlockCut = &blockCutJSON{
			NumBlocks:   t.NumBlocks(),
			NumNodes:    t.NumNodes(),
			NumEdges:    t.NumTreeEdges(),
			CutVertices: t.CutVertices(),
			LeafBlocks:  t.LeafBlocks(),
		}
	}
	out.ElapsedNs = int64(time.Since(start))
	out.Phases = []map[string]any{{"name": "incr-serve", "ns": out.ElapsedNs}}
	return out, true
}

// --- mutation endpoint -------------------------------------------------------

type mutationDelta struct {
	Op string `json:"op"` // "insert" or "delete"
	U  int32  `json:"u"`
	V  int32  `json:"v"`
}

type mutateRequest struct {
	Deltas []mutationDelta `json:"deltas"`
}

type mutateResponse struct {
	Graph         string  `json:"graph"`
	Generation    uint64  `json:"generation"`
	ContentFP     string  `json:"content_fingerprint"`
	Mode          string  `json:"mode"`
	Deltas        int     `json:"deltas"`
	Inserts       int     `json:"inserts"`
	Deletes       int     `json:"deletes"`
	Absorbed      int     `json:"absorbed"`
	DirtyBlocks   int     `json:"dirty_blocks"`
	RegionEdges   int     `json:"region_edges"`
	RegionRatio   float64 `json:"region_ratio"`
	NumComponents int     `json:"num_components,omitempty"`
	Vertices      int     `json:"vertices"`
	Edges         int     `json:"edges"`
	Invalidated   int     `json:"invalidated_results"`
	Degraded      bool    `json:"degraded,omitempty"`
	DegradedCause string  `json:"degraded_cause,omitempty"`
	ElapsedNs     int64   `json:"elapsed_ns"`
}

// handleMutate serves POST /v1/graphs/{fp}/edges: a batched edge mutation
// against a registered graph. Batches are sequential: an insert appends to
// the edge list, a delete removes an edge preserving the order of the rest,
// delete-then-reinsert is legal (the edge moves to the end), endpoints past
// the vertex count grow the graph.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if s.rejectStandby(w) {
		return
	}
	start := time.Now()
	fp := r.PathValue("fp")
	var req mutateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	if len(req.Deltas) == 0 {
		writeError(w, http.StatusBadRequest, "empty delta batch")
		return
	}
	deltas := make([]incr.Delta, len(req.Deltas))
	for i, d := range req.Deltas {
		op, err := incr.ParseOp(d.Op)
		if err != nil {
			writeError(w, http.StatusBadRequest, "delta %d: %v", i, err)
			return
		}
		deltas[i] = incr.Delta{Op: op, U: d.U, V: d.V}
	}

	// Per-graph serialization: one mutation at a time per id; the registry
	// swap and state publication happen under this lock, so generations are
	// strictly monotonic.
	e := s.incr.graph(fp)
	e.mu.Lock()
	defer e.mu.Unlock()

	g, info, ok := s.registry.AcquireInfo(fp)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q (upload it via POST /v1/graphs first)", fp)
		return
	}
	defer s.registry.Release(fp)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
	defer cancel()

	run := func(rctx context.Context, rg *bicc.Graph) (*bicc.Result, error) {
		res, _, _, err := s.runEngine(rctx, rg, bicc.Auto, 0)
		return res, err
	}

	// Ensure maintained state for the current edge list. First mutation on
	// a graph (or first after recovery) pays one engine run to seed the
	// canonical labels; errors here are still pre-ack and safe to reject.
	if e.st == nil || e.stG != g {
		res, err := run(ctx, g)
		if err != nil {
			writeMutateRunError(w, err)
			return
		}
		st, serr := incr.NewState(g, res)
		if serr != nil {
			writeError(w, http.StatusInternalServerError, "seeding incremental state: %v", serr)
			return
		}
		e.st, e.stG = st, g
	}

	// Validate before writing anything: client errors never reach the WAL.
	newN, final, err := e.st.Preview(deltas)
	if err != nil {
		var de *incr.DeltaError
		if errors.As(err, &de) {
			writeError(w, http.StatusBadRequest, "%v", de)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	newGraph, err := bicc.NewGraph(int(newN), final)
	if err != nil {
		writeError(w, http.StatusBadRequest, "resulting graph invalid: %v", err)
		return
	}
	postFP := Fingerprint(newGraph)
	newGen := info.Generation + 1

	// Durable-first: fsync the delta record before acknowledging. From here
	// on the mutation must take effect — runtime failures degrade, they do
	// not reject.
	if d := s.dur.Load(); d != nil {
		ops := make([]durable.DeltaOp, len(deltas))
		for i, dl := range deltas {
			ops[i] = durable.DeltaOp{Del: dl.Op == incr.OpDelete, U: dl.U, V: dl.V}
		}
		rec := durable.DeltaRecord{ID: fp, Gen: newGen, NewN: newN, PostFP: postFP, Ops: ops}
		if err := d.store.AppendDelta(rec, newGraph); err != nil {
			writeError(w, http.StatusServiceUnavailable, "persisting mutation: %v", err)
			return
		}
		s.replWaitQuorum()
	}

	stats, aerr := e.st.Apply(ctx, deltas, incr.Config{Threshold: s.incr.threshold}, run)
	degradedCause := ""
	if aerr != nil {
		// Apply is atomic, so the state still describes the pre-batch graph.
		// Degrade to a full recompute of the final edge list on a fresh
		// context (the failure may have been a cancellation).
		degradedCause = aerr.Error()
		fctx, fcancel := context.WithTimeout(context.WithoutCancel(ctx), s.cfg.DefaultTimeout)
		res, ferr := run(fctx, newGraph)
		fcancel()
		if ferr == nil {
			if st, serr := incr.NewState(newGraph, res); serr == nil {
				e.st = st
			} else {
				e.st, ferr = nil, serr
			}
		}
		if ferr != nil {
			// Even the full recompute failed: drop the maintained labels;
			// queries recompute on demand. The mutation itself still
			// commits below — it was acknowledged at the WAL.
			e.st, e.stG = nil, nil
			s.incr.stateDrops.Inc()
		}
		stats = &incr.ApplyStats{Deltas: len(deltas), Mode: incr.ModeFull}
		for _, dl := range deltas {
			if dl.Op == incr.OpInsert {
				stats.Inserts++
			} else {
				stats.Deletes++
			}
		}
		if e.st != nil {
			stats.NumComponents = e.st.NumComponents()
		}
	}

	// Commit: swap the registry entry, publish the new label snapshot, then
	// invalidate every derived result for this id.
	s.registry.Replace(fp, newGraph, newGen, postFP)
	if e.st != nil {
		e.stG = newGraph
	}
	e.pub.Lock()
	e.g = newGraph
	if e.st != nil {
		e.labels = e.st.Labels()
		e.numComp = e.st.NumComponents()
	} else {
		e.labels, e.numComp = nil, 0
	}
	e.pub.Unlock()
	dropped := s.cache.DropGraph(fp)
	if sh := s.shards.Load(); sh != nil {
		sh.mgr.RemovePrefix(fp)
	}

	st := s.incr
	st.batches.Inc()
	st.deltas.Add(int64(stats.Deltas))
	st.inserts.Add(int64(stats.Inserts))
	st.deletes.Add(int64(stats.Deletes))
	st.absorbed.Add(int64(stats.Absorbed))
	st.dirtied.Add(int64(stats.DirtyBlocks))
	st.invalidated.Add(int64(dropped))
	mode := stats.Mode.String()
	if c := st.modes[mode]; c != nil {
		c.Inc()
	}
	elapsed := time.Since(start)
	if h := st.latency[mode]; h != nil {
		h.Observe(elapsed)
	}

	writeJSON(w, http.StatusOK, mutateResponse{
		Graph:         fp,
		Generation:    newGen,
		ContentFP:     postFP,
		Mode:          mode,
		Deltas:        stats.Deltas,
		Inserts:       stats.Inserts,
		Deletes:       stats.Deletes,
		Absorbed:      stats.Absorbed,
		DirtyBlocks:   stats.DirtyBlocks,
		RegionEdges:   stats.RegionEdges,
		RegionRatio:   stats.RegionRatio,
		NumComponents: stats.NumComponents,
		Vertices:      newGraph.NumVertices(),
		Edges:         newGraph.NumEdges(),
		Invalidated:   dropped,
		Degraded:      degradedCause != "",
		DegradedCause: degradedCause,
		ElapsedNs:     int64(elapsed),
	})
}

// writeMutateRunError maps a pre-ack engine failure onto the same statuses
// /v1/bcc uses.
func writeMutateRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "admission queue full, retry later")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, "mutation did not finish in time: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// --- stats -------------------------------------------------------------------

// IncrSnapshot is the /statsz incr section. It appears only once the first
// mutation has been acknowledged, so an unmutated server's /statsz is
// byte-identical to older builds.
type IncrSnapshot struct {
	Batches       int64 `json:"batches"`
	Deltas        int64 `json:"deltas"`
	Inserts       int64 `json:"inserts"`
	Deletes       int64 `json:"deletes"`
	Absorbed      int64 `json:"absorbed"`
	BlocksDirtied int64 `json:"blocks_dirtied"`
	Absorbs       int64 `json:"absorbs"`
	Rebuilds      int64 `json:"rebuilds"`
	Fulls         int64 `json:"fulls"`
	Served        int64 `json:"served_from_state"`
	Invalidated   int64 `json:"invalidated_results"`
	StateDrops    int64 `json:"state_drops"`
	MutatedGraphs int   `json:"mutated_graphs"`
	// Latency holds apply-latency histograms by path, exposing the
	// incremental-vs-full comparison the planner's threshold trades on.
	Latency map[string]HistogramSnapshot `json:"latency_ns_by_mode,omitempty"`
}

func (st *incrState) snapshot() *IncrSnapshot {
	snap := &IncrSnapshot{
		Batches:       st.batches.Load(),
		Deltas:        st.deltas.Load(),
		Inserts:       st.inserts.Load(),
		Deletes:       st.deletes.Load(),
		Absorbed:      st.absorbed.Load(),
		BlocksDirtied: st.dirtied.Load(),
		Absorbs:       st.modes[incr.ModeAbsorb.String()].Load(),
		Rebuilds:      st.modes[incr.ModeRebuild.String()].Load(),
		Fulls:         st.modes[incr.ModeFull.String()].Load(),
		Served:        st.served.Load(),
		Invalidated:   st.invalidated.Load(),
		StateDrops:    st.stateDrops.Load(),
		MutatedGraphs: st.mutatedGraphs(),
		Latency:       map[string]HistogramSnapshot{},
	}
	for mode, h := range st.latency {
		if hs := h.Snapshot(); hs.Count > 0 {
			snap.Latency[mode] = hs
		}
	}
	return snap
}
