package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bicc"
)

// testGraph is a small fixed decomposition target: a triangle {0,1,2}, a
// bridge 2–3, and a square {3,4,5,6} — 3 blocks, cut vertices {2, 3}, one
// bridge.
func testGraph(t *testing.T) *bicc.Graph {
	t.Helper()
	g, err := bicc.NewGraph(7, []bicc.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 2, V: 3},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// bigGraph is shared by the tests that need runs long enough to interrupt.
var bigGraph = sync.OnceValue(func() *bicc.Graph {
	g, err := bicc.RandomConnectedGraph(50_000, 200_000, 7)
	if err != nil {
		panic(err)
	}
	return g
})

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func uploadGraph(t *testing.T, ts *httptest.Server, g *bicc.Graph, query string) graphUploadResponse {
	t.Helper()
	var buf bytes.Buffer
	if err := bicc.WriteGraphBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/graphs?format=binary"
	if query != "" {
		url += "&" + query
	}
	resp, err := http.Post(url, "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	var out graphUploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func postBCC(t *testing.T, ts *httptest.Server, req bccRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/bcc", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestEndToEndQuery(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	up := uploadGraph(t, ts, testGraph(t), "name=demo")
	if up.Vertices != 7 || up.Edges != 8 || up.Existed {
		t.Fatalf("upload response: %+v", up)
	}
	resp, data := postBCC(t, ts, bccRequest{
		Graph:     up.Fingerprint,
		Algorithm: "tv-opt",
		Include:   []string{"articulation", "bridges", "blockcut"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out bccResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.NumComponents != 3 {
		t.Fatalf("num_components = %d, want 3: %s", out.NumComponents, data)
	}
	if len(out.ArticulationPoints) != 2 || out.ArticulationPoints[0] != 2 || out.ArticulationPoints[1] != 3 {
		t.Fatalf("articulation points = %v, want [2 3]", out.ArticulationPoints)
	}
	if len(out.Bridges) != 1 || out.Bridges[0] != 3 {
		t.Fatalf("bridges = %v, want [3]", out.Bridges)
	}
	if out.BlockCut == nil || out.BlockCut.NumBlocks != 3 || out.BlockCut.NumNodes != 5 {
		t.Fatalf("blockcut = %+v", out.BlockCut)
	}
	// Second identical query must be a cache hit.
	resp2, data2 := postBCC(t, ts, bccRequest{
		Graph:     up.Fingerprint,
		Algorithm: "tv-opt",
		Include:   []string{"articulation", "bridges", "blockcut"},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, data2)
	}
	var out2 bccResponse
	if err := json.Unmarshal(data2, &out2); err != nil {
		t.Fatal(err)
	}
	if !out2.Cached {
		t.Fatal("second identical query was not served from cache")
	}
	if snap := s.Snapshot(); snap.CacheHits != 1 || snap.Computations != 1 {
		t.Fatalf("stats after hit: %+v", snap)
	}
}

func TestUploadDedupAndNormalize(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up1 := uploadGraph(t, ts, testGraph(t), "")
	up2 := uploadGraph(t, ts, testGraph(t), "")
	if up1.Fingerprint != up2.Fingerprint {
		t.Fatalf("same content, different fingerprints: %s vs %s", up1.Fingerprint, up2.Fingerprint)
	}
	if !up2.Existed {
		t.Fatal("re-upload not reported as existing")
	}
	// Normalize path: text upload with a self loop and duplicate.
	body := "p 3 4\n0 1\n1 1\n1 2\n0 1\n"
	resp, err := http.Post(ts.URL+"/v1/graphs?normalize=1", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out graphUploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || out.Edges != 2 || out.Loops != 1 || out.Dups != 1 {
		t.Fatalf("normalize upload: status %d, %+v", resp.StatusCode, out)
	}
}

func TestGraphLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadGraph(t, ts, testGraph(t), "name=x")

	resp, err := http.Get(ts.URL + "/v1/graphs/" + up.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get graph: %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/"+up.Fingerprint, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete graph: %d", resp.StatusCode)
	}

	r2, data := postBCC(t, ts, bccRequest{Graph: up.Fingerprint})
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("query after delete: %d %s", r2.StatusCode, data)
	}
}

// TestSingleFlight drives 32 concurrent identical queries and asserts the
// engine ran exactly once (acceptance criterion).
func TestSingleFlight(t *testing.T) {
	const clients = 32
	var computations atomic.Int64
	started := make(chan struct{})
	var startOnce sync.Once
	release := make(chan struct{})
	cfg := Config{
		Workers: 4,
		Queue:   clients,
		Compute: func(ctx context.Context, g *bicc.Graph, opt *bicc.Options) (*bicc.Result, error) {
			computations.Add(1)
			startOnce.Do(func() { close(started) })
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return bicc.BiconnectedComponentsCtx(ctx, g, opt)
		},
	}
	s, ts := newTestServer(t, cfg)
	up := uploadGraph(t, ts, testGraph(t), "")

	var wg sync.WaitGroup
	codes := make([]int, clients)
	comps := make([]int, clients)
	errsCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(bccRequest{Graph: up.Fingerprint, Algorithm: "tv-opt"})
			resp, err := http.Post(ts.URL+"/v1/bcc", "application/json", bytes.NewReader(body))
			if err != nil {
				errsCh <- err
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			var out bccResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errsCh <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			comps[i] = out.NumComponents
		}(i)
	}
	// Hold the computation open until every client has had ample time to
	// arrive and coalesce, then let it finish.
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("no computation started")
	}
	time.Sleep(300 * time.Millisecond)
	close(release)
	wg.Wait()
	close(errsCh)
	for err := range errsCh {
		t.Fatal(err)
	}
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if comps[i] != 3 {
			t.Fatalf("client %d: num_components = %d, want 3", i, comps[i])
		}
	}
	if n := computations.Load(); n != 1 {
		t.Fatalf("engine ran %d times for %d identical in-flight queries, want exactly 1", n, clients)
	}
	snap := s.Snapshot()
	if snap.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want 1 (snapshot %+v)", snap.CacheMisses, snap)
	}
	if snap.Coalesced+snap.CacheHits != clients-1 {
		t.Fatalf("coalesced+hits = %d, want %d (snapshot %+v)",
			snap.Coalesced+snap.CacheHits, clients-1, snap)
	}
}

// TestDeadlineReturnsPromptly uploads a graph big enough that a full run
// takes far longer than 1 ms and asserts a 1 ms-deadline query comes back
// quickly with a context error rather than hanging (acceptance criterion).
func TestDeadlineReturnsPromptly(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadGraph(t, ts, bigGraph(), "")
	start := time.Now()
	resp, data := postBCC(t, ts, bccRequest{
		Graph:     up.Fingerprint,
		Algorithm: "tv-smp",
		TimeoutMs: 1,
	})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "deadline") {
		t.Fatalf("error does not mention the deadline: %s", data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// Generous bound: well under any full-size engine run, far over
	// scheduling noise.
	if elapsed > 10*time.Second {
		t.Fatalf("deadline query took %v", elapsed)
	}
}

// TestQueueFullRejects saturates one worker and a one-slot queue with
// distinct queries and asserts the third gets 429 + Retry-After (acceptance
// criterion).
func TestQueueFullRejects(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 16)
	cfg := Config{
		Workers: 1,
		Queue:   1,
		Compute: func(ctx context.Context, g *bicc.Graph, opt *bicc.Options) (*bicc.Result, error) {
			started <- struct{}{}
			select {
			case <-block:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return bicc.BiconnectedComponentsCtx(ctx, g, opt)
		},
	}
	s, ts := newTestServer(t, cfg)
	up := uploadGraph(t, ts, testGraph(t), "")

	// Distinct procs values force distinct cache keys, so the queries cannot
	// coalesce and must each claim admission.
	fire := func(procs int, out chan<- *http.Response) {
		body, _ := json.Marshal(bccRequest{Graph: up.Fingerprint, Procs: procs})
		resp, err := http.Post(ts.URL+"/v1/bcc", "application/json", bytes.NewReader(body))
		if err != nil {
			out <- nil
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		out <- resp
	}
	c1 := make(chan *http.Response, 1)
	go fire(1, c1)
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first query never reached the engine")
	}
	c2 := make(chan *http.Response, 1)
	go fire(2, c2)
	// Wait until the second query is actually parked in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for s.admission.QueueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.admission.QueueDepth() == 0 {
		t.Fatal("second query never queued")
	}

	c3 := make(chan *http.Response, 1)
	go fire(3, c3)
	r3 := <-c3
	if r3 == nil {
		t.Fatal("third query transport error")
	}
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third query: status %d, want 429", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(block)
	for _, c := range []chan *http.Response{c1, c2} {
		r := <-c
		if r == nil || r.StatusCode != http.StatusOK {
			t.Fatalf("blocked query finished badly: %+v", r)
		}
	}
	if snap := s.Snapshot(); snap.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", snap.Rejected)
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	up := uploadGraph(t, ts, testGraph(t), "")
	if _, data := postBCC(t, ts, bccRequest{Graph: up.Fingerprint}); len(data) == 0 {
		t.Fatal("empty bcc response")
	}
	if _, data := postBCC(t, ts, bccRequest{Graph: up.Fingerprint, Algorithm: "fast-bcc"}); len(data) == 0 {
		t.Fatal("empty fast-bcc response")
	}
	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests != 2 || snap.Computations != 2 || snap.Graphs != 1 {
		t.Fatalf("statsz: %+v", snap)
	}
	if len(snap.Latency) == 0 {
		t.Fatal("statsz has no latency histograms after a computation")
	}
	// Every engine gets its own circuit breaker, present from the first
	// snapshot on; the fast-bcc query above also leaves a latency row.
	for _, name := range []string{"tv-smp", "tv-opt", "tv-filter", "fast-bcc"} {
		if _, ok := snap.Breakers[name]; !ok {
			t.Errorf("statsz missing breaker entry for %q", name)
		}
	}
	if _, ok := snap.Latency["fast-bcc"]; !ok {
		t.Error("statsz missing latency histogram for fast-bcc after a fast-bcc query")
	}
	// With the planner off (the zero-value default), /statsz carries no plan
	// section — the pre-planner wire shape, byte for byte.
	if snap.Plan != nil {
		t.Errorf("statsz has a plan section with the planner off: %+v", snap.Plan)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},
		{`{"graph":"nope"}`, http.StatusNotFound},
		{`{"graph":"x","algorithm":"quantum"}`, http.StatusBadRequest},
		{`{"graph":"x","include":["everything"]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/bcc", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("body %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	// Local file loading is off by default.
	resp, err := http.Post(ts.URL+"/v1/graphs/open", "application/json", strings.NewReader(`{"path":"/etc/hosts"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("open with AllowLocalFiles=false: %d, want 403", resp.StatusCode)
	}
}
