package service

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"bicc"
	"bicc/internal/durable"
)

// DurabilityConfig wires a Server to an on-disk data directory. The zero
// value of every field but Dir picks the durable package's defaults.
type DurabilityConfig struct {
	// Dir is the data directory: WAL and snapshot generations at the top
	// level, spilled results under spill/.
	Dir string
	// Sync is the WAL fsync policy; the zero value fsyncs every append
	// before it is acknowledged.
	Sync durable.SyncMode
	// SyncInterval is the flush period under SyncInterval mode.
	SyncInterval time.Duration
	// CompactBytes triggers background snapshot compaction once the active
	// WAL generation passes this size; <= 0 means 64 MiB.
	CompactBytes int64
	// SpillBudget bounds the disk bytes held by spilled results; <= 0
	// means unlimited.
	SpillBudget int64
	// MemBudget bounds the result cache's resident bytes; once exceeded,
	// LRU results are demoted to the spill tier instead of dropped. <= 0
	// leaves only the entry-count bound.
	MemBudget int64
	// VerifySample is how many recovered results are re-verified end to
	// end (ReconstructResult + Verify) at boot; <= 0 means 3.
	VerifySample int
	// ReplayLogEvery makes boot-time WAL replay log a progress line every N
	// records (through Logf); <= 0 disables progress lines.
	ReplayLogEvery int
	// Logf receives replay progress lines; nil disables them.
	Logf func(format string, args ...any)
}

// RecoveryReport summarizes what EnableDurability found on disk, for the
// daemon's startup log line.
type RecoveryReport struct {
	Graphs          int           // graphs recovered into the registry
	DroppedGraphs   int           // recovered graphs whose fingerprint no longer matched
	Truncations     int           // torn WAL/snapshot tails repaired
	DroppedRecords  int           // framed records whose payload failed to decode
	WALRecords      int           // WAL records replayed at boot
	SnapshotRecords int           // snapshot records replayed at boot
	SpilledResults  int           // results found in the spill tier
	VerifiedResults int           // spilled results re-verified clean at boot
	VerifyFailures  int           // spilled results that failed re-verification (deleted)
	Duration        time.Duration // total recovery wall time
}

// durability is a Server's live durable state; the Server holds it through
// an atomic pointer so the disabled path costs one nil check.
type durability struct {
	store *durable.Store
	spill *durable.Spill
	dir   string // the data directory (quarantine lives under it)

	recoveredGraphs int64
	recoverySeconds float64
	truncations     int64
	walRecords      int64
	snapRecords     int64
	verifiedResults int64
	verifyFailures  atomic.Int64
}

// EnableDurability opens (or creates) the data directory, replays the
// newest snapshot plus WAL into the graph registry, adopts the spill tier
// as the result cache's disk level, and registers the durable metrics.
// Call before serving requests; a second call is an error.
func (s *Server) EnableDurability(cfg DurabilityConfig) (*RecoveryReport, error) {
	if s.dur.Load() != nil {
		return nil, fmt.Errorf("service: durability already enabled")
	}
	start := time.Now()
	d := &durability{dir: cfg.Dir}

	fsync := s.metrics.Histogram("bicc_wal_fsync_seconds",
		"Latency of WAL fsync calls.")
	store, rec, err := durable.Open(durable.Config{
		Dir:            cfg.Dir,
		Sync:           cfg.Sync,
		SyncInterval:   cfg.SyncInterval,
		CompactBytes:   cfg.CompactBytes,
		FsyncObserve:   fsync.Observe,
		ReplayLogEvery: cfg.ReplayLogEvery,
		Logf:           cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	d.store = store
	d.truncations = int64(rec.Truncations)
	d.walRecords = int64(rec.WALRecords)
	d.snapRecords = int64(rec.SnapshotRecords)

	// From here on, space evictions must reach the WAL too, or recovery
	// would resurrect graphs the registry already let go. The observer
	// fires outside the registry lock (see Registry.Add).
	s.registry.SetEvictObserver(func(fp string) { _ = store.AppendRemove(fp) })

	// Load the recovered graphs, re-checking each content address: the
	// codec's CRC already rejects torn records, so a fingerprint mismatch
	// here means silent corruption beyond the frame — drop it durably.
	report := &RecoveryReport{
		Truncations:     rec.Truncations,
		DroppedRecords:  rec.DroppedRecords,
		WALRecords:      rec.WALRecords,
		SnapshotRecords: rec.SnapshotRecords,
	}
	for _, gr := range rec.Graphs {
		// A mutated graph's content no longer hashes to its stable id: the
		// current content fingerprint recorded by the last delta is what the
		// replayed edge list must match.
		want := gr.FP
		if gr.Gen > 0 {
			want = gr.CFP
		}
		if Fingerprint(gr.Graph) != want {
			_ = store.AppendRemove(gr.FP)
			report.DroppedGraphs++
			continue
		}
		if gr.Gen > 0 {
			s.registry.AddAt(gr.FP, gr.Name, gr.Graph, gr.Gen, gr.CFP)
		} else {
			s.registry.Add(gr.Name, gr.Graph)
		}
		report.Graphs++
	}
	d.recoveredGraphs = int64(report.Graphs)

	spill, keys, err := durable.OpenSpill(filepath.Join(cfg.Dir, "spill"), cfg.SpillBudget)
	if err != nil {
		_ = store.Close()
		s.registry.SetEvictObserver(nil)
		return nil, err
	}
	d.spill = spill
	report.SpilledResults = len(keys)

	// Re-verify a sample of recovered results end to end: rebuild the
	// Result from the persisted labels and run the independent checker.
	// CRC guards against torn bytes; this guards against a stale or
	// cross-wired record that is internally consistent but wrong.
	sample := cfg.VerifySample
	if sample <= 0 {
		sample = 3
	}
	for _, key := range keys {
		if report.VerifiedResults+report.VerifyFailures >= sample {
			break
		}
		rr, ok := spill.Get(key)
		if !ok {
			continue
		}
		g, ok := s.registry.Acquire(rr.FP)
		if !ok {
			continue // graph not resident; nothing to check against
		}
		algo, aerr := parseAlgorithm(rr.Algorithm)
		clean := aerr == nil
		if clean {
			res, rerr := bicc.ReconstructResult(g, algo, rr.EdgeComponent)
			clean = rerr == nil && bicc.Verify(g, res) == nil
		}
		s.registry.Release(rr.FP)
		if clean {
			report.VerifiedResults++
		} else {
			spill.Remove(key)
			report.VerifyFailures++
		}
	}
	d.verifiedResults = int64(report.VerifiedResults)
	d.verifyFailures.Store(int64(report.VerifyFailures))

	s.cache.SetDurable(spill, cfg.MemBudget)
	report.Duration = time.Since(start)
	d.recoverySeconds = report.Duration.Seconds()
	d.register(s)
	s.dur.Store(d)
	return report, nil
}

// register exposes the durable state on the server's metrics registry.
// These series exist only when durability is enabled, so a diskless bccd's
// /metrics output is unchanged.
func (d *durability) register(s *Server) {
	reg := s.metrics
	st, sp := d.store, d.spill
	reg.GaugeFunc("bicc_wal_bytes",
		"Bytes in the active WAL generation.",
		func() float64 { return float64(st.WALBytes()) })
	reg.GaugeFunc("bicc_wal_generation",
		"Current WAL/snapshot generation number.",
		func() float64 { return float64(st.Generation()) })
	reg.CounterVec("bicc_wal_appends_total",
		"Records appended to the WAL.").Func(st.Appends)
	reg.CounterVec("bicc_wal_errors_total",
		"WAL append failures (write or fsync).").Func(st.WALErrors)
	reg.CounterVec("bicc_wal_compactions_total",
		"Snapshot compactions completed.").Func(st.Compactions)
	reg.CounterVec("bicc_wal_compact_errors_total",
		"Snapshot compactions that failed and were rolled back.").Func(st.CompactErrors)
	reg.GaugeFunc("bicc_recovered_graphs",
		"Graphs recovered from disk at boot.",
		func() float64 { return float64(d.recoveredGraphs) })
	reg.GaugeFunc("bicc_recovery_seconds",
		"Wall time of crash recovery at boot.",
		func() float64 { return d.recoverySeconds })
	reg.CounterVec("bicc_recovery_verify_failures_total",
		"Spilled results that failed boot-time re-verification and were dropped.").Func(d.verifyFailures.Load)
	reg.GaugeFunc("bicc_spill_bytes",
		"Disk bytes held by spilled results.",
		func() float64 { return float64(sp.Bytes()) })
	reg.GaugeFunc("bicc_spill_entries",
		"Results resident in the spill tier.",
		func() float64 { return float64(sp.Len()) })
	reg.CounterVec("bicc_spill_writes_total",
		"Results demoted to the spill tier.").Func(sp.Writes)
	reg.CounterVec("bicc_spill_hits_total",
		"Queries promoted from the spill tier.").Func(sp.Hits)
	reg.CounterVec("bicc_spill_misses_total",
		"Spill lookups that found nothing.").Func(sp.Misses)
	reg.CounterVec("bicc_spill_evictions_total",
		"Spilled results evicted for disk budget.").Func(sp.Evictions)
	reg.CounterVec("bicc_spill_corrupt_total",
		"Spilled results dropped on CRC or decode failure.").Func(sp.Corrupt)
	reg.GaugeFunc("bicc_result_cache_mem_bytes",
		"Estimated resident bytes of the in-memory result cache.",
		func() float64 { return float64(s.cache.Bytes()) })
}

// CloseDurability flushes and closes the WAL and detaches the spill tier.
// Call it after the HTTP server has fully stopped: a clean shutdown must
// leave files that the next boot recovers with zero truncations.
func (s *Server) CloseDurability() error {
	d := s.dur.Swap(nil)
	if d == nil {
		return nil
	}
	s.registry.SetEvictObserver(nil)
	s.cache.SetDurable(nil, 0)
	return d.store.Close()
}

// DurabilitySnapshot is the /statsz durability section. It is present only
// when a data directory is configured, so a diskless bccd's /statsz output
// is byte-identical to older builds.
type DurabilitySnapshot struct {
	RecoveredGraphs int64   `json:"recovered_graphs"`
	RecoverySeconds float64 `json:"recovery_seconds"`
	Truncations     int64   `json:"wal_truncations"`
	WALReplayed     int64   `json:"wal_replayed_records"`
	SnapReplayed    int64   `json:"snapshot_records"`
	WALBytes        int64   `json:"wal_bytes"`
	WALGeneration   int64   `json:"wal_generation"`
	WALAppends      int64   `json:"wal_appends"`
	WALErrors       int64   `json:"wal_errors"`
	Compactions     int64   `json:"wal_compactions"`
	SpillEntries    int     `json:"spill_entries"`
	SpillBytes      int64   `json:"spill_bytes"`
	SpillWrites     int64   `json:"spill_writes"`
	SpillHits       int64   `json:"spill_hits"`
	SpillMisses     int64   `json:"spill_misses"`
	SpillEvictions  int64   `json:"spill_evictions"`
	SpillCorrupt    int64   `json:"spill_corrupt"`
	CacheMemBytes   int64   `json:"result_cache_mem_bytes"`
	VerifiedResults int64   `json:"verified_results"`
	VerifyFailures  int64   `json:"verify_failures"`
}

func (d *durability) snapshot(c *ResultCache) *DurabilitySnapshot {
	return &DurabilitySnapshot{
		RecoveredGraphs: d.recoveredGraphs,
		RecoverySeconds: d.recoverySeconds,
		Truncations:     d.truncations,
		WALReplayed:     d.walRecords,
		SnapReplayed:    d.snapRecords,
		WALBytes:        d.store.WALBytes(),
		WALGeneration:   int64(d.store.Generation()),
		WALAppends:      d.store.Appends(),
		WALErrors:       d.store.WALErrors(),
		Compactions:     d.store.Compactions(),
		SpillEntries:    d.spill.Len(),
		SpillBytes:      d.spill.Bytes(),
		SpillWrites:     d.spill.Writes(),
		SpillHits:       d.spill.Hits(),
		SpillMisses:     d.spill.Misses(),
		SpillEvictions:  d.spill.Evictions(),
		SpillCorrupt:    d.spill.Corrupt(),
		CacheMemBytes:   c.Bytes(),
		VerifiedResults: d.verifiedResults,
		VerifyFailures:  d.verifyFailures.Load(),
	}
}
