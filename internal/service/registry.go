package service

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"bicc"
)

// Fingerprint returns the content fingerprint of a graph: a 64-bit FNV-1a
// hash over the vertex count and the edge list in order, rendered as 16 hex
// digits. Identical uploads always map to the same registry entry, so
// clients can address graphs by content instead of by upload id.
func Fingerprint(g *bicc.Graph) string {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.NumVertices()))
	h.Write(buf[:])
	for _, e := range g.Edges() {
		binary.LittleEndian.PutUint32(buf[0:], uint32(e.U))
		binary.LittleEndian.PutUint32(buf[4:], uint32(e.V))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// GraphInfo is the public description of a registered graph.
//
// Fingerprint is the graph's stable id: the content fingerprint at upload
// time. Mutations (POST /v1/graphs/{fp}/edges) keep the id but advance
// Generation and ContentFP — the fingerprint of the current edge list.
// Both are omitted from JSON while the graph is unmutated (generation 0),
// so listings of never-mutated graphs are byte-identical to older builds.
type GraphInfo struct {
	Fingerprint string `json:"fingerprint"`
	Name        string `json:"name,omitempty"`
	Vertices    int    `json:"vertices"`
	Edges       int    `json:"edges"`
	Bytes       int64  `json:"bytes"`
	Refs        int    `json:"refs"`
	Generation  uint64 `json:"generation,omitempty"`
	ContentFP   string `json:"content_fingerprint,omitempty"`
}

// regEntry is one registered graph plus its bookkeeping.
type regEntry struct {
	info    GraphInfo
	g       *bicc.Graph
	refs    int
	lastUse time.Time
	dead    bool // removed while referenced; drop on last release
}

// Registry is a concurrent, content-addressed store of loaded graphs.
// Entries are reference-counted: queries Acquire a graph for the duration of
// a computation, which pins it against eviction. When the resident size
// exceeds maxBytes, unreferenced entries are evicted least-recently-used
// first; referenced entries are never evicted, so the registry can
// transiently exceed its budget under load rather than break running
// queries.
type Registry struct {
	mu       sync.Mutex
	entries  map[string]*regEntry
	maxBytes int64
	bytes    int64
	evicted  int64
	// onEvict, when set, is told the fingerprint of every entry evicted
	// for space, after the registry lock is released. The durability layer
	// uses it to append a WAL remove, keeping the on-disk state in step
	// with the resident set.
	onEvict func(fp string)
}

// SetEvictObserver installs (or, with nil, removes) the space-eviction
// callback. The callback runs outside the registry lock.
func (r *Registry) SetEvictObserver(fn func(fp string)) {
	r.mu.Lock()
	r.onEvict = fn
	r.mu.Unlock()
}

// NewRegistry returns a registry with the given resident-size budget in
// bytes; maxBytes <= 0 means unlimited.
func NewRegistry(maxBytes int64) *Registry {
	return &Registry{entries: map[string]*regEntry{}, maxBytes: maxBytes}
}

// graphBytes estimates the resident size of a graph: 8 bytes per edge plus
// slice headers; CSR conversions made during queries are transient and not
// charged.
func graphBytes(g *bicc.Graph) int64 {
	return int64(g.NumEdges())*8 + 64
}

// Add registers g under its content fingerprint and returns the fingerprint.
// Re-adding an identical graph is an idempotent no-op that refreshes the
// entry's recency (existed=true). Name is a client-supplied label kept for
// listings only.
func (r *Registry) Add(name string, g *bicc.Graph) (fp string, existed bool) {
	fp = Fingerprint(g)
	r.mu.Lock()
	if e, ok := r.entries[fp]; ok && !e.dead {
		e.lastUse = time.Now()
		if name != "" {
			e.info.Name = name
		}
		r.mu.Unlock()
		return fp, true
	}
	e := &regEntry{
		info: GraphInfo{
			Fingerprint: fp,
			Name:        name,
			Vertices:    g.NumVertices(),
			Edges:       g.NumEdges(),
			Bytes:       graphBytes(g),
		},
		g:       g,
		lastUse: time.Now(),
	}
	r.entries[fp] = e
	r.bytes += e.info.Bytes
	victims := r.evictLocked(e)
	cb := r.onEvict
	r.mu.Unlock()
	if cb != nil {
		for _, v := range victims {
			cb(v)
		}
	}
	return fp, false
}

// Acquire pins the graph with the given fingerprint and returns it. The
// caller must Release exactly once when done.
func (r *Registry) Acquire(fp string) (*bicc.Graph, bool) {
	g, _, ok := r.AcquireInfo(fp)
	return g, ok
}

// AcquireInfo pins the graph and returns it together with its info in one
// registry transaction. Queries that key caches by generation must use this
// instead of Acquire+Get, or a concurrent mutation could hand them the old
// graph pointer paired with the new generation.
func (r *Registry) AcquireInfo(fp string) (*bicc.Graph, GraphInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[fp]
	if !ok || e.dead {
		return nil, GraphInfo{}, false
	}
	e.refs++
	e.lastUse = time.Now()
	info := e.info
	info.Refs = e.refs
	return e.g, info, true
}

// Replace swaps the graph stored under an existing stable id for its
// post-mutation edge list, advancing the generation and current content
// fingerprint. Queries holding the old pointer via Acquire keep computing
// against the snapshot they pinned; new acquires see the new graph. It
// reports whether the id was present (and live).
func (r *Registry) Replace(fp string, g *bicc.Graph, gen uint64, cfp string) bool {
	r.mu.Lock()
	e, ok := r.entries[fp]
	if !ok || e.dead {
		r.mu.Unlock()
		return false
	}
	r.bytes -= e.info.Bytes
	e.g = g
	e.info.Vertices = g.NumVertices()
	e.info.Edges = g.NumEdges()
	e.info.Bytes = graphBytes(g)
	e.info.Generation = gen
	e.info.ContentFP = cfp
	r.bytes += e.info.Bytes
	e.lastUse = time.Now()
	victims := r.evictLocked(e)
	cb := r.onEvict
	r.mu.Unlock()
	if cb != nil {
		for _, v := range victims {
			cb(v)
		}
	}
	return true
}

// AddAt registers g under an explicit stable id at a given generation — the
// durable-recovery path, where a mutated graph's content no longer hashes to
// its id. Unlike Add it never merges with an existing entry; recovery runs
// before the server takes traffic.
func (r *Registry) AddAt(fp, name string, g *bicc.Graph, gen uint64, cfp string) {
	r.mu.Lock()
	e := &regEntry{
		info: GraphInfo{
			Fingerprint: fp,
			Name:        name,
			Vertices:    g.NumVertices(),
			Edges:       g.NumEdges(),
			Bytes:       graphBytes(g),
			Generation:  gen,
			ContentFP:   cfp,
		},
		g:       g,
		lastUse: time.Now(),
	}
	if old, ok := r.entries[fp]; ok {
		r.bytes -= old.info.Bytes
	}
	r.entries[fp] = e
	r.bytes += e.info.Bytes
	victims := r.evictLocked(e)
	cb := r.onEvict
	r.mu.Unlock()
	if cb != nil {
		for _, v := range victims {
			cb(v)
		}
	}
}

// Release unpins a graph previously Acquired. Releasing the last reference
// to a removed entry deletes it.
func (r *Registry) Release(fp string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[fp]
	if !ok {
		return
	}
	if e.refs > 0 {
		e.refs--
	}
	if e.dead && e.refs == 0 {
		r.deleteLocked(fp, e)
	}
}

// Remove unregisters a graph. If queries still hold references, the entry is
// hidden immediately (no new Acquires) and reclaimed when the last reference
// is released. It reports whether the fingerprint was present.
func (r *Registry) Remove(fp string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[fp]
	if !ok || e.dead {
		return false
	}
	if e.refs > 0 {
		e.dead = true
		return true
	}
	r.deleteLocked(fp, e)
	return true
}

// Get returns the info for one fingerprint.
func (r *Registry) Get(fp string) (GraphInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[fp]
	if !ok || e.dead {
		return GraphInfo{}, false
	}
	info := e.info
	info.Refs = e.refs
	return info, true
}

// List returns all live entries sorted by fingerprint.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, len(r.entries))
	for _, e := range r.entries {
		if e.dead {
			continue
		}
		info := e.info
		info.Refs = e.refs
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

// Bytes returns the resident size of all entries (including dead ones not
// yet reclaimed).
func (r *Registry) Bytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}

// Len returns the number of live entries.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.entries {
		if !e.dead {
			n++
		}
	}
	return n
}

// Evicted returns how many entries have been evicted for space so far.
func (r *Registry) Evicted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}

func (r *Registry) deleteLocked(fp string, e *regEntry) {
	delete(r.entries, fp)
	r.bytes -= e.info.Bytes
}

// evictLocked drops unreferenced entries, least recently used first, until
// the budget is met or only pinned entries remain, returning the victims'
// fingerprints so the caller can notify the evict observer outside the
// lock. keep, when non-nil, is exempt — the entry being added must survive
// its own Add even if it alone blows the budget, or uploads would succeed
// and immediately vanish.
func (r *Registry) evictLocked(keep *regEntry) []string {
	if r.maxBytes <= 0 {
		return nil
	}
	var victims []string
	for r.bytes > r.maxBytes {
		var victimFP string
		var victim *regEntry
		for fp, e := range r.entries {
			if e.refs > 0 || e.dead || e == keep {
				continue
			}
			if victim == nil || e.lastUse.Before(victim.lastUse) {
				victimFP, victim = fp, e
			}
		}
		if victim == nil {
			break
		}
		r.deleteLocked(victimFP, victim)
		r.evicted++
		victims = append(victims, victimFP)
	}
	return victims
}
