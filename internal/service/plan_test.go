package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"bicc"
)

// denseGraph is an m = 4n random connected graph big enough to clear the
// planner's small-work region (work = n + 2m ≈ 90k > 64Ki), shared across
// the plan tests.
var denseGraph = sync.OnceValue(func() *bicc.Graph {
	g, err := bicc.RandomConnectedGraph(10_000, 40_000, 11)
	if err != nil {
		panic(err)
	}
	return g
})

// postBCCExplain is postBCC against /v1/bcc?explain=1.
func postBCCExplain(t *testing.T, ts *httptest.Server, req bccRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/bcc?explain=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestPlanPromotesFastBCCAtP1 is the PR's acceptance criterion: with the
// planner enabled and no latency history, an unannotated algorithm:"auto"
// query on an m = 4n graph at procs 1 dispatches the fast-bcc engine — the
// FAST-BCC promotion ROADMAP gated on multi-core evidence — verified through
// both ?explain=1 and the bicc_plan_* counters on /statsz.
func TestPlanPromotesFastBCCAtP1(t *testing.T) {
	s, ts := newTestServer(t, Config{PlanMode: PlanAdaptive})
	up := uploadGraph(t, ts, denseGraph(), "name=dense4n")

	resp, data := postBCCExplain(t, ts, bccRequest{Graph: up.Fingerprint, Algorithm: "auto", Procs: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out bccResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "fast-bcc" {
		t.Fatalf("auto m=4n at p=1 dispatched %q, want fast-bcc: %s", out.Algorithm, data)
	}
	if out.Degraded {
		t.Fatalf("degraded run: %s", data)
	}
	if out.Plan == nil || out.Plan.Mode != PlanAdaptive || out.Plan.Engine != "fast-bcc" || out.Plan.Procs != 1 {
		t.Fatalf("explain echo: %+v", out.Plan)
	}
	if out.Plan.Features == nil || out.Plan.Features.DensityClass != 2 {
		t.Fatalf("features echo: %+v", out.Plan.Features)
	}
	if out.Plan.Decision == nil || len(out.Plan.Decision.Candidates) == 0 {
		t.Fatalf("decision echo carries no candidates: %+v", out.Plan.Decision)
	}

	snap := s.Snapshot()
	if snap.Plan == nil {
		t.Fatal("statsz has no plan section with the planner enabled")
	}
	if snap.Plan.Mode != PlanAdaptive || snap.Plan.Decisions != 1 || snap.Plan.ByEngine["fast-bcc"] != 1 {
		t.Fatalf("plan snapshot: %+v", snap.Plan)
	}
	if snap.Plan.Observations != 1 {
		t.Fatalf("clean run not observed: %+v", snap.Plan)
	}
}

// TestPlanExplainMatchesDispatch asserts the ?explain=1 echo always names
// the engine and procs the request actually ran with — pinned and unpinned,
// planner on and off, cold and cached.
func TestPlanExplainMatchesDispatch(t *testing.T) {
	for _, mode := range []string{PlanAdaptive, PlanFrozen, PlanOff} {
		t.Run(mode, func(t *testing.T) {
			_, ts := newTestServer(t, Config{PlanMode: mode})
			up := uploadGraph(t, ts, denseGraph(), "")
			for _, procs := range []int{1, 0, 2, 1} { // final 1 repeats: cache hit
				resp, data := postBCCExplain(t, ts, bccRequest{Graph: up.Fingerprint, Algorithm: "auto", Procs: procs})
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("procs=%d: status %d: %s", procs, resp.StatusCode, data)
				}
				var out bccResponse
				if err := json.Unmarshal(data, &out); err != nil {
					t.Fatal(err)
				}
				if out.Plan == nil {
					t.Fatalf("procs=%d: no plan echo: %s", procs, data)
				}
				if out.Plan.Engine != out.Algorithm {
					t.Fatalf("procs=%d: explain says %q, dispatched %q: %s", procs, out.Plan.Engine, out.Algorithm, data)
				}
				if procs > 0 && out.Plan.Procs != procs {
					t.Fatalf("procs=%d: explain procs %d", procs, out.Plan.Procs)
				}
				if mode == PlanOff {
					if out.Plan.Mode != PlanOff || out.Plan.Decision != nil {
						t.Fatalf("off-mode echo: %+v", out.Plan)
					}
				} else if out.Plan.Decision == nil || out.Plan.Decision.Engine != out.Algorithm {
					t.Fatalf("decision echo: %+v vs %q", out.Plan.Decision, out.Algorithm)
				}
			}
			// Without ?explain=1 the response carries no plan section.
			_, data := postBCC(t, ts, bccRequest{Graph: up.Fingerprint, Algorithm: "auto", Procs: 1})
			var out bccResponse
			if err := json.Unmarshal(data, &out); err != nil {
				t.Fatal(err)
			}
			if out.Plan != nil {
				t.Fatalf("plan echo without explain: %s", data)
			}
		})
	}
}

// TestPlanAvoidsOpenBreaker is the service-level safety-net property: once
// fast-bcc's circuit breaker opens, the planner must stop choosing fast-bcc
// — immediately and without consuming the breaker's half-open probe budget.
func TestPlanAvoidsOpenBreaker(t *testing.T) {
	s, ts := newTestServer(t, Config{PlanMode: PlanAdaptive, BreakerThreshold: 3})
	up := uploadGraph(t, ts, denseGraph(), "")

	br := s.breakers["fast-bcc"]
	for i := 0; i < 3; i++ {
		br.Record(true)
	}
	if br.State() != BreakerOpen {
		t.Fatalf("breaker state %v after faults", br.State())
	}

	for i := 0; i < 8; i++ {
		resp, data := postBCCExplain(t, ts, bccRequest{Graph: up.Fingerprint, Algorithm: "auto", Procs: 1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var out bccResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if out.Algorithm == "fast-bcc" || (out.Plan != nil && out.Plan.Engine == "fast-bcc") {
			t.Fatalf("iteration %d chose the open-breaker engine: %s", i, data)
		}
		if out.Degraded {
			t.Fatalf("planner sent the query into a degraded path: %s", data)
		}
	}
	if br.State() != BreakerOpen {
		t.Fatalf("planning consumed the breaker's half-open probe: state %v", br.State())
	}
}

// normalizePlanBCC strips every field that may legitimately differ between a
// planner-routed query and a statically-routed one: the engine name, procs,
// timings, serving path, and the plan echo itself. What remains is the
// answer — which must be byte-identical, since all engines produce the same
// canonical labeling.
func normalizePlanBCC(t *testing.T, data []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("normalize: %v: %s", err, data)
	}
	for _, k := range []string{"elapsed_ns", "phases", "cached", "incr", "graph", "trace", "algorithm", "plan"} {
		delete(m, k)
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPlanDifferentialAutoOnOff runs the same query and mutation workload
// against an adaptive-planner server and a planner-off server and asserts
// every normalized answer is byte-equal: planner choices change latency,
// never answers. The mutation leg routes the incremental subsystem's
// degrade-to-full path through the planner as well.
func TestPlanDifferentialAutoOnOff(t *testing.T) {
	sp, planned := newTestServer(t, Config{PlanMode: PlanAdaptive, IncrThreshold: 0.01})
	ss, static := newTestServer(t, Config{PlanMode: PlanOff, IncrThreshold: 0.01})
	for _, s := range []*Server{sp, ss} {
		if err := s.EnableSharding(ShardingConfig{}); err != nil {
			t.Fatal(err)
		}
	}

	for name, g := range map[string]*bicc.Graph{"small": testGraph(t), "dense": denseGraph()} {
		upP := uploadGraph(t, planned, g, "")
		upS := uploadGraph(t, static, g, "")
		if upP.Fingerprint != upS.Fingerprint {
			t.Fatalf("%s: fingerprints diverge", name)
		}
		// Repeats drive the exploration cadence on the planned server; every
		// answer must still match the static one.
		for i := 0; i < 20; i++ {
			got := normalizePlanBCC(t, queryAll(t, planned, upP.Fingerprint, "auto"))
			want := normalizePlanBCC(t, queryAll(t, static, upS.Fingerprint, "auto"))
			if got != want {
				t.Fatalf("%s iteration %d:\nplanned: %s\nstatic:  %s", name, i, got, want)
			}
		}
		// Mutate both servers identically: intra-block absorbs and a batch
		// past the tiny threshold, which degrades to a planned full run.
		deltas := []mutationDelta{
			{Op: "insert", U: 0, V: int32(g.NumVertices() - 1)},
			{Op: "insert", U: 1, V: int32(g.NumVertices() - 2)},
		}
		mustMutate(t, planned, upP.Fingerprint, deltas)
		mustMutate(t, static, upS.Fingerprint, deltas)
		got := normalizePlanBCC(t, queryAll(t, planned, upP.Fingerprint, "auto"))
		want := normalizePlanBCC(t, queryAll(t, static, upS.Fingerprint, "auto"))
		if got != want {
			t.Fatalf("%s after mutation:\nplanned: %s\nstatic:  %s", name, got, want)
		}
		// Shard endpoints: block builds run through the planner too (Auto
		// arrives at runEngine); per-block answers must match the static
		// server's byte for byte.
		for _, path := range []string{
			"/v1/block/0?graph=", "/v1/vertex/0/blocks?graph=", "/v1/vertex/0/articulation?graph=",
		} {
			var gm, sm map[string]any
			if code := getJSON(t, planned.URL+path+upP.Fingerprint, &gm); code != http.StatusOK {
				t.Fatalf("%s %s: status %d (planned)", name, path, code)
			}
			if code := getJSON(t, static.URL+path+upS.Fingerprint, &sm); code != http.StatusOK {
				t.Fatalf("%s %s: status %d (static)", name, path, code)
			}
			for _, k := range []string{"algorithm", "graph"} {
				delete(gm, k)
				delete(sm, k)
			}
			gb, _ := json.Marshal(gm)
			sb, _ := json.Marshal(sm)
			if string(gb) != string(sb) {
				t.Fatalf("%s %s:\nplanned: %s\nstatic:  %s", name, path, gb, sb)
			}
		}
	}
}

// TestPlanStatszGolden pins the plan section's /statsz JSON shape.
func TestPlanStatszGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{PlanMode: PlanFrozen})
	up := uploadGraph(t, ts, testGraph(t), "")
	for i := 0; i < 3; i++ {
		postBCC(t, ts, bccRequest{Graph: up.Fingerprint, Algorithm: "auto", Procs: 1})
	}
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	sec, ok := m["plan"].(map[string]any)
	if !ok {
		t.Fatalf("statsz plan section missing: %v", m["plan"])
	}
	if sec["mode"] != "frozen" {
		t.Fatalf("plan.mode = %v", sec["mode"])
	}
	if sec["decisions"] != float64(3) {
		t.Fatalf("plan.decisions = %v, want 3", sec["decisions"])
	}
	// The tiny test graph sits in the sequential region; all three decisions
	// land on one engine, and the cached repeats never re-observe.
	by, ok := sec["by_engine"].(map[string]any)
	if !ok || len(by) != 1 {
		t.Fatalf("plan.by_engine = %v", sec["by_engine"])
	}
	for _, k := range []string{"max_procs", "explorations", "observations", "buckets_seen"} {
		if _, ok := sec[k]; !ok {
			t.Errorf("plan section missing %q: %v", k, sec)
		}
	}
}
