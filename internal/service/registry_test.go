package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bicc"
)

func mkGraph(t *testing.T, n int, edges []bicc.Edge) *bicc.Graph {
	t.Helper()
	g, err := bicc.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFingerprintContentAddressed(t *testing.T) {
	g1 := mkGraph(t, 4, []bicc.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	g2 := mkGraph(t, 4, []bicc.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	g3 := mkGraph(t, 4, []bicc.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	g4 := mkGraph(t, 5, []bicc.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}) // same edges, more vertices
	if Fingerprint(g1) != Fingerprint(g2) {
		t.Fatal("identical graphs fingerprint differently")
	}
	if Fingerprint(g1) == Fingerprint(g3) {
		t.Fatal("different edges, same fingerprint")
	}
	if Fingerprint(g1) == Fingerprint(g4) {
		t.Fatal("different vertex counts, same fingerprint")
	}
	if len(Fingerprint(g1)) != 16 {
		t.Fatalf("fingerprint %q is not 16 hex chars", Fingerprint(g1))
	}
}

func TestRegistryAddAcquireRemove(t *testing.T) {
	r := NewRegistry(0)
	g := mkGraph(t, 3, []bicc.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	fp, existed := r.Add("a", g)
	if existed {
		t.Fatal("fresh add reported existing")
	}
	if _, existed = r.Add("a", g); !existed {
		t.Fatal("re-add not reported existing")
	}
	got, ok := r.Acquire(fp)
	if !ok || got != g {
		t.Fatal("acquire failed")
	}
	if info, _ := r.Get(fp); info.Refs != 1 {
		t.Fatalf("refs = %d, want 1", info.Refs)
	}
	// Remove while referenced hides the entry but keeps it alive for the
	// holder.
	if !r.Remove(fp) {
		t.Fatal("remove failed")
	}
	if _, ok := r.Acquire(fp); ok {
		t.Fatal("acquire succeeded on removed entry")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after remove", r.Len())
	}
	r.Release(fp)
	if r.Bytes() != 0 {
		t.Fatalf("bytes = %d after final release", r.Bytes())
	}
	if r.Remove(fp) {
		t.Fatal("second remove succeeded")
	}
}

func TestRegistryEvictionRespectsRefsAndLRU(t *testing.T) {
	mk := func(seed int32) *bicc.Graph {
		// ~50 edges ≈ 464 bytes per graph under graphBytes.
		edges := make([]bicc.Edge, 50)
		for i := range edges {
			edges[i] = bicc.Edge{U: seed, V: int32(100 + i)}
		}
		g, err := bicc.NewGraph(200, edges)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	budget := 2*graphBytes(mk(0)) + 10 // room for two graphs
	r := NewRegistry(budget)
	fp1, _ := r.Add("g1", mk(1))
	fp2, _ := r.Add("g2", mk(2))
	if _, ok := r.Acquire(fp1); !ok { // pin g1
		t.Fatal("acquire g1")
	}
	time.Sleep(2 * time.Millisecond) // make lastUse ordering unambiguous
	fp3, _ := r.Add("g3", mk(3))
	// g2 is the only unpinned entry: it must be the victim even though g1 is
	// older.
	if _, ok := r.Get(fp2); ok {
		t.Fatal("LRU-unpinned entry g2 survived eviction")
	}
	if _, ok := r.Get(fp1); !ok {
		t.Fatal("pinned entry g1 was evicted")
	}
	if _, ok := r.Get(fp3); !ok {
		t.Fatal("just-added entry g3 was evicted")
	}
	if r.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", r.Evicted())
	}
}

func TestResultCacheSingleFlightAndLRU(t *testing.T) {
	c := NewResultCache(2)
	var runs atomic.Int64
	slow := func(ctx context.Context) (*queryResult, error) {
		runs.Add(1)
		time.Sleep(20 * time.Millisecond)
		return &queryResult{NumComponents: 1}, nil
	}
	key := resultKey{fp: "a", algo: bicc.TVOpt, procs: 2}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err, _ := c.Do(context.Background(), key, slow)
			if err != nil || res.NumComponents != 1 {
				t.Errorf("Do: %v %+v", err, res)
			}
		}()
	}
	wg.Wait()
	if runs.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", runs.Load())
	}
	// Completed entry is a hit.
	_, _, oc := c.Do(context.Background(), key, slow)
	if oc != OutcomeHit {
		t.Fatalf("outcome = %v, want hit", oc)
	}
	// Two more keys evict the oldest.
	for _, fp := range []string{"b", "c"} {
		k := resultKey{fp: fp, algo: bicc.TVOpt, procs: 2}
		if _, err, _ := c.Do(context.Background(), k, slow); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.Len())
	}
	if _, _, oc := c.Do(context.Background(), key, slow); oc != OutcomeMiss {
		t.Fatalf("evicted key outcome = %v, want miss", oc)
	}
}

func TestResultCacheDoesNotCacheErrors(t *testing.T) {
	c := NewResultCache(8)
	boom := errors.New("boom")
	key := resultKey{fp: "x"}
	fail := func(ctx context.Context) (*queryResult, error) { return nil, boom }
	if _, err, _ := c.Do(context.Background(), key, fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	var ran bool
	ok := func(ctx context.Context) (*queryResult, error) { ran = true; return &queryResult{}, nil }
	if _, err, oc := c.Do(context.Background(), key, ok); err != nil || oc != OutcomeMiss || !ran {
		t.Fatalf("retry after error: err=%v outcome=%v ran=%v", err, oc, ran)
	}
}

func TestResultCacheAbandonedComputationIsCanceled(t *testing.T) {
	c := NewResultCache(8)
	computeCanceled := make(chan error, 1)
	entered := make(chan struct{})
	compute := func(cctx context.Context) (*queryResult, error) {
		close(entered)
		<-cctx.Done()
		computeCanceled <- cctx.Err()
		return nil, cctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	go cancel() // abandon immediately-ish
	_, err, _ := c.Do(ctx, resultKey{fp: "y"}, compute)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("caller err = %v", err)
	}
	<-entered
	select {
	case err := <-computeCanceled:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("compute ctx err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("computation context never canceled after last waiter left")
	}
}

func TestAdmissionBounds(t *testing.T) {
	a := NewAdmission(2, 1)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.Inflight() != 2 {
		t.Fatalf("inflight = %d", a.Inflight())
	}
	// Third acquire queues; fourth is rejected.
	acquired := make(chan func(), 1)
	go func() {
		r, err := a.Acquire(context.Background())
		if err != nil {
			t.Error(err)
			return
		}
		acquired <- r
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.QueueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.QueueDepth() != 1 {
		t.Fatalf("queue depth = %d, want 1", a.QueueDepth())
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	r1() // frees a slot: the queued acquire proceeds
	r3 := <-acquired
	r3()
	r3() // double release must be a no-op
	r2()
	if a.Inflight() != 0 || a.QueueDepth() != 0 {
		t.Fatalf("inflight=%d queue=%d after release", a.Inflight(), a.QueueDepth())
	}
}

func TestAdmissionAcquireHonorsContext(t *testing.T) {
	a := NewAdmission(1, 4)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if a.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d after timed-out waiter", a.QueueDepth())
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{
		500 * time.Nanosecond, time.Microsecond, 3 * time.Microsecond,
		100 * time.Microsecond, 5 * time.Millisecond, time.Second,
	} {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MeanN <= 0 || s.P50Ns <= 0 || s.P99Ns < s.P50Ns {
		t.Fatalf("snapshot %+v", s)
	}
	// P99 must land in the top bucket (1 s ≈ 2^20 µs).
	if s.P99Ns < int64(time.Second) {
		t.Fatalf("p99 = %dns, want >= 1s", s.P99Ns)
	}
}
