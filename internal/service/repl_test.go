package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bicc"
	"bicc/internal/gen"
)

// replica is one durable, replication-enabled server under test.
type replica struct {
	s   *Server
	ts  *httptest.Server
	dir string
}

func newReplica(t *testing.T, cfg Config, dir string, rcfg ReplConfig) *replica {
	t.Helper()
	s := New(cfg)
	if _, err := s.EnableDurability(DurabilityConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.CloseDurability() })
	if rcfg.Logf == nil {
		rcfg.Logf = t.Logf
	}
	if err := s.EnableReplication(rcfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.CloseReplication)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &replica{s: s, ts: ts, dir: dir}
}

// replicaPair wires a fresh primary and a standby following it.
func replicaPair(t *testing.T) (pri, stb *replica) {
	t.Helper()
	pri = newReplica(t, Config{}, t.TempDir(), ReplConfig{ListenAddr: "127.0.0.1:0"})
	stb = newReplica(t, Config{}, t.TempDir(), ReplConfig{
		FollowAddr: pri.s.ReplAddr(),
		ListenAddr: "127.0.0.1:0",
	})
	return pri, stb
}

// waitCaughtUp blocks until the standby has durably applied everything the
// primary has sequenced.
func waitCaughtUp(t *testing.T, pri, stb *replica) {
	t.Helper()
	p := pri.s.repls.Load().pri.Load()
	want := p.Seq()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if st := stb.s.repls.Load().stb.Load(); st != nil && st.AppliedSeq() >= want {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	st := stb.s.repls.Load().stb.Load()
	t.Fatalf("standby stuck at seq %d, primary at %d", st.AppliedSeq(), want)
}

var replEngines = []string{"sequential", "tv-smp", "tv-opt", "tv-filter", "fast-bcc"}

// TestReplicationDifferential is the replication correctness harness: three
// graph families (one of them mutated, so a delta record ships) uploaded to
// the primary must be served byte-identically by the standby under every
// engine, while the standby refuses every write with 503 + Retry-After.
func TestReplicationDifferential(t *testing.T) {
	pri, stb := replicaPair(t)

	families := map[string]*bicc.Graph{}
	build := func(n int, edges []bicc.Edge) *bicc.Graph {
		g, err := bicc.NewGraph(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	elR := gen.RandomConnected(120, 340, 42)
	elT := gen.Torus(8, 10)
	elC := gen.Caterpillar(24, 4)
	families["random"] = build(int(elR.N), elR.Edges)
	families["torus"] = build(int(elT.N), elT.Edges)
	families["caterpillar"] = build(int(elC.N), elC.Edges)
	families["fixed"] = testGraph(t)

	fps := map[string]string{}
	for name, g := range families {
		fps[name] = uploadGraph(t, pri.ts, g, "name="+name).Fingerprint
	}
	// Mutate the fixed family: the batch ships as a delta record, and the
	// standby must replay it to the same generation and content.
	mut := mustMutate(t, pri.ts, fps["fixed"], []mutationDelta{
		{Op: "insert", U: 0, V: 4},
		{Op: "delete", U: 2, V: 0},
	})
	if mut.Generation != 1 {
		t.Fatalf("mutation generation %d, want 1", mut.Generation)
	}
	waitCaughtUp(t, pri, stb)

	for name, fp := range fps {
		pi, ok := getGraphInfo(t, pri.ts, fp)
		if !ok {
			t.Fatalf("%s missing on primary", name)
		}
		si, ok := getGraphInfo(t, stb.ts, fp)
		if !ok {
			t.Fatalf("%s missing on standby", name)
		}
		if si.Generation != pi.Generation || si.ContentFP != pi.ContentFP ||
			si.Vertices != pi.Vertices || si.Edges != pi.Edges {
			t.Fatalf("%s metadata diverged: primary %+v standby %+v", name, pi, si)
		}
		for _, engine := range replEngines {
			want := normalizeBCC(t, queryAll(t, pri.ts, fp, engine))
			got := normalizeBCC(t, queryAll(t, stb.ts, fp, engine))
			if got != want {
				t.Fatalf("%s/%s: standby answer diverged\nprimary: %s\nstandby: %s",
					name, engine, want, got)
			}
		}
	}

	// The standby is read-only: every write class is refused with 503 +
	// Retry-After so a router or client retries against the primary.
	var buf bytes.Buffer
	if err := bicc.WriteGraphBinary(&buf, testGraph(t)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(stb.ts.URL+"/v1/graphs?format=binary", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("standby upload: status %d retry-after %q, want 503 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if _, code, _ := postMutate(t, stb.ts, fps["fixed"], []mutationDelta{{Op: "insert", U: 1, V: 6}}); code != http.StatusServiceUnavailable {
		t.Fatalf("standby mutate: status %d, want 503", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, stb.ts.URL+"/v1/graphs/"+fps["fixed"], nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("standby delete: status %d, want 503", resp.StatusCode)
	}

	// statsz roles on both sides.
	if snap := pri.s.Snapshot(); snap.Repl == nil || snap.Repl.Role != "primary" {
		t.Fatalf("primary statsz repl: %+v", snap.Repl)
	}
	snap := stb.s.Snapshot()
	if snap.Repl == nil || snap.Repl.Role != "standby" || !snap.Repl.Connected {
		t.Fatalf("standby statsz repl: %+v", snap.Repl)
	}
	if snap.Repl.AppliedRecords == 0 {
		t.Fatal("standby applied_records is zero after replication")
	}
}

// TestReplicationDeletePropagates: a durable delete on the primary removes
// the graph (and everything derived from it) on the standby too.
func TestReplicationDeletePropagates(t *testing.T) {
	pri, stb := replicaPair(t)
	keep := uploadGraph(t, pri.ts, testGraph(t), "name=keep")
	g2, err := bicc.RandomConnectedGraph(30, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	gone := uploadGraph(t, pri.ts, g2, "name=gone")
	waitCaughtUp(t, pri, stb)

	// Warm the standby's cache for the soon-dead graph so the delete has
	// derived state to purge.
	queryAll(t, stb.ts, gone.Fingerprint, "tv-opt")

	req, _ := http.NewRequest(http.MethodDelete, pri.ts.URL+"/v1/graphs/"+gone.Fingerprint, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	waitCaughtUp(t, pri, stb)

	if _, ok := getGraphInfo(t, stb.ts, gone.Fingerprint); ok {
		t.Fatal("deleted graph still served by the standby")
	}
	r, data := postBCC(t, stb.ts, bccRequest{Graph: gone.Fingerprint, Algorithm: "tv-opt"})
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("query of replicated-deleted graph: status %d: %s", r.StatusCode, data)
	}
	if _, ok := getGraphInfo(t, stb.ts, keep.Fingerprint); !ok {
		t.Fatal("unrelated graph lost with the delete")
	}
}

// TestPromotionServesAckedState: after the primary goes away, promoting the
// standby must yield a node that serves every acked upload and mutation
// byte-identically and accepts writes under a new epoch.
func TestPromotionServesAckedState(t *testing.T) {
	pri, stb := replicaPair(t)
	up := uploadGraph(t, pri.ts, testGraph(t), "name=demo")
	mustMutate(t, pri.ts, up.Fingerprint, []mutationDelta{{Op: "insert", U: 0, V: 4}})
	g2, err := bicc.RandomConnectedGraph(40, 90, 9)
	if err != nil {
		t.Fatal(err)
	}
	up2 := uploadGraph(t, pri.ts, g2, "name=second")

	// Capture what the primary serves while it is alive.
	want := map[string]string{}
	for _, fp := range []string{up.Fingerprint, up2.Fingerprint} {
		for _, engine := range replEngines {
			want[fp+"/"+engine] = normalizeBCC(t, queryAll(t, pri.ts, fp, engine))
		}
	}
	waitCaughtUp(t, pri, stb)

	// The primary dies.
	pri.s.CloseReplication()
	pri.ts.Close()

	resp, err := http.Post(stb.ts.URL+"/v1/admin/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep PromoteReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d: %+v", resp.StatusCode, rep)
	}
	if rep.Role != "primary" || rep.Epoch < 2 || rep.Verified != 2 || rep.Dropped != 0 {
		t.Fatalf("promote report %+v, want primary epoch>=2 verified=2 dropped=0", rep)
	}
	if rep.ReplAddr == "" {
		t.Fatal("promoted node did not start a replication listener")
	}

	// Every acked record is served byte-identically by the promoted node.
	for key, w := range want {
		fp, engine := key[:len(up.Fingerprint)], key[len(up.Fingerprint)+1:]
		if got := normalizeBCC(t, queryAll(t, stb.ts, fp, engine)); got != w {
			t.Fatalf("%s after promotion diverged\nwant %s\ngot  %s", key, w, got)
		}
	}

	// Writes are accepted now: the node is a primary.
	g3, err := bicc.RandomConnectedGraph(20, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	uploadGraph(t, stb.ts, g3, "name=post-promotion")
	mustMutate(t, stb.ts, up.Fingerprint, []mutationDelta{{Op: "insert", U: 1, V: 6}})

	// Promotion is idempotent.
	resp, err = http.Post(stb.ts.URL+"/v1/admin/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep2 PromoteReport
	if err := json.NewDecoder(resp.Body).Decode(&rep2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep2.Role != "primary" || rep2.Epoch != rep.Epoch {
		t.Fatalf("second promote: status %d report %+v, want same epoch %d",
			resp.StatusCode, rep2, rep.Epoch)
	}
	snap := stb.s.Snapshot()
	if snap.Repl.Promotions != 1 {
		t.Fatalf("promotions counter %d, want 1", snap.Repl.Promotions)
	}
}

// TestRefollowRetargetsStandby: POST /v1/admin/follow re-points a standby
// at a different primary's replication listener (what the router does to
// survivors after a failover). The standby must snapshot-resync against the
// new primary — old state replaced, new state served byte-identically — and
// a primary must refuse to follow anyone.
func TestRefollowRetargetsStandby(t *testing.T) {
	priA, stb := replicaPair(t)
	upA := uploadGraph(t, priA.ts, testGraph(t), "name=alpha")
	waitCaughtUp(t, priA, stb)

	priB := newReplica(t, Config{}, t.TempDir(), ReplConfig{ListenAddr: "127.0.0.1:0"})
	gB, err := bicc.RandomConnectedGraph(30, 70, 7)
	if err != nil {
		t.Fatal(err)
	}
	upB := uploadGraph(t, priB.ts, gB, "name=beta")
	wantB := normalizeBCC(t, queryAll(t, priB.ts, upB.Fingerprint, "tv-opt"))

	follow := func(ts *httptest.Server, addr string) int {
		body, _ := json.Marshal(map[string]string{"addr": addr})
		resp, err := http.Post(ts.URL+"/v1/admin/follow", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := follow(priA.ts, priB.s.ReplAddr()); code != http.StatusConflict {
		t.Fatalf("primary accepted a follow request: status %d, want 409", code)
	}
	if code := follow(stb.ts, priB.s.ReplAddr()); code != http.StatusOK {
		t.Fatalf("standby refollow: status %d, want 200", code)
	}
	waitCaughtUp(t, priB, stb)

	// The resync replaced the old reign's state wholesale.
	if _, ok := getGraphInfo(t, stb.ts, upA.Fingerprint); ok {
		t.Fatal("old primary's graph survived the retarget resync")
	}
	if got := normalizeBCC(t, queryAll(t, stb.ts, upB.Fingerprint, "tv-opt")); got != wantB {
		t.Fatalf("retargeted standby answer diverged\nwant %s\ngot  %s", wantB, got)
	}

	// Still a read-only standby, now counted as refollowed.
	var buf bytes.Buffer
	if err := bicc.WriteGraphBinary(&buf, testGraph(t)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(stb.ts.URL+"/v1/graphs?format=binary", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("retargeted standby accepted a write: status %d", resp.StatusCode)
	}
	snap := stb.s.Snapshot()
	if snap.Repl == nil || snap.Repl.Role != "standby" || snap.Repl.Refollows != 1 {
		t.Fatalf("statsz repl after refollow: %+v", snap.Repl)
	}
}

// TestStandbyWALIsRecoveryImage: the standby's own data dir must be a valid
// PR 4 recovery image at all times — a plain (non-replicated) server opened
// over it recovers exactly the replicated state. Doubles as the boot-replay
// accounting check (satellite: replayed-record counts on /statsz).
func TestStandbyWALIsRecoveryImage(t *testing.T) {
	pri, stb := replicaPair(t)
	up := uploadGraph(t, pri.ts, testGraph(t), "name=demo")
	mustMutate(t, pri.ts, up.Fingerprint, []mutationDelta{{Op: "insert", U: 0, V: 4}})
	want := normalizeBCC(t, queryAll(t, pri.ts, up.Fingerprint, "tv-opt"))
	pinfo, _ := getGraphInfo(t, pri.ts, up.Fingerprint)
	waitCaughtUp(t, pri, stb)

	dir := stb.dir
	stb.ts.Close()
	stb.s.CloseReplication()
	if err := stb.s.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	var logged int
	s2, rep := durableServer(t, Config{}, DurabilityConfig{
		Dir:            dir,
		ReplayLogEvery: 1,
		Logf:           func(format string, args ...any) { logged++ },
	})
	if rep.Graphs != 1 {
		t.Fatalf("recovered %d graphs from standby WAL, want 1", rep.Graphs)
	}
	if rep.WALRecords == 0 {
		t.Fatal("recovery report missing WAL record count")
	}
	if logged == 0 {
		t.Fatal("boot replay logged no progress lines with ReplayLogEvery=1")
	}
	ts2 := newHTTPServer(t, s2)
	info, ok := getGraphInfo(t, ts2, up.Fingerprint)
	if !ok {
		t.Fatal("replicated graph absent after reopening the standby dir")
	}
	if info.Generation != pinfo.Generation || info.ContentFP != pinfo.ContentFP {
		t.Fatalf("recovered %+v, primary had %+v", info, pinfo)
	}
	if got := normalizeBCC(t, queryAll(t, ts2, up.Fingerprint, "tv-opt")); got != want {
		t.Fatalf("recovered standby answer diverged\nwant %s\ngot  %s", want, got)
	}
	snap := s2.Snapshot()
	if snap.Durability == nil || snap.Durability.WALReplayed == 0 {
		t.Fatalf("statsz missing wal_replayed_records: %+v", snap.Durability)
	}
}

// TestPrimaryAloneDegradesQuorum: a primary with no connected standby still
// acknowledges writes (replication degrades to async, never blocks the
// write path).
func TestPrimaryAloneDegradesQuorum(t *testing.T) {
	pri := newReplica(t, Config{}, t.TempDir(), ReplConfig{
		ListenAddr: "127.0.0.1:0",
		AckTimeout: 50 * time.Millisecond,
	})
	start := time.Now()
	up := uploadGraph(t, pri.ts, testGraph(t), "name=solo")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("lonely-primary upload took %v: quorum wait did not degrade", elapsed)
	}
	mustMutate(t, pri.ts, up.Fingerprint, []mutationDelta{{Op: "insert", U: 0, V: 4}})
	snap := pri.s.Snapshot()
	if snap.Repl == nil || snap.Repl.Role != "primary" || snap.Repl.Seq == 0 {
		t.Fatalf("statsz repl: %+v", snap.Repl)
	}
	// applied_seq mirrors seq on a primary so the router compares uniformly.
	if snap.Repl.AppliedSeq != snap.Repl.Seq {
		t.Fatalf("primary applied_seq %d != seq %d", snap.Repl.AppliedSeq, snap.Repl.Seq)
	}
}

// TestDeleteRacesMutation races DELETE /v1/graphs/{fp} against an in-flight
// mutation on the same fingerprint, repeatedly. Whatever the interleaving,
// the graph must end up fully absent, and re-uploading the same content must
// start clean at generation 0 with correct answers — no stale cache, shard,
// or incremental state resurrected from the raced generation.
func TestDeleteRacesMutation(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, Config{CacheEntries: 64}, DurabilityConfig{Dir: dir})
	if err := s.EnableSharding(ShardingConfig{}); err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)

	base := testGraph(t)
	up := uploadGraph(t, ts, base, "name=target")
	fp := up.Fingerprint
	baseline := map[string]string{}
	for _, engine := range replEngines {
		baseline[engine] = normalizeBCC(t, queryAll(t, ts, fp, engine))
	}
	deleteGraph := func() int {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/"+fp, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return -1
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	deleteGraph() // start each round from an empty registry

	for round := 0; round < 20; round++ {
		uploadGraph(t, ts, base, "name=target")
		// Advance to generation 1 and warm generation-keyed derived state:
		// cache entries, shard sets, maintained incremental labels.
		mustMutate(t, ts, fp, []mutationDelta{{Op: "insert", U: 0, V: 4}})
		queryAll(t, ts, fp, "tv-opt")

		var wg sync.WaitGroup
		wg.Add(2)
		var delStatus int
		go func() {
			defer wg.Done()
			// Raw request: any of 200 (mutation won), 404/503 (delete won)
			// is a legal outcome; only the end state below is asserted.
			body, _ := json.Marshal(mutateRequest{Deltas: []mutationDelta{{Op: "insert", U: 1, V: 6}}})
			resp, err := http.Post(ts.URL+"/v1/graphs/"+fp+"/edges", "application/json", bytes.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		go func() {
			defer wg.Done()
			delStatus = deleteGraph()
		}()
		wg.Wait()
		if delStatus != http.StatusNoContent {
			t.Fatalf("round %d: delete status %d, want 204", round, delStatus)
		}
		if _, ok := getGraphInfo(t, ts, fp); ok {
			t.Fatalf("round %d: graph resurrected after delete", round)
		}
		if r, data := postBCC(t, ts, bccRequest{Graph: fp, Algorithm: "tv-opt"}); r.StatusCode != http.StatusNotFound {
			t.Fatalf("round %d: query after delete: status %d: %s", round, r.StatusCode, data)
		}

		// Re-upload the same content: a fresh incarnation at generation 0.
		// Any resurrected entry keyed under the raced incarnation's
		// generations would poison these answers.
		re := uploadGraph(t, ts, base, "name=target")
		if re.Fingerprint != fp {
			t.Fatalf("round %d: re-upload fingerprint %s, want %s", round, re.Fingerprint, fp)
		}
		if re.Generation != 0 || re.Existed {
			t.Fatalf("round %d: re-upload gen %d existed %v, want a clean gen-0 entry",
				round, re.Generation, re.Existed)
		}
		for _, engine := range replEngines {
			if got := normalizeBCC(t, queryAll(t, ts, fp, engine)); got != baseline[engine] {
				t.Fatalf("round %d: %s answer poisoned after delete race\nwant %s\ngot  %s",
					round, engine, baseline[engine], got)
			}
		}
		deleteGraph()
	}
}
