package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bicc/internal/faults"
	"bicc/internal/obs"
)

// postBCCQuery is postBCC with extra URL query parameters on /v1/bcc.
func postBCCQuery(t *testing.T, ts *httptest.Server, req bccRequest, query string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/bcc?"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestTraceEcho(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadGraph(t, ts, testGraph(t), "")
	q := bccRequest{Graph: up.Fingerprint, Algorithm: "tv-opt", Procs: 2}

	// A plain query carries no trace field.
	resp, body := postBCC(t, ts, q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if bytes.Contains(body, []byte(`"trace"`)) {
		t.Fatalf("untraced response leaked a trace: %s", body)
	}

	// The same query with ?trace=1 is a cache hit and returns the span
	// breakdown of the computation that produced the cached result.
	resp, body = postBCCQuery(t, ts, q, "trace=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out bccResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Errorf("second identical query not served from cache")
	}
	if out.Trace == nil {
		t.Fatalf("?trace=1 response has no trace: %s", body)
	}
	if err := out.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v\n%s", err, body)
	}
	assertSpan(t, out.Trace, "bcc", 1)
	assertSpan(t, out.Trace, "admission", 1)
	attempts := out.Trace.SpansNamed("tv-opt")
	if len(attempts) != 1 {
		t.Fatalf("want 1 tv-opt attempt span, got %d: %s", len(attempts), body)
	}
	if attempts[0].Labels["attempt"] != "0" {
		t.Errorf("attempt label = %q, want 0", attempts[0].Labels["attempt"])
	}
	// The engine run must expose the paper's pipeline steps as child spans
	// of the attempt.
	for _, phase := range []string{"spanning-tree", "euler-tour", "root", "low-high", "label-edge", "connected-components"} {
		sp := out.Trace.SpansNamed(phase)
		if len(sp) != 1 {
			t.Errorf("phase %q: %d spans, want 1", phase, len(sp))
			continue
		}
		if sp[0].Parent != attempts[0].ID {
			t.Errorf("phase %q nested under span %d, want attempt %d", phase, sp[0].Parent, attempts[0].ID)
		}
	}
	// Phases and spans are two views of the same stopwatch laps: the JSON
	// phase list must agree with the span durations exactly.
	if len(out.Phases) == 0 {
		t.Fatal("response has no phases")
	}
	for _, ph := range out.Phases {
		name := ph["name"].(string)
		ns := int64(ph["ns"].(float64))
		sp := out.Trace.SpansNamed(name)
		if len(sp) != 1 || sp[0].DurationNs != ns {
			t.Errorf("phase %q: %dns in phases, spans %+v", name, ns, sp)
		}
	}
}

// TestTraceUnderFaultInjection drives a query whose parallel attempts are
// killed by injected panics: the degraded response must still carry a
// complete, well-nested trace showing both failed attempts and the
// sequential fallback that answered.
func TestTraceUnderFaultInjection(t *testing.T) {
	defer faults.Deactivate()
	_, ts := newTestServer(t, Config{AttemptTimeout: 2 * time.Second})
	up := uploadGraph(t, ts, testGraph(t), "")

	faults.Activate(&faults.Plan{Seed: 1,
		Rules: []*faults.Rule{faults.NewRule(faults.KindPanic, "core.pipeline")}})
	resp, body := postBCCQuery(t, ts,
		bccRequest{Graph: up.Fingerprint, Algorithm: "tv-opt", Procs: 2}, "trace=1")
	faults.Deactivate()

	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out bccResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatalf("response not degraded despite injected panics: %s", body)
	}
	if out.Trace == nil {
		t.Fatalf("degraded response has no trace: %s", body)
	}
	if err := out.Trace.Validate(); err != nil {
		t.Fatalf("degraded trace invalid: %v\n%s", err, body)
	}
	// Two parallel attempts, both labeled with their attempt index and the
	// error that killed them.
	attempts := out.Trace.SpansNamed("tv-opt")
	if len(attempts) != 2 {
		t.Fatalf("want 2 failed tv-opt attempt spans, got %d: %s", len(attempts), body)
	}
	for i, a := range attempts {
		if got := a.Labels["attempt"]; got != map[int]string{0: "0", 1: "1"}[i] {
			t.Errorf("attempt %d label = %q", i, got)
		}
		if !strings.Contains(a.Labels["error"], "panic") {
			t.Errorf("attempt %d error label = %q, want a contained panic", i, a.Labels["error"])
		}
	}
	// The sequential fallback ran as attempt 2 and timed its DFS.
	seq := out.Trace.SpansNamed("sequential")
	if len(seq) != 1 {
		t.Fatalf("want 1 sequential fallback span, got %d: %s", len(seq), body)
	}
	if seq[0].Labels["attempt"] != "2" {
		t.Errorf("fallback attempt label = %q, want 2", seq[0].Labels["attempt"])
	}
	dfs := out.Trace.SpansNamed("sequential-dfs")
	if len(dfs) != 1 || dfs[0].Parent != seq[0].ID {
		t.Errorf("sequential-dfs spans = %+v, want one child of %d", dfs, seq[0].ID)
	}
	// The root span records the degradation.
	root := out.Trace.SpansNamed("bcc")
	if len(root) != 1 || root[0].Labels["degraded"] != "true" {
		t.Errorf("root span = %+v, want degraded label", root)
	}
}

func assertSpan(t *testing.T, e *obs.TraceExport, name string, n int) {
	t.Helper()
	if got := len(e.SpansNamed(name)); got != n {
		t.Errorf("span %q: %d occurrences, want %d", name, got, n)
	}
}

// TestMetricsEndpoint scrapes /metrics after traffic and checks that the
// service counters and the engine phase histograms are exposed.
func TestMetricsEndpoint(t *testing.T) {
	old := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(old)
	_, ts := newTestServer(t, Config{})
	up := uploadGraph(t, ts, testGraph(t), "")
	if resp, body := postBCC(t, ts, bccRequest{Graph: up.Fingerprint, Algorithm: "tv-smp"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"# TYPE bicc_requests_total counter",
		"bicc_requests_total 1",
		"bicc_computations_total 1",
		"# TYPE bicc_request_seconds histogram",
		`bicc_request_seconds_count{algorithm="tv-smp"} 1`,
		"# TYPE bicc_phase_seconds histogram",
		`algorithm="tv-smp",phase="spanning-tree"`,
		"# TYPE bicc_breaker_state gauge",
		`bicc_breaker_state{algorithm="tv-opt"} 0`,
		"# TYPE bicc_par_tasks_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
