package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"bicc"
	"bicc/internal/faults"
	"bicc/internal/gen"
	"bicc/internal/shard"
)

// newShardServer builds a test server with sharding enabled.
func newShardServer(t *testing.T, cfg Config, scfg ShardingConfig) (*Server, *httptest.Server) {
	t.Helper()
	s, ts := newTestServer(t, cfg)
	if err := s.EnableSharding(scfg); err != nil {
		t.Fatal(err)
	}
	return s, ts
}

// getJSON fetches url and decodes the body into out, returning the status.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v", body, err)
		}
	}
	return resp.StatusCode
}

func TestShardEndpointsDisabledByDefault(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	up := uploadGraph(t, ts, testGraph(t), "")
	for _, path := range []string{
		"/v1/block/0?graph=" + up.Fingerprint,
		"/v1/vertex/0/blocks?graph=" + up.Fingerprint,
		"/v1/vertex/0/articulation?graph=" + up.Fingerprint,
	} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, code)
		}
	}
	// /statsz stays byte-compatible: no sharding key at all.
	b, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "sharding") {
		t.Fatalf("statsz leaks sharding when disabled: %s", b)
	}
}

// TestShardHTTPDifferential is the service-level differential harness: the
// per-block endpoints must answer byte-for-byte what the monolithic
// decomposition implies, for every vertex and block, across algorithms.
func TestShardHTTPDifferential(t *testing.T) {
	_, ts := newShardServer(t, Config{}, ShardingConfig{})
	el := gen.RandomConnected(120, 300, 11)
	g, err := bicc.NewGraph(int(el.N), el.Edges)
	if err != nil {
		t.Fatal(err)
	}
	up := uploadGraph(t, ts, g, "")

	for _, algoName := range []string{"sequential", "tv-smp", "tv-opt", "tv-filter", "fast-bcc"} {
		t.Run(algoName, func(t *testing.T) {
			algo, err := parseAlgorithm(algoName)
			if err != nil {
				t.Fatal(err)
			}
			res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: algo, Procs: 2})
			if err != nil {
				t.Fatal(err)
			}
			tree := res.BlockCutTree()
			qs := fmt.Sprintf("?graph=%s&algorithm=%s&procs=2", up.Fingerprint, algoName)

			for v := 0; v < g.NumVertices(); v++ {
				var vb vertexBlocksResponse
				if code := getJSON(t, ts.URL+fmt.Sprintf("/v1/vertex/%d/blocks%s", v, qs), &vb); code != 200 {
					t.Fatalf("vertex %d blocks: status %d", v, code)
				}
				if !vb.Sharded || vb.Degraded {
					t.Fatalf("vertex %d served sharded=%v degraded=%v", v, vb.Sharded, vb.Degraded)
				}
				want := tree.BlocksOfVertex(int32(v))
				if fmt.Sprint(vb.Blocks) != fmt.Sprint(want) || vb.IsCut != (len(want) >= 2) {
					t.Fatalf("vertex %d: blocks %v cut=%v, monolith %v", v, vb.Blocks, vb.IsCut, want)
				}
				var ar articulationResponse
				if code := getJSON(t, ts.URL+fmt.Sprintf("/v1/vertex/%d/articulation%s", v, qs), &ar); code != 200 {
					t.Fatalf("vertex %d articulation: status %d", v, code)
				}
				if ar.Articulation != (len(want) >= 2) || ar.NumBlocksContaining != len(want) {
					t.Fatalf("vertex %d: articulation %+v, monolith %d blocks", v, ar, len(want))
				}
			}

			for b := 0; b < res.NumComponents; b++ {
				var br blockResponse
				if code := getJSON(t, ts.URL+fmt.Sprintf("/v1/block/%d%s&include=subgraph", b, qs), &br); code != 200 {
					t.Fatalf("block %d: status %d", b, code)
				}
				if !br.Sharded || br.NumBlocks != res.NumComponents {
					t.Fatalf("block %d: sharded=%v numBlocks=%d", b, br.Sharded, br.NumBlocks)
				}
				sub, vm, em := res.ComponentSubgraph(int32(b))
				if fmt.Sprint(br.Vertices) != fmt.Sprint(tree.VerticesOfBlock(int32(b))) ||
					fmt.Sprint(br.CutVertices) != fmt.Sprint(tree.CutsOfBlock(int32(b))) {
					t.Fatalf("block %d: vertices/cuts disagree with monolith", b)
				}
				if br.Subgraph == nil || br.Subgraph.N != int32(sub.NumVertices()) ||
					fmt.Sprint(br.Subgraph.VertexMap) != fmt.Sprint(vm) ||
					fmt.Sprint(br.Subgraph.EdgeMap) != fmt.Sprint(em) ||
					len(br.Subgraph.Edges) != sub.NumEdges() {
					t.Fatalf("block %d: subgraph disagrees with monolith", b)
				}
			}

			// Out-of-range queries.
			if code := getJSON(t, ts.URL+fmt.Sprintf("/v1/block/%d%s", res.NumComponents, qs), nil); code != http.StatusNotFound {
				t.Fatalf("out-of-range block: status %d, want 404", code)
			}
			if code := getJSON(t, ts.URL+fmt.Sprintf("/v1/vertex/%d/blocks%s", g.NumVertices(), qs), nil); code != http.StatusNotFound {
				t.Fatalf("out-of-range vertex: status %d, want 404", code)
			}
		})
	}
}

// TestShardBuildFaultFallsBackToMonolith seeds a persistent fault at
// shard.build: every per-block query must still answer — served by the
// monolithic path and marked degraded — and nothing may be installed as
// shard state. Clearing the fault heals the shard path on the next query.
func TestShardBuildFaultFallsBackToMonolith(t *testing.T) {
	defer faults.Deactivate()
	s, ts := newShardServer(t, Config{}, ShardingConfig{})
	up := uploadGraph(t, ts, testGraph(t), "")
	qs := "?graph=" + up.Fingerprint

	faults.Activate(&faults.Plan{Seed: 1,
		Rules: []*faults.Rule{faults.NewRule(faults.KindPanic, shard.SiteBuild)}})

	var br blockResponse
	if code := getJSON(t, ts.URL+"/v1/block/0"+qs, &br); code != 200 {
		t.Fatalf("faulted block query: status %d", code)
	}
	if br.Sharded || !br.Degraded || br.DegradedCause == "" {
		t.Fatalf("faulted query served sharded=%v degraded=%v cause=%q", br.Sharded, br.Degraded, br.DegradedCause)
	}
	if br.NumBlocks != 3 || len(br.Vertices) == 0 {
		t.Fatalf("degraded answer wrong: %+v", br)
	}
	var vb vertexBlocksResponse
	if code := getJSON(t, ts.URL+"/v1/vertex/2/blocks"+qs, &vb); code != 200 {
		t.Fatalf("faulted vertex query: status %d", code)
	}
	if vb.Sharded || !vb.Degraded || !vb.IsCut {
		t.Fatalf("faulted vertex answer: %+v", vb)
	}

	snap := s.Snapshot()
	if snap.Sharding == nil {
		t.Fatal("sharding section missing")
	}
	if snap.Sharding.Sets != 0 || snap.Sharding.ResidentShards != 0 {
		t.Fatalf("faulted builds installed shard state: %+v", snap.Sharding)
	}
	if snap.Sharding.BuildFailures == 0 || snap.Sharding.Fallbacks == 0 {
		t.Fatalf("fault not accounted: %+v", snap.Sharding)
	}

	// Heal: with the fault gone the same query routes to fresh shard state.
	faults.Deactivate()
	var healed blockResponse
	if code := getJSON(t, ts.URL+"/v1/block/0"+qs, &healed); code != 200 {
		t.Fatalf("healed block query: status %d", code)
	}
	if !healed.Sharded || healed.Degraded {
		t.Fatalf("healed query not sharded: %+v", healed)
	}
	if snap := s.Snapshot(); snap.Sharding.Sets != 1 {
		t.Fatalf("healed build not installed: %+v", snap.Sharding)
	}
}

// TestShardSpillDemotionPromotion runs the layer under a tiny memory budget
// with a disk tier: shards demote, every block stays servable, and the
// demotion/promotion counters move.
func TestShardSpillDemotionPromotion(t *testing.T) {
	s, ts := newShardServer(t, Config{}, ShardingConfig{
		MemBudget: 2_000,
		SpillDir:  t.TempDir(),
	})
	el := gen.Caterpillar(16, 3) // one block per edge: many shards
	g, err := bicc.NewGraph(int(el.N), el.Edges)
	if err != nil {
		t.Fatal(err)
	}
	up := uploadGraph(t, ts, g, "")
	res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: bicc.Auto})
	if err != nil {
		t.Fatal(err)
	}
	tree := res.BlockCutTree()
	qs := "?graph=" + up.Fingerprint

	for b := 0; b < res.NumComponents; b++ {
		var br blockResponse
		if code := getJSON(t, ts.URL+fmt.Sprintf("/v1/block/%d%s", b, qs), &br); code != 200 {
			t.Fatalf("block %d: status %d", b, code)
		}
		if !br.Sharded || fmt.Sprint(br.Vertices) != fmt.Sprint(tree.VerticesOfBlock(int32(b))) {
			t.Fatalf("block %d wrong under budget pressure: %+v", b, br)
		}
	}
	snap := s.Snapshot()
	if snap.Sharding.Demotions == 0 {
		t.Fatalf("tiny budget caused no demotions: %+v", snap.Sharding)
	}
	if snap.Sharding.Promotions == 0 {
		t.Fatalf("no promotions while sweeping all blocks: %+v", snap.Sharding)
	}
	if snap.Sharding.SpillEntries == 0 || snap.Sharding.SpillBytes == 0 {
		t.Fatalf("spill tier unused: %+v", snap.Sharding)
	}
	if snap.Sharding.Invalidations != 0 {
		t.Fatalf("healthy demote/promote cycle invalidated sets: %+v", snap.Sharding)
	}
}

// TestShardDeleteGraphDropsShardState proves DELETE /v1/graphs/{fp} removes
// every algorithm/procs variant of the graph's shard state.
func TestShardDeleteGraphDropsShardState(t *testing.T) {
	s, ts := newShardServer(t, Config{}, ShardingConfig{})
	up := uploadGraph(t, ts, testGraph(t), "")
	qs := "?graph=" + up.Fingerprint
	for _, algo := range []string{"sequential", "tv-opt"} {
		if code := getJSON(t, ts.URL+"/v1/block/0"+qs+"&algorithm="+algo, nil); code != 200 {
			t.Fatalf("%s: status %d", algo, code)
		}
	}
	if snap := s.Snapshot(); snap.Sharding.Sets != 2 {
		t.Fatalf("sets=%d, want 2", snap.Sharding.Sets)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/"+up.Fingerprint, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if snap := s.Snapshot(); snap.Sharding.Sets != 0 {
		t.Fatalf("shard state survived graph deletion: %+v", snap.Sharding)
	}
	if code := getJSON(t, ts.URL+"/v1/block/0"+qs, nil); code != http.StatusNotFound {
		t.Fatalf("query after delete: status %d, want 404", code)
	}
}

// TestShardConcurrentQueriesDuringBuildAndEviction hammers the endpoints
// concurrently while builds, demotions, and deletions are in flight; run
// under -race this is the service-level data-race net for the shard path.
func TestShardConcurrentQueriesDuringBuildAndEviction(t *testing.T) {
	_, ts := newShardServer(t, Config{}, ShardingConfig{
		MemBudget: 3_000,
		SpillDir:  t.TempDir(),
	})
	el := gen.Caterpillar(12, 2)
	g, err := bicc.NewGraph(int(el.N), el.Edges)
	if err != nil {
		t.Fatal(err)
	}
	up := uploadGraph(t, ts, g, "")
	res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: bicc.Auto})
	if err != nil {
		t.Fatal(err)
	}
	nb := res.NumComponents

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch i % 3 {
				case 0:
					var br blockResponse
					code := getJSON(t, ts.URL+fmt.Sprintf("/v1/block/%d?graph=%s", (w+i)%nb, up.Fingerprint), &br)
					if code != 200 {
						t.Errorf("block: status %d", code)
						return
					}
				case 1:
					code := getJSON(t, ts.URL+fmt.Sprintf("/v1/vertex/%d/blocks?graph=%s", (w*i)%g.NumVertices(), up.Fingerprint), nil)
					if code != 200 {
						t.Errorf("vertex blocks: status %d", code)
						return
					}
				case 2:
					code := getJSON(t, ts.URL+fmt.Sprintf("/v1/vertex/%d/articulation?graph=%s", i%g.NumVertices(), up.Fingerprint), nil)
					if code != 200 {
						t.Errorf("articulation: status %d", code)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestShardClientCancelLeavesNoPartialState aborts a shard build through
// the client's deadline on a graph big enough to still be mid-build, then
// proves no partial shard state survived and the next (patient) query
// succeeds from a fresh build.
func TestShardClientCancelLeavesNoPartialState(t *testing.T) {
	s, ts := newShardServer(t, Config{}, ShardingConfig{})
	up := uploadGraph(t, ts, bigGraph(), "")

	code := getJSON(t, ts.URL+"/v1/vertex/0/blocks?graph="+up.Fingerprint+"&timeout_ms=1", nil)
	if code != http.StatusServiceUnavailable {
		// A fast machine may finish inside 1ms; only the no-partial-state
		// invariant below is unconditional.
		t.Logf("1ms query returned %d", code)
	}
	snap := s.Snapshot()
	if code != http.StatusOK && (snap.Sharding.Sets != 0 || snap.Sharding.ResidentShards != 0) {
		t.Fatalf("canceled build left partial state: %+v", snap.Sharding)
	}

	var vb vertexBlocksResponse
	if code := getJSON(t, ts.URL+"/v1/vertex/0/blocks?graph="+up.Fingerprint, &vb); code != 200 {
		t.Fatalf("patient query: status %d", code)
	}
	if !vb.Sharded || vb.Degraded {
		t.Fatalf("patient query after cancel: %+v", vb)
	}
}

// TestShardMetricsExposed checks the shard series appear on /metrics only
// when sharding is enabled.
func TestShardMetricsExposed(t *testing.T) {
	_, ts := newShardServer(t, Config{}, ShardingConfig{})
	up := uploadGraph(t, ts, testGraph(t), "")
	if code := getJSON(t, ts.URL+"/v1/block/0?graph="+up.Fingerprint, nil); code != 200 {
		t.Fatalf("block query: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, series := range []string{
		"bicc_shard_queries_total 1",
		"bicc_shard_builds_total 1",
		"bicc_shard_sets 1",
		"bicc_shard_request_seconds",
	} {
		if !strings.Contains(string(body), series) {
			t.Fatalf("metrics missing %q", series)
		}
	}

	_, ts2 := newTestServer(t, Config{})
	resp2, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(body2), "bicc_shard_") {
		t.Fatal("non-sharded server exposes shard series")
	}
}
