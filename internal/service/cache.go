package service

import (
	"container/list"
	"context"
	"sync"

	"bicc"
)

// resultKey identifies a cacheable computation: same graph content, same
// algorithm, same worker count. Procs is part of the key because the
// algorithm actually run (and its phase timings) depend on it — Auto
// resolves to Sequential at p=1.
type resultKey struct {
	fp    string
	algo  bicc.Algorithm
	procs int
}

// cacheEntry is one computation, either in flight or completed. ready is
// closed exactly once when res/err become valid.
type cacheEntry struct {
	ready chan struct{}
	res   *queryResult
	err   error

	// waiters counts requests currently interested in the computation; when
	// it drops to zero before completion the computation's context is
	// canceled (nobody wants the answer anymore). Guarded by the cache mu.
	waiters int
	cancel  context.CancelFunc
	done    bool
	elem    *list.Element // LRU position once completed
}

// ResultCache is a single-flight LRU cache of BCC query results. Concurrent
// queries for the same (graph, algorithm, procs) coalesce onto one engine
// computation; completed results are kept for maxEntries keys and evicted
// least recently used.
//
// Errors and degraded results are never cached: a failed, canceled, or
// fallback-produced computation is forgotten so the next identical query
// retries the real engine from scratch — a transient engine fault must not
// poison the cache with sequential-quality answers for the cache's
// lifetime.
type ResultCache struct {
	mu         sync.Mutex
	entries    map[resultKey]*cacheEntry
	lru        *list.List // of resultKey, front = most recent
	maxEntries int
}

// NewResultCache returns a cache holding up to maxEntries completed results;
// maxEntries <= 0 disables retention (single-flight coalescing still works).
func NewResultCache(maxEntries int) *ResultCache {
	return &ResultCache{
		entries:    map[resultKey]*cacheEntry{},
		lru:        list.New(),
		maxEntries: maxEntries,
	}
}

// Len returns the number of completed cached results.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Outcome classifies how a Do call was served, for stats.
type Outcome int

const (
	// OutcomeHit means the result was already cached.
	OutcomeHit Outcome = iota
	// OutcomeMiss means this call started the computation.
	OutcomeMiss
	// OutcomeCoalesced means this call joined an in-flight computation.
	OutcomeCoalesced
)

// Do returns the cached result for key, joining an in-flight computation or
// starting a new one via compute. compute receives a context that is
// canceled when every request waiting on the computation has gone away; it
// runs in its own goroutine so a caller abandoning the wait (ctx done) does
// not abort the computation for the others.
func (c *ResultCache) Do(ctx context.Context, key resultKey,
	compute func(ctx context.Context) (*queryResult, error)) (*queryResult, error, Outcome) {

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.done {
			if e.elem != nil {
				c.lru.MoveToFront(e.elem)
			}
			res, err := e.res, e.err
			c.mu.Unlock()
			return res, err, OutcomeHit
		}
		e.waiters++
		c.mu.Unlock()
		return c.wait(ctx, key, e, OutcomeCoalesced)
	}

	base := context.Background()
	if ctx != nil {
		// Detach from the caller's cancellation but keep its values; the
		// computation's lifetime is governed by the waiter count, not by
		// whichever request happened to arrive first.
		base = context.WithoutCancel(ctx)
	}
	cctx, cancel := context.WithCancel(base)
	e := &cacheEntry{ready: make(chan struct{}), waiters: 1, cancel: cancel}
	c.entries[key] = e
	c.mu.Unlock()

	go func() {
		res, err := compute(cctx)
		c.mu.Lock()
		e.res, e.err = res, err
		e.done = true
		e.cancel = nil
		close(e.ready)
		cancel()
		if err != nil || res == nil || res.Degraded || c.maxEntries <= 0 || c.entries[key] != e {
			// Never cache failures or degraded (fallback) results, and don't
			// resurrect an entry every waiter abandoned (wait already
			// removed it from the map).
			if c.entries[key] == e {
				delete(c.entries, key)
			}
		} else {
			e.elem = c.lru.PushFront(key)
			for c.lru.Len() > c.maxEntries {
				back := c.lru.Back()
				c.lru.Remove(back)
				delete(c.entries, back.Value.(resultKey))
			}
		}
		c.mu.Unlock()
	}()

	return c.wait(ctx, key, e, OutcomeMiss)
}

// wait blocks until the entry completes or the caller's context is done,
// maintaining the entry's waiter count.
func (c *ResultCache) wait(ctx context.Context, key resultKey, e *cacheEntry, oc Outcome) (*queryResult, error, Outcome) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-e.ready:
		c.mu.Lock()
		e.waiters--
		res, err := e.res, e.err
		c.mu.Unlock()
		return res, err, oc
	case <-done:
		c.mu.Lock()
		e.waiters--
		if e.waiters == 0 && !e.done && e.cancel != nil {
			// Last interested request left: stop the engine.
			e.cancel()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
		}
		c.mu.Unlock()
		return nil, ctx.Err(), oc
	}
}
