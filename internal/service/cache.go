package service

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"bicc"
	"bicc/internal/durable"
)

// resultKey identifies a cacheable computation: same graph content, same
// algorithm, same worker count. Procs is part of the key because the
// algorithm actually run (and its phase timings) depend on it — Auto
// resolves to Sequential at p=1. gen is the graph's mutation generation:
// a mutated graph keeps its stable id, so the generation is what separates
// results computed against different edge lists under one fingerprint.
type resultKey struct {
	fp    string
	gen   uint64
	algo  bicc.Algorithm
	procs int
}

// spillFP renders the graph-identity part of the durable key: the bare
// fingerprint at generation 0 (byte-compatible with records spilled by
// older builds) and fp@gen once mutated.
func (k resultKey) spillFP() string {
	if k.gen == 0 {
		return k.fp
	}
	return fmt.Sprintf("%s@%d", k.fp, k.gen)
}

// durableKey renders the key in the spill tier's naming scheme, matching
// durable.ResultRecord.Key.
func (k resultKey) durableKey() string {
	return fmt.Sprintf("%s-%s-%d", k.spillFP(), k.algo.String(), k.procs)
}

// cacheEntry is one computation, either in flight or completed. ready is
// closed exactly once when res/err become valid.
type cacheEntry struct {
	ready chan struct{}
	res   *queryResult
	err   error

	// waiters counts requests currently interested in the computation; when
	// it drops to zero before completion the computation's context is
	// canceled (nobody wants the answer anymore). Guarded by the cache mu.
	waiters int
	cancel  context.CancelFunc
	done    bool
	elem    *list.Element // LRU position once completed
	bytes   int64         // estimated resident size, charged while cached
}

// ResultCache is a single-flight LRU cache of BCC query results. Concurrent
// queries for the same (graph, algorithm, procs) coalesce onto one engine
// computation; completed results are kept for maxEntries keys and evicted
// least recently used.
//
// Errors and degraded results are never cached: a failed, canceled, or
// fallback-produced computation is forgotten so the next identical query
// retries the real engine from scratch — a transient engine fault must not
// poison the cache with sequential-quality answers for the cache's
// lifetime.
type ResultCache struct {
	mu         sync.Mutex
	entries    map[resultKey]*cacheEntry
	lru        *list.List // of resultKey, front = most recent
	maxEntries int

	// Disk tier. When spill is set, memory-pressure eviction demotes the
	// LRU entry's record to disk instead of dropping it, and a miss checks
	// the disk tier before starting a computation. memBudget bounds the
	// estimated resident bytes of completed entries; <= 0 leaves only the
	// entry-count bound.
	spill     *durable.Spill
	memBudget int64
	bytes     int64
}

// NewResultCache returns a cache holding up to maxEntries completed results;
// maxEntries <= 0 disables retention (single-flight coalescing still works).
func NewResultCache(maxEntries int) *ResultCache {
	return &ResultCache{
		entries:    map[resultKey]*cacheEntry{},
		lru:        list.New(),
		maxEntries: maxEntries,
	}
}

// Len returns the number of completed cached results.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the estimated resident size of completed cached results.
func (c *ResultCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// SetDurable attaches (or, with nil, detaches) the disk tier and the
// memory byte budget. Entries already resident keep their place; the
// budget applies from the next insertion.
func (c *ResultCache) SetDurable(spill *durable.Spill, memBudget int64) {
	c.mu.Lock()
	c.spill = spill
	c.memBudget = memBudget
	c.mu.Unlock()
}

// resultBytes estimates the resident size of a cached result: the label
// slice dominates, the derived views are charged per element, and the
// fixed overhead covers the struct, entry, and map bookkeeping.
func resultBytes(res *queryResult) int64 {
	n := int64(512)
	n += int64(len(res.edgeComp)) * 4
	n += int64(len(res.ArticulationPoints)+len(res.Bridges)) * 4
	for _, comp := range res.Components {
		n += int64(len(comp))*4 + 24
	}
	n += int64(len(res.Phases)) * 96
	if res.Trace != nil {
		n += int64(len(res.Trace.Spans)) * 128
	}
	return n
}

// Outcome classifies how a Do call was served, for stats.
type Outcome int

const (
	// OutcomeHit means the result was already cached.
	OutcomeHit Outcome = iota
	// OutcomeMiss means this call started the computation.
	OutcomeMiss
	// OutcomeCoalesced means this call joined an in-flight computation.
	OutcomeCoalesced
)

// Do returns the cached result for key, joining an in-flight computation or
// starting a new one via compute. compute receives a context that is
// canceled when every request waiting on the computation has gone away; it
// runs in its own goroutine so a caller abandoning the wait (ctx done) does
// not abort the computation for the others.
func (c *ResultCache) Do(ctx context.Context, key resultKey,
	compute func(ctx context.Context) (*queryResult, error)) (*queryResult, error, Outcome) {

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.done {
			if e.elem != nil {
				c.lru.MoveToFront(e.elem)
			}
			res, err := e.res, e.err
			c.mu.Unlock()
			return res, err, OutcomeHit
		}
		e.waiters++
		c.mu.Unlock()
		return c.wait(ctx, key, e, OutcomeCoalesced)
	}
	if c.spill != nil {
		if res, ok := c.promoteLocked(key); ok {
			c.mu.Unlock()
			return res, nil, OutcomeHit
		}
	}

	base := context.Background()
	if ctx != nil {
		// Detach from the caller's cancellation but keep its values; the
		// computation's lifetime is governed by the waiter count, not by
		// whichever request happened to arrive first.
		base = context.WithoutCancel(ctx)
	}
	cctx, cancel := context.WithCancel(base)
	e := &cacheEntry{ready: make(chan struct{}), waiters: 1, cancel: cancel}
	c.entries[key] = e
	c.mu.Unlock()

	go func() {
		res, err := compute(cctx)
		c.mu.Lock()
		e.res, e.err = res, err
		e.done = true
		e.cancel = nil
		close(e.ready)
		cancel()
		if err != nil || res == nil || res.Degraded || c.maxEntries <= 0 || c.entries[key] != e {
			// Never cache failures or degraded (fallback) results, and don't
			// resurrect an entry every waiter abandoned (wait already
			// removed it from the map).
			if c.entries[key] == e {
				delete(c.entries, key)
			}
		} else {
			e.elem = c.lru.PushFront(key)
			e.bytes = resultBytes(res)
			c.bytes += e.bytes
			c.enforceBudgetLocked(e)
		}
		c.mu.Unlock()
	}()

	return c.wait(ctx, key, e, OutcomeMiss)
}

// wait blocks until the entry completes or the caller's context is done,
// maintaining the entry's waiter count.
func (c *ResultCache) wait(ctx context.Context, key resultKey, e *cacheEntry, oc Outcome) (*queryResult, error, Outcome) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-e.ready:
		c.mu.Lock()
		e.waiters--
		res, err := e.res, e.err
		c.mu.Unlock()
		return res, err, oc
	case <-done:
		c.mu.Lock()
		e.waiters--
		if e.waiters == 0 && !e.done && e.cancel != nil {
			// Last interested request left: stop the engine.
			e.cancel()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
		}
		c.mu.Unlock()
		return nil, ctx.Err(), oc
	}
}

// promoteLocked serves a miss from the disk tier: read, decode, and (when
// retention is on) re-insert the record as a completed memory entry. A
// record that fails to decode is deleted — recompute beats serving it.
// Caller holds c.mu.
func (c *ResultCache) promoteLocked(key resultKey) (*queryResult, bool) {
	rec, ok := c.spill.Get(key.durableKey())
	if !ok {
		return nil, false
	}
	res := new(queryResult)
	if err := json.Unmarshal(rec.View, res); err != nil {
		c.spill.Remove(key.durableKey())
		return nil, false
	}
	res.edgeComp = rec.EdgeComponent
	if c.maxEntries > 0 {
		ready := make(chan struct{})
		close(ready)
		e := &cacheEntry{ready: ready, res: res, done: true, bytes: resultBytes(res)}
		e.elem = c.lru.PushFront(key)
		c.entries[key] = e
		c.bytes += e.bytes
		c.enforceBudgetLocked(e)
	}
	return res, true
}

// Respill rewrites key's spill record from a completed entry still resident
// in memory, reporting whether one was available. The scrubber's repair
// ladder starts here: promotion leaves the disk record in place, so a
// bit-rotted spill file often has a pristine in-memory twin — re-demoting
// it is free compared to recomputing.
func (c *ResultCache) Respill(key resultKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.done || e.res == nil || e.res.edgeComp == nil || e.res.Degraded || c.spill == nil {
		return false
	}
	view, err := json.Marshal(e.res)
	if err != nil {
		return false
	}
	return c.spill.Put(durable.ResultRecord{
		FP: key.spillFP(), Algorithm: key.algo.String(), Procs: key.procs,
		EdgeComponent: e.res.edgeComp, View: view,
	}) == nil
}

// DropGraph invalidates every result computed for a graph id, across all
// generations, algorithms, and proc counts — in memory and in the spill
// tier. Nothing is demoted to disk on the way out: the graph changed, so
// the results are wrong, not cold. In-flight computations are unhooked from
// the map (their waiters still get the answer they asked for against the
// snapshot they pinned, but the entry is never cached). Returns how many
// completed or in-flight entries were dropped.
func (c *ResultCache) DropGraph(fp string) int {
	c.mu.Lock()
	dropped := 0
	for key, e := range c.entries {
		if key.fp != fp {
			continue
		}
		if e.done {
			if e.elem != nil {
				c.lru.Remove(e.elem)
			}
			c.bytes -= e.bytes
		}
		delete(c.entries, key)
		dropped++
	}
	sp := c.spill
	c.mu.Unlock()
	if sp != nil {
		// Spilled keys are "<fp>-algo-procs" (gen 0) or "<fp>@gen-algo-procs";
		// fingerprints are fixed-width hex, so the prefix cannot collide with
		// another graph's keys.
		sp.RemovePrefix(fp)
	}
	return dropped
}

// enforceBudgetLocked demotes (or, with no disk tier, drops) completed
// entries LRU-first until both the entry-count and byte budgets hold.
// keep, the entry being inserted, is exempt: an oversized result must
// survive its own insertion. Caller holds c.mu.
func (c *ResultCache) enforceBudgetLocked(keep *cacheEntry) {
	for c.lru.Len() > c.maxEntries || (c.memBudget > 0 && c.bytes > c.memBudget) {
		back := c.lru.Back()
		if back == nil {
			return
		}
		key := back.Value.(resultKey)
		e := c.entries[key]
		if e == keep {
			return
		}
		c.demoteLocked(key, e)
	}
}

// demoteLocked removes a completed entry from the memory tier, writing it
// to the disk tier first when one is attached. Results recovered without
// their labels (or degraded ones, which are never cached) cannot be
// re-verified after a crash, so only label-bearing entries are spilled.
func (c *ResultCache) demoteLocked(key resultKey, e *cacheEntry) {
	if c.spill != nil && e.res != nil && e.res.edgeComp != nil {
		if view, err := json.Marshal(e.res); err == nil {
			_ = c.spill.Put(durable.ResultRecord{
				FP:            key.spillFP(),
				Algorithm:     key.algo.String(),
				Procs:         key.procs,
				EdgeComponent: e.res.edgeComp,
				View:          view,
			})
		}
	}
	c.lru.Remove(e.elem)
	delete(c.entries, key)
	c.bytes -= e.bytes
}
