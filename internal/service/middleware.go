package service

import (
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sync/atomic"
)

// requestIDs numbers requests process-wide so a 500 can be correlated with
// the server-side panic log line.
var requestIDs atomic.Int64

// statusRecorder remembers whether a handler already started its response,
// so the recovery middleware knows if a 500 can still be written.
type statusRecorder struct {
	http.ResponseWriter
	wrote bool
}

func (w *statusRecorder) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// PanicRecovery wraps next so a panicking handler answers 500 (with the
// request id for correlation) instead of killing its connection. net/http
// would keep the daemon alive anyway, but it aborts the connection with no
// response and no accounting; this middleware turns a handler bug into an
// observable, countable error. onPanic (if non-nil) is called once per
// recovered panic, before the 500 is written.
func PanicRecovery(next http.Handler, onPanic func()) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := requestIDs.Add(1)
		rid := fmt.Sprintf("req-%08x", id)
		w.Header().Set("X-Request-Id", rid)
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				// The conventional "abort this request" sentinel: honor it.
				panic(v)
			}
			if onPanic != nil {
				onPanic()
			}
			log.Printf("service: panic serving %s %s %s: %v\n%s", rid, r.Method, r.URL.Path, v, debug.Stack())
			if !rec.wrote {
				writeError(rec, http.StatusInternalServerError, "internal error (request %s)", rid)
			}
		}()
		next.ServeHTTP(rec, r)
	})
}

// drainGate rejects mutating/compute endpoints with 503 while the server is
// draining, letting in-flight work finish and health checks keep answering.
func (s *Server) drainGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			switch r.URL.Path {
			case "/healthz", "/statsz", "/metrics":
				// Health, stats and metrics stay readable during the drain.
			default:
				w.Header().Set("Retry-After", s.retryAfterSeconds())
				writeError(w, http.StatusServiceUnavailable, "server is draining")
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// BeginDrain flips the server into draining mode: /healthz reports
// "draining" and new work is rejected with 503 while in-flight requests run
// to completion. It is safe to call more than once.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }
