package service

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int32

const (
	// BreakerClosed: traffic flows normally; consecutive faults are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the protected path is presumed broken; callers are routed
	// around it until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe is allowed through to test recovery; its
	// outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

// String names the state for /statsz and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-algorithm circuit breaker: after threshold consecutive
// engine faults it opens, routing queries for that algorithm straight to the
// sequential engine instead of burning workers on a path that keeps dying.
// After cooldown one probe request is let through; a healthy probe closes
// the breaker, a faulting one re-opens it for another cooldown.
type Breaker struct {
	mu          sync.Mutex
	state       BreakerState
	consecutive int       // faults since the last success (closed state)
	openedAt    time.Time // when the breaker last opened
	probing     bool      // a half-open probe is in flight

	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	opens atomic.Int64 // total closed/half-open -> open transitions
}

// NewBreaker returns a closed breaker opening after threshold consecutive
// faults (min 1) and probing after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 15 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether the protected (parallel) path may be used for this
// request. When the breaker is open past its cooldown, the first caller is
// admitted as the half-open probe; everyone else is routed around until the
// probe's Record call settles the state.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		return false
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			return true
		}
		return false
	}
	return true
}

// Record reports the outcome of a request that Allow admitted to the
// protected path. fault must be true for engine faults (panic, error,
// degraded fallback) and false for clean results; caller-side cancellations
// should not be recorded at all.
func (b *Breaker) Record(fault bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if !fault {
			b.consecutive = 0
			return
		}
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.open()
		}
	case BreakerHalfOpen:
		b.probing = false
		if fault {
			b.open()
			return
		}
		b.state = BreakerClosed
		b.consecutive = 0
	case BreakerOpen:
		// A straggler from before the breaker opened; its outcome carries no
		// information the breaker still needs.
	}
}

// open transitions to BreakerOpen. Callers hold b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.probing = false
	b.consecutive = 0
	b.opens.Add(1)
}

// State returns the current state, advancing open -> half-open visibility is
// not needed here: the transition happens lazily in Allow.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns the total number of times the breaker has opened.
func (b *Breaker) Opens() int64 { return b.opens.Load() }
