// Package gen generates the graph families used by the paper's evaluation
// and by our tests:
//
//   - Random(n, m): the paper's workload — m distinct edges added uniformly
//     at random over n vertices (§5: "We create a random graph of n vertices
//     and m edges by randomly adding m unique edges to the vertex set").
//   - RandomConnected(n, m): the same, seeded with a random spanning tree so
//     the instance is connected (the paper's algorithms assume a connected
//     input).
//   - Mesh / Torus: regular sparse graphs with large diameter.
//   - Chain: the pathological d = O(n) case discussed in §4.
//   - Dense(n, frac): graphs retaining a fraction of all possible edges, the
//     Woo–Sahni style inputs mentioned in §1.
//   - Trees, cycles, stars, caterpillars and block graphs for unit tests
//     with known biconnectivity structure.
//
// All generators are deterministic in their seed.
package gen

import (
	"math/rand"

	"bicc/internal/graph"
)

// Random returns a graph with n vertices and m distinct uniformly random
// edges (no self loops, no duplicates). It panics if m exceeds the number of
// possible edges.
func Random(n, m int, seed int64) *graph.EdgeList {
	maxM := int64(n) * int64(n-1) / 2
	if int64(m) > maxM {
		panic("gen: m exceeds n(n-1)/2")
	}
	rng := rand.New(rand.NewSource(seed))
	g := &graph.EdgeList{N: int32(n), Edges: make([]graph.Edge, 0, m)}
	seen := make(map[uint64]struct{}, m)
	for len(g.Edges) < m {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		k := graph.CanonKey(u, v)
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		g.Edges = append(g.Edges, graph.Edge{U: u, V: v})
	}
	return g
}

// RandomConnected returns a connected graph with n vertices and m >= n-1
// edges: a uniform random spanning tree (random attachment) plus m-(n-1)
// distinct random nontree edges.
func RandomConnected(n, m int, seed int64) *graph.EdgeList {
	if n > 0 && m < n-1 {
		panic("gen: connected graph needs m >= n-1")
	}
	maxM := int64(n) * int64(n-1) / 2
	if int64(m) > maxM {
		panic("gen: m exceeds n(n-1)/2")
	}
	rng := rand.New(rand.NewSource(seed))
	g := &graph.EdgeList{N: int32(n), Edges: make([]graph.Edge, 0, m)}
	seen := make(map[uint64]struct{}, m)
	// Random spanning tree: attach each vertex i>0 to a uniformly random
	// earlier vertex, then shuffle labels implicitly via the rng-driven
	// attachment (adequate for benchmarking; exact uniform spanning trees
	// are not required by the paper).
	for i := 1; i < n; i++ {
		j := int32(rng.Intn(i))
		k := graph.CanonKey(int32(i), j)
		seen[k] = struct{}{}
		g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: j})
	}
	for len(g.Edges) < m {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		k := graph.CanonKey(u, v)
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		g.Edges = append(g.Edges, graph.Edge{U: u, V: v})
	}
	return g
}

// Mesh returns an r x c grid graph (vertices numbered row-major), a regular
// sparse graph with diameter r+c-2. Every interior face is a 4-cycle, so the
// whole mesh is one biconnected component when r, c >= 2.
func Mesh(r, c int) *graph.EdgeList {
	g := &graph.EdgeList{N: int32(r * c)}
	id := func(i, j int) int32 { return int32(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.Edges = append(g.Edges, graph.Edge{U: id(i, j), V: id(i, j+1)})
			}
			if i+1 < r {
				g.Edges = append(g.Edges, graph.Edge{U: id(i, j), V: id(i+1, j)})
			}
		}
	}
	return g
}

// Torus returns an r x c torus (mesh with wraparound), 4-regular when
// r, c >= 3.
func Torus(r, c int) *graph.EdgeList {
	g := &graph.EdgeList{N: int32(r * c)}
	id := func(i, j int) int32 { return int32(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if c > 1 {
				g.Edges = append(g.Edges, graph.Edge{U: id(i, j), V: id(i, (j+1)%c)})
			}
			if r > 1 {
				g.Edges = append(g.Edges, graph.Edge{U: id(i, j), V: id((i+1)%r, j)})
			}
		}
	}
	out, _, _ := g.Normalize() // r or c == 2 creates duplicate wrap edges
	return out
}

// Chain returns a path on n vertices — the paper's pathological diameter
// case (§4): every edge is a bridge and its own biconnected component.
func Chain(n int) *graph.EdgeList {
	g := &graph.EdgeList{N: int32(n)}
	for i := 0; i+1 < n; i++ {
		g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	return g
}

// Cycle returns a simple cycle on n >= 3 vertices: exactly one biconnected
// component and no articulation points.
func Cycle(n int) *graph.EdgeList {
	g := Chain(n)
	if n >= 3 {
		g.Edges = append(g.Edges, graph.Edge{U: int32(n - 1), V: 0})
	}
	return g
}

// Star returns a star with center 0 and n-1 leaves: n-1 bridge components,
// and the center is an articulation point when n >= 3.
func Star(n int) *graph.EdgeList {
	g := &graph.EdgeList{N: int32(n)}
	for i := 1; i < n; i++ {
		g.Edges = append(g.Edges, graph.Edge{U: 0, V: int32(i)})
	}
	return g
}

// Dense returns a graph retaining the given fraction (0,1] of all n(n-1)/2
// possible edges, chosen uniformly — the Woo–Sahni experimental regime
// (70%/90% of complete graphs).
func Dense(n int, frac float64, seed int64) *graph.EdgeList {
	rng := rand.New(rand.NewSource(seed))
	g := &graph.EdgeList{N: int32(n)}
	for u := int32(0); u < int32(n); u++ {
		for v := u + 1; v < int32(n); v++ {
			if rng.Float64() < frac {
				g.Edges = append(g.Edges, graph.Edge{U: u, V: v})
			}
		}
	}
	return g
}

// BinaryTree returns a complete binary tree on n vertices (parent of i is
// (i-1)/2): every edge is a bridge, every internal vertex an articulation
// point.
func BinaryTree(n int) *graph.EdgeList {
	g := &graph.EdgeList{N: int32(n)}
	for i := 1; i < n; i++ {
		g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32((i - 1) / 2)})
	}
	return g
}

// Caterpillar returns a path of spine vertices each carrying legs leaf
// vertices; a stress test for skewed degree distributions.
func Caterpillar(spine, legs int) *graph.EdgeList {
	n := spine * (1 + legs)
	g := &graph.EdgeList{N: int32(n)}
	for i := 0; i+1 < spine; i++ {
		g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	next := int32(spine)
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: next})
			next++
		}
	}
	return g
}

// BlockChain returns k cliques of size c chained by cut vertices: clique i
// and clique i+1 share one vertex. Each clique is one biconnected component
// and every shared vertex is an articulation point; the exact structure
// makes it a sharp correctness fixture.
func BlockChain(k, c int) *graph.EdgeList {
	if c < 2 {
		panic("gen: clique size must be >= 2")
	}
	// Vertices: clique i occupies [i*(c-1), i*(c-1)+c), so consecutive
	// cliques share vertex i*(c-1)+c-1.
	n := k*(c-1) + 1
	g := &graph.EdgeList{N: int32(n)}
	for i := 0; i < k; i++ {
		base := int32(i * (c - 1))
		for a := int32(0); a < int32(c); a++ {
			for b := a + 1; b < int32(c); b++ {
				g.Edges = append(g.Edges, graph.Edge{U: base + a, V: base + b})
			}
		}
	}
	return g
}

// Disconnected returns the disjoint union of the given graphs, relabeling
// vertices consecutively.
func Disconnected(parts ...*graph.EdgeList) *graph.EdgeList {
	g := &graph.EdgeList{}
	for _, p := range parts {
		off := g.N
		for _, e := range p.Edges {
			g.Edges = append(g.Edges, graph.Edge{U: e.U + off, V: e.V + off})
		}
		g.N += p.N
	}
	return g
}

// PreferentialAttachment returns a scale-free graph by the Barabási–Albert
// process: vertices arrive one at a time and attach k edges to existing
// vertices chosen proportionally to degree (with duplicate targets
// rejected). Skewed degree distributions stress the load balancing of the
// grafting and traversal loops.
func PreferentialAttachment(n, k int, seed int64) *graph.EdgeList {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := &graph.EdgeList{N: int32(n)}
	if n == 0 {
		return g
	}
	// endpointPool holds each edge endpoint once: sampling uniformly from
	// it is degree-proportional sampling.
	pool := make([]int32, 0, 2*n*k)
	seen := map[uint64]struct{}{}
	for v := 1; v < n; v++ {
		attach := k
		if attach > v {
			attach = v
		}
		added := 0
		for tries := 0; added < attach && tries < 20*attach; tries++ {
			var u int32
			if len(pool) == 0 {
				u = int32(rng.Intn(v))
			} else if rng.Intn(2) == 0 {
				// Mix uniform choice in so early vertices do not
				// monopolize everything (and v=1 can attach to 0).
				u = int32(rng.Intn(v))
			} else {
				u = pool[rng.Intn(len(pool))]
			}
			if int(u) >= v {
				continue
			}
			key := graph.CanonKey(int32(v), u)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			g.Edges = append(g.Edges, graph.Edge{U: int32(v), V: u})
			pool = append(pool, int32(v), u)
			added++
		}
	}
	return g
}

// Geometric returns a random geometric graph: n points uniform in the unit
// square, edges between pairs within distance r. Locality-heavy adjacency
// exercises cache behaviour differently from uniform G(n,m).
func Geometric(n int, r float64, seed int64) *graph.EdgeList {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	g := &graph.EdgeList{N: int32(n)}
	// Grid hashing: only compare points in neighboring cells.
	if r <= 0 {
		return g
	}
	cells := int(1 / r)
	if cells < 1 {
		cells = 1
	}
	cellOf := func(i int) (int, int) {
		cx := int(xs[i] * float64(cells))
		cy := int(ys[i] * float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	grid := map[[2]int][]int32{}
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		grid[[2]int{cx, cy}] = append(grid[[2]int{cx, cy}], int32(i))
	}
	r2 := r * r
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range grid[[2]int{cx + dx, cy + dy}] {
					if j <= int32(i) {
						continue
					}
					ddx := xs[i] - xs[j]
					ddy := ys[i] - ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: j})
					}
				}
			}
		}
	}
	return g
}
