package gen

import (
	"math/rand"
	"testing"

	"bicc/internal/graph"
)

// connectedComponents counts components with a simple BFS (test oracle).
func connectedComponents(g *graph.EdgeList) int {
	c := graph.ToCSR(1, g)
	seen := make([]bool, g.N)
	count := 0
	queue := make([]int32, 0, g.N)
	for s := int32(0); s < g.N; s++ {
		if seen[s] {
			continue
		}
		count++
		seen[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range c.Neighbors(v) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return count
}

func checkSimple(t *testing.T, g *graph.EdgeList) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
	seen := map[uint64]struct{}{}
	for _, e := range g.Edges {
		k := graph.CanonKey(e.U, e.V)
		if _, ok := seen[k]; ok {
			t.Fatalf("duplicate edge (%d,%d)", e.U, e.V)
		}
		seen[k] = struct{}{}
	}
}

func TestRandomSizesAndSimplicity(t *testing.T) {
	g := Random(100, 300, 1)
	checkSimple(t, g)
	if g.N != 100 || len(g.Edges) != 300 {
		t.Errorf("got n=%d m=%d", g.N, len(g.Edges))
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, b := Random(50, 100, 42), Random(50, 100, 42)
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
	c := Random(50, 100, 43)
	same := true
	for i := range a.Edges {
		if a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRandomPanicsOnOverfull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Random(3, 4) should panic: only 3 edges possible")
		}
	}()
	Random(3, 4, 1)
}

func TestRandomConnectedIsConnected(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{1, 0}, {2, 1}, {100, 99}, {100, 300}, {1000, 2500}} {
		g := RandomConnected(tc.n, tc.m, 7)
		checkSimple(t, g)
		if len(g.Edges) != tc.m {
			t.Errorf("n=%d m=%d: got %d edges", tc.n, tc.m, len(g.Edges))
		}
		if cc := connectedComponents(g); cc != 1 {
			t.Errorf("n=%d m=%d: %d components, want 1", tc.n, tc.m, cc)
		}
	}
}

func TestRandomConnectedPanicsUnderTree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RandomConnected(5, 3) should panic")
		}
	}()
	RandomConnected(5, 3, 1)
}

func TestMesh(t *testing.T) {
	g := Mesh(3, 4)
	checkSimple(t, g)
	if g.N != 12 {
		t.Errorf("n=%d, want 12", g.N)
	}
	wantM := 3*3 + 2*4 // horizontal + vertical
	if len(g.Edges) != wantM {
		t.Errorf("m=%d, want %d", len(g.Edges), wantM)
	}
	if cc := connectedComponents(g); cc != 1 {
		t.Errorf("%d components, want 1", cc)
	}
}

func TestTorusRegular(t *testing.T) {
	g := Torus(4, 5)
	checkSimple(t, g)
	c := graph.ToCSR(1, g)
	for v := int32(0); v < g.N; v++ {
		if c.Degree(v) != 4 {
			t.Fatalf("torus vertex %d degree=%d, want 4", v, c.Degree(v))
		}
	}
}

func TestTorusSmallDims(t *testing.T) {
	g := Torus(2, 3) // wraparound in the 2-dimension duplicates edges; must stay simple
	checkSimple(t, g)
	if cc := connectedComponents(g); cc != 1 {
		t.Errorf("%d components, want 1", cc)
	}
}

func TestChainCycleStar(t *testing.T) {
	if g := Chain(5); len(g.Edges) != 4 {
		t.Errorf("chain edges=%d, want 4", len(g.Edges))
	}
	if g := Cycle(5); len(g.Edges) != 5 {
		t.Errorf("cycle edges=%d, want 5", len(g.Edges))
	}
	if g := Star(5); len(g.Edges) != 4 {
		t.Errorf("star edges=%d, want 4", len(g.Edges))
	}
	checkSimple(t, Chain(10))
	checkSimple(t, Cycle(10))
	checkSimple(t, Star(10))
	if g := Chain(1); len(g.Edges) != 0 {
		t.Errorf("chain(1) edges=%d, want 0", len(g.Edges))
	}
}

func TestDense(t *testing.T) {
	g := Dense(40, 1.0, 1)
	checkSimple(t, g)
	if want := 40 * 39 / 2; len(g.Edges) != want {
		t.Errorf("full dense m=%d, want %d", len(g.Edges), want)
	}
	g70 := Dense(60, 0.7, 2)
	checkSimple(t, g70)
	total := 60 * 59 / 2
	if m := len(g70.Edges); m < total/2 || m > total {
		t.Errorf("70%% dense m=%d out of plausible range (%d..%d)", m, total/2, total)
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(15)
	checkSimple(t, g)
	if len(g.Edges) != 14 {
		t.Errorf("m=%d, want 14", len(g.Edges))
	}
	if cc := connectedComponents(g); cc != 1 {
		t.Errorf("%d components, want 1", cc)
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 3)
	checkSimple(t, g)
	if g.N != 20 {
		t.Errorf("n=%d, want 20", g.N)
	}
	if len(g.Edges) != 4+15 {
		t.Errorf("m=%d, want 19", len(g.Edges))
	}
	if cc := connectedComponents(g); cc != 1 {
		t.Errorf("%d components, want 1", cc)
	}
}

func TestBlockChain(t *testing.T) {
	k, c := 4, 5
	g := BlockChain(k, c)
	checkSimple(t, g)
	if int(g.N) != k*(c-1)+1 {
		t.Errorf("n=%d, want %d", g.N, k*(c-1)+1)
	}
	if want := k * c * (c - 1) / 2; len(g.Edges) != want {
		t.Errorf("m=%d, want %d", len(g.Edges), want)
	}
	if cc := connectedComponents(g); cc != 1 {
		t.Errorf("%d components, want 1", cc)
	}
}

func TestDisconnected(t *testing.T) {
	g := Disconnected(Cycle(4), Chain(3), Star(5))
	checkSimple(t, g)
	if g.N != 12 {
		t.Errorf("n=%d, want 12", g.N)
	}
	if cc := connectedComponents(g); cc != 3 {
		t.Errorf("%d components, want 3", cc)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(500, 3, 1)
	checkSimple(t, g)
	if cc := connectedComponents(g); cc != 1 {
		t.Errorf("%d components, want 1 (every vertex attaches to an earlier one)", cc)
	}
	// Skew: max degree should far exceed the mean.
	deg := make([]int, g.N)
	for _, e := range g.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := 2 * len(g.Edges) / int(g.N)
	if maxDeg < 3*mean {
		t.Errorf("max degree %d vs mean %d: no skew — not scale-free-ish", maxDeg, mean)
	}
	if g0 := PreferentialAttachment(0, 3, 1); g0.N != 0 {
		t.Error("empty case broken")
	}
	checkSimple(t, PreferentialAttachment(10, 0, 2)) // k clamps to 1
}

func TestGeometric(t *testing.T) {
	g := Geometric(400, 0.08, 3)
	checkSimple(t, g)
	// Every emitted edge must respect the radius; spot-verify via an O(n^2)
	// recount.
	g2 := Geometric(400, 0.08, 3)
	if len(g.Edges) != len(g2.Edges) {
		t.Error("not deterministic")
	}
	if len(g.Edges) == 0 {
		t.Error("radius 0.08 over 400 points should produce edges")
	}
	if ge := Geometric(100, 0, 1); len(ge.Edges) != 0 {
		t.Error("zero radius produced edges")
	}
}

func TestGeometricMatchesBruteForce(t *testing.T) {
	// The grid-hashed generator must find exactly the pairs within r.
	n, r, seed := 150, 0.15, int64(7)
	g := Geometric(n, r, seed)
	// Recreate the points with the same rng stream.
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	want := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx*dx+dy*dy <= r*r {
				want++
			}
		}
	}
	if len(g.Edges) != want {
		t.Errorf("geometric edges=%d, brute force=%d", len(g.Edges), want)
	}
}
