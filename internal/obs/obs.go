// Package obs is the unified observability layer: a process-wide metrics
// registry (atomic counters, callback gauges, power-of-two latency
// histograms), Prometheus text-format exposition, and a lightweight span
// tracer for per-request phase breakdowns.
//
// The package turns the paper's offline measurement method — per-phase
// timing of the TV pipeline (spanning tree, Euler tour, root/list ranking,
// low-high, label-edge, connected components) — into live, scrapeable
// telemetry: the engines emit one span per pipeline phase, the parallel
// runtime exports worker-pool counters, and bccd serves everything on
// /metrics and echoes per-request traces with ?trace=1.
//
// Instrumentation cost is a design constraint: hot-path sites (the parallel
// runtime's loop and steal counters) are guarded by Enabled(), a single
// atomic load when observability is off, so benchmarks measuring the paper's
// speedups are unaffected. The gate is off by default; long-lived servers
// (cmd/bccd) switch it on at startup. Span recording needs no gate: spans
// exist only when a caller attached a Trace to its context, and a nil *Span
// is a no-op everywhere.
//
// obs depends only on the standard library, so every other package in the
// repository — including internal/par at the very bottom of the stack — can
// import it without cycles.
package obs

import "sync/atomic"

// enabled gates the hot-path instrumentation sites. Off by default: library
// users and benchmarks pay one atomic load per site and nothing else.
var enabled atomic.Bool

// Enabled reports whether hot-path instrumentation is switched on. The
// check compiles to a single atomic load; instrumentation sites call it
// before touching any counter.
func Enabled() bool { return enabled.Load() }

// SetEnabled switches hot-path instrumentation on or off process-wide.
// cmd/bccd enables it at startup; benchmarks leave it off.
func SetEnabled(v bool) { enabled.Store(v) }
