package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders the registries in Prometheus text exposition
// format (version 0.0.4). Families are merged across registries and sorted
// by name; children are sorted by label values, so the output is
// deterministic for a fixed metric state. Histograms are rendered as
// cumulative _bucket series with an le label (upper bucket edges in
// seconds), plus _sum and _count. Bucket counts and _count are derived from
// one snapshot of the bucket array, so the cumulative invariant
// (non-decreasing buckets, +Inf bucket == _count) holds in every scrape even
// while Observe calls race with it.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	bw := bufio.NewWriter(w)
	seen := map[string]bool{}
	for _, r := range regs {
		for _, f := range r.sortedFamilies() {
			// The same family name in a later registry is skipped: engine
			// metrics live in Default, component metrics in private
			// registries, and a name collision across them is a bug caught by
			// the registries' own mismatch panics when it matters.
			if seen[f.name] {
				continue
			}
			seen[f.name] = true
			writeFamily(bw, f)
		}
	}
	return bw.Flush()
}

// Handler serves the registries' metrics over HTTP — mount it on /metrics.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, regs...)
	})
}

func writeFamily(w *bufio.Writer, f *family) {
	if f.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(f.help))
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(string(f.typ))
	w.WriteByte('\n')
	for _, ch := range f.sortedChildren() {
		switch f.typ {
		case TypeCounter:
			v := int64(0)
			if ch.c != nil {
				v = ch.c.Load()
			} else if ch.cf != nil {
				v = ch.cf()
			}
			writeSample(w, f.name, "", f.labels, ch.values, "", strconv.FormatInt(v, 10))
		case TypeGauge:
			v := 0.0
			if ch.gf != nil {
				v = ch.gf()
			}
			writeSample(w, f.name, "", f.labels, ch.values, "", formatFloat(v))
		case TypeHistogram:
			writeHistogram(w, f, ch)
		}
	}
}

// writeHistogram renders one histogram series. The power-of-two microsecond
// buckets map to le edges of 2^k µs (in seconds): bucket k holds
// observations in [2^(k-1), 2^k) µs, so the cumulative count through bucket
// k is the count of observations below 2^k µs. The open last bucket folds
// into +Inf.
func writeHistogram(w *bufio.Writer, f *family, ch *child) {
	var b [histBuckets]int64
	sumNs := ch.h.sumNs.Load()
	total := int64(0)
	for k := range b {
		b[k] = ch.h.buckets[k].Load()
		total += b[k]
	}
	cum := int64(0)
	for k := 0; k < histBuckets-1; k++ {
		cum += b[k]
		le := formatFloat(math.Ldexp(1, k) / 1e6) // 2^k µs in seconds
		writeSample(w, f.name, "_bucket", f.labels, ch.values, le, strconv.FormatInt(cum, 10))
	}
	writeSample(w, f.name, "_bucket", f.labels, ch.values, "+Inf", strconv.FormatInt(total, 10))
	writeSample(w, f.name, "_sum", f.labels, ch.values, "", formatFloat(float64(sumNs)/1e9))
	writeSample(w, f.name, "_count", f.labels, ch.values, "", strconv.FormatInt(total, 10))
}

// writeSample writes one exposition line: name+suffix, the label set (plus
// an le label when non-empty), and the value.
func writeSample(w *bufio.Writer, name, suffix string, labels, values []string, le, value string) {
	w.WriteString(name)
	w.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(`le="`)
			w.WriteString(le)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline, the two characters the text
// format reserves in HELP lines.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash, newline, and double quote for quoted label
// values.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
