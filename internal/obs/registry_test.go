package obs

import (
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("Load = %d, want 5", got)
	}
	// Re-registration returns the same counter.
	if again := r.Counter("t_total", "help"); again != c {
		t.Fatal("re-registered counter is a different instance")
	}
}

func TestVecChildrenAreStable(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("t_total", "help", "kind")
	a := v.With("a")
	if v.With("a") != a {
		t.Fatal("same label values yielded a different counter")
	}
	if v.With("b") == a {
		t.Fatal("different label values yielded the same counter")
	}
	// Label values that would collide under naive concatenation must not:
	// ("ab", "c") vs ("a", "bc").
	h := r.HistogramVec("t_seconds", "help", "x", "y")
	h1 := h.With("ab", "c")
	h2 := h.With("a", "bc")
	if h1 == h2 {
		t.Fatal(`("ab","c") and ("a","bc") resolved to the same series`)
	}
}

func TestMismatchedReregistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_total", "help")
	for name, fn := range map[string]func(){
		"type":   func() { r.Histogram("t_total", "help") },
		"labels": func() { r.CounterVec("t_total", "help", "kind") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWrongLabelCountPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("t_total", "help", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label value count did not panic")
		}
	}()
	v.With("only-one")
}

func TestEnabledGate(t *testing.T) {
	old := Enabled()
	defer SetEnabled(old)
	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled() true after SetEnabled(false)")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("Enabled() false after SetEnabled(true)")
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // bucket 0 (sub-µs)
	h.Observe(time.Microsecond)      // bucket 1
	h.Observe(3 * time.Microsecond)  // bucket 2
	h.Observe(3 * time.Microsecond)  // bucket 2
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	wantBuckets := []int64{1, 1, 2}
	if len(s.BucketsUs) != len(wantBuckets) {
		t.Fatalf("BucketsUs = %v, want %v", s.BucketsUs, wantBuckets)
	}
	for i, w := range wantBuckets {
		if s.BucketsUs[i] != w {
			t.Fatalf("BucketsUs = %v, want %v", s.BucketsUs, wantBuckets)
		}
	}
	// The 2nd of 4 samples lands in bucket 1 (upper edge 2µs); the 4th in
	// bucket 2 (upper edge 4µs).
	if s.P50Ns != 2000 || s.P99Ns != 4000 {
		t.Errorf("P50 = %d, P99 = %d, want 2000 and 4000", s.P50Ns, s.P99Ns)
	}
	wantMean := (int64(500) + 1000 + 3000 + 3000) / 4
	if s.MeanN != wantMean {
		t.Errorf("MeanN = %d, want %d", s.MeanN, wantMean)
	}
}
