package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType is the Prometheus type of a metric family.
type MetricType string

// The three metric types the registry supports.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must not be negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// child is one labeled series of a family. Exactly one of the value fields
// is set, matching the family's type.
type child struct {
	values []string       // label values, parallel to family.labels
	c      *Counter       // TypeCounter, atomic-backed
	cf     func() int64   // TypeCounter, callback-backed
	gf     func() float64 // TypeGauge, callback-backed
	h      *Histogram     // TypeHistogram
}

// family is one named metric with a fixed label schema and any number of
// labeled children.
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string

	mu       sync.Mutex
	children map[string]*child
}

// Registry holds metric families and renders them in Prometheus text
// format. Registration is idempotent: asking for an existing (name, type,
// labels) family returns the same family, and asking for an existing child
// returns the same counter/histogram, so package-level metric variables and
// repeated constructor calls coexist. Mismatched re-registration (same name,
// different type or label schema) panics — that is always a programming
// error.
//
// The process-wide Default registry carries engine-level metrics (parallel
// runtime, fault injection, per-phase histograms); components with their own
// lifecycle (one Server per test, say) create private registries and expose
// both through Handler.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// family returns the named family, creating it on first use, and panics on
// a type or label-schema mismatch with a previous registration.
func (r *Registry) family(name, help string, typ MetricType, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, children: map[string]*child{}}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childKey joins label values into a map key; \xff cannot appear in UTF-8
// label values, so the join is unambiguous.
func childKey(values []string) string { return strings.Join(values, "\xff") }

// get returns the child for the given label values, creating it with mk on
// first use. It panics when the value count does not match the label schema.
func (f *family) get(values []string, mk func() *child) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values %v, got %d",
			f.name, len(f.labels), f.labels, len(values)))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := childKey(values)
	if ch, ok := f.children[key]; ok {
		return ch
	}
	ch := mk()
	ch.values = append([]string(nil), values...)
	f.children[key] = ch
	return ch
}

// sortedChildren returns the children ordered by label values, for
// deterministic exposition.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*child, len(keys))
	for i, k := range keys {
		out[i] = f.children[k]
	}
	return out
}

// --- counters ---------------------------------------------------------------

// CounterVec is a counter family with labels.
type CounterVec struct {
	fam *family
}

// CounterVec registers (or retrieves) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.family(name, help, TypeCounter, labels)}
}

// With returns the counter for the given label values, creating it on first
// use.
func (v *CounterVec) With(values ...string) *Counter {
	ch := v.fam.get(values, func() *child { return &child{c: &Counter{}} })
	if ch.c == nil {
		panic(fmt.Sprintf("obs: metric %q series %v is callback-backed", v.fam.name, values))
	}
	return ch.c
}

// Func registers a callback-backed series: the counter's value is read from
// fn at exposition time. Use it to expose counters another component already
// maintains (breaker opens, registry evictions) without double accounting.
func (v *CounterVec) Func(fn func() int64, values ...string) {
	v.fam.get(values, func() *child { return &child{cf: fn} })
}

// Counter registers (or retrieves) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// --- gauges -----------------------------------------------------------------

// GaugeVec is a gauge family with labels. Gauges are callback-backed: the
// value is sampled at exposition time, so components expose live state
// (queue depth, breaker state) without maintaining shadow variables.
type GaugeVec struct {
	fam *family
}

// GaugeVec registers (or retrieves) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.family(name, help, TypeGauge, labels)}
}

// Func registers the sampling callback for one labeled series.
func (v *GaugeVec) Func(fn func() float64, values ...string) {
	v.fam.get(values, func() *child { return &child{gf: fn} })
}

// GaugeFunc registers an unlabeled callback gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.GaugeVec(name, help).Func(fn)
}

// --- histograms -------------------------------------------------------------

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	fam *family
}

// HistogramVec registers (or retrieves) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.family(name, help, TypeHistogram, labels)}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	ch := v.fam.get(values, func() *child { return &child{h: &Histogram{}} })
	return ch.h
}

// Histogram registers (or retrieves) an unlabeled histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.HistogramVec(name, help).With()
}

// Peek returns the histogram for the given label values only if that series
// already exists. Unlike With it never creates the series, so read-side
// consumers (the query planner scoring candidate engines, say) can probe for
// history without polluting the exposition with empty children.
func (v *HistogramVec) Peek(values ...string) (*Histogram, bool) {
	f := v.fam
	if len(values) != len(f.labels) {
		return nil, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[childKey(values)]
	if !ok || ch.h == nil {
		return nil, false
	}
	return ch.h, true
}

// FindHistogram looks up an already-registered histogram series by family
// name and label values, without creating the family or the series. It is
// the cross-package read-back hook: components that only know a metric's
// name (not the *HistogramVec that registered it) can still read its
// snapshot.
func (r *Registry) FindHistogram(name string, values ...string) (*Histogram, bool) {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok || f.typ != TypeHistogram {
		return nil, false
	}
	return (&HistogramVec{fam: f}).Peek(values...)
}

// sortedFamilies snapshots the registry's families ordered by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
