package obs

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Trace collects the spans of one logical operation (one bccd request, one
// CLI benchmark run). It is goroutine-safe: spans may be started and ended
// from any goroutine of the computation. A trace is explicitly opt-in —
// computations without one attached pay only nil checks.
type Trace struct {
	start time.Time

	mu     sync.Mutex
	nextID int
	done   []SpanExport
}

// NewTrace returns an empty trace anchored at the current time.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

// Span is one timed, named, optionally labeled section of a trace. A nil
// *Span is valid and inert everywhere, so instrumentation sites need no
// enabled checks of their own.
type Span struct {
	t      *Trace
	id     int
	parent int // parent span id, -1 for roots
	name   string
	begin  time.Time

	mu     sync.Mutex
	labels map[string]string
	ended  bool
}

// Root starts a parentless span, for callers without a context (CLI
// harnesses driving engines directly).
func (t *Trace) Root(name string) *Span { return t.newSpan(-1, name) }

// ID returns the span's id within its trace, matching SpanExport.ID and
// SpanExport.Parent. A nil span reports -1.
func (s *Span) ID() int {
	if s == nil {
		return -1
	}
	return s.id
}

func (t *Trace) newSpan(parent int, name string) *Span {
	t.mu.Lock()
	id := t.nextID
	t.nextID++
	t.mu.Unlock()
	return &Span{t: t, id: id, parent: parent, name: name, begin: time.Now()}
}

// Child starts a sub-span of s. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil || s.t == nil {
		return nil
	}
	return s.t.newSpan(s.id, name)
}

// ChildInterval records an already-completed sub-span covering [begin, end)
// — the natural fit for stopwatch-style phase timing, where the interval is
// known only at the lap. Nil-safe.
func (s *Span) ChildInterval(name string, begin, end time.Time) {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	id := t.nextID
	t.nextID++
	t.done = append(t.done, SpanExport{
		ID:         id,
		Parent:     s.id,
		Name:       name,
		StartNs:    begin.Sub(t.start).Nanoseconds(),
		DurationNs: end.Sub(begin).Nanoseconds(),
	})
	t.mu.Unlock()
}

// SetLabel attaches a key=value label to the span. Nil-safe.
func (s *Span) SetLabel(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.labels == nil {
		s.labels = map[string]string{}
	}
	s.labels[k] = v
	s.mu.Unlock()
}

// End closes the span and records it on its trace. Ending a span twice
// records it once. Nil-safe.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	var labels map[string]string
	if len(s.labels) > 0 {
		labels = make(map[string]string, len(s.labels))
		for k, v := range s.labels {
			labels[k] = v
		}
	}
	s.mu.Unlock()
	t := s.t
	t.mu.Lock()
	t.done = append(t.done, SpanExport{
		ID:         s.id,
		Parent:     s.parent,
		Name:       s.name,
		StartNs:    s.begin.Sub(t.start).Nanoseconds(),
		DurationNs: end.Sub(s.begin).Nanoseconds(),
		Labels:     labels,
	})
	t.mu.Unlock()
}

// SpanExport is the JSON shape of one completed span. Offsets are
// nanoseconds from the trace start.
type SpanExport struct {
	ID         int               `json:"id"`
	Parent     int               `json:"parent"` // -1 for root spans
	Name       string            `json:"name"`
	StartNs    int64             `json:"start_ns"`
	DurationNs int64             `json:"duration_ns"`
	Labels     map[string]string `json:"labels,omitempty"`
}

// TraceExport is the JSON shape of a trace: every ended span, ordered by
// start time (ties broken by id, so a parent precedes the children that
// started within the same nanosecond).
type TraceExport struct {
	Spans []SpanExport `json:"spans"`
}

// Export snapshots the trace's ended spans. Spans still open are not
// included; export after the computation finishes.
func (t *Trace) Export() *TraceExport {
	t.mu.Lock()
	spans := append([]SpanExport(nil), t.done...)
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNs != spans[j].StartNs {
			return spans[i].StartNs < spans[j].StartNs
		}
		return spans[i].ID < spans[j].ID
	})
	return &TraceExport{Spans: spans}
}

// SpansNamed returns the exported spans with the given name, in start
// order.
func (e *TraceExport) SpansNamed(name string) []SpanExport {
	var out []SpanExport
	for _, s := range e.Spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Validate checks the structural invariants of an exported trace: every
// duration is non-negative, every non-root parent id refers to an exported
// span, no span is its own ancestor, and every child's interval lies within
// its parent's. It returns the first violation found.
func (e *TraceExport) Validate() error {
	byID := make(map[int]SpanExport, len(e.Spans))
	for _, s := range e.Spans {
		if s.DurationNs < 0 {
			return fmt.Errorf("obs: span %d (%s) has negative duration %d", s.ID, s.Name, s.DurationNs)
		}
		if _, dup := byID[s.ID]; dup {
			return fmt.Errorf("obs: duplicate span id %d", s.ID)
		}
		byID[s.ID] = s
	}
	for _, s := range e.Spans {
		if s.Parent == -1 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			return fmt.Errorf("obs: span %d (%s) references missing parent %d", s.ID, s.Name, s.Parent)
		}
		if p.ID == s.ID {
			return fmt.Errorf("obs: span %d (%s) is its own parent", s.ID, s.Name)
		}
		if s.StartNs < p.StartNs || s.StartNs+s.DurationNs > p.StartNs+p.DurationNs {
			return fmt.Errorf("obs: span %d (%s) [%d,%d) escapes parent %d (%s) [%d,%d)",
				s.ID, s.Name, s.StartNs, s.StartNs+s.DurationNs,
				p.ID, p.Name, p.StartNs, p.StartNs+p.DurationNs)
		}
	}
	return nil
}

// --- context plumbing -------------------------------------------------------

type traceKey struct{}
type spanKey struct{}

// ContextWithTrace attaches t to ctx; StartSpan calls below it record onto
// t.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartSpan starts a span named name on the context's trace, nested under
// the context's current span, and returns a context carrying the new span
// as the nesting parent. Without a trace attached it returns ctx unchanged
// and a nil (inert) span, so instrumentation is safe on any context.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TraceFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent := -1
	if sp, ok := ctx.Value(spanKey{}).(*Span); ok && sp != nil {
		parent = sp.id
	}
	sp := t.newSpan(parent, name)
	return context.WithValue(ctx, spanKey{}, sp), sp
}
