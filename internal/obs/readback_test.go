package obs

import (
	"testing"
	"time"
)

// TestHistogramPeekDoesNotCreate pins the read-side contract: Peek and
// FindHistogram never materialize series or families, and find exactly the
// series With created.
func TestHistogramPeekDoesNotCreate(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("peek_test_seconds", "t", "engine", "procs")

	if _, ok := v.Peek("fast-bcc", "1"); ok {
		t.Fatal("Peek found a series before any With")
	}
	if _, ok := r.FindHistogram("peek_test_seconds", "fast-bcc", "1"); ok {
		t.Fatal("FindHistogram found a series before any With")
	}
	// Wrong arity and unknown family return not-found, never panic.
	if _, ok := v.Peek("fast-bcc"); ok {
		t.Fatal("Peek matched with wrong label arity")
	}
	if _, ok := r.FindHistogram("no_such_family", "x"); ok {
		t.Fatal("FindHistogram invented a family")
	}

	h := v.With("fast-bcc", "1")
	h.Observe(3 * time.Millisecond)

	got, ok := v.Peek("fast-bcc", "1")
	if !ok || got != h {
		t.Fatalf("Peek: ok=%v same=%v", ok, got == h)
	}
	got, ok = r.FindHistogram("peek_test_seconds", "fast-bcc", "1")
	if !ok || got != h {
		t.Fatalf("FindHistogram: ok=%v same=%v", ok, got == h)
	}
	if s := got.Snapshot(); s.Count != 1 {
		t.Fatalf("snapshot count = %d, want 1", s.Count)
	}
	// Sibling series still invisible until created.
	if _, ok := v.Peek("fast-bcc", "2"); ok {
		t.Fatal("Peek found an uncreated sibling")
	}
	// A counter family under the same name lookup path must not satisfy
	// FindHistogram.
	r.Counter("peek_test_total", "t")
	if _, ok := r.FindHistogram("peek_test_total"); ok {
		t.Fatal("FindHistogram returned a counter family")
	}
}
