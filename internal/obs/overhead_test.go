package obs

import (
	"testing"
	"time"
)

// BenchmarkDisabledSite measures the cost of an instrumentation site when
// observability is off: the promise is a single atomic load and nothing
// else. Compare with BenchmarkEnabledSite.
func BenchmarkDisabledSite(b *testing.B) {
	old := Enabled()
	SetEnabled(false)
	defer SetEnabled(old)
	c := NewRegistry().Counter("bench_total", "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Enabled() {
			c.Inc()
		}
	}
}

// BenchmarkEnabledSite measures the same site with observability on.
func BenchmarkEnabledSite(b *testing.B) {
	old := Enabled()
	SetEnabled(true)
	defer SetEnabled(old)
	c := NewRegistry().Counter("bench_total", "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Enabled() {
			c.Inc()
		}
	}
}

// BenchmarkHistogramObserve measures one histogram observation, the cost
// added per pipeline phase when metrics are enabled.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

// TestDisabledSiteIsCheap is the acceptance check behind the benchmarks: a
// disabled site must cost on the order of an atomic load. The bound is
// deliberately loose (200ns/op amortized over a large loop) so scheduler
// noise can't flake it, while still catching an accidental unconditional
// counter write or allocation on the disabled path.
func TestDisabledSiteIsCheap(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	old := Enabled()
	SetEnabled(false)
	defer SetEnabled(old)
	c := NewRegistry().Counter("cheap_total", "")
	const iters = 1_000_000
	var best time.Duration
	for round := 0; round < 5; round++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if Enabled() {
				c.Inc()
			}
		}
		d := time.Since(start)
		if round == 0 || d < best {
			best = d
		}
	}
	if perOp := best / iters; perOp > 200*time.Nanosecond {
		t.Errorf("disabled site costs %v/op, want <= 200ns", perOp)
	}
	if c.Load() != 0 {
		t.Error("disabled site incremented the counter")
	}
}
