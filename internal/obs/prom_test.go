package obs

import (
	"bytes"
	"flag"
	"math"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with every metric shape the exposition
// supports, including label values that need escaping.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("demo_requests_total", "Requests received.").Add(42)
	v := r.CounterVec("demo_tasks_total", `Tasks by kind; help with \ backslash
and a newline.`, "kind", "status")
	v.With("steal", "ok").Add(7)
	v.With("run", "err\nor").Inc()
	v.With(`back\slash`, `quo"te`).Add(3)
	v.Func(func() int64 { return 9 }, "callback", "ok")
	r.GaugeFunc("demo_depth", "Current queue depth.", func() float64 { return 3.5 })
	h := r.Histogram("demo_seconds", "Latency.")
	h.Observe(500 * time.Nanosecond)
	h.Observe(time.Microsecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	hv := r.HistogramVec("demo_phase_seconds", "Per-phase latency.", "phase")
	hv.With("spanning-tree").Observe(2 * time.Millisecond)
	hv.With("euler-tour").Observe(250 * time.Microsecond)
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	const path = "testdata/metrics.golden"
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from %s (rerun with -update after intentional changes)\ngot:\n%s\nwant:\n%s",
			path, buf.Bytes(), want)
	}
	checkExposition(t, buf.String())
}

func TestHandlerContentType(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(goldenRegistry()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", got)
	}
	if rec.Body.Len() == 0 {
		t.Error("empty body")
	}
}

func TestMergedRegistriesFirstWins(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("dup_total", "from a").Add(1)
	b.Counter("dup_total", "from b").Add(100)
	b.Counter("only_b_total", "b").Add(5)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dup_total 1\n") {
		t.Errorf("first registry's dup_total not exposed:\n%s", out)
	}
	if strings.Contains(out, "dup_total 100") {
		t.Errorf("second registry's duplicate family leaked:\n%s", out)
	}
	if !strings.Contains(out, "only_b_total 5\n") {
		t.Errorf("second registry's unique family missing:\n%s", out)
	}
}

// TestConcurrentObserveScrape races Observe against scrapes and checks the
// histogram's cumulative invariants on every scrape. Run with -race.
func TestConcurrentObserveScrape(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("race_seconds", "h", "algorithm")
	c := r.Counter("race_total", "c")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hist := h.With("tv-opt")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				hist.Observe(time.Duration(i%5000) * time.Microsecond)
				c.Inc()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, r); err != nil {
			t.Fatal(err)
		}
		checkExposition(t, buf.String())
	}
	close(stop)
	wg.Wait()
}

// checkExposition parses a text exposition and asserts the structural
// invariants scrapers rely on: every sample line parses, bucket series are
// cumulative and non-decreasing in le order, and the +Inf bucket equals
// _count for the same series.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	type series struct {
		lastLe  float64
		lastCum int64
		inf     int64
		hasInf  bool
	}
	buckets := map[string]*series{}
	counts := map[string]int64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable line %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(valStr, 64); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		switch {
		case strings.Contains(name, "_bucket"):
			le := ""
			if i := strings.Index(name, `le="`); i >= 0 {
				rest := name[i+4:]
				le = rest[:strings.IndexByte(rest, '"')]
			} else {
				t.Fatalf("bucket line without le: %q", line)
			}
			// Series key: the line minus its le label and value, normalized
			// to match the matching _count line.
			key := strings.Replace(name, `,le="`+le+`"`, "", 1)
			key = strings.Replace(key, `le="`+le+`"`, "", 1)
			key = strings.Replace(key, "_bucket", "", 1)
			key = strings.TrimSuffix(key, "{}")
			s := buckets[key]
			if s == nil {
				s = &series{lastLe: math.Inf(-1), lastCum: -1}
				buckets[key] = s
			}
			cum, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			if le == "+Inf" {
				s.inf, s.hasInf = cum, true
				if cum < s.lastCum {
					t.Fatalf("+Inf bucket %d below previous cumulative %d in %q", cum, s.lastCum, line)
				}
				continue
			}
			edge, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("le in %q: %v", line, err)
			}
			if edge <= s.lastLe {
				t.Fatalf("le %g not increasing (prev %g) in %q", edge, s.lastLe, line)
			}
			if cum < s.lastCum {
				t.Fatalf("cumulative count %d decreased (prev %d) in %q", cum, s.lastCum, line)
			}
			s.lastLe, s.lastCum = edge, cum
		case strings.Contains(name, "_count"):
			key := strings.Replace(name, "_count", "", 1)
			n, _ := strconv.ParseInt(valStr, 10, 64)
			counts[key] = n
		}
	}
	for key, s := range buckets {
		if !s.hasInf {
			t.Fatalf("series %q has no +Inf bucket", key)
		}
		n, ok := counts[key]
		if !ok {
			t.Fatalf("series %q has buckets but no _count", key)
		}
		if s.inf != n {
			t.Fatalf("series %q: +Inf bucket %d != _count %d", key, s.inf, n)
		}
	}
}

func TestEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "line1\nline2 \\ done", "v").With("a\\b\"c\nd").Add(1)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP esc_total line1\nline2 \\ done`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{v="a\\b\"c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}
