package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets: bucket k counts
// observations in [2^(k-1), 2^k) microseconds (bucket 0 is sub-microsecond),
// with the last bucket open above. 32 buckets span 1 µs to over an hour.
const histBuckets = 32

// Histogram is a lock-free latency histogram with power-of-two microsecond
// buckets, cheap enough to sit on every request path. It started life in
// internal/service; it lives here so the same histogram backs both the
// /statsz JSON snapshots and the Prometheus exposition.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	k := bits.Len64(uint64(us)) // 0µs→0, 1µs→1, [2,4)→2, ...
	if k >= histBuckets {
		k = histBuckets - 1
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	h.buckets[k].Add(1)
}

// HistogramSnapshot is a point-in-time copy of a Histogram, JSON-ready. The
// field set and tags are the /statsz wire format and must not change
// incompatibly.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	MeanN int64 `json:"mean_ns"`
	P50Ns int64 `json:"p50_ns"`
	P90Ns int64 `json:"p90_ns"`
	P99Ns int64 `json:"p99_ns"`
	// BucketsUs[k] counts samples with latency in [2^(k-1), 2^k) µs
	// (k=0: sub-microsecond). Trailing zero buckets are trimmed.
	BucketsUs []int64 `json:"buckets_us,omitempty"`
}

// Snapshot returns a consistent-enough copy for reporting; concurrent
// Observe calls may skew individual buckets by a few samples.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	if s.Count > 0 {
		s.MeanN = h.sumNs.Load() / s.Count
	}
	var b [histBuckets]int64
	total := int64(0)
	last := -1
	for k := range b {
		b[k] = h.buckets[k].Load()
		total += b[k]
		if b[k] > 0 {
			last = k
		}
	}
	if last >= 0 {
		s.BucketsUs = append([]int64(nil), b[:last+1]...)
	}
	s.P50Ns = quantile(b[:], total, 0.50)
	s.P90Ns = quantile(b[:], total, 0.90)
	s.P99Ns = quantile(b[:], total, 0.99)
	return s
}

// quantile returns the upper edge (in ns) of the bucket containing the q-th
// quantile — a conservative estimate good to a factor of two, which is all a
// power-of-two histogram can promise.
func quantile(b []int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	seen := int64(0)
	for k, c := range b {
		seen += c
		if seen >= target {
			return int64(1) << uint(k) * 1000 // upper edge: 2^k µs in ns
		}
	}
	return int64(1) << uint(len(b)) * 1000
}
