package obs

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestTraceNestingAndExport(t *testing.T) {
	tr := NewTrace()
	root := tr.Root("bcc")
	a := root.Child("attempt")
	a.SetLabel("attempt", "0")
	begin := time.Now()
	time.Sleep(time.Millisecond)
	a.ChildInterval("spanning-tree", begin, time.Now())
	a.End()
	root.End()

	e := tr.Export()
	if err := e.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(e.Spans) != 3 {
		t.Fatalf("exported %d spans, want 3", len(e.Spans))
	}
	if e.Spans[0].Name != "bcc" || e.Spans[0].Parent != -1 {
		t.Errorf("first span = %+v, want root bcc", e.Spans[0])
	}
	att := e.SpansNamed("attempt")
	if len(att) != 1 || att[0].Labels["attempt"] != "0" {
		t.Errorf("attempt span = %+v", att)
	}
	ph := e.SpansNamed("spanning-tree")
	if len(ph) != 1 || ph[0].Parent != att[0].ID {
		t.Errorf("phase span = %+v, want child of %d", ph, att[0].ID)
	}
	if ph[0].DurationNs <= 0 {
		t.Errorf("phase duration %d, want > 0", ph[0].DurationNs)
	}
}

func TestTraceEndIdempotent(t *testing.T) {
	tr := NewTrace()
	s := tr.Root("x")
	s.End()
	s.End()
	if n := len(tr.Export().Spans); n != 1 {
		t.Fatalf("double End recorded %d spans, want 1", n)
	}
}

func TestNilSpanIsInert(t *testing.T) {
	var s *Span
	// None of these may panic.
	s.SetLabel("k", "v")
	s.ChildInterval("p", time.Now(), time.Now())
	s.End()
	if c := s.Child("c"); c != nil {
		t.Fatal("nil span's Child is non-nil")
	}
	if s.ID() != -1 {
		t.Fatalf("nil span ID = %d, want -1", s.ID())
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "x")
	if sp != nil {
		t.Fatal("StartSpan without a trace returned a live span")
	}
	if ctx != context.Background() {
		t.Fatal("StartSpan without a trace replaced the context")
	}
}

func TestStartSpanNesting(t *testing.T) {
	tr := NewTrace()
	ctx := ContextWithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	ctx, outer := StartSpan(ctx, "outer")
	_, inner := StartSpan(ctx, "inner")
	inner.End()
	outer.End()
	e := tr.Export()
	if err := e.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	in := e.SpansNamed("inner")
	if len(in) != 1 || in[0].Parent != outer.ID() {
		t.Fatalf("inner span %+v not nested under outer %d", in, outer.ID())
	}
}

func TestValidateCatchesEscapes(t *testing.T) {
	bad := &TraceExport{Spans: []SpanExport{
		{ID: 0, Parent: -1, Name: "root", StartNs: 0, DurationNs: 100},
		{ID: 1, Parent: 0, Name: "child", StartNs: 50, DurationNs: 100}, // escapes root
	}}
	if bad.Validate() == nil {
		t.Error("escaping child not detected")
	}
	orphan := &TraceExport{Spans: []SpanExport{
		{ID: 1, Parent: 7, Name: "child", StartNs: 0, DurationNs: 1},
	}}
	if orphan.Validate() == nil {
		t.Error("missing parent not detected")
	}
	neg := &TraceExport{Spans: []SpanExport{
		{ID: 0, Parent: -1, Name: "root", StartNs: 0, DurationNs: -1},
	}}
	if neg.Validate() == nil {
		t.Error("negative duration not detected")
	}
}

func TestTraceExportJSONShape(t *testing.T) {
	e := &TraceExport{Spans: []SpanExport{
		{ID: 0, Parent: -1, Name: "bcc", StartNs: 1, DurationNs: 2, Labels: map[string]string{"a": "b"}},
	}}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"spans":[{"id":0,"parent":-1,"name":"bcc","start_ns":1,"duration_ns":2,"labels":{"a":"b"}}]}`
	if string(b) != want {
		t.Errorf("JSON = %s\nwant  %s", b, want)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	root := tr.Root("root")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				s := root.Child("work")
				s.SetLabel("j", "x")
				s.End()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	root.End()
	e := tr.Export()
	if err := e.Validate(); err != nil {
		t.Fatalf("Validate after concurrent spans: %v", err)
	}
	if got := len(e.SpansNamed("work")); got != 800 {
		t.Fatalf("exported %d work spans, want 800", got)
	}
}
