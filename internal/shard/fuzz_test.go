package shard

import (
	"bytes"
	"context"
	"testing"

	"bicc"
)

// fuzzSeedSet builds a small real set (triangle + bridge + pendant star) so
// the corpora start from structurally valid payloads.
func fuzzSeedSet() *Set {
	g, err := bicc.NewGraph(6, []bicc.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 2, V: 3}, {U: 3, V: 4}, {U: 3, V: 5},
	})
	if err != nil {
		panic(err)
	}
	res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: bicc.Sequential})
	if err != nil {
		panic(err)
	}
	set, err := BuildSet(context.Background(), "seed-fp", g, res)
	if err != nil {
		panic(err)
	}
	return set
}

// FuzzDecodeIndex drives the routing-index decoder with arbitrary bytes.
// Invariants: never panic, never over-allocate past the input, and every
// accepted payload is an exact re-encode fixed point — so nothing the
// decoder conjures can differ from what a real encoder wrote.
func FuzzDecodeIndex(f *testing.F) {
	set := fuzzSeedSet()
	valid := EncodeIndex(set)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{codecVersion})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeIndex(b)
		if err != nil {
			return
		}
		// Structural postconditions of an accepted index.
		if s.N < 0 || s.NumBlocks < 0 || len(s.offsets) != int(s.N)+1 {
			t.Fatalf("accepted index with N=%d blocks=%d offsets=%d", s.N, s.NumBlocks, len(s.offsets))
		}
		for v := int32(0); v < s.N; v++ {
			for i, bl := range s.BlocksOfVertex(v) {
				if bl < 0 || int(bl) >= s.NumBlocks {
					t.Fatalf("vertex %d block %d out of range", v, bl)
				}
				_ = i
			}
		}
		if re := EncodeIndex(s); !bytes.Equal(re, b) {
			t.Fatalf("re-encode differs:\n in  %x\n out %x", b, re)
		}
	})
}

// FuzzDecodeShard drives the per-block payload decoder the same way: no
// panics, structural postconditions hold, accepted payloads re-encode
// byte-identically (with the hash the decoder reported).
func FuzzDecodeShard(f *testing.F) {
	set := fuzzSeedSet()
	for _, sh := range set.Shards {
		f.Add(EncodeShard(sh, set.BuildHash))
	}
	valid := EncodeShard(set.Shards[0], set.BuildHash)
	f.Add(valid[:len(valid)-2]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{codecVersion, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		sh, hash, err := DecodeShard(b)
		if err != nil {
			return
		}
		if sh.Sub == nil || len(sh.VertexMap) != int(sh.Sub.N) || len(sh.EdgeMap) != len(sh.Sub.Edges) {
			t.Fatalf("accepted shard with inconsistent maps: vm=%d n=%d em=%d m=%d",
				len(sh.VertexMap), sh.Sub.N, len(sh.EdgeMap), len(sh.Sub.Edges))
		}
		for _, e := range sh.Sub.Edges {
			if e.U < 0 || e.V < 0 || e.U >= sh.Sub.N || e.V >= sh.Sub.N {
				t.Fatalf("accepted shard with edge (%d,%d) outside [0,%d)", e.U, e.V, sh.Sub.N)
			}
		}
		if re := EncodeShard(sh, hash); !bytes.Equal(re, b) {
			t.Fatalf("re-encode differs:\n in  %x\n out %x", b, re)
		}
	})
}
