package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"bicc"
	"bicc/internal/gen"
	"bicc/internal/graph"
)

// The differential harness: for every graph family and every algorithm, the
// sharded form of a decomposition must answer every query kind byte-for-byte
// identically to the monolithic Result/BlockCutTree path. "Byte-for-byte"
// is literal — answers are compared as marshaled JSON, so nil-vs-empty slice
// differences (which would change the HTTP responses) fail the test.

// diffFamily is one graph family under differential test.
type diffFamily struct {
	name string
	el   *graph.EdgeList
}

// diffFamilies returns the three required families: random connected graphs
// (many mixed-size blocks), the torus (biconnected — exactly one block),
// and the caterpillar star-chain (every edge its own block, every spine
// vertex a cut).
func diffFamilies() []diffFamily {
	return []diffFamily{
		{"random", gen.RandomConnected(240, 700, 42)},
		{"torus", gen.Torus(12, 14)},
		{"star-chain", gen.Caterpillar(40, 5)},
	}
}

// diffAlgorithms is every engine the service can run.
var diffAlgorithms = []bicc.Algorithm{bicc.Sequential, bicc.TVSMP, bicc.TVOpt, bicc.TVFilter, bicc.FastBCC}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// buildBoth computes the decomposition and its sharded form.
func buildBoth(t *testing.T, fam diffFamily, algo bicc.Algorithm) (*bicc.Graph, *bicc.Result, *Set) {
	t.Helper()
	g, err := bicc.NewGraph(int(fam.el.N), fam.el.Edges)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: algo, Procs: 2})
	if err != nil {
		t.Fatalf("BiconnectedComponents(%v): %v", algo, err)
	}
	set, err := BuildSet(context.Background(), "fp-"+fam.name, g, res)
	if err != nil {
		t.Fatalf("BuildSet: %v", err)
	}
	return g, res, set
}

// assertShardEqualsMonolith runs the five query kinds against both paths.
// shards indexes the per-block state (a freshly built Set's own Shards, or
// codec round-tripped copies).
func assertShardEqualsMonolith(t *testing.T, g *bicc.Graph, res *bicc.Result, set *Set, shards []*Shard) {
	t.Helper()
	tree := res.BlockCutTree()
	n := int32(g.NumVertices())
	if set.N != n || set.NumBlocks != res.NumComponents {
		t.Fatalf("set dims N=%d blocks=%d, want %d/%d", set.N, set.NumBlocks, n, res.NumComponents)
	}

	// Query kind 1: blocks-of-vertex, every vertex.
	for v := int32(0); v < n; v++ {
		got, want := mustJSON(t, set.BlocksOfVertex(v)), mustJSON(t, tree.BlocksOfVertex(v))
		if got != want {
			t.Fatalf("BlocksOfVertex(%d) = %s, monolith %s", v, got, want)
		}
	}

	// Query kind 4 (vertex half): articulation membership, every vertex,
	// plus the full cut-vertex enumeration.
	for v := int32(0); v < n; v++ {
		if set.IsCut(v) != (len(tree.BlocksOfVertex(v)) >= 2) {
			t.Fatalf("IsCut(%d) = %v disagrees with monolith", v, set.IsCut(v))
		}
	}
	if got, want := mustJSON(t, set.CutVertices()), mustJSON(t, tree.CutVertices()); got != want {
		t.Fatalf("CutVertices = %s, monolith %s", got, want)
	}

	for b := int32(0); b < int32(set.NumBlocks); b++ {
		sh := shards[b]
		if sh.Block != b {
			t.Fatalf("shard %d carries block id %d", b, sh.Block)
		}

		// Query kind 2: vertices-of-block.
		if got, want := mustJSON(t, sh.Vertices), mustJSON(t, tree.VerticesOfBlock(b)); got != want {
			t.Fatalf("block %d vertices = %s, monolith %s", b, got, want)
		}

		// Query kind 3: cuts-of-block.
		if got, want := mustJSON(t, sh.Cuts), mustJSON(t, tree.CutsOfBlock(b)); got != want {
			t.Fatalf("block %d cuts = %s, monolith %s", b, got, want)
		}

		// Query kind 5: component-subgraph round trip. The shard's remapped
		// subgraph must match ComponentSubgraph exactly — N, edge order,
		// vertex map, edge map — and mapping every compact edge back through
		// VertexMap/EdgeMap must land on the original graph's edge.
		sub, vm, em := res.ComponentSubgraph(b)
		type subView struct {
			N     int32        `json:"n"`
			Edges []graph.Edge `json:"edges"`
			VM    []int32      `json:"vm"`
			EM    []int32      `json:"em"`
		}
		got := mustJSON(t, subView{N: sh.Sub.N, Edges: sh.Sub.Edges, VM: sh.VertexMap, EM: sh.EdgeMap})
		want := mustJSON(t, subView{N: int32(sub.NumVertices()), Edges: sub.Edges(), VM: vm, EM: em})
		if got != want {
			t.Fatalf("block %d subgraph:\n shard    %s\n monolith %s", b, got, want)
		}
		for j, e := range sh.Sub.Edges {
			orig := g.Edges()[sh.EdgeMap[j]]
			u, v := sh.VertexMap[e.U], sh.VertexMap[e.V]
			if !(u == orig.U && v == orig.V) && !(u == orig.V && v == orig.U) {
				t.Fatalf("block %d edge %d maps to (%d,%d), original is (%d,%d)",
					b, j, u, v, orig.U, orig.V)
			}
		}
	}
}

// TestDifferentialShardEqualsMonolith is the core harness: 3 families × 4
// algorithms × 5 query kinds, byte-equal between paths.
func TestDifferentialShardEqualsMonolith(t *testing.T) {
	for _, fam := range diffFamilies() {
		for _, algo := range diffAlgorithms {
			t.Run(fmt.Sprintf("%s/%s", fam.name, algo), func(t *testing.T) {
				g, res, set := buildBoth(t, fam, algo)
				assertShardEqualsMonolith(t, g, res, set, set.Shards)
			})
		}
	}
}

// TestDifferentialSurvivesCodecRoundTrip re-runs the full harness against
// shard state that has been through the spill codecs — what a query served
// after demotion, restart, and promotion actually reads.
func TestDifferentialSurvivesCodecRoundTrip(t *testing.T) {
	for _, fam := range diffFamilies() {
		t.Run(fam.name, func(t *testing.T) {
			g, res, set := buildBoth(t, fam, bicc.Sequential)

			decSet, err := DecodeIndex(EncodeIndex(set))
			if err != nil {
				t.Fatalf("DecodeIndex: %v", err)
			}
			if decSet.BuildHash != set.BuildHash {
				t.Fatalf("decoded BuildHash %x, want %x", decSet.BuildHash, set.BuildHash)
			}
			shards := make([]*Shard, set.NumBlocks)
			for b, sh := range set.Shards {
				dec, hash, err := DecodeShard(EncodeShard(sh, set.BuildHash))
				if err != nil {
					t.Fatalf("DecodeShard(%d): %v", b, err)
				}
				if hash != set.BuildHash {
					t.Fatalf("shard %d hash %x, want %x", b, hash, set.BuildHash)
				}
				shards[b] = dec
			}
			assertShardEqualsMonolith(t, g, res, decSet, shards)
		})
	}
}
