package shard

import (
	"encoding/binary"
	"errors"
	"fmt"

	"bicc/internal/graph"
)

// Binary codecs for spilled shard state. Two payloads exist: the routing
// index (vertex→block CSR plus set identity) and one shard's block state.
// Both live inside the durable spill tier's CRC-framed files, but — like
// every decoder in internal/durable — the decoders here trust nothing: no
// length field is believed beyond the bytes actually present, every
// structural invariant is re-checked, and arbitrary input can never panic
// or over-allocate. Successful decodes are exact fixed points: re-encoding
// reproduces the input byte for byte (the fuzz targets assert this).

const codecVersion = 1

// ErrCodec reports a structurally invalid shard payload.
var ErrCodec = errors.New("shard: corrupt payload")

// --- primitive cursor ------------------------------------------------------

type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) u8() (byte, bool) {
	if r.off+1 > len(r.b) {
		return 0, false
	}
	v := r.b[r.off]
	r.off++
	return v, true
}

func (r *byteReader) u32() (uint32, bool) {
	if r.off+4 > len(r.b) {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, true
}

func (r *byteReader) u64() (uint64, bool) {
	if r.off+8 > len(r.b) {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, true
}

func (r *byteReader) bytes(n int) ([]byte, bool) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, false
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, true
}

// i32s reads n little-endian int32 values. The remaining-bytes check comes
// before the allocation, so a corrupt count cannot drive a huge make.
// Zero-length arrays decode to nil, preserving the nil-ness the builders
// produce (JSON equality between paths depends on it).
func (r *byteReader) i32s(n uint32) ([]int32, bool) {
	if uint64(n)*4 > uint64(len(r.b)-r.off) {
		return nil, false
	}
	if n == 0 {
		return nil, true
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(r.b[r.off:]))
		r.off += 4
	}
	return out, true
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendI32s(b []byte, vs []int32) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU32(b, uint32(v))
	}
	return b
}

// --- routing index ---------------------------------------------------------

// EncodeIndex renders the routing index of a Set (shards excluded):
//
//	[ver:1][fpLen:u8][fp][algoLen:u8][algo][n:u32][numBlocks:u32]
//	[offsets: (n+1)×u32][blocks: offsets[n]×u32]
func EncodeIndex(s *Set) []byte {
	fp, algo := s.FP, s.Algorithm
	if len(fp) > 255 {
		fp = fp[:255]
	}
	if len(algo) > 255 {
		algo = algo[:255]
	}
	buf := make([]byte, 0, 11+len(fp)+len(algo)+4*(len(s.offsets)+len(s.blocks)))
	buf = append(buf, codecVersion)
	buf = append(buf, byte(len(fp)))
	buf = append(buf, fp...)
	buf = append(buf, byte(len(algo)))
	buf = append(buf, algo...)
	buf = appendU32(buf, uint32(s.N))
	buf = appendU32(buf, uint32(s.NumBlocks))
	for _, o := range s.offsets {
		buf = appendU32(buf, uint32(o))
	}
	for _, b := range s.blocks {
		buf = appendU32(buf, uint32(b))
	}
	return buf
}

// DecodeIndex parses an EncodeIndex payload back into a Set with no shards
// resident. Beyond framing, it re-checks every structural invariant of a
// real routing index: monotone offsets, block ids in range, and each
// vertex's block list strictly ascending.
func DecodeIndex(b []byte) (*Set, error) {
	r := byteReader{b: b}
	ver, ok := r.u8()
	if !ok || ver != codecVersion {
		return nil, fmt.Errorf("%w: index version", ErrCodec)
	}
	fpLen, ok := r.u8()
	if !ok {
		return nil, fmt.Errorf("%w: index fp length", ErrCodec)
	}
	fp, ok := r.bytes(int(fpLen))
	if !ok {
		return nil, fmt.Errorf("%w: index fp", ErrCodec)
	}
	algoLen, ok := r.u8()
	if !ok {
		return nil, fmt.Errorf("%w: index algorithm length", ErrCodec)
	}
	algo, ok := r.bytes(int(algoLen))
	if !ok {
		return nil, fmt.Errorf("%w: index algorithm", ErrCodec)
	}
	n, ok := r.u32()
	if !ok || n >= 1<<31 {
		return nil, fmt.Errorf("%w: index vertex count", ErrCodec)
	}
	nb, ok := r.u32()
	if !ok || nb >= 1<<31 {
		return nil, fmt.Errorf("%w: index block count", ErrCodec)
	}
	offsets, ok := r.i32s(n + 1)
	if !ok {
		return nil, fmt.Errorf("%w: index offsets", ErrCodec)
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("%w: index offsets origin", ErrCodec)
	}
	for v := 0; v < int(n); v++ {
		if offsets[v+1] < offsets[v] {
			return nil, fmt.Errorf("%w: index offsets not monotone", ErrCodec)
		}
	}
	blocks, ok := r.i32s(uint32(offsets[n]))
	if !ok {
		return nil, fmt.Errorf("%w: index blocks", ErrCodec)
	}
	for v := 0; v < int(n); v++ {
		for i := offsets[v]; i < offsets[v+1]; i++ {
			if blocks[i] < 0 || int(blocks[i]) >= int(nb) {
				return nil, fmt.Errorf("%w: index block id out of range", ErrCodec)
			}
			if i > offsets[v] && blocks[i] <= blocks[i-1] {
				return nil, fmt.Errorf("%w: index block list not ascending", ErrCodec)
			}
		}
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("%w: index trailing bytes", ErrCodec)
	}
	s := &Set{
		FP:        string(fp),
		Algorithm: string(algo),
		N:         int32(n),
		NumBlocks: int(nb),
		offsets:   offsets,
		blocks:    blocks,
	}
	s.BuildHash = hashIndex(s.FP, s.N, s.NumBlocks, offsets, blocks)
	return s, nil
}

// --- shard -----------------------------------------------------------------

// EncodeShard renders one block's state, stamped with the owning set's
// BuildHash so promotion can reject shards from a stale build:
//
//	[ver:1][block:u32][hash:u64]
//	[nVerts:u32][verts][nCuts:u32][cuts]
//	[subN:u32][m:u32][edges: 2m×u32]
//	[vmLen:u32][vm][emLen:u32][em]
func EncodeShard(sh *Shard, hash uint64) []byte {
	size := 13 + 4*(4+len(sh.Vertices)+len(sh.Cuts)+len(sh.VertexMap)+len(sh.EdgeMap)) +
		8*len(sh.Sub.Edges) + 4
	buf := make([]byte, 0, size)
	buf = append(buf, codecVersion)
	buf = appendU32(buf, uint32(sh.Block))
	buf = binary.LittleEndian.AppendUint64(buf, hash)
	buf = appendI32s(buf, sh.Vertices)
	buf = appendI32s(buf, sh.Cuts)
	buf = appendU32(buf, uint32(sh.Sub.N))
	buf = appendU32(buf, uint32(len(sh.Sub.Edges)))
	for _, e := range sh.Sub.Edges {
		buf = appendU32(buf, uint32(e.U))
		buf = appendU32(buf, uint32(e.V))
	}
	buf = appendI32s(buf, sh.VertexMap)
	buf = appendI32s(buf, sh.EdgeMap)
	return buf
}

// DecodeShard parses an EncodeShard payload, returning the shard and the
// build hash it was stamped with. Structural invariants of a real shard are
// re-checked: ascending vertex and cut lists, compact edge endpoints in
// range, and vertex/edge maps sized exactly to the subgraph.
func DecodeShard(b []byte) (*Shard, uint64, error) {
	r := byteReader{b: b}
	ver, ok := r.u8()
	if !ok || ver != codecVersion {
		return nil, 0, fmt.Errorf("%w: shard version", ErrCodec)
	}
	block, ok := r.u32()
	if !ok || block >= 1<<31 {
		return nil, 0, fmt.Errorf("%w: shard block id", ErrCodec)
	}
	hash, ok := r.u64()
	if !ok {
		return nil, 0, fmt.Errorf("%w: shard hash", ErrCodec)
	}
	readList := func(what string, ascending bool) ([]int32, error) {
		n, ok := r.u32()
		if !ok {
			return nil, fmt.Errorf("%w: shard %s length", ErrCodec, what)
		}
		vs, ok := r.i32s(n)
		if !ok {
			return nil, fmt.Errorf("%w: shard %s", ErrCodec, what)
		}
		for i, v := range vs {
			if v < 0 || (ascending && i > 0 && v <= vs[i-1]) {
				return nil, fmt.Errorf("%w: shard %s not ascending", ErrCodec, what)
			}
		}
		return vs, nil
	}
	verts, err := readList("vertices", true)
	if err != nil {
		return nil, 0, err
	}
	cuts, err := readList("cuts", true)
	if err != nil {
		return nil, 0, err
	}
	subN, ok := r.u32()
	if !ok || subN >= 1<<31 {
		return nil, 0, fmt.Errorf("%w: shard subgraph size", ErrCodec)
	}
	m, ok := r.u32()
	if !ok || m >= 1<<30 {
		return nil, 0, fmt.Errorf("%w: shard edge count", ErrCodec)
	}
	raw, ok := r.i32s(2 * m)
	if !ok {
		return nil, 0, fmt.Errorf("%w: shard edges", ErrCodec)
	}
	sub := &graph.EdgeList{N: int32(subN)}
	if m > 0 {
		sub.Edges = make([]graph.Edge, m)
	}
	for i := uint32(0); i < m; i++ {
		u, v := raw[2*i], raw[2*i+1]
		if u < 0 || v < 0 || u >= int32(subN) || v >= int32(subN) {
			return nil, 0, fmt.Errorf("%w: shard edge endpoint out of range", ErrCodec)
		}
		sub.Edges[i] = graph.Edge{U: u, V: v}
	}
	vm, err := readList("vertex map", false)
	if err != nil {
		return nil, 0, err
	}
	em, err := readList("edge map", false)
	if err != nil {
		return nil, 0, err
	}
	if uint32(len(vm)) != subN || uint32(len(em)) != m {
		return nil, 0, fmt.Errorf("%w: shard map sizes", ErrCodec)
	}
	if r.off != len(b) {
		return nil, 0, fmt.Errorf("%w: shard trailing bytes", ErrCodec)
	}
	return &Shard{
		Block:     int32(block),
		Vertices:  verts,
		Cuts:      cuts,
		Sub:       sub,
		VertexMap: vm,
		EdgeMap:   em,
	}, hash, nil
}
