package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"bicc"
	"bicc/internal/gen"
	"bicc/internal/par"
)

// fakeSpill is an in-memory SpillTier with hooks for corruption tests.
type fakeSpill struct {
	mu      sync.Mutex
	idx     map[string][]byte
	shards  map[string][]byte
	failPut bool
}

func newFakeSpill() *fakeSpill {
	return &fakeSpill{idx: map[string][]byte{}, shards: map[string][]byte{}}
}

func skey(fp string, block int32) string { return fmt.Sprintf("%s/%d", fp, block) }

func (f *fakeSpill) PutIndex(fp string, p []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failPut {
		return errors.New("fake: put refused")
	}
	f.idx[fp] = append([]byte(nil), p...)
	return nil
}

func (f *fakeSpill) GetIndex(fp string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.idx[fp]
	return p, ok
}

func (f *fakeSpill) RemoveIndex(fp string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.idx, fp)
}

func (f *fakeSpill) PutShard(fp string, block int32, p []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failPut {
		return errors.New("fake: put refused")
	}
	f.shards[skey(fp, block)] = append([]byte(nil), p...)
	return nil
}

func (f *fakeSpill) GetShard(fp string, block int32) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.shards[skey(fp, block)]
	return p, ok
}

func (f *fakeSpill) RemoveShard(fp string, block int32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.shards, skey(fp, block))
}

func (f *fakeSpill) shardCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.shards)
}

// corruptShard flips a byte in a stored shard payload.
func (f *fakeSpill) corruptShard(fp string, block int32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.shards[skey(fp, block)]
	if len(p) > 0 {
		p[len(p)/2] ^= 0xff
	}
}

// buildFor returns a build callback producing fp's set from a caterpillar
// graph — one block per edge, plenty of shards to demote.
func buildFor(t *testing.T, fp string) func(context.Context) (*Set, error) {
	t.Helper()
	el := gen.Caterpillar(12, 3)
	g, err := bicc.NewGraph(int(el.N), el.Edges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: bicc.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	return func(ctx context.Context) (*Set, error) {
		return BuildSet(ctx, fp, g, res)
	}
}

func TestManagerSingleFlight(t *testing.T) {
	m := NewManager(0)
	var calls atomic.Int64
	gate := make(chan struct{})
	inner := buildFor(t, "g1")
	build := func(ctx context.Context) (*Set, error) {
		calls.Add(1)
		<-gate
		return inner(ctx)
	}

	const workers = 16
	sets := make([]*Set, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := m.Do(context.Background(), "g1", build)
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			sets[i] = s
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1", got)
	}
	for i := 1; i < workers; i++ {
		if sets[i] != sets[0] {
			t.Fatal("coalesced callers got different sets")
		}
	}
	if m.Builds() != 1 || m.Sets() != 1 {
		t.Fatalf("builds=%d sets=%d", m.Builds(), m.Sets())
	}
}

func TestManagerErrorsNotCached(t *testing.T) {
	m := NewManager(0)
	var calls atomic.Int64
	boom := errors.New("transient")
	inner := buildFor(t, "g1")
	build := func(ctx context.Context) (*Set, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return inner(ctx)
	}
	if _, err := m.Do(context.Background(), "g1", build); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v, want %v", err, boom)
	}
	if m.Sets() != 0 || m.ResidentShards() != 0 {
		t.Fatalf("failed build left state: sets=%d shards=%d", m.Sets(), m.ResidentShards())
	}
	if _, err := m.Do(context.Background(), "g1", build); err != nil {
		t.Fatalf("second Do: %v", err)
	}
	if m.BuildFailures() != 1 || m.Builds() != 1 {
		t.Fatalf("failures=%d builds=%d", m.BuildFailures(), m.Builds())
	}
}

func TestManagerPanicContainedAndTyped(t *testing.T) {
	m := NewManager(0)
	_, err := m.Do(context.Background(), "g1", func(context.Context) (*Set, error) {
		panic("shard build exploded")
	})
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *par.PanicError", err, err)
	}
	if m.Sets() != 0 {
		t.Fatal("panicked build left a set behind")
	}
	// The flight must be gone: a retry rebuilds rather than hanging.
	if _, err := m.Do(context.Background(), "g1", buildFor(t, "g1")); err != nil {
		t.Fatalf("Do after panic: %v", err)
	}
}

func TestManagerCancelMidBuildLeavesNoPartialState(t *testing.T) {
	m := NewManager(0)
	sp := newFakeSpill()
	m.SetSpill(sp)
	ctx, cancel := context.WithCancel(context.Background())
	inner := buildFor(t, "g1")
	build := func(bctx context.Context) (*Set, error) {
		cancel() // cancel while the build is in flight
		return inner(bctx)
	}
	if _, err := m.Do(ctx, "g1", build); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do err = %v, want context.Canceled", err)
	}
	if m.Sets() != 0 || m.ResidentShards() != 0 || m.Bytes() != 0 {
		t.Fatalf("canceled build left state: sets=%d shards=%d bytes=%d",
			m.Sets(), m.ResidentShards(), m.Bytes())
	}
	if len(sp.idx) != 0 || sp.shardCount() != 0 {
		t.Fatalf("canceled build wrote to spill: idx=%d shards=%d", len(sp.idx), sp.shardCount())
	}
}

func TestManagerDemotesAndPromotes(t *testing.T) {
	sp := newFakeSpill()
	m := NewManager(2_000) // far below a full caterpillar set
	m.SetSpill(sp)
	set, err := m.Do(context.Background(), "g1", buildFor(t, "g1"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Demotions() == 0 {
		t.Fatal("no demotions under budget pressure")
	}
	if m.Bytes() > 2_000+set.IndexBytes() {
		t.Fatalf("resident bytes %d way over budget", m.Bytes())
	}
	// Every block must still be servable, demoted or not.
	for b := int32(0); b < int32(set.NumBlocks); b++ {
		sh, ok := m.Shard("g1", b)
		if !ok || sh.Block != b {
			t.Fatalf("Shard(%d) = %v, %v", b, sh, ok)
		}
	}
	if m.Promotions() == 0 {
		t.Fatal("no promotions recorded")
	}
	if m.Invalidations() != 0 {
		t.Fatalf("healthy spill caused %d invalidations", m.Invalidations())
	}
}

func TestManagerRejectsCorruptSpilledShard(t *testing.T) {
	sp := newFakeSpill()
	m := NewManager(2_000)
	m.SetSpill(sp)
	set, err := m.Do(context.Background(), "g1", buildFor(t, "g1"))
	if err != nil {
		t.Fatal(err)
	}
	// Find a demoted block and corrupt its payload.
	var victim int32 = -1
	for b := int32(0); b < int32(set.NumBlocks); b++ {
		if _, ok := sp.GetShard("g1", b); ok {
			// Promote-resident blocks are fine; pick one not in memory by
			// trusting the budget to have demoted most of them.
			victim = b
		}
	}
	if victim < 0 {
		t.Skip("budget demoted nothing")
	}
	// Drop it from memory if resident by corrupting all spilled copies; the
	// first Shard call that must read disk sees garbage.
	for b := int32(0); b < int32(set.NumBlocks); b++ {
		sp.corruptShard("g1", b)
	}
	sawInvalidation := false
	for b := int32(0); b < int32(set.NumBlocks); b++ {
		if _, ok := m.Shard("g1", b); !ok {
			sawInvalidation = true
			break
		}
	}
	if !sawInvalidation {
		t.Fatal("corrupt spilled shards all served")
	}
	if m.PromoteFailures() == 0 || m.Invalidations() == 0 {
		t.Fatalf("promoteFails=%d invalidations=%d, want both > 0",
			m.PromoteFailures(), m.Invalidations())
	}
	if m.Sets() != 0 {
		t.Fatal("invalidated set still resident")
	}
	// Recovery: the next Do rebuilds from scratch (the spilled index was
	// dropped with the set).
	set2, err := m.Do(context.Background(), "g1", buildFor(t, "g1"))
	if err != nil {
		t.Fatal(err)
	}
	if set2.NumBlocks != set.NumBlocks {
		t.Fatalf("rebuilt set has %d blocks, want %d", set2.NumBlocks, set.NumBlocks)
	}
}

func TestManagerRecoversFromSpilledIndex(t *testing.T) {
	sp := newFakeSpill()
	m := NewManager(0)
	m.SetSpill(sp)
	if _, err := m.Do(context.Background(), "g1", buildFor(t, "g1")); err != nil {
		t.Fatal(err)
	}

	// A "restarted" manager sharing the spill tier must serve the set from
	// the spilled index without running the build.
	m2 := NewManager(0)
	m2.SetSpill(sp)
	set, err := m2.Do(context.Background(), "g1", func(context.Context) (*Set, error) {
		t.Fatal("build ran despite a recoverable spilled index")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Recovered() != 1 {
		t.Fatalf("recovered=%d, want 1", m2.Recovered())
	}
	for b := int32(0); b < int32(set.NumBlocks); b++ {
		if _, ok := m2.Shard("g1", b); !ok {
			t.Fatalf("recovered set could not serve block %d", b)
		}
	}
}

func TestManagerStaleShardRejectedByHash(t *testing.T) {
	sp := newFakeSpill()
	m := NewManager(0)
	m.SetSpill(sp)
	set, err := m.Do(context.Background(), "g1", buildFor(t, "g1"))
	if err != nil {
		t.Fatal(err)
	}
	// Forge block 0's spilled payload with a different build hash — a
	// straggler from a stale build. A fresh manager recovering from the
	// index must reject it at promotion, not serve it.
	sh, ok := m.Shard("g1", 0)
	if !ok {
		t.Fatal("block 0 missing")
	}
	if err := sp.PutShard("g1", 0, EncodeShard(sh, set.BuildHash^0xdeadbeef)); err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(0)
	m2.SetSpill(sp)
	if _, err := m2.Do(context.Background(), "g1", buildFor(t, "g1")); err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.Shard("g1", 0); ok {
		t.Fatal("stale-hash shard served")
	}
	if m2.PromoteFailures() == 0 {
		t.Fatal("stale shard not counted as promote failure")
	}
}

func TestManagerNoSpillDropsWholeSets(t *testing.T) {
	m := NewManager(6_000)
	if _, err := m.Do(context.Background(), "g1", buildFor(t, "g1")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Do(context.Background(), "g2", buildFor(t, "g2")); err != nil {
		t.Fatal(err)
	}
	if m.Sets() >= 2 {
		t.Fatalf("budget kept %d sets resident, want eviction", m.Sets())
	}
	if m.Invalidations() == 0 {
		t.Fatal("diskless eviction not counted")
	}
}

func TestManagerRemovePrefix(t *testing.T) {
	sp := newFakeSpill()
	m := NewManager(0)
	m.SetSpill(sp)
	for _, key := range []string{"aaaa-auto-0", "aaaa-sequential-2", "bbbb-auto-0"} {
		if _, err := m.Do(context.Background(), key, buildFor(t, key)); err != nil {
			t.Fatal(err)
		}
	}
	m.RemovePrefix("aaaa-")
	if m.Sets() != 1 {
		t.Fatalf("sets=%d after RemovePrefix, want 1", m.Sets())
	}
	if _, ok := sp.GetIndex("aaaa-auto-0"); ok {
		t.Fatal("removed set's spilled index survived")
	}
	if _, ok := sp.GetIndex("bbbb-auto-0"); !ok {
		t.Fatal("unrelated set's spilled index removed")
	}
	if _, ok := m.Shard("bbbb-auto-0", 0); !ok {
		t.Fatal("unrelated set unservable after RemovePrefix")
	}
}

// TestManagerConcurrentChaos exercises Do/Shard/Remove interleavings under
// budget pressure and a live spill tier; run with -race this is the
// manager's data-race net.
func TestManagerConcurrentChaos(t *testing.T) {
	sp := newFakeSpill()
	m := NewManager(3_000)
	m.SetSpill(sp)
	keys := []string{"k0", "k1", "k2"}
	builds := map[string]func(context.Context) (*Set, error){}
	for _, k := range keys {
		builds[k] = buildFor(t, k)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := keys[(w+i)%len(keys)]
				switch {
				case i%17 == 13:
					m.Remove(k)
				default:
					set, err := m.Do(context.Background(), k, builds[k])
					if err != nil {
						t.Errorf("Do(%s): %v", k, err)
						return
					}
					b := int32((w * i) % set.NumBlocks)
					if sh, ok := m.Shard(k, b); ok && sh.Block != b {
						t.Errorf("Shard(%s,%d) returned block %d", k, b, sh.Block)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
