package shard

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"bicc"
)

// Property-based block-cut invariants over noisy random graphs. Inputs are
// raw edge multisets with self loops and duplicates, normalized the way the
// service normalizes dirty uploads; the invariants must hold for whatever
// decomposition the engine produced.

// noisyGraph builds a random graph with deliberate self loops and parallel
// edges, normalized away by NewGraphNormalized.
func noisyGraph(seed int64, nn, mm uint8) (*bicc.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	n := int(nn%48) + 2
	m := int(mm) % (3 * n)
	edges := make([]bicc.Edge, 0, m+2)
	for i := 0; i < m; i++ {
		edges = append(edges, bicc.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
	}
	// Guarantee at least one self loop and one duplicate survive into the
	// raw input so normalization is always exercised.
	edges = append(edges, bicc.Edge{U: 0, V: 0})
	if len(edges) > 1 {
		edges = append(edges, edges[0])
	}
	g, _, _, err := bicc.NewGraphNormalized(n, edges)
	return g, err
}

// checkInvariants asserts the block-cut structure invariants on a built set.
func checkInvariants(t *testing.T, g *bicc.Graph, res *bicc.Result, set *Set) bool {
	t.Helper()
	n := int32(g.NumVertices())
	tree := res.BlockCutTree()

	// Invariant 1: every edge belongs to exactly one block — the shards'
	// edge maps partition [0, m).
	edgeSeen := make([]int, g.NumEdges())
	for _, sh := range set.Shards {
		for _, i := range sh.EdgeMap {
			if i < 0 || int(i) >= len(edgeSeen) {
				t.Logf("edge index %d out of range", i)
				return false
			}
			edgeSeen[i]++
		}
	}
	for i, c := range edgeSeen {
		if c != 1 {
			t.Logf("edge %d appears in %d blocks, want exactly 1", i, c)
			return false
		}
	}

	// Invariant 2: a block's cut vertices are a subset of its vertices.
	for _, sh := range set.Shards {
		members := map[int32]bool{}
		for _, v := range sh.Vertices {
			members[v] = true
		}
		for _, c := range sh.Cuts {
			if !members[c] {
				t.Logf("block %d cut %d not among its vertices", sh.Block, c)
				return false
			}
		}
		// Membership is two-sided: v is in the block iff the routing index
		// sends v to the block.
		for _, v := range sh.Vertices {
			found := false
			for _, b := range set.BlocksOfVertex(v) {
				if b == sh.Block {
					found = true
				}
			}
			if !found {
				t.Logf("vertex %d in block %d but index disagrees", v, sh.Block)
				return false
			}
		}
	}

	// Invariant 3: a vertex is a cut vertex exactly when it lies in two or
	// more blocks, and the enumeration agrees with the monolith.
	cutSet := map[int32]bool{}
	for _, c := range tree.CutVertices() {
		cutSet[c] = true
	}
	for v := int32(0); v < n; v++ {
		inTwo := len(set.BlocksOfVertex(v)) >= 2
		if set.IsCut(v) != inTwo || cutSet[v] != inTwo {
			t.Logf("vertex %d: IsCut=%v, |blocks|>=2 is %v, monolith cut=%v",
				v, set.IsCut(v), inTwo, cutSet[v])
			return false
		}
	}

	// Invariant 4: leaf blocks have at most one cut vertex, and LeafBlocks
	// is exactly the set of blocks with <= 1 cut.
	leaf := map[int32]bool{}
	for _, b := range tree.LeafBlocks() {
		leaf[b] = true
	}
	for _, sh := range set.Shards {
		if leaf[sh.Block] != (len(sh.Cuts) <= 1) {
			t.Logf("block %d: leaf=%v but has %d cuts", sh.Block, leaf[sh.Block], len(sh.Cuts))
			return false
		}
	}
	return true
}

// TestQuickBlockCutInvariants drives the invariants over quick-generated
// noisy inputs under the Auto engine.
func TestQuickBlockCutInvariants(t *testing.T) {
	f := func(seed int64, nn, mm uint8) bool {
		g, err := noisyGraph(seed, nn, mm)
		if err != nil {
			return false
		}
		res, err := bicc.BiconnectedComponents(g, &bicc.Options{Procs: 2})
		if err != nil {
			return false
		}
		set, err := BuildSet(context.Background(), "quick", g, res)
		if err != nil {
			return false
		}
		return checkInvariants(t, g, res, set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickInvariantsAllAlgorithms spot-checks the same invariants under
// every engine on a smaller sample — block numbering differs between
// engines, the invariants must not.
func TestQuickInvariantsAllAlgorithms(t *testing.T) {
	for _, algo := range diffAlgorithms {
		algo := algo
		f := func(seed int64, nn, mm uint8) bool {
			g, err := noisyGraph(seed, nn, mm)
			if err != nil {
				return false
			}
			res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: algo, Procs: 2})
			if err != nil {
				return false
			}
			set, err := BuildSet(context.Background(), "quick", g, res)
			if err != nil {
				return false
			}
			return checkInvariants(t, g, res, set)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("%v: %v", algo, err)
		}
	}
}
