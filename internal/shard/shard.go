// Package shard partitions a completed biconnected-components decomposition
// into per-block shards, so downstream queries (articulation membership,
// per-block vertex sets, block subgraphs) route to one block's state instead
// of re-serving the monolithic Result.
//
// A Set is the sharded form of one decomposition: a compact vertex→block
// routing index (CSR over the block-cut incidence) plus one Shard per block
// holding the block's vertex set, its cut vertices, and the remapped
// subgraph in exactly the shape Result.ComponentSubgraph produces. Shards
// are immutable once built; the Manager owns residency (byte-accounted LRU
// demotion to a spill tier, promotion with integrity checks, single-flight
// builds).
//
// Construction is instrumented with the shard.build fault site and honors
// context cancellation between blocks: a canceled or faulted build returns
// an error and installs nothing, so the registry can never hold partial
// shard state.
package shard

import (
	"context"
	"errors"
	"fmt"

	"bicc"
	"bicc/internal/faults"
	"bicc/internal/graph"
	"bicc/internal/par"
)

// SiteBuild fires once per block while a decomposition is being sharded;
// cancelable, so KindCancel aborts the build mid-way.
var SiteBuild = faults.RegisterSite("shard.build", true)

// Shard is one block's standalone query state. All fields are immutable
// after BuildSet returns.
type Shard struct {
	// Block is the block id in the source decomposition's numbering.
	Block int32
	// Vertices are the block's vertices, ascending.
	Vertices []int32
	// Cuts are the cut vertices on the block's boundary, ascending.
	Cuts []int32
	// Sub is the block as a standalone graph with compact vertex ids,
	// VertexMap[i] the original id of compact vertex i, and EdgeMap[j] the
	// original edge index of compact edge j — byte for byte the shape
	// Result.ComponentSubgraph returns.
	Sub       *graph.EdgeList
	VertexMap []int32
	EdgeMap   []int32
}

// Bytes estimates the resident size of the shard for budget accounting.
func (sh *Shard) Bytes() int64 {
	return 256 +
		4*int64(len(sh.Vertices)+len(sh.Cuts)+len(sh.VertexMap)+len(sh.EdgeMap)) +
		8*int64(len(sh.Sub.Edges))
}

// Set is the sharded form of one decomposition: the routing index plus (for
// freshly built sets) the shards themselves. A Set decoded from a spilled
// index carries a nil Shards slice; the Manager promotes individual shards
// on demand.
type Set struct {
	// FP is the content address of the source graph.
	FP string
	// Algorithm names the engine that produced the decomposition; block
	// numbering is only meaningful relative to it.
	Algorithm string
	// N is the vertex count of the source graph.
	N int32
	// NumBlocks is the number of biconnected components.
	NumBlocks int
	// BuildHash fingerprints the routing index. Spilled shards carry it so
	// a promoted shard from a stale build is rejected instead of served.
	BuildHash uint64
	// Shards holds every block's state after BuildSet; the Manager takes
	// custody at install time and nils it.
	Shards []*Shard

	// offsets/blocks are the CSR vertex→block index: the blocks containing
	// vertex v are blocks[offsets[v]:offsets[v+1]], ascending.
	offsets []int32
	blocks  []int32
}

// BlocksOfVertex returns the ids of the blocks containing v, ascending —
// nil for isolated or out-of-range vertices, matching
// BlockCutTree.BlocksOfVertex. The returned slice aliases the index and
// must not be modified.
func (s *Set) BlocksOfVertex(v int32) []int32 {
	if v < 0 || v >= s.N {
		return nil
	}
	lo, hi := s.offsets[v], s.offsets[v+1]
	if lo == hi {
		return nil
	}
	return s.blocks[lo:hi:hi]
}

// IsCut reports whether v is a cut vertex: membership in two or more
// blocks, read straight off the routing index.
func (s *Set) IsCut(v int32) bool {
	if v < 0 || v >= s.N {
		return false
	}
	return s.offsets[v+1]-s.offsets[v] >= 2
}

// CutVertices enumerates the cut vertices, ascending.
func (s *Set) CutVertices() []int32 {
	var out []int32
	for v := int32(0); v < s.N; v++ {
		if s.offsets[v+1]-s.offsets[v] >= 2 {
			out = append(out, v)
		}
	}
	return out
}

// IndexBytes estimates the resident size of the routing index alone — the
// part of a Set that stays in memory even with every shard demoted.
func (s *Set) IndexBytes() int64 {
	return 256 + 4*int64(len(s.offsets)+len(s.blocks))
}

// hashIndex fingerprints the routing index with FNV-1a. Any change to the
// decomposition (different algorithm run, different graph) changes it, so
// spilled shards can be matched to the exact build that wrote them.
func hashIndex(fp string, n int32, numBlocks int, offsets, blocks []int32) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime
			v >>= 8
		}
	}
	for i := 0; i < len(fp); i++ {
		h = (h ^ uint64(fp[i])) * prime
	}
	mix(uint64(uint32(n)))
	mix(uint64(numBlocks))
	for _, o := range offsets {
		mix(uint64(uint32(o)))
	}
	for _, b := range blocks {
		mix(uint64(uint32(b)))
	}
	return h
}

// BuildSet partitions a completed decomposition into per-block shards. g
// must be the graph res was computed on. The build honors ctx between
// blocks and fires the shard.build fault site once per block; on
// cancellation or injected fault it returns an error and no Set — there is
// no partial output. Panics (injected or otherwise) are contained and
// returned as *par.PanicError.
func BuildSet(ctx context.Context, fp string, g *bicc.Graph, res *bicc.Result) (set *Set, err error) {
	defer func() {
		if v := recover(); v != nil {
			set, err = nil, par.AsPanicError(-1, v)
		}
	}()
	if g == nil || res == nil {
		return nil, errors.New("shard: nil graph or result")
	}
	edges := g.Edges()
	if len(res.EdgeComponent) != len(edges) {
		return nil, fmt.Errorf("shard: result labels %d edges, graph has %d",
			len(res.EdgeComponent), len(edges))
	}
	cancel := &par.Canceler{}
	stop := cancel.Watch(ctx)
	defer stop()

	n := int32(g.NumVertices())
	nb := res.NumComponents
	t := res.BlockCutTree()

	// Bucket edge indices by block in one pass. Each bucket stays in
	// ascending edge order, which is exactly the discovery order
	// Result.ComponentSubgraph uses — so the per-block subgraphs below are
	// byte-identical to its output at a total cost of O(n + m) instead of
	// O(m · numBlocks).
	counts := make([]int32, nb+1)
	for _, c := range res.EdgeComponent {
		counts[c+1]++
	}
	for k := 0; k < nb; k++ {
		counts[k+1] += counts[k]
	}
	order := make([]int32, len(edges))
	next := make([]int32, nb)
	copy(next, counts[:nb])
	for i, c := range res.EdgeComponent {
		order[next[c]] = int32(i)
		next[c]++
	}

	shards := make([]*Shard, nb)
	for k := 0; k < nb; k++ {
		faults.Inject(cancel, SiteBuild, 0, k)
		if err := cancel.Err(); err != nil {
			return nil, err
		}
		ids := order[counts[k]:counts[k+1]]
		local := make(map[int32]int32, 8)
		var vm []int32
		subEdges := make([]graph.Edge, 0, len(ids))
		for _, i := range ids {
			e := edges[i]
			for _, v := range [2]int32{e.U, e.V} {
				if _, ok := local[v]; !ok {
					local[v] = int32(len(vm))
					vm = append(vm, v)
				}
			}
			subEdges = append(subEdges, graph.Edge{U: local[e.U], V: local[e.V]})
		}
		em := make([]int32, len(ids))
		copy(em, ids)
		shards[k] = &Shard{
			Block:     int32(k),
			Vertices:  t.VerticesOfBlock(int32(k)),
			Cuts:      t.CutsOfBlock(int32(k)),
			Sub:       &graph.EdgeList{N: int32(len(vm)), Edges: subEdges},
			VertexMap: vm,
			EdgeMap:   em,
		}
	}
	if err := cancel.Err(); err != nil {
		return nil, err
	}

	offsets := make([]int32, n+1)
	for v := int32(0); v < n; v++ {
		offsets[v+1] = offsets[v] + int32(len(t.BlocksOfVertex(v)))
	}
	blocks := make([]int32, 0, offsets[n])
	for v := int32(0); v < n; v++ {
		blocks = append(blocks, t.BlocksOfVertex(v)...)
	}

	return &Set{
		FP:        fp,
		Algorithm: res.Algorithm.String(),
		N:         n,
		NumBlocks: nb,
		BuildHash: hashIndex(fp, n, nb, offsets, blocks),
		Shards:    shards,
		offsets:   offsets,
		blocks:    blocks,
	}, nil
}
