package shard

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"bicc/internal/par"
)

// SpillTier is the disk level the Manager demotes to. The service adapts
// the durable spill tier to this interface; tests use in-memory fakes.
// Implementations must be safe for concurrent use.
type SpillTier interface {
	PutIndex(fp string, payload []byte) error
	GetIndex(fp string) ([]byte, bool)
	RemoveIndex(fp string)
	PutShard(fp string, block int32, payload []byte) error
	GetShard(fp string, block int32) ([]byte, bool)
	RemoveShard(fp string, block int32)
}

// Manager owns shard-set residency: single-flight construction keyed by
// graph fingerprint, a byte budget over all resident shards with LRU
// demotion to the spill tier, promotion with build-hash integrity checks,
// and whole-set invalidation when spilled state cannot be trusted.
//
// Failed builds are never retained — a query that arrives after a faulted
// build triggers a fresh one. Routing indexes always stay resident (they
// are the part of a Set that cannot be rebuilt per-query); only shard
// payloads demote.
type Manager struct {
	mu      sync.Mutex
	budget  int64 // resident-byte budget; <= 0 means unlimited
	bytes   int64
	sets    map[string]*setState
	flights map[string]*flight
	lru     *list.List // of shardRef, front = most recently used
	spill   SpillTier

	builds       atomic.Int64
	buildFails   atomic.Int64
	recovered    atomic.Int64
	demotions    atomic.Int64
	promotions   atomic.Int64
	promoteFails atomic.Int64
	invalidated  atomic.Int64
}

type shardRef struct {
	fp    string
	block int32
}

// setState is a Set plus the Manager's residency bookkeeping for it.
// resident[b] is nil while block b lives only in the spill tier.
type setState struct {
	set      *Set
	resident []*Shard
	elems    []*list.Element
	bytes    int64
}

type flight struct {
	done chan struct{}
	set  *Set
	err  error
}

// NewManager returns a Manager with the given resident-byte budget
// (<= 0 means unlimited).
func NewManager(budget int64) *Manager {
	return &Manager{
		budget:  budget,
		sets:    map[string]*setState{},
		flights: map[string]*flight{},
		lru:     list.New(),
	}
}

// SetSpill attaches (or, with nil, detaches) the disk tier. With no tier,
// budget pressure drops whole sets instead of demoting shards, and any set
// holding demoted shards self-invalidates at the next access.
func (m *Manager) SetSpill(sp SpillTier) {
	m.mu.Lock()
	m.spill = sp
	m.mu.Unlock()
}

// Do returns the shard set for fp, building it at most once no matter how
// many callers arrive concurrently (errors are not cached — the next caller
// retries). Before building it tries to recover a spilled routing index
// written by a previous run. The build callback's error is returned to
// every coalesced waiter verbatim.
func (m *Manager) Do(ctx context.Context, fp string, build func(ctx context.Context) (*Set, error)) (*Set, error) {
	for {
		m.mu.Lock()
		if st, ok := m.sets[fp]; ok {
			set := st.set
			m.mu.Unlock()
			return set, nil
		}
		if fl, ok := m.flights[fp]; ok {
			m.mu.Unlock()
			select {
			case <-fl.done:
				if fl.err != nil {
					return nil, fl.err
				}
				// Loop: the set was installed before done closed, so the
				// next pass returns it (or finds it already invalidated and
				// rebuilds).
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		fl := &flight{done: make(chan struct{})}
		m.flights[fp] = fl
		m.mu.Unlock()

		set, err := m.recoverOrBuild(ctx, fp, build)
		var shards []*Shard
		m.mu.Lock()
		delete(m.flights, fp)
		if err == nil {
			shards = set.Shards
			m.installLocked(fp, set)
		}
		m.mu.Unlock()
		fl.set, fl.err = set, err
		close(fl.done)
		if err != nil {
			return nil, err
		}
		m.writeThrough(set, shards)
		return set, nil
	}
}

// recoverOrBuild tries the spilled routing index first, then runs the
// caller's build with a recover of last resort (an escaped panic would
// strand every coalesced waiter on the flight).
func (m *Manager) recoverOrBuild(ctx context.Context, fp string, build func(ctx context.Context) (*Set, error)) (*Set, error) {
	m.mu.Lock()
	sp := m.spill
	m.mu.Unlock()
	if sp != nil {
		if payload, ok := sp.GetIndex(fp); ok {
			if set, err := DecodeIndex(payload); err == nil && set.FP == fp {
				m.recovered.Add(1)
				return set, nil
			}
			// Undecodable or cross-wired: drop it so the rebuild below
			// replaces it rather than fighting it forever.
			sp.RemoveIndex(fp)
		}
	}
	set, err := m.runBuild(ctx, build)
	if err != nil {
		m.buildFails.Add(1)
		return nil, err
	}
	if set == nil || set.FP != fp {
		m.buildFails.Add(1)
		return nil, fmt.Errorf("shard: build returned set for %q, want %q", setFP(set), fp)
	}
	m.builds.Add(1)
	return set, nil
}

func setFP(s *Set) string {
	if s == nil {
		return "<nil>"
	}
	return s.FP
}

func (m *Manager) runBuild(ctx context.Context, build func(ctx context.Context) (*Set, error)) (set *Set, err error) {
	defer func() {
		if v := recover(); v != nil {
			set, err = nil, par.AsPanicError(-1, v)
		}
	}()
	return build(ctx)
}

// installLocked adopts a set (fresh from BuildSet, or recovered with no
// shards resident) into the residency tables and enforces the budget.
// Caller holds mu.
func (m *Manager) installLocked(fp string, set *Set) {
	st := &setState{
		set:      set,
		resident: make([]*Shard, set.NumBlocks),
		elems:    make([]*list.Element, set.NumBlocks),
		bytes:    set.IndexBytes(),
	}
	for i, sh := range set.Shards {
		st.resident[i] = sh
		st.elems[i] = m.lru.PushFront(shardRef{fp: fp, block: int32(i)})
		st.bytes += sh.Bytes()
	}
	// Residency is the manager's business from here on; the Set stays a
	// pure index for everyone holding it.
	set.Shards = nil
	m.sets[fp] = st
	m.bytes += st.bytes
	m.enforceBudgetLocked(fp, nil)
}

// writeThrough persists a freshly built set so a restarted process (or a
// demote-then-promote cycle) can serve it without recomputing. Runs outside
// mu: shards are immutable and the spill tier has its own lock.
func (m *Manager) writeThrough(set *Set, shards []*Shard) {
	m.mu.Lock()
	sp := m.spill
	m.mu.Unlock()
	if sp == nil || shards == nil {
		return
	}
	_ = sp.PutIndex(set.FP, EncodeIndex(set))
	for _, sh := range shards {
		_ = sp.PutShard(set.FP, sh.Block, EncodeShard(sh, set.BuildHash))
	}
}

// Shard returns block b of fp's set, promoting it from the spill tier when
// demoted. ok=false means the set was invalidated (stale or unreadable
// spilled state, or no set at all) — the caller should re-run Do, which
// rebuilds from scratch.
func (m *Manager) Shard(fp string, block int32) (*Shard, bool) {
	m.mu.Lock()
	st, ok := m.sets[fp]
	if !ok || block < 0 || int(block) >= st.set.NumBlocks {
		m.mu.Unlock()
		return nil, false
	}
	if sh := st.resident[block]; sh != nil {
		m.lru.MoveToFront(st.elems[block])
		m.mu.Unlock()
		return sh, true
	}
	set := st.set
	sp := m.spill
	m.mu.Unlock()

	if sp == nil {
		// Demoted state with no disk tier is unservable; recompute.
		m.invalidate(fp, set)
		return nil, false
	}
	payload, ok := sp.GetShard(fp, block)
	var sh *Shard
	var hash uint64
	var err error
	if ok {
		sh, hash, err = DecodeShard(payload)
	}
	if !ok || err != nil || hash != set.BuildHash || sh.Block != block {
		// Missing, torn, or from a stale build: recomputing the whole set
		// beats trusting any of its spilled siblings.
		m.promoteFails.Add(1)
		sp.RemoveShard(fp, block)
		m.invalidate(fp, set)
		return nil, false
	}
	m.promotions.Add(1)

	m.mu.Lock()
	if st2, ok2 := m.sets[fp]; ok2 && st2.set == set && st2.resident[block] == nil {
		st2.resident[block] = sh
		st2.elems[block] = m.lru.PushFront(shardRef{fp: fp, block: block})
		st2.bytes += sh.Bytes()
		m.bytes += sh.Bytes()
		m.enforceBudgetLocked(fp, st2.elems[block])
	}
	m.mu.Unlock()
	return sh, true
}

// enforceBudgetLocked demotes least-recently-used shards (with a spill
// tier) or drops whole sets (without one) until the budget is met. keepFP
// and keepElem protect the state the caller is mid-way through installing.
// Caller holds mu.
func (m *Manager) enforceBudgetLocked(keepFP string, keepElem *list.Element) {
	if m.budget <= 0 {
		return
	}
	for m.bytes > m.budget {
		back := m.lru.Back()
		if back == nil || back == keepElem {
			return
		}
		ref := back.Value.(shardRef)
		if m.spill != nil {
			m.demoteLocked(ref, back)
			continue
		}
		if ref.fp == keepFP {
			// Only the set being installed remains; like the graph
			// registry, the budget may be transiently exceeded rather than
			// evicting the state the caller is about to use.
			return
		}
		m.removeLocked(ref.fp)
		m.invalidated.Add(1)
	}
}

// demoteLocked writes one shard to the spill tier and drops it from memory.
// The write happens under mu — the same accepted trade-off as the result
// cache's demotion path: demotion is rare and the alternative is a
// half-resident shard visible to concurrent queries. Caller holds mu.
func (m *Manager) demoteLocked(ref shardRef, elem *list.Element) {
	st := m.sets[ref.fp]
	sh := st.resident[ref.block]
	// Best effort: a failed write means the shard is simply gone from both
	// tiers, and the next query for it invalidates + rebuilds the set.
	_ = m.spill.PutShard(ref.fp, ref.block, EncodeShard(sh, st.set.BuildHash))
	m.lru.Remove(elem)
	st.resident[ref.block] = nil
	st.elems[ref.block] = nil
	st.bytes -= sh.Bytes()
	m.bytes -= sh.Bytes()
	m.demotions.Add(1)
}

// invalidate drops fp's set if it is still the one the caller saw, and
// removes the spilled index so the next Do rebuilds instead of recovering
// the same stale state. Spilled shard payloads are left behind: the rebuild
// overwrites them key for key, and the build hash rejects any stragglers.
func (m *Manager) invalidate(fp string, set *Set) {
	m.mu.Lock()
	st, ok := m.sets[fp]
	if ok && st.set == set {
		m.removeLocked(fp)
		m.invalidated.Add(1)
	}
	sp := m.spill
	m.mu.Unlock()
	if sp != nil {
		sp.RemoveIndex(fp)
	}
}

// removeLocked unlinks fp's residency state. Caller holds mu.
func (m *Manager) removeLocked(fp string) {
	st, ok := m.sets[fp]
	if !ok {
		return
	}
	for _, e := range st.elems {
		if e != nil {
			m.lru.Remove(e)
		}
	}
	m.bytes -= st.bytes
	delete(m.sets, fp)
}

// Remove drops all shard state for fp — memory and spilled index — for
// explicit graph deletion. Spilled shard payloads are removed too.
func (m *Manager) Remove(fp string) {
	m.mu.Lock()
	var numBlocks int
	if st, ok := m.sets[fp]; ok {
		numBlocks = st.set.NumBlocks
		m.removeLocked(fp)
		m.invalidated.Add(1)
	}
	sp := m.spill
	m.mu.Unlock()
	if sp == nil {
		return
	}
	sp.RemoveIndex(fp)
	for b := 0; b < numBlocks; b++ {
		sp.RemoveShard(fp, int32(b))
	}
}

// RemovePrefix drops every resident set whose key starts with prefix, along
// with its spilled state — the hook for deleting a graph whose decomposition
// keys (fingerprint-algorithm-procs) all share the fingerprint prefix.
// Spilled-only sets (index on disk, nothing resident) are left behind: they
// are content-addressed, so they are either revalidated by a future build of
// the same graph or rejected by the build hash, never wrongly served.
func (m *Manager) RemovePrefix(prefix string) {
	m.mu.Lock()
	type victim struct {
		fp        string
		numBlocks int
	}
	var victims []victim
	for fp, st := range m.sets {
		if strings.HasPrefix(fp, prefix) {
			victims = append(victims, victim{fp, st.set.NumBlocks})
		}
	}
	for _, v := range victims {
		m.removeLocked(v.fp)
		m.invalidated.Add(1)
	}
	sp := m.spill
	m.mu.Unlock()
	if sp == nil {
		return
	}
	for _, v := range victims {
		sp.RemoveIndex(v.fp)
		for b := 0; b < v.numBlocks; b++ {
			sp.RemoveShard(v.fp, int32(b))
		}
	}
}

// --- telemetry ---------------------------------------------------------------

// Sets returns the number of resident shard sets.
func (m *Manager) Sets() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sets)
}

// ResidentShards returns the number of shards currently held in memory.
func (m *Manager) ResidentShards() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}

// Bytes returns the estimated resident bytes of all sets and shards.
func (m *Manager) Bytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// Builds, BuildFailures, Recovered, Demotions, Promotions, PromoteFailures,
// and Invalidations expose the manager's counters.
func (m *Manager) Builds() int64          { return m.builds.Load() }
func (m *Manager) BuildFailures() int64   { return m.buildFails.Load() }
func (m *Manager) Recovered() int64       { return m.recovered.Load() }
func (m *Manager) Demotions() int64       { return m.demotions.Load() }
func (m *Manager) Promotions() int64      { return m.promotions.Load() }
func (m *Manager) PromoteFailures() int64 { return m.promoteFails.Load() }
func (m *Manager) Invalidations() int64   { return m.invalidated.Load() }
