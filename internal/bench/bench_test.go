package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func TestPaperInstancesScaling(t *testing.T) {
	full := PaperInstances(1)
	if len(full) != 3 {
		t.Fatalf("%d instances, want 3", len(full))
	}
	if full[0].N != 1_000_000 || full[0].M != 4_000_000 {
		t.Errorf("m=4n instance: n=%d m=%d", full[0].N, full[0].M)
	}
	if full[2].M != 20_000_000 {
		t.Errorf("n log n instance m=%d, want 20M", full[2].M)
	}
	small := PaperInstances(0.001)
	if small[0].N != 1000 || small[0].M != 4000 {
		t.Errorf("scaled instance: n=%d m=%d", small[0].N, small[0].M)
	}
	tiny := PaperInstances(0)
	if tiny[0].N < 16 {
		t.Errorf("scale floor violated: n=%d", tiny[0].N)
	}
}

func TestInstanceBuild(t *testing.T) {
	in := Instance{Name: "t", N: 100, M: 300, Seed: 1}
	g := in.Build()
	if int(g.N) != 100 || len(g.Edges) != 300 {
		t.Errorf("built n=%d m=%d", g.N, len(g.Edges))
	}
}

func TestProcsSweep(t *testing.T) {
	cases := map[int][]int{
		1:  {1},
		2:  {1, 2},
		4:  {1, 2, 4},
		12: {1, 2, 4, 8, 12},
		5:  {1, 2, 4, 5},
	}
	for max, want := range cases {
		got := ProcsSweep(max)
		if len(got) != len(want) {
			t.Errorf("ProcsSweep(%d)=%v, want %v", max, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("ProcsSweep(%d)=%v, want %v", max, got, want)
				break
			}
		}
	}
	if got := ProcsSweep(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("ProcsSweep(0)=%v, want [1]", got)
	}
}

func TestRunAndSpeedup(t *testing.T) {
	in := Instance{Name: "t", N: 200, M: 600, Seed: 2}
	g := in.Build()
	algos := Algos()
	if len(algos) != 5 {
		t.Fatalf("%d algorithms, want 5", len(algos))
	}
	seq, err := Run(in, g, algos[0], 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Time <= 0 {
		t.Error("non-positive sequential time")
	}
	for _, a := range algos[1:] {
		m, err := Run(in, g, a, 2, 2)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if m.Result.NumComp != seq.Result.NumComp {
			t.Errorf("%s: NumComp=%d, want %d", a.Name, m.Result.NumComp, seq.Result.NumComp)
		}
		if m.Speedup(seq.Time) <= 0 {
			t.Errorf("%s: non-positive speedup", a.Name)
		}
	}
}

func TestFig3Output(t *testing.T) {
	var buf bytes.Buffer
	instances := []Instance{{Name: "tiny", N: 150, M: 600, Seed: 3}}
	ms, err := Fig3(&buf, instances, []int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 1 sequential + 4 algorithms x 2 procs = 9 measurements.
	if len(ms) != 9 {
		t.Errorf("%d measurements, want 9", len(ms))
	}
	out := buf.String()
	for _, want := range []string{"sequential", "tv-smp", "tv-opt", "tv-filter", "fast-bcc", "speedup", "tiny"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig4Output(t *testing.T) {
	var buf bytes.Buffer
	instances := []Instance{{Name: "tiny", N: 120, M: 500, Seed: 4}}
	ms, err := Fig4(&buf, instances, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Errorf("%d measurements, want 4", len(ms))
	}
	out := buf.String()
	for _, want := range []string{"spanning-tree", "euler-tour", "low-high", "label-edge",
		"connected-components", "filtering", "skeleton", "tv-filter", "fast-bcc", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 output missing %q:\n%s", want, out)
		}
	}
	// TV-filter must actually record filtering time; TV-opt must not. The
	// skeleton step belongs to fast-bcc alone, and fast-bcc never filters
	// or builds an Euler tour.
	for _, m := range ms {
		filt := m.Result.PhaseDuration("filtering")
		skel := m.Result.PhaseDuration("skeleton")
		switch m.Algo {
		case "tv-filter":
			if filt <= 0 {
				t.Error("tv-filter reports no filtering time")
			}
		case "tv-opt", "tv-smp":
			if filt != 0 {
				t.Errorf("%s reports filtering time %v", m.Algo, filt)
			}
		case "fast-bcc":
			if skel <= 0 {
				t.Error("fast-bcc reports no skeleton time")
			}
			if filt != 0 || m.Result.PhaseDuration("euler-tour") != 0 {
				t.Errorf("fast-bcc reports TV-only phases: filtering=%v euler-tour=%v",
					filt, m.Result.PhaseDuration("euler-tour"))
			}
		}
		if m.Algo != "fast-bcc" && skel != 0 {
			t.Errorf("%s reports skeleton time %v", m.Algo, skel)
		}
	}
}

func TestFig3CSV(t *testing.T) {
	var tab bytes.Buffer
	instances := []Instance{{Name: "t", N: 100, M: 400, Seed: 5}}
	ms, err := Fig3(&tab, instances, []int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Fig3CSV(&buf, ms); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ms)+1 {
		t.Fatalf("%d CSV rows, want %d", len(rows), len(ms)+1)
	}
	if rows[0][0] != "instance" || rows[0][6] != "speedup" {
		t.Errorf("header: %v", rows[0])
	}
	// The sequential row must report speedup 1.000.
	found := false
	for _, r := range rows[1:] {
		if r[3] == "sequential" {
			found = true
			if r[6] != "1.000" {
				t.Errorf("sequential speedup=%s", r[6])
			}
		}
	}
	if !found {
		t.Error("no sequential row")
	}
}

func TestFig4CSV(t *testing.T) {
	var tab bytes.Buffer
	instances := []Instance{{Name: "t", N: 100, M: 400, Seed: 6}}
	ms, err := Fig4(&tab, instances, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Fig4CSV(&buf, ms); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ms)+1 {
		t.Fatalf("%d CSV rows, want %d", len(rows), len(ms)+1)
	}
	if len(rows[0]) != 5+9 {
		t.Errorf("header has %d columns, want 14: %v", len(rows[0]), rows[0])
	}
}

func TestFig3CSVMissingBaseline(t *testing.T) {
	ms := []Measurement{{Instance: Instance{Name: "x"}, Algo: "tv-opt", Procs: 2, Time: time.Millisecond}}
	if err := Fig3CSV(&bytes.Buffer{}, ms); err == nil {
		t.Error("missing baseline accepted")
	}
}
