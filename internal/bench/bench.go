// Package bench is the harness that regenerates the paper's evaluation
// (§5): Fig. 3 (wall-clock time and speedup of Sequential, TV-SMP, TV-opt
// and TV-filter across processor counts and edge densities on random
// graphs) and Fig. 4 (per-step execution-time breakdown at maximum
// processor count).
//
// The Sun E4500's 12 processors are modeled by sweeping GOMAXPROCS-bounded
// worker counts; absolute times differ from the paper's 400 MHz UltraSPARC
// numbers, but the relative shape — which algorithm wins at which density,
// and which steps dominate — is the reproduction target.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"bicc/internal/core"
	"bicc/internal/fastbcc"
	"bicc/internal/gen"
	"bicc/internal/graph"
	"bicc/internal/obs"
)

// Instance describes one benchmark input, the paper's random G(n,m) family.
type Instance struct {
	Name string
	N    int
	M    int
	Seed int64
}

// Build materializes the instance as a connected random graph (the paper's
// inputs are connected; BCC of a disconnected graph is still defined, but
// connectivity keeps the comparison faithful).
func (in Instance) Build() *graph.EdgeList {
	return gen.RandomConnected(in.N, in.M, in.Seed)
}

// PaperInstances returns the paper's Fig. 3/4 workload scaled by factor
// scale (scale=1 reproduces 1M vertices with 4M, 10M and 20M ≈ n·log n
// edges; smaller scales shrink proportionally for quick runs).
func PaperInstances(scale float64) []Instance {
	n := int(1_000_000 * scale)
	if n < 16 {
		n = 16
	}
	mk := func(name string, m int) Instance {
		if m < n {
			m = n
		}
		return Instance{Name: name, N: n, M: m, Seed: 20050404}
	}
	return []Instance{
		mk("m=4n", 4*n),
		mk("m=10n", 10*n),
		mk("m=nlogn", int(float64(n)*log2(float64(n)))),
	}
}

func log2(x float64) float64 {
	l := 0.0
	for x > 1 {
		x /= 2
		l++
	}
	return l
}

// Algo is a named biconnected components implementation bound to its
// runner. The TV variants all flow through the core pipeline with a
// different Config; fast-bcc is its own engine, so the harness treats every
// algorithm as an opaque (p, graph, span) -> result function.
type Algo struct {
	Name string
	run  func(p int, g *graph.EdgeList, sp *obs.Span) (*core.Result, error)
}

// tvAlgo wraps a core pipeline configuration as an Algo.
func tvAlgo(name string, cfg core.Config) Algo {
	return Algo{name, func(p int, g *graph.EdgeList, sp *obs.Span) (*core.Result, error) {
		c := cfg
		c.Span = sp
		return core.Custom(p, g, c)
	}}
}

// Algos returns the five implementations in presentation order: the
// sequential baseline, the paper's three TV variants, and the
// skeleton-based fast-bcc engine.
func Algos() []Algo {
	return []Algo{
		{"sequential", func(p int, g *graph.EdgeList, sp *obs.Span) (*core.Result, error) {
			return core.SequentialT(nil, sp, g)
		}},
		tvAlgo("tv-smp", core.TVSMPConfig()),
		tvAlgo("tv-opt", core.TVOptConfig()),
		tvAlgo("tv-filter", core.TVFilterConfig()),
		{"fast-bcc", func(p int, g *graph.EdgeList, sp *obs.Span) (*core.Result, error) {
			return fastbcc.Run(p, g, fastbcc.Config{Span: sp})
		}},
	}
}

// Run executes the algorithm on g with p workers.
func (a Algo) Run(p int, g *graph.EdgeList) (*core.Result, error) {
	return a.RunSpan(p, g, nil)
}

// RunSpan is Run with every pipeline phase mirrored as a completed child
// span of sp, the instrumentation the breakdown harness reads.
func (a Algo) RunSpan(p int, g *graph.EdgeList, sp *obs.Span) (*core.Result, error) {
	return a.run(p, g, sp)
}

// Measurement is one timed algorithm execution.
type Measurement struct {
	Instance Instance
	Algo     string
	Procs    int
	Time     time.Duration
	Result   *core.Result
	// Phases is the per-step breakdown of the median repetition, sourced
	// from the run's obs trace spans — the same spans a bccd ?trace=1 query
	// returns, so CLI breakdowns and server traces can never disagree.
	Phases []core.Phase
}

// Speedup returns the sequential-time / parallel-time ratio against base.
func (m Measurement) Speedup(base time.Duration) float64 {
	if m.Time <= 0 {
		return 0
	}
	return float64(base) / float64(m.Time)
}

// PhaseDuration returns the total span time recorded under name.
func (m Measurement) PhaseDuration(name string) time.Duration {
	var d time.Duration
	for _, ph := range m.Phases {
		if ph.Name == name {
			d += ph.Duration
		}
	}
	return d
}

// PhaseTotal returns the sum of all phase span durations.
func (m Measurement) PhaseTotal() time.Duration {
	var d time.Duration
	for _, ph := range m.Phases {
		d += ph.Duration
	}
	return d
}

// Run executes algo on g with p workers reps times and returns the median
// measurement (the paper reports steady-state times; median suppresses GC
// and scheduler noise). Each repetition runs under its own obs trace; the
// median repetition's phase spans become Measurement.Phases.
func Run(in Instance, g *graph.EdgeList, algo Algo, p, reps int) (Measurement, error) {
	if reps < 1 {
		reps = 1
	}
	type rep struct {
		t      time.Duration
		phases []core.Phase
	}
	runs := make([]rep, 0, reps)
	var last *core.Result
	for r := 0; r < reps; r++ {
		tr := obs.NewTrace()
		root := tr.Root(algo.Name)
		start := time.Now()
		res, err := algo.RunSpan(p, g, root)
		if err != nil {
			return Measurement{}, fmt.Errorf("%s p=%d: %w", algo.Name, p, err)
		}
		elapsed := time.Since(start)
		root.End()
		runs = append(runs, rep{t: elapsed, phases: phasesFromTrace(tr.Export(), root.ID())})
		last = res
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].t < runs[j].t })
	mid := runs[len(runs)/2]
	return Measurement{
		Instance: in, Algo: algo.Name, Procs: p,
		Time: mid.t, Result: last, Phases: mid.phases,
	}, nil
}

// phasesFromTrace extracts the phase children of the root span, in start
// order (Export's ordering).
func phasesFromTrace(e *obs.TraceExport, rootID int) []core.Phase {
	var out []core.Phase
	for _, s := range e.Spans {
		if s.Parent == rootID {
			out = append(out, core.Phase{Name: s.Name, Duration: time.Duration(s.DurationNs)})
		}
	}
	return out
}

// Fig3 regenerates the paper's Figure 3: for every instance and processor
// count, the wall-clock time of each algorithm and its speedup over the
// sequential implementation on the same instance. Rows are written as an
// aligned table; the measurements are also returned for programmatic use.
func Fig3(w io.Writer, instances []Instance, procs []int, reps int) ([]Measurement, error) {
	var all []Measurement
	fmt.Fprintf(w, "# Fig. 3 — execution time and speedup on random graphs\n")
	fmt.Fprintf(w, "%-10s %10s %10s %-12s %5s %12s %8s\n",
		"instance", "n", "m", "algorithm", "p", "time", "speedup")
	for _, in := range instances {
		g := in.Build()
		seq, err := Run(in, g, Algos()[0], 1, reps)
		if err != nil {
			return nil, err
		}
		all = append(all, seq)
		fmt.Fprintf(w, "%-10s %10d %10d %-12s %5d %12v %8.2f\n",
			in.Name, in.N, in.M, seq.Algo, 1, seq.Time.Round(time.Microsecond), 1.0)
		for _, algo := range Algos()[1:] {
			for _, p := range procs {
				m, err := Run(in, g, algo, p, reps)
				if err != nil {
					return nil, err
				}
				all = append(all, m)
				fmt.Fprintf(w, "%-10s %10d %10d %-12s %5d %12v %8.2f\n",
					in.Name, in.N, in.M, m.Algo, p,
					m.Time.Round(time.Microsecond), m.Speedup(seq.Time))
			}
		}
	}
	return all, nil
}

// Fig4 regenerates the paper's Figure 4: the per-step breakdown of TV-SMP,
// TV-opt and TV-filter at p processors across the instances, sourced from
// the runs' obs trace spans. Steps follow the paper's naming:
// Spanning-tree, Euler-tour, root, Low-high, Label-edge,
// Connected-components, Filtering.
func Fig4(w io.Writer, instances []Instance, p, reps int) ([]Measurement, error) {
	var all []Measurement
	fmt.Fprintf(w, "# Fig. 4 — per-step breakdown at p=%d\n", p)
	fmt.Fprintf(w, "%-10s %-12s", "instance", "algorithm")
	for _, ph := range core.PhaseOrder {
		fmt.Fprintf(w, " %14s", ph)
	}
	fmt.Fprintf(w, " %14s\n", "total")
	for _, in := range instances {
		g := in.Build()
		for _, algo := range Algos()[1:] {
			m, err := Run(in, g, algo, p, reps)
			if err != nil {
				return nil, err
			}
			all = append(all, m)
			fmt.Fprintf(w, "%-10s %-12s", in.Name, m.Algo)
			for _, ph := range core.PhaseOrder {
				fmt.Fprintf(w, " %14v", m.PhaseDuration(ph).Round(time.Microsecond))
			}
			fmt.Fprintf(w, " %14v\n", m.PhaseTotal().Round(time.Microsecond))
		}
	}
	return all, nil
}

// ProcsSweep returns 1, 2, 4, ... up to max (always including max), the
// processor counts swept in Fig. 3.
func ProcsSweep(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for p := 1; p < max; p *= 2 {
		out = append(out, p)
	}
	return append(out, max)
}
