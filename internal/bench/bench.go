// Package bench is the harness that regenerates the paper's evaluation
// (§5): Fig. 3 (wall-clock time and speedup of Sequential, TV-SMP, TV-opt
// and TV-filter across processor counts and edge densities on random
// graphs) and Fig. 4 (per-step execution-time breakdown at maximum
// processor count).
//
// The Sun E4500's 12 processors are modeled by sweeping GOMAXPROCS-bounded
// worker counts; absolute times differ from the paper's 400 MHz UltraSPARC
// numbers, but the relative shape — which algorithm wins at which density,
// and which steps dominate — is the reproduction target.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"bicc/internal/core"
	"bicc/internal/gen"
	"bicc/internal/graph"
)

// Instance describes one benchmark input, the paper's random G(n,m) family.
type Instance struct {
	Name string
	N    int
	M    int
	Seed int64
}

// Build materializes the instance as a connected random graph (the paper's
// inputs are connected; BCC of a disconnected graph is still defined, but
// connectivity keeps the comparison faithful).
func (in Instance) Build() *graph.EdgeList {
	return gen.RandomConnected(in.N, in.M, in.Seed)
}

// PaperInstances returns the paper's Fig. 3/4 workload scaled by factor
// scale (scale=1 reproduces 1M vertices with 4M, 10M and 20M ≈ n·log n
// edges; smaller scales shrink proportionally for quick runs).
func PaperInstances(scale float64) []Instance {
	n := int(1_000_000 * scale)
	if n < 16 {
		n = 16
	}
	mk := func(name string, m int) Instance {
		if m < n {
			m = n
		}
		return Instance{Name: name, N: n, M: m, Seed: 20050404}
	}
	return []Instance{
		mk("m=4n", 4*n),
		mk("m=10n", 10*n),
		mk("m=nlogn", int(float64(n)*log2(float64(n)))),
	}
}

func log2(x float64) float64 {
	l := 0.0
	for x > 1 {
		x /= 2
		l++
	}
	return l
}

// Algo is a named biconnected components implementation.
type Algo struct {
	Name string
	Run  func(p int, g *graph.EdgeList) (*core.Result, error)
}

// Algos returns the paper's four implementations in presentation order.
func Algos() []Algo {
	return []Algo{
		{"sequential", func(p int, g *graph.EdgeList) (*core.Result, error) {
			return core.Sequential(g), nil
		}},
		{"tv-smp", core.TVSMP},
		{"tv-opt", core.TVOpt},
		{"tv-filter", core.TVFilter},
	}
}

// Measurement is one timed algorithm execution.
type Measurement struct {
	Instance Instance
	Algo     string
	Procs    int
	Time     time.Duration
	Result   *core.Result
}

// Speedup returns the sequential-time / parallel-time ratio against base.
func (m Measurement) Speedup(base time.Duration) float64 {
	if m.Time <= 0 {
		return 0
	}
	return float64(base) / float64(m.Time)
}

// Run executes algo on g with p workers reps times and returns the median
// measurement (the paper reports steady-state times; median suppresses GC
// and scheduler noise).
func Run(in Instance, g *graph.EdgeList, algo Algo, p, reps int) (Measurement, error) {
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, 0, reps)
	var last *core.Result
	for r := 0; r < reps; r++ {
		start := time.Now()
		res, err := algo.Run(p, g)
		if err != nil {
			return Measurement{}, fmt.Errorf("%s p=%d: %w", algo.Name, p, err)
		}
		times = append(times, time.Since(start))
		last = res
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return Measurement{
		Instance: in, Algo: algo.Name, Procs: p,
		Time: times[len(times)/2], Result: last,
	}, nil
}

// Fig3 regenerates the paper's Figure 3: for every instance and processor
// count, the wall-clock time of each algorithm and its speedup over the
// sequential implementation on the same instance. Rows are written as an
// aligned table; the measurements are also returned for programmatic use.
func Fig3(w io.Writer, instances []Instance, procs []int, reps int) ([]Measurement, error) {
	var all []Measurement
	fmt.Fprintf(w, "# Fig. 3 — execution time and speedup on random graphs\n")
	fmt.Fprintf(w, "%-10s %10s %10s %-12s %5s %12s %8s\n",
		"instance", "n", "m", "algorithm", "p", "time", "speedup")
	for _, in := range instances {
		g := in.Build()
		seq, err := Run(in, g, Algos()[0], 1, reps)
		if err != nil {
			return nil, err
		}
		all = append(all, seq)
		fmt.Fprintf(w, "%-10s %10d %10d %-12s %5d %12v %8.2f\n",
			in.Name, in.N, in.M, seq.Algo, 1, seq.Time.Round(time.Microsecond), 1.0)
		for _, algo := range Algos()[1:] {
			for _, p := range procs {
				m, err := Run(in, g, algo, p, reps)
				if err != nil {
					return nil, err
				}
				all = append(all, m)
				fmt.Fprintf(w, "%-10s %10d %10d %-12s %5d %12v %8.2f\n",
					in.Name, in.N, in.M, m.Algo, p,
					m.Time.Round(time.Microsecond), m.Speedup(seq.Time))
			}
		}
	}
	return all, nil
}

// Fig4 regenerates the paper's Figure 4: the per-step breakdown of TV-SMP,
// TV-opt and TV-filter at p processors across the instances. Steps follow
// the paper's naming: Spanning-tree, Euler-tour, root, Low-high,
// Label-edge, Connected-components, Filtering.
func Fig4(w io.Writer, instances []Instance, p, reps int) ([]Measurement, error) {
	var all []Measurement
	fmt.Fprintf(w, "# Fig. 4 — per-step breakdown at p=%d\n", p)
	fmt.Fprintf(w, "%-10s %-12s", "instance", "algorithm")
	for _, ph := range core.PhaseOrder {
		fmt.Fprintf(w, " %14s", ph)
	}
	fmt.Fprintf(w, " %14s\n", "total")
	for _, in := range instances {
		g := in.Build()
		for _, algo := range Algos()[1:] {
			m, err := Run(in, g, algo, p, reps)
			if err != nil {
				return nil, err
			}
			all = append(all, m)
			fmt.Fprintf(w, "%-10s %-12s", in.Name, m.Algo)
			for _, ph := range core.PhaseOrder {
				fmt.Fprintf(w, " %14v", m.Result.PhaseDuration(ph).Round(time.Microsecond))
			}
			fmt.Fprintf(w, " %14v\n", m.Result.Total().Round(time.Microsecond))
		}
	}
	return all, nil
}

// ProcsSweep returns 1, 2, 4, ... up to max (always including max), the
// processor counts swept in Fig. 3.
func ProcsSweep(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for p := 1; p < max; p *= 2 {
		out = append(out, p)
	}
	return append(out, max)
}
