package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"bicc/internal/core"
)

// Fig3CSV writes Fig. 3 measurements as CSV (one row per measurement, with
// speedup computed against the sequential run of the same instance) for
// plotting with external tools.
func Fig3CSV(w io.Writer, ms []Measurement) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"instance", "n", "m", "algorithm", "procs", "seconds", "speedup"}); err != nil {
		return err
	}
	// Sequential baselines per instance name.
	base := map[string]Measurement{}
	for _, m := range ms {
		if m.Algo == "sequential" {
			base[m.Instance.Name] = m
		}
	}
	for _, m := range ms {
		b, ok := base[m.Instance.Name]
		if !ok {
			return fmt.Errorf("bench: no sequential baseline for instance %q", m.Instance.Name)
		}
		rec := []string{
			m.Instance.Name,
			strconv.Itoa(m.Instance.N),
			strconv.Itoa(m.Instance.M),
			m.Algo,
			strconv.Itoa(m.Procs),
			strconv.FormatFloat(m.Time.Seconds(), 'g', 6, 64),
			strconv.FormatFloat(m.Speedup(b.Time), 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig4CSV writes the per-step breakdown as CSV: one row per (instance,
// algorithm) with a column per phase.
func Fig4CSV(w io.Writer, ms []Measurement) error {
	cw := csv.NewWriter(w)
	header := []string{"instance", "n", "m", "algorithm", "procs"}
	header = append(header, core.PhaseOrder...)
	header = append(header, "total")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, m := range ms {
		if len(m.Phases) == 0 {
			return fmt.Errorf("bench: measurement for %s lacks a span-sourced phase breakdown", m.Algo)
		}
		rec := []string{
			m.Instance.Name,
			strconv.Itoa(m.Instance.N),
			strconv.Itoa(m.Instance.M),
			m.Algo,
			strconv.Itoa(m.Procs),
		}
		for _, ph := range core.PhaseOrder {
			rec = append(rec, strconv.FormatFloat(m.PhaseDuration(ph).Seconds(), 'g', 6, 64))
		}
		rec = append(rec, strconv.FormatFloat(m.PhaseTotal().Seconds(), 'g', 6, 64))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
