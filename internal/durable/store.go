package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bicc"
	"bicc/internal/faults"
	"bicc/internal/graph"
)

// Crash-injection sites in the write paths. Each marks an exact byte
// boundary: a KindKill rule there proves what recovery does when the
// process dies with the file in that state.
var (
	// siteWALHeader fires after a record's frame header is written but
	// before its payload: the torn-record case. iter = append sequence.
	siteWALHeader = faults.RegisterSite("durable.wal.header", false)
	// siteWALPayload fires after the full record is written but before
	// fsync: complete in the page cache, not yet forced to media.
	siteWALPayload = faults.RegisterSite("durable.wal.payload", false)
	// siteWALSync fires after fsync but before the append returns (before
	// the service acknowledges the client).
	siteWALSync = faults.RegisterSite("durable.wal.sync", false)
	// siteSnapWrite fires between records while the snapshot tmp file is
	// being written. iter = record index.
	siteSnapWrite = faults.RegisterSite("durable.snap.write", false)
	// siteSnapRename fires after the snapshot tmp is fully synced but
	// before the atomic rename installs it. iter = generation.
	siteSnapRename = faults.RegisterSite("durable.snap.rename", false)
	// siteSpillWrite fires after a spill file's frame header is written but
	// before its payload. iter = spill write sequence.
	siteSpillWrite = faults.RegisterSite("durable.spill.write", false)
)

// SyncMode selects when WAL appends are forced to stable storage.
type SyncMode int

const (
	// SyncAlways fsyncs every append before it returns: an acknowledged
	// write survives both process death and machine crash. The default.
	SyncAlways SyncMode = iota
	// SyncInterval lets a background ticker fsync the WAL every
	// Config.SyncInterval: acknowledged writes survive process death
	// (SIGKILL, OOM) immediately but can lose up to one interval on a
	// machine crash.
	SyncInterval
	// SyncNone never fsyncs the WAL explicitly; the OS flushes at its own
	// pace. Snapshots are still fully synced.
	SyncNone
)

// ParseSyncMode maps the -wal-sync flag values onto SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("durable: unknown sync mode %q (want always, interval, or none)", s)
}

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncMode(%d)", int(m))
}

// Config tunes a Store. Dir is required; zero values elsewhere pick
// defaults.
type Config struct {
	Dir string
	// Sync is the WAL fsync policy; the zero value is SyncAlways.
	Sync SyncMode
	// SyncInterval is the ticker period for SyncInterval mode; <= 0 means
	// 5ms.
	SyncInterval time.Duration
	// CompactBytes is the WAL size that triggers background snapshot
	// compaction; <= 0 means 64 MiB.
	CompactBytes int64
	// FsyncObserve, when non-nil, receives the duration of every WAL fsync
	// (the obs latency histogram hook).
	FsyncObserve func(time.Duration)
	// ReplayLogEvery makes Open report replay progress through Logf every
	// that many WAL records, so a long recovery is never silent. <= 0
	// disables progress logging.
	ReplayLogEvery int
	// Logf receives replay progress lines; nil disables them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.SyncInterval <= 0 {
		c.SyncInterval = 5 * time.Millisecond
	}
	if c.CompactBytes <= 0 {
		c.CompactBytes = 64 << 20
	}
	return c
}

// Recovery describes what Open reconstructed from disk.
type Recovery struct {
	// Graphs are the registry entries recovered from snapshot + WAL, sorted
	// by fingerprint.
	Graphs []GraphRecord
	// Truncations counts torn tails cut off (a crash landed mid-append).
	Truncations int
	// DroppedRecords counts records lost to CRC or decode failures.
	DroppedRecords int
	// WALRecords and SnapshotRecords count the records replayed from each
	// source.
	WALRecords      int
	SnapshotRecords int
	// Duration is the wall time recovery took.
	Duration time.Duration
}

// Store is the durable backend for the graph registry: an fsync'd
// write-ahead log replayed over periodic compacted snapshots. It keeps its
// own authoritative map of live entries (sharing graph pointers with the
// in-memory registry, so nothing is duplicated), which is what compaction
// snapshots — the WAL and the snapshot can therefore never disagree about
// what was acknowledged.
type Store struct {
	cfg Config

	mu         sync.Mutex
	wal        *os.File
	walSize    int64 // current WAL file size including file header
	gen        uint64
	seq        int // append sequence, the fault-site iter
	state      map[string]GraphRecord
	closed     bool
	compacting bool
	appendObs  func(kind byte, payload []byte)

	appends       atomic.Int64
	walErrors     atomic.Int64
	compactions   atomic.Int64
	compactErrors atomic.Int64

	// wg tracks in-flight compactions; syncWG the SyncInterval ticker.
	// They are separate so Compact can wait for a running compaction
	// without waiting for a loop that only exits at Close.
	wg       sync.WaitGroup
	syncWG   sync.WaitGroup
	stopSync chan struct{}
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", gen))
}

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.bin", gen))
}

// parseGen extracts the generation from a durable file name, reporting
// whether the name matches prefix-NNNNNNNN.ext.
func parseGen(name, prefix, ext string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix+"-") || !strings.HasSuffix(name, ext) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix+"-"), ext)
	g, err := strconv.ParseUint(mid, 10, 64)
	return g, err == nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
// Errors are ignored: not every filesystem supports directory fsync, and
// the write-path fsyncs already cover the data itself.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Open replays the durable state under cfg.Dir (creating it if absent) and
// returns a Store positioned to append. Torn WAL tails are truncated,
// corrupt records dropped and counted — recovery refuses nothing short of
// an unreadable filesystem.
func Open(cfg Config) (*Store, *Recovery, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, nil, fmt.Errorf("durable: Config.Dir is required")
	}
	start := time.Now()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	rec := &Recovery{}
	s := &Store{cfg: cfg, state: map[string]GraphRecord{}}

	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	var walGens, snapGens []uint64
	for _, e := range entries {
		if g, ok := parseGen(e.Name(), "wal", ".log"); ok {
			walGens = append(walGens, g)
		}
		if g, ok := parseGen(e.Name(), "snap", ".bin"); ok {
			snapGens = append(snapGens, g)
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			// Leftover from a compaction the crash interrupted.
			_ = os.Remove(filepath.Join(cfg.Dir, e.Name()))
		}
	}
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] < snapGens[j] })

	// Load the newest complete snapshot; incomplete or corrupt ones are
	// deleted and the next older tried.
	var snapGen uint64
	for i := len(snapGens) - 1; i >= 0; i-- {
		g := snapGens[i]
		b, err := os.ReadFile(snapPath(cfg.Dir, g))
		if err != nil {
			rec.DroppedRecords++
			continue
		}
		graphs, complete, dropped := scanSnapshot(b)
		if !complete {
			// A snapshot missing its end marker never finished its rename
			// dance cleanly; it cannot be trusted as a baseline.
			rec.DroppedRecords += dropped + len(graphs)
			_ = os.Remove(snapPath(cfg.Dir, g))
			continue
		}
		rec.DroppedRecords += dropped
		rec.SnapshotRecords = len(graphs)
		for _, gr := range graphs {
			s.state[gr.FP] = gr
		}
		snapGen = g
		break
	}

	// Replay WAL generations at or after the snapshot, oldest first.
	replayed := 0
	for _, g := range walGens {
		if g < snapGen {
			_ = os.Remove(walPath(cfg.Dir, g)) // superseded by the snapshot
			continue
		}
		path := walPath(cfg.Dir, g)
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: reading %s: %w", path, err)
		}
		recs, validLen, truncated, dropped := scanWAL(b)
		rec.DroppedRecords += dropped
		if truncated {
			rec.Truncations++
			if err := os.Truncate(path, int64(validLen)); err != nil {
				return nil, nil, fmt.Errorf("durable: truncating torn tail of %s: %w", path, err)
			}
		}
		rec.WALRecords += len(recs)
		for _, r := range recs {
			replayed++
			if cfg.ReplayLogEvery > 0 && cfg.Logf != nil && replayed%cfg.ReplayLogEvery == 0 {
				cfg.Logf("durable: WAL replay progress: %d records, %d graphs live, gen %d", replayed, len(s.state), g)
			}
			switch r.kind {
			case recGraphAdd:
				s.state[r.graph.FP] = r.graph
			case recGraphRemove:
				delete(s.state, r.fp)
			case recGraphDelta:
				prev, ok := s.state[r.delta.ID]
				if !ok {
					// Delta for a graph whose add record was itself dropped:
					// nothing to apply it to.
					rec.DroppedRecords++
					continue
				}
				ng, err := applyOps(prev.Graph, r.delta)
				if err != nil {
					// The ops no longer match the graph — the entry has
					// diverged from what was acknowledged. Serving a wrong
					// graph is worse than serving none: drop the entry.
					rec.DroppedRecords++
					delete(s.state, r.delta.ID)
					continue
				}
				s.state[r.delta.ID] = GraphRecord{
					FP: prev.FP, Name: prev.Name, Gen: r.delta.Gen,
					CFP: r.delta.PostFP, Graph: ng,
				}
			}
		}
	}

	// Position the active WAL: append to the newest surviving generation,
	// or start generation max(snapGen,1) fresh.
	if n := len(walGens); n > 0 && walGens[n-1] >= snapGen {
		s.gen = walGens[n-1]
		f, err := os.OpenFile(walPath(cfg.Dir, s.gen), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("durable: %w", err)
		}
		s.wal, s.walSize = f, st.Size()
		if s.walSize < fileHeaderLen {
			// The header itself was torn (crash between create and header
			// write): start the file over.
			f.Close()
			if err := s.createWAL(s.gen); err != nil {
				return nil, nil, err
			}
		}
	} else {
		s.gen = max(snapGen, 1)
		if err := s.createWAL(s.gen); err != nil {
			return nil, nil, err
		}
	}

	for _, gr := range s.state {
		rec.Graphs = append(rec.Graphs, gr)
	}
	sort.Slice(rec.Graphs, func(i, j int) bool { return rec.Graphs[i].FP < rec.Graphs[j].FP })
	rec.Duration = time.Since(start)

	if cfg.Sync == SyncInterval {
		s.stopSync = make(chan struct{})
		s.syncWG.Add(1)
		go s.syncLoop()
	}
	return s, rec, nil
}

// createWAL starts a fresh WAL generation: header written and synced before
// any record can land in it.
func (s *Store) createWAL(gen uint64) error {
	f, err := os.OpenFile(walPath(s.cfg.Dir, gen), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write(fileHeader(fileKindWAL)); err != nil {
		f.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: %w", err)
	}
	syncDir(s.cfg.Dir)
	s.wal, s.walSize = f, fileHeaderLen
	return nil
}

// AppendAdd logs a graph registration. Under SyncAlways it has been fsync'd
// when the call returns — the service may acknowledge the client.
func (s *Store) AppendAdd(fp, name string, g *bicc.Graph) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store closed")
	}
	rec := GraphRecord{FP: fp, Name: name, CFP: fp, Graph: g}
	if err := s.appendLocked(recGraphAdd, encodeGraph(rec)); err != nil {
		return err
	}
	s.state[fp] = rec
	s.maybeCompactLocked()
	return nil
}

// AppendDelta logs a mutation batch against a registered graph and swaps the
// durable entry to the post-application graph at its new generation. Under
// SyncAlways the record has been fsync'd when the call returns — the service
// may acknowledge the mutation. newGraph is the already-applied edge list
// (the store persists the ops, not the graph; snapshots fold the applied
// graph in via the v2 payload).
func (s *Store) AppendDelta(rec DeltaRecord, newGraph *bicc.Graph) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store closed")
	}
	prev, ok := s.state[rec.ID]
	if !ok {
		return fmt.Errorf("durable: delta for unknown graph %s", rec.ID)
	}
	if err := s.appendLocked(recGraphDelta, EncodeDelta(rec)); err != nil {
		return err
	}
	s.state[rec.ID] = GraphRecord{
		FP: rec.ID, Name: prev.Name, Gen: rec.Gen, CFP: rec.PostFP, Graph: newGraph,
	}
	s.maybeCompactLocked()
	return nil
}

// AppendRemove logs a graph removal (explicit delete or budget eviction).
func (s *Store) AppendRemove(fp string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store closed")
	}
	if err := s.appendLocked(recGraphRemove, []byte(fp)); err != nil {
		return err
	}
	delete(s.state, fp)
	s.maybeCompactLocked()
	return nil
}

// appendLocked writes one framed record to the WAL. The frame header and
// payload are separate write(2) calls with an injection site between them,
// so a crash harness can manufacture a torn record at will. On a write
// error the file is truncated back to the last good record so the WAL
// never carries a misframed tail into later appends.
func (s *Store) appendLocked(kind byte, payload []byte) error {
	seq := s.seq
	s.seq++
	hdr := frameHeader(kind, payload)
	goodSize := s.walSize
	if _, err := s.wal.Write(hdr); err != nil {
		s.rollbackLocked(goodSize)
		return fmt.Errorf("durable: wal append: %w", err)
	}
	faults.Inject(nil, siteWALHeader, 0, seq)
	if _, err := s.wal.Write(payload); err != nil {
		s.rollbackLocked(goodSize)
		return fmt.Errorf("durable: wal append: %w", err)
	}
	faults.Inject(nil, siteWALPayload, 0, seq)
	if s.cfg.Sync == SyncAlways {
		t0 := time.Now()
		if err := s.wal.Sync(); err != nil {
			s.rollbackLocked(goodSize)
			return fmt.Errorf("durable: wal fsync: %w", err)
		}
		if s.cfg.FsyncObserve != nil {
			s.cfg.FsyncObserve(time.Since(t0))
		}
	}
	faults.Inject(nil, siteWALSync, 0, seq)
	s.walSize += int64(len(hdr) + len(payload))
	s.appends.Add(1)
	if s.appendObs != nil {
		s.appendObs(kind, payload)
	}
	return nil
}

// rollbackLocked cuts the WAL back to size after a failed append.
func (s *Store) rollbackLocked(size int64) {
	s.walErrors.Add(1)
	_ = s.wal.Truncate(size)
	_, _ = s.wal.Seek(size, 0)
}

// maybeCompactLocked starts a background compaction when the WAL has grown
// past the configured threshold. The WAL switch happens here, atomically
// with the state copy, which is what makes the snapshot exactly equal to
// the replay of every prior generation.
func (s *Store) maybeCompactLocked() {
	if s.compacting || s.walSize < s.cfg.CompactBytes {
		return
	}
	old, oldGen, state, err := s.rotateLocked()
	if err != nil {
		s.compactErrors.Add(1)
		return
	}
	s.compacting = true
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.writeSnapshot(old, oldGen, state)
		s.mu.Lock()
		s.compacting = false
		s.mu.Unlock()
	}()
}

// rotateLocked opens generation gen+1, switches appends onto it, and
// returns the completed previous WAL plus a copy of the state it implies.
func (s *Store) rotateLocked() (old *os.File, oldGen uint64, state []GraphRecord, err error) {
	old, oldGen = s.wal, s.gen
	prevSize := s.walSize
	if err := s.createWAL(s.gen + 1); err != nil {
		// Keep appending to the old generation; compaction will retry once
		// the next append crosses the threshold again.
		s.wal, s.walSize = old, prevSize
		return nil, 0, nil, err
	}
	s.gen++
	state = make([]GraphRecord, 0, len(s.state))
	for _, gr := range s.state {
		state = append(state, gr)
	}
	sort.Slice(state, func(i, j int) bool { return state[i].FP < state[j].FP })
	return old, oldGen, state, nil
}

// writeSnapshot persists state as snap-<gen> (gen = the new WAL generation)
// via the tmp+fsync+rename dance, then retires every older generation.
func (s *Store) writeSnapshot(old *os.File, oldGen uint64, state []GraphRecord) {
	_ = old.Sync()
	_ = old.Close()
	gen := oldGen + 1
	tmp := snapPath(s.cfg.Dir, gen) + ".tmp"
	ok := func() bool {
		f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return false
		}
		defer f.Close()
		if _, err := f.Write(fileHeader(fileKindSnapshot)); err != nil {
			return false
		}
		for i, gr := range state {
			payload := encodeGraph(gr)
			if _, err := f.Write(frameHeader(recGraphAdd, payload)); err != nil {
				return false
			}
			faults.Inject(nil, siteSnapWrite, 0, i)
			if _, err := f.Write(payload); err != nil {
				return false
			}
		}
		var count [4]byte
		putU32(count[:], uint32(len(state)))
		end := frameHeader(recSnapEnd, count[:])
		if _, err := f.Write(append(end, count[:]...)); err != nil {
			return false
		}
		return f.Sync() == nil
	}()
	if !ok {
		s.compactErrors.Add(1)
		_ = os.Remove(tmp)
		return
	}
	faults.Inject(nil, siteSnapRename, 0, int(gen))
	if err := os.Rename(tmp, snapPath(s.cfg.Dir, gen)); err != nil {
		s.compactErrors.Add(1)
		_ = os.Remove(tmp)
		return
	}
	syncDir(s.cfg.Dir)
	s.compactions.Add(1)
	// Older generations are now fully contained in the new snapshot.
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if g, ok := parseGen(e.Name(), "wal", ".log"); ok && g < gen {
			_ = os.Remove(filepath.Join(s.cfg.Dir, e.Name()))
		}
		if g, ok := parseGen(e.Name(), "snap", ".bin"); ok && g < gen {
			_ = os.Remove(filepath.Join(s.cfg.Dir, e.Name()))
		}
	}
}

// Compact forces a synchronous compaction cycle (tests and operators; the
// production trigger is the byte threshold).
func (s *Store) Compact() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("durable: store closed")
	}
	if s.compacting {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	old, oldGen, state, err := s.rotateLocked()
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()
	s.writeSnapshot(old, oldGen, state)
	return nil
}

// syncLoop is the SyncInterval ticker: group-commit fsyncs off the append
// path.
func (s *Store) syncLoop() {
	defer s.syncWG.Done()
	t := time.NewTicker(s.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSync:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				t0 := time.Now()
				if s.wal.Sync() == nil && s.cfg.FsyncObserve != nil {
					s.cfg.FsyncObserve(time.Since(t0))
				}
			}
			s.mu.Unlock()
		}
	}
}

// Close flushes and closes the WAL, waiting out any in-flight compaction
// first. After a clean Close the next Open replays without truncating
// anything.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.stopSync != nil {
		close(s.stopSync)
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.syncWG.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if e := s.wal.Sync(); e != nil {
		err = e
	}
	if e := s.wal.Close(); e != nil && err == nil {
		err = e
	}
	return err
}

// --- introspection ----------------------------------------------------------

// Len returns the number of live entries in the durable state.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.state)
}

// WALBytes returns the active WAL's size in bytes.
func (s *Store) WALBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walSize
}

// Generation returns the active WAL generation.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Appends returns how many records have been appended since Open.
func (s *Store) Appends() int64 { return s.appends.Load() }

// WALErrors returns how many appends failed and were rolled back.
func (s *Store) WALErrors() int64 { return s.walErrors.Load() }

// Compactions returns how many snapshot compactions have completed.
func (s *Store) Compactions() int64 { return s.compactions.Load() }

// CompactErrors returns how many compaction attempts failed.
func (s *Store) CompactErrors() int64 { return s.compactErrors.Load() }

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// --- scanners (shared with the fuzz targets) --------------------------------

// walRec is one decoded WAL record.
type walRec struct {
	kind  byte
	graph GraphRecord // for recGraphAdd
	fp    string      // for recGraphRemove
	delta DeltaRecord // for recGraphDelta
}

// scanWAL decodes a WAL image. It returns the decoded records, the byte
// length of the valid prefix (file header + complete well-formed frames),
// whether the tail needs truncation, and how many structurally corrupt
// record bodies were dropped. Frame-level damage (torn or CRC-bad) stops
// the scan — everything after an unframeable point is unrecoverable noise —
// while body-level damage (valid frame, undecodable payload) drops just
// that record and continues.
func scanWAL(b []byte) (recs []walRec, validLen int, truncated bool, dropped int) {
	if err := checkFileHeader(b, fileKindWAL); err != nil {
		return nil, 0, len(b) > 0, 0
	}
	off := fileHeaderLen
	for {
		kind, payload, n, err := nextRecord(b[off:])
		if err != nil || n == 0 {
			return recs, off, err != nil, dropped
		}
		switch kind {
		case recGraphAdd:
			gr, err := decodeGraph(payload)
			if err != nil {
				dropped++
			} else {
				recs = append(recs, walRec{kind: recGraphAdd, graph: gr})
			}
		case recGraphRemove:
			recs = append(recs, walRec{kind: recGraphRemove, fp: string(payload)})
		case recGraphDelta:
			dr, err := DecodeDelta(payload)
			if err != nil {
				dropped++
			} else {
				recs = append(recs, walRec{kind: recGraphDelta, delta: dr})
			}
		default:
			// An unknown record kind with a valid CRC is a future format or
			// scribbled disk; skip the record, keep its bytes as valid.
			dropped++
		}
		off += n
	}
}

// applyOps mechanically replays a delta batch onto a graph: deletes remove
// the edge preserving the order of the remainder, inserts append at the end —
// the same semantics the service validated before acknowledging the record.
// An op that no longer matches the edge list is an error; the caller decides
// what to do with the diverged entry.
func applyOps(g *bicc.Graph, rec DeltaRecord) (*bicc.Graph, error) {
	if g == nil {
		return nil, fmt.Errorf("durable: delta replay onto nil graph")
	}
	edges := append([]graph.Edge(nil), g.Edges()...)
	index := make(map[uint64]int, len(edges))
	for i, e := range edges {
		index[graph.CanonKey(e.U, e.V)] = i
	}
	for i, op := range rec.Ops {
		key := graph.CanonKey(op.U, op.V)
		at, present := index[key]
		if op.Del {
			if !present {
				return nil, fmt.Errorf("durable: delta op %d deletes absent edge (%d,%d)", i, op.U, op.V)
			}
			edges = append(edges[:at], edges[at+1:]...)
			delete(index, key)
			for j := at; j < len(edges); j++ {
				index[graph.CanonKey(edges[j].U, edges[j].V)] = j
			}
		} else {
			if present {
				return nil, fmt.Errorf("durable: delta op %d inserts duplicate edge (%d,%d)", i, op.U, op.V)
			}
			index[key] = len(edges)
			edges = append(edges, graph.Edge{U: op.U, V: op.V})
		}
	}
	return bicc.NewGraph(int(rec.NewN), edges)
}

// scanSnapshot decodes a snapshot image. complete reports that the end
// marker was present with a matching record count — an incomplete snapshot
// must not serve as a recovery baseline.
func scanSnapshot(b []byte) (graphs []GraphRecord, complete bool, dropped int) {
	if err := checkFileHeader(b, fileKindSnapshot); err != nil {
		return nil, false, 0
	}
	off := fileHeaderLen
	for {
		kind, payload, n, err := nextRecord(b[off:])
		if err != nil || n == 0 {
			return graphs, false, dropped
		}
		off += n
		switch kind {
		case recGraphAdd:
			gr, err := decodeGraph(payload)
			if err != nil {
				dropped++
				continue
			}
			graphs = append(graphs, gr)
		case recSnapEnd:
			if len(payload) != 4 {
				return graphs, false, dropped
			}
			want := uint32(payload[0]) | uint32(payload[1])<<8 | uint32(payload[2])<<16 | uint32(payload[3])<<24
			return graphs, uint32(len(graphs)+dropped) == want, dropped
		default:
			dropped++
		}
	}
}
