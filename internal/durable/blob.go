package durable

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// BlobSpill is a disk tier for opaque, caller-encoded payloads — one
// CRC-framed file per key, with byte-budget accounting and LRU eviction.
// The shard layer demotes per-block query state here; unlike Spill it does
// not interpret the payload, so any subsystem with its own (fuzzed,
// torn-byte-safe) codec can use it.
//
// Like Spill, blob files are a cache, not a log: writes are not fsync'd. A
// record torn by a crash fails its frame CRC on the next read and is
// deleted — the cost is a rebuild, never corruption. The key is stored
// inside the frame as well as in the filename, so a file renamed by hand
// is rejected instead of served under the wrong key.
type BlobSpill struct {
	mu      sync.Mutex
	dir     string
	budget  int64 // disk budget in bytes; <= 0 means unlimited
	bytes   int64
	clock   int64
	entries map[string]*spillEntry

	writes    atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	corrupt   atomic.Int64
}

// blobFile maps a key to its file path. Callers must use filesystem-safe
// keys (the shard layer's are fingerprint-derived hex plus '-').
func (s *BlobSpill) blobFile(key string) string {
	return filepath.Join(s.dir, key+".blob")
}

// encodeBlob renders the record payload: [keyLen:u32][key][bytes].
func encodeBlob(key string, payload []byte) []byte {
	buf := make([]byte, 0, 4+len(key)+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = append(buf, payload...)
	return buf
}

// decodeBlob parses an encodeBlob payload.
func decodeBlob(b []byte) (key string, payload []byte, err error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("%w: blob key length", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(b)
	if uint64(n) > uint64(len(b)-4) {
		return "", nil, fmt.Errorf("%w: blob key", ErrCorrupt)
	}
	return string(b[4 : 4+n]), b[4+n:], nil
}

// readBlobFile reads and CRC-validates one blob file.
func readBlobFile(path string) (key string, payload []byte, size int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", nil, 0, err
	}
	if err := checkFileHeader(b, fileKindBlob); err != nil {
		return "", nil, 0, err
	}
	kind, rec, n, err := nextRecord(b[fileHeaderLen:])
	if err != nil {
		return "", nil, 0, err
	}
	if n == 0 || kind != recBlob || fileHeaderLen+n != len(b) {
		return "", nil, 0, fmt.Errorf("%w: blob file framing", ErrCorrupt)
	}
	key, payload, err = decodeBlob(rec)
	return key, payload, int64(len(b)), err
}

// OpenBlobSpill scans dir (creating it if absent), drops files that fail
// CRC, decode, or key/filename agreement, and returns the tier plus the
// keys it holds, sorted. budget <= 0 means unlimited.
func OpenBlobSpill(dir string, budget int64) (*BlobSpill, []string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	s := &BlobSpill{dir: dir, budget: budget, entries: map[string]*spillEntry{}}
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	var keys []string
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".blob") {
			continue
		}
		path := filepath.Join(dir, f.Name())
		key, _, size, err := readBlobFile(path)
		if err != nil || key != strings.TrimSuffix(f.Name(), ".blob") {
			s.corrupt.Add(1)
			_ = os.Remove(path)
			continue
		}
		s.entries[key] = &spillEntry{bytes: size}
		s.bytes += size
		keys = append(keys, key)
	}
	sort.Strings(keys)
	s.evictOverBudget()
	return s, keys, nil
}

// Put demotes one payload to disk under key. The write is torn-tolerant,
// not atomic: a crash mid-Put leaves a file the next read or Open discards
// by CRC.
func (s *BlobSpill) Put(key string, payload []byte) error {
	rec := encodeBlob(key, payload)
	path := s.blobFile(key)

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: blob: %w", err)
	}
	_, err = f.Write(fileHeader(fileKindBlob))
	if err == nil {
		_, err = f.Write(frameHeader(recBlob, rec))
	}
	if err == nil {
		_, err = f.Write(rec)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(path)
		return fmt.Errorf("durable: blob: %w", err)
	}
	size := int64(fileHeaderLen + frameHeaderLen + len(rec))

	s.mu.Lock()
	if old, ok := s.entries[key]; ok {
		s.bytes -= old.bytes
	}
	s.clock++
	s.entries[key] = &spillEntry{bytes: size, lastUse: s.clock}
	s.bytes += size
	s.evictOverBudget()
	s.mu.Unlock()
	s.writes.Add(1)
	return nil
}

// Get promotes a spilled payload: reads, CRC-validates, and returns it. A
// corrupt or cross-wired file is deleted and reported as a miss.
func (s *BlobSpill) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	s.clock++
	e.lastUse = s.clock
	s.mu.Unlock()

	k, payload, _, err := readBlobFile(s.blobFile(key))
	if err != nil || k != key {
		s.corrupt.Add(1)
		s.Remove(key)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// Remove drops a spilled payload and its file.
func (s *BlobSpill) Remove(key string) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.bytes -= e.bytes
		delete(s.entries, key)
	}
	s.mu.Unlock()
	_ = os.Remove(s.blobFile(key))
}

// evictOverBudget drops least-recently-used payloads until the disk budget
// is met. Caller holds mu (or is still single-threaded in OpenBlobSpill).
func (s *BlobSpill) evictOverBudget() {
	if s.budget <= 0 {
		return
	}
	for s.bytes > s.budget && len(s.entries) > 0 {
		var victim string
		var oldest int64
		first := true
		for k, e := range s.entries {
			if first || e.lastUse < oldest {
				victim, oldest, first = k, e.lastUse, false
			}
		}
		s.bytes -= s.entries[victim].bytes
		delete(s.entries, victim)
		_ = os.Remove(s.blobFile(victim))
		s.evictions.Add(1)
	}
}

// Len returns the number of spilled payloads.
func (s *BlobSpill) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the disk occupancy of the tier.
func (s *BlobSpill) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Writes, Hits, Misses, Evictions, and Corrupt expose the tier's counters.
func (s *BlobSpill) Writes() int64    { return s.writes.Load() }
func (s *BlobSpill) Hits() int64      { return s.hits.Load() }
func (s *BlobSpill) Misses() int64    { return s.misses.Load() }
func (s *BlobSpill) Evictions() int64 { return s.evictions.Load() }
func (s *BlobSpill) Corrupt() int64   { return s.corrupt.Load() }
