package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestBlobSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, keys, err := OpenBlobSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("fresh dir reported keys %v", keys)
	}
	payload := []byte{1, 2, 3, 0xff, 0}
	if err := s.Put("abc-idx", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("abc-idx")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %v, %v; want %v", got, ok, payload)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("Get of absent key succeeded")
	}
	if s.Misses() != 1 || s.Hits() != 1 || s.Writes() != 1 {
		t.Fatalf("counters writes=%d hits=%d misses=%d", s.Writes(), s.Hits(), s.Misses())
	}

	// Reopen: the payload survives the restart and is re-announced.
	s2, keys, err := OpenBlobSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "abc-idx" {
		t.Fatalf("reopen keys = %v", keys)
	}
	got, ok = s2.Get("abc-idx")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("reopened Get = %v, %v", got, ok)
	}

	s2.Remove("abc-idx")
	if _, ok := s2.Get("abc-idx"); ok {
		t.Fatal("Get after Remove succeeded")
	}
	if s2.Len() != 0 || s2.Bytes() != 0 {
		t.Fatalf("after Remove: len=%d bytes=%d", s2.Len(), s2.Bytes())
	}
}

func TestBlobSpillRejectsTornAndCrossWired(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenBlobSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", []byte("payload-one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k2", []byte("payload-two")); err != nil {
		t.Fatal(err)
	}

	// Tear k1's tail: the CRC must reject it at Get and delete the file.
	path := filepath.Join(dir, "k1.blob")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Fatal("torn blob served")
	}
	if s.Corrupt() == 0 {
		t.Fatal("torn blob not counted corrupt")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("torn blob file not deleted")
	}

	// Cross-wire k2 by renaming it: the embedded key must reject it.
	if err := os.Rename(filepath.Join(dir, "k2.blob"), filepath.Join(dir, "k9.blob")); err != nil {
		t.Fatal(err)
	}
	s2, keys, err := OpenBlobSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("cross-wired blob accepted at open: %v", keys)
	}
	if s2.Corrupt() == 0 {
		t.Fatal("cross-wired blob not counted corrupt")
	}
}

func TestBlobSpillBudgetEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	payload := make([]byte, 100)
	// Room for roughly two records under the budget.
	s, _, err := OpenBlobSpill(dir, 280)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	if s.Evictions() == 0 {
		t.Fatal("no evictions under budget pressure")
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := s.Get("c"); !ok {
		t.Fatal("newest entry evicted")
	}
	if s.Bytes() > 280 {
		t.Fatalf("bytes %d over budget", s.Bytes())
	}
}
