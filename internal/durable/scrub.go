package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bicc/internal/faults"
)

// Bit-rot injection sites on the verify paths. Unlike the durable.* write
// sites, these fire on the in-memory image about to be validated: a
// KindCorrupt rule flips one deterministic bit there, so scrub tests can
// exercise detection and repair without scribbling on real files.
var (
	// SiteWALVerify covers WAL segment and snapshot image verification.
	// iter = file index within the scrub pass.
	SiteWALVerify = faults.RegisterSite("wal.verify", false)
	// SiteSpillVerify covers result-spill image verification. iter = key
	// index within the scrub pass.
	SiteSpillVerify = faults.RegisterSite("spill.verify", false)
	// SiteShardVerify covers shard-blob image verification. iter = key
	// index within the scrub pass.
	SiteShardVerify = faults.RegisterSite("shard.verify", false)
)

// ScrubFile describes one store-owned file for the scrubber.
type ScrubFile struct {
	Path string
	// Snapshot reports whether the file is a snapshot image (else a WAL
	// segment).
	Snapshot bool
	// Limit bounds verification to the file's first Limit bytes: the active
	// WAL grows under the scrubber's feet, and only the completed-append
	// prefix captured here is promised well-formed. 0 means the whole file.
	Limit int64
}

// ScrubFiles enumerates the store's on-disk artifacts for a scrub pass.
// Files may rotate or be retired by compaction after the listing; callers
// treat a vanished file as clean, not corrupt.
func (s *Store) ScrubFiles() []ScrubFile {
	s.mu.Lock()
	activeGen, activeLen := s.gen, s.walSize
	s.mu.Unlock()
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return nil
	}
	var out []ScrubFile
	for _, e := range entries {
		if g, ok := parseGen(e.Name(), "wal", ".log"); ok {
			f := ScrubFile{Path: filepath.Join(s.cfg.Dir, e.Name())}
			if g == activeGen {
				f.Limit = activeLen
			}
			out = append(out, f)
		}
		if _, ok := parseGen(e.Name(), "snap", ".bin"); ok {
			out = append(out, ScrubFile{Path: filepath.Join(s.cfg.Dir, e.Name()), Snapshot: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// CheckWALImage re-validates a WAL image (or a completed-append prefix of
// the active segment): every frame must parse with a matching CRC and every
// record body must decode. iter feeds the wal.verify injection site.
func CheckWALImage(b []byte, iter int) error {
	faults.InjectCorrupt(SiteWALVerify, 0, iter, b)
	_, validLen, truncated, dropped := scanWAL(b)
	if truncated || validLen != len(b) {
		return fmt.Errorf("%w: wal frame damage at offset %d", ErrCorrupt, validLen)
	}
	if dropped > 0 {
		return fmt.Errorf("%w: %d undecodable wal record bodies", ErrCorrupt, dropped)
	}
	return nil
}

// CheckSnapshotImage re-validates a snapshot image: complete (end marker
// with matching count) and every record decodable. iter feeds the
// wal.verify injection site — snapshots are the same durable tier.
func CheckSnapshotImage(b []byte, iter int) error {
	faults.InjectCorrupt(SiteWALVerify, 0, iter, b)
	_, complete, dropped := scanSnapshot(b)
	if !complete {
		return fmt.Errorf("%w: snapshot incomplete or misframed", ErrCorrupt)
	}
	if dropped > 0 {
		return fmt.Errorf("%w: %d undecodable snapshot records", ErrCorrupt, dropped)
	}
	return nil
}

// CheckSpillImage re-validates a result-spill image for key and returns the
// decoded record so callers can sample-verify its content against the live
// graph. iter feeds the spill.verify injection site.
func CheckSpillImage(b []byte, key string, iter int) (ResultRecord, error) {
	faults.InjectCorrupt(SiteSpillVerify, 0, iter, b)
	if err := checkFileHeader(b, fileKindResult); err != nil {
		return ResultRecord{}, err
	}
	kind, payload, n, err := nextRecord(b[fileHeaderLen:])
	if err != nil {
		return ResultRecord{}, err
	}
	if n == 0 || kind != recResult || fileHeaderLen+n != len(b) {
		return ResultRecord{}, fmt.Errorf("%w: spill file framing", ErrCorrupt)
	}
	rec, err := DecodeResult(payload)
	if err != nil {
		return ResultRecord{}, err
	}
	if rec.Key() != key {
		return ResultRecord{}, fmt.Errorf("%w: spill key %q in file named %q", ErrCorrupt, rec.Key(), key)
	}
	return rec, nil
}

// CheckBlobImage re-validates a shard-blob image for key. iter feeds the
// shard.verify injection site.
func CheckBlobImage(b []byte, key string, iter int) error {
	faults.InjectCorrupt(SiteShardVerify, 0, iter, b)
	if err := checkFileHeader(b, fileKindBlob); err != nil {
		return err
	}
	kind, rec, n, err := nextRecord(b[fileHeaderLen:])
	if err != nil {
		return err
	}
	if n == 0 || kind != recBlob || fileHeaderLen+n != len(b) {
		return fmt.Errorf("%w: blob file framing", ErrCorrupt)
	}
	k, _, err := decodeBlob(rec)
	if err != nil {
		return err
	}
	if k != key {
		return fmt.Errorf("%w: blob key %q in file named %q", ErrCorrupt, k, key)
	}
	return nil
}

// Keys returns every key occupying the spill tier's directory: tracked
// entries plus any stray .res files (bit-rotted or hand-planted files the
// tier no longer indexes still hold disk and must be scrubbed), sorted.
func (s *Spill) Keys() []string {
	s.mu.Lock()
	set := make(map[string]bool, len(s.entries))
	for k := range s.entries {
		set[k] = true
	}
	s.mu.Unlock()
	if files, err := os.ReadDir(s.dir); err == nil {
		for _, f := range files {
			if !f.IsDir() && strings.HasSuffix(f.Name(), ".res") {
				set[strings.TrimSuffix(f.Name(), ".res")] = true
			}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Path returns the file path a key is spilled at.
func (s *Spill) Path(key string) string { return s.spillFile(key) }

// Keys returns every key occupying the blob tier's directory — tracked
// entries plus stray .blob files — sorted.
func (s *BlobSpill) Keys() []string {
	s.mu.Lock()
	set := make(map[string]bool, len(s.entries))
	for k := range s.entries {
		set[k] = true
	}
	s.mu.Unlock()
	if files, err := os.ReadDir(s.dir); err == nil {
		for _, f := range files {
			if !f.IsDir() && strings.HasSuffix(f.Name(), ".blob") {
				set[strings.TrimSuffix(f.Name(), ".blob")] = true
			}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Path returns the file path a key is spilled at.
func (s *BlobSpill) Path(key string) string { return s.blobFile(key) }
