package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bicc"
)

// openT opens a store in dir, failing the test on error.
func openT(t *testing.T, cfg Config) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, rec
}

// addGraphs appends n distinct graphs and returns fp -> graph.
func addGraphs(t *testing.T, s *Store, n int) map[string]*bicc.Graph {
	t.Helper()
	out := map[string]*bicc.Graph{}
	for i := 0; i < n; i++ {
		g := testGraph(t, int64(100+i))
		fp := fmt.Sprintf("fp-%04d", i)
		if err := s.AppendAdd(fp, fmt.Sprintf("g%d", i), g); err != nil {
			t.Fatal(err)
		}
		out[fp] = g
	}
	return out
}

func sameGraphs(t *testing.T, rec *Recovery, want map[string]*bicc.Graph) {
	t.Helper()
	if len(rec.Graphs) != len(want) {
		t.Fatalf("recovered %d graphs, want %d", len(rec.Graphs), len(want))
	}
	for _, gr := range rec.Graphs {
		g, ok := want[gr.FP]
		if !ok {
			t.Fatalf("recovered unexpected fp %s", gr.FP)
		}
		if gr.Graph.NumEdges() != g.NumEdges() || gr.Graph.NumVertices() != g.NumVertices() {
			t.Fatalf("%s: recovered %d/%d, want %d/%d", gr.FP,
				gr.Graph.NumVertices(), gr.Graph.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		for i, e := range g.Edges() {
			if gr.Graph.Edges()[i] != e {
				t.Fatalf("%s: edge %d differs", gr.FP, i)
			}
		}
	}
}

func TestStoreRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, rec := openT(t, Config{Dir: dir})
	if len(rec.Graphs) != 0 || rec.Truncations != 0 {
		t.Fatalf("fresh dir recovery: %+v", rec)
	}
	want := addGraphs(t, s, 5)
	if err := s.AppendRemove("fp-0003"); err != nil {
		t.Fatal(err)
	}
	delete(want, "fp-0003")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2 := openT(t, Config{Dir: dir})
	defer s2.Close()
	if rec2.Truncations != 0 || rec2.DroppedRecords != 0 {
		t.Fatalf("clean close must not need repair: %+v", rec2)
	}
	sameGraphs(t, rec2, want)
}

// TestStoreRecoversFromAnyTruncation is the byte-boundary contract: cut the
// WAL anywhere and recovery must come back with a clean prefix of the
// acknowledged writes — never an error, never a mangled graph.
func TestStoreRecoversFromAnyTruncation(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, Config{Dir: dir})
	want := addGraphs(t, s, 4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal := walPath(dir, 1)
	full, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}

	step := 1
	if testing.Short() {
		step = 97
	}
	for cut := 0; cut <= len(full); cut += step {
		sub := t.TempDir()
		if err := os.WriteFile(walPath(sub, 1), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, rec, err := Open(Config{Dir: sub})
		if err != nil {
			t.Fatalf("cut=%d: Open failed: %v", cut, err)
		}
		// Every recovered graph must be one of the acknowledged ones,
		// byte-identical.
		for _, gr := range rec.Graphs {
			g, ok := want[gr.FP]
			if !ok {
				t.Fatalf("cut=%d: phantom fp %s", cut, gr.FP)
			}
			for i, e := range g.Edges() {
				if gr.Graph.Edges()[i] != e {
					t.Fatalf("cut=%d: %s edge %d differs", cut, gr.FP, i)
				}
			}
		}
		if cut < len(full) && rec.Truncations == 0 && len(rec.Graphs) == len(want) {
			t.Fatalf("cut=%d: all graphs recovered with no truncation from a shortened WAL", cut)
		}
		// The store must accept appends after repair.
		if err := s2.AppendAdd("fp-after", "after", testGraph(t, 999)); err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		s2.Close()
		s3, rec3 := openT(t, Config{Dir: sub})
		found := false
		for _, gr := range rec3.Graphs {
			if gr.FP == "fp-after" {
				found = true
			}
		}
		if !found {
			t.Fatalf("cut=%d: append after repair did not survive reopen", cut)
		}
		s3.Close()
	}
}

// TestStoreDeltaReplayAcrossReopen proves the mutation record survives the
// full durability cycle: append deltas, reopen, and the recovered graph is
// the post-application edge list at the right generation — then compact and
// reopen again, proving snapshots fold the applied graph in.
func TestStoreDeltaReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, Config{Dir: dir})
	g := fuzzSeedGraph() // 5 vertices, edges (0,1)(1,2)(2,0)(2,3)(3,4)
	if err := s.AppendAdd("fp-d", "delta target", g); err != nil {
		t.Fatal(err)
	}
	// Batch 1: insert (3,5) growing the graph, delete (2,0).
	g1, err := applyOps(g, DeltaRecord{NewN: 6, Ops: []DeltaOp{
		{Del: false, U: 3, V: 5}, {Del: true, U: 2, V: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelta(DeltaRecord{ID: "fp-d", Gen: 1, NewN: 6, PostFP: "cfp-1",
		Ops: []DeltaOp{{Del: false, U: 3, V: 5}, {Del: true, U: 2, V: 0}}}, g1); err != nil {
		t.Fatal(err)
	}
	// Batch 2: re-insert (2,0) — lands at the end of the edge list.
	g2, err := applyOps(g1, DeltaRecord{NewN: 6, Ops: []DeltaOp{{Del: false, U: 2, V: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelta(DeltaRecord{ID: "fp-d", Gen: 2, NewN: 6, PostFP: "cfp-2",
		Ops: []DeltaOp{{Del: false, U: 2, V: 0}}}, g2); err != nil {
		t.Fatal(err)
	}
	// A delta against an unregistered graph is refused.
	if err := s.AppendDelta(DeltaRecord{ID: "nope", Gen: 1, NewN: 3}, g2); err == nil {
		t.Fatal("AppendDelta accepted an unknown graph id")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	check := func(rec *Recovery) {
		t.Helper()
		if len(rec.Graphs) != 1 {
			t.Fatalf("recovered %d graphs, want 1", len(rec.Graphs))
		}
		gr := rec.Graphs[0]
		if gr.FP != "fp-d" || gr.Gen != 2 || gr.CFP != "cfp-2" {
			t.Fatalf("recovered fp=%s gen=%d cfp=%s", gr.FP, gr.Gen, gr.CFP)
		}
		if gr.Graph.NumVertices() != 6 {
			t.Fatalf("recovered %d vertices, want 6", gr.Graph.NumVertices())
		}
		wantEdges := g2.Edges()
		gotEdges := gr.Graph.Edges()
		if len(gotEdges) != len(wantEdges) {
			t.Fatalf("recovered %d edges, want %d", len(gotEdges), len(wantEdges))
		}
		for i := range wantEdges {
			if gotEdges[i] != wantEdges[i] {
				t.Fatalf("edge %d: %v, want %v (order must be preserved)", i, gotEdges[i], wantEdges[i])
			}
		}
	}

	s, rec := openT(t, Config{Dir: dir})
	check(rec)
	// Fold into a snapshot and recover from that instead of the WAL replay.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, rec = openT(t, Config{Dir: dir})
	if rec.SnapshotRecords != 1 {
		t.Fatalf("snapshot records %d, want 1", rec.SnapshotRecords)
	}
	check(rec)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCompactionPreservesStateAndShrinksWAL(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, Config{Dir: dir})
	want := addGraphs(t, s, 8)
	if err := s.AppendRemove("fp-0001"); err != nil {
		t.Fatal(err)
	}
	delete(want, "fp-0001")
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Compactions() != 1 {
		t.Fatalf("compactions = %d", s.Compactions())
	}
	if s.Generation() != 2 {
		t.Fatalf("generation = %d", s.Generation())
	}
	if got := s.WALBytes(); got != fileHeaderLen {
		t.Fatalf("post-compaction WAL is %d bytes, want %d", got, fileHeaderLen)
	}
	// Old generation files are retired.
	if _, err := os.Stat(walPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("wal-1 still present: %v", err)
	}
	// Writes after compaction land in the new generation.
	g := testGraph(t, 500)
	if err := s.AppendAdd("fp-new", "new", g); err != nil {
		t.Fatal(err)
	}
	want["fp-new"] = g
	s.Close()

	s2, rec := openT(t, Config{Dir: dir})
	defer s2.Close()
	sameGraphs(t, rec, want)
	if rec.SnapshotRecords != 7 {
		t.Fatalf("snapshot records = %d, want 7", rec.SnapshotRecords)
	}
}

func TestStoreAutoCompactsPastThreshold(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, Config{Dir: dir, CompactBytes: 2048})
	want := addGraphs(t, s, 12) // ~1 KiB per graph record: crosses the threshold
	// Compaction runs in the background once the WAL passes the threshold.
	deadline := time.Now().Add(10 * time.Second)
	for s.Compactions() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Compactions() == 0 {
		t.Fatal("no automatic compaction after exceeding CompactBytes")
	}
	if s.Generation() < 2 {
		t.Fatalf("generation = %d after auto compaction", s.Generation())
	}
	s.Close()
	s2, rec := openT(t, Config{Dir: dir})
	defer s2.Close()
	sameGraphs(t, rec, want)
}

func TestStoreIgnoresLeftoverTmpAndBadSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, Config{Dir: dir})
	want := addGraphs(t, s, 3)
	s.Close()
	// A compaction that died before rename leaves a tmp; one that tore its
	// snapshot leaves a file without the end marker. Neither may poison
	// recovery.
	if err := os.WriteFile(filepath.Join(dir, "snap-00000009.bin.tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	torn := append(fileHeader(fileKindSnapshot), frameHeader(recGraphAdd, []byte("x"))...)
	if err := os.WriteFile(snapPath(dir, 9), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, rec := openT(t, Config{Dir: dir})
	defer s2.Close()
	sameGraphs(t, rec, want)
	if _, err := os.Stat(filepath.Join(dir, "snap-00000009.bin.tmp")); !os.IsNotExist(err) {
		t.Fatal("tmp file not cleaned up")
	}
}

func TestStoreSyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncInterval, SyncNone} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			var fsyncs int
			s, _ := openT(t, Config{Dir: dir, Sync: mode,
				FsyncObserve: func(time.Duration) { fsyncs++ }})
			want := addGraphs(t, s, 2)
			s.Close()
			s2, rec := openT(t, Config{Dir: dir})
			defer s2.Close()
			sameGraphs(t, rec, want)
			if mode == SyncAlways && fsyncs < 2 {
				t.Fatalf("SyncAlways observed %d fsyncs", fsyncs)
			}
		})
	}
}

func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{"": SyncAlways, "always": SyncAlways,
		"interval": SyncInterval, "none": SyncNone} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncMode("bogus"); err == nil {
		t.Fatal("ParseSyncMode accepted bogus")
	}
}
