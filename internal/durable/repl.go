package durable

import (
	"fmt"
	"sort"

	"bicc"
)

// Replication-facing surface of the store. A primary bccd taps the WAL at
// the exact point records become durable (SetAppendObserver fires after the
// fsync that lets the service acknowledge the client), ships the raw frame
// payloads to standbys, and uses View to capture a consistent baseline for
// snapshot resync. A standby replays shipped payloads through the same
// decode/apply code recovery uses, then re-appends them to its OWN WAL via
// AppendState / AppendRemove / AppendDelta — so a standby's disk state is
// always a valid recovery image and promotion is just PR 4 recovery plus a
// role flip.

// Exported record kinds, as they appear on the replication stream. These are
// the WAL's own kind bytes: the wire format IS the WAL format.
const (
	RecGraphAdd    byte = recGraphAdd
	RecGraphRemove byte = recGraphRemove
	RecGraphDelta  byte = recGraphDelta
)

// EncodeGraphRecord renders a graph record exactly as the WAL stores it
// (v1/v2 layout chosen by generation), for snapshot-resync streams.
func EncodeGraphRecord(rec GraphRecord) []byte { return encodeGraph(rec) }

// DecodeGraphRecord parses a graph record payload, re-validating the graph
// through bicc.NewGraph like recovery does.
func DecodeGraphRecord(b []byte) (GraphRecord, error) { return decodeGraph(b) }

// ApplyDelta replays one delta batch onto a graph with recovery's semantics:
// deletes must match a live edge, inserts must be absent, order preserved.
func ApplyDelta(g *bicc.Graph, rec DeltaRecord) (*bicc.Graph, error) { return applyOps(g, rec) }

// SetAppendObserver installs fn to be called with every record's (kind,
// payload) immediately after the record is durable (post-fsync under
// SyncAlways) and before the appending call returns. fn runs under the
// store's mutex: invocations are totally ordered and match the WAL's record
// order exactly, and no append can interleave with a View callback. fn must
// not call back into the store and must not block.
func (s *Store) SetAppendObserver(fn func(kind byte, payload []byte)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendObs = fn
}

// View calls fn with a sorted copy of the live durable state while holding
// the store's mutex, so the caller can pair the state with a replication
// sequence number knowing no append lands in between. fn must not call back
// into the store.
func (s *Store) View(fn func(state []GraphRecord)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	state := make([]GraphRecord, 0, len(s.state))
	for _, gr := range s.state {
		state = append(state, gr)
	}
	sort.Slice(state, func(i, j int) bool { return state[i].FP < state[j].FP })
	fn(state)
}

// AppendState logs a graph record preserving its generation and content
// fingerprint — the standby-side counterpart of AppendAdd, which is
// upload-shaped (gen 0, CFP == FP). Used when replaying a replicated add or
// installing a resync baseline.
func (s *Store) AppendState(rec GraphRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store closed")
	}
	if rec.CFP == "" {
		rec.CFP = rec.FP
	}
	if err := s.appendLocked(recGraphAdd, encodeGraph(rec)); err != nil {
		return err
	}
	s.state[rec.FP] = rec
	s.maybeCompactLocked()
	return nil
}
