package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"bicc/internal/faults"
)

// Spill is the disk tier of the result cache: CRC-framed result records,
// one file per cache key, with byte-budget accounting and LRU eviction.
// Memory-pressure demotion writes here instead of dropping the entry;
// files survive restarts, so hot decompositions outlive the process.
//
// Spill files are a cache, not a log: writes are not fsync'd (a record
// torn by a crash is detected by CRC on the next read and deleted — the
// cost is a recompute, never corruption).
type Spill struct {
	mu      sync.Mutex
	dir     string
	budget  int64 // disk budget in bytes; <= 0 means unlimited
	bytes   int64
	seq     int // write sequence, the fault-site iter
	clock   int64
	entries map[string]*spillEntry

	writes    atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	corrupt   atomic.Int64
}

type spillEntry struct {
	bytes   int64
	lastUse int64 // logical clock, not wall time: cheap and monotonic
}

// spillFile maps a cache key to its file path. Keys are fingerprint,
// algorithm name, and procs joined with '-' — already filesystem-safe.
func (s *Spill) spillFile(key string) string {
	return filepath.Join(s.dir, key+".res")
}

// OpenSpill scans dir (creating it if absent), drops files that fail CRC
// or decode, and returns the tier plus the keys it holds. budget <= 0
// means unlimited.
func OpenSpill(dir string, budget int64) (*Spill, []string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	s := &Spill{dir: dir, budget: budget, entries: map[string]*spillEntry{}}
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	var keys []string
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".res") {
			continue
		}
		path := filepath.Join(dir, f.Name())
		rec, size, err := readSpillFile(path)
		if err != nil || rec.Key() != strings.TrimSuffix(f.Name(), ".res") {
			// Torn by a crash mid-demotion, bit-rotted, or renamed by hand:
			// either way not trustworthy — recompute beats serving it.
			s.corrupt.Add(1)
			_ = os.Remove(path)
			continue
		}
		s.entries[rec.Key()] = &spillEntry{bytes: size}
		s.bytes += size
		keys = append(keys, rec.Key())
	}
	sort.Strings(keys)
	s.evictOverBudget()
	return s, keys, nil
}

// readSpillFile reads and CRC-validates one spill file.
func readSpillFile(path string) (ResultRecord, int64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return ResultRecord{}, 0, err
	}
	if err := checkFileHeader(b, fileKindResult); err != nil {
		return ResultRecord{}, 0, err
	}
	kind, payload, n, err := nextRecord(b[fileHeaderLen:])
	if err != nil {
		return ResultRecord{}, 0, err
	}
	if n == 0 || kind != recResult || fileHeaderLen+n != len(b) {
		return ResultRecord{}, 0, fmt.Errorf("%w: spill file framing", ErrCorrupt)
	}
	rec, err := DecodeResult(payload)
	return rec, int64(len(b)), err
}

// Put demotes a result record to disk. The write is torn-tolerant, not
// atomic: a crash mid-Put leaves a file the next Open discards by CRC.
func (s *Spill) Put(rec ResultRecord) error {
	payload := EncodeResult(rec)
	key := rec.Key()
	path := s.spillFile(key)

	s.mu.Lock()
	seq := s.seq
	s.seq++
	s.mu.Unlock()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: spill: %w", err)
	}
	_, err = f.Write(fileHeader(fileKindResult))
	if err == nil {
		_, err = f.Write(frameHeader(recResult, payload))
	}
	faults.Inject(nil, siteSpillWrite, 0, seq)
	if err == nil {
		_, err = f.Write(payload)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(path)
		return fmt.Errorf("durable: spill: %w", err)
	}
	size := int64(fileHeaderLen + frameHeaderLen + len(payload))

	s.mu.Lock()
	if old, ok := s.entries[key]; ok {
		s.bytes -= old.bytes
	}
	s.clock++
	s.entries[key] = &spillEntry{bytes: size, lastUse: s.clock}
	s.bytes += size
	s.evictOverBudget()
	s.mu.Unlock()
	s.writes.Add(1)
	return nil
}

// Get promotes a spilled record back: reads, CRC-validates, and returns it.
// A corrupt file is deleted and reported as a miss.
func (s *Spill) Get(key string) (ResultRecord, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		s.misses.Add(1)
		return ResultRecord{}, false
	}
	s.clock++
	e.lastUse = s.clock
	s.mu.Unlock()

	rec, _, err := readSpillFile(s.spillFile(key))
	if err != nil || rec.Key() != key {
		s.corrupt.Add(1)
		s.Remove(key)
		s.misses.Add(1)
		return ResultRecord{}, false
	}
	s.hits.Add(1)
	return rec, true
}

// Remove drops a spilled record and its file.
func (s *Spill) Remove(key string) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.bytes -= e.bytes
		delete(s.entries, key)
	}
	s.mu.Unlock()
	_ = os.Remove(s.spillFile(key))
}

// RemovePrefix drops every spilled record whose key starts with prefix —
// the invalidation path when a graph mutates or is deleted and all of its
// results (across generations, algorithms, and proc counts) become stale.
func (s *Spill) RemovePrefix(prefix string) {
	s.mu.Lock()
	var victims []string
	for k, e := range s.entries {
		if strings.HasPrefix(k, prefix) {
			s.bytes -= e.bytes
			delete(s.entries, k)
			victims = append(victims, k)
		}
	}
	s.mu.Unlock()
	for _, k := range victims {
		_ = os.Remove(s.spillFile(k))
	}
}

// evictOverBudget drops least-recently-used records until the disk budget
// is met. Caller holds mu (or is still single-threaded in OpenSpill).
func (s *Spill) evictOverBudget() {
	if s.budget <= 0 {
		return
	}
	for s.bytes > s.budget && len(s.entries) > 0 {
		var victim string
		var oldest int64
		first := true
		for k, e := range s.entries {
			if first || e.lastUse < oldest {
				victim, oldest, first = k, e.lastUse, false
			}
		}
		s.bytes -= s.entries[victim].bytes
		delete(s.entries, victim)
		_ = os.Remove(s.spillFile(victim))
		s.evictions.Add(1)
	}
}

// Len returns the number of spilled records.
func (s *Spill) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the disk occupancy of the tier.
func (s *Spill) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Writes, Hits, Misses, Evictions, and Corrupt expose the tier's counters.
func (s *Spill) Writes() int64    { return s.writes.Load() }
func (s *Spill) Hits() int64      { return s.hits.Load() }
func (s *Spill) Misses() int64    { return s.misses.Load() }
func (s *Spill) Evictions() int64 { return s.evictions.Load() }
func (s *Spill) Corrupt() int64   { return s.corrupt.Load() }
