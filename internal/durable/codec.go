// Package durable is the persistence layer under the bccd query service:
// a checksummed, versioned binary codec for graphs and decomposition
// results, a write-ahead log with periodic compacted snapshots for the
// graph registry, and a disk-spill tier that lets the result cache demote
// entries to disk under memory pressure instead of dropping them.
//
// Every on-disk byte is covered by a CRC-32C frame, and every decoder in
// this package is written to survive arbitrary input: torn tail records
// (a crash mid-append) are detected and truncated on recovery, corrupt
// bodies are dropped and counted, and no length field is trusted beyond
// the bytes actually present. The decoders are fuzz targets
// (FuzzDecodeWAL, FuzzDecodeSnapshot).
//
// Crash points in the write paths are instrumented as durable.* fault
// sites, so a chaos harness can SIGKILL the process at exact byte
// boundaries (internal/faults, KindKill) and prove the recovery contract:
// every acknowledged write survives a restart, every torn write is
// cleanly absent.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"bicc"
)

// File layout constants. Every durable file starts with the 4-byte magic,
// one file-kind byte, and one format-version byte; records follow.
const (
	fileHeaderLen = 6
	formatVersion = 1

	fileKindWAL      = 'W'
	fileKindSnapshot = 'S'
	fileKindResult   = 'R'
	fileKindBlob     = 'B'
)

var fileMagic = [4]byte{'B', 'C', 'D', 'U'}

// Record kinds inside WAL and snapshot files.
const (
	recGraphAdd    = 1 // payload: graph record (fingerprint, name, edges)
	recGraphRemove = 2 // payload: fingerprint string
	recResult      = 3 // payload: result record (key, edge labels, JSON view)
	recSnapEnd     = 4 // payload: u32 count of graph records; snapshot trailer
	recBlob        = 5 // payload: blob record (key string, opaque bytes)
	recGraphDelta  = 6 // payload: delta record (graph id, generation, edge ops)
)

// frameHeaderLen is the per-record frame: kind byte, payload length, and
// CRC-32C over (kind byte ++ payload).
const frameHeaderLen = 1 + 4 + 4

// maxRecordLen caps a single record payload. Graphs are bounded by the
// service's request-body limit well below this; the cap exists so a corrupt
// length field cannot drive a multi-gigabyte allocation in the decoder.
const maxRecordLen = 1 << 31

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a structurally invalid record body: the frame CRC
// matched (or the file header was readable) but the content is not a valid
// encoding. Distinct from errTorn, which marks a frame cut short.
var ErrCorrupt = errors.New("durable: corrupt record")

// errTorn marks an incomplete tail frame: a crash landed mid-append. The
// scanner reports the last good offset so recovery can truncate.
var errTorn = errors.New("durable: torn record")

// fileHeader renders the 6-byte file header for the given file kind.
func fileHeader(kind byte) []byte {
	h := make([]byte, fileHeaderLen)
	copy(h, fileMagic[:])
	h[4] = kind
	h[5] = formatVersion
	return h
}

// checkFileHeader validates b's first fileHeaderLen bytes against kind.
func checkFileHeader(b []byte, kind byte) error {
	if len(b) < fileHeaderLen {
		return fmt.Errorf("%w: file shorter than header", errTorn)
	}
	if [4]byte(b[:4]) != fileMagic {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:4])
	}
	if b[4] != kind {
		return fmt.Errorf("%w: file kind %q, want %q", ErrCorrupt, b[4], kind)
	}
	if b[5] != formatVersion {
		return fmt.Errorf("%w: format version %d, want %d", ErrCorrupt, b[5], formatVersion)
	}
	return nil
}

// frameHeader renders the record frame header for payload.
func frameHeader(kind byte, payload []byte) []byte {
	h := make([]byte, frameHeaderLen)
	h[0] = kind
	binary.LittleEndian.PutUint32(h[1:5], uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum([]byte{kind}, crcTable), crcTable, payload)
	binary.LittleEndian.PutUint32(h[5:9], crc)
	return h
}

// nextRecord parses one framed record from b. It returns the record kind and
// payload, plus how many bytes the frame consumed. A frame cut short returns
// errTorn; a CRC mismatch or oversize length returns ErrCorrupt.
func nextRecord(b []byte) (kind byte, payload []byte, consumed int, err error) {
	if len(b) == 0 {
		return 0, nil, 0, nil // clean end
	}
	if len(b) < frameHeaderLen {
		return 0, nil, 0, errTorn
	}
	kind = b[0]
	n := binary.LittleEndian.Uint32(b[1:5])
	if n > maxRecordLen {
		return 0, nil, 0, fmt.Errorf("%w: record length %d", ErrCorrupt, n)
	}
	if uint64(len(b)-frameHeaderLen) < uint64(n) {
		return 0, nil, 0, errTorn
	}
	payload = b[frameHeaderLen : frameHeaderLen+int(n)]
	crc := crc32.Update(crc32.Checksum(b[:1], crcTable), crcTable, payload)
	if crc != binary.LittleEndian.Uint32(b[5:9]) {
		return 0, nil, 0, fmt.Errorf("%w: frame CRC mismatch", ErrCorrupt)
	}
	return kind, payload, frameHeaderLen + int(n), nil
}

// --- graph payload ----------------------------------------------------------

// GraphRecord is one persisted registry entry. FP is the graph's stable id
// — its content fingerprint at upload time. A graph that has been mutated
// carries a nonzero Gen and a CFP (the content fingerprint of the CURRENT
// edge list) that no longer equals FP; recovery recomputes the content
// fingerprint and compares it to CFP, so a replay that reconstructed the
// wrong edges is detected and dropped.
type GraphRecord struct {
	FP    string // stable graph id (content fingerprint at upload)
	Name  string // client-supplied label
	Gen   uint64 // mutation generation, 0 for never-mutated graphs
	CFP   string // content fingerprint of the current edges (== FP at gen 0)
	Graph *bicc.Graph
}

// encodeGraph renders a graph record payload. Never-mutated graphs use the
// original version-1 layout so pre-mutation WALs and snapshots stay byte
// identical; mutated graphs use version 2, which carries the generation and
// the current content fingerprint:
//
//	v1: [ver:1][fpLen:u8][fp][nameLen:u16][name][n:u32][m:u32][(u,v) pairs]
//	v2: [ver:2][fpLen:u8][fp][nameLen:u16][name][gen:u64][cfpLen:u8][cfp]
//	    [n:u32][m:u32][(u,v) pairs]
func encodeGraph(rec GraphRecord) []byte {
	fp, name := rec.FP, rec.Name
	if len(fp) > 255 {
		fp = fp[:255]
	}
	if len(name) > 1<<16-1 {
		name = name[:1<<16-1]
	}
	cfp := rec.CFP
	if len(cfp) > 255 {
		cfp = cfp[:255]
	}
	v2 := rec.Gen != 0 || (cfp != "" && cfp != fp)
	edges := rec.Graph.Edges()
	buf := make([]byte, 0, 1+1+len(fp)+2+len(name)+9+len(cfp)+8+8+8*len(edges))
	if v2 {
		buf = append(buf, 2)
	} else {
		buf = append(buf, 1)
	}
	buf = append(buf, byte(len(fp)))
	buf = append(buf, fp...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	if v2 {
		buf = binary.LittleEndian.AppendUint64(buf, rec.Gen)
		buf = append(buf, byte(len(cfp)))
		buf = append(buf, cfp...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Graph.NumVertices()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(edges)))
	for _, e := range edges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.U))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.V))
	}
	return buf
}

// decodeGraph parses a graph record payload. The graph is rebuilt through
// bicc.NewGraph, so endpoint ranges, self loops, and duplicates are all
// re-validated — a corrupt payload that survives the CRC (or a hostile
// snapshot file) cannot smuggle an invalid graph into the registry.
func decodeGraph(b []byte) (GraphRecord, error) {
	var rec GraphRecord
	r := byteReader{b: b}
	ver, ok := r.u8()
	if !ok || (ver != 1 && ver != 2) {
		return rec, fmt.Errorf("%w: graph payload version", ErrCorrupt)
	}
	fpLen, ok := r.u8()
	if !ok {
		return rec, fmt.Errorf("%w: graph fp length", ErrCorrupt)
	}
	fp, ok := r.bytes(int(fpLen))
	if !ok {
		return rec, fmt.Errorf("%w: graph fp", ErrCorrupt)
	}
	nameLen, ok := r.u16()
	if !ok {
		return rec, fmt.Errorf("%w: graph name length", ErrCorrupt)
	}
	name, ok := r.bytes(int(nameLen))
	if !ok {
		return rec, fmt.Errorf("%w: graph name", ErrCorrupt)
	}
	var gen uint64
	cfp := fp
	if ver == 2 {
		gen, ok = r.u64()
		if !ok {
			return rec, fmt.Errorf("%w: graph generation", ErrCorrupt)
		}
		cfpLen, ok := r.u8()
		if !ok {
			return rec, fmt.Errorf("%w: graph cfp length", ErrCorrupt)
		}
		cfp, ok = r.bytes(int(cfpLen))
		if !ok {
			return rec, fmt.Errorf("%w: graph cfp", ErrCorrupt)
		}
	}
	n, ok1 := r.u32()
	m, ok2 := r.u32()
	if !ok1 || !ok2 {
		return rec, fmt.Errorf("%w: graph sizes", ErrCorrupt)
	}
	if int64(n) > 1<<31-1 || uint64(len(r.b)-r.off) < 8*uint64(m) {
		return rec, fmt.Errorf("%w: graph edge section short for m=%d", ErrCorrupt, m)
	}
	edges := make([]bicc.Edge, m)
	for i := range edges {
		u, _ := r.u32()
		v, _ := r.u32()
		edges[i] = bicc.Edge{U: int32(u), V: int32(v)}
	}
	if r.off != len(r.b) {
		return rec, fmt.Errorf("%w: %d trailing bytes in graph payload", ErrCorrupt, len(r.b)-r.off)
	}
	g, err := bicc.NewGraph(int(n), edges)
	if err != nil {
		return rec, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return GraphRecord{FP: string(fp), Name: string(name), Gen: gen, CFP: string(cfp), Graph: g}, nil
}

// --- delta payload ----------------------------------------------------------

// DeltaOp is one edge mutation inside a DeltaRecord.
type DeltaOp struct {
	Del  bool // false = insert, true = delete
	U, V int32
}

// DeltaRecord is one persisted mutation batch: the stable graph id it
// applies to, the generation the graph reaches once the batch is applied,
// the vertex count after application, the content fingerprint of the
// post-application edge list (so recovery can verify the replay), and the
// ops in submission order.
type DeltaRecord struct {
	ID     string // stable graph id (upload-time fingerprint)
	Gen    uint64 // generation AFTER applying this batch
	NewN   int32  // vertex count after applying this batch
	PostFP string // content fingerprint of the post-application edge list
	Ops    []DeltaOp
}

// EncodeDelta renders a delta record payload:
//
//	[ver:1][idLen:u8][id][gen:u64][newN:u32][postLen:u8][postFP]
//	[count:u32][count × (op:u8)(u:u32)(v:u32)]
func EncodeDelta(rec DeltaRecord) []byte {
	id, post := rec.ID, rec.PostFP
	if len(id) > 255 {
		id = id[:255]
	}
	if len(post) > 255 {
		post = post[:255]
	}
	buf := make([]byte, 0, 1+1+len(id)+8+4+1+len(post)+4+9*len(rec.Ops))
	buf = append(buf, 1)
	buf = append(buf, byte(len(id)))
	buf = append(buf, id...)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.NewN))
	buf = append(buf, byte(len(post)))
	buf = append(buf, post...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Ops)))
	for _, op := range rec.Ops {
		k := byte(0)
		if op.Del {
			k = 1
		}
		buf = append(buf, k)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(op.U))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(op.V))
	}
	return buf
}

// DecodeDelta parses a delta record payload. Structure is fully validated —
// op kinds, non-negative endpoints, no self loops, vertex count bounds —
// so a corrupt payload that slips past the CRC cannot inject an
// unappliable op; whether the ops match the target graph is re-checked at
// replay via PostFP.
func DecodeDelta(b []byte) (DeltaRecord, error) {
	var rec DeltaRecord
	r := byteReader{b: b}
	ver, ok := r.u8()
	if !ok || ver != 1 {
		return rec, fmt.Errorf("%w: delta payload version", ErrCorrupt)
	}
	idLen, ok := r.u8()
	if !ok {
		return rec, fmt.Errorf("%w: delta id length", ErrCorrupt)
	}
	id, ok := r.bytes(int(idLen))
	if !ok {
		return rec, fmt.Errorf("%w: delta id", ErrCorrupt)
	}
	gen, ok := r.u64()
	if !ok {
		return rec, fmt.Errorf("%w: delta generation", ErrCorrupt)
	}
	newN, ok := r.u32()
	if !ok || int64(newN) > 1<<31-1 {
		return rec, fmt.Errorf("%w: delta vertex count", ErrCorrupt)
	}
	postLen, ok := r.u8()
	if !ok {
		return rec, fmt.Errorf("%w: delta post-fp length", ErrCorrupt)
	}
	post, ok := r.bytes(int(postLen))
	if !ok {
		return rec, fmt.Errorf("%w: delta post-fp", ErrCorrupt)
	}
	count, ok := r.u32()
	if !ok || uint64(len(r.b)-r.off) < 9*uint64(count) {
		return rec, fmt.Errorf("%w: delta op section short for count=%d", ErrCorrupt, count)
	}
	ops := make([]DeltaOp, count)
	for i := range ops {
		k, _ := r.u8()
		u, _ := r.u32()
		v, _ := r.u32()
		if k > 1 {
			return rec, fmt.Errorf("%w: delta op kind %d", ErrCorrupt, k)
		}
		if int32(u) < 0 || int32(v) < 0 || u == v || u >= newN || v >= newN {
			return rec, fmt.Errorf("%w: delta op %d endpoints (%d,%d)", ErrCorrupt, i, int32(u), int32(v))
		}
		ops[i] = DeltaOp{Del: k == 1, U: int32(u), V: int32(v)}
	}
	if r.off != len(r.b) {
		return rec, fmt.Errorf("%w: %d trailing bytes in delta payload", ErrCorrupt, len(r.b)-r.off)
	}
	rec.ID = string(id)
	rec.Gen = gen
	rec.NewN = int32(newN)
	rec.PostFP = string(post)
	rec.Ops = ops
	return rec, nil
}

// --- result payload ---------------------------------------------------------

// ResultRecord is one persisted (spilled) decomposition result. The View is
// the service's serialized response object, stored opaquely; EdgeComponent
// is kept alongside it so a recovered result can be re-verified against its
// graph with bicc.Verify.
type ResultRecord struct {
	FP            string // graph fingerprint
	Algorithm     string // executing algorithm name
	Procs         int
	EdgeComponent []int32
	View          []byte // service-level JSON of the cached result
}

// Key renders the cache key this record answers for.
func (r ResultRecord) Key() string {
	return fmt.Sprintf("%s-%s-%d", r.FP, r.Algorithm, r.Procs)
}

// EncodeResult renders a result record payload:
//
//	[ver:1][fpLen:u8][fp][algoLen:u8][algo][procs:u32]
//	[mcLen:u32][edge labels int32...][viewLen:u32][view]
func EncodeResult(rec ResultRecord) []byte {
	fp, algo := rec.FP, rec.Algorithm
	if len(fp) > 255 {
		fp = fp[:255]
	}
	if len(algo) > 255 {
		algo = algo[:255]
	}
	buf := make([]byte, 0, 1+2+len(fp)+len(algo)+12+4*len(rec.EdgeComponent)+len(rec.View))
	buf = append(buf, 1)
	buf = append(buf, byte(len(fp)))
	buf = append(buf, fp...)
	buf = append(buf, byte(len(algo)))
	buf = append(buf, algo...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Procs))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.EdgeComponent)))
	for _, c := range rec.EdgeComponent {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.View)))
	buf = append(buf, rec.View...)
	return buf
}

// DecodeResult parses a result record payload.
func DecodeResult(b []byte) (ResultRecord, error) {
	var rec ResultRecord
	r := byteReader{b: b}
	ver, ok := r.u8()
	if !ok || ver != 1 {
		return rec, fmt.Errorf("%w: result payload version", ErrCorrupt)
	}
	fpLen, ok := r.u8()
	if !ok {
		return rec, fmt.Errorf("%w: result fp length", ErrCorrupt)
	}
	fp, ok := r.bytes(int(fpLen))
	if !ok {
		return rec, fmt.Errorf("%w: result fp", ErrCorrupt)
	}
	algoLen, ok := r.u8()
	if !ok {
		return rec, fmt.Errorf("%w: result algo length", ErrCorrupt)
	}
	algo, ok := r.bytes(int(algoLen))
	if !ok {
		return rec, fmt.Errorf("%w: result algo", ErrCorrupt)
	}
	procs, ok := r.u32()
	if !ok || procs > 1<<20 {
		return rec, fmt.Errorf("%w: result procs", ErrCorrupt)
	}
	mc, ok := r.u32()
	if !ok || uint64(len(r.b)-r.off) < 4*uint64(mc) {
		return rec, fmt.Errorf("%w: edge label section short for m=%d", ErrCorrupt, mc)
	}
	labels := make([]int32, mc)
	for i := range labels {
		v, _ := r.u32()
		labels[i] = int32(v)
	}
	viewLen, ok := r.u32()
	if !ok || uint64(len(r.b)-r.off) < uint64(viewLen) {
		return rec, fmt.Errorf("%w: view section short", ErrCorrupt)
	}
	view, _ := r.bytes(int(viewLen))
	if r.off != len(r.b) {
		return rec, fmt.Errorf("%w: %d trailing bytes in result payload", ErrCorrupt, len(r.b)-r.off)
	}
	rec.FP = string(fp)
	rec.Algorithm = string(algo)
	rec.Procs = int(procs)
	rec.EdgeComponent = labels
	rec.View = append([]byte(nil), view...)
	return rec, nil
}

// --- bounds-checked cursor --------------------------------------------------

// byteReader is a bounds-checked cursor over a payload; every read reports
// whether enough bytes remained, so decoders never slice past the input.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) u8() (byte, bool) {
	if r.off+1 > len(r.b) {
		return 0, false
	}
	v := r.b[r.off]
	r.off++
	return v, true
}

func (r *byteReader) u16() (uint16, bool) {
	if r.off+2 > len(r.b) {
		return 0, false
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, true
}

func (r *byteReader) u32() (uint32, bool) {
	if r.off+4 > len(r.b) {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, true
}

func (r *byteReader) u64() (uint64, bool) {
	if r.off+8 > len(r.b) {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, true
}

func (r *byteReader) bytes(n int) ([]byte, bool) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, false
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, true
}
