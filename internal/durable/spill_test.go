package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func spillRec(i, labels int) ResultRecord {
	ec := make([]int32, labels)
	for j := range ec {
		ec[j] = int32(j % 3)
	}
	return ResultRecord{
		FP:            fmt.Sprintf("%016x", i),
		Algorithm:     "tv-opt",
		Procs:         4,
		EdgeComponent: ec,
		View:          []byte(fmt.Sprintf(`{"num_components":%d}`, i)),
	}
}

func TestSpillPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, keys, err := OpenSpill(dir, 0)
	if err != nil || len(keys) != 0 {
		t.Fatalf("fresh: %v %v", keys, err)
	}
	in := spillRec(7, 32)
	if err := s.Put(in); err != nil {
		t.Fatal(err)
	}
	out, ok := s.Get(in.Key())
	if !ok || string(out.View) != string(in.View) || len(out.EdgeComponent) != 32 {
		t.Fatalf("get: ok=%v %+v", ok, out)
	}
	if s.Hits() != 1 || s.Writes() != 1 {
		t.Fatalf("counters: hits=%d writes=%d", s.Hits(), s.Writes())
	}

	s2, keys, err := OpenSpill(dir, 0)
	if err != nil || len(keys) != 1 || keys[0] != in.Key() {
		t.Fatalf("reopen: %v %v", keys, err)
	}
	if out, ok := s2.Get(in.Key()); !ok || string(out.View) != string(in.View) {
		t.Fatal("spilled record did not survive reopen")
	}
}

func TestSpillDropsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := spillRec(1, 8)
	if err := s.Put(in); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, in.Key()+".res")
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	// Reopen: the corrupt file is discarded during the scan.
	s2, keys, err := OpenSpill(dir, 0)
	if err != nil || len(keys) != 0 {
		t.Fatalf("reopen with corrupt file: keys=%v err=%v", keys, err)
	}
	if s2.Corrupt() != 1 {
		t.Fatalf("corrupt counter = %d", s2.Corrupt())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt file not deleted")
	}

	// And a file corrupted after open is dropped at Get time.
	if err := s2.Put(in); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(path)
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(in.Key()); ok {
		t.Fatal("Get served a corrupt record")
	}
	if s2.Len() != 0 {
		t.Fatalf("len = %d after corrupt Get", s2.Len())
	}
}

func TestSpillBudgetEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	one := spillRec(0, 64)
	oneSize := int64(fileHeaderLen + frameHeaderLen + len(EncodeResult(one)))
	s, _, err := OpenSpill(dir, 3*oneSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(spillRec(i, 64)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch record 0 so record 1 is the LRU victim.
	if _, ok := s.Get(spillRec(0, 64).Key()); !ok {
		t.Fatal("get 0")
	}
	if err := s.Put(spillRec(3, 64)); err != nil {
		t.Fatal(err)
	}
	if s.Evictions() != 1 {
		t.Fatalf("evictions = %d", s.Evictions())
	}
	if _, ok := s.Get(spillRec(1, 64).Key()); ok {
		t.Fatal("LRU record 1 still present")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := s.Get(spillRec(i, 64).Key()); !ok {
			t.Fatalf("record %d missing", i)
		}
	}
	if s.Bytes() > 3*oneSize {
		t.Fatalf("bytes %d over budget %d", s.Bytes(), 3*oneSize)
	}
}
