package durable

import (
	"os"
	"strings"
	"testing"

	"bicc/internal/faults"
)

// corruptPlan activates a one-shot bit-flip at site and returns the cleanup.
func corruptPlan(t *testing.T, site string) {
	t.Helper()
	r := faults.NewRule(faults.KindCorrupt, site)
	r.Count = 1
	faults.Activate(&faults.Plan{Seed: 99, Rules: []*faults.Rule{r}})
	t.Cleanup(faults.Deactivate)
}

func TestScrubFilesListsWALAndSnapshots(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, Config{Dir: dir})
	defer s.Close()
	addGraphs(t, s, 3)

	files := s.ScrubFiles()
	if len(files) != 1 {
		t.Fatalf("fresh store lists %d files, want 1 (active WAL)", len(files))
	}
	if files[0].Snapshot {
		t.Fatalf("active WAL listed as snapshot")
	}
	if files[0].Limit != s.WALBytes() {
		t.Fatalf("active WAL limit %d, want %d", files[0].Limit, s.WALBytes())
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	files = s.ScrubFiles()
	var wals, snaps int
	for _, f := range files {
		if f.Snapshot {
			snaps++
			if f.Limit != 0 {
				t.Errorf("snapshot %s has a prefix limit", f.Path)
			}
		} else {
			wals++
		}
	}
	if wals != 1 || snaps != 1 {
		t.Fatalf("post-compact listing: %d WALs, %d snapshots, want 1 and 1", wals, snaps)
	}
}

func TestCheckWALImageDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, Config{Dir: dir})
	defer s.Close()
	addGraphs(t, s, 2)

	var walPath string
	for _, f := range s.ScrubFiles() {
		if !f.Snapshot {
			walPath = f.Path
		}
	}
	b, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckWALImage(append([]byte(nil), b...), 0); err != nil {
		t.Fatalf("clean WAL image flagged: %v", err)
	}
	// The wal.verify injection site flips one deterministic bit in the
	// image; wherever it lands — header, frame, payload — the CRC chain
	// must catch it.
	corruptPlan(t, SiteWALVerify)
	if err := CheckWALImage(append([]byte(nil), b...), 0); err == nil {
		t.Fatalf("bit-flipped WAL image passed verification")
	}
}

func TestCheckSnapshotImageDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, Config{Dir: dir})
	defer s.Close()
	addGraphs(t, s, 2)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	var snapPath string
	for _, f := range s.ScrubFiles() {
		if f.Snapshot {
			snapPath = f.Path
		}
	}
	b, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSnapshotImage(append([]byte(nil), b...), 0); err != nil {
		t.Fatalf("clean snapshot flagged: %v", err)
	}
	corruptPlan(t, SiteWALVerify)
	if err := CheckSnapshotImage(append([]byte(nil), b...), 0); err == nil {
		t.Fatalf("bit-flipped snapshot passed verification")
	}
}

func TestCheckSpillImageDetectsBitFlipAndKeyMismatch(t *testing.T) {
	dir := t.TempDir()
	sp, _, err := OpenSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := ResultRecord{FP: "aabbcc", Algorithm: "tv-smp", Procs: 4,
		EdgeComponent: []int32{0, 0, 1}, View: []byte(`{"x":1}`)}
	if err := sp.Put(rec); err != nil {
		t.Fatal(err)
	}
	key := rec.Key()
	b, err := os.ReadFile(sp.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	got, err := CheckSpillImage(append([]byte(nil), b...), key, 0)
	if err != nil {
		t.Fatalf("clean spill image flagged: %v", err)
	}
	if got.Key() != key {
		t.Fatalf("decoded key %q, want %q", got.Key(), key)
	}
	if _, err := CheckSpillImage(append([]byte(nil), b...), "otherkey", 0); err == nil {
		t.Fatalf("cross-wired spill file (key mismatch) passed verification")
	}
	corruptPlan(t, SiteSpillVerify)
	if _, err := CheckSpillImage(append([]byte(nil), b...), key, 0); err == nil {
		t.Fatalf("bit-flipped spill image passed verification")
	}
}

func TestCheckBlobImageDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	sp, _, err := OpenBlobSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Put("aabbcc-s0", []byte("shard payload bytes")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(sp.Path("aabbcc-s0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckBlobImage(append([]byte(nil), b...), "aabbcc-s0", 0); err != nil {
		t.Fatalf("clean blob flagged: %v", err)
	}
	if err := CheckBlobImage(append([]byte(nil), b...), "wrong", 0); err == nil {
		t.Fatalf("cross-wired blob (key mismatch) passed verification")
	}
	corruptPlan(t, SiteShardVerify)
	if err := CheckBlobImage(append([]byte(nil), b...), "aabbcc-s0", 0); err == nil {
		t.Fatalf("bit-flipped blob passed verification")
	}
}

// TestSpillKeysIncludesStrays proves the scrub listing unions the index with
// directory strays: a file the tier no longer tracks still holds disk and
// must be walked (it is the quarantine path's entry point).
func TestSpillKeysIncludesStrays(t *testing.T) {
	dir := t.TempDir()
	sp, _, err := OpenSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Put(ResultRecord{FP: "aa", Algorithm: "sequential", Procs: 1,
		EdgeComponent: []int32{0}, View: []byte(`{}`)}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sp.Path("stray-key"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys := sp.Keys()
	if len(keys) != 2 {
		t.Fatalf("Keys() = %v, want tracked + stray", keys)
	}
	found := false
	for _, k := range keys {
		if k == "stray-key" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stray file missing from Keys(): %v", keys)
	}
	if !strings.HasSuffix(sp.Path("stray-key"), ".res") {
		t.Fatalf("Path() = %q", sp.Path("stray-key"))
	}
}
