package durable

import (
	"bytes"
	"testing"

	"bicc"
)

// fuzzSeedGraph builds a small deterministic graph for seed corpora.
func fuzzSeedGraph() *bicc.Graph {
	g, err := bicc.NewGraph(5, []bicc.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}, {U: 3, V: 4},
	})
	if err != nil {
		panic(err)
	}
	return g
}

// FuzzDecodeWAL drives the WAL scanner with arbitrary bytes. The invariants
// under fuzz: never panic, never over-read, and for any input the reported
// valid prefix must itself rescan to the same records (truncation is
// idempotent — what recovery keeps, a second recovery keeps verbatim).
func FuzzDecodeWAL(f *testing.F) {
	g := fuzzSeedGraph()
	wal := fileHeader(fileKindWAL)
	for i, rec := range [][]byte{
		encodeGraph(GraphRecord{FP: "fp-1", Name: "seed one", Graph: g}),
		encodeGraph(GraphRecord{FP: "fp-2", Name: "seed two", Gen: 2, CFP: "cfp-2", Graph: g}),
	} {
		_ = i
		wal = append(wal, frameHeader(recGraphAdd, rec)...)
		wal = append(wal, rec...)
	}
	rm := []byte("fp-1")
	wal = append(wal, frameHeader(recGraphRemove, rm)...)
	wal = append(wal, rm...)
	dl := EncodeDelta(DeltaRecord{ID: "fp-2", Gen: 3, NewN: 6, PostFP: "cfp-3",
		Ops: []DeltaOp{{Del: false, U: 4, V: 5}, {Del: true, U: 2, V: 3}}})
	wal = append(wal, frameHeader(recGraphDelta, dl)...)
	wal = append(wal, dl...)
	f.Add(wal)
	f.Add(wal[:len(wal)-3]) // torn tail
	f.Add(fileHeader(fileKindWAL))
	f.Add([]byte{})
	f.Add([]byte("BCDU"))

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, validLen, _, dropped := scanWAL(b)
		if validLen < 0 || validLen > len(b) {
			t.Fatalf("validLen %d out of [0,%d]", validLen, len(b))
		}
		if dropped < 0 {
			t.Fatalf("dropped %d", dropped)
		}
		// Idempotence: rescanning the valid prefix reproduces the scan.
		recs2, validLen2, truncated2, _ := scanWAL(b[:validLen])
		if truncated2 {
			t.Fatalf("valid prefix of length %d still reported torn", validLen)
		}
		if validLen2 != validLen || len(recs2) != len(recs) {
			t.Fatalf("rescan: %d recs/%d bytes, want %d/%d", len(recs2), validLen2, len(recs), validLen)
		}
		for i := range recs {
			if recs[i].kind != recs2[i].kind || recs[i].fp != recs2[i].fp ||
				recs[i].graph.FP != recs2[i].graph.FP {
				t.Fatalf("rescan record %d differs", i)
			}
		}
	})
}

// FuzzDecodeSnapshot drives the snapshot scanner with arbitrary bytes: no
// panics, no over-reads, and a complete verdict only with a sane count.
func FuzzDecodeSnapshot(f *testing.F) {
	g := fuzzSeedGraph()
	snap := fileHeader(fileKindSnapshot)
	rec := encodeGraph(GraphRecord{FP: "fp-1", Name: "seed", Graph: g})
	snap = append(snap, frameHeader(recGraphAdd, rec)...)
	snap = append(snap, rec...)
	end := []byte{1, 0, 0, 0}
	snap = append(snap, frameHeader(recSnapEnd, end)...)
	snap = append(snap, end...)
	f.Add(snap)
	f.Add(snap[:len(snap)-1])
	f.Add(fileHeader(fileKindSnapshot))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		graphs, complete, dropped := scanSnapshot(b)
		if dropped < 0 {
			t.Fatalf("dropped %d", dropped)
		}
		for _, gr := range graphs {
			if gr.Graph == nil {
				t.Fatal("nil graph in scan output")
			}
			// The decoder revalidates through bicc.NewGraph; spot-check the
			// invariant that validation is supposed to guarantee.
			for _, e := range gr.Graph.Edges() {
				if e.U == e.V || e.U < 0 || int(e.U) >= gr.Graph.NumVertices() {
					t.Fatalf("invalid edge %v escaped validation", e)
				}
			}
		}
		if complete && len(b) < fileHeaderLen+frameHeaderLen {
			t.Fatal("complete verdict from a file too short to hold the end marker")
		}
	})
}

// FuzzDecodeDelta drives the WAL delta-record decoder: no panics, a
// successful decode is a re-encode fixed point, and every torn-tail
// truncation of a valid payload is rejected rather than misparsed.
func FuzzDecodeDelta(f *testing.F) {
	f.Add(EncodeDelta(DeltaRecord{ID: "fp-1", Gen: 1, NewN: 8, PostFP: "cfp-1",
		Ops: []DeltaOp{{Del: false, U: 0, V: 7}, {Del: true, U: 1, V: 2}}}))
	f.Add(EncodeDelta(DeltaRecord{ID: "fp-2", Gen: 42, NewN: 3, PostFP: "",
		Ops: nil}))
	f.Add([]byte{1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := DecodeDelta(b)
		if err != nil {
			return
		}
		// A successful decode must re-encode to exactly the input.
		if !bytes.Equal(EncodeDelta(rec), b) {
			t.Fatal("decode/encode not a fixed point")
		}
		// Structural guarantees the replay path relies on.
		for i, op := range rec.Ops {
			if op.U < 0 || op.V < 0 || op.U == op.V || op.U >= rec.NewN || op.V >= rec.NewN {
				t.Fatalf("invalid op %d escaped validation: %+v", i, op)
			}
		}
		// Torn tails of a valid payload never decode.
		for n := 0; n < len(b); n++ {
			if _, err := DecodeDelta(b[:n]); err == nil {
				t.Fatalf("truncation to %d/%d bytes accepted", n, len(b))
			}
		}
	})
}

// FuzzDecodeResult drives the spill-record decoder.
func FuzzDecodeResult(f *testing.F) {
	f.Add(EncodeResult(ResultRecord{FP: "fp", Algorithm: "tv-smp", Procs: 2,
		EdgeComponent: []int32{0, 1, 0}, View: []byte(`{"ok":true}`)}))
	f.Add([]byte{1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := DecodeResult(b)
		if err != nil {
			return
		}
		// A successful decode must re-encode to exactly the input.
		if !bytes.Equal(EncodeResult(rec), b) {
			t.Fatal("decode/encode not a fixed point")
		}
	})
}
