package durable

import (
	"bytes"
	"testing"

	"bicc"
)

func testGraph(t *testing.T, seed int64) *bicc.Graph {
	t.Helper()
	g, err := bicc.RandomConnectedGraph(40, 90, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphPayloadRoundTrip(t *testing.T) {
	g := testGraph(t, 1)
	payload := encodeGraph("fp-123", "demo graph", g)
	rec, err := decodeGraph(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rec.FP != "fp-123" || rec.Name != "demo graph" {
		t.Fatalf("metadata: %q %q", rec.FP, rec.Name)
	}
	if rec.Graph.NumVertices() != g.NumVertices() || rec.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes: %d/%d, want %d/%d",
			rec.Graph.NumVertices(), rec.Graph.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for i, e := range g.Edges() {
		if rec.Graph.Edges()[i] != e {
			t.Fatalf("edge %d: %v != %v", i, rec.Graph.Edges()[i], e)
		}
	}
}

func TestGraphPayloadRejectsDamage(t *testing.T) {
	g := testGraph(t, 2)
	payload := encodeGraph("fp", "n", g)
	// Every single-byte truncation must fail cleanly, not panic.
	for n := 0; n < len(payload); n++ {
		if _, err := decodeGraph(payload[:n]); err == nil {
			t.Fatalf("decodeGraph accepted %d/%d bytes", n, len(payload))
		}
	}
	// Trailing garbage is rejected too.
	if _, err := decodeGraph(append(append([]byte(nil), payload...), 0xee)); err == nil {
		t.Fatal("decodeGraph accepted trailing bytes")
	}
}

func TestResultRecordRoundTrip(t *testing.T) {
	in := ResultRecord{
		FP:            "00deadbeef00",
		Algorithm:     "tv-filter",
		Procs:         8,
		EdgeComponent: []int32{0, 1, 1, 2, 0},
		View:          []byte(`{"num_components":3}`),
	}
	out, err := DecodeResult(EncodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.FP != in.FP || out.Algorithm != in.Algorithm || out.Procs != in.Procs {
		t.Fatalf("key fields: %+v", out)
	}
	if !bytes.Equal(out.View, in.View) {
		t.Fatalf("view: %q", out.View)
	}
	for i, c := range in.EdgeComponent {
		if out.EdgeComponent[i] != c {
			t.Fatalf("label %d: %d != %d", i, out.EdgeComponent[i], c)
		}
	}
	if in.Key() != "00deadbeef00-tv-filter-8" {
		t.Fatalf("key: %q", in.Key())
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	payload := []byte("hello, durable world")
	frame := append(frameHeader(7, payload), payload...)

	kind, got, n, err := nextRecord(frame)
	if err != nil || kind != 7 || n != len(frame) || !bytes.Equal(got, payload) {
		t.Fatalf("clean frame: kind=%d n=%d err=%v", kind, n, err)
	}
	// Flip each byte in turn: every corruption must surface as an error,
	// never as a silently different payload.
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, _, _, err := nextRecord(bad); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	// Every truncation is reported as torn or corrupt, never accepted.
	for n := 1; n < len(frame); n++ {
		if _, _, _, err := nextRecord(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}
