package durable

import (
	"bytes"
	"testing"

	"bicc"
)

func testGraph(t *testing.T, seed int64) *bicc.Graph {
	t.Helper()
	g, err := bicc.RandomConnectedGraph(40, 90, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphPayloadRoundTrip(t *testing.T) {
	g := testGraph(t, 1)
	payload := encodeGraph(GraphRecord{FP: "fp-123", Name: "demo graph", Graph: g})
	if payload[0] != 1 {
		t.Fatalf("generation-0 record encoded as version %d, want byte-compatible v1", payload[0])
	}
	rec, err := decodeGraph(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rec.FP != "fp-123" || rec.Name != "demo graph" {
		t.Fatalf("metadata: %q %q", rec.FP, rec.Name)
	}
	if rec.Gen != 0 || rec.CFP != "fp-123" {
		t.Fatalf("v1 decode: gen=%d cfp=%q, want 0/fp-123", rec.Gen, rec.CFP)
	}
	if rec.Graph.NumVertices() != g.NumVertices() || rec.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes: %d/%d, want %d/%d",
			rec.Graph.NumVertices(), rec.Graph.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for i, e := range g.Edges() {
		if rec.Graph.Edges()[i] != e {
			t.Fatalf("edge %d: %v != %v", i, rec.Graph.Edges()[i], e)
		}
	}
}

func TestGraphPayloadRejectsDamage(t *testing.T) {
	g := testGraph(t, 2)
	for _, rec := range []GraphRecord{
		{FP: "fp", Name: "n", Graph: g},
		{FP: "fp", Name: "n", Gen: 3, CFP: "cfp-other", Graph: g},
	} {
		payload := encodeGraph(rec)
		// Every single-byte truncation must fail cleanly, not panic.
		for n := 0; n < len(payload); n++ {
			if _, err := decodeGraph(payload[:n]); err == nil {
				t.Fatalf("gen=%d: decodeGraph accepted %d/%d bytes", rec.Gen, n, len(payload))
			}
		}
		// Trailing garbage is rejected too.
		if _, err := decodeGraph(append(append([]byte(nil), payload...), 0xee)); err == nil {
			t.Fatalf("gen=%d: decodeGraph accepted trailing bytes", rec.Gen)
		}
	}
}

func TestGraphPayloadV2RoundTrip(t *testing.T) {
	g := testGraph(t, 3)
	in := GraphRecord{FP: "fp-abc", Name: "mutated", Gen: 17, CFP: "cfp-def", Graph: g}
	payload := encodeGraph(in)
	if payload[0] != 2 {
		t.Fatalf("mutated record encoded as version %d, want 2", payload[0])
	}
	out, err := decodeGraph(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.FP != in.FP || out.Name != in.Name || out.Gen != in.Gen || out.CFP != in.CFP {
		t.Fatalf("metadata: %+v", out)
	}
	if out.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("edges: %d, want %d", out.Graph.NumEdges(), g.NumEdges())
	}
}

func TestDeltaRecordRoundTrip(t *testing.T) {
	in := DeltaRecord{
		ID: "fp-xyz", Gen: 4, NewN: 12, PostFP: "cfp-123",
		Ops: []DeltaOp{
			{Del: false, U: 0, V: 9},
			{Del: true, U: 3, V: 4},
			{Del: false, U: 10, V: 11},
		},
	}
	payload := EncodeDelta(in)
	out, err := DecodeDelta(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Gen != in.Gen || out.NewN != in.NewN || out.PostFP != in.PostFP {
		t.Fatalf("metadata: %+v", out)
	}
	if len(out.Ops) != len(in.Ops) {
		t.Fatalf("ops: %d, want %d", len(out.Ops), len(in.Ops))
	}
	for i, op := range in.Ops {
		if out.Ops[i] != op {
			t.Fatalf("op %d: %+v != %+v", i, out.Ops[i], op)
		}
	}
	// Every truncation fails cleanly.
	for n := 0; n < len(payload); n++ {
		if _, err := DecodeDelta(payload[:n]); err == nil {
			t.Fatalf("DecodeDelta accepted %d/%d bytes", n, len(payload))
		}
	}
	// Hostile structure: self loop, out-of-range endpoint, bad op kind.
	for _, bad := range []DeltaRecord{
		{ID: "x", NewN: 5, Ops: []DeltaOp{{U: 2, V: 2}}},
		{ID: "x", NewN: 5, Ops: []DeltaOp{{U: 1, V: 5}}},
	} {
		if _, err := DecodeDelta(EncodeDelta(bad)); err == nil {
			t.Fatalf("invalid ops %+v decoded", bad.Ops)
		}
	}
	kindBad := EncodeDelta(DeltaRecord{ID: "x", NewN: 5, Ops: []DeltaOp{{U: 0, V: 1}}})
	kindBad[len(kindBad)-9] = 7 // op kind byte
	if _, err := DecodeDelta(kindBad); err == nil {
		t.Fatal("op kind 7 decoded")
	}
}

func TestResultRecordRoundTrip(t *testing.T) {
	in := ResultRecord{
		FP:            "00deadbeef00",
		Algorithm:     "tv-filter",
		Procs:         8,
		EdgeComponent: []int32{0, 1, 1, 2, 0},
		View:          []byte(`{"num_components":3}`),
	}
	out, err := DecodeResult(EncodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.FP != in.FP || out.Algorithm != in.Algorithm || out.Procs != in.Procs {
		t.Fatalf("key fields: %+v", out)
	}
	if !bytes.Equal(out.View, in.View) {
		t.Fatalf("view: %q", out.View)
	}
	for i, c := range in.EdgeComponent {
		if out.EdgeComponent[i] != c {
			t.Fatalf("label %d: %d != %d", i, out.EdgeComponent[i], c)
		}
	}
	if in.Key() != "00deadbeef00-tv-filter-8" {
		t.Fatalf("key: %q", in.Key())
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	payload := []byte("hello, durable world")
	frame := append(frameHeader(7, payload), payload...)

	kind, got, n, err := nextRecord(frame)
	if err != nil || kind != 7 || n != len(frame) || !bytes.Equal(got, payload) {
		t.Fatalf("clean frame: kind=%d n=%d err=%v", kind, n, err)
	}
	// Flip each byte in turn: every corruption must surface as an error,
	// never as a silently different payload.
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, _, _, err := nextRecord(bad); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	// Every truncation is reported as torn or corrupt, never accepted.
	for n := 1; n < len(frame); n++ {
		if _, _, _, err := nextRecord(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}
