// Package incr maintains a biconnected-components decomposition under
// batched edge insertions and deletions, recomputing as little as possible.
//
// A State holds the current edge list, the canonical per-edge block labels
// (first-occurrence dense numbering — exactly what every engine emits for
// the same edge list), and a CSR vertex→block routing index. Apply runs a
// batch of deltas through a planner that classifies each one against the
// current block-cut structure:
//
//   - An insert whose endpoints already share a block cannot change any
//     articulation structure — two vertices of one block are already
//     biconnected, so the new edge joins that block and nothing else moves.
//     Such inserts are absorbed in place in O(1) with no engine run.
//   - Everything structural — deletes, cross-block and cross-component
//     inserts, edges to new vertices — marks blocks dirty. A delete dirties
//     exactly the block of the deleted edge (every cycle lies inside one
//     block, so no other block can change). Structural inserts make their
//     endpoints terminals, and the dirty set is closed over the Steiner
//     subtrees of the terminals in the block-cut forest: any cycle through
//     a new edge decomposes into new edges and paths between terminals, and
//     a path between two vertices only traverses blocks on their block-cut
//     tree path, so the closure provably contains every block a new edge
//     can merge. Absorb candidates whose shared block lands in the dirty
//     set are demoted to region edges.
//   - The union of the dirty blocks' surviving edges plus the structural
//     inserts is recomputed as one compact subgraph by a real engine and
//     stitched back into the labeling, which is then re-canonicalized so
//     the result is byte-identical to a from-scratch run on the final edge
//     list. When the region exceeds a size-ratio threshold of the final
//     graph, Apply degrades to a full engine run instead (the adaptive
//     fallback: locality bookkeeping is not worth it for global damage).
//
// Apply is atomic: it either commits the whole batch or returns an error
// leaving the State untouched, so a faulted incremental apply can always be
// retried as a full recompute. The incr.apply and incr.rebuild fault sites
// cover the classification loop and the per-dirty-block region assembly.
package incr

import (
	"fmt"
	"sort"

	"bicc"
	"bicc/internal/conncomp"
	"bicc/internal/faults"
	"bicc/internal/graph"
)

// Fault sites. incr.apply fires once per delta during classification;
// incr.rebuild fires once per dirty block while the recompute region is
// assembled. Both are cancelable.
var (
	SiteApply   = faults.RegisterSite("incr.apply", true)
	SiteRebuild = faults.RegisterSite("incr.rebuild", true)
)

// Op is a mutation kind.
type Op uint8

const (
	// OpInsert adds an edge, appended at the end of the edge list. Endpoints
	// beyond the current vertex count grow the graph.
	OpInsert Op = iota
	// OpDelete removes an existing edge; later edges shift down one index,
	// preserving their relative order.
	OpDelete
)

// String returns the wire name of the op.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// ParseOp maps a wire name back to an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "insert":
		return OpInsert, nil
	case "delete":
		return OpDelete, nil
	}
	return 0, fmt.Errorf("incr: unknown op %q", s)
}

// Delta is one edge mutation.
type Delta struct {
	Op   Op
	U, V int32
}

// DeltaError reports an invalid delta — a client error, detected before
// anything is written. It is distinct from runtime failures (injected
// faults, engine errors, cancellation), after which the caller should
// degrade to a full recompute instead of rejecting the batch.
type DeltaError struct {
	Index  int
	Delta  Delta
	Reason string
}

func (e *DeltaError) Error() string {
	return fmt.Sprintf("incr: delta %d (%s %d,%d): %s",
		e.Index, e.Delta.Op, e.Delta.U, e.Delta.V, e.Reason)
}

// Mode is the path a batch took through Apply.
type Mode uint8

const (
	// ModeAbsorb: every delta was an intra-block insert; no engine ran.
	ModeAbsorb Mode = iota
	// ModeRebuild: the union of the dirty blocks was recomputed and
	// stitched back; untouched blocks kept their labels.
	ModeRebuild
	// ModeFull: the dirty region exceeded the threshold (or an incremental
	// attempt faulted) and the whole final graph was recomputed.
	ModeFull
)

// String names the mode as exported in metrics.
func (m Mode) String() string {
	switch m {
	case ModeAbsorb:
		return "absorb"
	case ModeRebuild:
		return "rebuild"
	case ModeFull:
		return "full"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// DefaultThreshold is the region/final edge ratio above which Apply
// degrades to a full engine run.
const DefaultThreshold = 0.5

// Config tunes Apply.
type Config struct {
	// Threshold is the dirty-region size ratio (region edges over final
	// edges) above which Apply gives up on locality and recomputes the
	// whole graph. <= 0 means DefaultThreshold; >= 1 never degrades on
	// size.
	Threshold float64
}

func (c Config) threshold() float64 {
	if c.Threshold <= 0 {
		return DefaultThreshold
	}
	return c.Threshold
}

// ApplyStats describes what one committed batch did.
type ApplyStats struct {
	Deltas      int
	Inserts     int
	Deletes     int
	Absorbed    int     // inserts absorbed in place without an engine run
	DirtyBlocks int     // blocks invalidated by structural deltas
	RegionEdges int     // edges handed to the engine in ModeRebuild
	RegionRatio float64 // RegionEdges / final edge count
	Mode        Mode
	// NumComponents is the block count after the batch.
	NumComponents int
	// TouchedBlocks lists the post-batch ids of blocks that were created or
	// relabeled by this batch, ascending; the complement survived the
	// mutation untouched. Nil in ModeFull (everything was recomputed).
	TouchedBlocks []int32
}

// State is a maintained decomposition. It is not safe for concurrent use;
// callers serialize Apply against readers.
type State struct {
	n       int32
	edges   []graph.Edge
	comp    []int32
	numComp int

	// CSR vertex→block routing index: blocks containing v are
	// blocks[offsets[v]:offsets[v+1]], ascending and unique.
	offsets []int32
	blocks  []int32
	// index maps graph.CanonKey(u,v) to the edge's current index.
	index map[uint64]int32

	// Block-cut forest CSR, rebuilt alongside the routing index: nodes are
	// blocks [0, numComp) then cut vertices; cutIdx[v] is v's forest node
	// id, or -1 for non-cut vertices. Keeping the forest materialized lets
	// steinerClose BFS only the ball around a batch's terminals instead of
	// reconstructing the whole forest per batch.
	cutIdx []int32
	bcOff  []int32
	bcAdj  []int32
}

// NewState captures a decomposition as incremental state. The labels are
// re-canonicalized defensively (engines already emit first-occurrence
// numbering, but reconstructed results from older on-disk state may not).
func NewState(g *bicc.Graph, res *bicc.Result) (*State, error) {
	if g == nil || res == nil {
		return nil, fmt.Errorf("incr: nil graph or result")
	}
	edges := g.Edges()
	if len(res.EdgeComponent) != len(edges) {
		return nil, fmt.Errorf("incr: result labels %d edges, graph has %d",
			len(res.EdgeComponent), len(edges))
	}
	comp := append([]int32(nil), res.EdgeComponent...)
	numComp := conncomp.Normalize(comp)
	s := &State{
		n:       int32(g.NumVertices()),
		edges:   append([]graph.Edge(nil), edges...),
		comp:    comp,
		numComp: numComp,
	}
	s.reindex()
	return s, nil
}

// reindex rebuilds the CSR routing index and the edge-key map from the
// current edges and labels.
func (s *State) reindex() {
	s.index = make(map[uint64]int32, len(s.edges))
	for i, e := range s.edges {
		s.index[graph.CanonKey(e.U, e.V)] = int32(i)
	}
	// Vertex→block lists: bucket both endpoints of every edge, then sort
	// and dedup per vertex.
	deg := make([]int32, s.n+1)
	for _, e := range s.edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for v := int32(0); v < s.n; v++ {
		deg[v+1] += deg[v]
	}
	raw := make([]int32, deg[s.n])
	next := make([]int32, s.n)
	copy(next, deg[:s.n])
	for i, e := range s.edges {
		c := s.comp[i]
		raw[next[e.U]] = c
		next[e.U]++
		raw[next[e.V]] = c
		next[e.V]++
	}
	offsets := make([]int32, s.n+1)
	blocks := make([]int32, 0, len(raw))
	for v := int32(0); v < s.n; v++ {
		lst := raw[deg[v]:deg[v+1]]
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		start := len(blocks)
		for i, c := range lst {
			if i == 0 || c != lst[i-1] {
				blocks = append(blocks, c)
			}
		}
		offsets[v] = int32(start)
		offsets[v+1] = int32(len(blocks))
	}
	s.offsets = offsets
	s.blocks = blocks

	// Block-cut forest: a cut vertex (member of >= 2 blocks) links to each
	// of its blocks. Non-cut vertices are interior to one block and don't
	// appear as forest nodes.
	cutIdx := make([]int32, s.n)
	numNodes := int32(s.numComp)
	for v := int32(0); v < s.n; v++ {
		if offsets[v+1]-offsets[v] >= 2 {
			cutIdx[v] = numNodes
			numNodes++
		} else {
			cutIdx[v] = -1
		}
	}
	fdeg := make([]int32, numNodes+1)
	for v := int32(0); v < s.n; v++ {
		cn := cutIdx[v]
		if cn < 0 {
			continue
		}
		fdeg[cn+1] += offsets[v+1] - offsets[v]
		for _, b := range blocks[offsets[v]:offsets[v+1]] {
			fdeg[b+1]++
		}
	}
	for i := int32(0); i < numNodes; i++ {
		fdeg[i+1] += fdeg[i]
	}
	bcAdj := make([]int32, fdeg[numNodes])
	fnext := make([]int32, numNodes)
	copy(fnext, fdeg[:numNodes])
	for v := int32(0); v < s.n; v++ {
		cn := cutIdx[v]
		if cn < 0 {
			continue
		}
		for _, b := range blocks[offsets[v]:offsets[v+1]] {
			bcAdj[fnext[cn]] = b
			fnext[cn]++
			bcAdj[fnext[b]] = cn
			fnext[b]++
		}
	}
	s.cutIdx = cutIdx
	s.bcOff = fdeg
	s.bcAdj = bcAdj
}

// N returns the current vertex count.
func (s *State) N() int { return int(s.n) }

// NumEdges returns the current edge count.
func (s *State) NumEdges() int { return len(s.edges) }

// NumComponents returns the current block count.
func (s *State) NumComponents() int { return s.numComp }

// Edges returns the current edge list. The slice is shared; callers must
// not modify it.
func (s *State) Edges() []graph.Edge { return s.edges }

// Labels returns a copy of the canonical per-edge block labels.
func (s *State) Labels() []int32 { return append([]int32(nil), s.comp...) }

// BlocksOfVertex returns the ids of the blocks containing v, ascending;
// nil for isolated or out-of-range vertices. The slice aliases the index.
func (s *State) BlocksOfVertex(v int32) []int32 {
	if v < 0 || v >= s.n {
		return nil
	}
	lo, hi := s.offsets[v], s.offsets[v+1]
	if lo == hi {
		return nil
	}
	return s.blocks[lo:hi:hi]
}

// sharedBlock returns the block containing both u and v, or -1. Two
// vertices share at most one block (two blocks intersect in at most one
// vertex), so the first intersection is the only one.
func (s *State) sharedBlock(u, v int32) int32 {
	a, b := s.BlocksOfVertex(u), s.BlocksOfVertex(v)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return a[i]
		}
	}
	return -1
}

// Graph materializes the current edge list as a bicc.Graph.
func (s *State) Graph() (*bicc.Graph, error) {
	return bicc.NewGraph(int(s.n), s.edges)
}
