package incr

import (
	"context"
	"fmt"
	"sort"

	"bicc"
	"bicc/internal/conncomp"
	"bicc/internal/faults"
	"bicc/internal/graph"
	"bicc/internal/par"
)

// Recompute runs an engine over a graph and returns its decomposition. Apply
// calls it for the dirty region (ModeRebuild) or the whole final graph
// (ModeFull); the service wires it to the same supervised engine trunk that
// serves queries, so breakers and fallbacks apply to incremental work too.
type Recompute func(ctx context.Context, g *bicc.Graph) (*bicc.Result, error)

// batch is the validated form of one delta sequence.
type batch struct {
	newN    int32
	dels    []int32      // indices into the current edge list, unique
	inserts []graph.Edge // appended edges in batch order
}

// validate checks every delta against the state (with earlier deltas of the
// same batch applied, so "delete then re-insert" is legal while duplicates
// and missing edges are rejected) and resolves deletes to edge indices. It
// mutates nothing.
func (s *State) validate(deltas []Delta) (*batch, error) {
	b := &batch{newN: s.n}
	added := make(map[uint64]struct{})
	removed := make(map[uint64]struct{})
	for i, d := range deltas {
		if d.U < 0 || d.V < 0 {
			return nil, &DeltaError{i, d, "negative vertex"}
		}
		if d.U == d.V {
			return nil, &DeltaError{i, d, "self loop"}
		}
		key := graph.CanonKey(d.U, d.V)
		switch d.Op {
		case OpInsert:
			if _, dup := added[key]; dup {
				return nil, &DeltaError{i, d, "duplicate of an insert earlier in this batch"}
			}
			if _, ok := s.index[key]; ok {
				if _, rem := removed[key]; !rem {
					return nil, &DeltaError{i, d, "edge already present"}
				}
			}
			added[key] = struct{}{}
			b.inserts = append(b.inserts, graph.Edge{U: d.U, V: d.V})
			if d.U >= b.newN {
				b.newN = d.U + 1
			}
			if d.V >= b.newN {
				b.newN = d.V + 1
			}
		case OpDelete:
			if _, ok := added[key]; ok {
				return nil, &DeltaError{i, d, "edge was inserted earlier in this batch"}
			}
			idx, ok := s.index[key]
			if !ok {
				return nil, &DeltaError{i, d, "edge not present"}
			}
			if _, rem := removed[key]; rem {
				return nil, &DeltaError{i, d, "edge already deleted in this batch"}
			}
			removed[key] = struct{}{}
			b.dels = append(b.dels, idx)
		default:
			return nil, &DeltaError{i, d, "unknown op"}
		}
	}
	return b, nil
}

// assembleFinal builds the post-batch edge list: surviving edges in their
// current order, then the batch's inserts in submission order. This is the
// edge order a from-scratch upload of the final graph must use for answers
// to compare byte-for-byte.
func assembleFinal(edges []graph.Edge, del []bool, inserts []graph.Edge) []graph.Edge {
	out := make([]graph.Edge, 0, len(edges)+len(inserts))
	for i, e := range edges {
		if del == nil || !del[i] {
			out = append(out, e)
		}
	}
	return append(out, inserts...)
}

// Preview validates a batch and returns the vertex count and edge list the
// graph will have after it. Callers persist mutations (WAL append with the
// post-state fingerprint) between Preview and Apply; a batch that passes
// Preview can only fail Apply for runtime reasons (faults, cancellation,
// engine errors), never validation.
func (s *State) Preview(deltas []Delta) (newN int32, final []graph.Edge, err error) {
	b, err := s.validate(deltas)
	if err != nil {
		return 0, nil, err
	}
	del := make([]bool, len(s.edges))
	for _, i := range b.dels {
		del[i] = true
	}
	return b.newN, assembleFinal(s.edges, del, b.inserts), nil
}

// Apply commits a batch. It classifies every delta against the current
// block-cut structure, absorbs intra-block inserts in place, and recomputes
// the union of the dirty blocks (or, past the size threshold, the whole
// graph) via run. On error the State is unchanged — the caller can degrade
// to a full recompute of the final edge list and rebuild a fresh State.
func (s *State) Apply(ctx context.Context, deltas []Delta, cfg Config, run Recompute) (st *ApplyStats, err error) {
	defer func() {
		if v := recover(); v != nil {
			st, err = nil, par.AsPanicError(-1, v)
		}
	}()
	b, err := s.validate(deltas)
	if err != nil {
		return nil, err
	}
	cancel := &par.Canceler{}
	stop := cancel.Watch(ctx)
	defer stop()

	// Classification pass, one fault point per delta.
	for i := range deltas {
		faults.Inject(cancel, SiteApply, 0, i)
		if err := cancel.Err(); err != nil {
			return nil, err
		}
	}

	del := make([]bool, len(s.edges))
	dirty := make(map[int32]bool)
	for _, i := range b.dels {
		del[i] = true
		dirty[s.comp[i]] = true
	}

	// Classify inserts: an intra-block insert is an absorb candidate; a
	// structural insert makes each endpoint that lives in some block a
	// terminal of the Steiner closure below.
	type ins struct {
		e      graph.Edge
		absorb int32 // block to absorb into, or -1
	}
	inserts := make([]ins, len(b.inserts))
	var termVerts []int32
	for k, e := range b.inserts {
		sb := int32(-1)
		if e.U < s.n && e.V < s.n {
			sb = s.sharedBlock(e.U, e.V)
		}
		inserts[k] = ins{e: e, absorb: sb}
		if sb < 0 {
			for _, v := range [2]int32{e.U, e.V} {
				if v < s.n && len(s.BlocksOfVertex(v)) > 0 {
					termVerts = append(termVerts, v)
				}
			}
		}
	}

	// Steiner closure: every cycle through a new edge decomposes into new
	// edges and paths between terminals, and a path between two vertices
	// only crosses blocks on their block-cut tree path — so dirtying the
	// minimal subtrees spanning each component's terminals covers every
	// block a structural insert can merge.
	s.steinerClose(termVerts, dirty)

	// Absorb candidates whose shared block went dirty join the region: the
	// block's identity is being recomputed, so the new edge must be labeled
	// by the engine along with it. (No terminals needed: a cycle through an
	// intra-block edge that escapes its block must ride structural inserts,
	// whose terminals already dirty every block such a cycle can touch.)
	absorbed := 0
	structural := 0
	for k := range inserts {
		if inserts[k].absorb >= 0 && dirty[inserts[k].absorb] {
			inserts[k].absorb = -1
		}
		if inserts[k].absorb >= 0 {
			absorbed++
		} else {
			structural++
		}
	}

	stats := &ApplyStats{
		Deltas:      len(deltas),
		Inserts:     len(b.inserts),
		Deletes:     len(b.dels),
		Absorbed:    absorbed,
		DirtyBlocks: len(dirty),
	}

	// Pure absorb: nothing structural anywhere in the batch. O(batch)
	// commit, no engine, routing index untouched (both endpoints were
	// already in the target block).
	if len(dirty) == 0 && structural == 0 {
		touched := make(map[int32]bool, len(inserts))
		for _, in := range inserts {
			s.index[graph.CanonKey(in.e.U, in.e.V)] = int32(len(s.edges))
			s.edges = append(s.edges, in.e)
			s.comp = append(s.comp, in.absorb)
			touched[in.absorb] = true
		}
		stats.Mode = ModeAbsorb
		stats.NumComponents = s.numComp
		stats.TouchedBlocks = sortedKeys(touched)
		return stats, nil
	}

	finalCount := len(s.edges) - len(b.dels) + len(b.inserts)
	regionEdges := structural
	for i, c := range s.comp {
		if !del[i] && dirty[c] {
			regionEdges++
		}
	}
	stats.RegionEdges = regionEdges
	if finalCount > 0 {
		stats.RegionRatio = float64(regionEdges) / float64(finalCount)
	}

	if stats.RegionRatio > cfg.threshold() {
		// The dirty region covers too much of the graph: locality
		// bookkeeping would cost more than it saves. Full engine run.
		if run == nil {
			return nil, fmt.Errorf("incr: full recompute needed but no engine provided")
		}
		final := assembleFinal(s.edges, del, b.inserts)
		g, err := bicc.NewGraph(int(b.newN), final)
		if err != nil {
			return nil, fmt.Errorf("incr: final graph: %w", err)
		}
		res, err := run(ctx, g)
		if err != nil {
			return nil, err
		}
		comp := append([]int32(nil), res.EdgeComponent...)
		if len(comp) != g.NumEdges() {
			return nil, fmt.Errorf("incr: engine labeled %d of %d edges", len(comp), g.NumEdges())
		}
		s.n = b.newN
		s.edges = final
		s.numComp = conncomp.Normalize(comp)
		s.comp = comp
		s.reindex()
		stats.Mode = ModeFull
		stats.Absorbed = 0
		stats.NumComponents = s.numComp
		return stats, nil
	}

	if run == nil {
		return nil, fmt.Errorf("incr: rebuild needed but no engine provided")
	}

	// Region assembly, one fault point per dirty block.
	dirtyIDs := sortedKeys(dirty)
	for j := range dirtyIDs {
		faults.Inject(cancel, SiteRebuild, 0, j)
		if err := cancel.Err(); err != nil {
			return nil, err
		}
	}

	// Build the final edge list and, in the same pass, the compact region
	// subgraph. src[i] is the final label source of final edge i: an old
	// block id (>= 0, survives untouched) or -(r+1) for region edge r.
	local := make(map[int32]int32)
	var vm []int32
	var regionSub []graph.Edge
	addRegion := func(e graph.Edge) int32 {
		for _, v := range [2]int32{e.U, e.V} {
			if _, ok := local[v]; !ok {
				local[v] = int32(len(vm))
				vm = append(vm, v)
			}
		}
		regionSub = append(regionSub, graph.Edge{U: local[e.U], V: local[e.V]})
		return int32(len(regionSub) - 1)
	}
	finalEdges := make([]graph.Edge, 0, finalCount)
	src := make([]int32, 0, finalCount)
	for i, e := range s.edges {
		if del[i] {
			continue
		}
		finalEdges = append(finalEdges, e)
		if dirty[s.comp[i]] {
			src = append(src, -(addRegion(e) + 1))
		} else {
			src = append(src, s.comp[i])
		}
	}
	for _, in := range inserts {
		finalEdges = append(finalEdges, in.e)
		if in.absorb >= 0 {
			src = append(src, in.absorb)
		} else {
			src = append(src, -(addRegion(in.e) + 1))
		}
	}

	rg, err := bicc.NewGraph(len(vm), regionSub)
	if err != nil {
		return nil, fmt.Errorf("incr: region subgraph: %w", err)
	}
	rres, err := run(ctx, rg)
	if err != nil {
		return nil, err
	}
	if len(rres.EdgeComponent) != len(regionSub) {
		return nil, fmt.Errorf("incr: engine labeled %d of %d region edges",
			len(rres.EdgeComponent), len(regionSub))
	}

	// Stitch: untouched blocks keep their identity, region edges take the
	// engine's labels shifted past the old id space, then the whole labeling
	// is re-densified into first-occurrence order — byte-identical to what
	// any engine emits for the final edge list.
	labels := make([]int32, len(finalEdges))
	for i, sc := range src {
		if sc >= 0 {
			labels[i] = sc
		} else {
			labels[i] = int32(s.numComp) + rres.EdgeComponent[-sc-1]
		}
	}
	k := conncomp.Normalize(labels)

	touched := make(map[int32]bool)
	for i, sc := range src {
		if sc < 0 {
			touched[labels[i]] = true
		}
	}
	for i, in := range inserts {
		if in.absorb >= 0 {
			// Absorbed edges sit at the end of the final list, after the
			// survivors: position = len(survivors) + i.
			touched[labels[len(finalEdges)-len(inserts)+i]] = true
		}
	}

	s.n = b.newN
	s.edges = finalEdges
	s.comp = labels
	s.numComp = k
	s.reindex()
	stats.Mode = ModeRebuild
	stats.NumComponents = k
	stats.TouchedBlocks = sortedKeys(touched)
	return stats, nil
}

// steinerClose marks dirty every block on the minimal block-cut subtree
// spanning each component's terminal vertices. Tree nodes are blocks
// [0, numComp) and cut vertices numbered from numComp up.
func (s *State) steinerClose(termVerts []int32, dirty map[int32]bool) {
	if len(termVerts) < 2 {
		return
	}
	// A terminal vertex maps to its cut node, or to its only block.
	// Terminals are deduplicated by VERTEX, not by tree node: two distinct
	// terminal vertices attached to the same block mean a real path through
	// that block's edges, so the block must go dirty even though the tree
	// path between the two attachment nodes is trivial. (A single vertex
	// appearing as the endpoint of several structural inserts contributes
	// nothing by itself — a cycle can pass through the vertex without
	// touching any block's edges.)
	node := func(v int32) int32 {
		if cn := s.cutIdx[v]; cn >= 0 {
			return cn
		}
		return s.BlocksOfVertex(v)[0]
	}
	terms := make([]int32, 0, len(termVerts)) // one node per distinct terminal vertex
	seen := make(map[int32]bool, len(termVerts))
	for _, v := range termVerts {
		if !seen[v] {
			seen[v] = true
			terms = append(terms, node(v))
		}
	}

	numNodes := len(s.bcOff) - 1
	compID := make([]int32, numNodes)
	parent := make([]int32, numNodes)
	for i := range compID {
		compID[i] = -1
	}
	// Early-stopping BFS over the materialized forest: each search runs
	// until every terminal node anywhere has been visited, so a batch whose
	// terminals cluster in one region explores only the ball around them —
	// the forest outside the ball is never walked. Terminals a search can't
	// reach sit in other forest components and seed later searches.
	pending := make(map[int32]bool, len(terms))
	for _, t := range terms {
		pending[t] = true
	}
	var queue []int32
	for ci, t := range terms {
		if compID[t] != -1 {
			continue
		}
		// t is the root every other terminal in its component walks up to.
		compID[t] = int32(ci)
		parent[t] = -1
		delete(pending, t)
		queue = append(queue[:0], t)
		for len(queue) > 0 && len(pending) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range s.bcAdj[s.bcOff[x]:s.bcOff[x+1]] {
				if compID[y] == -1 {
					compID[y] = int32(ci)
					parent[y] = x
					delete(pending, y)
					queue = append(queue, y)
				}
			}
		}
	}
	groups := make(map[int32][]int32)
	for _, t := range terms {
		groups[compID[t]] = append(groups[compID[t]], t)
	}
	marked := make([]bool, numNodes)
	for _, g := range groups {
		if len(g) < 2 {
			// One distinct terminal vertex in this component: no
			// terminal-to-terminal path exists, nothing merges here.
			continue
		}
		// g[0] initiated the BFS for this component (terminals are visited
		// in order), so every parent chain terminates at it.
		marked[g[0]] = true
		for _, t := range g[1:] {
			for x := t; x != -1 && !marked[x]; x = parent[x] {
				marked[x] = true
			}
		}
	}
	for id := 0; id < s.numComp; id++ {
		if marked[id] {
			dirty[int32(id)] = true
		}
	}
}

// sortedKeys returns the keys of a block set, ascending.
func sortedKeys(m map[int32]bool) []int32 {
	out := make([]int32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
