package incr

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"bicc"
	"bicc/internal/gen"
	"bicc/internal/graph"
)

// The incremental differential harness: for every graph family and every
// engine, any randomized mutation sequence applied through State must yield
// labels — and every label-derived query answer — byte-identical to running
// that engine from scratch on the final edge list. "Byte-identical" is
// literal: labels are compared element-wise and derived views as marshaled
// JSON.

type diffFamily struct {
	name string
	el   *graph.EdgeList
}

func diffFamilies() []diffFamily {
	return []diffFamily{
		{"random", gen.RandomConnected(180, 520, 42)},
		{"torus", gen.Torus(10, 12)},
		{"star-chain", gen.Caterpillar(30, 4)},
	}
}

var diffAlgorithms = []bicc.Algorithm{bicc.Sequential, bicc.TVSMP, bicc.TVOpt, bicc.TVFilter, bicc.FastBCC}

// engineRun returns a Recompute bound to one algorithm.
func engineRun(algo bicc.Algorithm) Recompute {
	return func(ctx context.Context, g *bicc.Graph) (*bicc.Result, error) {
		return bicc.BiconnectedComponentsCtx(ctx, g, &bicc.Options{Algorithm: algo, Procs: 2})
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// newTestState builds a State for fam using algo.
func newTestState(t *testing.T, fam diffFamily, algo bicc.Algorithm) (*bicc.Graph, *State) {
	t.Helper()
	g, err := bicc.NewGraph(int(fam.el.N), fam.el.Edges)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: algo, Procs: 2})
	if err != nil {
		t.Fatalf("BiconnectedComponents(%v): %v", algo, err)
	}
	st, err := NewState(g, res)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	return g, st
}

// assertStateEqualsScratch compares the maintained state against a
// from-scratch engine run on the state's own edge list: labels elementwise,
// then every query answer the service derives from them.
func assertStateEqualsScratch(t *testing.T, st *State, algo bicc.Algorithm) {
	t.Helper()
	g, err := st.Graph()
	if err != nil {
		t.Fatalf("state graph invalid: %v", err)
	}
	want, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: algo, Procs: 2})
	if err != nil {
		t.Fatalf("scratch %v: %v", algo, err)
	}
	if st.NumComponents() != want.NumComponents {
		t.Fatalf("NumComponents=%d, scratch %d", st.NumComponents(), want.NumComponents)
	}
	labels := st.Labels()
	for i, c := range want.EdgeComponent {
		if labels[i] != c {
			t.Fatalf("edge %d labeled %d, scratch %d", i, labels[i], c)
		}
	}
	// Query answers: reconstruct a Result from the maintained labels (what
	// the service serves) and compare each view byte-for-byte.
	got, err := bicc.ReconstructResult(g, want.Algorithm, labels)
	if err != nil {
		t.Fatalf("ReconstructResult: %v", err)
	}
	if a, b := mustJSON(t, got.ArticulationPoints()), mustJSON(t, want.ArticulationPoints()); a != b {
		t.Fatalf("articulation %s, scratch %s", a, b)
	}
	if a, b := mustJSON(t, got.Bridges()), mustJSON(t, want.Bridges()); a != b {
		t.Fatalf("bridges %s, scratch %s", a, b)
	}
	if a, b := mustJSON(t, got.Components()), mustJSON(t, want.Components()); a != b {
		t.Fatalf("components %s, scratch %s", a, b)
	}
	gt, wt := got.BlockCutTree(), want.BlockCutTree()
	if a, b := mustJSON(t, gt.CutVertices()), mustJSON(t, wt.CutVertices()); a != b {
		t.Fatalf("cut vertices %s, scratch %s", a, b)
	}
	for v := int32(0); v < int32(st.N()); v++ {
		if a, b := mustJSON(t, gt.BlocksOfVertex(v)), mustJSON(t, wt.BlocksOfVertex(v)); a != b {
			t.Fatalf("blocks of %d: %s, scratch %s", v, a, b)
		}
		if a, b := mustJSON(t, st.BlocksOfVertex(v)), mustJSON(t, wt.BlocksOfVertex(v)); a != b {
			t.Fatalf("routing index blocks of %d: %s, scratch %s", v, a, b)
		}
	}
	for b := int32(0); b < int32(st.NumComponents()); b++ {
		if x, y := mustJSON(t, gt.VerticesOfBlock(b)), mustJSON(t, wt.VerticesOfBlock(b)); x != y {
			t.Fatalf("vertices of block %d: %s, scratch %s", b, x, y)
		}
	}
}

// randomBatch builds a batch of nd random deltas against st: a mix of
// absorbable inserts (two vertices of one block with no edge yet),
// arbitrary inserts (possibly cross-block, cross-component, or to a brand
// new vertex), and deletes of random existing edges.
func randomBatch(rng *rand.Rand, st *State, nd int) []Delta {
	present := make(map[uint64]bool, len(st.Edges()))
	for _, e := range st.Edges() {
		present[graph.CanonKey(e.U, e.V)] = true
	}
	var out []Delta
	edges := append([]graph.Edge(nil), st.Edges()...)
	for len(out) < nd {
		switch rng.Intn(4) {
		case 0: // absorbable insert: same-block endpoint pair without an edge
			if len(edges) == 0 {
				continue
			}
			e := edges[rng.Intn(len(edges))]
			f := edges[rng.Intn(len(edges))]
			for _, u := range [2]int32{e.U, e.V} {
				for _, v := range [2]int32{f.U, f.V} {
					if u != v && st.sharedBlock(u, v) >= 0 && !present[graph.CanonKey(u, v)] {
						present[graph.CanonKey(u, v)] = true
						out = append(out, Delta{OpInsert, u, v})
						goto next
					}
				}
			}
		case 1: // arbitrary insert, sometimes to a fresh vertex
			u := int32(rng.Intn(st.N()))
			v := int32(rng.Intn(st.N() + 3)) // may exceed N: vertex growth
			if u == v || present[graph.CanonKey(u, v)] {
				continue
			}
			present[graph.CanonKey(u, v)] = true
			out = append(out, Delta{OpInsert, u, v})
		default: // delete a random surviving edge
			if len(edges) == 0 {
				continue
			}
			i := rng.Intn(len(edges))
			e := edges[i]
			if !present[graph.CanonKey(e.U, e.V)] {
				continue
			}
			present[graph.CanonKey(e.U, e.V)] = false
			edges[i] = edges[len(edges)-1]
			edges = edges[:len(edges)-1]
			out = append(out, Delta{OpDelete, e.U, e.V})
		}
	next:
	}
	return out
}

// TestDifferentialIncrementalEqualsScratch is the core harness: 3 families
// × 4 engines × randomized mutation sequences, byte-equal answers after
// every batch, with all three apply modes exercised across the run.
func TestDifferentialIncrementalEqualsScratch(t *testing.T) {
	modes := map[Mode]int{}
	for _, fam := range diffFamilies() {
		for _, algo := range diffAlgorithms {
			t.Run(fmt.Sprintf("%s/%s", fam.name, algo), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(len(fam.name))*1000 + int64(algo)))
				_, st := newTestState(t, fam, algo)
				cfg := Config{Threshold: 0.6}
				for round := 0; round < 8; round++ {
					batch := randomBatch(rng, st, 1+rng.Intn(6))
					stats, err := st.Apply(context.Background(), batch, cfg, engineRun(algo))
					if err != nil {
						t.Fatalf("round %d: Apply: %v", round, err)
					}
					modes[stats.Mode]++
					assertStateEqualsScratch(t, st, algo)
				}
			})
		}
	}
	if modes[ModeAbsorb] == 0 || modes[ModeRebuild] == 0 {
		t.Fatalf("mutation mix did not exercise both absorb and rebuild: %v", modes)
	}
}

// TestDifferentialThresholdDegradesToFull proves the size-ratio escape
// hatch: with a tiny threshold every structural batch goes ModeFull, and
// answers still match scratch.
func TestDifferentialThresholdDegradesToFull(t *testing.T) {
	fam := diffFamilies()[0]
	_, st := newTestState(t, fam, bicc.Sequential)
	rng := rand.New(rand.NewSource(7))
	cfg := Config{Threshold: 1e-9}
	fulls := 0
	for round := 0; round < 5; round++ {
		batch := randomBatch(rng, st, 4)
		stats, err := st.Apply(context.Background(), batch, cfg, engineRun(bicc.Sequential))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if stats.Mode == ModeFull {
			fulls++
		}
		assertStateEqualsScratch(t, st, bicc.Sequential)
	}
	if fulls == 0 {
		t.Fatal("threshold 1e-9 never degraded to a full recompute")
	}
}

// TestDifferentialHostileBatches aims adversarial mixes at the planner's
// soundness proof: multi-bridge cycles across components, delete+reinsert,
// deletes splitting a block an absorbable insert targets, chains through
// brand-new vertices.
func TestDifferentialHostileBatches(t *testing.T) {
	// Two 4-cycles joined by nothing: inserting two cross-component edges
	// in one batch creates one merged block through both bridges.
	base := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0},
		{U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 7}, {U: 7, V: 4},
	}
	g, err := bicc.NewGraph(8, base)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: bicc.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(g, res)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]Delta{
		// Two cross-component bridges forming a cycle: blocks on both sides
		// must merge (the aux-cycle case the Steiner closure exists for).
		{{OpInsert, 0, 4}, {OpInsert, 2, 6}},
		// Delete an edge of the merged block, then an intra-block insert
		// whose target block just went dirty (demotion to region edge).
		{{OpDelete, 0, 1}, {OpInsert, 1, 3}},
		// Chain through two brand-new vertices closing a cycle.
		{{OpInsert, 1, 8}, {OpInsert, 8, 9}, {OpInsert, 9, 5}},
		// Delete then re-insert the same edge in one batch.
		{{OpDelete, 2, 3}, {OpInsert, 2, 3}},
	}
	for bi, batch := range batches {
		if _, err := st.Apply(context.Background(), batch, Config{}, engineRun(bicc.Sequential)); err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		assertStateEqualsScratch(t, st, bicc.Sequential)
		// The same sequence must hold for every engine's numbering.
		for _, algo := range diffAlgorithms {
			assertStateEqualsScratch(t, st, algo)
		}
	}
}
