package incr

import (
	"context"
	"errors"
	"testing"

	"bicc"
	"bicc/internal/graph"
)

// FuzzApplyDeltas drives arbitrary delta sequences — valid or hostile —
// through a maintained State and checks the two invariants the service
// depends on: a rejected batch leaves the state byte-identical (atomicity),
// and an accepted batch leaves labels byte-identical to a from-scratch
// engine run on the state's own edge list (correctness). Input bytes decode
// as (op, u, v) triples, so the fuzzer explores duplicate inserts, absent
// deletes, self loops, vertex growth, and delete-then-reinsert interleavings
// without any guidance.
func FuzzApplyDeltas(f *testing.F) {
	f.Add([]byte{0, 0, 4})                            // cross-block insert
	f.Add([]byte{1, 0, 1, 0, 0, 1})                   // delete then re-insert
	f.Add([]byte{0, 0, 2, 0, 2, 0})                   // insert + duplicate (reject)
	f.Add([]byte{0, 0, 9, 0, 9, 10})                  // chain through new vertices
	f.Add([]byte{1, 3, 4, 1, 4, 5, 0, 3, 5, 0, 1, 7}) // deletes + inserts mixed
	f.Add([]byte{0, 5, 5})                            // self loop (reject)
	f.Add([]byte{1, 0, 5})                            // absent delete (reject)
	f.Add([]byte{0, 1, 3, 1, 1, 3})                   // insert then delete it (reject)

	base := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, // triangle
		{U: 2, V: 3},                                           // bridge
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 3}, // square
	}
	run := func(ctx context.Context, g *bicc.Graph) (*bicc.Result, error) {
		return bicc.BiconnectedComponentsCtx(ctx, g, &bicc.Options{Algorithm: bicc.Sequential})
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := bicc.NewGraph(7, base)
		if err != nil {
			t.Fatal(err)
		}
		res, err := run(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewState(g, res)
		if err != nil {
			t.Fatal(err)
		}
		// Split the input into batches of up to 4 deltas so one hostile
		// delta can't shadow valid work later in the input.
		for off := 0; off+3 <= len(data) && off < 60; {
			var deltas []Delta
			for k := 0; k < 4 && off+3 <= len(data); k++ {
				op := OpInsert
				if data[off]&1 == 1 {
					op = OpDelete
				}
				// Map endpoints into a window slightly past the current
				// vertex count so growth and out-of-range mix naturally.
				span := st.N() + 3
				deltas = append(deltas, Delta{
					Op: op,
					U:  int32(int(data[off+1]) % span),
					V:  int32(int(data[off+2]) % span),
				})
				off += 3
			}
			before := st.Labels()
			edgesBefore := append([]graph.Edge(nil), st.Edges()...)
			stats, aerr := st.Apply(context.Background(), deltas, Config{}, run)
			if aerr != nil {
				var de *DeltaError
				if !errors.As(aerr, &de) {
					t.Fatalf("non-client error from validation-only input: %v", aerr)
				}
				// Atomicity: a rejected batch leaves no trace.
				if st.NumEdges() != len(edgesBefore) {
					t.Fatalf("rejected batch changed edge count: %d, had %d",
						st.NumEdges(), len(edgesBefore))
				}
				for i, c := range st.Labels() {
					if c != before[i] {
						t.Fatalf("rejected batch relabeled edge %d", i)
					}
				}
				continue
			}
			if stats.Deltas != len(deltas) {
				t.Fatalf("stats count %d deltas, batch had %d", stats.Deltas, len(deltas))
			}
			// Correctness: maintained labels == scratch labels on the same
			// edge list.
			sg, err := st.Graph()
			if err != nil {
				t.Fatalf("committed state has invalid graph: %v", err)
			}
			want, err := run(context.Background(), sg)
			if err != nil {
				t.Fatal(err)
			}
			if st.NumComponents() != want.NumComponents {
				t.Fatalf("components %d, scratch %d", st.NumComponents(), want.NumComponents)
			}
			labels := st.Labels()
			for i, c := range want.EdgeComponent {
				if labels[i] != c {
					t.Fatalf("edge %d labeled %d, scratch %d", i, labels[i], c)
				}
			}
		}
	})
}
