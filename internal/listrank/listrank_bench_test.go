package listrank

import (
	"math/rand"
	"runtime"
	"testing"
)

// The paper's TV-SMP cost center: ranking a list with no locality. The
// Wyllie/Helman–JáJá gap here explains the Fig. 4 tree-computation bars.
func BenchmarkRanks(b *testing.B) {
	const n = 1 << 18
	rng := rand.New(rand.NewSource(1))
	next, head, _ := randomList(rng, n)
	p := runtime.GOMAXPROCS(0)
	b.Run("wyllie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Ranks(p, next, head)
		}
	})
	b.Run("helman-jaja", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RanksHJ(p, next, head); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSuffixSum(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(2))
	next, _, _ := randomList(rng, n)
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(rng.Intn(10))
	}
	p := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		SuffixSum(p, next, vals)
	}
}
