// Package listrank implements parallel list ranking, the primitive that
// dominates the Euler-tour tree computations of TV-SMP. Two algorithms are
// provided:
//
//   - Wyllie's pointer jumping: O(n log n) work, O(log n) rounds, the
//     textbook PRAM algorithm. Every round chases pointers across the whole
//     array with no locality — exactly the cache behaviour the paper blames
//     for TV-SMP's tree-computation cost (§3.2, Fig. 4).
//   - Helman–JáJá sublist ranking: s random splitters cut the list into
//     sublists that are walked sequentially in parallel; the s-node sublist
//     chain is ranked on one processor and offsets are propagated back.
//     O(n) work and the practical SMP winner.
//
// Lists are successor arrays: next[i] is the successor of node i, or -1 for
// the tail. All primitives assume every node 0..n-1 lies on one list (the
// Euler tour of a tree is such a list once broken at the root).
package listrank

import (
	"fmt"
	"math/rand"

	"bicc/internal/faults"
	"bicc/internal/par"
)

// Fault-injection points: once per pointer-jumping round (Wyllie) and once
// per sublist-walk block (Helman–JáJá). No cancellation token reaches list
// ranking, so cancel-kind rules are inert here.
var (
	siteWyllie = faults.RegisterSite("listrank.wyllie", false)
	siteHJ     = faults.RegisterSite("listrank.hj", false)
)

// SuffixSum returns, for every node i, the sum of vals over the nodes from i
// to the tail (inclusive), by Wyllie pointer jumping with p workers. next is
// not modified.
func SuffixSum(p int, next []int32, vals []int32) []int32 {
	n := len(next)
	out := make([]int32, n)
	nxt := make([]int32, n)
	par.For(p, n, func(lo, hi int) {
		copy(out[lo:hi], vals[lo:hi])
		copy(nxt[lo:hi], next[lo:hi])
	})
	scratchV := make([]int32, n)
	scratchN := make([]int32, n)
	for round := 0; ; round++ {
		faults.Inject(nil, siteWyllie, 0, round)
		done := par.CountTrue(p, n, func(i int) bool { return nxt[i] == -1 })
		if done == n {
			break
		}
		// Jump: out[i] += out[nxt[i]]; nxt[i] = nxt[nxt[i]]. Double-buffered
		// so reads see the previous round consistently (EREW-style).
		par.For(p, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if j := nxt[i]; j != -1 {
					scratchV[i] = out[i] + out[j]
					scratchN[i] = nxt[j]
				} else {
					scratchV[i] = out[i]
					scratchN[i] = -1
				}
			}
		})
		out, scratchV = scratchV, out
		nxt, scratchN = scratchN, nxt
	}
	return out
}

// Ranks returns the 0-based position of every node from the given head
// using Wyllie pointer jumping: ranks[head] = 0 and ranks[tail] = n-1.
func Ranks(p int, next []int32, head int32) []int32 {
	n := len(next)
	if n == 0 {
		return nil
	}
	ones := make([]int32, n)
	par.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ones[i] = 1
		}
	})
	// dist-to-tail (counting self) = suffix sum of ones; position from head
	// = dist(head) - dist(i).
	dist := SuffixSum(p, next, ones)
	dh := dist[head]
	par.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dist[i] = dh - dist[i]
		}
	})
	return dist
}

// RanksHJ returns the same positions as Ranks using the Helman–JáJá sublist
// algorithm. It verifies full coverage and returns an error if next does not
// describe a single list over all n nodes reachable from head.
func RanksHJ(p int, next []int32, head int32) ([]int32, error) {
	n := len(next)
	if n == 0 {
		return nil, nil
	}
	p = par.Procs(p)
	s := p * 8
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	// mark[i] = sublist id owning node i as its head, or -1.
	mark := make([]int32, n)
	par.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mark[i] = -1
		}
	})
	heads := make([]int32, 0, s)
	mark[head] = 0
	heads = append(heads, head)
	rng := rand.New(rand.NewSource(int64(n)*1315423911 + 7))
	for len(heads) < s {
		v := int32(rng.Intn(n))
		if mark[v] == -1 {
			mark[v] = int32(len(heads))
			heads = append(heads, v)
		}
	}
	s = len(heads)
	// Walk each sublist sequentially: local ranks plus (successor sublist,
	// length) per sublist.
	local := make([]int32, n)
	succ := make([]int32, s)   // following sublist id, or -1 at list end
	length := make([]int32, s) // nodes in this sublist
	par.For(p, s, func(lo, hi int) {
		faults.Inject(nil, siteHJ, 0, lo)
		for sl := lo; sl < hi; sl++ {
			v := heads[sl]
			r := int32(0)
			for {
				local[v] = r
				r++
				nv := next[v]
				if nv == -1 {
					succ[sl] = -1
					break
				}
				if mark[nv] != -1 {
					succ[sl] = mark[nv]
					break
				}
				v = nv
			}
			length[sl] = r
		}
	})
	// Rank the sublist chain sequentially from the head's sublist.
	offset := make([]int32, s)
	visited := 0
	acc := int32(0)
	for sl := mark[head]; sl != -1; sl = succ[sl] {
		if visited >= s {
			return nil, fmt.Errorf("listrank: sublist chain has a cycle")
		}
		visited++
		offset[sl] = acc
		acc += length[sl]
	}
	if int(acc) != n || visited != s {
		return nil, fmt.Errorf("listrank: list from head covers %d of %d nodes (%d of %d sublists)", acc, n, visited, s)
	}
	// Final ranks: redo the walks adding offsets (second pass keeps the
	// memory footprint at one extra array, as in Helman–JáJá).
	ranks := local
	par.For(p, s, func(lo, hi int) {
		for sl := lo; sl < hi; sl++ {
			off := offset[sl]
			if off == 0 {
				continue
			}
			v := heads[sl]
			for {
				ranks[v] += off
				nv := next[v]
				if nv == -1 || mark[nv] != -1 {
					break
				}
				v = nv
			}
		}
	})
	return ranks, nil
}

// SuffixMin returns, for every node, the minimum of vals from that node to
// the tail, by pointer jumping. Used by the list-ranking variant of the
// low/high tree computation.
func SuffixMin(p int, next []int32, vals []int32) []int32 {
	return suffixOp(p, next, vals, func(a, b int32) int32 {
		if a < b {
			return a
		}
		return b
	})
}

// SuffixMax is SuffixMin with maximum.
func SuffixMax(p int, next []int32, vals []int32) []int32 {
	return suffixOp(p, next, vals, func(a, b int32) int32 {
		if a > b {
			return a
		}
		return b
	})
}

func suffixOp(p int, next []int32, vals []int32, op func(a, b int32) int32) []int32 {
	n := len(next)
	out := make([]int32, n)
	nxt := make([]int32, n)
	par.For(p, n, func(lo, hi int) {
		copy(out[lo:hi], vals[lo:hi])
		copy(nxt[lo:hi], next[lo:hi])
	})
	scratchV := make([]int32, n)
	scratchN := make([]int32, n)
	for round := 0; ; round++ {
		faults.Inject(nil, siteWyllie, 0, round)
		done := par.CountTrue(p, n, func(i int) bool { return nxt[i] == -1 })
		if done == n {
			break
		}
		par.For(p, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if j := nxt[i]; j != -1 {
					scratchV[i] = op(out[i], out[j])
					scratchN[i] = nxt[j]
				} else {
					scratchV[i] = out[i]
					scratchN[i] = -1
				}
			}
		})
		out, scratchV = scratchV, out
		nxt, scratchN = scratchN, nxt
	}
	return out
}
