package listrank

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomList builds a random permutation list over n nodes and returns
// (next, head, order) where order[k] is the k-th node from the head.
func randomList(rng *rand.Rand, n int) (next []int32, head int32, order []int32) {
	order = make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	next = make([]int32, n)
	for k := 0; k < n; k++ {
		if k+1 < n {
			next[order[k]] = order[k+1]
		} else {
			next[order[k]] = -1
		}
	}
	return next, order[0], order
}

func TestSuffixSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 17, 1000} {
		for _, p := range []int{1, 4} {
			next, _, order := randomList(rng, n)
			vals := make([]int32, n)
			for i := range vals {
				vals[i] = int32(rng.Intn(21) - 10)
			}
			got := SuffixSum(p, next, vals)
			// Oracle: walk from tail backwards.
			want := make([]int32, n)
			acc := int32(0)
			for k := n - 1; k >= 0; k-- {
				acc += vals[order[k]]
				want[order[k]] = acc
			}
			for i := 0; i < n; i++ {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d node %d: got %d want %d", n, p, i, got[i], want[i])
				}
			}
		}
	}
}

func TestRanksWyllie(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 64, 1001} {
		next, head, order := randomList(rng, n)
		got := Ranks(4, next, head)
		for k, v := range order {
			if got[v] != int32(k) {
				t.Fatalf("n=%d: node %d rank=%d, want %d", n, v, got[v], k)
			}
		}
	}
}

func TestRanksHJMatchesWyllie(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 7, 100, 5000} {
		for _, p := range []int{1, 2, 8} {
			next, head, _ := randomList(rng, n)
			want := Ranks(1, next, head)
			got, err := RanksHJ(p, next, head)
			if err != nil {
				t.Fatalf("n=%d p=%d: %v", n, p, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d node %d: HJ=%d Wyllie=%d", n, p, i, got[i], want[i])
				}
			}
		}
	}
}

func TestRanksHJDetectsBrokenList(t *testing.T) {
	// Two separate lists: 0->1, 2->3. Head 0 covers only half the nodes.
	next := []int32{1, -1, 3, -1}
	if _, err := RanksHJ(2, next, 0); err == nil {
		t.Error("RanksHJ accepted a disconnected list")
	}
}

func TestRanksHJDetectsCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 0: a cycle with no tail.
	next := []int32{1, 2, 0}
	if _, err := RanksHJ(2, next, 0); err == nil {
		t.Error("RanksHJ accepted a cyclic list")
	}
}

func TestSuffixMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 500
	next, _, order := randomList(rng, n)
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(rng.Intn(1000))
	}
	gotMin := SuffixMin(3, next, vals)
	gotMax := SuffixMax(3, next, vals)
	mn, mx := int32(1<<30), int32(-1<<30)
	for k := n - 1; k >= 0; k-- {
		v := order[k]
		if vals[v] < mn {
			mn = vals[v]
		}
		if vals[v] > mx {
			mx = vals[v]
		}
		if gotMin[v] != mn {
			t.Fatalf("node %d suffix min=%d, want %d", v, gotMin[v], mn)
		}
		if gotMax[v] != mx {
			t.Fatalf("node %d suffix max=%d, want %d", v, gotMax[v], mx)
		}
	}
}

func TestEmptyList(t *testing.T) {
	if got := Ranks(2, nil, 0); got != nil {
		t.Errorf("Ranks(nil) = %v", got)
	}
	got, err := RanksHJ(2, nil, 0)
	if err != nil || got != nil {
		t.Errorf("RanksHJ(nil) = %v, %v", got, err)
	}
}

func TestSingleNode(t *testing.T) {
	next := []int32{-1}
	if got := Ranks(2, next, 0); got[0] != 0 {
		t.Errorf("single node rank=%d, want 0", got[0])
	}
	got, err := RanksHJ(2, next, 0)
	if err != nil || got[0] != 0 {
		t.Errorf("single node HJ rank=%v err=%v", got, err)
	}
}

// Property: for random permutation lists of any size, HJ and Wyllie agree
// and ranks are a permutation of 0..n-1.
func TestQuickRanksPermutation(t *testing.T) {
	f := func(seed int64, sz uint16, p uint8) bool {
		n := int(sz%2000) + 1
		pp := int(p%8) + 1
		rng := rand.New(rand.NewSource(seed))
		next, head, _ := randomList(rng, n)
		w := Ranks(pp, next, head)
		hj, err := RanksHJ(pp, next, head)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			if w[i] != hj[i] {
				return false
			}
			if w[i] < 0 || int(w[i]) >= n || seen[w[i]] {
				return false
			}
			seen[w[i]] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
