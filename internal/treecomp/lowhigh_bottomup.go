package treecomp

import (
	"bicc/internal/graph"
	"bicc/internal/par"
)

// LowHighBottomUp computes the same low/high values as LowHigh with a
// level-synchronized rootward accumulation instead of range queries:
// vertices are bucketed by depth, and each round folds the deepest
// remaining level into its parents (min for low, max for high). The number
// of rounds equals the tree height, so this variant wins on shallow trees
// (BFS trees of low-diameter graphs — the common case by Palmer's theorem)
// and loses on deep ones; BenchmarkAblationLowHigh quantifies the trade.
func LowHighBottomUp(p int, td *TreeData, edges []graph.Edge, isTree []bool) (low, high []int32) {
	n := int(td.N)
	low = make([]int32, n)
	high = make([]int32, n)
	// Seed with own preorder and nontree neighbors, exactly as LowHigh —
	// but indexed by vertex here, not by preorder, since the accumulation
	// walks parent pointers.
	par.For(p, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			low[v] = td.Pre[v]
			high[v] = td.Pre[v]
		}
	})
	par.ForDynamic(p, len(edges), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if isTree[i] {
				continue
			}
			e := edges[i]
			pu, pv := td.Pre[e.U], td.Pre[e.V]
			atomicMin(&low[e.U], pv)
			atomicMin(&low[e.V], pu)
			atomicMax(&high[e.U], pv)
			atomicMax(&high[e.V], pu)
		}
	})
	// Depth per vertex: parents precede children in preorder, so one
	// ordered pass suffices.
	depth := make([]int32, n)
	maxDepth := int32(0)
	for i := 0; i < n; i++ {
		v := td.Order[i]
		if td.IsRoot(v) {
			depth[v] = 0
			continue
		}
		depth[v] = depth[td.Parent[v]] + 1
		if depth[v] > maxDepth {
			maxDepth = depth[v]
		}
	}
	// Bucket by depth (counting sort keyed on depth, in preorder order so
	// buckets are deterministic).
	bucketOff := make([]int32, maxDepth+2)
	for v := 0; v < n; v++ {
		bucketOff[depth[v]+1]++
	}
	for d := int32(0); d <= maxDepth; d++ {
		bucketOff[d+1] += bucketOff[d]
	}
	byDepth := make([]int32, n)
	cur := make([]int32, maxDepth+1)
	for i := 0; i < n; i++ {
		v := td.Order[i]
		d := depth[v]
		byDepth[bucketOff[d]+cur[d]] = v
		cur[d]++
	}
	// Rootward sweep, one parallel round per level.
	for d := maxDepth; d >= 1; d-- {
		level := byDepth[bucketOff[d]:bucketOff[d+1]]
		par.For(p, len(level), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := level[i]
				parent := td.Parent[v]
				atomicMin(&low[parent], low[v])
				atomicMax(&high[parent], high[v])
			}
		})
	}
	// LowHigh returns arrays indexed by vertex already; nothing to permute.
	return low, high
}
