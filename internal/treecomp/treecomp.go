// Package treecomp implements the Euler-tour tree computations of
// Tarjan–Vishkin steps 3 and 4: rooting the tree (parent per vertex),
// preorder numbering, subtree sizes, and the low/high values.
//
// Input is an eulertour.ArcSeq — arcs in tour order — which either came from
// list ranking a linked tour (TV-SMP) or was emitted in order directly
// (TV-opt). From the ordered arcs everything reduces to parallel prefix
// sums, which is precisely the paper's §3.2 claim: "The algorithm produces
// an Euler-tour where prefix sum can be used for tree computations instead
// of the more expensive list ranking."
//
// Preorder numbers are global across the forest: each component occupies a
// contiguous block (its root first), and every vertex's subtree occupies the
// contiguous interval [Pre[v], Pre[v]+Size[v]).
package treecomp

import (
	"fmt"
	"sync/atomic"

	"bicc/internal/eulertour"
	"bicc/internal/graph"
	"bicc/internal/par"
	"bicc/internal/prefix"
)

// TreeData is the rooted, numbered spanning forest.
type TreeData struct {
	N      int32
	Parent []int32 // parent per vertex; roots point at themselves
	Pre    []int32 // preorder number, subtree-contiguous, global over the forest
	Size   []int32 // subtree size
	Order  []int32 // Order[Pre[v]] = v (inverse permutation)
	Roots  []int32 // component roots
}

// IsRoot reports whether v is a component root.
func (td *TreeData) IsRoot(v int32) bool { return td.Parent[v] == v }

// IsAncestor reports whether a is an ancestor of (or equal to) d, using the
// preorder-interval containment test.
func (td *TreeData) IsAncestor(a, d int32) bool {
	return td.Pre[a] <= td.Pre[d] && td.Pre[d] < td.Pre[a]+td.Size[a]
}

// Related reports whether u and v have an ancestral relationship.
func (td *TreeData) Related(u, v int32) bool {
	return td.IsAncestor(u, v) || td.IsAncestor(v, u)
}

// Compute derives parents, preorder numbers, subtree sizes and the preorder
// inverse from an ordered Euler tour with p workers.
func Compute(p int, seq *eulertour.ArcSeq) (*TreeData, error) {
	n := seq.N
	na := seq.NumArcs()
	td := &TreeData{
		N:      n,
		Parent: make([]int32, n),
		Pre:    make([]int32, n),
		Size:   make([]int32, n),
		Order:  make([]int32, n),
		Roots:  append([]int32(nil), seq.Roots...),
	}
	par.For(p, int(n), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			td.Parent[v] = -1
			td.Pre[v] = -1
		}
	})
	// Weights: advance arcs count 1 (they discover Dst); the first arc of
	// each component counts one extra for that component's root. The
	// inclusive prefix sum P then yields Pre[Dst(a)] = P[a]-1 for advance
	// arcs and Pre[root_k] = P[CompFirst[k]]-2.
	w := make([]int32, na)
	par.For(p, na, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if seq.Advance[i] {
				w[i] = 1
			}
		}
	})
	for _, cf := range seq.CompFirst {
		w[cf]++ // the component-head arc is always an advance arc
	}
	prefix.InclusiveSum32(p, w)
	// Parents, preorder, and arc positions per vertex.
	advPos := make([]int32, n)
	retPos := make([]int32, n)
	par.For(p, na, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if seq.Advance[i] {
				v := seq.Dst[i]
				td.Parent[v] = seq.Src[i]
				td.Pre[v] = w[i] - 1
				advPos[v] = int32(i)
			} else {
				retPos[seq.Src[i]] = int32(i)
			}
		}
	})
	// Roots: self-parent, preorder from their head arc, size from the span
	// of their component's tour.
	nMulti := len(seq.CompFirst)
	for k, r := range td.Roots {
		if td.Parent[r] != -1 {
			return nil, fmt.Errorf("treecomp: root %d is entered by an advance arc", r)
		}
		td.Parent[r] = r
		if k < nMulti {
			cf := seq.CompFirst[k]
			td.Pre[r] = w[cf] - 2
			compEnd := int32(na)
			if k+1 < nMulti {
				compEnd = seq.CompFirst[k+1]
			}
			td.Size[r] = (compEnd-cf)/2 + 1
			advPos[r] = cf
			retPos[r] = compEnd - 1
		} else {
			// Singleton components are numbered after all toured vertices.
			base := int32(0)
			if na > 0 {
				base = w[na-1]
			}
			td.Pre[r] = base + int32(k-nMulti)
			td.Size[r] = 1
		}
	}
	// Non-root subtree sizes from the arc span: the arcs strictly between
	// the advance into v and the retreat out of v, inclusive, number
	// 2*Size[v], i.e. Size[v] = (retPos - advPos + 1) / 2.
	par.For(p, int(n), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if td.Parent[v] == -1 {
				continue // validated below
			}
			if !td.IsRoot(int32(v)) {
				td.Size[v] = (retPos[v] - advPos[v] + 1) / 2
			}
		}
	})
	// Validate coverage and build the inverse permutation.
	var bad atomic.Int32
	bad.Store(-1)
	par.For(p, int(n), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if td.Parent[v] == -1 || td.Pre[v] < 0 || td.Pre[v] >= n {
				bad.Store(int32(v))
				return
			}
			td.Order[td.Pre[v]] = int32(v)
		}
	})
	if b := bad.Load(); b != -1 {
		return nil, fmt.Errorf("treecomp: vertex %d not covered by the tour (forest/roots mismatch)", b)
	}
	return td, nil
}

// LowHigh computes the paper's low(v) and high(v) for every vertex: the
// smallest (largest) preorder number of any vertex that is in v's subtree or
// adjacent to v's subtree by a nontree edge. isTree marks the spanning
// forest's edges within edges.
//
// The computation follows TV: seed each vertex with the minimum (maximum)
// preorder over itself and its nontree neighbors, then take the minimum
// (maximum) over each subtree. Because subtrees are preorder-contiguous,
// the subtree fold is a range query over the preorder-indexed seed array,
// answered with a blocked sparse-table RMQ built in parallel.
func LowHigh(p int, td *TreeData, edges []graph.Edge, isTree []bool) (low, high []int32) {
	n := int(td.N)
	lowSeed := make([]int32, n)
	highSeed := make([]int32, n)
	par.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			lowSeed[i] = int32(i) // indexed by preorder; seed = own preorder
			highSeed[i] = int32(i)
		}
	})
	// Fold nontree edges into the seeds with atomic min/max (any-writer
	// CRCW emulation).
	par.ForDynamic(p, len(edges), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if isTree[i] {
				continue
			}
			e := edges[i]
			pu, pv := td.Pre[e.U], td.Pre[e.V]
			atomicMin(&lowSeed[pu], pv)
			atomicMin(&lowSeed[pv], pu)
			atomicMax(&highSeed[pu], pv)
			atomicMax(&highSeed[pv], pu)
		}
	})
	lowRMQ := newBlockedRMQ(p, lowSeed, true)
	highRMQ := newBlockedRMQ(p, highSeed, false)
	low = make([]int32, n)
	high = make([]int32, n)
	par.For(p, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			a := td.Pre[v]
			b := a + td.Size[v] - 1
			low[v] = lowRMQ.query(a, b)
			high[v] = highRMQ.query(a, b)
		}
	})
	return low, high
}

func atomicMin(addr *int32, v int32) {
	for {
		cur := atomic.LoadInt32(addr)
		if v >= cur || atomic.CompareAndSwapInt32(addr, cur, v) {
			return
		}
	}
}

func atomicMax(addr *int32, v int32) {
	for {
		cur := atomic.LoadInt32(addr)
		if v <= cur || atomic.CompareAndSwapInt32(addr, cur, v) {
			return
		}
	}
}

// blockedRMQ answers range-min (or range-max) queries over a static array:
// the array is cut into blocks of rmqBlock entries, a sparse table is built
// over block summaries, and queries scan at most two partial blocks. Memory
// is O(n + (n/B) log(n/B)) instead of the textbook O(n log n) sparse table.
type blockedRMQ struct {
	vals   []int32
	blocks [][]int32 // blocks[k][j] = fold over block range [j, j+2^k)
	min    bool
}

const rmqBlock = 32

func newBlockedRMQ(p int, vals []int32, min bool) *blockedRMQ {
	nb := (len(vals) + rmqBlock - 1) / rmqBlock
	r := &blockedRMQ{vals: vals, min: min}
	if nb == 0 {
		return r
	}
	level0 := make([]int32, nb)
	par.For(p, nb, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			start := b * rmqBlock
			end := start + rmqBlock
			if end > len(vals) {
				end = len(vals)
			}
			acc := vals[start]
			for i := start + 1; i < end; i++ {
				acc = r.fold(acc, vals[i])
			}
			level0[b] = acc
		}
	})
	r.blocks = append(r.blocks, level0)
	for width := 1; 2*width <= nb; width *= 2 {
		prev := r.blocks[len(r.blocks)-1]
		sz := nb - 2*width + 1
		next := make([]int32, sz)
		par.For(p, sz, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				next[j] = r.fold(prev[j], prev[j+width])
			}
		})
		r.blocks = append(r.blocks, next)
	}
	return r
}

func (r *blockedRMQ) fold(a, b int32) int32 {
	if r.min {
		if a < b {
			return a
		}
		return b
	}
	if a > b {
		return a
	}
	return b
}

// query folds vals over the inclusive range [a, b].
func (r *blockedRMQ) query(a, b int32) int32 {
	acc := r.vals[a]
	ba, bb := int(a)/rmqBlock, int(b)/rmqBlock
	if ba == bb {
		for i := a + 1; i <= b; i++ {
			acc = r.fold(acc, r.vals[i])
		}
		return acc
	}
	// Partial head block.
	headEnd := int32((ba + 1) * rmqBlock)
	for i := a + 1; i < headEnd; i++ {
		acc = r.fold(acc, r.vals[i])
	}
	// Partial tail block.
	tailStart := int32(bb * rmqBlock)
	for i := tailStart; i <= b; i++ {
		acc = r.fold(acc, r.vals[i])
	}
	// Full blocks in between via the sparse table.
	lo, hi := ba+1, bb-1
	if lo <= hi {
		k := 0
		for 1<<(k+1) <= hi-lo+1 {
			k++
		}
		width := 1 << k
		acc = r.fold(acc, r.blocks[k][lo])
		acc = r.fold(acc, r.blocks[k][hi-width+1])
	}
	return acc
}
