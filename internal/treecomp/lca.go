package treecomp

import (
	"bicc/internal/eulertour"
	"bicc/internal/par"
)

// LCA answers lowest-common-ancestor queries over a spanning forest by the
// classical Euler-tour reduction: the LCA of u and v is the
// minimum-depth vertex on the tour segment between any occurrence of u and
// any occurrence of v, answered with the same blocked sparse-table RMQ used
// by the low/high computation. Building is O(n log n / B) extra memory and
// parallel; each query is O(B).
type LCA struct {
	td       *TreeData
	depth    []int32
	firstPos []int32 // first tour position whose source is v
	tourSrc  []int32 // source vertex per tour position
	rmq      *blockedRMQ
	depthAt  []int32 // depth of tourSrc per position
}

// NewLCA builds the query structure from an ordered tour and its TreeData
// with p workers.
func NewLCA(p int, seq *eulertour.ArcSeq, td *TreeData) *LCA {
	n := int(td.N)
	na := seq.NumArcs()
	l := &LCA{td: td}
	// Depths via one pass in preorder (parents precede children).
	l.depth = make([]int32, n)
	for i := 0; i < n; i++ {
		v := td.Order[i]
		if td.IsRoot(v) {
			l.depth[v] = 0
		} else {
			l.depth[v] = l.depth[td.Parent[v]] + 1
		}
	}
	// Tour sources plus one trailing slot per component end so that every
	// vertex (including tour tails) has a position; simpler: use arc
	// sources and give each vertex its first occurrence. Singleton roots
	// get a synthetic position appended at the end.
	l.tourSrc = make([]int32, 0, na+len(td.Roots))
	l.tourSrc = append(l.tourSrc, seq.Src[:na]...)
	// Components' tours end by returning to the root, whose occurrences are
	// all as sources except the final arrival; sources alone cover every
	// vertex of multi-vertex components. Append singleton roots.
	for k := len(seq.CompFirst); k < len(seq.Roots); k++ {
		l.tourSrc = append(l.tourSrc, seq.Roots[k])
	}
	total := len(l.tourSrc)
	l.firstPos = make([]int32, n)
	par.For(p, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			l.firstPos[v] = -1
		}
	})
	for i := total - 1; i >= 0; i-- { // reverse so the first occurrence wins
		l.firstPos[l.tourSrc[i]] = int32(i)
	}
	l.depthAt = make([]int32, total)
	par.For(p, total, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			l.depthAt[i] = l.depth[l.tourSrc[i]]
		}
	})
	l.rmq = newBlockedRMQ(p, l.depthAt, true)
	return l
}

// Query returns the lowest common ancestor of u and v, or -1 when they are
// in different components.
func (l *LCA) Query(u, v int32) int32 {
	if !sameComponent(l.td, u, v) {
		return -1
	}
	a, b := l.firstPos[u], l.firstPos[v]
	if a > b {
		a, b = b, a
	}
	minDepth := l.rmq.query(a, b)
	// The shallowest vertex on the tour segment is the LCA, and it is the
	// unique ancestor of u at that depth — climb from u to it. (An
	// argmin-carrying RMQ would answer in O(B); the climb is
	// O(depth(u) − depth(lca)), plenty for this utility's callers.)
	w := u
	for l.depth[w] > minDepth {
		w = l.td.Parent[w]
	}
	return w
}

// Depth returns the depth of v in its tree (root depth 0).
func (l *LCA) Depth(v int32) int32 { return l.depth[v] }

// sameComponent tests whether u and v share a tree, using the root's
// preorder interval.
func sameComponent(td *TreeData, u, v int32) bool {
	ru := componentRoot(td, u)
	return td.IsAncestor(ru, v)
}

// componentRoot finds u's root by climbing; paths are short on BFS trees,
// and the result is exact for any forest.
func componentRoot(td *TreeData, u int32) int32 {
	for !td.IsRoot(u) {
		u = td.Parent[u]
	}
	return u
}
