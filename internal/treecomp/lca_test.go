package treecomp

import (
	"math/rand"
	"testing"

	"bicc/internal/eulertour"
	"bicc/internal/gen"
	"bicc/internal/graph"
	"bicc/internal/spantree"
)

// lcaOracle climbs both vertices to the root and compares paths.
func lcaOracle(td *TreeData, u, v int32) int32 {
	anc := map[int32]bool{}
	for x := u; ; x = td.Parent[x] {
		anc[x] = true
		if td.IsRoot(x) {
			break
		}
	}
	for x := v; ; x = td.Parent[x] {
		if anc[x] {
			return x
		}
		if td.IsRoot(x) {
			return -1
		}
	}
}

func buildLCA(t *testing.T, g *graph.EdgeList, p int) (*LCA, *TreeData) {
	t.Helper()
	c := graph.ToCSR(p, g)
	f := spantree.BFS(p, c)
	seq := eulertour.DFSOrder(p, g.Edges, f)
	td, err := Compute(p, seq)
	if err != nil {
		t.Fatal(err)
	}
	return NewLCA(p, seq, td), td
}

func TestLCAAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(80)
		maxM := n * (n - 1) / 2
		m := rng.Intn(maxM + 1)
		g := gen.Random(n, m, int64(trial+300))
		lca, td := buildLCA(t, g, 2)
		for u := int32(0); u < g.N; u++ {
			for v := int32(0); v < g.N; v++ {
				want := lcaOracle(td, u, v)
				if got := lca.Query(u, v); got != want {
					t.Fatalf("trial %d: LCA(%d,%d)=%d, want %d", trial, u, v, got, want)
				}
			}
		}
	}
}

func TestLCAChain(t *testing.T) {
	g := gen.Chain(100)
	lca, td := buildLCA(t, g, 1)
	// BFS from 0 makes the chain a path rooted at 0: LCA(a,b) = min.
	for _, pair := range [][2]int32{{10, 50}, {99, 0}, {33, 33}, {1, 99}} {
		u, v := pair[0], pair[1]
		want := u
		if v < u {
			want = v
		}
		if got := lca.Query(u, v); got != want {
			t.Errorf("LCA(%d,%d)=%d, want %d", u, v, got, want)
		}
	}
	if d := lca.Depth(99); d != 99 {
		t.Errorf("Depth(99)=%d, want 99", d)
	}
	_ = td
}

func TestLCADisconnected(t *testing.T) {
	g := gen.Disconnected(gen.Cycle(4), gen.Chain(3), &graph.EdgeList{N: 2})
	lca, _ := buildLCA(t, g, 2)
	if got := lca.Query(0, 5); got != -1 {
		t.Errorf("cross-component LCA=%d, want -1", got)
	}
	if got := lca.Query(7, 8); got != -1 {
		t.Errorf("two singletons LCA=%d, want -1", got)
	}
	if got := lca.Query(7, 7); got != 7 {
		t.Errorf("self LCA=%d, want 7", got)
	}
	if got := lca.Query(4, 6); got == -1 {
		t.Error("same-chain LCA reported disconnected")
	}
}

func TestLCAStarCenter(t *testing.T) {
	g := gen.Star(20)
	lca, _ := buildLCA(t, g, 1)
	for u := int32(1); u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			if got := lca.Query(u, v); got != 0 {
				t.Fatalf("LCA(%d,%d)=%d, want center 0", u, v, got)
			}
		}
	}
}
