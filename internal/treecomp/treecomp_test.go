package treecomp

import (
	"math/rand"
	"testing"

	"bicc/internal/eulertour"
	"bicc/internal/gen"
	"bicc/internal/graph"
	"bicc/internal/spantree"
)

func buildTD(t *testing.T, p int, g *graph.EdgeList) (*TreeData, *spantree.RootedForest) {
	t.Helper()
	c := graph.ToCSR(p, g)
	f := spantree.BFS(p, c)
	seq := eulertour.DFSOrder(p, g.Edges, f)
	td, err := Compute(p, seq)
	if err != nil {
		t.Fatal(err)
	}
	return td, f
}

// checkTreeData validates the numbering invariants against the forest.
func checkTreeData(t *testing.T, td *TreeData, f *spantree.RootedForest) {
	t.Helper()
	n := int(td.N)
	// Pre is a permutation with Order as inverse.
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		pre := td.Pre[v]
		if pre < 0 || int(pre) >= n || seen[pre] {
			t.Fatalf("vertex %d pre=%d invalid or duplicated", v, pre)
		}
		seen[pre] = true
		if td.Order[pre] != int32(v) {
			t.Fatalf("Order[%d]=%d, want %d", pre, td.Order[pre], v)
		}
	}
	// Parents must match the input forest (up to the tour's own rooting for
	// linked tours; for rooted inputs they must be identical).
	for v := int32(0); v < td.N; v++ {
		if f != nil && td.Parent[v] != f.Parent[v] {
			t.Fatalf("vertex %d parent=%d, forest says %d", v, td.Parent[v], f.Parent[v])
		}
	}
	// Subtree intervals: non-roots nest strictly inside their parent and
	// start after the parent's own slot; sizes are consistent.
	childSum := make([]int32, n)
	for v := int32(0); v < td.N; v++ {
		if td.IsRoot(v) {
			continue
		}
		p := td.Parent[v]
		if !(td.Pre[p] < td.Pre[v]) {
			t.Fatalf("child %d pre=%d not after parent %d pre=%d", v, td.Pre[v], p, td.Pre[p])
		}
		if !(td.Pre[p] < td.Pre[v] && td.Pre[v]+td.Size[v] <= td.Pre[p]+td.Size[p]) {
			t.Fatalf("subtree of %d [%d,%d) escapes parent %d [%d,%d)",
				v, td.Pre[v], td.Pre[v]+td.Size[v], p, td.Pre[p], td.Pre[p]+td.Size[p])
		}
		childSum[p] += td.Size[v]
	}
	for v := int32(0); v < td.N; v++ {
		if td.Size[v] != childSum[v]+1 {
			t.Fatalf("vertex %d size=%d, children sum+1=%d", v, td.Size[v], childSum[v]+1)
		}
	}
}

// ancestorOracle chases parent pointers.
func ancestorOracle(td *TreeData, a, d int32) bool {
	for {
		if d == a {
			return true
		}
		p := td.Parent[d]
		if p == d {
			return false
		}
		d = p
	}
}

func TestComputeFromDFSOrder(t *testing.T) {
	graphs := map[string]*graph.EdgeList{
		"edge":         gen.Chain(2),
		"chain":        gen.Chain(40),
		"star":         gen.Star(15),
		"cycle":        gen.Cycle(9),
		"mesh":         gen.Mesh(6, 7),
		"random":       gen.RandomConnected(150, 400, 2),
		"binarytree":   gen.BinaryTree(63),
		"disconnected": gen.Disconnected(gen.Cycle(5), gen.Chain(4), &graph.EdgeList{N: 2}),
		"isolated":     {N: 5},
		"single":       {N: 1},
	}
	for name, g := range graphs {
		for _, p := range []int{1, 4} {
			td, f := buildTD(t, p, g)
			checkTreeData(t, td, f)
			_ = name
		}
	}
}

func TestComputeFromLinkedTour(t *testing.T) {
	g := gen.RandomConnected(120, 300, 4)
	f := spantree.SV(2, g.N, g.Edges)
	tour, err := eulertour.FromForest(2, g.N, g.Edges, f.TreeEdges, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := eulertour.Sequence(2, tour, true)
	if err != nil {
		t.Fatal(err)
	}
	td, err := Compute(2, seq)
	if err != nil {
		t.Fatal(err)
	}
	checkTreeData(t, td, nil)
	if !td.IsRoot(0) {
		t.Error("vertex 0 should be the root")
	}
	if td.Pre[0] != 0 || td.Size[0] != g.N {
		t.Errorf("root pre=%d size=%d, want 0,%d", td.Pre[0], td.Size[0], g.N)
	}
}

func TestIsAncestorMatchesOracle(t *testing.T) {
	g := gen.RandomConnected(60, 150, 8)
	td, _ := buildTD(t, 2, g)
	for a := int32(0); a < g.N; a++ {
		for d := int32(0); d < g.N; d++ {
			want := ancestorOracle(td, a, d)
			if got := td.IsAncestor(a, d); got != want {
				t.Fatalf("IsAncestor(%d,%d)=%v, oracle=%v", a, d, got, want)
			}
			wantRel := want || ancestorOracle(td, d, a)
			if got := td.Related(a, d); got != wantRel {
				t.Fatalf("Related(%d,%d)=%v, oracle=%v", a, d, got, wantRel)
			}
		}
	}
}

// lowHighOracle computes low/high by explicit subtree enumeration.
func lowHighOracle(td *TreeData, edges []graph.Edge, isTree []bool) (low, high []int32) {
	n := int(td.N)
	low = make([]int32, n)
	high = make([]int32, n)
	for v := 0; v < n; v++ {
		lo, hi := td.Pre[v], td.Pre[v]
		for d := int32(0); d < int32(n); d++ {
			if !td.IsAncestor(int32(v), d) {
				continue
			}
			if td.Pre[d] < lo {
				lo = td.Pre[d]
			}
			if td.Pre[d] > hi {
				hi = td.Pre[d]
			}
			for i, e := range edges {
				if isTree[i] {
					continue
				}
				var w int32 = -1
				if e.U == d {
					w = e.V
				} else if e.V == d {
					w = e.U
				}
				if w >= 0 {
					if td.Pre[w] < lo {
						lo = td.Pre[w]
					}
					if td.Pre[w] > hi {
						hi = td.Pre[w]
					}
				}
			}
		}
		low[v], high[v] = lo, hi
	}
	return low, high
}

func TestLowHighAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(40)
		maxM := n * (n - 1) / 2
		m := rng.Intn(maxM + 1)
		g := gen.Random(n, m, int64(trial+100))
		c := graph.ToCSR(1, g)
		f := spantree.BFS(1, c)
		seq := eulertour.DFSOrder(1, g.Edges, f)
		td, err := Compute(1, seq)
		if err != nil {
			t.Fatal(err)
		}
		isTree := f.TreeEdgeMark(1, len(g.Edges))
		for _, p := range []int{1, 4} {
			low, high := LowHigh(p, td, g.Edges, isTree)
			wantLow, wantHigh := lowHighOracle(td, g.Edges, isTree)
			for v := 0; v < n; v++ {
				if low[v] != wantLow[v] || high[v] != wantHigh[v] {
					t.Fatalf("trial %d p=%d vertex %d: low=%d/%d high=%d/%d",
						trial, p, v, low[v], wantLow[v], high[v], wantHigh[v])
				}
			}
		}
	}
}

func TestLowHighCycleIsWholeRange(t *testing.T) {
	// On a cycle every vertex's subtree reaches the whole component via the
	// single nontree edge chain... specifically low(root child)=0.
	g := gen.Cycle(10)
	c := graph.ToCSR(1, g)
	f := spantree.BFS(1, c)
	seq := eulertour.DFSOrder(1, g.Edges, f)
	td, err := Compute(1, seq)
	if err != nil {
		t.Fatal(err)
	}
	low, high := LowHigh(1, td, g.Edges, f.TreeEdgeMark(1, len(g.Edges)))
	for v := int32(0); v < g.N; v++ {
		if td.IsRoot(v) {
			continue
		}
		// In a cycle, every subtree hangs onto the rest by a nontree edge:
		// low must reach at or below the parent's preorder.
		if low[v] >= td.Pre[v] && td.Size[v] == 1 && high[v] == td.Pre[v] {
			t.Fatalf("leaf %d of cycle has low=%d high=%d pre=%d: misses its nontree edge",
				v, low[v], high[v], td.Pre[v])
		}
	}
	_ = high
}

func TestBlockedRMQDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, n := range []int{1, 2, rmqBlock - 1, rmqBlock, rmqBlock + 1, 5 * rmqBlock, 1000} {
		vals := make([]int32, n)
		for i := range vals {
			vals[i] = int32(rng.Intn(1000))
		}
		rmin := newBlockedRMQ(2, vals, true)
		rmax := newBlockedRMQ(2, vals, false)
		for trial := 0; trial < 200; trial++ {
			a := rng.Intn(n)
			b := a + rng.Intn(n-a)
			mn, mx := vals[a], vals[a]
			for i := a + 1; i <= b; i++ {
				if vals[i] < mn {
					mn = vals[i]
				}
				if vals[i] > mx {
					mx = vals[i]
				}
			}
			if got := rmin.query(int32(a), int32(b)); got != mn {
				t.Fatalf("n=%d min[%d,%d]=%d, want %d", n, a, b, got, mn)
			}
			if got := rmax.query(int32(a), int32(b)); got != mx {
				t.Fatalf("n=%d max[%d,%d]=%d, want %d", n, a, b, got, mx)
			}
		}
	}
}

func TestLinkedAndDFSToursAgreeOnStructure(t *testing.T) {
	// Different tours of different spanning trees will disagree on Pre, but
	// both must satisfy all invariants and agree on component sizes at the
	// roots.
	g := gen.Disconnected(gen.Cycle(6), gen.Mesh(3, 3))
	c := graph.ToCSR(1, g)
	f := spantree.WorkStealing(2, c)
	seq := eulertour.DFSOrder(2, g.Edges, f)
	td, err := Compute(2, seq)
	if err != nil {
		t.Fatal(err)
	}
	checkTreeData(t, td, f)
	sizes := map[int32]bool{}
	for _, r := range td.Roots {
		sizes[td.Size[r]] = true
	}
	if !sizes[6] || !sizes[9] {
		t.Errorf("component sizes at roots: %v, want {6,9}", sizes)
	}
}

func TestLowHighBottomUpMatchesRMQ(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(120)
		maxM := n * (n - 1) / 2
		m := rng.Intn(maxM + 1)
		g := gen.Random(n, m, int64(trial+500))
		c := graph.ToCSR(1, g)
		f := spantree.BFS(1, c)
		seq := eulertour.DFSOrder(1, g.Edges, f)
		td, err := Compute(1, seq)
		if err != nil {
			t.Fatal(err)
		}
		isTree := f.TreeEdgeMark(1, len(g.Edges))
		for _, p := range []int{1, 4} {
			low1, high1 := LowHigh(p, td, g.Edges, isTree)
			low2, high2 := LowHighBottomUp(p, td, g.Edges, isTree)
			for v := 0; v < n; v++ {
				if low1[v] != low2[v] || high1[v] != high2[v] {
					t.Fatalf("trial %d p=%d vertex %d: RMQ low/high=%d/%d, bottom-up=%d/%d",
						trial, p, v, low1[v], high1[v], low2[v], high2[v])
				}
			}
		}
	}
}

func TestLowHighBottomUpDeepChain(t *testing.T) {
	// Height = n-1: the worst case for the leveled sweep must still be
	// correct.
	g := gen.Chain(2000)
	c := graph.ToCSR(1, g)
	f := spantree.BFS(1, c)
	seq := eulertour.DFSOrder(1, g.Edges, f)
	td, err := Compute(1, seq)
	if err != nil {
		t.Fatal(err)
	}
	isTree := f.TreeEdgeMark(1, len(g.Edges))
	low1, high1 := LowHigh(2, td, g.Edges, isTree)
	low2, high2 := LowHighBottomUp(2, td, g.Edges, isTree)
	for v := range low1 {
		if low1[v] != low2[v] || high1[v] != high2[v] {
			t.Fatalf("vertex %d mismatch", v)
		}
	}
}
