// Package graph provides the two input representations the paper's
// algorithms move between — a flat undirected edge list and a CSR adjacency
// structure — plus validation, normalization, and conversions. The paper
// singles out representation conversion as one of the two costs that hinder
// fast parallel implementations (§1); keeping both representations explicit
// lets the benchmarks measure that cost directly.
package graph

import (
	"fmt"

	"bicc/internal/par"
	"bicc/internal/prefix"
)

// Edge is one undirected edge {U, V}. Vertex ids are int32 since the paper's
// instances (1M vertices, 20M edges) fit comfortably and the narrower type
// halves memory traffic, which matters on bandwidth-bound SMP codes.
type Edge struct {
	U, V int32
}

// EdgeList is an undirected graph as a flat edge list over vertices [0, N).
type EdgeList struct {
	N     int32
	Edges []Edge
}

// Validate checks that all endpoints are in range and that the list has no
// self loops. It does not reject duplicate edges; call Normalize to remove
// them.
func (g *EdgeList) Validate() error {
	if g.N < 0 {
		return fmt.Errorf("graph: negative vertex count %d", g.N)
	}
	for i, e := range g.Edges {
		if e.U < 0 || e.U >= g.N || e.V < 0 || e.V >= g.N {
			return fmt.Errorf("graph: edge %d (%d,%d) out of range [0,%d)", i, e.U, e.V, g.N)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d is a self loop at %d", i, e.U)
		}
	}
	return nil
}

// M returns the number of edges.
func (g *EdgeList) M() int { return len(g.Edges) }

// Clone returns a deep copy.
func (g *EdgeList) Clone() *EdgeList {
	return &EdgeList{N: g.N, Edges: append([]Edge(nil), g.Edges...)}
}

// Normalize returns a simple graph: self loops dropped, parallel edges
// deduplicated (keeping the first occurrence order), endpoints untouched.
// It reports how many self loops and duplicates were removed.
func (g *EdgeList) Normalize() (out *EdgeList, loops, dups int) {
	seen := make(map[uint64]struct{}, len(g.Edges))
	edges := make([]Edge, 0, len(g.Edges))
	for _, e := range g.Edges {
		if e.U == e.V {
			loops++
			continue
		}
		key := CanonKey(e.U, e.V)
		if _, ok := seen[key]; ok {
			dups++
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, e)
	}
	return &EdgeList{N: g.N, Edges: edges}, loops, dups
}

// CanonKey packs an undirected edge into a canonical uint64 (min(u,v) in the
// high word) usable as a map key or radix-sort key.
func CanonKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// CSR is a compressed-sparse-row adjacency structure for an undirected
// graph: each undirected edge {u,v} appears as the two arcs (u,v) and
// (v,u). Adj[Off[v]:Off[v+1]] lists the neighbors of v, and EdgeID carries
// the index of the originating undirected edge for each arc, so algorithms
// can label edges while traversing adjacencies.
type CSR struct {
	N      int32
	Off    []int32 // length N+1
	Adj    []int32 // length 2m, neighbor ids
	EdgeID []int32 // length 2m, undirected edge index per arc
}

// Degree returns the degree of vertex v.
func (c *CSR) Degree(v int32) int32 { return c.Off[v+1] - c.Off[v] }

// M returns the number of undirected edges.
func (c *CSR) M() int { return len(c.Adj) / 2 }

// Neighbors returns the adjacency slice of v (do not modify).
func (c *CSR) Neighbors(v int32) []int32 { return c.Adj[c.Off[v]:c.Off[v+1]] }

// ToCSR converts an edge list to CSR using p workers: a parallel degree
// count (atomic-free, per-worker histograms), a prefix sum over offsets, and
// a parallel scatter. This is the conversion cost the paper charges to
// algorithms whose primitives disagree on representation.
func ToCSR(p int, g *EdgeList) *CSR {
	n := int(g.N)
	m := len(g.Edges)
	p = par.Procs(p)
	deg := make([]int32, n+1)
	if p == 1 || m < 4096 {
		for _, e := range g.Edges {
			deg[e.U+1]++
			deg[e.V+1]++
		}
	} else {
		// Per-worker histograms merged in parallel over vertices.
		hists := make([][]int32, p)
		par.ForWorker(p, m, func(w, lo, hi int) {
			h := make([]int32, n+1)
			for i := lo; i < hi; i++ {
				e := g.Edges[i]
				h[e.U+1]++
				h[e.V+1]++
			}
			hists[w] = h
		})
		par.For(p, n+1, func(lo, hi int) {
			for _, h := range hists {
				if h == nil {
					continue
				}
				for v := lo; v < hi; v++ {
					deg[v] += h[v]
				}
			}
		})
	}
	prefix.InclusiveSum32(p, deg)
	off := deg // deg is now the offsets array (deg[0] stayed 0 ⇒ inclusive == exclusive shifted)
	adj := make([]int32, 2*m)
	eid := make([]int32, 2*m)
	// Scatter with per-vertex cursors. Parallelizing the scatter needs
	// per-worker sub-offsets; with one undirected edge producing two arcs at
	// unrelated vertices, the simplest correct parallel scheme is a second
	// histogram pass computing per-worker starting cursors per vertex. For
	// the graph sizes here the sequential scatter is bandwidth-bound anyway,
	// so we parallelize only when it pays.
	if p == 1 || m < 1<<16 {
		cur := make([]int32, n)
		for i, e := range g.Edges {
			a := off[e.U] + cur[e.U]
			cur[e.U]++
			adj[a] = e.V
			eid[a] = int32(i)
			b := off[e.V] + cur[e.V]
			cur[e.V]++
			adj[b] = e.U
			eid[b] = int32(i)
		}
	} else {
		scatterParallel(p, g, off, adj, eid)
	}
	// After the inclusive scan over deg (deg[0]=0, deg[v+1]=degree(v)),
	// off[v] is the exclusive offset of vertex v and off[n]=2m, so off is
	// already the final offsets array of length n+1.
	return &CSR{N: g.N, Off: off, Adj: adj, EdgeID: eid}
}

// scatterParallel fills adj/eid with a two-pass scheme: pass 1 counts, per
// worker, how many arcs it will write at each vertex; a scan over workers
// gives each worker a private cursor range per vertex; pass 2 scatters
// without synchronization.
func scatterParallel(p int, g *EdgeList, off, adj, eid []int32) {
	n := int(g.N)
	m := len(g.Edges)
	counts := make([][]int32, p)
	par.ForWorker(p, m, func(w, lo, hi int) {
		c := make([]int32, n)
		for i := lo; i < hi; i++ {
			e := g.Edges[i]
			c[e.U]++
			c[e.V]++
		}
		counts[w] = c
	})
	// Convert per-worker counts to per-worker starting cursors.
	par.For(p, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			cur := int32(0)
			for w := 0; w < p; w++ {
				if counts[w] == nil {
					continue
				}
				c := counts[w][v]
				counts[w][v] = cur
				cur += c
			}
		}
	})
	par.ForWorker(p, m, func(w, lo, hi int) {
		c := counts[w]
		for i := lo; i < hi; i++ {
			e := g.Edges[i]
			a := off[e.U] + c[e.U]
			c[e.U]++
			adj[a] = e.V
			eid[a] = int32(i)
			b := off[e.V] + c[e.V]
			c[e.V]++
			adj[b] = e.U
			eid[b] = int32(i)
		}
	})
}

// FromCSR reconstructs the undirected edge list from a CSR (each edge once,
// in edge-id order). It is the inverse of ToCSR up to edge order.
func FromCSR(c *CSR) *EdgeList {
	m := c.M()
	edges := make([]Edge, m)
	done := make([]bool, m)
	for v := int32(0); v < c.N; v++ {
		for i := c.Off[v]; i < c.Off[v+1]; i++ {
			id := c.EdgeID[i]
			if !done[id] {
				done[id] = true
				edges[id] = Edge{U: v, V: c.Adj[i]}
			}
		}
	}
	return &EdgeList{N: c.N, Edges: edges}
}
