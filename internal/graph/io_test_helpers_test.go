package graph

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errFail }

type failErr string

func (e failErr) Error() string { return string(e) }

var errFail = failErr("forced write failure")
