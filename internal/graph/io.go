package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk format is a minimal text format compatible with common edge
// list tools:
//
//	# comment lines start with '#'
//	p <n> <m>
//	<u> <v>          (m lines, 0-based endpoints)
//
// Write emits it and Read parses it, validating as it goes.

// Write serializes g to w.
func Write(w io.Writer, g *EdgeList) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "p %d %d\n", g.N, len(g.Edges)); err != nil {
		return err
	}
	buf := make([]byte, 0, 24)
	for _, e := range g.Edges {
		buf = strconv.AppendInt(buf[:0], int64(e.U), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(e.V), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text edge-list format and validates the result.
func Read(r io.Reader) (*EdgeList, error) {
	g, err := ReadLenient(r)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ReadLenient parses the text edge-list format without validating edges,
// for callers that Normalize afterwards (self loops and duplicates pass
// through; the header/shape checks still apply).
func ReadLenient(r io.Reader) (*EdgeList, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var g *EdgeList
	var declared int
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if g == nil {
			var n, m int
			if _, err := fmt.Sscanf(text, "p %d %d", &n, &m); err != nil {
				return nil, fmt.Errorf("graph: line %d: expected header %q, got %q", line, "p <n> <m>", text)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: line %d: negative sizes in header", line)
			}
			g = &EdgeList{N: int32(n), Edges: make([]Edge, 0, m)}
			declared = m
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: expected %q, got %q", line, "<u> <v>", text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		g.Edges = append(g.Edges, Edge{U: int32(u), V: int32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	if len(g.Edges) != declared {
		return nil, fmt.Errorf("graph: header declares %d edges, found %d", declared, len(g.Edges))
	}
	return g, nil
}
