package graph

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func triangle() *EdgeList {
	return &EdgeList{N: 3, Edges: []Edge{{0, 1}, {1, 2}, {2, 0}}}
}

func TestValidate(t *testing.T) {
	if err := triangle().Validate(); err != nil {
		t.Errorf("valid triangle rejected: %v", err)
	}
	cases := []struct {
		name string
		g    *EdgeList
	}{
		{"negative n", &EdgeList{N: -1}},
		{"endpoint too big", &EdgeList{N: 2, Edges: []Edge{{0, 2}}}},
		{"negative endpoint", &EdgeList{N: 2, Edges: []Edge{{-1, 1}}}},
		{"self loop", &EdgeList{N: 2, Edges: []Edge{{1, 1}}}},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid graph", c.name)
		}
	}
}

func TestNormalize(t *testing.T) {
	g := &EdgeList{N: 4, Edges: []Edge{{0, 1}, {1, 0}, {2, 2}, {1, 2}, {0, 1}, {3, 0}}}
	out, loops, dups := g.Normalize()
	if loops != 1 {
		t.Errorf("loops=%d, want 1", loops)
	}
	if dups != 2 {
		t.Errorf("dups=%d, want 2", dups)
	}
	want := []Edge{{0, 1}, {1, 2}, {3, 0}}
	if len(out.Edges) != len(want) {
		t.Fatalf("normalized edges=%v, want %v", out.Edges, want)
	}
	for i := range want {
		if out.Edges[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, out.Edges[i], want[i])
		}
	}
}

func TestCanonKeySymmetric(t *testing.T) {
	f := func(u, v int32) bool { return CanonKey(u, v) == CanonKey(v, u) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomGraph(rng *rand.Rand, n, m int) *EdgeList {
	g := &EdgeList{N: int32(n)}
	seen := map[uint64]struct{}{}
	for len(g.Edges) < m {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		k := CanonKey(u, v)
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		g.Edges = append(g.Edges, Edge{u, v})
	}
	return g
}

func csrInvariants(t *testing.T, g *EdgeList, c *CSR) {
	t.Helper()
	n, m := int(g.N), len(g.Edges)
	if len(c.Off) != n+1 || c.Off[0] != 0 || int(c.Off[n]) != 2*m {
		t.Fatalf("bad offsets: len=%d first=%d last=%d (n=%d m=%d)", len(c.Off), c.Off[0], c.Off[n], n, m)
	}
	for v := 0; v < n; v++ {
		if c.Off[v] > c.Off[v+1] {
			t.Fatalf("offsets not monotone at %d", v)
		}
	}
	// Each arc must correspond to its edge id's endpoints.
	arcCount := make([]int, m)
	for v := int32(0); v < c.N; v++ {
		for i := c.Off[v]; i < c.Off[v+1]; i++ {
			w := c.Adj[i]
			id := c.EdgeID[i]
			e := g.Edges[id]
			if !((e.U == v && e.V == w) || (e.V == v && e.U == w)) {
				t.Fatalf("arc (%d,%d) claims edge %d = %v", v, w, id, e)
			}
			arcCount[id]++
		}
	}
	for id, cnt := range arcCount {
		if cnt != 2 {
			t.Fatalf("edge %d appears as %d arcs, want 2", id, cnt)
		}
	}
}

func TestToCSRSmall(t *testing.T) {
	g := triangle()
	c := ToCSR(1, g)
	csrInvariants(t, g, c)
	if c.Degree(0) != 2 || c.Degree(1) != 2 || c.Degree(2) != 2 {
		t.Errorf("triangle degrees = %d,%d,%d, want 2,2,2", c.Degree(0), c.Degree(1), c.Degree(2))
	}
}

func TestToCSRParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Large enough to trigger both parallel histogram and parallel scatter.
	g := randomGraph(rng, 2000, 1<<17)
	c1 := ToCSR(1, g)
	c4 := ToCSR(4, g)
	csrInvariants(t, g, c1)
	csrInvariants(t, g, c4)
	for v := 0; v <= int(g.N); v++ {
		if c1.Off[v] != c4.Off[v] {
			t.Fatalf("offset mismatch at %d: %d vs %d", v, c1.Off[v], c4.Off[v])
		}
	}
	// Adjacency order may differ between schedules; compare as multisets
	// per vertex.
	for v := int32(0); v < g.N; v++ {
		a := append([]int32(nil), c1.Neighbors(v)...)
		b := append([]int32(nil), c4.Neighbors(v)...)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

func TestToCSREmptyAndIsolated(t *testing.T) {
	g := &EdgeList{N: 5} // 5 isolated vertices
	c := ToCSR(2, g)
	csrInvariants(t, g, c)
	for v := int32(0); v < 5; v++ {
		if c.Degree(v) != 0 {
			t.Errorf("isolated vertex %d has degree %d", v, c.Degree(v))
		}
	}
	g0 := &EdgeList{N: 0}
	c0 := ToCSR(2, g0)
	if len(c0.Adj) != 0 || len(c0.Off) != 1 {
		t.Errorf("empty graph CSR: %+v", c0)
	}
}

func TestFromCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 100, 300)
	back := FromCSR(ToCSR(2, g))
	if back.N != g.N || len(back.Edges) != len(g.Edges) {
		t.Fatalf("round trip size mismatch")
	}
	for i := range g.Edges {
		a, b := g.Edges[i], back.Edges[i]
		if CanonKey(a.U, a.V) != CanonKey(b.U, b.V) {
			t.Fatalf("edge %d: %v vs %v", i, a, b)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 50, 120)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != g.N || len(got.Edges) != len(g.Edges) {
		t.Fatalf("round trip mismatch: n=%d m=%d", got.N, len(got.Edges))
	}
	for i := range g.Edges {
		if got.Edges[i] != g.Edges[i] {
			t.Fatalf("edge %d: %v vs %v", i, got.Edges[i], g.Edges[i])
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "q 3 2\n0 1\n1 2\n"},
		{"edge count mismatch", "p 3 2\n0 1\n"},
		{"non-integer", "p 3 1\n0 x\n"},
		{"too many fields", "p 3 1\n0 1 2\n"},
		{"out of range", "p 3 1\n0 3\n"},
		{"self loop", "p 3 1\n1 1\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: Read accepted malformed input", c.name)
		}
	}
}

func TestReadAllowsCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\np 3 1\n# another\n0 2\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || len(g.Edges) != 1 || g.Edges[0] != (Edge{0, 2}) {
		t.Errorf("parsed %+v", g)
	}
}

func TestClone(t *testing.T) {
	g := triangle()
	c := g.Clone()
	c.Edges[0].U = 99
	if g.Edges[0].U == 99 {
		t.Error("Clone shares edge storage")
	}
}

func TestCSRM(t *testing.T) {
	g := triangle()
	if got := ToCSR(1, g).M(); got != 3 {
		t.Errorf("M=%d, want 3", got)
	}
}
