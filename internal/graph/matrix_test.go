package graph

import (
	"math/rand"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m, err := NewMatrix(70) // spans two words per row
	if err != nil {
		t.Fatal(err)
	}
	m.Set(0, 69)
	m.Set(3, 5)
	if !m.Has(0, 69) || !m.Has(69, 0) {
		t.Error("symmetric Has failed")
	}
	if m.Has(0, 5) {
		t.Error("phantom edge")
	}
	if m.Degree(0) != 1 || m.Degree(69) != 1 || m.Degree(3) != 1 {
		t.Errorf("degrees: %d %d %d", m.Degree(0), m.Degree(69), m.Degree(3))
	}
	if m.M() != 2 {
		t.Errorf("M=%d, want 2", m.M())
	}
}

func TestMatrixRejects(t *testing.T) {
	if _, err := NewMatrix(-1); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := NewMatrix(1 << 20); err == nil {
		t.Error("huge matrix accepted")
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomGraph(rng, 200, 800)
	m, err := MatrixFromEdgeList(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.M() != len(g.Edges) {
		t.Fatalf("matrix M=%d, want %d", m.M(), len(g.Edges))
	}
	back := m.ToEdgeList()
	if len(back.Edges) != len(g.Edges) {
		t.Fatalf("round trip m=%d, want %d", len(back.Edges), len(g.Edges))
	}
	// Same edge set (order differs).
	seen := map[uint64]bool{}
	for _, e := range g.Edges {
		seen[CanonKey(e.U, e.V)] = true
	}
	for _, e := range back.Edges {
		if !seen[CanonKey(e.U, e.V)] {
			t.Fatalf("edge (%d,%d) not in original", e.U, e.V)
		}
	}
	for _, e := range back.Edges {
		if e.U >= e.V {
			t.Fatalf("ToEdgeList emitted non-canonical edge (%d,%d)", e.U, e.V)
		}
	}
}

func TestMatrixMemoryExplainsWooSahniLimit(t *testing.T) {
	// The paper notes Woo–Sahni's matrix inputs stayed under 2,000 vertices.
	m2k, err := NewMatrix(2000)
	if err != nil {
		t.Fatal(err)
	}
	if m2k.MemoryBytes() > 1<<20 {
		t.Errorf("2k-vertex matrix uses %d bytes; expected under 1 MiB", m2k.MemoryBytes())
	}
	// The paper's 1M-vertex instances are simply impossible in this
	// representation (the constructor refuses).
	if _, err := NewMatrix(1_000_000); err == nil {
		t.Error("1M-vertex matrix should be refused")
	}
}
