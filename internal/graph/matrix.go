package graph

import (
	"fmt"
	"math/bits"
)

// Matrix is a dense adjacency-matrix representation (one bit per vertex
// pair). Woo and Sahni's hypercube study of Tarjan–Vishkin used this
// representation, which is why their inputs were "limited to less than
// 2,000 vertices" (§1): Θ(n²) bits swamp memory long before the paper's
// sparse 1M-vertex instances. It is provided so the representation
// trade-off is measurable (BenchmarkAblationRepresentation), not as a
// recommended input format.
type Matrix struct {
	N    int32
	bits []uint64 // row-major upper+lower triangular bitset, n words per row
	rowW int      // words per row
}

// NewMatrix returns an empty adjacency matrix for n vertices. It refuses
// absurd sizes (> 1<<17 vertices would allocate > 2 GiB).
func NewMatrix(n int32) (*Matrix, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if n > 1<<17 {
		return nil, fmt.Errorf("graph: adjacency matrix for %d vertices needs %d MiB; use the edge list", n, int64(n)*int64(n)/8/(1<<20))
	}
	rowW := (int(n) + 63) / 64
	return &Matrix{N: n, bits: make([]uint64, int(n)*rowW), rowW: rowW}, nil
}

// MatrixFromEdgeList converts an edge list to the dense representation.
func MatrixFromEdgeList(g *EdgeList) (*Matrix, error) {
	m, err := NewMatrix(g.N)
	if err != nil {
		return nil, err
	}
	for _, e := range g.Edges {
		m.Set(e.U, e.V)
	}
	return m, nil
}

// Set adds the undirected edge {u, v}.
func (m *Matrix) Set(u, v int32) {
	m.bits[int(u)*m.rowW+int(v)/64] |= 1 << (uint(v) % 64)
	m.bits[int(v)*m.rowW+int(u)/64] |= 1 << (uint(u) % 64)
}

// Has reports whether {u, v} is an edge.
func (m *Matrix) Has(u, v int32) bool {
	return m.bits[int(u)*m.rowW+int(v)/64]&(1<<(uint(v)%64)) != 0
}

// Degree counts v's neighbors by popcount over its row.
func (m *Matrix) Degree(v int32) int {
	row := m.bits[int(v)*m.rowW : (int(v)+1)*m.rowW]
	d := 0
	for _, w := range row {
		d += bits.OnesCount64(w)
	}
	return d
}

// M returns the number of undirected edges.
func (m *Matrix) M() int {
	total := 0
	for v := int32(0); v < m.N; v++ {
		total += m.Degree(v)
	}
	return total / 2
}

// ToEdgeList enumerates the edges (u < v) in row order — the conversion
// cost a matrix-based implementation pays before using edge-list
// primitives.
func (m *Matrix) ToEdgeList() *EdgeList {
	g := &EdgeList{N: m.N}
	for u := int32(0); u < m.N; u++ {
		row := m.bits[int(u)*m.rowW : (int(u)+1)*m.rowW]
		for wi, w := range row {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &^= 1 << uint(b)
				v := int32(wi*64 + b)
				if v > u {
					g.Edges = append(g.Edges, Edge{U: u, V: v})
				}
			}
		}
	}
	return g
}

// MemoryBytes returns the matrix's storage footprint.
func (m *Matrix) MemoryBytes() int64 { return int64(len(m.bits)) * 8 }
