package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

// randomSimple builds a random simple graph directly (the gen package
// imports graph, so tests here roll their own).
func randomSimple(n, m int, seed int64) *EdgeList {
	rng := rand.New(rand.NewSource(seed))
	seen := map[uint64]struct{}{}
	g := &EdgeList{N: int32(n)}
	for len(g.Edges) < m {
		u := rng.Int31n(int32(n))
		v := rng.Int31n(int32(n))
		if u == v {
			continue
		}
		k := CanonKey(u, v)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		g.Edges = append(g.Edges, Edge{U: u, V: v})
	}
	return g
}

func equalEdgeLists(t *testing.T, stage string, want, got *EdgeList) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: n = %d, want %d", stage, got.N, want.N)
	}
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("%s: m = %d, want %d", stage, len(got.Edges), len(want.Edges))
	}
	for i := range want.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("%s: edge %d = %v, want %v", stage, i, got.Edges[i], want.Edges[i])
		}
	}
}

// TestCrossFormatRoundTrip threads graphs through every serialization
// format in sequence — text → binary → dimacs → text — and asserts the
// edge list survives bit-for-bit, including edge order. Simple graphs pass
// DIMACS unchanged because Normalize is the identity on them.
func TestCrossFormatRoundTrip(t *testing.T) {
	cases := map[string]*EdgeList{
		"empty":            {N: 0},
		"vertices-only":    {N: 5}, // isolated vertices, zero edges
		"single-edge":      {N: 2, Edges: []Edge{{U: 0, V: 1}}},
		"isolated-between": {N: 10, Edges: []Edge{{U: 0, V: 9}, {U: 9, V: 3}}},
		"random-sparse":    randomSimple(200, 300, 1),
		"random-dense":     randomSimple(60, 800, 2),
		// Reversed endpoints must survive as written: formats store (u,v)
		// pairs, not canonical forms.
		"reversed": {N: 4, Edges: []Edge{{U: 3, V: 0}, {U: 2, V: 1}}},
	}
	for name, orig := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Write(&buf, orig); err != nil {
				t.Fatalf("write text: %v", err)
			}
			g1, err := Read(&buf)
			if err != nil {
				t.Fatalf("read text: %v", err)
			}
			equalEdgeLists(t, "text", orig, g1)

			buf.Reset()
			if err := WriteBinary(&buf, g1); err != nil {
				t.Fatalf("write binary: %v", err)
			}
			g2, err := ReadBinary(&buf)
			if err != nil {
				t.Fatalf("read binary: %v", err)
			}
			equalEdgeLists(t, "binary", orig, g2)

			buf.Reset()
			if err := WriteDIMACS(&buf, g2); err != nil {
				t.Fatalf("write dimacs: %v", err)
			}
			raw, err := ReadDIMACS(&buf)
			if err != nil {
				t.Fatalf("read dimacs: %v", err)
			}
			g3, loops, dups := raw.Normalize()
			if loops != 0 || dups != 0 {
				t.Fatalf("dimacs round trip invented %d loops / %d dups", loops, dups)
			}
			equalEdgeLists(t, "dimacs", orig, g3)

			buf.Reset()
			if err := Write(&buf, g3); err != nil {
				t.Fatalf("write text (final): %v", err)
			}
			g4, err := Read(&buf)
			if err != nil {
				t.Fatalf("read text (final): %v", err)
			}
			equalEdgeLists(t, "text-final", orig, g4)
		})
	}
}

// TestLenientReadersPreserveDirtyEdges checks the lenient entry points pass
// self loops and duplicates through for Normalize to count, while the
// strict readers reject the same bytes.
func TestLenientReadersPreserveDirtyEdges(t *testing.T) {
	dirty := &EdgeList{N: 3, Edges: []Edge{{U: 0, V: 1}, {U: 1, V: 1}, {U: 1, V: 2}, {U: 1, V: 0}}}

	var text bytes.Buffer
	if err := Write(&text, dirty); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(text.Bytes())); err == nil {
		t.Fatal("strict text reader accepted a self loop")
	}
	g, err := ReadLenient(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatalf("lenient text read: %v", err)
	}
	equalEdgeLists(t, "lenient-text", dirty, g)

	var bin bytes.Buffer
	if err := WriteBinary(&bin, dirty); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(bytes.NewReader(bin.Bytes())); err == nil {
		t.Fatal("strict binary reader accepted a self loop")
	}
	g, err = ReadBinaryLenient(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatalf("lenient binary read: %v", err)
	}
	equalEdgeLists(t, "lenient-binary", dirty, g)

	norm, loops, dups := g.Normalize()
	if loops != 1 || dups != 1 || len(norm.Edges) != 2 {
		t.Fatalf("normalize: loops=%d dups=%d m=%d, want 1/1/2", loops, dups, len(norm.Edges))
	}
	// Lenient still enforces shape: out-of-range endpoints are not edges,
	// they are garbage, and Normalize would mask them.
	if _, err := ReadLenient(bytes.NewReader([]byte("p 2 1\n0\n"))); err == nil {
		t.Fatal("lenient text reader accepted a malformed edge line")
	}
}
