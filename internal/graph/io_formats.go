package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDIMACS parses the DIMACS edge format used by most public graph
// benchmark suites:
//
//	c comment
//	p edge <n> <m>
//	e <u> <v>        (1-based endpoints)
//
// Vertices are converted to 0-based ids. Duplicate "e" lines and self loops
// are preserved for the caller to Normalize.
func ReadDIMACS(r io.Reader) (*EdgeList, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var g *EdgeList
	var declared int
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == 'c' {
			continue
		}
		switch text[0] {
		case 'p':
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate problem line", line)
			}
			var kind string
			var n, m int
			if _, err := fmt.Sscanf(text, "p %s %d %d", &kind, &n, &m); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad problem line %q", line, text)
			}
			if kind != "edge" && kind != "col" {
				return nil, fmt.Errorf("graph: line %d: unsupported DIMACS kind %q", line, kind)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: line %d: negative sizes", line)
			}
			g = &EdgeList{N: int32(n), Edges: make([]Edge, 0, m)}
			declared = m
		case 'e':
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: expected %q", line, "e <u> <v>")
			}
			u, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			v, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			if u < 1 || v < 1 || u > int64(g.N) || v > int64(g.N) {
				return nil, fmt.Errorf("graph: line %d: endpoint out of range [1,%d]", line, g.N)
			}
			g.Edges = append(g.Edges, Edge{U: int32(u - 1), V: int32(v - 1)})
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: no problem line")
	}
	if len(g.Edges) != declared {
		return nil, fmt.Errorf("graph: problem line declares %d edges, found %d", declared, len(g.Edges))
	}
	return g, nil
}

// WriteDIMACS serializes g in the DIMACS edge format (1-based).
func WriteDIMACS(w io.Writer, g *EdgeList) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.N, len(g.Edges)); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "e %d %d\n", e.U+1, e.V+1); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// binaryMagic identifies the binary edge-list format.
var binaryMagic = [4]byte{'B', 'I', 'C', 'C'}

// WriteBinary serializes g in a compact little-endian binary format:
// 4-byte magic, int32 n, int32 m, then m (u,v) int32 pairs. Roughly 10x
// faster to parse than the text format for the paper-scale instances.
func WriteBinary(w io.Writer, g *EdgeList) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := [8]byte{}
	binary.LittleEndian.PutUint32(hdr[0:], uint32(g.N))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(g.Edges)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [8]byte
	for _, e := range g.Edges {
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.U))
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.V))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format and validates the result.
func ReadBinary(r io.Reader) (*EdgeList, error) {
	g, err := ReadBinaryLenient(r)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ReadBinaryLenient parses the binary format without validating edges, for
// callers that Normalize afterwards.
func ReadBinaryLenient(r io.Reader) (*EdgeList, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	n := int32(binary.LittleEndian.Uint32(hdr[0:]))
	m := int32(binary.LittleEndian.Uint32(hdr[4:]))
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative sizes n=%d m=%d", n, m)
	}
	g := &EdgeList{N: n, Edges: make([]Edge, m)}
	var rec [8]byte
	for i := int32(0); i < m; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
		g.Edges[i] = Edge{
			U: int32(binary.LittleEndian.Uint32(rec[0:])),
			V: int32(binary.LittleEndian.Uint32(rec[4:])),
		}
	}
	return g, nil
}
