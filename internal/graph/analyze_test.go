package graph

import (
	"math/rand"
	"testing"
)

func chainEL(n int) *EdgeList {
	g := &EdgeList{N: int32(n)}
	for i := 0; i+1 < n; i++ {
		g.Edges = append(g.Edges, Edge{U: int32(i), V: int32(i + 1)})
	}
	return g
}

func TestDegrees(t *testing.T) {
	g := &EdgeList{N: 5, Edges: []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}}}
	deg, st := Degrees(1, g)
	if deg[0] != 3 || deg[4] != 0 {
		t.Errorf("deg=%v", deg)
	}
	if st.Min != 0 || st.Max != 3 || st.Isolated != 1 {
		t.Errorf("stats=%+v", st)
	}
	if st.Mean != 6.0/5.0 {
		t.Errorf("mean=%f", st.Mean)
	}
	_, st0 := Degrees(1, &EdgeList{N: 0})
	if st0.Min != 0 || st0.Max != 0 {
		t.Errorf("empty stats=%+v", st0)
	}
}

func TestDiameterChain(t *testing.T) {
	for _, p := range []int{1, 4} {
		if d := Diameter(p, chainEL(10)); d != 9 {
			t.Errorf("p=%d: chain diameter=%d, want 9", p, d)
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	// Two chains of length 3 and 5: diameter = max per component = 4.
	g := &EdgeList{N: 10}
	for i := 0; i < 3; i++ {
		g.Edges = append(g.Edges, Edge{U: int32(i), V: int32(i + 1)})
	}
	for i := 4; i < 9; i++ {
		g.Edges = append(g.Edges, Edge{U: int32(i), V: int32(i + 1)})
	}
	if d := Diameter(2, g); d != 5 {
		t.Errorf("diameter=%d, want 5", d)
	}
}

func TestDiameterEdgeless(t *testing.T) {
	if d := Diameter(2, &EdgeList{N: 7}); d != 0 {
		t.Errorf("edgeless diameter=%d", d)
	}
	if d := Diameter(2, &EdgeList{N: 0}); d != 0 {
		t.Errorf("empty diameter=%d", d)
	}
}

func TestTwoSweepLowerBoundAndTreeExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 40, 70)
		exact := Diameter(1, g)
		est := DiameterTwoSweep(1, g, 0)
		if est > exact {
			t.Fatalf("two-sweep %d exceeds exact %d", est, exact)
		}
	}
	// Exact on trees (here: a chain).
	g := chainEL(50)
	if est := DiameterTwoSweep(1, g, 25); est != 49 {
		t.Errorf("two-sweep on chain=%d, want 49", est)
	}
}

// Palmer [15]: almost all random graphs have diameter two. Checked at a
// density where the property already holds with high probability.
func TestPalmerDiameterTwo(t *testing.T) {
	n := 200
	m := n * n / 8 // p = 1/4: diameter 2 whp at this size
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, n, m)
	if d := Diameter(4, g); d != 2 {
		t.Errorf("dense random graph diameter=%d, want 2 (Palmer)", d)
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(1, chainEL(10)) {
		t.Error("chain reported disconnected")
	}
	if IsConnected(1, &EdgeList{N: 3, Edges: []Edge{{U: 0, V: 1}}}) {
		t.Error("graph with isolated vertex reported connected")
	}
	if !IsConnected(1, &EdgeList{N: 1}) {
		t.Error("singleton reported disconnected")
	}
	if !IsConnected(1, &EdgeList{N: 0}) {
		t.Error("empty reported disconnected")
	}
}
