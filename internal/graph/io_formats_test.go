package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 60, 150)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != g.N || len(got.Edges) != len(g.Edges) {
		t.Fatalf("n=%d m=%d", got.N, len(got.Edges))
	}
	for i := range g.Edges {
		if got.Edges[i] != g.Edges[i] {
			t.Fatalf("edge %d: %v vs %v", i, got.Edges[i], g.Edges[i])
		}
	}
}

func TestDIMACSParsesCommentsAndCol(t *testing.T) {
	in := "c a comment\np col 3 2\ne 1 2\ne 2 3\n"
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || len(g.Edges) != 2 || g.Edges[0] != (Edge{U: 0, V: 1}) {
		t.Errorf("parsed %+v", g)
	}
}

func TestDIMACSRejectsMalformed(t *testing.T) {
	cases := []struct{ name, in string }{
		{"no problem line", "e 1 2\n"},
		{"duplicate problem", "p edge 2 0\np edge 2 0\n"},
		{"bad kind", "p graph 3 1\ne 1 2\n"},
		{"count mismatch", "p edge 3 2\ne 1 2\n"},
		{"zero-based", "p edge 3 1\ne 0 1\n"},
		{"out of range", "p edge 3 1\ne 1 4\n"},
		{"bad record", "p edge 3 1\nx 1 2\n"},
		{"bad fields", "p edge 3 1\ne 1\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := ReadDIMACS(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 500, 2000)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != g.N || len(got.Edges) != len(g.Edges) {
		t.Fatalf("n=%d m=%d", got.N, len(got.Edges))
	}
	for i := range g.Edges {
		if got.Edges[i] != g.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestBinaryRejects(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("JUNKJUNKJUNK"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated edge section.
	var buf bytes.Buffer
	g := &EdgeList{N: 3, Edges: []Edge{{U: 0, V: 1}, {U: 1, V: 2}}}
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input accepted")
	}
	// Out-of-range endpoint caught by validation.
	var bad bytes.Buffer
	gb := &EdgeList{N: 2, Edges: []Edge{{U: 0, V: 1}}}
	if err := WriteBinary(&bad, gb); err != nil {
		t.Fatal(err)
	}
	raw := bad.Bytes()
	raw[len(raw)-4] = 9 // corrupt V of the only edge
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Error("corrupt endpoint accepted")
	}
}

func TestWriteErrorPropagation(t *testing.T) {
	g := &EdgeList{N: 3, Edges: []Edge{{U: 0, V: 1}}}
	// A writer that always fails must surface the error through every
	// serializer.
	for name, write := range map[string]func(*EdgeList) error{
		"text":   func(g *EdgeList) error { return Write(failWriter{}, g) },
		"dimacs": func(g *EdgeList) error { return WriteDIMACS(failWriter{}, g) },
		"binary": func(g *EdgeList) error { return WriteBinary(failWriter{}, g) },
	} {
		if err := write(g); err == nil {
			t.Errorf("%s: write error swallowed", name)
		}
	}
}

func TestMatrixFromEdgeListRejectsHuge(t *testing.T) {
	if _, err := MatrixFromEdgeList(&EdgeList{N: 1 << 20}); err == nil {
		t.Error("huge matrix accepted")
	}
}
