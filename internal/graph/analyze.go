package graph

import (
	"bicc/internal/par"
)

// Analysis utilities supporting the paper's §4 running-time discussion:
// TV-filter runs in O(d + log n) where d is the graph diameter, so the
// harness reports d alongside timings; Palmer's theorem ("almost all random
// graphs have diameter two", cited as [15]) is checked empirically in the
// tests.

// DegreeStats summarizes a degree distribution.
type DegreeStats struct {
	Min, Max int32
	Mean     float64
	Isolated int // vertices with degree 0
}

// Degrees returns per-vertex degrees and summary statistics.
func Degrees(p int, g *EdgeList) ([]int32, DegreeStats) {
	deg := make([]int32, g.N)
	for _, e := range g.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	st := DegreeStats{Min: 1 << 30}
	if g.N == 0 {
		st.Min = 0
		return deg, st
	}
	var sum int64
	for _, d := range deg {
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		if d == 0 {
			st.Isolated++
		}
		sum += int64(d)
	}
	st.Mean = float64(sum) / float64(g.N)
	_ = p
	return deg, st
}

// bfsDistances fills dist (which must be len N, will be overwritten) with
// hop counts from src, returning the eccentricity of src within its
// component and the number of reached vertices.
func bfsDistances(c *CSR, src int32, dist []int32, queue []int32) (ecc int32, reached int) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = append(queue[:0], src)
	reached = 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		if dv > ecc {
			ecc = dv
		}
		for _, w := range c.Neighbors(v) {
			if dist[w] == -1 {
				dist[w] = dv + 1
				reached++
				queue = append(queue, w)
			}
		}
	}
	return ecc, reached
}

// Diameter computes the exact diameter of g: the largest eccentricity over
// all vertices, taken per connected component (infinite distances between
// components are ignored; an edgeless graph has diameter 0). Cost is one
// BFS per vertex — O(n(n+m)) — so use it for analysis-sized graphs and
// DiameterTwoSweep for large ones.
func Diameter(p int, g *EdgeList) int32 {
	n := int(g.N)
	if n == 0 {
		return 0
	}
	c := ToCSR(p, g)
	p = par.Procs(p)
	if p > n {
		p = n
	}
	return par.MaxInt32(p, p, 0, func(w int) int32 {
		lo, hi := par.Block(n, p, w)
		dist := make([]int32, n)
		queue := make([]int32, 0, n)
		best := int32(0)
		for v := lo; v < hi; v++ {
			ecc, _ := bfsDistances(c, int32(v), dist, queue)
			if ecc > best {
				best = ecc
			}
		}
		return best
	})
}

// DiameterTwoSweep returns a lower bound on the diameter using the classic
// double-sweep heuristic: BFS from a start vertex, then BFS from the
// farthest vertex found. Exact on trees; a tight estimate in practice.
func DiameterTwoSweep(p int, g *EdgeList, start int32) int32 {
	if g.N == 0 {
		return 0
	}
	c := ToCSR(p, g)
	dist := make([]int32, g.N)
	queue := make([]int32, 0, g.N)
	bfsDistances(c, start, dist, queue)
	far := start
	for v := int32(0); v < g.N; v++ {
		if dist[v] > dist[far] {
			far = v
		}
	}
	ecc, _ := bfsDistances(c, far, dist, queue)
	return ecc
}

// IsConnected reports whether g is connected (vacuously true for n <= 1).
func IsConnected(p int, g *EdgeList) bool {
	if g.N <= 1 {
		return true
	}
	c := ToCSR(p, g)
	dist := make([]int32, g.N)
	queue := make([]int32, 0, g.N)
	_, reached := bfsDistances(c, 0, dist, queue)
	return reached == int(g.N)
}
