package graph

import (
	"math/rand"
	"runtime"
	"testing"
)

// The representation-conversion cost the paper charges against composing
// primitives with mismatched input formats (§1).
func BenchmarkToCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 100_000, 400_000)
	b.Run("p=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ToCSR(1, g)
		}
	})
	b.Run("p=max", func(b *testing.B) {
		p := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			ToCSR(p, g)
		}
	})
}

func BenchmarkMatrixToEdgeList(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 1800, 1800*1799/2*7/10)
	m, err := MatrixFromEdgeList(g)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		m.ToEdgeList()
	}
}
