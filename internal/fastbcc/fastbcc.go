// Package fastbcc implements the skeleton-based biconnected components
// algorithm of Dong, Wang, Gu & Sun, "Provably Fast and Space-Efficient
// Parallel Biconnectivity" (FAST-BCC) — the fifth engine preset, sitting
// next to the paper's TV variants.
//
// Where every TV variant materializes an Euler tour, ranks it, and builds
// the auxiliary graph G' (up to 3m staged edges), FAST-BCC works directly
// on a BFS spanning forest:
//
//  1. BFS spanning forest (reusing internal/spantree). In a BFS tree every
//     non-tree edge connects vertices whose levels differ by at most one,
//     so no non-tree edge joins a vertex to a proper ancestor: all
//     non-tree edges are cross edges. This is the structural fact the
//     skeleton construction leans on.
//  2. Per-vertex first/last (preorder interval) labels computed with three
//     O(n) level-synchronous sweeps over a children-CSR — no Euler tour,
//     no list ranking: a bottom-up sweep for subtree sizes, a top-down
//     sweep assigning preorder numbers, and a bottom-up sweep folding
//     low/high (the min/max preorder reachable from a subtree through
//     non-tree edges, exactly treecomp's semantics).
//  3. Fence classification: tree edge (v, u=p(v)) is a fence when
//     subtree(v)'s non-tree edges all stay inside subtree(u) — i.e.
//     low(v) >= first(u) and high(v) <= last(u). A fence edge's block is
//     completed strictly inside subtree(u), so it must not leak
//     connectivity upward; bridges are the degenerate fences whose
//     subtree has no escaping edge at all.
//  4. Skeleton connectivity: the skeleton graph keeps all non-tree (cross)
//     edges plus the non-fence ("plain") tree edges. Connected components
//     of the skeleton (internal/conncomp's Shiloach–Vishkin), read at the
//     child endpoint of each tree edge, are exactly the blocks.
//  5. Labels map back onto the original edge list: tree edge (v,p(v))
//     takes v's component, a cross edge takes either endpoint's (they are
//     skeleton-connected by the edge itself). core.FinishResult densifies
//     into the canonical first-occurrence numbering, so the result is
//     byte-identical to every other engine regardless of which BFS tree
//     the races produced.
//
// Total work is O(n + m) with O(diameter) parallel rounds and no
// super-linear staging area — the space efficiency the paper's title
// refers to, and the reason its constant factor beats the TV stack.
package fastbcc

import (
	"sync/atomic"

	"bicc/internal/conncomp"
	"bicc/internal/core"
	"bicc/internal/faults"
	"bicc/internal/graph"
	"bicc/internal/obs"
	"bicc/internal/par"
	"bicc/internal/prefix"
	"bicc/internal/spantree"
)

// Fault-injection points, both with the computation's canceler: per level
// round in the tree-label sweeps, and once before the skeleton is built.
var (
	siteLabels   = faults.RegisterSite("fastbcc.labels", true)
	siteSkeleton = faults.RegisterSite("fastbcc.skeleton", true)
)

// Config carries the run's cancellation token and trace span, mirroring the
// corresponding core.Config fields.
type Config struct {
	// Cancel, when non-nil, is polled inside the parallel loops and between
	// phases; tripping it makes Run return the cancellation cause promptly.
	Cancel *par.Canceler
	// Span, when non-nil, receives one completed child span per phase (the
	// same laps that populate Result.Phases). Nil costs nothing.
	Span *obs.Span
}

// Run computes the biconnected components of g with p workers.
//
// Like core.Custom it is a fault boundary: a panic anywhere in the pipeline
// is recovered and returned as a *par.PanicError instead of propagating.
func Run(p int, g *graph.EdgeList, cfg Config) (res *core.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, par.AsPanicError(-1, v)
		}
	}()
	p = par.Procs(p)
	m := len(g.Edges)
	sw := core.NewStopwatch(cfg.Span)

	// Phase 1: BFS spanning forest.
	c := graph.ToCSR(p, g)
	f := spantree.BFSC(cfg.Cancel, p, c)
	if err := cfg.Cancel.Err(); err != nil {
		return nil, err
	}
	isTree := f.TreeEdgeMark(p, m)
	sw.Lap(core.PhaseSpanningTree)

	// Phase 2: subtree sizes and preorder intervals by level sweeps (the
	// paper's Root-tree cost, without the tour).
	lv := levelBuckets(cfg.Cancel, p, f)
	if err := cfg.Cancel.Err(); err != nil {
		return nil, err
	}
	first, size := preorder(cfg.Cancel, p, f, lv)
	if err := cfg.Cancel.Err(); err != nil {
		return nil, err
	}
	sw.Lap(core.PhaseRoot)

	// Phase 3: low/high — seed from non-tree edges, fold bottom-up.
	low, high := lowHigh(cfg.Cancel, p, g, f, lv, first)
	if err := cfg.Cancel.Err(); err != nil {
		return nil, err
	}
	sw.Lap(core.PhaseLowHigh)

	// Phase 4: fence classification and skeleton construction.
	faults.Inject(cfg.Cancel, siteSkeleton, 0, 0)
	if err := cfg.Cancel.Err(); err != nil {
		return nil, err
	}
	inSkel := make([]bool, m)
	par.ForC(cfg.Cancel, p, m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !isTree[i] {
				// A BFS tree has no back edges, so every non-tree edge is a
				// cross edge and belongs to the skeleton.
				inSkel[i] = true
				continue
			}
			v := childOf(f, g.Edges[i], int32(i))
			u := f.Parent[v]
			// Plain (non-fence) tree edge: some edge from subtree(v)
			// escapes subtree(u), so (v,u) and (u,p(u)) share a block.
			if low[v] < first[u] || high[v] > first[u]+size[u]-1 {
				inSkel[i] = true
			}
		}
	})
	if err := cfg.Cancel.Err(); err != nil {
		return nil, err
	}
	skelIDs := prefix.Compact(p, m, func(i int) bool { return inSkel[i] })
	skel := make([]graph.Edge, len(skelIDs))
	par.For(p, len(skelIDs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			skel[i] = g.Edges[skelIDs[i]]
		}
	})
	sw.Lap(core.PhaseSkeleton)

	// Phase 5: connected components of the skeleton are the blocks.
	labels := conncomp.ShiloachVishkinC(cfg.Cancel, p, g.N, skel)
	if err := cfg.Cancel.Err(); err != nil {
		return nil, err
	}
	sw.Lap(core.PhaseConnComp)

	// Phase 6: map component labels back onto the edge list. A tree edge is
	// labeled at its child endpoint; a cross edge is itself a skeleton edge,
	// so both endpoints carry the same label and either works.
	edgeComp := make([]int32, m)
	par.ForC(cfg.Cancel, p, m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := g.Edges[i]
			if isTree[i] {
				edgeComp[i] = labels[childOf(f, e, int32(i))]
			} else {
				edgeComp[i] = labels[e.U]
			}
		}
	})
	if err := cfg.Cancel.Err(); err != nil {
		return nil, err
	}
	sw.Lap(core.PhaseLabelEdge)
	return core.FinishResult(edgeComp, sw), nil
}

// childOf returns the child endpoint of tree edge e (edge id i): the
// endpoint whose parent edge is i.
func childOf(f *spantree.RootedForest, e graph.Edge, i int32) int32 {
	if f.ParentEdge[e.U] == i {
		return e.U
	}
	return e.V
}

// levels is the vertex set bucketed by BFS depth: Verts[Off[l]:Off[l+1]]
// lists the vertices at level l, enabling level-synchronous sweeps without
// re-scanning all n vertices per round.
type levels struct {
	Max   int32   // deepest level
	Off   []int32 // length Max+2
	Verts []int32 // length n, bucketed by level
}

// levelBuckets builds the level buckets with a parallel counting sort over
// f.Level (atomic histogram, prefix sum, atomic-cursor scatter).
func levelBuckets(cn *par.Canceler, p int, f *spantree.RootedForest) *levels {
	n := int(f.N)
	max := par.MaxInt32(p, n, 0, func(i int) int32 { return f.Level[i] })
	cnt := make([]int32, int(max)+2)
	par.ForC(cn, p, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			atomic.AddInt32(&cnt[f.Level[v]+1], 1)
		}
	})
	prefix.InclusiveSum32(p, cnt)
	off := cnt // cnt[0] stayed 0, so the inclusive scan is the offsets array
	cur := make([]int32, int(max)+1)
	verts := make([]int32, n)
	par.ForC(cn, p, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			l := f.Level[v]
			verts[off[l]+atomic.AddInt32(&cur[l], 1)-1] = int32(v)
		}
	})
	return &levels{Max: max, Off: off, Verts: verts}
}

// preorder computes subtree sizes (bottom-up level sweep) and preorder
// numbers (top-down level sweep over a children-CSR). first[v] is v's
// preorder number; the subtree of v occupies [first[v], first[v]+size[v]-1].
// Roots are numbered in discovery order (increasing vertex id) with their
// components laid out contiguously, so the intervals of distinct components
// never overlap.
func preorder(cn *par.Canceler, p int, f *spantree.RootedForest, lv *levels) (first, size []int32) {
	n := int(f.N)
	// Children-CSR by counting sort on Parent. Scatter order within a
	// parent is racy, which only permutes preorder numbers inside the
	// subtree — the fence predicate is order-independent (it tests interval
	// containment, a property of the tree, not of the numbering).
	childCnt := make([]int32, n+1)
	par.ForC(cn, p, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if f.Parent[v] != int32(v) {
				atomic.AddInt32(&childCnt[f.Parent[v]+1], 1)
			}
		}
	})
	prefix.InclusiveSum32(p, childCnt)
	childOff := childCnt
	childCur := make([]int32, n)
	children := make([]int32, childOff[n])
	par.ForC(cn, p, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if pa := f.Parent[v]; pa != int32(v) {
				children[childOff[pa]+atomic.AddInt32(&childCur[pa], 1)-1] = int32(v)
			}
		}
	})

	// Bottom-up: children (level l+1) are final when level l runs; the
	// barrier between rounds publishes their writes.
	size = make([]int32, n)
	for l := lv.Max; l >= 0; l-- {
		faults.Inject(cn, siteLabels, 0, int(l))
		if cn.Err() != nil {
			return nil, nil
		}
		verts := lv.Verts[lv.Off[l]:lv.Off[l+1]]
		par.ForDynamicC(cn, p, len(verts), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := verts[i]
				s := int32(1)
				for _, c := range children[childOff[v]:childOff[v+1]] {
					s += size[c]
				}
				size[v] = s
			}
		})
	}

	// Top-down: a parent's number is final before its children are
	// assigned; per-parent prefix over its children costs O(n) total.
	first = make([]int32, n)
	base := int32(0)
	for _, r := range f.Roots {
		first[r] = base
		base += size[r]
	}
	for l := int32(0); l <= lv.Max; l++ {
		if cn.Err() != nil {
			return nil, nil
		}
		verts := lv.Verts[lv.Off[l]:lv.Off[l+1]]
		par.ForDynamicC(cn, p, len(verts), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := verts[i]
				num := first[v] + 1
				for _, c := range children[childOff[v]:childOff[v+1]] {
					first[c] = num
					num += size[c]
				}
			}
		})
	}
	return first, size
}

// lowHigh computes, per vertex v, the min/max preorder number over
// subtree(v) and the non-tree neighbors of subtree(v) — treecomp.LowHigh's
// semantics without the RMQ: seed each endpoint of every non-tree edge with
// the other endpoint's preorder, then fold children into parents bottom-up
// by level.
func lowHigh(cn *par.Canceler, p int, g *graph.EdgeList, f *spantree.RootedForest, lv *levels, first []int32) (low, high []int32) {
	n := int(f.N)
	low = make([]int32, n)
	high = make([]int32, n)
	par.ForC(cn, p, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			low[v] = first[v]
			high[v] = first[v]
		}
	})
	par.ForDynamicC(cn, p, len(g.Edges), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := g.Edges[i]
			// Tree edges are exactly the parent edges; everything else
			// seeds both endpoints.
			if f.ParentEdge[e.U] == int32(i) || f.ParentEdge[e.V] == int32(i) {
				continue
			}
			atomicMin(&low[e.U], first[e.V])
			atomicMax(&high[e.U], first[e.V])
			atomicMin(&low[e.V], first[e.U])
			atomicMax(&high[e.V], first[e.U])
		}
	})
	for l := lv.Max; l >= 0; l-- {
		faults.Inject(cn, siteLabels, 0, int(lv.Max-l))
		if cn.Err() != nil {
			return nil, nil
		}
		verts := lv.Verts[lv.Off[l]:lv.Off[l+1]]
		par.ForDynamicC(cn, p, len(verts), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := verts[i]
				if pa := f.Parent[v]; pa != v {
					// Fold v into its parent with atomics: siblings at the
					// same level share the parent slot.
					atomicMin(&low[pa], low[v])
					atomicMax(&high[pa], high[v])
				}
			}
		})
	}
	return low, high
}

func atomicMin(addr *int32, v int32) {
	for {
		cur := atomic.LoadInt32(addr)
		if v >= cur || atomic.CompareAndSwapInt32(addr, cur, v) {
			return
		}
	}
}

func atomicMax(addr *int32, v int32) {
	for {
		cur := atomic.LoadInt32(addr)
		if v <= cur || atomic.CompareAndSwapInt32(addr, cur, v) {
			return
		}
	}
}
