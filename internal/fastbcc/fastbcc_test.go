package fastbcc_test

import (
	"fmt"
	"math/rand"
	"testing"

	"bicc/internal/conncomp"
	"bicc/internal/core"
	"bicc/internal/fastbcc"
	"bicc/internal/gen"
	"bicc/internal/graph"
	"bicc/internal/par"
)

// mustEqual asserts got is byte-identical to the sequential engine's
// canonical labeling of g.
func mustEqual(t *testing.T, name string, g *graph.EdgeList, got *core.Result) {
	t.Helper()
	want, err := core.SequentialC(nil, g)
	if err != nil {
		t.Fatalf("%s: sequential: %v", name, err)
	}
	if got.NumComp != want.NumComp {
		t.Fatalf("%s: NumComp=%d, sequential %d", name, got.NumComp, want.NumComp)
	}
	for i := range want.EdgeComp {
		if got.EdgeComp[i] != want.EdgeComp[i] {
			t.Fatalf("%s: edge %d labeled %d, sequential %d (edge %v)",
				name, i, got.EdgeComp[i], want.EdgeComp[i], g.Edges[i])
		}
	}
}

// TestFamilies runs the engine against the sequential oracle over every
// generator family, at several worker counts: structured meshes, dense
// blocks, bridge-heavy caterpillars and stars, block chains (many
// articulation points), trees (every edge a bridge), and disconnected
// unions of all of the above.
func TestFamilies(t *testing.T) {
	families := map[string]*graph.EdgeList{
		"random":       gen.RandomConnected(200, 600, 7),
		"random-dense": gen.RandomConnected(120, 2000, 8),
		"torus":        gen.Torus(10, 12),
		"caterpillar":  gen.Caterpillar(30, 4),
		"dense":        gen.Dense(40, 0.5, 11),
		"mesh":         gen.Mesh(9, 9),
		"chain":        gen.Chain(64),
		"cycle":        gen.Cycle(64),
		"star":         gen.Star(33),
		"binary-tree":  gen.BinaryTree(63),
		"block-chain":  gen.BlockChain(12, 6),
		"geometric":    gen.Geometric(150, 0.18, 5),
		"pref-attach":  gen.PreferentialAttachment(150, 3, 6),
		"disconnected": gen.Disconnected(gen.Cycle(10), gen.Chain(7), gen.Star(5), gen.Dense(12, 0.6, 3)),
		"empty":        {N: 0},
		"isolated":     {N: 5},
		"single-edge":  {N: 2, Edges: []graph.Edge{{U: 0, V: 1}}},
	}
	for name, g := range families {
		for _, p := range []int{1, 2, 4} {
			res, err := fastbcc.Run(p, g, fastbcc.Config{})
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			mustEqual(t, fmt.Sprintf("%s p=%d", name, p), g, res)
		}
	}
}

// TestRandomDifferential hammers the engine with many small random graphs —
// the regime where every tricky fence/skeleton interaction shows up — at
// mixed densities, including graphs far below the connectivity threshold
// (many components, many bridges).
func TestRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20230101))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(40)
		maxM := n * (n - 1) / 2
		m := rng.Intn(maxM + 1)
		seen := map[uint64]struct{}{}
		var edges []graph.Edge
		for len(edges) < m {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				continue
			}
			k := graph.CanonKey(u, v)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			edges = append(edges, graph.Edge{U: u, V: v})
		}
		g := &graph.EdgeList{N: int32(n), Edges: edges}
		p := 1 + rng.Intn(4)
		res, err := fastbcc.Run(p, g, fastbcc.Config{})
		if err != nil {
			t.Fatalf("trial %d (n=%d m=%d p=%d): %v", trial, n, m, p, err)
		}
		mustEqual(t, fmt.Sprintf("trial %d (n=%d m=%d p=%d)", trial, n, m, p), g, res)
	}
}

// TestBridgeHeavy targets the fence/bridge special cases: trees decorated
// with sparse extra edges, so most tree edges are bridges (singleton
// skeleton components) while a few gain cycles.
func TestBridgeHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(60)
		var edges []graph.Edge
		for v := 1; v < n; v++ { // random tree
			edges = append(edges, graph.Edge{U: int32(rng.Intn(v)), V: int32(v)})
		}
		extra := rng.Intn(4)
		seen := map[uint64]struct{}{}
		for _, e := range edges {
			seen[graph.CanonKey(e.U, e.V)] = struct{}{}
		}
		for k := 0; k < extra; k++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				continue
			}
			key := graph.CanonKey(u, v)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			edges = append(edges, graph.Edge{U: u, V: v})
		}
		g := &graph.EdgeList{N: int32(n), Edges: edges}
		res, err := fastbcc.Run(2, g, fastbcc.Config{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mustEqual(t, fmt.Sprintf("bridge trial %d (n=%d)", trial, n), g, res)
	}
}

// TestDeterministicAcrossProcs pins the canonicalization property the
// incremental layer depends on: whatever BFS tree the parallel races
// produce, the densified EdgeComp is identical run to run.
func TestDeterministicAcrossProcs(t *testing.T) {
	g := gen.RandomConnected(300, 1200, 21)
	base, err := fastbcc.Run(1, g, fastbcc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 10; rep++ {
		res, err := fastbcc.Run(4, g, fastbcc.Config{})
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		for i := range base.EdgeComp {
			if res.EdgeComp[i] != base.EdgeComp[i] {
				t.Fatalf("rep %d: edge %d labeled %d, first run %d", rep, i, res.EdgeComp[i], base.EdgeComp[i])
			}
		}
	}
}

// TestCancellation trips the canceler mid-run and asserts the cause comes
// back as the error — the contract the supervisor's retry path needs.
func TestCancellation(t *testing.T) {
	g := gen.RandomConnected(2000, 8000, 3)
	cn := &par.Canceler{}
	cause := fmt.Errorf("stop now")
	cn.Cancel(cause)
	if _, err := fastbcc.Run(2, g, fastbcc.Config{Cancel: cn}); err != cause {
		t.Fatalf("err = %v, want the cancellation cause", err)
	}
}

// TestPanicContained proves Run is a fault boundary: a panic inside the
// pipeline surfaces as a *par.PanicError, never as a crash.
func TestPanicContained(t *testing.T) {
	// An out-of-range edge makes the CSR conversion index out of bounds.
	g := &graph.EdgeList{N: 2, Edges: []graph.Edge{{U: 0, V: 5}}}
	res, err := fastbcc.Run(1, g, fastbcc.Config{})
	if res != nil || err == nil {
		t.Fatalf("res=%v err=%v, want nil + contained panic", res, err)
	}
	if _, ok := err.(*par.PanicError); !ok {
		t.Fatalf("err is %T, want *par.PanicError", err)
	}
}

// TestPhases asserts the run records the engine's five pipeline phases in
// execution order, so bicc_phase_seconds and bccbreakdown get real rows.
func TestPhases(t *testing.T) {
	g := gen.RandomConnected(500, 2000, 13)
	res, err := fastbcc.Run(2, g, fastbcc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		core.PhaseSpanningTree, core.PhaseRoot, core.PhaseLowHigh,
		core.PhaseSkeleton, core.PhaseConnComp, core.PhaseLabelEdge,
	}
	if len(res.Phases) != len(want) {
		t.Fatalf("recorded %d phases, want %d: %v", len(res.Phases), len(want), res.Phases)
	}
	for i, ph := range res.Phases {
		if ph.Name != want[i] {
			t.Fatalf("phase %d is %q, want %q", i, ph.Name, want[i])
		}
	}
}

// TestPartitionAgainstTV cross-checks against a parallel engine too (not
// just the DFS oracle): the partitions must agree edge for edge.
func TestPartitionAgainstTV(t *testing.T) {
	g := gen.RandomConnected(400, 1600, 17)
	a, err := fastbcc.Run(3, g, fastbcc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Custom(3, g, core.TVFilterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !conncomp.SamePartition(a.EdgeComp, b.EdgeComp) {
		t.Fatal("fast-bcc and tv-filter disagree on the block partition")
	}
}
