package treecontract

import (
	"fmt"

	"bicc/internal/par"
)

// Arithmetic expression tree evaluation by parallel tree contraction — the
// demonstration workload of the paper's cited building-block study [2]
// (Bader, Sreshta, Weisse-Bernstein, HiPC 2002). Internal nodes are + or ×
// over a prime field; leaves carry values. Raking a leaf folds its
// constant into a pending linear function a·x+b on its sibling's edge;
// since linear functions are closed under composition with + and ×, the
// tree halves every two sub-rounds and evaluation completes in O(log n)
// rounds.

// Mod is the prime field modulus used by the evaluator (2^31 - 1).
const Mod = (1 << 31) - 1

// Op is an expression-node operator.
type Op byte

const (
	// Leaf marks a value node.
	Leaf Op = iota
	// Add is modular addition.
	Add
	// Mul is modular multiplication.
	Mul
)

// ExprNode is one node of a binary expression tree.
type ExprNode struct {
	Op          Op
	Left, Right int32 // children (internal nodes), -1 for leaves
	Value       int64 // leaf value (taken mod Mod)
}

// ExprTree is a strict binary expression tree: every internal node has
// exactly two children.
type ExprTree struct {
	Nodes []ExprNode
	Root  int32
}

// Validate checks structural invariants: strict binary internals, in-range
// child links, a single root, acyclicity.
func (t *ExprTree) Validate() error {
	n := int32(len(t.Nodes))
	if t.Root < 0 || t.Root >= n {
		return fmt.Errorf("treecontract: root %d out of range", t.Root)
	}
	indeg := make([]int8, n)
	for i, nd := range t.Nodes {
		switch nd.Op {
		case Leaf:
			if nd.Left != -1 || nd.Right != -1 {
				return fmt.Errorf("treecontract: leaf %d has children", i)
			}
		case Add, Mul:
			if nd.Left < 0 || nd.Left >= n || nd.Right < 0 || nd.Right >= n || nd.Left == nd.Right {
				return fmt.Errorf("treecontract: node %d has bad children (%d,%d)", i, nd.Left, nd.Right)
			}
			indeg[nd.Left]++
			indeg[nd.Right]++
		default:
			return fmt.Errorf("treecontract: node %d has unknown op %d", i, nd.Op)
		}
	}
	for i, d := range indeg {
		if int32(i) == t.Root {
			if d != 0 {
				return fmt.Errorf("treecontract: root %d has a parent", i)
			}
		} else if d != 1 {
			return fmt.Errorf("treecontract: node %d has in-degree %d", i, d)
		}
	}
	return nil
}

// EvalSequential evaluates the tree by iterative post-order traversal — the
// baseline the contraction is checked against.
func (t *ExprTree) EvalSequential() int64 {
	type frame struct {
		node    int32
		visited bool
	}
	vals := make([]int64, len(t.Nodes))
	stack := []frame{{t.Root, false}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &t.Nodes[fr.node]
		if nd.Op == Leaf {
			vals[fr.node] = mod(nd.Value)
			continue
		}
		if !fr.visited {
			stack = append(stack, frame{fr.node, true}, frame{nd.Left, false}, frame{nd.Right, false})
			continue
		}
		l, r := vals[nd.Left], vals[nd.Right]
		if nd.Op == Add {
			vals[fr.node] = (l + r) % Mod
		} else {
			vals[fr.node] = l * r % Mod
		}
	}
	return vals[t.Root]
}

// linfn is a linear function x ↦ a·x + b over the prime field.
type linfn struct{ a, b int64 }

func (f linfn) apply(x int64) int64   { return (f.a*x%Mod + f.b) % Mod }
func (f linfn) compose(g linfn) linfn { return linfn{f.a * g.a % Mod, (f.a*g.b%Mod + f.b) % Mod} }

// EvalContract evaluates the tree with rake-based parallel contraction
// using p workers. Leaves are raked in odd-even order (odd-indexed leaves
// that are left children, then odd-indexed right children), so no two
// simultaneous rakes touch adjacent nodes and the leaf count halves each
// round: O(log n) rounds total.
func (t *ExprTree) EvalContract(p int) (int64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	n := len(t.Nodes)
	if t.Nodes[t.Root].Op == Leaf {
		return mod(t.Nodes[t.Root].Value), nil
	}
	parent := make([]int32, n)
	left := make([]int32, n)
	right := make([]int32, n)
	fn := make([]linfn, n) // pending function on the edge (node -> parent)
	val := make([]int64, n)
	for i := range t.Nodes {
		parent[i] = -1
		fn[i] = linfn{1, 0}
		left[i] = t.Nodes[i].Left
		right[i] = t.Nodes[i].Right
	}
	for i, nd := range t.Nodes {
		if nd.Op != Leaf {
			parent[nd.Left] = int32(i)
			parent[nd.Right] = int32(i)
		}
	}
	// Leaves in in-order (left-to-right), found by traversal.
	var leaves []int32
	stack := []int32{t.Root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.Nodes[v].Op == Leaf {
			leaves = append(leaves, v)
			val[v] = mod(t.Nodes[v].Value)
			continue
		}
		// Push right first so left pops first: in-order leaf sequence.
		stack = append(stack, right[v], left[v])
	}
	apply := func(v int32, leftChild bool) {
		// Rake leaf v: parent pv is removed; the sibling s inherits the
		// composed pending function on its new edge to the grandparent.
		pv := parent[v]
		var s int32
		if leftChild {
			s = right[pv]
		} else {
			s = left[pv]
		}
		c := fn[v].apply(val[v])
		var partial linfn // x ↦ op(c, fn[s](x))
		if t.Nodes[pv].Op == Add {
			partial = linfn{fn[s].a, (fn[s].b + c) % Mod}
		} else {
			partial = linfn{fn[s].a * c % Mod, fn[s].b * c % Mod}
		}
		fn[s] = fn[pv].compose(partial)
		// Splice s into pv's place.
		g := parent[pv]
		parent[s] = g
		if g != -1 {
			if left[g] == pv {
				left[g] = s
			} else {
				right[g] = s
			}
		}
	}
	root := t.Root
	for len(leaves) > 1 {
		// Sub-round A: odd-indexed leaves that are left children (and whose
		// parent is not the root unless the sibling subtree is already a
		// leaf — raking under the root is safe since the root is never
		// removed... the root IS removed when its other child is a leaf;
		// handle by tracking the current root).
		for pass := 0; pass < 2; pass++ {
			wantLeft := pass == 0
			// Collect rakes first (indices), then apply in parallel-safe
			// groups: odd positions ensure non-adjacent parents, but two
			// leaves could still share a parent when both are at odd/even
			// boundary — sharing a parent is impossible for two leaves of
			// the same side (a parent has one left child), and sides run in
			// separate passes.
			var rakes []int32
			for i := 1; i < len(leaves); i += 2 {
				v := leaves[i]
				pv := parent[v]
				if pv < 0 { // already raked (-2) or became the root (-1)
					continue
				}
				if (left[pv] == v) == wantLeft {
					rakes = append(rakes, v)
				}
			}
			par.ForDynamic(p, len(rakes), 0, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					v := rakes[i]
					pv := parent[v]
					if pv == root {
						continue // handled at the end
					}
					apply(v, left[pv] == v)
					parent[v] = -2 // mark raked
				}
			})
			// Root-adjacent rakes run sequentially: they may relabel root.
			for _, v := range rakes {
				if parent[v] != root {
					continue
				}
				pv := parent[v]
				var s int32
				if left[pv] == v {
					s = right[pv]
				} else {
					s = left[pv]
				}
				apply(v, left[pv] == v)
				root = s
				parent[s] = -1
				parent[v] = -2
			}
		}
		// Compact the leaf list, preserving order.
		out := leaves[:0]
		for _, v := range leaves {
			if parent[v] != -2 {
				out = append(out, v)
			}
		}
		if len(out) == len(leaves) {
			return 0, fmt.Errorf("treecontract: contraction made no progress (%d leaves)", len(leaves))
		}
		leaves = out
	}
	last := leaves[0]
	return fn[last].apply(val[last]), nil
}

func mod(x int64) int64 {
	x %= Mod
	if x < 0 {
		x += Mod
	}
	return x
}
