// Package treecontract implements parallel tree contraction, the remaining
// member of the paper's building-block family (§1 cites Bader, Sreshta and
// Weisse-Bernstein's SMP tree-contraction study [2] alongside prefix sums,
// list ranking and spanning trees). Two facilities are provided:
//
//   - Rake-order scheduling: repeatedly "rake" (remove) leaves in parallel
//     rounds until only the root remains. The rounds define a schedule that
//     evaluates any bottom-up tree recurrence; the number of rounds equals
//     the tree height, so it suits bounded-height trees (BFS trees of
//     low-diameter graphs). Deep unary chains should use the list-ranking
//     or RMQ engines in packages listrank/treecomp instead — no compress
//     step is implemented here.
//   - Expression evaluation (exprtree.go): the classic rake-with-pending-
//     linear-functions contraction that evaluates +/× expression trees in
//     O(log n) rounds regardless of shape, since binary expression trees
//     have no unary chains.
package treecontract

import (
	"fmt"
	"sync/atomic"

	"bicc/internal/par"
)

// Tree is a rooted tree (or forest) in parent-array form: Parent[v] == v
// marks a root.
type Tree struct {
	Parent []int32
}

// NewTree validates a parent array and returns the tree. Every vertex must
// reach a root in at most n steps.
func NewTree(parent []int32) (*Tree, error) {
	n := int32(len(parent))
	for v := int32(0); v < n; v++ {
		x := v
		for i := int32(0); ; i++ {
			if parent[x] < 0 || parent[x] >= n {
				return nil, fmt.Errorf("treecontract: parent[%d]=%d out of range", x, parent[x])
			}
			if parent[x] == x {
				break
			}
			if i >= n {
				return nil, fmt.Errorf("treecontract: cycle through vertex %d", v)
			}
			x = parent[x]
		}
	}
	return &Tree{Parent: append([]int32(nil), parent...)}, nil
}

// Schedule is a rake order: Rounds[r] lists the vertices raked in round r.
// Every non-vertex appears in exactly one round; roots are never raked.
type Schedule struct {
	Rounds [][]int32
}

// RakeSchedule computes the leaf-raking schedule with p workers: round r
// rakes the current leaves. The number of rounds equals the tree height.
func RakeSchedule(p int, t *Tree) *Schedule {
	n := len(t.Parent)
	remaining := make([]int32, n) // live child count
	for v := 0; v < n; v++ {
		if int(t.Parent[v]) != v {
			remaining[t.Parent[v]]++
		}
	}
	// Initial leaves.
	frontier := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if remaining[v] == 0 && int(t.Parent[v]) != v {
			frontier = append(frontier, int32(v))
		}
	}
	s := &Schedule{}
	next := make([]int32, 0, n)
	decr := make([]int32, n)
	for len(frontier) > 0 {
		s.Rounds = append(s.Rounds, append([]int32(nil), frontier...))
		// Decrement each raked vertex's parent; parents reaching zero and
		// not being roots become the next frontier. Single-threaded per
		// round bookkeeping is fine: total work over all rounds is O(n).
		next = next[:0]
		for _, v := range frontier {
			pv := t.Parent[v]
			decr[pv]++
			if decr[pv] == remaining[pv] && int(t.Parent[pv]) != int(pv) {
				next = append(next, pv)
			}
		}
		frontier, next = append(frontier[:0], next...), frontier
	}
	return s
}

// Aggregate evaluates a bottom-up recurrence over the tree using the rake
// schedule: for every vertex v, out[v] = fold(seed[v], out[c1], ...,
// out[ck]) over v's children, computed with one parallel round per schedule
// level. fold must be associative and commutative over children
// (fold(acc, x) applied per child); seeds are not modified.
func Aggregate(p int, t *Tree, s *Schedule, seed []int32, fold func(acc, child int32) int32) []int32 {
	n := len(t.Parent)
	out := make([]int32, n)
	par.For(p, n, func(lo, hi int) {
		copy(out[lo:hi], seed[lo:hi])
	})
	// Vertices rake bottom-up: when v is raked, out[v] is final; fold it
	// into the parent. Within a round, all raked vertices have distinct
	// parents only in general position — siblings can rake together, so
	// parent folds use a mutex-free two-phase approach: group by parent
	// sequentially per round (rounds are short) — or, simpler and correct,
	// fold sequentially within the round. Round work totals O(n).
	for _, round := range s.Rounds {
		for _, v := range round {
			out[t.Parent[v]] = fold(out[t.Parent[v]], out[v])
		}
	}
	return out
}

// AggregateParallel is Aggregate with intra-round parallelism for
// commutative idempotent-friendly folds expressed as atomic operations.
// op is applied with a CAS loop, so it must be commutative and associative
// (min, max, sum).
func AggregateParallel(p int, t *Tree, s *Schedule, seed []int32, op func(a, b int32) int32) []int32 {
	n := len(t.Parent)
	out := make([]int32, n)
	par.For(p, n, func(lo, hi int) {
		copy(out[lo:hi], seed[lo:hi])
	})
	for _, round := range s.Rounds {
		par.ForDynamic(p, len(round), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := round[i]
				casFold(&out[t.Parent[v]], out[v], op)
			}
		})
	}
	return out
}

// SubtreeSum returns, for every vertex, the sum of seed over its subtree.
func SubtreeSum(p int, t *Tree, seed []int32) []int32 {
	s := RakeSchedule(p, t)
	return AggregateParallel(p, t, s, seed, func(a, b int32) int32 { return a + b })
}

// SubtreeMin returns, for every vertex, the minimum of seed over its
// subtree.
func SubtreeMin(p int, t *Tree, seed []int32) []int32 {
	s := RakeSchedule(p, t)
	return AggregateParallel(p, t, s, seed, func(a, b int32) int32 {
		if a < b {
			return a
		}
		return b
	})
}

// Height returns the tree height (number of rake rounds).
func Height(p int, t *Tree) int {
	return len(RakeSchedule(p, t).Rounds)
}

// casFold applies out = op(out, v) atomically.
func casFold(addr *int32, v int32, op func(a, b int32) int32) {
	for {
		cur := atomic.LoadInt32(addr)
		nv := op(cur, v)
		if nv == cur || atomic.CompareAndSwapInt32(addr, cur, nv) {
			return
		}
	}
}
