package treecontract

import (
	"math/rand"
	"runtime"
	"testing"
)

func BenchmarkSubtreeSum(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr, err := NewTree(randomParentTree(rng, 200_000))
	if err != nil {
		b.Fatal(err)
	}
	seed := make([]int32, 200_000)
	for i := range seed {
		seed[i] = int32(rng.Intn(100))
	}
	p := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SubtreeSum(p, tr, seed)
	}
}

func BenchmarkExprEval(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	e := randomExpr(rng, 100_000)
	p := runtime.GOMAXPROCS(0)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.EvalSequential()
		}
	})
	b.Run("contract", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.EvalContract(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}
