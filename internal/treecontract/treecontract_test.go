package treecontract

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomParentTree builds a random rooted tree: parent of i is a random
// earlier vertex.
func randomParentTree(rng *rand.Rand, n int) []int32 {
	parent := make([]int32, n)
	parent[0] = 0
	for i := 1; i < n; i++ {
		parent[i] = int32(rng.Intn(i))
	}
	return parent
}

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree([]int32{0, 0, 1}); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	if _, err := NewTree([]int32{1, 0}); err == nil {
		t.Error("2-cycle accepted")
	}
	if _, err := NewTree([]int32{1, 2, 0}); err == nil {
		t.Error("3-cycle accepted")
	}
	if _, err := NewTree([]int32{5}); err == nil {
		t.Error("out-of-range parent accepted")
	}
}

func TestRakeScheduleCoversAllNonRoots(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(500)
		tr, err := NewTree(randomParentTree(rng, n))
		if err != nil {
			t.Fatal(err)
		}
		s := RakeSchedule(2, tr)
		seen := make([]bool, n)
		for r, round := range s.Rounds {
			for _, v := range round {
				if seen[v] {
					t.Fatalf("vertex %d raked twice", v)
				}
				seen[v] = true
				// All children must have been raked in earlier rounds.
				_ = r
			}
		}
		count := 0
		for v := 0; v < n; v++ {
			if seen[v] {
				count++
			}
			if int(tr.Parent[v]) == v && seen[v] {
				t.Fatalf("root %d was raked", v)
			}
		}
		if count != n-1 {
			t.Fatalf("raked %d vertices, want %d", count, n-1)
		}
	}
}

func TestRakeScheduleBottomUpOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr, err := NewTree(randomParentTree(rng, 300))
	if err != nil {
		t.Fatal(err)
	}
	s := RakeSchedule(1, tr)
	rakedAt := make([]int, 300)
	for i := range rakedAt {
		rakedAt[i] = 1 << 30 // roots: never
	}
	for r, round := range s.Rounds {
		for _, v := range round {
			rakedAt[v] = r
		}
	}
	for v := int32(0); v < 300; v++ {
		if int32(v) == tr.Parent[v] {
			continue
		}
		if rakedAt[v] >= rakedAt[tr.Parent[v]] && rakedAt[tr.Parent[v]] != 1<<30 {
			t.Fatalf("vertex %d raked at %d, not before parent %d at %d",
				v, rakedAt[v], tr.Parent[v], rakedAt[tr.Parent[v]])
		}
	}
}

func subtreeSumOracle(parent []int32, seed []int32) []int32 {
	n := len(parent)
	out := append([]int32(nil), seed...)
	// Repeatedly push leaves upward (O(n^2), test-only).
	order := make([]int32, 0, n)
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		if int(parent[v]) != v {
			deg[parent[v]]++
		}
	}
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if deg[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		if int(parent[v]) != int(v) {
			deg[parent[v]]--
			if deg[parent[v]] == 0 {
				queue = append(queue, parent[v])
			}
		}
	}
	for _, v := range order {
		if int(parent[v]) != int(v) {
			out[parent[v]] += out[v]
		}
	}
	return out
}

func TestSubtreeSumAndMin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(400)
		parent := randomParentTree(rng, n)
		tr, err := NewTree(parent)
		if err != nil {
			t.Fatal(err)
		}
		seed := make([]int32, n)
		for i := range seed {
			seed[i] = int32(rng.Intn(1000) - 500)
		}
		for _, p := range []int{1, 4} {
			got := SubtreeSum(p, tr, seed)
			want := subtreeSumOracle(parent, seed)
			for v := 0; v < n; v++ {
				if got[v] != want[v] {
					t.Fatalf("trial %d p=%d: sum[%d]=%d, want %d", trial, p, v, got[v], want[v])
				}
			}
			gotMin := SubtreeMin(p, tr, seed)
			// Oracle: brute-force descendant scan.
			for v := 0; v < n; v++ {
				mn := seed[v]
				for d := 0; d < n; d++ {
					x := int32(d)
					for x != int32(v) && int(parent[x]) != int(x) {
						x = parent[x]
					}
					if x == int32(v) && seed[d] < mn {
						mn = seed[d]
					}
				}
				if gotMin[v] != mn {
					t.Fatalf("trial %d p=%d: min[%d]=%d, want %d", trial, p, v, gotMin[v], mn)
				}
			}
		}
	}
}

func TestAggregateSequentialMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	parent := randomParentTree(rng, 500)
	tr, _ := NewTree(parent)
	seed := make([]int32, 500)
	for i := range seed {
		seed[i] = int32(rng.Intn(100))
	}
	s := RakeSchedule(2, tr)
	sum := func(a, b int32) int32 { return a + b }
	a := Aggregate(2, tr, s, seed, sum)
	b := AggregateParallel(4, tr, s, seed, sum)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("vertex %d: %d vs %d", v, a[v], b[v])
		}
	}
}

func TestHeight(t *testing.T) {
	// A path 0<-1<-2<-3: height 3.
	tr, _ := NewTree([]int32{0, 0, 1, 2})
	if h := Height(1, tr); h != 3 {
		t.Errorf("height=%d, want 3", h)
	}
	// A star: height 1.
	tr2, _ := NewTree([]int32{0, 0, 0, 0})
	if h := Height(1, tr2); h != 1 {
		t.Errorf("star height=%d, want 1", h)
	}
	// Single vertex: height 0.
	tr3, _ := NewTree([]int32{0})
	if h := Height(1, tr3); h != 0 {
		t.Errorf("single height=%d, want 0", h)
	}
}

// randomExpr builds a random strict binary expression tree with the given
// number of leaves.
func randomExpr(rng *rand.Rand, leaves int) *ExprTree {
	t := &ExprTree{}
	// Build bottom-up: maintain a list of subtree roots, repeatedly join
	// two random ones under a random op.
	var roots []int32
	for i := 0; i < leaves; i++ {
		t.Nodes = append(t.Nodes, ExprNode{Op: Leaf, Left: -1, Right: -1, Value: int64(rng.Intn(1 << 20))})
		roots = append(roots, int32(len(t.Nodes)-1))
	}
	for len(roots) > 1 {
		i := rng.Intn(len(roots))
		a := roots[i]
		roots[i] = roots[len(roots)-1]
		roots = roots[:len(roots)-1]
		j := rng.Intn(len(roots))
		b := roots[j]
		op := Add
		if rng.Intn(2) == 0 {
			op = Mul
		}
		t.Nodes = append(t.Nodes, ExprNode{Op: op, Left: a, Right: b})
		roots[j] = int32(len(t.Nodes) - 1)
	}
	t.Root = roots[0]
	return t
}

func TestExprEvalSmall(t *testing.T) {
	// (2 + 3) * 4 = 20
	e := &ExprTree{
		Nodes: []ExprNode{
			{Op: Leaf, Left: -1, Right: -1, Value: 2},
			{Op: Leaf, Left: -1, Right: -1, Value: 3},
			{Op: Add, Left: 0, Right: 1},
			{Op: Leaf, Left: -1, Right: -1, Value: 4},
			{Op: Mul, Left: 2, Right: 3},
		},
		Root: 4,
	}
	if got := e.EvalSequential(); got != 20 {
		t.Fatalf("sequential=%d, want 20", got)
	}
	got, err := e.EvalContract(2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Fatalf("contract=%d, want 20", got)
	}
}

func TestExprEvalSingleLeaf(t *testing.T) {
	e := &ExprTree{Nodes: []ExprNode{{Op: Leaf, Left: -1, Right: -1, Value: 7}}, Root: 0}
	got, err := e.EvalContract(2)
	if err != nil || got != 7 {
		t.Fatalf("got %d, %v", got, err)
	}
}

func TestExprValidate(t *testing.T) {
	bad := &ExprTree{Nodes: []ExprNode{{Op: Add, Left: 0, Right: 0}}, Root: 0}
	if err := bad.Validate(); err == nil {
		t.Error("self-children accepted")
	}
	leafKid := &ExprTree{Nodes: []ExprNode{{Op: Leaf, Left: 0, Right: -1}}, Root: 0}
	if err := leafKid.Validate(); err == nil {
		t.Error("leaf with child accepted")
	}
	cyc := &ExprTree{Nodes: []ExprNode{
		{Op: Add, Left: 1, Right: 2},
		{Op: Add, Left: 0, Right: 2},
		{Op: Leaf, Left: -1, Right: -1, Value: 1},
	}, Root: 0}
	if err := cyc.Validate(); err == nil {
		t.Error("shared child accepted")
	}
}

func TestQuickExprContractMatchesSequential(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		leaves := int(sz%1000) + 1
		e := randomExpr(rng, leaves)
		want := e.EvalSequential()
		for _, p := range []int{1, 4} {
			got, err := e.EvalContract(p)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExprContractDeepChainShape(t *testing.T) {
	// A maximally unbalanced tree (caterpillar): contraction must still
	// finish in O(log n) rounds (indirectly: must not blow up or err).
	rng := rand.New(rand.NewSource(9))
	t1 := &ExprTree{}
	t1.Nodes = append(t1.Nodes, ExprNode{Op: Leaf, Left: -1, Right: -1, Value: 1})
	cur := int32(0)
	for i := 0; i < 5000; i++ {
		t1.Nodes = append(t1.Nodes, ExprNode{Op: Leaf, Left: -1, Right: -1, Value: int64(rng.Intn(100))})
		leaf := int32(len(t1.Nodes) - 1)
		op := Add
		if i%3 == 0 {
			op = Mul
		}
		t1.Nodes = append(t1.Nodes, ExprNode{Op: op, Left: cur, Right: leaf})
		cur = int32(len(t1.Nodes) - 1)
	}
	t1.Root = cur
	want := t1.EvalSequential()
	got, err := t1.EvalContract(4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("contract=%d, want %d", got, want)
	}
}
