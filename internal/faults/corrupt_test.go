package faults

import (
	"bytes"
	"testing"
)

// TestInjectCorruptDeterministic proves the bit-rot hook flips exactly one
// bit, at the same position for the same (seed, site, worker, iter), and a
// different position when any coordinate changes — the property that makes
// corrupt schedules replayable like every other fault kind.
func TestInjectCorruptDeterministic(t *testing.T) {
	defer Deactivate()
	site := RegisterSite("test.corrupt.det", false)

	flip := func(seed uint64, iter int) []byte {
		Activate(&Plan{Seed: seed, Rules: []*Rule{NewRule(KindCorrupt, site)}})
		defer Deactivate()
		buf := make([]byte, 64)
		if !InjectCorrupt(site, 0, iter, buf) {
			t.Fatalf("InjectCorrupt did not fire (seed %d, iter %d)", seed, iter)
		}
		return buf
	}

	a, b := flip(7, 0), flip(7, 0)
	if !bytes.Equal(a, b) {
		t.Errorf("same seed/site/iter flipped different bits")
	}
	ones := 0
	for _, x := range a {
		for ; x != 0; x &= x - 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Errorf("flipped %d bits, want exactly 1", ones)
	}
	if bytes.Equal(flip(7, 0), flip(7, 1)) && bytes.Equal(flip(7, 1), flip(7, 2)) {
		t.Errorf("three consecutive iters flipped the same bit; hash not mixing iter")
	}
	if bytes.Equal(flip(7, 0), flip(8, 0)) && bytes.Equal(flip(8, 0), flip(9, 0)) {
		t.Errorf("three seeds flipped the same bit; hash not mixing seed")
	}
}

// TestInjectCorruptGating proves the no-plan, empty-buffer, wrong-site, and
// wrong-kind paths all leave the buffer untouched and report false.
func TestInjectCorruptGating(t *testing.T) {
	defer Deactivate()
	site := RegisterSite("test.corrupt.gate", false)
	other := RegisterSite("test.corrupt.other", false)
	buf := []byte{0xAA, 0x55}
	want := []byte{0xAA, 0x55}

	Deactivate()
	if InjectCorrupt(site, 0, 0, buf) || !bytes.Equal(buf, want) {
		t.Errorf("no active plan must be a no-op")
	}

	Activate(&Plan{Seed: 1, Rules: []*Rule{NewRule(KindCorrupt, other)}})
	if InjectCorrupt(site, 0, 0, buf) || !bytes.Equal(buf, want) {
		t.Errorf("non-matching site must be a no-op")
	}

	Activate(&Plan{Seed: 1, Rules: []*Rule{NewRule(KindPanic, site)}})
	if InjectCorrupt(site, 0, 0, buf) || !bytes.Equal(buf, want) {
		t.Errorf("non-corrupt rule must be a no-op in InjectCorrupt")
	}

	Activate(&Plan{Seed: 1, Rules: []*Rule{NewRule(KindCorrupt, site)}})
	if InjectCorrupt(site, 0, 0, nil) {
		t.Errorf("empty buffer must report false")
	}
}

// TestInjectCorruptCount proves count=N caps firing like every other kind.
func TestInjectCorruptCount(t *testing.T) {
	defer Deactivate()
	site := RegisterSite("test.corrupt.count", false)
	r := NewRule(KindCorrupt, site)
	r.Count = 1
	Activate(&Plan{Seed: 3, Rules: []*Rule{r}})
	buf := make([]byte, 16)
	if !InjectCorrupt(site, 0, 0, buf) {
		t.Fatalf("first injection did not fire")
	}
	snapshot := append([]byte(nil), buf...)
	for i := 1; i < 5; i++ {
		if InjectCorrupt(site, 0, i, buf) {
			t.Errorf("count=1 rule fired again at iter %d", i)
		}
	}
	if !bytes.Equal(buf, snapshot) {
		t.Errorf("buffer changed after the count cap")
	}
}

// TestCorruptInertAtPlainInject proves KindCorrupt rules are harmless at
// sites that call the plain Inject hook — no data to damage, no panic, no
// delay.
func TestCorruptInertAtPlainInject(t *testing.T) {
	defer Deactivate()
	site := RegisterSite("test.corrupt.inert", false)
	Activate(&Plan{Seed: 1, Rules: []*Rule{NewRule(KindCorrupt, "*")}})
	Inject(nil, site, 0, 0) // must not panic or block
}

// TestParseCorrupt proves the spec grammar round-trips the new kind.
func TestParseCorrupt(t *testing.T) {
	plan, err := Parse("corrupt,site=wal.verify,count=1", 42)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(plan.Rules) != 1 {
		t.Fatalf("got %d rules, want 1", len(plan.Rules))
	}
	r := plan.Rules[0]
	if r.Kind != KindCorrupt || r.Site != "wal.verify" || r.Count != 1 {
		t.Errorf("rule = %+v, want corrupt/wal.verify/count=1", r)
	}
	if KindCorrupt.String() != "corrupt" {
		t.Errorf("KindCorrupt.String() = %q", KindCorrupt.String())
	}
}
