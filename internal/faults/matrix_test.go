package faults_test

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"bicc"
	"bicc/internal/faults"
	"bicc/internal/incr"
	"bicc/internal/par"
	"bicc/internal/shard"
)

// matrixGraph is a deterministic ~400-vertex graph with several blocks:
// two chord-dense rings joined by a bridge, plus pendant vertices. Big
// enough that every parallel engine runs its real phases.
func matrixGraph(t *testing.T) *bicc.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	const half = 192
	var edges []bicc.Edge
	ring := func(base int32) {
		for i := int32(0); i < half; i++ {
			edges = append(edges, bicc.Edge{U: base + i, V: base + (i+1)%half})
		}
		for k := 0; k < half/2; k++ {
			u := base + rng.Int31n(half)
			v := base + rng.Int31n(half)
			edges = append(edges, bicc.Edge{U: u, V: v})
		}
	}
	ring(0)
	ring(half)
	edges = append(edges, bicc.Edge{U: 0, V: half}) // bridge between the rings
	n := int32(2 * half)
	for i := 0; i < 8; i++ { // pendant vertices: more bridges and cut vertices
		edges = append(edges, bicc.Edge{U: rng.Int31n(n), V: n})
		n++
	}
	g, _, _, err := bicc.NewGraphNormalized(int(n), edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFaultMatrix is the fault-isolation contract: for every registered
// injection site and every fault kind, every engine must either return a
// correct result or a typed, attributable error — never crash the process,
// never hang, never return a silently wrong decomposition.
func TestFaultMatrix(t *testing.T) {
	defer faults.Deactivate()
	g := matrixGraph(t)
	want, err := bicc.BiconnectedComponentsCtx(context.Background(), g,
		&bicc.Options{Algorithm: bicc.Sequential})
	if err != nil {
		t.Fatalf("clean sequential run failed: %v", err)
	}

	algos := []bicc.Algorithm{bicc.Sequential, bicc.TVSMP, bicc.TVOpt, bicc.TVFilter, bicc.FastBCC}
	kinds := []faults.Kind{faults.KindPanic, faults.KindDelay, faults.KindCancel}
	sites := faults.Sites()
	if len(sites) < 10 {
		t.Fatalf("only %d registered sites (%v) — instrumentation missing?", len(sites), sites)
	}
	for _, site := range sites {
		if strings.HasPrefix(site, "test.") {
			continue // scratch sites registered by unit tests in this package
		}
		for _, kind := range kinds {
			for _, algo := range algos {
				t.Run(site+"/"+kind.String()+"/"+algo.String(), func(t *testing.T) {
					r := faults.NewRule(kind, site)
					switch kind {
					case faults.KindPanic, faults.KindCancel:
						r.Count = 1
					case faults.KindDelay:
						r.Count = 3
						r.Delay = time.Millisecond
					}
					faults.Activate(&faults.Plan{Seed: 1, Rules: []*faults.Rule{r}})
					defer faults.Deactivate()

					res, err := bicc.BiconnectedComponentsCtx(context.Background(), g,
						&bicc.Options{Algorithm: algo, Procs: 4})
					// The derived views below (articulation points, bridges)
					// run instrumented code too; verify them fault-free.
					faults.Deactivate()
					if err != nil {
						// A fault the engine could not absorb must surface as
						// a typed error traceable to the injection.
						var pe *par.PanicError
						var ip *faults.InjectedPanic
						switch {
						case errors.As(err, &ip):
						case errors.Is(err, faults.ErrInjected):
						case errors.As(err, &pe):
						default:
							t.Fatalf("untyped error %T: %v", err, err)
						}
						if kind == faults.KindDelay {
							t.Fatalf("a pure delay must not fail the run: %v", err)
						}
						return
					}
					// The engine absorbed the fault (or never reached the
					// site): the decomposition must still be exact.
					if res.NumComponents != want.NumComponents {
						t.Fatalf("silent corruption: %d components, want %d",
							res.NumComponents, want.NumComponents)
					}
					if got, want := len(res.ArticulationPoints()), len(want.ArticulationPoints()); got != want {
						t.Fatalf("silent corruption: %d articulation points, want %d", got, want)
					}
					if got, want := len(res.Bridges()), len(want.Bridges()); got != want {
						t.Fatalf("silent corruption: %d bridges, want %d", got, want)
					}
				})
			}
		}
	}
}

// TestFaultMatrixShardBuild extends the matrix past the engines to the
// shard layer's build site: for every fault kind and every algorithm's
// decomposition, a faulted BuildSet must return a typed error and no
// partial state, and an absorbed fault (pure delay) must still produce
// shard state that answers identically to the monolithic block-cut tree.
// Importing the shard package also adds shard.build to Sites(), so the
// engine matrices above cover it (vacuously — engines never shard).
func TestFaultMatrixShardBuild(t *testing.T) {
	defer faults.Deactivate()
	g := matrixGraph(t)
	algos := []bicc.Algorithm{bicc.Sequential, bicc.TVSMP, bicc.TVOpt, bicc.TVFilter, bicc.FastBCC}
	kinds := []faults.Kind{faults.KindPanic, faults.KindDelay, faults.KindCancel}
	for _, algo := range algos {
		res, err := bicc.BiconnectedComponentsCtx(context.Background(), g,
			&bicc.Options{Algorithm: algo, Procs: 4})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		for _, kind := range kinds {
			t.Run(kind.String()+"/"+algo.String(), func(t *testing.T) {
				r := faults.NewRule(kind, shard.SiteBuild)
				switch kind {
				case faults.KindPanic, faults.KindCancel:
					// Fire mid-build so half-built shards exist to discard.
					r.Iter = res.NumComponents / 2
					r.Count = 1
				case faults.KindDelay:
					r.Count = 3
					r.Delay = time.Millisecond
				}
				faults.Activate(&faults.Plan{Seed: 1, Rules: []*faults.Rule{r}})
				defer faults.Deactivate()

				set, err := shard.BuildSet(context.Background(), "matrix-fp", g, res)
				faults.Deactivate()
				switch kind {
				case faults.KindPanic:
					if set != nil || err == nil {
						t.Fatalf("faulted build returned set=%v err=%v, want nil set + typed error", set, err)
					}
					var pe *par.PanicError
					var ip *faults.InjectedPanic
					if !errors.As(err, &pe) || !errors.As(err, &ip) {
						t.Fatalf("panic not contained as typed error: %T: %v", err, err)
					}
				case faults.KindCancel:
					if set != nil || !errors.Is(err, faults.ErrInjected) {
						t.Fatalf("canceled build returned set=%v err=%v, want nil set + ErrInjected", set, err)
					}
				case faults.KindDelay:
					if err != nil {
						t.Fatalf("a pure delay must not fail the build: %v", err)
					}
					tree := res.BlockCutTree()
					if got, want := len(set.CutVertices()), len(tree.CutVertices()); got != want {
						t.Fatalf("delayed build corrupted state: %d cuts, want %d", got, want)
					}
					for b := int32(0); b < int32(set.NumBlocks); b++ {
						if len(set.Shards[b].Vertices) != len(tree.VerticesOfBlock(b)) {
							t.Fatalf("delayed build corrupted block %d", b)
						}
					}
				}
			})
		}
	}
}

// TestFaultMatrixIncr extends the matrix to the incremental-apply sites:
// for every fault kind at incr.apply and incr.rebuild, a faulted Apply must
// return a typed error with the State byte-identical to before the batch —
// the precondition the service's degrade-to-full path relies on — after
// which a full recompute of the final edge list must yield exactly the
// labels a scratch engine run produces. A pure delay must commit normally.
// (Importing the incr package also adds both sites to Sites(), so the
// engine matrices above cover them vacuously — engines never mutate.)
func TestFaultMatrixIncr(t *testing.T) {
	defer faults.Deactivate()
	g := matrixGraph(t)
	seqRun := func(ctx context.Context, rg *bicc.Graph) (*bicc.Result, error) {
		return bicc.BiconnectedComponentsCtx(ctx, rg, &bicc.Options{Algorithm: bicc.Sequential})
	}
	kinds := []faults.Kind{faults.KindPanic, faults.KindDelay, faults.KindCancel}
	for _, site := range []string{"incr.apply", "incr.rebuild"} {
		for _, kind := range kinds {
			t.Run(site+"/"+kind.String(), func(t *testing.T) {
				res, err := seqRun(context.Background(), g)
				if err != nil {
					t.Fatal(err)
				}
				st, err := incr.NewState(g, res)
				if err != nil {
					t.Fatal(err)
				}
				before := st.Labels()
				edgesBefore := st.NumEdges()
				// A structural batch: delete the inter-ring bridge and insert
				// a cross-ring edge — several blocks go dirty, so both sites
				// fire.
				batch := []incr.Delta{
					{Op: incr.OpDelete, U: 0, V: 192},
					{Op: incr.OpInsert, U: 5, V: 200},
				}

				r := faults.NewRule(kind, site)
				switch kind {
				case faults.KindPanic, faults.KindCancel:
					r.Count = 1
				case faults.KindDelay:
					r.Count = 3
					r.Delay = time.Millisecond
				}
				faults.Activate(&faults.Plan{Seed: 1, Rules: []*faults.Rule{r}})
				// Threshold 1: never degrade on region size, so the rebuild
				// path (and its fault site) actually runs for this batch.
				stats, aerr := st.Apply(context.Background(), batch, incr.Config{Threshold: 1}, seqRun)
				faults.Deactivate()

				if kind == faults.KindDelay {
					if aerr != nil {
						t.Fatalf("a pure delay must not fail the apply: %v", aerr)
					}
					if stats.Mode == incr.ModeAbsorb {
						t.Fatalf("structural batch reported mode %v", stats.Mode)
					}
				} else {
					if aerr == nil {
						t.Fatal("faulted apply reported success")
					}
					var pe *par.PanicError
					var ip *faults.InjectedPanic
					switch {
					case errors.As(aerr, &ip):
					case errors.Is(aerr, faults.ErrInjected):
					case errors.As(aerr, &pe):
					default:
						t.Fatalf("untyped error %T: %v", aerr, aerr)
					}
					// Atomicity: the failed batch must have left no trace.
					if st.NumEdges() != edgesBefore {
						t.Fatalf("faulted apply mutated the edge list: %d edges, had %d",
							st.NumEdges(), edgesBefore)
					}
					for i, c := range st.Labels() {
						if c != before[i] {
							t.Fatalf("faulted apply relabeled edge %d: %d, had %d", i, c, before[i])
						}
					}
					// Degrade to full, exactly as the service does: recompute
					// the final edge list from scratch and rebuild the state.
					newN, final, perr := st.Preview(batch)
					if perr != nil {
						t.Fatalf("preview after fault: %v", perr)
					}
					fg, gerr := bicc.NewGraph(int(newN), final)
					if gerr != nil {
						t.Fatal(gerr)
					}
					fres, rerr := seqRun(context.Background(), fg)
					if rerr != nil {
						t.Fatalf("degraded full recompute: %v", rerr)
					}
					st, err = incr.NewState(fg, fres)
					if err != nil {
						t.Fatal(err)
					}
				}

				// Either path must now match a scratch run on the state's own
				// edge list, label for label.
				sg, gerr := st.Graph()
				if gerr != nil {
					t.Fatal(gerr)
				}
				want, werr := seqRun(context.Background(), sg)
				if werr != nil {
					t.Fatal(werr)
				}
				labels := st.Labels()
				if st.NumComponents() != want.NumComponents {
					t.Fatalf("components %d, scratch %d", st.NumComponents(), want.NumComponents)
				}
				for i, c := range want.EdgeComponent {
					if labels[i] != c {
						t.Fatalf("edge %d labeled %d, scratch %d", i, labels[i], c)
					}
				}
			})
		}
	}
}

// TestFaultMatrixWithFallback proves the supervisor half of the contract:
// under FallbackSequential a persistent panic at any site still yields a
// correct decomposition (degraded at worst), with the original fault
// preserved as the cause.
func TestFaultMatrixWithFallback(t *testing.T) {
	defer faults.Deactivate()
	g := matrixGraph(t)
	want, err := bicc.BiconnectedComponentsCtx(context.Background(), g,
		&bicc.Options{Algorithm: bicc.Sequential})
	if err != nil {
		t.Fatalf("clean sequential run failed: %v", err)
	}
	for _, site := range faults.Sites() {
		if strings.HasPrefix(site, "test.") || site == "core.seq" {
			// The sequential engine is the fallback's destination; a
			// persistent fault there is covered by TestFaultMatrix.
			continue
		}
		for _, algo := range []bicc.Algorithm{bicc.TVSMP, bicc.TVOpt, bicc.TVFilter, bicc.FastBCC} {
			t.Run(site+"/"+algo.String(), func(t *testing.T) {
				faults.Activate(&faults.Plan{Seed: 1,
					Rules: []*faults.Rule{faults.NewRule(faults.KindPanic, site)}})
				defer faults.Deactivate()

				res, err := bicc.BiconnectedComponentsCtx(context.Background(), g,
					&bicc.Options{Algorithm: algo, Procs: 4, Fallback: bicc.FallbackSequential})
				faults.Deactivate()
				if err != nil {
					t.Fatalf("fallback did not absorb persistent panic: %v", err)
				}
				if res.NumComponents != want.NumComponents {
					t.Fatalf("wrong decomposition: %d components, want %d",
						res.NumComponents, want.NumComponents)
				}
				if res.Degraded {
					if res.Algorithm != bicc.Sequential {
						t.Errorf("degraded result reports algorithm %v", res.Algorithm)
					}
					var ip *faults.InjectedPanic
					if !errors.As(res.DegradedCause, &ip) {
						t.Errorf("DegradedCause %v does not unwrap to the injected panic", res.DegradedCause)
					}
				}
			})
		}
	}
}
