package faults

import (
	"errors"
	"testing"
	"time"

	"bicc/internal/par"
)

// firesAt reports whether injecting at (site, worker, iter) under plan
// panics with an *InjectedPanic.
func firesAt(p *Plan, site string, worker, iter int) (fired bool) {
	defer func() {
		if v := recover(); v != nil {
			if _, ok := v.(*InjectedPanic); !ok {
				panic(v)
			}
			fired = true
		}
	}()
	p.fire(nil, site, worker, iter)
	return false
}

func TestRuleMatching(t *testing.T) {
	mk := func(site string, worker, iter int) *Plan {
		r := NewRule(KindPanic, site)
		r.Worker, r.Iter = worker, iter
		return &Plan{Rules: []*Rule{r}}
	}
	cases := []struct {
		name         string
		plan         *Plan
		site         string
		worker, iter int
		want         bool
	}{
		{"exact site", mk("a.b", -1, -1), "a.b", 0, 0, true},
		{"other site", mk("a.b", -1, -1), "a.c", 0, 0, false},
		{"wildcard site", mk("*", -1, -1), "anything", 3, 9, true},
		{"empty site matches all", mk("", -1, -1), "x", 0, 0, true},
		{"worker match", mk("s", 2, -1), "s", 2, 5, true},
		{"worker mismatch", mk("s", 2, -1), "s", 3, 5, false},
		{"iter match", mk("s", -1, 7), "s", 0, 7, true},
		{"iter mismatch", mk("s", -1, 7), "s", 0, 8, false},
	}
	for _, tc := range cases {
		if got := firesAt(tc.plan, tc.site, tc.worker, tc.iter); got != tc.want {
			t.Errorf("%s: fired=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRuleCountCapsFiring(t *testing.T) {
	r := NewRule(KindPanic, "*")
	r.Count = 2
	p := &Plan{Rules: []*Rule{r}}
	fired := 0
	for i := 0; i < 10; i++ {
		if firesAt(p, "s", 0, i) {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("rule with Count=2 fired %d times", fired)
	}
}

func TestEveryIsDeterministicAndSelective(t *testing.T) {
	// The same seed must select the same iterations; a different seed should
	// (with overwhelming probability over 4096 samples) select differently,
	// and roughly 1/8 of triples should fire.
	sample := func(seed uint64) []bool {
		out := make([]bool, 4096)
		for i := range out {
			r := NewRule(KindPanic, "*")
			r.Every = 8
			out[i] = firesAt(&Plan{Seed: seed, Rules: []*Rule{r}}, "s", i%4, i)
		}
		return out
	}
	a, b, c := sample(1), sample(1), sample(2)
	fired, differ := 0, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed gave different decisions at %d", i)
		}
		if a[i] != c[i] {
			differ = true
		}
		if a[i] {
			fired++
		}
	}
	if !differ {
		t.Error("seeds 1 and 2 produced identical schedules")
	}
	if fired < 4096/16 || fired > 4096/4 {
		t.Errorf("Every=8 fired %d/4096 times, want roughly 512", fired)
	}
}

func TestKindDelaySleeps(t *testing.T) {
	r := NewRule(KindDelay, "*")
	r.Delay = 20 * time.Millisecond
	p := &Plan{Rules: []*Rule{r}}
	start := time.Now()
	p.fire(nil, "s", 0, 0)
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("delay rule slept %v, want ~20ms", d)
	}
}

func TestKindCancelTripsCanceler(t *testing.T) {
	c := &par.Canceler{}
	p := &Plan{Rules: []*Rule{NewRule(KindCancel, "*")}}
	p.fire(c, "s", 1, 2)
	if err := c.Err(); !errors.Is(err, ErrInjected) {
		t.Errorf("canceler cause = %v, want ErrInjected", err)
	}
}

func TestKindCancelNilCancelerIsInert(t *testing.T) {
	p := &Plan{Rules: []*Rule{NewRule(KindCancel, "*")}}
	p.fire(nil, "s", 0, 0) // must not dereference the nil canceler
}

func TestActivateDeactivate(t *testing.T) {
	defer Deactivate()
	if Enabled() {
		t.Fatal("plan active at test start")
	}
	Inject(nil, "s", 0, 0) // disabled: must be a no-op
	Activate(&Plan{Rules: []*Rule{NewRule(KindCancel, "*")}})
	if !Enabled() {
		t.Error("Activate did not enable")
	}
	c := &par.Canceler{}
	Inject(c, "s", 0, 0)
	if c.Err() == nil {
		t.Error("active plan did not fire through Inject")
	}
	Deactivate()
	if Enabled() {
		t.Error("Deactivate left the plan active")
	}
}

func TestRegisterSite(t *testing.T) {
	name := RegisterSite("test.site.cancelable", true)
	RegisterSite("test.site.plain", false)
	if name != "test.site.cancelable" {
		t.Errorf("RegisterSite returned %q", name)
	}
	if !SiteCancelable("test.site.cancelable") || SiteCancelable("test.site.plain") {
		t.Error("SiteCancelable disagrees with registration")
	}
	found := 0
	for _, s := range Sites() {
		if s == "test.site.cancelable" || s == "test.site.plain" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("Sites() is missing registered sites (found %d of 2)", found)
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("panic,site=a.b,worker=1,iter=2,every=3,count=4; delay,delay=5ms ;cancel", 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Rules) != 3 {
		t.Fatalf("Parse gave seed %d, %d rules", p.Seed, len(p.Rules))
	}
	r := p.Rules[0]
	if r.Kind != KindPanic || r.Site != "a.b" || r.Worker != 1 || r.Iter != 2 || r.Every != 3 || r.Count != 4 {
		t.Errorf("rule 0 = %+v", r)
	}
	if p.Rules[1].Kind != KindDelay || p.Rules[1].Delay != 5*time.Millisecond {
		t.Errorf("rule 1 = %+v", p.Rules[1])
	}
	if p.Rules[2].Kind != KindCancel || p.Rules[2].Site != "*" {
		t.Errorf("rule 2 = %+v", p.Rules[2])
	}

	for _, bad := range []string{
		"explode", "panic,site", "panic,worker=x", "panic,delay=x", "panic,wat=1", "", " ; ",
	} {
		if _, err := Parse(bad, 0); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
