package faults

import (
	"fmt"
	"os"
)

// killSelf delivers an uncatchable kill to the current process. os.Process.Kill
// sends SIGKILL on Unix (TerminateProcess on Windows), so no deferred
// function, signal handler, or buffered writer runs — the closest portable
// approximation of an OOM kill or power loss. The log line before dying lets
// a crash harness confirm the kill fired at the intended site rather than the
// process dying for an unrelated reason.
func killSelf(site string, worker, iter int) {
	fmt.Fprintf(os.Stderr, "faults: injected kill at %s (worker %d, iter %d)\n", site, worker, iter)
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		_ = p.Kill()
	}
	// Kill delivery is asynchronous on some platforms; make death certain.
	select {}
}
